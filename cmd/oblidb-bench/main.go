// Command oblidb-bench regenerates the tables and figures of the ObliDB
// paper's evaluation (§7). Each figure id maps to one experiment; see
// DESIGN.md's per-experiment index.
//
// Usage:
//
//	oblidb-bench -all                # every figure at default (10%) scale
//	oblidb-bench -fig 7 -fig 13      # selected figures
//	oblidb-bench -all -full          # paper-scale data (slow)
//	oblidb-bench -all -scale 0.02    # custom scale
//	oblidb-bench -json BENCH_9.json  # machine-readable perf trajectory
//	oblidb-bench -compare BENCH_9.json           # fresh run vs baseline
//	oblidb-bench -compare BENCH_9.json -against new.json -threshold 1.3
//
// Absolute timings depend on this machine; the reproduced artifact is the
// relative shape of each figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"oblidb/internal/bench"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, ok := bench.Figures[part]; !ok {
			return fmt.Errorf("unknown figure %q (have %s)", part, knownFigures())
		}
		*f = append(*f, part)
	}
	return nil
}

func knownFigures() string {
	ids := make([]string, 0, len(bench.Figures))
	for id := range bench.Figures {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to run (repeatable or comma-separated); see DESIGN.md")
	all := flag.Bool("all", false, "run every figure")
	full := flag.Bool("full", false, "paper-scale data (equivalent to -scale 1; slow)")
	scale := flag.Float64("scale", 0.1, "fraction of paper-scale data")
	seed := flag.Uint64("seed", 0, "data generation seed (0 = default)")
	jsonPath := flag.String("json", "", "write the machine-readable perf trajectory (BENCH_<n>.json) to this path and exit")
	comparePath := flag.String("compare", "", "diff the perf trajectory against this baseline BENCH_<n>.json and exit non-zero past -threshold")
	againstPath := flag.String("against", "", "with -compare: use this saved run instead of measuring now")
	threshold := flag.Float64("threshold", 1.5, "with -compare: slowdown over baseline that counts as a regression")
	flag.Parse()

	if *full {
		*scale = 1
	}
	if *comparePath != "" {
		opts := bench.Options{Scale: *scale, Out: os.Stdout, Seed: *seed}
		if err := bench.Compare(opts, *comparePath, *againstPath, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "oblidb-bench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" {
		opts := bench.Options{Scale: *scale, Out: os.Stdout, Seed: *seed}
		if err := bench.WriteBenchJSON(opts, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "oblidb-bench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *all {
		figs = append([]string{}, bench.Order...)
	}
	if len(figs) == 0 {
		fmt.Fprintf(os.Stderr, "oblidb-bench: nothing to run; use -all or -fig <id> (ids: %s)\n", knownFigures())
		os.Exit(2)
	}

	opts := bench.Options{Scale: *scale, Out: os.Stdout, Seed: *seed}
	fmt.Printf("ObliDB benchmark harness — scale %.3g of paper size\n\n", *scale)
	start := time.Now()
	for _, id := range figs {
		if err := bench.Figures[id](opts); err != nil {
			fmt.Fprintf(os.Stderr, "oblidb-bench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}
