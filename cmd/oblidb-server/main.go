// Command oblidb-server serves an ObliDB database over TCP behind an
// epoch-padded batch scheduler: clients connect with the client package
// (or oblidb-cli -connect) and submit SQL; the server executes a
// fixed-size, dummy-padded batch of statements on a fixed cadence so
// the untrusted host observes a constant-rate, constant-size query
// stream regardless of real client traffic.
//
//	$ oblidb-server -addr :7744 -epoch-size 8 -epoch-interval 5ms
//	$ oblidb-cli -connect localhost:7744
//
// Flags tune the enclave (-memory, -pad) exactly as in oblidb-cli.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/server"
)

func main() {
	addr := flag.String("addr", ":7744", "TCP listen address")
	epochSize := flag.Int("epoch-size", 8, "statement slots per epoch")
	epochInterval := flag.Duration("epoch-interval", 5*time.Millisecond, "fixed cadence between epochs")
	memory := flag.Int("memory", 0, "oblivious memory budget in bytes (0 = paper default 20 MB)")
	pad := flag.Int("pad", 0, "padding mode: pad intermediate tables to this many rows (0 = off)")
	parallelism := flag.Int("parallelism", 1, "intra-query worker pool size (-1 = GOMAXPROCS, 1 = serial)")
	workers := flag.Int("workers", 1, "epoch slots executed concurrently (1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress serving diagnostics")
	flag.Parse()

	engine := core.Config{ObliviousMemory: *memory, Parallelism: *parallelism}
	if *pad > 0 {
		engine.Padding = core.PaddingConfig{Enabled: true, PadRows: *pad, PadGroups: *pad}
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := server.New(server.Config{
		Engine:        engine,
		EpochSize:     *epochSize,
		EpochInterval: *epochInterval,
		Workers:       *workers,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-server:", err)
		os.Exit(1)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "oblidb-server: shutting down")
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "oblidb-server: serving on %s (epoch: %d slots every %s)\n",
		*addr, *epochSize, *epochInterval)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-server:", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "oblidb-server: %d epochs, %d real + %d dummy statements, up %s\n",
		st.Epochs, st.Real, st.Dummy, time.Duration(st.UptimeMillis)*time.Millisecond)
}
