// Command oblidb-server serves an ObliDB database over TCP behind an
// epoch-padded batch scheduler: clients connect with the client package
// (or oblidb-cli -connect) and submit SQL; the server executes a
// fixed-size, dummy-padded batch of statements on a fixed cadence so
// the untrusted host observes a constant-rate, constant-size query
// stream regardless of real client traffic.
//
//	$ oblidb-server -addr :7744 -epoch-size 8 -epoch-interval 5ms
//	$ oblidb-cli -connect localhost:7744
//
// Flags tune the enclave (-memory, -pad) exactly as in oblidb-cli.
// With -debug-addr the server also serves /metrics (Prometheus text),
// /debug/vars (JSON snapshot), and /debug/pprof/* on a separate
// listener; bind it to loopback or an operator network.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/server"
)

func main() {
	addr := flag.String("addr", ":7744", "TCP listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for /metrics, /debug/vars, /debug/pprof (empty = off)")
	epochSize := flag.Int("epoch-size", 8, "statement slots per epoch")
	epochInterval := flag.Duration("epoch-interval", 5*time.Millisecond, "fixed cadence between epochs")
	memory := flag.Int("memory", 0, "oblivious memory budget in bytes (0 = paper default 20 MB)")
	pad := flag.Int("pad", 0, "padding mode: pad intermediate tables to this many rows (0 = off)")
	parallelism := flag.Int("parallelism", 1, "intra-query worker pool size (-1 = GOMAXPROCS, 1 = serial)")
	workers := flag.Int("workers", 1, "epoch slots executed concurrently (1 = serial)")
	slowEpochs := flag.Int("slow-epochs", 0, "log statements that wait at least this many epochs, by literal-free shape (0 = default 8)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	quiet := flag.Bool("quiet", false, "suppress serving diagnostics")
	flag.Parse()

	engine := core.Config{ObliviousMemory: *memory, Parallelism: *parallelism}
	if *pad > 0 {
		engine.Padding = core.PaddingConfig{Enabled: true, PadRows: *pad, PadGroups: *pad}
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "oblidb-server: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logDst := io.Writer(os.Stderr)
	if *quiet {
		logDst = io.Discard
	}
	logger := slog.New(slog.NewTextHandler(logDst, &slog.HandlerOptions{Level: level}))
	srv, err := server.New(server.Config{
		Engine:              engine,
		EpochSize:           *epochSize,
		EpochInterval:       *epochInterval,
		Workers:             *workers,
		Logger:              logger,
		SlowStatementEpochs: *slowEpochs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-server:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		if _, err := srv.ServeDebug(*debugAddr); err != nil {
			fmt.Fprintln(os.Stderr, "oblidb-server:", err)
			os.Exit(1)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "oblidb-server: shutting down")
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "oblidb-server: serving on %s (epoch: %d slots every %s)\n",
		*addr, *epochSize, *epochInterval)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-server:", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "oblidb-server: %d epochs, %d real + %d dummy statements, up %s\n",
		st.Epochs, st.Real, st.Dummy, time.Duration(st.UptimeMillis)*time.Millisecond)
}
