// Command oblidb-server serves an ObliDB database over TCP behind an
// epoch-padded batch scheduler: clients connect with the client package
// (or oblidb-cli -connect) and submit SQL; the server executes a
// fixed-size, dummy-padded batch of statements on a fixed cadence so
// the untrusted host observes a constant-rate, constant-size query
// stream regardless of real client traffic.
//
//	$ oblidb-server -addr :7744 -epoch-size 8 -epoch-interval 5ms
//	$ oblidb-cli -connect localhost:7744
//
// With -wal the server journals every committed mutation to a sealed
// write-ahead log and replays it on startup, so a kill -9 (or power
// loss, with -wal-sync) loses no acknowledged commit:
//
//	$ oblidb-server -addr :7744 -wal /var/lib/oblidb/oblidb.wal
//
// The journal's sealing key is read from -wal-key (hex, one line),
// generated on first use. Keep the key file as safe as the journal is
// sensitive: together they are the database.
//
// Flags tune the enclave (-memory, -pad) exactly as in oblidb-cli.
// With -debug-addr the server also serves /metrics (Prometheus text),
// /debug/vars (JSON snapshot), and /debug/pprof/* on a separate
// listener; bind it to loopback or an operator network.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/crypt"
	"oblidb/internal/faultstore"
	"oblidb/internal/server"
	"oblidb/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7744", "TCP listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for /metrics, /debug/vars, /debug/pprof (empty = off)")
	epochSize := flag.Int("epoch-size", 8, "statement slots per epoch")
	epochInterval := flag.Duration("epoch-interval", 5*time.Millisecond, "fixed cadence between epochs")
	memory := flag.Int("memory", 0, "oblivious memory budget in bytes (0 = paper default 20 MB)")
	pad := flag.Int("pad", 0, "padding mode: pad intermediate tables to this many rows (0 = off)")
	parallelism := flag.Int("parallelism", 1, "intra-query worker pool size (-1 = GOMAXPROCS, 1 = serial)")
	workers := flag.Int("workers", 1, "epoch read slots executed concurrently (1 = serial)")
	contentionProfile := flag.Bool("contention-profile", false, "enable mutex and block profiles on /debug/pprof")
	slowEpochs := flag.Int("slow-epochs", 0, "log statements that wait at least this many epochs, by literal-free shape (0 = default 8)")
	walPath := flag.String("wal", "", "write-ahead log file; replayed on startup, journaled while serving (empty = no durability)")
	walKeyPath := flag.String("wal-key", "", "journal sealing key file, hex (default <wal>.key; created if missing)")
	walSync := flag.Bool("wal-sync", true, "fsync the journal on every commit")
	walCheckpointBytes := flag.Int64("wal-checkpoint-bytes", 64<<20, "compact the journal once it exceeds this size (0 = never)")
	maxPending := flag.Int("max-pending", 0, "admission queue bound; a queue full past -admission-timeout rejects with a retriable overload error (0 = default 4096)")
	admissionTimeout := flag.Duration("admission-timeout", 0, "how long a full queue blocks a session before rejecting (0 = default 1s)")
	writeDeadline := flag.Duration("write-deadline", 0, "per-response write deadline; clients stalled past it are evicted (0 = off)")
	walCrashPoint := flag.String("wal-crash-point", "", "TESTING ONLY: kill the process at a named journal crash point (pre-commit, mid-commit-marker, post-commit-pre-ack)")
	walCrashAfter := flag.Uint64("wal-crash-after", 0, "TESTING ONLY: journal file writes to allow before -wal-crash-point fires")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	quiet := flag.Bool("quiet", false, "suppress serving diagnostics")
	flag.Parse()

	engine := core.Config{ObliviousMemory: *memory, Parallelism: *parallelism}
	if *pad > 0 {
		engine.Padding = core.PaddingConfig{Enabled: true, PadRows: *pad, PadGroups: *pad}
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "oblidb-server: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logDst := io.Writer(os.Stderr)
	if *quiet {
		logDst = io.Discard
	}
	logger := slog.New(slog.NewTextHandler(logDst, &slog.HandlerOptions{Level: level}))

	var journal *wal.Log
	var crash *faultstore.Crash
	if *walPath != "" {
		keyPath := *walKeyPath
		if keyPath == "" {
			keyPath = *walPath + ".key"
		}
		key, err := loadWALKey(keyPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblidb-server:", err)
			os.Exit(1)
		}
		opts := wal.Options{
			Sync:                *walSync,
			AutoCheckpointBytes: *walCheckpointBytes,
		}
		if *walCrashPoint != "" {
			// Crash-point testing: every journal file write goes through a
			// fault wrapper that hard-kills the process at the named point.
			// The controller is armed only after startup recovery finishes
			// (below), so -wal-crash-after counts serving-time writes.
			point := *walCrashPoint
			crash, err = faultstore.NewCrash(point, int(*walCrashAfter), func() {
				fmt.Fprintf(os.Stderr, "oblidb-server: crash point %s fired\n", point)
				os.Exit(137)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "oblidb-server:", err)
				os.Exit(2)
			}
			opts.OpenFile = func(p string) (wal.File, error) {
				f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o600)
				if err != nil {
					return nil, err
				}
				return faultstore.WrapFile(f, faultstore.FileSchedule{}, crash), nil
			}
		}
		journal, err = wal.Open(*walPath, key, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblidb-server:", err)
			os.Exit(1)
		}
		defer journal.Close()
	}

	srv, err := server.New(server.Config{
		Engine:              engine,
		EpochSize:           *epochSize,
		EpochInterval:       *epochInterval,
		Workers:             *workers,
		ContentionProfiling: *contentionProfile,
		Logger:              logger,
		SlowStatementEpochs: *slowEpochs,
		MaxPending:          *maxPending,
		AdmissionTimeout:    *admissionTimeout,
		WriteDeadline:       *writeDeadline,
		WAL:                 journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-server:", err)
		os.Exit(1)
	}
	if crash != nil {
		// Startup recovery (and its checkpoint) is done; from here on the
		// armed crash point counts journal writes and kills the process.
		crash.Arm()
	}
	if *debugAddr != "" {
		if _, err := srv.ServeDebug(*debugAddr); err != nil {
			fmt.Fprintln(os.Stderr, "oblidb-server:", err)
			os.Exit(1)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "oblidb-server: shutting down")
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "oblidb-server: serving on %s (epoch: %d slots every %s)\n",
		*addr, *epochSize, *epochInterval)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-server:", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "oblidb-server: %d epochs, %d real + %d dummy statements, up %s\n",
		st.Epochs, st.Real, st.Dummy, time.Duration(st.UptimeMillis)*time.Millisecond)
}

// loadWALKey reads the journal sealing key (hex, one line) from path,
// generating and writing a fresh one (mode 0600) on first use.
func loadWALKey(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		key := crypt.NewRandomKey()
		line := hex.EncodeToString(key) + "\n"
		if err := os.WriteFile(path, []byte(line), 0o600); err != nil {
			return nil, fmt.Errorf("writing new key file: %w", err)
		}
		fmt.Fprintf(os.Stderr, "oblidb-server: generated journal key %s\n", path)
		return key, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading key file: %w", err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("key file %s: %w", path, err)
	}
	if len(key) != crypt.KeySize {
		return nil, fmt.Errorf("key file %s: want %d key bytes, got %d", path, crypt.KeySize, len(key))
	}
	return key, nil
}
