// Command oblidb-cli is an interactive SQL shell over the ObliDB engine:
// a fresh in-enclave database per session, the full oblivious operator
// set behind every statement.
//
//	$ oblidb-cli
//	oblidb> CREATE TABLE t (id INTEGER, name VARCHAR(16)) INDEX ON id
//	oblidb> INSERT INTO t VALUES (1, 'alice'), (2, 'bob')
//	oblidb> SELECT * FROM t WHERE id = 2
//
// Flags tune the enclave: -memory sets the oblivious-memory budget, -pad
// enables padding mode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/sql"
)

func main() {
	memory := flag.Int("memory", 0, "oblivious memory budget in bytes (0 = paper default 20 MB)")
	pad := flag.Int("pad", 0, "padding mode: pad intermediate tables to this many rows (0 = off)")
	showTime := flag.Bool("time", true, "print per-statement execution time")
	flag.Parse()

	cfg := core.Config{ObliviousMemory: *memory}
	if *pad > 0 {
		cfg.Padding = core.PaddingConfig{Enabled: true, PadRows: *pad, PadGroups: *pad}
	}
	db, err := core.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-cli:", err)
		os.Exit(1)
	}
	exec := sql.New(db)

	fmt.Println("ObliDB shell — oblivious query processing (type \\q to quit, \\help for help)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("oblidb> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\help`:
			printHelp()
			continue
		case line == `\tables`:
			for _, t := range db.Tables() {
				fmt.Println(" ", t)
			}
			continue
		case line == `\mem`:
			e := db.Enclave()
			fmt.Printf("  oblivious memory: %d of %d bytes in use (peak %d)\n",
				e.Budget()-e.Available(), e.Budget(), e.PeakUsed())
			continue
		}
		start := time.Now()
		res, err := exec.Execute(line)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
		if *showTime {
			if res != nil && len(res.Cols) > 0 && res.Cols[0] != "affected" {
				fmt.Printf("(%s; plan: select=%s join=%s)\n",
					elapsed.Round(time.Microsecond), db.LastPlan.SelectAlg, db.LastPlan.JoinAlg)
			} else {
				fmt.Printf("(%s)\n", elapsed.Round(time.Microsecond))
			}
		}
	}
}

func printResult(res *core.Result) {
	if res == nil {
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	limit := len(res.Rows)
	const maxShow = 40
	if limit > maxShow {
		limit = maxShow
	}
	for _, r := range res.Rows[:limit] {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if len(res.Rows) > limit {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
}

func printHelp() {
	fmt.Print(`Statements:
  CREATE TABLE t (col TYPE, ...) [STORAGE = FLAT|INDEXED|BOTH] [INDEX ON col] [CAPACITY = n]
  INSERT INTO t VALUES (...), (...)
  SELECT cols|aggregates FROM t [JOIN t2 ON a = b] [WHERE expr] [GROUP BY expr] [FORCE alg]
  UPDATE t SET col = expr [WHERE expr]
  DELETE FROM t [WHERE expr]
  DROP TABLE t
Types: INTEGER, FLOAT, VARCHAR(n), BOOLEAN, DATE (stored as ISO string)
Aggregates: COUNT(*), SUM, AVG, MIN, MAX; functions: SUBSTR(s, start, len)
Meta: \tables, \mem, \q
`)
}
