// Command oblidb-cli is an interactive SQL shell over the ObliDB engine:
// by default a fresh in-enclave database per session, the full oblivious
// operator set behind every statement.
//
//	$ oblidb-cli
//	oblidb> CREATE TABLE t (id INTEGER, name VARCHAR(16)) INDEX ON id
//	oblidb> INSERT INTO t VALUES (1, 'alice'), (2, 'bob')
//	oblidb> SELECT * FROM t WHERE id = 2
//	oblidb> \prepare byid SELECT name FROM t WHERE id = $1
//	oblidb> \exec byid 1
//
// \prepare parses a parameterized statement shape once under a name;
// \exec runs it with bound arguments (integers, floats, 'strings',
// TRUE/FALSE, NULL). In connect mode the shape is prepared server-side
// and the arguments travel as typed wire values.
//
// With -connect host:port the shell becomes a network client of an
// oblidb-server instead: statements travel the wire protocol and run
// inside the server's epoch scheduler, so per-statement latency is
// quantized to the server's epoch cadence.
//
// Flags tune the local enclave: -memory sets the oblivious-memory
// budget, -pad enables padding mode (both ignored with -connect; the
// server owns its engine).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/sql"
	"oblidb/internal/table"
)

func main() {
	memory := flag.Int("memory", 0, "oblivious memory budget in bytes (0 = paper default 20 MB)")
	pad := flag.Int("pad", 0, "padding mode: pad intermediate tables to this many rows (0 = off)")
	showTime := flag.Bool("time", true, "print per-statement execution time")
	connect := flag.String("connect", "", "connect to an oblidb-server at host:port instead of embedding an engine")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *memory, *pad, *showTime, *connect); err != nil {
		fmt.Fprintln(os.Stderr, "oblidb-cli:", err)
		os.Exit(1)
	}
}

// run drives the shell: statements read from in, results written to
// out. main wires it to stdin/stdout; tests drive it with buffers.
func run(in io.Reader, out io.Writer, memory, pad int, showTime bool, connect string) error {
	var db *core.DB
	var exec *sql.Executor
	var conn *client.Conn
	var tx sql.TxState // embedded mode; in connect mode the server owns it
	localPrepared := make(map[string]*sql.Prepared)
	remotePrepared := make(map[string]*client.Stmt)

	if connect != "" {
		var err error
		conn, err = client.Dial(connect)
		if err != nil {
			return err
		}
		defer conn.Close()
		fmt.Fprintf(out, "ObliDB shell — connected to %s (type \\q to quit, \\help for help)\n", connect)
	} else {
		cfg := core.Config{ObliviousMemory: memory}
		if pad > 0 {
			cfg.Padding = core.PaddingConfig{Enabled: true, PadRows: pad, PadGroups: pad}
		}
		var err error
		db, err = core.Open(cfg)
		if err != nil {
			return err
		}
		exec = sql.New(db)
		fmt.Fprintln(out, "ObliDB shell — oblivious query processing (type \\q to quit, \\help for help)")
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "oblidb> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			// Distinguish EOF (clean exit) from a read error.
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return nil
		case line == `\help`:
			printHelp(out, conn != nil)
			continue
		case line == `\tables`:
			if conn != nil {
				fmt.Fprintln(out, `  \tables is unavailable in connect mode`)
				continue
			}
			for _, t := range db.Tables() {
				fmt.Fprintln(out, " ", t)
			}
			continue
		case line == `\mem`:
			if conn != nil {
				fmt.Fprintln(out, `  \mem is unavailable in connect mode; try \stats`)
				continue
			}
			e := db.Enclave()
			fmt.Fprintf(out, "  oblivious memory: %d of %d bytes in use (peak %d)\n",
				e.Budget()-e.Available(), e.Budget(), e.PeakUsed())
			continue
		case line == `\prepare`:
			fmt.Fprintln(out, `usage: \prepare name <sql>`)
			continue
		case line == `\exec`:
			fmt.Fprintln(out, `usage: \exec name [arg1 arg2 ...]`)
			continue
		case strings.HasPrefix(line, `\prepare `):
			rest := strings.TrimSpace(strings.TrimPrefix(line, `\prepare `))
			name, stmtSQL, ok := strings.Cut(rest, " ")
			if !ok || name == "" || strings.TrimSpace(stmtSQL) == "" {
				fmt.Fprintln(out, `usage: \prepare name <sql>`)
				continue
			}
			stmtSQL = strings.TrimSpace(stmtSQL)
			if conn != nil {
				st, err := conn.Prepare(stmtSQL)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				if old, exists := remotePrepared[name]; exists {
					old.Close()
				}
				remotePrepared[name] = st
				fmt.Fprintf(out, "prepared %q (%d parameter(s))\n", name, st.NumParams())
			} else {
				st, err := exec.Prepare(stmtSQL)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				localPrepared[name] = st
				fmt.Fprintf(out, "prepared %q (%d parameter(s))\n", name, st.NumParams())
			}
			continue
		case strings.HasPrefix(line, `\exec `):
			rest := strings.TrimSpace(strings.TrimPrefix(line, `\exec `))
			name, argSrc, _ := strings.Cut(rest, " ")
			if name == "" {
				fmt.Fprintln(out, `usage: \exec name [arg1 arg2 ...]`)
				continue
			}
			args, err := parseShellArgs(argSrc)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			start := time.Now()
			var cols []string
			var rows []table.Row
			if conn != nil {
				st, ok := remotePrepared[name]
				if !ok {
					fmt.Fprintf(out, "error: no prepared statement %q (use \\prepare)\n", name)
					continue
				}
				anyArgs := make([]any, len(args))
				for i, v := range args {
					anyArgs[i] = v
				}
				res, err := st.Exec(anyArgs...)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				if res != nil {
					cols, rows = res.Cols, res.Rows
				}
			} else {
				st, ok := localPrepared[name]
				if !ok {
					fmt.Fprintf(out, "error: no prepared statement %q (use \\prepare)\n", name)
					continue
				}
				res, err := routeLocal(exec, &tx, st, args)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				if res != nil {
					cols, rows = res.Cols, res.Rows
				}
			}
			printResult(out, cols, rows)
			if showTime {
				fmt.Fprintf(out, "(%s)\n", time.Since(start).Round(time.Microsecond))
			}
			continue
		case line == `\stats`:
			if conn == nil {
				cs := exec.CacheStats()
				fmt.Fprintf(out, "  plan cache: %d shape(s); %d hit(s), %d miss(es); %d compile(s), %d replay(s)\n",
					cs.Entries, cs.Hits, cs.Misses, cs.Compiles, cs.CompileSkips)
				printPicks(out, db.PlanStats())
				continue
			}
			st, err := conn.ServerStats()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "  epochs: %d × %d slots; statements: %d real, %d dummy; sessions: %d; up %s\n",
				st.Epochs, st.EpochSize, st.Real, st.Dummy, st.Sessions,
				(time.Duration(st.UptimeMillis) * time.Millisecond).Round(time.Millisecond))
			fmt.Fprintf(out, "  plan cache: %d shape(s); %d hit(s), %d miss(es); %d compile(s), %d replay(s)\n",
				st.PlanEntries, st.PlanHits, st.PlanMisses, st.PlanCompiles, st.PlanCompileSkips)
			if len(st.Picks) > 0 {
				parts := make([]string, len(st.Picks))
				for i, p := range st.Picks {
					parts[i] = fmt.Sprintf("%s=%d", p.Name, p.Count)
				}
				fmt.Fprintf(out, "  operator picks: %s\n", strings.Join(parts, " "))
			}
			cs := conn.Stats()
			fmt.Fprintf(out, "  connection: %d frame(s) sent (%d B), %d received (%d B), %d pending",
				cs.FramesSent, cs.BytesWritten, cs.FramesReceived, cs.BytesRead, cs.Pending)
			if cs.LastError != "" {
				fmt.Fprintf(out, "; last error: %s", cs.LastError)
			}
			fmt.Fprintln(out)
			printMetricsJSON(out, st.MetricsJSON)
			continue
		case line == `\explain`:
			fmt.Fprintln(out, `usage: \explain <sql>`)
			continue
		case strings.HasPrefix(line, `\explain `):
			stmtSQL := strings.TrimSpace(strings.TrimPrefix(line, `\explain `))
			var planRows []table.Row
			var err error
			if conn != nil {
				var r *client.Result
				if r, err = conn.Exec("EXPLAIN " + stmtSQL); err == nil && r != nil {
					planRows = r.Rows
				}
			} else {
				var r *core.Result
				if r, err = exec.Execute("EXPLAIN " + stmtSQL); err == nil && r != nil {
					planRows = r.Rows
				}
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			for _, r := range planRows {
				fmt.Fprintln(out, " ", r[0].AsString())
			}
			continue
		}

		start := time.Now()
		var cols []string
		var rows []table.Row
		var err error
		if conn != nil {
			var res *client.Result
			if res, err = conn.Exec(line); err == nil && res != nil {
				cols, rows = res.Cols, res.Rows
			}
		} else {
			var res *core.Result
			if res, err = runLocal(exec, &tx, line); err == nil && res != nil {
				cols, rows = res.Cols, res.Rows
			}
		}
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		printResult(out, cols, rows)
		if showTime {
			if conn == nil && len(cols) > 0 && cols[0] != "affected" {
				fmt.Fprintf(out, "(%s; plan: select=%s join=%s)\n",
					elapsed.Round(time.Microsecond), db.LastPlan.SelectAlg, db.LastPlan.JoinAlg)
			} else {
				// Connect mode has no plan to show (the server keeps its
				// engine private) and the time includes the epoch wait.
				fmt.Fprintf(out, "(%s)\n", elapsed.Round(time.Microsecond))
			}
		}
	}
}

// runLocal executes one statement line in the embedded engine,
// honoring the shell's transaction state.
func runLocal(x *sql.Executor, tx *sql.TxState, line string) (*core.Result, error) {
	prep, err := x.PrepareOneShot(line)
	if err != nil {
		return nil, err
	}
	if prep.NumParams() > 0 {
		return nil, fmt.Errorf("statement has parameters; use \\prepare and \\exec")
	}
	return routeLocal(x, tx, prep, nil)
}

// routeLocal dispatches one prepared statement through the shell's
// transaction state: BEGIN/COMMIT/ROLLBACK drive the state, writes
// inside an open transaction are buffered until COMMIT (acknowledging
// 0 affected rows now), and reads run immediately against the
// pre-transaction snapshot.
func routeLocal(x *sql.Executor, tx *sql.TxState, prep *sql.Prepared, args []table.Value) (*core.Result, error) {
	stmt := prep.Stmt()
	switch {
	case sql.IsBegin(stmt):
		if err := tx.Begin(); err != nil {
			return nil, err
		}
		return ackResult(), nil
	case sql.IsCommit(stmt):
		items, err := tx.Take()
		if err != nil {
			return nil, err
		}
		return x.ExecTx(items)
	case sql.IsRollback(stmt):
		if err := tx.Rollback(); err != nil {
			return nil, err
		}
		return ackResult(), nil
	case tx.Active() && sql.IsDDL(stmt):
		return nil, fmt.Errorf("DDL cannot run inside a transaction")
	case tx.Active() && sql.IsWrite(stmt):
		if len(args) != prep.NumParams() {
			return nil, fmt.Errorf("statement has %d parameter(s), got %d argument(s)",
				prep.NumParams(), len(args))
		}
		if err := tx.Buffer(prep, args); err != nil {
			return nil, err
		}
		return ackResult(), nil
	default:
		return prep.Exec(args)
	}
}

// ackResult is the zero-affected acknowledgment for statements the
// transaction state absorbs.
func ackResult() *core.Result {
	return &core.Result{Cols: []string{"affected"},
		Rows: []table.Row{{table.Int(0)}}, Affected: true}
}

// printMetricsJSON renders a server's metrics snapshot (the wire.Stats
// v3 extension): one line per family, names sorted, values rendered
// compactly. Histograms show count and sum; labeled families list
// label=value pairs.
func printMetricsJSON(out io.Writer, metricsJSON string) {
	if metricsJSON == "" {
		return // pre-v3 server
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(metricsJSON), &snap); err != nil {
		fmt.Fprintf(out, "  metrics: unreadable snapshot: %v\n", err)
		return
	}
	fmt.Fprintf(out, "  metrics (%d families):\n", len(snap))
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "    %s: %s\n", name, renderMetricValue(snap[name]))
	}
}

func renderMetricValue(v any) string {
	switch v := v.(type) {
	case map[string]any:
		if _, ok := v["buckets"]; ok {
			// Histogram: count and sum say most of it at a glance.
			return fmt.Sprintf("count=%s sum=%s",
				renderMetricValue(v["count"]), renderMetricValue(v["sum"]))
		}
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + renderMetricValue(v[k])
		}
		return strings.Join(parts, " ")
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case nil:
		return "0"
	}
	return fmt.Sprint(v)
}

// printPicks renders the engine's per-algorithm pick counters.
func printPicks(out io.Writer, p core.PickStats) {
	var parts []string
	for _, name := range sortedKeys(p.Select) {
		parts = append(parts, fmt.Sprintf("select.%s=%d", name, p.Select[name]))
	}
	for _, name := range sortedKeys(p.Join) {
		parts = append(parts, fmt.Sprintf("join.%s=%d", name, p.Join[name]))
	}
	if p.Sorts > 0 {
		parts = append(parts, fmt.Sprintf("sort=%d", p.Sorts))
	}
	if p.Limits > 0 {
		parts = append(parts, fmt.Sprintf("limit=%d", p.Limits))
	}
	if len(parts) > 0 {
		fmt.Fprintf(out, "  operator picks: %s\n", strings.Join(parts, " "))
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseShellArgs parses \exec arguments: integers, floats, 'quoted
// strings' (with ” escaping), TRUE/FALSE, and NULL, separated by
// whitespace.
func parseShellArgs(src string) ([]table.Value, error) {
	var args []table.Value
	i := 0
	for {
		for i < len(src) && (src[i] == ' ' || src[i] == '\t') {
			i++
		}
		if i >= len(src) {
			return args, nil
		}
		if src[i] == '\'' {
			var sb strings.Builder
			i++
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("unterminated string argument")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			args = append(args, table.Str(sb.String()))
			continue
		}
		start := i
		for i < len(src) && src[i] != ' ' && src[i] != '\t' {
			i++
		}
		word := src[start:i]
		switch strings.ToUpper(word) {
		case "TRUE":
			args = append(args, table.Bool(true))
			continue
		case "FALSE":
			args = append(args, table.Bool(false))
			continue
		case "NULL":
			args = append(args, table.Null())
			continue
		}
		if strings.ContainsAny(word, ".eE") && word != "-" {
			if f, err := strconv.ParseFloat(word, 64); err == nil {
				args = append(args, table.Float(f))
				continue
			}
		}
		if n, err := strconv.ParseInt(word, 10, 64); err == nil {
			args = append(args, table.Int(n))
			continue
		}
		return nil, fmt.Errorf("cannot parse argument %q (quote strings with '...')", word)
	}
}

func printResult(out io.Writer, cols []string, rows []table.Row) {
	if len(cols) == 0 {
		return
	}
	fmt.Fprintln(out, strings.Join(cols, " | "))
	limit := len(rows)
	const maxShow = 40
	if limit > maxShow {
		limit = maxShow
	}
	for _, r := range rows[:limit] {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, " | "))
	}
	if len(rows) > limit {
		fmt.Fprintf(out, "... (%d rows total)\n", len(rows))
	}
}

func printHelp(out io.Writer, connected bool) {
	fmt.Fprint(out, `Statements:
  CREATE TABLE t (col TYPE, ...) [STORAGE = FLAT|INDEXED|BOTH] [INDEX ON col] [CAPACITY = n]
  INSERT INTO t VALUES (...), (...)
  SELECT cols|aggregates FROM t [JOIN t2 ON a = b] [WHERE expr] [GROUP BY expr]
         [ORDER BY col [ASC|DESC]] [LIMIT n] [FORCE alg]
  UPDATE t SET col = expr [WHERE expr]
  DELETE FROM t [WHERE expr]
  DROP TABLE t
  EXPLAIN <stmt>                 show the physical plan instead of executing
Types: INTEGER, FLOAT, VARCHAR(n), BOOLEAN, DATE (stored as days since epoch)
Aggregates: COUNT(*), SUM, AVG, MIN, MAX; functions: SUBSTR(s, start, len)
Statements take ? or $n placeholders when prepared:
  \prepare name <sql>            parse once, keep under a name
  \exec name arg1 arg2 ...       run it with bound arguments
                                 (args: 42, 1.5, 'text', TRUE, NULL)
  \explain <sql>                 shorthand for EXPLAIN <sql>
`)
	if connected {
		fmt.Fprintln(out, `Meta: \prepare, \exec, \explain, \stats, \q`)
	} else {
		fmt.Fprintln(out, `Meta: \prepare, \exec, \explain, \stats, \tables, \mem, \q`)
	}
}
