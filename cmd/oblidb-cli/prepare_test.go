package main

import (
	"strings"
	"testing"
	"time"

	"oblidb/internal/server"
	"oblidb/internal/table"
)

// preparedScript is a session exercising \prepare and \exec: prepare a
// parameterized select, run it with two different arguments, hit the
// arity and unknown-name error paths, and re-prepare over a name.
var preparedScript = strings.Join([]string{
	"CREATE TABLE t (id INTEGER, name VARCHAR(8))",
	"INSERT INTO t VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')",
	`\prepare byid SELECT name FROM t WHERE id = $1`,
	`\exec byid 2`,
	`\exec byid 3`,
	`\exec byid`,           // arity error
	`\exec nosuch 1`,       // unknown name
	`\exec byid 'not done`, // bad argument syntax
	`\prepare ins INSERT INTO t VALUES (?, ?)`,
	`\exec ins 4 'dave'`,
	`\exec byid 4`,
	`\prepare byid SELECT id FROM t WHERE name = ?`, // redefine
	`\exec byid 'alice'`,
	`\prepare`, // usage error
	`\exec`,    // usage error
	`\q`,
}, "\n") + "\n"

func checkPreparedOutput(t *testing.T, out string) {
	t.Helper()
	for _, want := range []string{
		`prepared "byid" (1 parameter(s))`,
		`"bob"`,
		`"carol"`,
		"parameter", // arity error mentions parameters
		`no prepared statement "nosuch"`,
		"unterminated string argument",
		`prepared "ins" (2 parameter(s))`,
		`"dave"`, // bound insert visible through the prepared select
		"1",      // id of alice after redefinition
		`usage: \prepare name <sql>`,
		`usage: \exec name [arg1 arg2 ...]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prepared session output missing %q:\n%s", want, out)
		}
	}
}

func TestShellPrepareExecEmbedded(t *testing.T) {
	checkPreparedOutput(t, driveShell(t, preparedScript, ""))
}

func TestShellPrepareExecConnect(t *testing.T) {
	srv, err := server.New(server.Config{EpochSize: 4, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	checkPreparedOutput(t, driveShell(t, preparedScript, srv.Addr().String()))
}

func TestParseShellArgs(t *testing.T) {
	args, err := parseShellArgs("42 -7 1.5 'al''ice' TRUE false NULL ''")
	if err != nil {
		t.Fatal(err)
	}
	want := []table.Value{
		table.Int(42), table.Int(-7), table.Float(1.5),
		table.Str("al'ice"), table.Bool(true), table.Bool(false),
		table.Null(), table.Str(""),
	}
	if len(args) != len(want) {
		t.Fatalf("got %d args, want %d: %v", len(args), len(want), args)
	}
	for i, w := range want {
		if args[i].Kind != w.Kind || args[i].String() != w.String() {
			t.Errorf("arg %d: got %s (%s), want %s (%s)", i, args[i], args[i].Kind, w, w.Kind)
		}
	}
	if _, err := parseShellArgs("bareword"); err == nil {
		t.Error("bareword argument unexpectedly parsed")
	}
	if _, err := parseShellArgs("'open"); err == nil {
		t.Error("unterminated string unexpectedly parsed")
	}
	if args, err := parseShellArgs("   "); err != nil || len(args) != 0 {
		t.Errorf("blank args: %v, %v", args, err)
	}
}
