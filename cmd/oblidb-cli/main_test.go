package main

import (
	"strings"
	"testing"
	"time"

	"oblidb/internal/server"
	"oblidb/internal/table"
)

// driveShell runs the shell over a scripted session and returns its
// output.
func driveShell(t *testing.T, script string, connect string) string {
	t.Helper()
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, 0, 0, false, connect); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestShellEmbeddedSession(t *testing.T) {
	script := strings.Join([]string{
		`\help`,
		"CREATE TABLE t (id INTEGER, name VARCHAR(8))",
		"INSERT INTO t VALUES (1, 'alice'), (2, 'bob')",
		"SELECT name FROM t WHERE id = 2",
		"SELECT id FROM t WHERE id >= 1 ORDER BY id DESC LIMIT 1",
		"SELECT BROKEN SYNTAX !!",
		`\explain SELECT name FROM t WHERE id = $1 ORDER BY id LIMIT 1`,
		`\tables`,
		`\mem`,
		`\stats`,
		`\q`,
	}, "\n") + "\n"
	out := driveShell(t, script, "")
	for _, want := range []string{
		"ObliDB shell",
		"Statements:",       // \help
		`"bob"`,             // the select's result row
		"error:",            // the broken statement reports, not aborts
		"  t",               // \tables
		"oblivious memory:", // \mem
		"plan cache:",       // \stats works embedded now
		"operator picks:",   // \stats pick counters
		"Limit 1",           // \explain renders the plan tree
		"Sort id",
		"sort=", // the ORDER BY execution was tallied
	} {
		if !strings.Contains(out, want) {
			t.Errorf("embedded session output missing %q:\n%s", want, out)
		}
	}
}

func TestShellConnectSession(t *testing.T) {
	srv, err := server.New(server.Config{EpochSize: 4, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}

	script := strings.Join([]string{
		"CREATE TABLE c (k INTEGER)",
		"INSERT INTO c VALUES (5), (6)",
		"SELECT COUNT(*) FROM c",
		"SELECT k FROM c ORDER BY k DESC LIMIT 1",
		`\explain SELECT k FROM c ORDER BY k DESC LIMIT 1`,
		`\tables`, // unavailable over the wire
		`\stats`,
		"exit",
	}, "\n") + "\n"
	out := driveShell(t, script, srv.Addr().String())
	for _, want := range []string{
		"connected to",
		"COUNT(*)",
		"2",           // the count
		"6",           // the ORDER BY ... LIMIT result
		"Sort k DESC", // \explain travels the wire
		"unavailable in connect mode",
		"epochs:",
		"plan cache:", // the server publishes its cache counters
	} {
		if !strings.Contains(out, want) {
			t.Errorf("connect session output missing %q:\n%s", want, out)
		}
	}
}

func TestShellEOFExitsClean(t *testing.T) {
	// EOF without \q is a clean exit (scanner.Err() == nil), not an
	// error.
	out := driveShell(t, "SELECT COUNT(*) FROM nothing\n", "")
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing-table error not reported:\n%s", out)
	}
}

func TestPrintResultTruncatesLongResults(t *testing.T) {
	var out strings.Builder
	rows := make([]table.Row, 50)
	for i := range rows {
		rows[i] = table.Row{table.Int(int64(i))}
	}
	printResult(&out, []string{"k"}, rows)
	if !strings.Contains(out.String(), "(50 rows total)") {
		t.Fatalf("long result not truncated:\n%s", out.String())
	}
}
