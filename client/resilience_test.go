package client_test

import (
	"context"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"oblidb"
	"oblidb/client"
	"oblidb/internal/server"
)

// proxy is a severable TCP relay between the client under test and a
// real server: Sever() kills every live hop at once, simulating a
// server crash or network partition, while the listener stays up so a
// reconnecting client can get through again.
type proxy struct {
	t      *testing.T
	lis    net.Listener
	target string

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

func newProxy(t *testing.T, target string) *proxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &proxy{t: t, lis: lis, target: target}
	go p.accept()
	t.Cleanup(p.close)
	return p
}

func (p *proxy) addr() string { return p.lis.Addr().String() }

func (p *proxy) accept() {
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return
		}
		s, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			s.Close()
			return
		}
		p.conns = append(p.conns, c, s)
		p.mu.Unlock()
		go pipe(c, s)
		go pipe(s, c)
	}
}

func pipe(dst, src net.Conn) {
	io.Copy(dst, src)
	dst.Close()
	src.Close()
}

// sever drops every live connection; the listener keeps accepting.
func (p *proxy) sever() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *proxy) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.lis.Close()
	p.sever()
}

// TestReconnectRePrepareRetry pins the client's whole resilience path:
// after the connection is severed mid-session, a read on a prepared
// statement reconnects (with backoff), transparently re-prepares the
// handle on the fresh session, retries, and returns the same answer —
// and the reconnect/retry work is visible in ConnStats.
func TestReconnectRePrepareRetry(t *testing.T) {
	addr := startServer(t)
	p := newProxy(t, addr)
	c, err := client.DialOptions(p.addr(), client.Options{
		Reconnect:   true,
		RetryReads:  true,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxRetries:  25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE r (k INTEGER, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO r VALUES (1, 10), (2, 20), (3, 30)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("SELECT COUNT(*) FROM r WHERE v >= $1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("before sever: count = %v", res.Rows[0][0])
	}

	p.sever()

	// The next execution rides the full recovery path; it must return
	// the right answer, not an error and never a wrong one.
	res, err = st.Exec(20)
	if err != nil {
		t.Fatalf("exec across reconnect: %v", err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("after reconnect: count = %v", res.Rows[0][0])
	}
	stats := c.Stats()
	if stats.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", stats.Reconnects)
	}
	if stats.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", stats.Retries)
	}
	if !stats.Connected {
		t.Fatal("stats report disconnected after successful reconnect")
	}
	// Writes work on the recovered session too (the table survived —
	// only the connection died, not the server).
	if _, err := c.Exec("INSERT INTO r VALUES (4, 40)"); err != nil {
		t.Fatalf("write after reconnect: %v", err)
	}
}

// TestOverloadCodeSurfacedToClient pins end-to-end error typing: a
// server-side admission rejection crosses the wire and surfaces through
// the client as an error the public oblidb.ErrorCodeOf / Retriable
// helpers classify — no message-string parsing needed.
func TestOverloadCodeSurfacedToClient(t *testing.T) {
	srv, err := server.New(server.Config{
		Manual:           true,
		MaxPending:       1,
		AdmissionTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}

	c, err := client.Dial(srv.Addr().String()) // plain Dial: no auto-retry
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two statements against a one-slot queue that nothing drains: one
	// waits for an epoch, the other is rejected with the typed overload.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Exec("SELECT COUNT(*) FROM oblidb_pad")
			errs <- err
		}()
	}
	var overload error
	select {
	case overload = <-errs:
	case <-time.After(10 * time.Second):
		t.Fatal("no admission rejection arrived")
	}
	if overload == nil {
		t.Fatal("both statements accepted by a one-slot queue that never drains")
	}
	if code := oblidb.ErrorCodeOf(overload); code != oblidb.CodeOverload {
		t.Fatalf("rejection code = %v, want overload (err: %v)", code, overload)
	}
	if !oblidb.Retriable(overload) {
		t.Fatal("overload rejection must classify as retriable")
	}
	// Drain the queued statement; it completes normally.
	srv.RunEpoch()
	if err := <-errs; err != nil {
		t.Fatalf("queued statement after overload: %v", err)
	}
}

// TestCloseIdempotent pins Close's contract: double Close is safe and
// calls after Close fail immediately with a terminal, non-retriable
// error.
func TestCloseIdempotent(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT COUNT(*) FROM oblidb_pad"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	_, err = c.Exec("SELECT COUNT(*) FROM oblidb_pad")
	if err == nil || !strings.Contains(err.Error(), "connection closed") {
		t.Fatalf("exec after close: %v", err)
	}
	if oblidb.Retriable(err) {
		t.Fatal("deliberate close must not classify as retriable")
	}
}

// TestNoGoroutineLeaks pins teardown hygiene: plain and reconnecting
// connections — including one that lived through a sever/redial cycle —
// leave no reader, redial, or writer goroutines behind after Close.
func TestNoGoroutineLeaks(t *testing.T) {
	addr := startServer(t)
	p := newProxy(t, addr)
	before := runtime.NumGoroutine()

	// A plain connection's full lifecycle.
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c1.Prepare("SELECT COUNT(*) FROM oblidb_pad")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// A reconnecting connection severed mid-life: the redial loop and
	// the replacement reader must both die with Close.
	c2, err := client.DialOptions(p.addr(), client.Options{
		Reconnect:   true,
		RetryReads:  true,
		BackoffBase: 2 * time.Millisecond,
		MaxRetries:  25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("SELECT COUNT(*) FROM oblidb_pad"); err != nil {
		t.Fatal(err)
	}
	p.sever()
	if _, err := c2.Exec("SELECT COUNT(*) FROM oblidb_pad"); err != nil {
		t.Fatalf("exec across reconnect: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	p.close()

	// Server-side session goroutines unwind asynchronously after the
	// client hangs up; poll until the count settles back.
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > before {
		select {
		case <-deadline:
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestContextCancelDuringReconnect pins that a context deadline cuts a
// retry loop short instead of sleeping out the full backoff schedule
// against a server that never comes back.
func TestContextCancelDuringReconnect(t *testing.T) {
	addr := startServer(t)
	p := newProxy(t, addr)
	c, err := client.DialOptions(p.addr(), client.Options{
		Reconnect:   true,
		RetryReads:  true,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  time.Second,
		MaxRetries:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT COUNT(*) FROM oblidb_pad"); err != nil {
		t.Fatal(err)
	}
	p.close() // listener gone too: reconnect can never succeed
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ExecContext(ctx, "SELECT COUNT(*) FROM oblidb_pad")
	if err == nil {
		t.Fatal("exec succeeded with no server behind the proxy")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled exec took %s", elapsed)
	}
}
