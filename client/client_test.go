package client_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/server"
	"oblidb/internal/wire"
)

// startServer brings up a real server on loopback with a fast epoch
// cadence and returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{EpochSize: 4, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	return srv.Addr().String()
}

func TestPrepareExecPreparedLifecycle(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE t (k INTEGER, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)"); err != nil {
		t.Fatal(err)
	}

	st, err := c.Prepare("SELECT COUNT(*) FROM t WHERE v >= 20")
	if err != nil {
		t.Fatal(err)
	}
	if st.String() != "SELECT COUNT(*) FROM t WHERE v >= 20" {
		t.Fatalf("Stmt.String = %q", st.String())
	}
	for i := 0; i < 3; i++ {
		res, err := st.Exec()
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 2 {
			t.Fatalf("exec %d returned %v", i, res.Rows)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Executing a closed handle is an immediate error, not a hang or a
	// protocol desync.
	if _, err := st.Exec(); err == nil || !strings.Contains(err.Error(), "statement is closed") {
		t.Fatalf("exec after close: %v", err)
	}
	// The connection is still healthy after the error.
	if _, err := c.Exec("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("connection unusable after prepared-statement error: %v", err)
	}
}

func TestPrepareErrorPaths(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Parse errors surface at Prepare time, before any epoch slot is
	// spent.
	if _, err := c.Prepare("SELEC * FROM t"); err == nil {
		t.Fatal("Prepare of invalid SQL succeeded")
	}
	// The server's pad table is reserved against mutation, prepared or
	// not.
	if _, err := c.Prepare("DROP TABLE oblidb_pad"); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("Prepare of reserved-table DDL: %v", err)
	}
	// Exec of a statement against a missing table is an epoch-time
	// error delivered to the right request.
	if _, err := c.Exec("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "no table") {
		t.Fatalf("select from missing table: %v", err)
	}
}

// TestSlowDecodeFrameBoundary drives the wire protocol over a raw
// connection that dribbles bytes across frame boundaries in both
// directions: a frame header split from its payload (and split within
// itself) must decode exactly as a contiguous write would.
func TestSlowDecodeFrameBoundary(t *testing.T) {
	addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := wire.EncodeRequest(&wire.Request{Type: wire.TExec, ID: 42, SQL: "SELECT COUNT(*) FROM oblidb_pad"})
	frame := make([]byte, 0, 4+len(payload))
	frame = append(frame, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
	frame = append(frame, payload...)

	// Dribble: 1 byte at a time with pauses, crossing the length-prefix
	// boundary and every payload boundary.
	for i := range frame {
		if _, err := conn.Write(frame[i : i+1]); err != nil {
			t.Fatal(err)
		}
		if i < 6 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Read the response one byte at a time too.
	readFull := func(n int) []byte {
		buf := make([]byte, n)
		for off := 0; off < n; {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			m, err := conn.Read(buf[off : off+1])
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			off += m
		}
		return buf
	}
	hdr := readFull(4)
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n <= 0 || n > wire.MaxFrame {
		t.Fatalf("bad response frame length %d", n)
	}
	resp, err := wire.DecodeResponse(readFull(n))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 {
		t.Fatalf("response answers request %d, want 42", resp.ID)
	}
	if resp.Type != wire.TResult {
		t.Fatalf("response type %d (err %q)", resp.Type, resp.Err)
	}
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].AsInt() != 1 {
		t.Fatalf("pad-table count = %v", resp.Result.Rows)
	}
}

func TestConnectionLossFailsPending(t *testing.T) {
	// A "server" that accepts, reads nothing, and abruptly drops the
	// connection: every pending request must fail, never hang, and the
	// connection must stay failed (sticky error).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	dropped := make(chan struct{})
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
		conn.Close()
		close(dropped)
	}()
	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Exec("SELECT COUNT(*) FROM oblidb_pad")
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending request succeeded on a dropped connection")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending request hung after connection loss")
	}
	<-dropped
	if _, err := c.Exec("SELECT 1 FROM oblidb_pad"); err == nil {
		t.Fatal("exec on dead connection succeeded")
	}
}
