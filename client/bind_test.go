package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/server"
)

func TestBoundArgsRoundTrip(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, stmt := range []string{
		"CREATE TABLE t (k INTEGER, v INTEGER, name VARCHAR(16))",
		"INSERT INTO t VALUES (1, 10, 'alice'), (2, 20, 'bob'), (3, 30, 'carol')",
	} {
		if _, err := c.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	st, err := c.Prepare("SELECT name FROM t WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", st.NumParams())
	}
	want := map[int]string{1: "alice", 2: "bob", 3: "carol"}
	for k, name := range want {
		res, err := st.Exec(k)
		if err != nil {
			t.Fatalf("exec(%d): %v", k, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsString() != name {
			t.Fatalf("exec(%d) = %v, want %q", k, res.Rows, name)
		}
	}

	// Arity errors are client-side and instant — no epoch slot spent.
	if _, err := st.Exec(); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("no-arg exec of 1-param statement: %v", err)
	}
	if _, err := st.Exec(1, 2); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("2-arg exec of 1-param statement: %v", err)
	}

	// An INSERT through bound args, with mixed types.
	ins, err := c.Prepare("INSERT INTO t VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	if _, err := ins.Exec(4, 40, "dave"); err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "dave" {
		t.Fatalf("bound insert not visible: %v", res.Rows)
	}

	// Unparameterized Exec of a placeholder statement is rejected by
	// the server with a helpful error.
	if _, err := c.Exec("SELECT * FROM t WHERE k = ?"); err == nil ||
		!strings.Contains(err.Error(), "prepare") {
		t.Fatalf("TExec of parameterized statement: %v", err)
	}
}

func TestStmtCloseIdempotentAndAfterConnLoss(t *testing.T) {
	srv, err := server.New(server.Config{EpochSize: 4, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE TABLE s (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("SELECT COUNT(*) FROM s WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	// Double Close: second call is a no-op, same result.
	if err := st.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Close after connection loss must not error or panic.
	st2, err := c.Prepare("SELECT COUNT(*) FROM s WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Give the reader goroutine a moment to mark the connection dead.
	for i := 0; i < 2000; i++ {
		if _, err := st2.Exec(1); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("Close after connection loss: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("second Close after connection loss: %v", err)
	}
}

func TestConnCloseReleasesHandles(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE TABLE r (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var stmts []*client.Stmt
	for i := 0; i < 3; i++ {
		st, err := c.Prepare("SELECT COUNT(*) FROM r WHERE k = $1")
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, st)
	}
	// Conn.Close sends best-effort TClosePrepared for each open handle,
	// then closes the socket.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Statements closed via the connection: Close afterwards stays nil.
	for i, st := range stmts {
		if err := st.Close(); err != nil {
			t.Fatalf("stmt %d Close after Conn.Close: %v", i, err)
		}
	}
}

func TestExecContextCancellation(t *testing.T) {
	// A manual-mode server never runs an epoch on its own, so the
	// statement stays queued and the context always wins the race.
	srv, err := server.New(server.Config{EpochSize: 1, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ExecContext(ctx, "SELECT 1 FROM oblidb_pad")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not unblock the round trip promptly")
	}
}
