// Package client is the network client for an ObliDB server
// (cmd/oblidb-server): Dial a server, Exec SQL, Prepare parameterized
// statements for repeated execution with bound arguments, and read
// server Stats.
//
// A Conn is safe for concurrent use. Each request carries an id, so any
// number of goroutines can have statements in flight on one connection;
// the server answers when the epoch scheduler executes them, which
// means latency is quantized to the server's epoch cadence — batch
// concurrent work rather than serializing round trips.
//
//	c, err := client.Dial("localhost:7744")
//	if err != nil { ... }
//	defer c.Close()
//	c.Exec(`CREATE TABLE t (id INTEGER, name VARCHAR(16))`)
//	st, err := c.Prepare(`SELECT name FROM t WHERE id = $1`)
//	res, err := st.Exec(2)
//
// Prepared statements separate the public statement shape (sent once,
// at Prepare) from the private argument values, which travel only
// inside the encrypted channel and bind inside the enclave.
package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"oblidb/internal/table"
	"oblidb/internal/wire"
)

// Result is a materialized query result (columns plus decoded rows).
type Result = wire.Result

// Stats is a server's self-reported counters.
type Stats = wire.Stats

// Conn is one connection to an ObliDB server, safe for concurrent use.
type Conn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	// Local traffic counters (see Stats).
	framesSent, framesReceived atomic.Uint64
	bytesWritten, bytesRead    atomic.Uint64

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan *wire.Response
	stmts   map[uint32]struct{} // open prepared handles
	err     error               // terminal receive error, sticky
}

// ConnStats is a connection's local self-report: counters the client
// maintains itself, available even when the server is unreachable.
// Frame counts include fire-and-forget frames (statement closes);
// bytes include the 4-byte frame headers.
type ConnStats struct {
	FramesSent, FramesReceived uint64
	BytesWritten, BytesRead    uint64
	// Pending is the number of requests awaiting a response.
	Pending int
	// LastError is the terminal connection error, "" while healthy.
	LastError string
}

// Stats reports the connection's local counters. For the server's
// self-report (epochs, plan cache, the full metrics snapshot), use
// ServerStats.
func (c *Conn) Stats() ConnStats {
	st := ConnStats{
		FramesSent:     c.framesSent.Load(),
		FramesReceived: c.framesReceived.Load(),
		BytesWritten:   c.bytesWritten.Load(),
		BytesRead:      c.bytesRead.Load(),
	}
	c.mu.Lock()
	st.Pending = len(c.pending)
	if c.err != nil {
		st.LastError = c.err.Error()
	}
	c.mu.Unlock()
	return st
}

// Dial connects to an ObliDB server at addr ("host:port").
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:    nc,
		pending: make(map[uint32]chan *wire.Response),
		stmts:   make(map[uint32]struct{}),
	}
	go c.receive()
	return c, nil
}

// receive is the single reader goroutine: it dispatches each response
// to the request that is waiting for it, and on connection failure
// fails every pending request.
func (c *Conn) receive() {
	for {
		payload, err := wire.ReadFrame(c.conn)
		if err == nil {
			c.framesReceived.Add(1)
			c.bytesRead.Add(uint64(len(payload)) + 4)
			var resp *wire.Response
			if resp, err = wire.DecodeResponse(payload); err == nil {
				c.mu.Lock()
				ch := c.pending[resp.ID]
				delete(c.pending, resp.ID)
				c.mu.Unlock()
				if ch != nil {
					ch <- resp
				}
				continue
			}
		}
		c.mu.Lock()
		if c.err == nil {
			c.err = fmt.Errorf("oblidb client: connection lost: %w", err)
		}
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
		c.mu.Unlock()
		return
	}
}

// roundTrip sends one request and waits for its response, honoring ctx
// while waiting: on cancellation the pending slot is abandoned (the
// statement may still execute server-side; only the reply is dropped).
func (c *Conn) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	payload := wire.EncodeRequest(req)
	c.wmu.Lock()
	err := wire.WriteFrame(c.conn, payload)
	c.wmu.Unlock()
	if err == nil {
		c.framesSent.Add(1)
		c.bytesWritten.Add(uint64(len(payload)) + 4)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		if resp.Type == wire.TError {
			return nil, fmt.Errorf("oblidb: %s", resp.Err)
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Exec runs one SQL statement (without placeholders) on the server and
// returns its result. The call blocks until the server's epoch
// scheduler executes the statement.
func (c *Conn) Exec(sql string) (*Result, error) {
	return c.ExecContext(context.Background(), sql)
}

// ExecContext is Exec honoring ctx while waiting for the epoch
// scheduler.
func (c *Conn) ExecContext(ctx context.Context, sql string) (*Result, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Type: wire.TExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// Stmt is a server-side prepared statement. It is safe for concurrent
// use; Close is idempotent and safe after connection loss.
type Stmt struct {
	c         *Conn
	handle    uint32
	sql       string
	numParams int

	closeOnce sync.Once
	closeErr  error
}

// Prepare parses sql on the server and returns a handle for repeated
// execution without re-parsing. The statement may contain ? / $n
// placeholders, bound per execution by Exec's arguments.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	return c.PrepareContext(context.Background(), sql)
}

// PrepareContext is Prepare honoring ctx.
func (c *Conn) PrepareContext(ctx context.Context, sql string) (*Stmt, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Type: wire.TPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TPrepared {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	st := &Stmt{c: c, handle: resp.Handle, sql: sql, numParams: int(resp.NumParams)}
	c.mu.Lock()
	c.stmts[st.handle] = struct{}{}
	c.mu.Unlock()
	return st, nil
}

// Exec runs the prepared statement with the given arguments bound to
// its placeholders. Accepted argument types are those of
// table.FromAny: Go integers, floats, string, []byte, bool, and nil.
func (st *Stmt) Exec(args ...any) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec honoring ctx while waiting for the epoch
// scheduler.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	vals := make([]table.Value, len(args))
	for i, a := range args {
		v, err := table.FromAny(a)
		if err != nil {
			return nil, fmt.Errorf("oblidb client: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	if len(vals) != st.numParams {
		return nil, fmt.Errorf("oblidb client: statement has %d parameter(s), got %d argument(s)",
			st.numParams, len(vals))
	}
	resp, err := st.c.roundTrip(ctx, &wire.Request{Type: wire.TExecPrepared, Handle: st.handle, Args: vals})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// NumParams reports how many arguments Exec requires.
func (st *Stmt) NumParams() int { return st.numParams }

// String returns the statement's SQL.
func (st *Stmt) String() string { return st.sql }

// Close releases the server-side handle. It is idempotent, and safe
// after connection loss (the server released the handle with the
// session). The statement must not be executed afterwards.
func (st *Stmt) Close() error {
	st.closeOnce.Do(func() {
		st.c.mu.Lock()
		_, registered := st.c.stmts[st.handle]
		delete(st.c.stmts, st.handle)
		lost := st.c.err != nil
		st.c.mu.Unlock()
		if !registered || lost {
			// Either Conn.Close already released the handle, or the
			// session is gone and took its prepared handles with it;
			// nothing to release either way.
			return
		}
		st.closeErr = st.c.sendClose(st.handle)
	})
	return st.closeErr
}

// sendClose writes a TClosePrepared frame (fire-and-forget; the server
// does not answer it).
func (c *Conn) sendClose(handle uint32) error {
	payload := wire.EncodeRequest(&wire.Request{Type: wire.TClosePrepared, Handle: handle})
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.conn, payload); err != nil {
		return err
	}
	c.framesSent.Add(1)
	c.bytesWritten.Add(uint64(len(payload)) + 4)
	return nil
}

// txControl round-trips one empty-body transaction frame.
func (c *Conn) txControl(ctx context.Context, t byte) (*Result, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Type: t})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// Begin opens a transaction on this connection's session. Writes issued
// until Commit are deferred server-side (they acknowledge 0 affected
// rows immediately); reads keep executing against the pre-transaction
// snapshot. A connection has at most one open transaction.
func (c *Conn) Begin(ctx context.Context) error {
	_, err := c.txControl(ctx, wire.TBegin)
	return err
}

// Commit applies the transaction's deferred writes atomically in one
// epoch slot — and, when the server journals, as one durable commit.
// The result's single cell is the transaction's total affected-row
// count.
func (c *Conn) Commit(ctx context.Context) (*Result, error) {
	return c.txControl(ctx, wire.TCommit)
}

// Rollback discards the transaction's deferred writes.
func (c *Conn) Rollback(ctx context.Context) error {
	_, err := c.txControl(ctx, wire.TRollback)
	return err
}

// ServerStats fetches the server's public counters, including (from v3
// servers) the full metrics snapshot in Stats.MetricsJSON.
func (c *Conn) ServerStats() (Stats, error) {
	resp, err := c.roundTrip(context.Background(), &wire.Request{Type: wire.TStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Type != wire.TStatsResult {
		return Stats{}, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Stats, nil
}

// Close releases every outstanding prepared handle server-side
// (best-effort) and closes the connection; in-flight requests fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	handles := make([]uint32, 0, len(c.stmts))
	for h := range c.stmts {
		handles = append(handles, h)
	}
	c.stmts = make(map[uint32]struct{})
	lost := c.err != nil
	c.mu.Unlock()
	if !lost {
		for _, h := range handles {
			if err := c.sendClose(h); err != nil {
				break // the socket is going away anyway
			}
		}
	}
	return c.conn.Close()
}
