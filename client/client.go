// Package client is the network client for an ObliDB server
// (cmd/oblidb-server): Dial a server, Exec SQL, Prepare parameterized
// statements for repeated execution with bound arguments, and read
// server Stats.
//
// A Conn is safe for concurrent use. Each request carries an id, so any
// number of goroutines can have statements in flight on one connection;
// the server answers when the epoch scheduler executes them, which
// means latency is quantized to the server's epoch cadence — batch
// concurrent work rather than serializing round trips.
//
//	c, err := client.Dial("localhost:7744")
//	if err != nil { ... }
//	defer c.Close()
//	c.Exec(`CREATE TABLE t (id INTEGER, name VARCHAR(16))`)
//	st, err := c.Prepare(`SELECT name FROM t WHERE id = $1`)
//	res, err := st.Exec(2)
//
// Prepared statements separate the public statement shape (sent once,
// at Prepare) from the private argument values, which travel only
// inside the encrypted channel and bind inside the enclave.
//
// # Resilience
//
// DialOptions opens a connection that survives server restarts and
// transient faults: with Options.Reconnect the client redials with
// exponential backoff and jitter whenever the connection drops, and
// prepared statements transparently re-prepare on the new connection.
// Failures carry the stable oberr codes from the wire protocol, so
// oblidb.ErrorCodeOf / oblidb.Retriable classify them mechanically.
//
// The retry policy is deliberate about ambiguity. A statement that
// provably never executed (the connection was down before sending, or
// the server answered with a typed overload/shutdown rejection) is safe
// to retry even if it mutates — the client does so automatically in
// reconnect mode. A statement whose connection died after the request
// may have been sent (CodeConnLost) might have executed: it is retried
// only when Options.RetryReads is set AND the statement is read-only.
// Transaction control frames are never auto-retried — the server rolls
// an open transaction back when its session drops, so replaying COMMIT
// on a fresh session would falsely acknowledge an empty transaction.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oblidb/internal/oberr"
	"oblidb/internal/table"
	"oblidb/internal/wire"
)

// Result is a materialized query result (columns plus decoded rows).
type Result = wire.Result

// Stats is a server's self-reported counters.
type Stats = wire.Stats

// errClosed is the terminal error after Close: not typed, not
// retriable — the application closed the connection on purpose.
var errClosed = errors.New("oblidb client: connection closed")

// Options configures a Conn's resilience behavior. The zero value (as
// used by Dial) is the legacy behavior: no reconnect, no automatic
// retry, connection loss is terminal.
type Options struct {
	// Reconnect redials the server with exponential backoff and jitter
	// whenever the connection drops, instead of failing permanently.
	// Statements that provably never executed (CodeUnavailable,
	// CodeOverload, CodeShutdown) are retried automatically — those
	// retries are safe even for mutations.
	Reconnect bool

	// RetryReads additionally retries read-only statements (and only
	// those) after an ambiguous connection loss (CodeConnLost), where a
	// mutation might already have executed server-side.
	RetryReads bool

	// BackoffBase is the first retry/redial delay; it doubles per
	// attempt up to BackoffMax, each sleep jittered to avoid reconnect
	// stampedes. Defaults: 20ms base, 2s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// MaxRetries bounds automatic retries per statement (not counting
	// the initial attempt). 0 or negative means the default, 4.
	MaxRetries int
}

// Conn is one connection to an ObliDB server, safe for concurrent use.
type Conn struct {
	addr string
	opts Options

	wmu sync.Mutex // serializes frame writes

	// Local traffic counters (see Stats).
	framesSent, framesReceived atomic.Uint64
	bytesWritten, bytesRead    atomic.Uint64
	reconnects, retries        atomic.Uint64

	mu      sync.Mutex
	conn    net.Conn // current connection; nil while down or reconnecting
	gen     uint64   // bumped per successful (re)dial; 1 at Dial
	nextID  uint32   // request ids are monotonic across reconnects
	pending map[uint32]chan *wire.Response
	stmts   map[*Stmt]struct{} // live prepared statements
	lastErr error              // most recent connection error
	closed  bool
	quit    chan struct{} // closed by Close; aborts redial/backoff sleeps
}

// ConnStats is a connection's local self-report: counters the client
// maintains itself, available even when the server is unreachable.
// Frame counts include fire-and-forget frames (statement closes);
// bytes include the 4-byte frame headers.
type ConnStats struct {
	FramesSent, FramesReceived uint64
	BytesWritten, BytesRead    uint64
	// Reconnects counts successful redials; Retries counts automatic
	// statement re-submissions (each also backed off).
	Reconnects, Retries uint64
	// Pending is the number of requests awaiting a response.
	Pending int
	// Connected reports whether a healthy connection is up right now.
	Connected bool
	// LastError is the most recent connection error, "" while healthy
	// since the start. In reconnect mode it persists across a successful
	// redial as a record of the last fault.
	LastError string
}

// Stats reports the connection's local counters. For the server's
// self-report (epochs, plan cache, the full metrics snapshot), use
// ServerStats.
func (c *Conn) Stats() ConnStats {
	st := ConnStats{
		FramesSent:     c.framesSent.Load(),
		FramesReceived: c.framesReceived.Load(),
		BytesWritten:   c.bytesWritten.Load(),
		BytesRead:      c.bytesRead.Load(),
		Reconnects:     c.reconnects.Load(),
		Retries:        c.retries.Load(),
	}
	c.mu.Lock()
	st.Pending = len(c.pending)
	st.Connected = c.conn != nil && !c.closed
	if c.lastErr != nil {
		st.LastError = c.lastErr.Error()
	}
	c.mu.Unlock()
	return st
}

// Dial connects to an ObliDB server at addr ("host:port") with zero
// Options: no reconnect, no automatic retry.
func Dial(addr string) (*Conn, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to an ObliDB server at addr with the given
// resilience options.
func DialOptions(addr string, opts Options) (*Conn, error) {
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 20 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 4
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		addr:    addr,
		opts:    opts,
		conn:    nc,
		gen:     1,
		pending: make(map[uint32]chan *wire.Response),
		stmts:   make(map[*Stmt]struct{}),
		quit:    make(chan struct{}),
	}
	go c.receive(nc, 1)
	return c, nil
}

// generation reports the current connection generation. A Stmt prepared
// on generation g holds a server handle that is valid exactly while the
// Conn is still on generation g.
func (c *Conn) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// receive is the reader goroutine for one connection generation: it
// dispatches each response to the request waiting for it, and on
// connection failure fails every pending request and (in reconnect
// mode) starts the redial loop.
func (c *Conn) receive(nc net.Conn, gen uint64) {
	for {
		payload, err := wire.ReadFrame(nc)
		if err == nil {
			c.framesReceived.Add(1)
			c.bytesRead.Add(uint64(len(payload)) + 4)
			var resp *wire.Response
			if resp, err = wire.DecodeResponse(payload); err == nil {
				// Request ids are monotonic across reconnects, so a late
				// response from this connection can never be misdelivered
				// to a request sent on a newer one.
				c.mu.Lock()
				ch := c.pending[resp.ID]
				delete(c.pending, resp.ID)
				c.mu.Unlock()
				if ch != nil {
					ch <- resp
				}
				continue
			}
		}
		nc.Close()
		c.mu.Lock()
		if c.gen != gen {
			// A newer connection already took over; its reader owns the
			// pending map now.
			c.mu.Unlock()
			return
		}
		c.conn = nil
		c.lastErr = oberr.Wrapf(oberr.CodeConnLost, err, "oblidb client: connection lost")
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
		redial := c.opts.Reconnect && !c.closed
		c.mu.Unlock()
		if redial {
			go c.redial()
		}
		return
	}
}

// redial re-establishes the connection with exponential backoff and
// jitter, installing the new connection (and a fresh reader) under the
// next generation. It stops when Close is called.
func (c *Conn) redial() {
	delay := c.opts.BackoffBase
	for {
		select {
		case <-c.quit:
			return
		default:
		}
		nc, err := net.Dial("tcp", c.addr)
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				nc.Close()
				return
			}
			c.conn = nc
			c.gen++
			gen := c.gen
			c.mu.Unlock()
			c.reconnects.Add(1)
			go c.receive(nc, gen)
			return
		}
		select {
		case <-c.quit:
			return
		case <-time.After(jitter(delay)):
		}
		delay *= 2
		if delay > c.opts.BackoffMax {
			delay = c.opts.BackoffMax
		}
	}
}

// jitter spreads a backoff delay over [d/2, d] so a fleet of clients
// severed by the same fault does not redial in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// backoff sleeps before a retry attempt (0-based), honoring ctx and
// Close.
func (c *Conn) backoff(ctx context.Context, attempt int) error {
	d := c.opts.BackoffBase
	for i := 0; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.quit:
		return errClosed
	case <-time.After(jitter(d)):
		return nil
	}
}

// callPolicy says how a request may be retried.
type callPolicy struct {
	retry    bool // participate in automatic retry at all
	readOnly bool // statement provably does not mutate
}

// retriableNow decides whether one failed attempt may be resubmitted.
// The split is by ambiguity, not by retriability of the code alone:
// codes that guarantee the statement never executed are safe for any
// statement (in reconnect mode); the ambiguous CodeConnLost is safe
// only for read-only statements, and only when the caller opted in.
func (c *Conn) retriableNow(err error, readOnly bool) bool {
	switch oberr.CodeOf(err) {
	case oberr.CodeUnavailable, oberr.CodeOverload, oberr.CodeShutdown:
		return c.opts.Reconnect || (c.opts.RetryReads && readOnly)
	case oberr.CodeConnLost:
		return c.opts.RetryReads && readOnly
	}
	return false
}

// call sends a request, retrying per policy with backoff. It returns
// the connection generation the successful attempt ran on.
func (c *Conn) call(ctx context.Context, req *wire.Request, pol callPolicy) (*wire.Response, uint64, error) {
	for attempt := 0; ; attempt++ {
		resp, gen, err := c.callOnce(ctx, req)
		if err == nil {
			return resp, gen, nil
		}
		if !pol.retry || attempt >= c.opts.MaxRetries || !c.retriableNow(err, pol.readOnly) {
			return nil, 0, err
		}
		c.retries.Add(1)
		if berr := c.backoff(ctx, attempt); berr != nil {
			return nil, 0, berr
		}
	}
}

// callOnce sends one request on the current connection and waits for
// its response, honoring ctx while waiting: on cancellation the pending
// slot is abandoned (the statement may still execute server-side; only
// the reply is dropped). Failures are typed: no connection at all is
// CodeUnavailable (the request provably never left), everything after
// the send attempt is CodeConnLost (ambiguous), and TError responses
// carry the server's own code.
func (c *Conn) callOnce(ctx context.Context, req *wire.Request) (*wire.Response, uint64, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, errClosed
	}
	nc, gen := c.conn, c.gen
	if nc == nil {
		err := c.lastErr
		c.mu.Unlock()
		if c.opts.Reconnect || err == nil {
			// The redial loop owns recovery; this request was never sent.
			err = oberr.New(oberr.CodeUnavailable, "oblidb client: not connected (reconnect pending)")
		}
		return nil, gen, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	payload := wire.EncodeRequest(req)
	c.wmu.Lock()
	err := wire.WriteFrame(nc, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		// Some bytes may have left before the failure, so this is the
		// ambiguous class even though no response will come.
		return nil, gen, oberr.Wrapf(oberr.CodeConnLost, err, "oblidb client: send failed")
	}
	c.framesSent.Add(1)
	c.bytesWritten.Add(uint64(len(payload)) + 4)

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.lastErr
			c.mu.Unlock()
			if err == nil {
				err = oberr.New(oberr.CodeConnLost, "oblidb client: connection lost")
			}
			return nil, gen, err
		}
		if resp.Type == wire.TError {
			return nil, gen, respError(resp)
		}
		return resp, gen, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, gen, ctx.Err()
	}
}

// respError turns a TError frame into an error carrying the server's
// stable code (wire v5 extension), so oblidb.ErrorCodeOf and
// oblidb.Retriable work on client-surfaced errors. Frames without a
// code (older servers, client-mistake rejections) stay untyped.
func respError(r *wire.Response) error {
	if code := oberr.Code(r.ErrCode); code != oberr.CodeUnknown {
		return oberr.New(code, "oblidb: %s", r.Err)
	}
	return fmt.Errorf("oblidb: %s", r.Err)
}

// isReadOnly reports whether a statement provably cannot mutate — the
// gate for retrying it after an ambiguous connection loss. Only SELECT
// qualifies; anything unrecognized is conservatively a write.
func isReadOnly(sql string) bool {
	f := strings.Fields(sql)
	return len(f) > 0 && strings.EqualFold(f[0], "SELECT")
}

// Exec runs one SQL statement (without placeholders) on the server and
// returns its result. The call blocks until the server's epoch
// scheduler executes the statement.
func (c *Conn) Exec(sql string) (*Result, error) {
	return c.ExecContext(context.Background(), sql)
}

// ExecContext is Exec honoring ctx while waiting for the epoch
// scheduler.
func (c *Conn) ExecContext(ctx context.Context, sql string) (*Result, error) {
	pol := callPolicy{retry: true, readOnly: isReadOnly(sql)}
	resp, _, err := c.call(ctx, &wire.Request{Type: wire.TExec, SQL: sql}, pol)
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// Stmt is a server-side prepared statement. It is safe for concurrent
// use; Close is idempotent and safe after connection loss. In reconnect
// mode the statement transparently re-prepares itself on the new
// connection after a reconnect (handles are per-session server-side).
type Stmt struct {
	c         *Conn
	sql       string
	numParams int

	mu     sync.Mutex
	handle uint32
	gen    uint64 // connection generation the handle was prepared on
	closed bool

	closeOnce sync.Once
	closeErr  error
}

// Prepare parses sql on the server and returns a handle for repeated
// execution without re-parsing. The statement may contain ? / $n
// placeholders, bound per execution by Exec's arguments.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	return c.PrepareContext(context.Background(), sql)
}

// PrepareContext is Prepare honoring ctx.
func (c *Conn) PrepareContext(ctx context.Context, sql string) (*Stmt, error) {
	handle, numParams, gen, err := c.prepareOn(ctx, sql)
	if err != nil {
		return nil, err
	}
	st := &Stmt{c: c, sql: sql, numParams: numParams, handle: handle, gen: gen}
	c.mu.Lock()
	c.stmts[st] = struct{}{}
	c.mu.Unlock()
	return st, nil
}

// prepareOn prepares sql with its own retry loop (preparing is
// idempotent — it parses but never executes) and reports which
// connection generation holds the returned handle.
func (c *Conn) prepareOn(ctx context.Context, sql string) (uint32, int, uint64, error) {
	for attempt := 0; ; attempt++ {
		resp, gen, err := c.callOnce(ctx, &wire.Request{Type: wire.TPrepare, SQL: sql})
		if err == nil {
			if resp.Type != wire.TPrepared {
				return 0, 0, 0, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
			}
			return resp.Handle, int(resp.NumParams), gen, nil
		}
		if attempt >= c.opts.MaxRetries || !c.retriableNow(err, true) {
			return 0, 0, 0, err
		}
		c.retries.Add(1)
		if berr := c.backoff(ctx, attempt); berr != nil {
			return 0, 0, 0, berr
		}
	}
}

// ensure returns a handle valid for the current connection generation,
// re-preparing the statement if a reconnect invalidated it.
func (st *Stmt) ensure(ctx context.Context) (uint32, uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, 0, errors.New("oblidb client: statement is closed")
	}
	if cur := st.c.generation(); st.gen == cur {
		return st.handle, st.gen, nil
	}
	handle, numParams, gen, err := st.c.prepareOn(ctx, st.sql)
	if err != nil {
		return 0, 0, err
	}
	if numParams != st.numParams {
		return 0, 0, fmt.Errorf("oblidb client: statement re-prepared with %d parameter(s), had %d",
			numParams, st.numParams)
	}
	st.handle, st.gen = handle, gen
	return handle, gen, nil
}

// Exec runs the prepared statement with the given arguments bound to
// its placeholders. Accepted argument types are those of
// table.FromAny: Go integers, floats, string, []byte, bool, and nil.
func (st *Stmt) Exec(args ...any) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec honoring ctx while waiting for the epoch
// scheduler. The retry loop lives here rather than in call because a
// reconnect between attempts invalidates the server-side handle: each
// attempt re-ensures the handle against the current connection.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	vals := make([]table.Value, len(args))
	for i, a := range args {
		v, err := table.FromAny(a)
		if err != nil {
			return nil, fmt.Errorf("oblidb client: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	if len(vals) != st.numParams {
		return nil, fmt.Errorf("oblidb client: statement has %d parameter(s), got %d argument(s)",
			st.numParams, len(vals))
	}
	readOnly := isReadOnly(st.sql)
	for attempt := 0; ; attempt++ {
		handle, prepGen, err := st.ensure(ctx)
		if err != nil {
			return nil, err
		}
		resp, gen, err := st.c.callOnce(ctx,
			&wire.Request{Type: wire.TExecPrepared, Handle: handle, Args: vals})
		if err == nil {
			if resp.Type != wire.TResult {
				return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
			}
			return resp.Result, nil
		}
		if attempt >= st.c.opts.MaxRetries {
			return nil, err
		}
		// A reconnect slipped between ensure and the send: the handle the
		// request carried is stale on the new session. The statement was
		// not executed (the server rejects unknown handles), so looping to
		// re-prepare is always safe.
		if gen != prepGen {
			st.c.retries.Add(1)
			continue
		}
		if !st.c.retriableNow(err, readOnly) {
			return nil, err
		}
		st.c.retries.Add(1)
		if berr := st.c.backoff(ctx, attempt); berr != nil {
			return nil, berr
		}
	}
}

// NumParams reports how many arguments Exec requires.
func (st *Stmt) NumParams() int { return st.numParams }

// String returns the statement's SQL.
func (st *Stmt) String() string { return st.sql }

// Close releases the server-side handle. It is idempotent, and safe
// after connection loss or reconnect (a handle from a previous
// connection generation died with its session; there is nothing to
// release). The statement must not be executed afterwards.
func (st *Stmt) Close() error {
	st.closeOnce.Do(func() {
		st.mu.Lock()
		st.closed = true
		handle, gen := st.handle, st.gen
		st.mu.Unlock()
		st.c.mu.Lock()
		delete(st.c.stmts, st)
		live := !st.c.closed && st.c.conn != nil && st.c.gen == gen
		st.c.mu.Unlock()
		if live {
			st.closeErr = st.c.sendClose(handle)
		}
	})
	return st.closeErr
}

// sendClose writes a TClosePrepared frame (fire-and-forget; the server
// does not answer it).
func (c *Conn) sendClose(handle uint32) error {
	c.mu.Lock()
	nc := c.conn
	c.mu.Unlock()
	if nc == nil {
		return nil // the session is gone and took its handles with it
	}
	payload := wire.EncodeRequest(&wire.Request{Type: wire.TClosePrepared, Handle: handle})
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(nc, payload); err != nil {
		return err
	}
	c.framesSent.Add(1)
	c.bytesWritten.Add(uint64(len(payload)) + 4)
	return nil
}

// txControl round-trips one empty-body transaction frame. Transaction
// control is never auto-retried: the buffered transaction is session
// state, and a reconnected session has none — replaying COMMIT there
// would acknowledge an empty transaction as if it were the real one.
func (c *Conn) txControl(ctx context.Context, t byte) (*Result, error) {
	resp, _, err := c.call(ctx, &wire.Request{Type: t}, callPolicy{})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// Begin opens a transaction on this connection's session. Writes issued
// until Commit are deferred server-side (they acknowledge 0 affected
// rows immediately); reads keep executing against the pre-transaction
// snapshot. A connection has at most one open transaction.
func (c *Conn) Begin(ctx context.Context) error {
	_, err := c.txControl(ctx, wire.TBegin)
	return err
}

// Commit applies the transaction's deferred writes atomically in one
// epoch slot — and, when the server journals, as one durable commit.
// The result's single cell is the transaction's total affected-row
// count.
func (c *Conn) Commit(ctx context.Context) (*Result, error) {
	return c.txControl(ctx, wire.TCommit)
}

// Rollback discards the transaction's deferred writes.
func (c *Conn) Rollback(ctx context.Context) error {
	_, err := c.txControl(ctx, wire.TRollback)
	return err
}

// ServerStats fetches the server's public counters, including (from v3
// servers) the full metrics snapshot in Stats.MetricsJSON.
func (c *Conn) ServerStats() (Stats, error) {
	resp, _, err := c.call(context.Background(), &wire.Request{Type: wire.TStats},
		callPolicy{retry: true, readOnly: true})
	if err != nil {
		return Stats{}, err
	}
	if resp.Type != wire.TStatsResult {
		return Stats{}, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Stats, nil
}

// Close closes the connection and stops any redial in progress;
// in-flight requests fail promptly. It is idempotent. Server-side
// prepared handles are released with the session, so no per-handle
// frames are needed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nc := c.conn
	c.conn = nil
	close(c.quit)
	c.mu.Unlock()
	if nc != nil {
		// The reader goroutine notices the close, fails anything pending,
		// and exits.
		return nc.Close()
	}
	return nil
}
