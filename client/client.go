// Package client is the network client for an ObliDB server
// (cmd/oblidb-server): Dial a server, Exec SQL, Prepare statements for
// repeated execution, and read server Stats.
//
// A Conn is safe for concurrent use. Each request carries an id, so any
// number of goroutines can have statements in flight on one connection;
// the server answers when the epoch scheduler executes them, which
// means latency is quantized to the server's epoch cadence — batch
// concurrent work rather than serializing round trips.
//
//	c, err := client.Dial("localhost:7744")
//	if err != nil { ... }
//	defer c.Close()
//	c.Exec(`CREATE TABLE t (id INTEGER, name VARCHAR(16))`)
//	res, err := c.Exec(`SELECT name FROM t WHERE id = 2`)
package client

import (
	"fmt"
	"net"
	"sync"

	"oblidb/internal/wire"
)

// Result is a materialized query result (columns plus decoded rows).
type Result = wire.Result

// Stats is a server's self-reported counters.
type Stats = wire.Stats

// Conn is one connection to an ObliDB server, safe for concurrent use.
type Conn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan *wire.Response
	err     error // terminal receive error, sticky
}

// Dial connects to an ObliDB server at addr ("host:port").
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: nc, pending: make(map[uint32]chan *wire.Response)}
	go c.receive()
	return c, nil
}

// receive is the single reader goroutine: it dispatches each response
// to the request that is waiting for it, and on connection failure
// fails every pending request.
func (c *Conn) receive() {
	for {
		payload, err := wire.ReadFrame(c.conn)
		if err == nil {
			var resp *wire.Response
			if resp, err = wire.DecodeResponse(payload); err == nil {
				c.mu.Lock()
				ch := c.pending[resp.ID]
				delete(c.pending, resp.ID)
				c.mu.Unlock()
				if ch != nil {
					ch <- resp
				}
				continue
			}
		}
		c.mu.Lock()
		if c.err == nil {
			c.err = fmt.Errorf("oblidb client: connection lost: %w", err)
		}
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
		c.mu.Unlock()
		return
	}
}

// roundTrip sends one request and waits for its response.
func (c *Conn) roundTrip(req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	payload := wire.EncodeRequest(req)
	c.wmu.Lock()
	err := wire.WriteFrame(c.conn, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if resp.Type == wire.TError {
		return nil, fmt.Errorf("oblidb: %s", resp.Err)
	}
	return resp, nil
}

// Exec runs one SQL statement on the server and returns its result.
// The call blocks until the server's epoch scheduler executes the
// statement.
func (c *Conn) Exec(sql string) (*Result, error) {
	resp, err := c.roundTrip(&wire.Request{Type: wire.TExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	c      *Conn
	handle uint32
	sql    string
}

// Prepare parses sql on the server and returns a handle for repeated
// execution without re-parsing.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	resp, err := c.roundTrip(&wire.Request{Type: wire.TPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TPrepared {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return &Stmt{c: c, handle: resp.Handle, sql: sql}, nil
}

// Exec runs the prepared statement.
func (st *Stmt) Exec() (*Result, error) {
	resp, err := st.c.roundTrip(&wire.Request{Type: wire.TExecPrepared, Handle: st.handle})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.TResult {
		return nil, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Result, nil
}

// String returns the statement's SQL.
func (st *Stmt) String() string { return st.sql }

// Close releases the server-side handle. The statement must not be
// executed afterwards.
func (st *Stmt) Close() error {
	payload := wire.EncodeRequest(&wire.Request{Type: wire.TClosePrepared, Handle: st.handle})
	st.c.wmu.Lock()
	defer st.c.wmu.Unlock()
	return wire.WriteFrame(st.c.conn, payload)
}

// Stats fetches the server's public counters.
func (c *Conn) Stats() (Stats, error) {
	resp, err := c.roundTrip(&wire.Request{Type: wire.TStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Type != wire.TStatsResult {
		return Stats{}, fmt.Errorf("oblidb client: unexpected response type %d", resp.Type)
	}
	return resp.Stats, nil
}

// Close closes the connection; in-flight requests fail.
func (c *Conn) Close() error {
	return c.conn.Close()
}
