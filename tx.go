package oblidb

import (
	"context"
	"errors"
	"fmt"

	"oblidb/internal/sql"
	"oblidb/internal/table"
)

// Tx is a deferred transaction: INSERT/UPDATE/DELETE issued on it are
// buffered (each reporting 0 affected rows) and applied atomically at
// Commit, under one hold of the engine mutex — and, when a write-ahead
// log is attached, as one durable journal commit, so after a crash the
// transaction is either fully present or fully absent. Queries on the
// Tx execute immediately against the pre-transaction snapshot; they do
// not see the buffered writes. DDL cannot run inside a transaction.
//
// A Tx is not safe for concurrent use. After Commit or Rollback it is
// spent; further calls error.
type Tx struct {
	db   *DB
	st   sql.TxState
	done bool
}

// Begin opens a transaction. The engine itself imposes no limit on how
// many transactions are open at once — each buffers independently and
// serializes at Commit.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tx := &Tx{db: db}
	if err := tx.st.Begin(); err != nil {
		return nil, err
	}
	return tx, nil
}

// ExecContext runs one statement inside the transaction: writes are
// buffered until Commit (returning an affected count of 0 now), reads
// run immediately against the pre-transaction snapshot.
func (tx *Tx) ExecContext(ctx context.Context, query string, args ...any) (*Result, error) {
	if tx.done {
		return nil, errors.New("oblidb: transaction has already been committed or rolled back")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	prep, err := tx.db.sqlExec.Prepare(query)
	if err != nil {
		return nil, err
	}
	stmt := prep.Stmt()
	switch {
	case sql.IsTxControl(stmt):
		return nil, errors.New("oblidb: use the Tx methods for transaction control")
	case sql.IsDDL(stmt):
		return nil, errors.New("oblidb: DDL cannot run inside a transaction")
	case sql.IsWrite(stmt):
		if len(vals) != prep.NumParams() {
			return nil, fmt.Errorf("oblidb: statement has %d parameter(s), got %d argument(s)",
				prep.NumParams(), len(vals))
		}
		if err := tx.st.Buffer(prep, vals); err != nil {
			return nil, err
		}
		return &Result{Cols: []string{"affected"},
			Rows: []table.Row{{table.Int(0)}}, Affected: true}, nil
	default:
		return prep.Exec(vals)
	}
}

// Query runs a read inside the transaction. It sees the
// pre-transaction snapshot, not the buffered writes.
func (tx *Tx) Query(ctx context.Context, query string, args ...any) (*Rows, error) {
	res, err := tx.ExecContext(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	return newRows(res), nil
}

// Commit applies the buffered writes atomically. The result's single
// cell is the transaction's total affected-row count. On error the
// engine has rolled the batch back — the transaction is spent either
// way.
func (tx *Tx) Commit(ctx context.Context) (*Result, error) {
	if tx.done {
		return nil, errors.New("oblidb: transaction has already been committed or rolled back")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tx.done = true
	items, err := tx.st.Take()
	if err != nil {
		return nil, err
	}
	return tx.db.sqlExec.ExecTx(items)
}

// Rollback discards the buffered writes.
func (tx *Tx) Rollback() error {
	if tx.done {
		return errors.New("oblidb: transaction has already been committed or rolled back")
	}
	tx.done = true
	return tx.st.Rollback()
}
