package oblidb

import (
	"context"
	"fmt"
	"sync/atomic"

	"oblidb/internal/sql"
	"oblidb/internal/table"
)

// Stmt is a prepared statement: one parse of a statement shape, bound
// to fresh argument values on every execution. The shape (the
// placeholder-normalized SQL text) is what determines the query plan;
// the arguments bind inside the enclave and never influence anything
// the host observes. A Stmt is safe for concurrent use.
type Stmt struct {
	db     *DB
	prep   *sql.Prepared
	shape  string
	closed atomic.Bool
}

// Prepare parses a statement once for repeated execution with bound
// arguments. The parse and the compiled physical plan are shared with
// the executor's plan cache, so preparing is cheap even for shapes
// already seen, and every execution replays the compiled plan.
func (db *DB) Prepare(query string) (*Stmt, error) {
	prep, err := db.sqlExec.Prepare(query)
	if err != nil {
		return nil, err
	}
	shape := prep.Stmt().(fmt.Stringer).String()
	return &Stmt{db: db, prep: prep, shape: shape}, nil
}

// NumParams reports how many arguments Exec and Query require.
func (s *Stmt) NumParams() int { return s.prep.NumParams() }

// String returns the statement's canonical (placeholder-normalized)
// SQL shape.
func (s *Stmt) String() string { return s.shape }

// Exec runs the statement with the given arguments.
func (s *Stmt) Exec(args ...any) (*Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext runs the statement with the given arguments, honoring
// ctx between statements: a context canceled before execution starts
// prevents it; an in-flight oblivious operator is never interrupted
// (aborting mid-operator would truncate its padded access sequence —
// and the truncation point would itself be an observable).
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("oblidb: statement is closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return s.prep.Exec(vals)
}

// Query runs the statement and returns a cursor over its rows.
func (s *Stmt) Query(args ...any) (*Rows, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query honoring ctx between statements.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	res, err := s.ExecContext(ctx, args...)
	if err != nil {
		return nil, err
	}
	return newRows(res), nil
}

// Close releases the statement handle. It is idempotent, and the
// underlying parse stays in the executor's plan cache for future
// Prepare calls of the same shape.
func (s *Stmt) Close() error {
	s.closed.Store(true)
	return nil
}

// toValues converts public-API arguments to engine values via the one
// shared conversion (table.FromAny).
func toValues(args []any) ([]table.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	vals := make([]table.Value, len(args))
	for i, a := range args {
		v, err := table.FromAny(a)
		if err != nil {
			return nil, fmt.Errorf("oblidb: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}
