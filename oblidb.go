// Package oblidb is a Go implementation of ObliDB (Eskandarian & Zaharia,
// VLDB 2019): a database engine whose every query runs with oblivious —
// access-pattern-hiding — physical operators inside a (simulated)
// hardware enclave.
//
// The engine stores each table by one or both of two methods: a flat
// array of sealed blocks that operators always scan in full, and a B+
// tree inside a Path ORAM whose mutations are padded to worst-case access
// counts. Selections run one of four size-specialized oblivious
// algorithms chosen by a query planner that consults only already-public
// sizes; joins choose among an oblivious hash join and two sort-merge
// joins over a bitonic sorting network. Everything an adversarial OS can
// observe — the sequence of untrusted memory accesses — depends only on
// table sizes and the chosen plan, never on data or query parameters.
//
// # Quick start
//
//	db, err := oblidb.Open(oblidb.Config{})
//	if err != nil { ... }
//	ctx := context.Background()
//	db.ExecContext(ctx, `CREATE TABLE users (id INTEGER, name VARCHAR(16)) INDEX ON id`)
//	db.ExecContext(ctx, `INSERT INTO users VALUES (?, ?), (?, ?)`, 1, "alice", 2, "bob")
//	rows, err := db.Query(ctx, `SELECT name FROM users WHERE id = $1`, 2)
//	for rows.Next() {
//		var name string
//		rows.Scan(&name)
//	}
//
// Statements take ? or $n placeholders; Prepare parses a statement
// shape once for repeated execution with different arguments. The
// separation is part of the security model: the statement shape (which
// determines the plan, and hence everything the host observes) is
// public, while argument values bind inside the enclave and influence
// only in-enclave evaluation. A database/sql driver wrapping this API
// is available as the oblidb/driver package.
//
// Alongside SQL, the engine's compositional API (Select, Aggregate,
// GroupAggregate, Join, and their *Table variants) is available on DB,
// which is safe for concurrent use.
//
// To serve a database over the network, run cmd/oblidb-server and
// connect with the client package (or oblidb-cli -connect): the server
// executes statements in fixed-size, dummy-padded epochs so the
// untrusted host learns nothing from request timing or rates either.
//
// There is no SGX hardware underneath: the enclave is simulated with an
// explicitly budgeted oblivious memory and a traced untrusted store, so
// the obliviousness guarantees are testable — see DESIGN.md.
package oblidb

import (
	"context"
	"errors"

	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/oberr"
	"oblidb/internal/sql"
)

// Error is the typed error every tier wraps failures in. Its Code is a
// stable classification that survives the wire protocol, and
// Retriable() reports mechanically whether retrying the statement can
// help (transient host faults, overload, shutdown) or cannot
// (tampering, containment failure). Extract one from any error chain
// with errors.As, or use the ErrorCode/Retriable helpers.
type Error = oberr.Error

// ErrorCode classifies an Error; see the Code* constants.
type ErrorCode = oberr.Code

// Stable error codes, carried end-to-end from the failing tier to the
// client. See internal/oberr for the semantics of each.
const (
	CodeUnknown      = oberr.CodeUnknown
	CodeStoreFault   = oberr.CodeStoreFault
	CodeAuth         = oberr.CodeAuth
	CodeOverload     = oberr.CodeOverload
	CodeShutdown     = oberr.CodeShutdown
	CodeConnLost     = oberr.CodeConnLost
	CodeUnavailable  = oberr.CodeUnavailable
	CodeEngineFailed = oberr.CodeEngineFailed
)

// ErrorCodeOf extracts the classification from an error chain;
// CodeUnknown when none is present.
func ErrorCodeOf(err error) ErrorCode { return oberr.CodeOf(err) }

// Retriable reports whether the error chain carries a retriable
// classification. Unclassified errors are not retriable.
func Retriable(err error) bool { return oberr.Retriable(err) }

// Config configures a database; see core.Config for fields. The zero
// value gets the paper's defaults (20 MB oblivious memory, no padding).
type Config = core.Config

// PaddingConfig enables padding mode (§2.3 of the paper).
type PaddingConfig = core.PaddingConfig

// Result is a materialized query result.
type Result = core.Result

// TableOptions configures table creation.
type TableOptions = core.TableOptions

// SelectOptions configures selection queries.
type SelectOptions = core.SelectOptions

// JoinOptions configures join queries.
type JoinOptions = core.JoinOptions

// AggregateSpec names one aggregate over a column.
type AggregateSpec = core.AggregateSpec

// KeyRange is an inclusive range on an indexed column.
type KeyRange = core.KeyRange

// Storage methods (§3 of the paper).
const (
	KindFlat    = core.KindFlat
	KindIndexed = core.KindIndexed
	KindBoth    = core.KindBoth
)

// Aggregate kinds.
const (
	AggCount = exec.AggCount
	AggSum   = exec.AggSum
	AggMin   = exec.AggMin
	AggMax   = exec.AggMax
	AggAvg   = exec.AggAvg
)

// ErrNoRows is returned by Row.Scan when the query matched no rows.
var ErrNoRows = errors.New("oblidb: no rows in result set")

// DB is an ObliDB database handle: the engine plus a SQL executor.
type DB struct {
	*core.DB
	sqlExec *sql.Executor
}

// Open creates a database inside a fresh simulated enclave.
func Open(cfg Config) (*DB, error) {
	inner, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{DB: inner, sqlExec: sql.New(inner)}, nil
}

// Exec parses and runs one SQL statement with no bound arguments. DDL
// and DML return a one-row result with the affected count. It is the
// thin compatibility form of ExecContext.
func (db *DB) Exec(query string) (*Result, error) {
	return db.sqlExec.Execute(query)
}

// ExecContext parses (or recalls from the plan cache) one SQL statement
// and runs it with args bound to its ? / $n placeholders. The context
// is honored between statements: cancellation before execution starts
// prevents it, but an in-flight oblivious operator always runs to
// completion (interrupting one would truncate its padded access
// sequence, and the truncation point would leak).
func (db *DB) ExecContext(ctx context.Context, query string, args ...any) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return db.sqlExec.ExecuteArgs(query, vals)
}

// Query runs one SQL statement with bound arguments and returns a
// cursor over its rows. Like all ObliDB results the rows are fully
// materialized before the cursor is handed back; Rows is an iteration
// convenience, not a streaming plan.
func (db *DB) Query(ctx context.Context, query string, args ...any) (*Rows, error) {
	res, err := db.ExecContext(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	return newRows(res), nil
}

// QueryRow runs a query expected to return at most one row. Scan it
// with Rows.Scan semantics via the returned cursor helper.
func (db *DB) QueryRow(ctx context.Context, query string, args ...any) *Row {
	rows, err := db.Query(ctx, query, args...)
	if err != nil {
		return &Row{err: err}
	}
	return &Row{rows: rows}
}

// Row is the result of QueryRow: a deferred one-row Scan.
type Row struct {
	rows *Rows
	err  error
}

// Scan copies the single result row into dest, or reports ErrNoRows
// when the query matched nothing.
func (r *Row) Scan(dest ...any) error {
	if r.err != nil {
		return r.err
	}
	defer r.rows.Close()
	if !r.rows.Next() {
		return ErrNoRows
	}
	return r.rows.Scan(dest...)
}

// PlanCacheStats reports the executor's plan-cache size and hit/miss
// counters — a plan-once/execute-many observability hook.
func (db *DB) PlanCacheStats() (entries int, hits, misses uint64) {
	return db.sqlExec.PlanCacheStats()
}

// CacheStats reports the executor's full plan-cache counters: parse
// hits/misses plus compiled-plan compilations and replays. Re-executing
// a cached statement shape replays its compiled physical plan —
// CompileSkips counts those fast-path executions. The engine's
// per-algorithm pick tallies are available via PlanStats (promoted from
// the embedded engine handle).
func (db *DB) CacheStats() sql.CacheStats { return db.sqlExec.CacheStats() }
