// Package oblidb is a Go implementation of ObliDB (Eskandarian & Zaharia,
// VLDB 2019): a database engine whose every query runs with oblivious —
// access-pattern-hiding — physical operators inside a (simulated)
// hardware enclave.
//
// The engine stores each table by one or both of two methods: a flat
// array of sealed blocks that operators always scan in full, and a B+
// tree inside a Path ORAM whose mutations are padded to worst-case access
// counts. Selections run one of four size-specialized oblivious
// algorithms chosen by a query planner that consults only already-public
// sizes; joins choose among an oblivious hash join and two sort-merge
// joins over a bitonic sorting network. Everything an adversarial OS can
// observe — the sequence of untrusted memory accesses — depends only on
// table sizes and the chosen plan, never on data or query parameters.
//
// # Quick start
//
//	db, err := oblidb.Open(oblidb.Config{})
//	if err != nil { ... }
//	db.Exec(`CREATE TABLE users (id INTEGER, name VARCHAR(16)) INDEX ON id`)
//	db.Exec(`INSERT INTO users VALUES (1, 'alice'), (2, 'bob')`)
//	res, err := db.Exec(`SELECT name FROM users WHERE id = 2`)
//
// Alongside SQL, the engine's compositional API (Select, Aggregate,
// GroupAggregate, Join, and their *Table variants) is available on DB,
// which is safe for concurrent use.
//
// To serve a database over the network, run cmd/oblidb-server and
// connect with the client package (or oblidb-cli -connect): the server
// executes statements in fixed-size, dummy-padded epochs so the
// untrusted host learns nothing from request timing or rates either.
//
// There is no SGX hardware underneath: the enclave is simulated with an
// explicitly budgeted oblivious memory and a traced untrusted store, so
// the obliviousness guarantees are testable — see DESIGN.md.
package oblidb

import (
	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/sql"
)

// Config configures a database; see core.Config for fields. The zero
// value gets the paper's defaults (20 MB oblivious memory, no padding).
type Config = core.Config

// PaddingConfig enables padding mode (§2.3 of the paper).
type PaddingConfig = core.PaddingConfig

// Result is a materialized query result.
type Result = core.Result

// TableOptions configures table creation.
type TableOptions = core.TableOptions

// SelectOptions configures selection queries.
type SelectOptions = core.SelectOptions

// JoinOptions configures join queries.
type JoinOptions = core.JoinOptions

// AggregateSpec names one aggregate over a column.
type AggregateSpec = core.AggregateSpec

// KeyRange is an inclusive range on an indexed column.
type KeyRange = core.KeyRange

// Storage methods (§3 of the paper).
const (
	KindFlat    = core.KindFlat
	KindIndexed = core.KindIndexed
	KindBoth    = core.KindBoth
)

// Aggregate kinds.
const (
	AggCount = exec.AggCount
	AggSum   = exec.AggSum
	AggMin   = exec.AggMin
	AggMax   = exec.AggMax
	AggAvg   = exec.AggAvg
)

// DB is an ObliDB database handle: the engine plus a SQL executor.
type DB struct {
	*core.DB
	sqlExec *sql.Executor
}

// Open creates a database inside a fresh simulated enclave.
func Open(cfg Config) (*DB, error) {
	inner, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{DB: inner, sqlExec: sql.New(inner)}, nil
}

// Exec parses and runs one SQL statement. DDL and DML return a one-row
// result with the affected count.
func (db *DB) Exec(query string) (*Result, error) {
	return db.sqlExec.Execute(query)
}
