package oblidb_test

import (
	"fmt"
	"log"

	"oblidb"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// The canonical path: open a database, create a table stored both ways,
// and query it with oblivious operators through SQL.
func Example() {
	db, err := oblidb.Open(oblidb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	mustExec := func(q string) *oblidb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	mustExec(`CREATE TABLE pets (id INTEGER, name VARCHAR(12), grams INTEGER) STORAGE = BOTH INDEX ON id`)
	mustExec(`INSERT INTO pets VALUES (1, 'hamster', 40), (2, 'cat', 4200), (3, 'dog', 12000)`)

	res := mustExec(`SELECT name FROM pets WHERE id = 2`)
	fmt.Println(res.Rows[0][0].AsString())

	res = mustExec(`SELECT COUNT(*), MAX(grams) FROM pets WHERE grams > 100`)
	fmt.Println(res.Rows[0][0].AsInt(), res.Rows[0][1].AsInt())
	// Output:
	// cat
	// 2 12000
}

// Aggregation through the compositional API: the fused select+aggregate
// never materializes an intermediate table, so no intermediate size leaks.
func ExampleDB_Aggregate() {
	db, err := oblidb.Open(oblidb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	schema := table.MustSchema(
		table.Column{Name: "reading", Kind: table.KindInt},
	)
	if _, err := db.CreateTable("sensor", schema, oblidb.TableOptions{Capacity: 16}); err != nil {
		log.Fatal(err)
	}
	for _, v := range []int64{3, 9, 4, 12, 7} {
		if err := db.Insert("sensor", table.Row{table.Int(v)}); err != nil {
			log.Fatal(err)
		}
	}
	res, err := db.Aggregate("sensor",
		func(r table.Row) bool { return r[0].AsInt() > 5 },
		[]oblidb.AggregateSpec{{Kind: oblidb.AggCount}, {Kind: oblidb.AggSum, Column: "reading"}},
		nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d readings above 5, sum %.0f\n", res.Rows[0][0].AsInt(), res.Rows[0][1].AsFloat())
	// Output:
	// 3 readings above 5, sum 28
}

// Padding mode hides even result sizes, at a cost (§2.3 of the paper).
func ExampleConfig_padding() {
	db, err := oblidb.Open(oblidb.Config{
		Padding: oblidb.PaddingConfig{Enabled: true, PadRows: 64, PadGroups: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (x INTEGER)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1), (2), (3), (4)`); err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec(`SELECT * FROM t WHERE x >= 3`)
	if err != nil {
		log.Fatal(err)
	}
	// The client sees the 2 real rows; the adversary's view is padded to
	// the configured bound whatever the result size.
	fmt.Println(len(res.Rows), "rows")
	// Output:
	// 2 rows
}

// Forcing a specific physical operator, as §5 allows ("users can also
// manually choose to force a particular operator").
func ExampleSelectOptions_force() {
	db, err := oblidb.Open(oblidb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (x INTEGER)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (10), (20), (30)`); err != nil {
		log.Fatal(err)
	}
	hash := exec.SelectHash
	res, err := db.Select("t",
		func(r table.Row) bool { return r[0].AsInt() >= 20 },
		oblidb.SelectOptions{Force: &hash})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Rows), "rows via", db.LastPlan.SelectAlg)
	// Output:
	// 2 rows via Hash
}
