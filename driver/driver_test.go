package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	_ "oblidb/driver"
	"oblidb/internal/server"
)

// startServer brings up a real oblidb-server on loopback and returns
// its networked DSN.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{EpochSize: 4, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go srv.ListenAndServe("127.0.0.1:0")
	for i := 0; srv.Addr() == nil; i++ {
		if i > 2000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	return "oblidb://" + srv.Addr().String()
}

// eachDSN runs a subtest against both DSN forms: a fresh in-process
// engine and a fresh networked server.
func eachDSN(t *testing.T, f func(t *testing.T, db *sql.DB)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		db, err := sql.Open("oblidb", "mem://")
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		f(t, db)
	})
	t.Run("net", func(t *testing.T) {
		db, err := sql.Open("oblidb", startServer(t))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		f(t, db)
	})
}

func seed(t *testing.T, db *sql.DB) {
	t.Helper()
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE users (id INTEGER, name VARCHAR(16), age INTEGER)`); err != nil {
		t.Fatal(err)
	}
	st, err := db.PrepareContext(ctx, `INSERT INTO users VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i, u := range []struct {
		name string
		age  int
	}{{"alice", 34}, {"bob", 28}, {"carol", 41}} {
		if _, err := st.Exec(i+1, u.name, u.age); err != nil {
			t.Fatalf("insert %s: %v", u.name, err)
		}
	}
}

// TestOrderByLimitThroughDriver drives the ORDER BY / LIMIT pipeline
// and EXPLAIN through database/sql against both DSN forms.
func TestOrderByLimitThroughDriver(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		ctx := context.Background()
		rows, err := db.QueryContext(ctx,
			`SELECT name, age FROM users WHERE age >= ? ORDER BY age DESC LIMIT 2`, 20)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var got []string
		for rows.Next() {
			var name string
			var age int
			if err := rows.Scan(&name, &age); err != nil {
				t.Fatal(err)
			}
			got = append(got, fmt.Sprintf("%s:%d", name, age))
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		want := []string{"carol:41", "alice:34"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("driver ORDER BY LIMIT = %v, want %v", got, want)
		}

		var line string
		if err := db.QueryRowContext(ctx,
			`EXPLAIN SELECT name FROM users ORDER BY age LIMIT 1`).Scan(&line); err != nil {
			t.Fatal(err)
		}
		if line != "Collect" {
			t.Fatalf("EXPLAIN first line = %q, want Collect", line)
		}
	})
}

func TestQueryContextRowsIteration(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		rows, err := db.QueryContext(context.Background(),
			`SELECT name, age FROM users WHERE age > $1`, 30)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		cols, err := rows.Columns()
		if err != nil {
			t.Fatal(err)
		}
		if len(cols) != 2 || cols[0] != "name" || cols[1] != "age" {
			t.Fatalf("columns = %v", cols)
		}
		got := map[string]int64{}
		for rows.Next() {
			var name string
			var age int64
			if err := rows.Scan(&name, &age); err != nil {
				t.Fatal(err)
			}
			got[name] = age
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got["alice"] != 34 || got["carol"] != 41 {
			t.Fatalf("got %v", got)
		}
	})
}

func TestExecAffectedCounts(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		ctx := context.Background()
		res, err := db.ExecContext(ctx, `UPDATE users SET age = age + 1 WHERE age < $1`, 40)
		if err != nil {
			t.Fatal(err)
		}
		n, err := res.RowsAffected()
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("RowsAffected = %d, want 2", n)
		}
		res, err = db.ExecContext(ctx, `DELETE FROM users WHERE id = ?`, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("delete RowsAffected = %d, want 1", n)
		}
		if _, err := res.LastInsertId(); err == nil {
			t.Fatal("LastInsertId unexpectedly supported")
		}
	})
}

func TestPreparedReuseThroughPool(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		st, err := db.Prepare(`SELECT name FROM users WHERE id = $1`)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		want := map[int]string{1: "alice", 2: "bob", 3: "carol"}
		for id, name := range want {
			var got string
			if err := st.QueryRow(id).Scan(&got); err != nil {
				t.Fatalf("id %d: %v", id, err)
			}
			if got != name {
				t.Fatalf("id %d: got %q want %q", id, got, name)
			}
		}
		// Wrong arity surfaces as an error, not a panic. database/sql
		// checks NumInput before the statement reaches the engine.
		if _, err := st.Query(); err == nil {
			t.Fatal("0-arg query of a 1-param statement unexpectedly succeeded")
		}
	})
}

func TestQueryRowNoRows(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		var name string
		err := db.QueryRow(`SELECT name FROM users WHERE id = $1`, 99).Scan(&name)
		if !errors.Is(err, sql.ErrNoRows) {
			t.Fatalf("want sql.ErrNoRows, got %v", err)
		}
	})
}

func TestCtxCancellationBetweenStatements(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		ctx, cancel := context.WithCancel(context.Background())
		// First statement under the live context succeeds.
		var n int64
		if err := db.QueryRowContext(ctx, `SELECT COUNT(*) FROM users`).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("COUNT(*) = %d", n)
		}
		cancel()
		// The next statement must fail with the context's error.
		_, err := db.ExecContext(ctx, `SELECT COUNT(*) FROM users`)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})
}

func TestTransactionCommit(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(`INSERT INTO users VALUES (4, 'dave', 52)`); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(`DELETE FROM users WHERE id = 2`); err != nil {
			t.Fatal(err)
		}
		// Deferred writes are invisible until COMMIT — including to the
		// session's own reads (pre-transaction snapshot).
		var n int
		if err := db.QueryRow(`SELECT COUNT(*) FROM users`).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("count mid-tx = %d, want 3", n)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.QueryRow(`SELECT COUNT(*) FROM users`).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("count post-commit = %d, want 3", n)
		}
		if err := db.QueryRow(`SELECT COUNT(*) FROM users WHERE id = 4`).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatal("committed insert missing")
		}
	})
}

func TestTransactionRollback(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(`DELETE FROM users WHERE age > 0`); err != nil {
			t.Fatal(err)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		var n int
		if err := db.QueryRow(`SELECT COUNT(*) FROM users`).Scan(&n); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("count post-rollback = %d, want 3", n)
		}
	})
}

func TestTransactionRejectsDDLAndOptions(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		ctx := context.Background()
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(`CREATE TABLE nope (a INTEGER)`); err == nil ||
			!strings.Contains(err.Error(), "DDL") {
			t.Fatalf("DDL inside tx: %v", err)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.BeginTx(ctx, &sql.TxOptions{ReadOnly: true}); err == nil {
			t.Fatal("read-only tx accepted")
		}
		if _, err := db.BeginTx(ctx, &sql.TxOptions{Isolation: sql.LevelReadCommitted}); err == nil {
			t.Fatal("unsupported isolation level accepted")
		}
		tx, err = db.BeginTx(ctx, &sql.TxOptions{Isolation: sql.LevelSerializable})
		if err != nil {
			t.Fatalf("serializable tx rejected: %v", err)
		}
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPingAndPool(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		if err := db.Ping(); err != nil {
			t.Fatal(err)
		}
		// Several pooled connections all see the same data.
		seed(t, db)
		db.SetMaxOpenConns(4)
		errs := make(chan error, 8)
		for i := 0; i < 8; i++ {
			go func() {
				var n int64
				err := db.QueryRow(`SELECT COUNT(*) FROM users`).Scan(&n)
				if err == nil && n != 3 {
					err = fmt.Errorf("COUNT(*) = %d, want 3", n)
				}
				errs <- err
			}()
		}
		for i := 0; i < 8; i++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestBadDSN(t *testing.T) {
	db, err := sql.Open("oblidb", "postgres://nope")
	if err == nil {
		// sql.Open defers driver errors to first use.
		err = db.Ping()
		db.Close()
	}
	if err == nil {
		t.Fatal("bad DSN accepted")
	}
}

func TestAffectedNotSniffedFromColumnName(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		seed(t, db)
		// A user query aliasing a column to "affected" is query output,
		// not a DML outcome: RowsAffected must not report its value.
		res, err := db.ExecContext(context.Background(),
			`SELECT COUNT(*) AS affected FROM users WHERE age > $1`, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := res.RowsAffected(); err == nil {
			t.Fatalf("RowsAffected on a SELECT reported %d", n)
		}
	})
}

func TestTimeArgumentsBindAsDates(t *testing.T) {
	eachDSN(t, func(t *testing.T, db *sql.DB) {
		ctx := context.Background()
		if _, err := db.ExecContext(ctx, `CREATE TABLE events (day DATE, what VARCHAR(16))`); err != nil {
			t.Fatal(err)
		}
		// 2024-03-01 UTC = 19783 days since the Unix epoch, the
		// engine's DATE representation.
		when := time.Date(2024, 3, 1, 10, 30, 0, 0, time.UTC)
		if _, err := db.ExecContext(ctx, `INSERT INTO events VALUES (?, ?)`, when, "launch"); err != nil {
			t.Fatal(err)
		}
		var day int64
		if err := db.QueryRowContext(ctx, `SELECT day FROM events WHERE what = $1`, "launch").Scan(&day); err != nil {
			t.Fatal(err)
		}
		if day != 19783 {
			t.Fatalf("day = %d, want 19783", day)
		}
	})
}

func TestNamedParametersRejected(t *testing.T) {
	db, err := sql.Open("oblidb", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT * FROM t WHERE id = ?`, sql.Named("id", 1)); err == nil {
		t.Fatal("named parameter unexpectedly accepted")
	}
}
