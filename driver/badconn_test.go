package driver

import (
	"database/sql/driver"
	"errors"
	"testing"

	"oblidb/internal/oberr"
)

// TestBadConnMapping pins the asymmetric pool-retry contract: an
// unambiguous delivery failure (the request provably never left the
// client) becomes driver.ErrBadConn on every path, while the ambiguous
// connection loss becomes ErrBadConn only where re-running is safe —
// read-only statements. Everything else passes through untouched, codes
// intact, so applications can classify with oblidb.ErrorCodeOf.
func TestBadConnMapping(t *testing.T) {
	unavailable := oberr.New(oberr.CodeUnavailable, "not connected")
	connLost := oberr.New(oberr.CodeConnLost, "connection lost")
	overload := oberr.New(oberr.CodeOverload, "queue full")
	plain := errors.New("syntax error")

	cases := []struct {
		name     string
		err      error
		readOnly bool
		wantBad  bool
	}{
		{"unavailable-read", unavailable, true, true},
		{"unavailable-write", unavailable, false, true},
		{"connlost-read", connLost, true, true},
		{"connlost-write", connLost, false, false},
		{"overload-read", overload, true, false},
		{"overload-write", overload, false, false},
		{"untyped", plain, true, false},
	}
	for _, c := range cases {
		got := badConn(c.err, c.readOnly)
		if c.wantBad {
			if got != driver.ErrBadConn {
				t.Errorf("%s: got %v, want ErrBadConn", c.name, got)
			}
			continue
		}
		if got != c.err {
			t.Errorf("%s: error rewritten to %v", c.name, got)
		}
		if oberr.CodeOf(got) != oberr.CodeOf(c.err) {
			t.Errorf("%s: code lost in mapping", c.name)
		}
	}
}

func TestIsReadOnlySQL(t *testing.T) {
	if !isReadOnlySQL("  select * from t") {
		t.Fatal("SELECT not read-only")
	}
	for _, q := range []string{"INSERT INTO t VALUES (1)", "UPDATE t SET k = 1", "DELETE FROM t", ""} {
		if isReadOnlySQL(q) {
			t.Fatalf("%q classified read-only", q)
		}
	}
}
