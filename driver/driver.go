// Package driver registers an "oblidb" database/sql driver, so the
// oblivious engine is usable through Go's standard database plumbing:
//
//	import (
//		"database/sql"
//		_ "oblidb/driver"
//	)
//
//	db, err := sql.Open("oblidb", "mem://")             // in-process engine
//	db, err := sql.Open("oblidb", "oblidb://host:7744") // networked server
//
//	rows, err := db.QueryContext(ctx, "SELECT name FROM users WHERE id = $1", 2)
//	st, err := db.Prepare("INSERT INTO users VALUES (?, ?, ?)")
//
// Two DSN forms are supported. "mem://" (or ":memory:") opens a fresh
// in-process engine owned by that sql.DB — every pooled connection
// shares the one engine, so the pool behaves like a single database.
// "oblidb://host:port" dials an oblidb-server; each pooled connection
// is its own wire connection, multiplexed by the server's epoch
// scheduler.
//
// Statements bind parameters, never splice them: argument values are
// delivered out-of-band from the SQL text (in-process: straight to the
// enclave's evaluator; networked: as typed wire values inside the
// encrypted channel) and cannot influence the query plan or any
// host-observable access pattern.
//
// Transactions are supported through the standard Tx API and are
// *deferred*: INSERT/UPDATE/DELETE issued on the Tx are buffered (each
// reports 0 affected rows) and applied atomically at Commit — in one
// epoch slot server-side, and as one durable journal commit when the
// server runs with -wal. Queries on the Tx see the pre-transaction
// snapshot, not the buffered writes; DDL cannot run inside a
// transaction. Only the default and serializable isolation levels are
// accepted.
//
// Unsupported database/sql features: named parameters and
// LastInsertId.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/oberr"
	sqlexec "oblidb/internal/sql"
	"oblidb/internal/table"
)

func init() {
	sql.Register("oblidb", &Driver{})
}

// ErrNoTransactions is no longer returned: the driver supports
// deferred transactions through the standard Tx API.
//
// Deprecated: kept only so existing code comparing against it still
// compiles.
var ErrNoTransactions = errors.New("oblidb driver: transactions are not supported")

// Driver is the database/sql driver. The zero value is ready to use;
// database/sql registration happens in this package's init.
type Driver struct{}

var _ driver.Driver = (*Driver)(nil)
var _ driver.DriverContext = (*Driver)(nil)

// Open opens a single connection. database/sql prefers OpenConnector
// (below); Open exists for completeness and tools that use the Driver
// interface directly. Note that for mem:// DSNs every Open call made
// this way creates an independent engine — pooled sharing requires the
// connector path.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once and returns a connector that every
// pooled connection of one sql.DB is built from.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	switch {
	case dsn == ":memory:" || dsn == "mem://" || dsn == "mem:":
		return &memConnector{drv: d}, nil
	case strings.HasPrefix(dsn, "oblidb://"):
		addr := strings.TrimPrefix(dsn, "oblidb://")
		addr = strings.TrimSuffix(addr, "/")
		if addr == "" {
			return nil, fmt.Errorf("oblidb driver: DSN %q has no host:port", dsn)
		}
		return &netConnector{drv: d, addr: addr}, nil
	}
	return nil, fmt.Errorf("oblidb driver: unrecognized DSN %q (want \"mem://\" or \"oblidb://host:port\")", dsn)
}

// --- in-process backend ----------------------------------------------------

// memConnector owns one in-process engine, created lazily on the first
// connection and shared by all connections of its sql.DB pool.
type memConnector struct {
	drv  *Driver
	once sync.Once
	exec *sqlexec.Executor
	err  error
}

func (c *memConnector) Connect(ctx context.Context) (driver.Conn, error) {
	c.once.Do(func() {
		db, err := core.Open(core.Config{})
		if err != nil {
			c.err = err
			return
		}
		c.exec = sqlexec.New(db)
	})
	if c.err != nil {
		return nil, c.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &memConn{exec: c.exec}, nil
}

func (c *memConnector) Driver() driver.Driver { return c.drv }

// memConn is one pooled handle onto the shared in-process engine.
// database/sql pins a connection for the life of a Tx, so the deferred
// transaction state lives here.
type memConn struct {
	exec   *sqlexec.Executor
	tx     sqlexec.TxState
	closed bool
}

var _ driver.Conn = (*memConn)(nil)
var _ driver.ConnPrepareContext = (*memConn)(nil)
var _ driver.ConnBeginTx = (*memConn)(nil)
var _ driver.ExecerContext = (*memConn)(nil)
var _ driver.QueryerContext = (*memConn)(nil)
var _ driver.Pinger = (*memConn)(nil)

func (c *memConn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

func (c *memConn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prep, err := c.exec.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &memStmt{conn: c, prep: prep}, nil
}

func (c *memConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	res, err := c.run(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return resultFrom(res), nil
}

func (c *memConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	res, err := c.run(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return newRows(res.Cols, res.Rows), nil
}

func (c *memConn) run(ctx context.Context, query string, args []driver.NamedValue) (*core.Result, error) {
	if c.closed {
		return nil, driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	if c.tx.Active() {
		prep, err := c.exec.Prepare(query)
		if err != nil {
			return nil, err
		}
		return c.routeTx(prep, vals)
	}
	return c.exec.ExecuteArgs(query, vals)
}

// routeTx executes one statement issued while this connection's
// transaction is open: writes are buffered until Commit (each
// acknowledging 0 affected rows), reads run immediately against the
// pre-transaction snapshot, and statements that cannot ride a deferred
// transaction are rejected.
func (c *memConn) routeTx(prep *sqlexec.Prepared, vals []table.Value) (*core.Result, error) {
	stmt := prep.Stmt()
	switch {
	case sqlexec.IsTxControl(stmt):
		return nil, errors.New("oblidb driver: use the database/sql Tx API for transaction control")
	case sqlexec.IsDDL(stmt):
		return nil, errors.New("oblidb driver: DDL cannot run inside a transaction")
	case sqlexec.IsWrite(stmt):
		if len(vals) != prep.NumParams() {
			return nil, fmt.Errorf("oblidb driver: statement has %d parameter(s), got %d argument(s)",
				prep.NumParams(), len(vals))
		}
		if err := c.tx.Buffer(prep, vals); err != nil {
			return nil, err
		}
		return deferredAck(), nil
	default:
		return prep.Exec(vals)
	}
}

// deferredAck is the result a buffered write reports: 0 affected rows
// now, with the transaction's total surfacing at Commit.
func deferredAck() *core.Result {
	return &core.Result{Cols: []string{"affected"},
		Rows: []table.Row{{table.Int(0)}}, Affected: true}
}

func (c *memConn) Ping(ctx context.Context) error {
	if c.closed {
		return driver.ErrBadConn
	}
	return ctx.Err()
}

func (c *memConn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

func (c *memConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if c.closed {
		return nil, driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkTxOptions(opts); err != nil {
		return nil, err
	}
	if err := c.tx.Begin(); err != nil {
		return nil, err
	}
	return &memTx{conn: c}, nil
}

// memTx commits or discards the connection's buffered writes.
type memTx struct{ conn *memConn }

var _ driver.Tx = (*memTx)(nil)

func (t *memTx) Commit() error {
	items, err := t.conn.tx.Take()
	if err != nil {
		return err
	}
	_, err = t.conn.exec.ExecTx(items)
	return err
}

func (t *memTx) Rollback() error { return t.conn.tx.Rollback() }

func (c *memConn) Close() error {
	// The engine is owned by the connector (shared by the pool); closing
	// a pooled handle releases nothing engine-side.
	c.closed = true
	return nil
}

// memStmt is a prepared statement on the in-process engine: the handle
// pins the executor's cache entry, so every execution replays the
// shape's compiled plan without a per-call lookup.
type memStmt struct {
	conn   *memConn
	prep   *sqlexec.Prepared
	closed bool
}

var _ driver.Stmt = (*memStmt)(nil)
var _ driver.StmtExecContext = (*memStmt)(nil)
var _ driver.StmtQueryContext = (*memStmt)(nil)

func (s *memStmt) NumInput() int { return s.prep.NumParams() }

func (s *memStmt) Close() error {
	// Idempotent; the parse stays in the executor's plan cache.
	s.closed = true
	return nil
}

func (s *memStmt) run(ctx context.Context, vals []table.Value) (*core.Result, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.conn.tx.Active() {
		return s.conn.routeTx(s.prep, vals)
	}
	return s.prep.Exec(vals)
}

func (s *memStmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.run(context.Background(), vals)
	if err != nil {
		return nil, err
	}
	return resultFrom(res), nil
}

func (s *memStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	vals, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.run(ctx, vals)
	if err != nil {
		return nil, err
	}
	return resultFrom(res), nil
}

func (s *memStmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.run(context.Background(), vals)
	if err != nil {
		return nil, err
	}
	return newRows(res.Cols, res.Rows), nil
}

func (s *memStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	vals, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.run(ctx, vals)
	if err != nil {
		return nil, err
	}
	return newRows(res.Cols, res.Rows), nil
}

// --- networked backend -----------------------------------------------------

// netConnector dials one wire connection per pooled driver.Conn.
type netConnector struct {
	drv  *Driver
	addr string
}

func (c *netConnector) Connect(ctx context.Context) (driver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wc, err := client.Dial(c.addr)
	if err != nil {
		return nil, err
	}
	return &netConn{c: wc}, nil
}

func (c *netConnector) Driver() driver.Driver { return c.drv }

// netConn wraps one wire connection.
type netConn struct {
	c      *client.Conn
	closed bool
}

// badConn maps typed connection failures onto driver.ErrBadConn, which
// tells database/sql to discard this pooled connection and retry the
// operation on a fresh one. The mapping is deliberately asymmetric:
// CodeUnavailable guarantees the request never reached the server, so
// pool-level retry is safe for any statement; the ambiguous
// CodeConnLost (the request may have executed) maps only on read-only
// paths — on exec paths the typed error surfaces to the application,
// which alone knows whether re-running the mutation is acceptable.
func badConn(err error, readOnly bool) error {
	switch oberr.CodeOf(err) {
	case oberr.CodeUnavailable:
		return driver.ErrBadConn
	case oberr.CodeConnLost:
		if readOnly {
			return driver.ErrBadConn
		}
	}
	return err
}

var _ driver.Conn = (*netConn)(nil)
var _ driver.ConnPrepareContext = (*netConn)(nil)
var _ driver.ConnBeginTx = (*netConn)(nil)
var _ driver.ExecerContext = (*netConn)(nil)
var _ driver.QueryerContext = (*netConn)(nil)
var _ driver.Pinger = (*netConn)(nil)

func (c *netConn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

func (c *netConn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrBadConn
	}
	st, err := c.c.PrepareContext(ctx, query)
	if err != nil {
		// Preparing parses but never executes: always safe to retry on a
		// fresh pooled connection.
		return nil, badConn(err, true)
	}
	return &netStmt{st: st}, nil
}

// ExecContext runs unparameterized statements directly; with arguments
// it defers to database/sql's prepare-execute-close fallback (the wire
// protocol binds arguments to prepared handles only).
func (c *netConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	if c.closed {
		return nil, driver.ErrBadConn
	}
	res, err := c.c.ExecContext(ctx, query)
	if err != nil {
		return nil, badConn(err, false)
	}
	return wireResultFrom(res), nil
}

// QueryContext mirrors ExecContext's ErrSkip strategy.
func (c *netConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	if c.closed {
		return nil, driver.ErrBadConn
	}
	res, err := c.c.ExecContext(ctx, query)
	if err != nil {
		// Query paths still check the statement text: Query on a mutation
		// is legal, and an ambiguous loss must not silently re-run it.
		return nil, badConn(err, isReadOnlySQL(query))
	}
	if res == nil {
		return newRows(nil, nil), nil
	}
	return newRows(res.Cols, res.Rows), nil
}

// isReadOnlySQL reports whether a statement provably cannot mutate;
// anything unrecognized is conservatively a write.
func isReadOnlySQL(query string) bool {
	f := strings.Fields(query)
	return len(f) > 0 && strings.EqualFold(f[0], "SELECT")
}

func (c *netConn) Ping(ctx context.Context) error {
	if c.closed {
		return driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, err := c.c.ServerStats(); err != nil {
		return driver.ErrBadConn
	}
	return nil
}

func (c *netConn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

func (c *netConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if c.closed {
		return nil, driver.ErrBadConn
	}
	if err := checkTxOptions(opts); err != nil {
		return nil, err
	}
	if err := c.c.Begin(ctx); err != nil {
		// BEGIN only arms session state; if it was lost in flight the
		// abandoned session rolls back server-side, so a fresh pooled
		// connection can safely begin again.
		return nil, badConn(err, true)
	}
	return &netTx{c: c.c}, nil
}

// netTx drives the session's server-side transaction: the server
// buffers the writes; Commit rides one epoch slot.
type netTx struct{ c *client.Conn }

var _ driver.Tx = (*netTx)(nil)

func (t *netTx) Commit() error {
	_, err := t.c.Commit(context.Background())
	return err
}

func (t *netTx) Rollback() error { return t.c.Rollback(context.Background()) }

func (c *netConn) Close() error {
	c.closed = true
	return c.c.Close()
}

// netStmt wraps a server-side prepared handle.
type netStmt struct {
	st *client.Stmt
}

var _ driver.Stmt = (*netStmt)(nil)
var _ driver.StmtExecContext = (*netStmt)(nil)
var _ driver.StmtQueryContext = (*netStmt)(nil)

func (s *netStmt) NumInput() int { return s.st.NumParams() }
func (s *netStmt) Close() error  { return s.st.Close() }

func (s *netStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.exec(context.Background(), valuesToAny(args))
}

func (s *netStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.exec(ctx, namedToAny(args))
}

func (s *netStmt) exec(ctx context.Context, args []any) (driver.Result, error) {
	res, err := s.st.ExecContext(ctx, args...)
	if err != nil {
		return nil, badConn(err, false)
	}
	return wireResultFrom(res), nil
}

func (s *netStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.query(context.Background(), valuesToAny(args))
}

func (s *netStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.query(ctx, namedToAny(args))
}

func (s *netStmt) query(ctx context.Context, args []any) (driver.Rows, error) {
	res, err := s.st.ExecContext(ctx, args...)
	if err != nil {
		return nil, badConn(err, isReadOnlySQL(s.st.String()))
	}
	if res == nil {
		return newRows(nil, nil), nil
	}
	return newRows(res.Cols, res.Rows), nil
}

// --- shared plumbing -------------------------------------------------------

// checkTxOptions rejects transaction options the engine cannot honor.
// Deferred transactions apply their writes under one hold of the
// engine mutex, so serializable (and the default) are the honest
// offers; weaker levels would promise reads the snapshot model does
// not provide, and read-only enforcement does not exist.
func checkTxOptions(opts driver.TxOptions) error {
	if opts.ReadOnly {
		return errors.New("oblidb driver: read-only transactions are not supported")
	}
	switch sql.IsolationLevel(opts.Isolation) {
	case sql.LevelDefault, sql.LevelSerializable:
		return nil
	}
	return fmt.Errorf("oblidb driver: isolation level %v is not supported", sql.IsolationLevel(opts.Isolation))
}

// namedToValues converts database/sql arguments, rejecting named
// parameters (the dialect has only positional ones).
func namedToValues(args []driver.NamedValue) ([]table.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	vals := make([]table.Value, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("oblidb driver: named parameter %q not supported (use ? or $n)", a.Name)
		}
		v, err := table.FromAny(a.Value)
		if err != nil {
			return nil, fmt.Errorf("oblidb driver: argument %d: %w", a.Ordinal, err)
		}
		vals[i] = v
	}
	return vals, nil
}

func driverToValues(args []driver.Value) ([]table.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	vals := make([]table.Value, len(args))
	for i, a := range args {
		v, err := table.FromAny(a)
		if err != nil {
			return nil, fmt.Errorf("oblidb driver: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

func valuesToAny(args []driver.Value) []any {
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = a
	}
	return out
}

func namedToAny(args []driver.NamedValue) []any {
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = a.Value
	}
	return out
}

// result adapts an affected-count result. The engine marks DDL/DML
// outcomes explicitly (Result.Affected), so no column-name sniffing.
type result struct {
	affected int64
	ok       bool
}

var _ driver.Result = result{}

func resultFrom(res *core.Result) driver.Result {
	if res != nil && res.Affected && len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		return result{affected: res.Rows[0][0].AsInt(), ok: true}
	}
	return result{}
}

func wireResultFrom(res *client.Result) driver.Result {
	if res != nil && res.Affected && len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		return result{affected: res.Rows[0][0].AsInt(), ok: true}
	}
	return result{}
}

func (r result) LastInsertId() (int64, error) {
	return 0, errors.New("oblidb driver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) {
	if !r.ok {
		return 0, errors.New("oblidb driver: statement did not report an affected count")
	}
	return r.affected, nil
}

// rows adapts a materialized result to the driver cursor.
type rows struct {
	cols []string
	data []table.Row
	i    int
}

var _ driver.Rows = (*rows)(nil)

func newRows(cols []string, data []table.Row) *rows {
	return &rows{cols: cols, data: data}
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { r.i = len(r.data); return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.i >= len(r.data) {
		return io.EOF
	}
	row := r.data[r.i]
	r.i++
	for j, v := range row {
		if j >= len(dest) {
			break
		}
		switch v.Kind {
		case table.KindInt:
			dest[j] = v.AsInt()
		case table.KindFloat:
			dest[j] = v.AsFloat()
		case table.KindBool:
			dest[j] = v.AsBool()
		case table.KindNull:
			dest[j] = nil
		default:
			dest[j] = v.AsString()
		}
	}
	return nil
}
