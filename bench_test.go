package oblidb

// One testing.B benchmark per table/figure of the paper's evaluation,
// each delegating to the experiment runner in internal/bench at a small
// scale so `go test -bench=.` completes in minutes. For figure-shaped
// reports at 10% or full paper scale, run cmd/oblidb-bench.

import (
	"io"
	"testing"

	"oblidb/internal/bench"
	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/workload"
)

// benchScale keeps testing.B iterations tractable; cmd/oblidb-bench
// defaults to 0.1 and supports -full.
const benchScale = 0.004

func runFigure(b *testing.B, f func(bench.Options) error) {
	b.Helper()
	o := bench.Options{Scale: benchScale, Out: io.Discard, Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2StorageAsymptotics regenerates Figure 2: operation scaling
// of the flat, indexed, and combined storage methods.
func BenchmarkFig2StorageAsymptotics(b *testing.B) { runFigure(b, bench.RunFig2) }

// BenchmarkFig3Operators regenerates Figure 3: one timing per oblivious
// physical operator.
func BenchmarkFig3Operators(b *testing.B) { runFigure(b, bench.RunFig3) }

// BenchmarkFig6Generate regenerates Figure 6: the synthetic Big Data
// Benchmark datasets.
func BenchmarkFig6Generate(b *testing.B) { runFigure(b, bench.RunFig6) }

// BenchmarkFig7BigDataBenchmark regenerates Figure 7: Q1–Q3 across
// Opaque, ObliDB without and with indexes, and the plain executor.
func BenchmarkFig7BigDataBenchmark(b *testing.B) { runFigure(b, bench.RunFig7) }

// BenchmarkFig8ObliviousMemorySweep regenerates Figure 8: Q3 runtime as
// the oblivious-memory budget varies.
func BenchmarkFig8ObliviousMemorySweep(b *testing.B) { runFigure(b, bench.RunFig8) }

// BenchmarkFig9PointOpsVsHIRB regenerates Figure 9: point operation
// latency of HIRB+vORAM, ObliDB's index, and a plain B+ tree.
func BenchmarkFig9PointOpsVsHIRB(b *testing.B) { runFigure(b, bench.RunFig9) }

// BenchmarkFig10FlatVsIndex regenerates Figure 10: flat vs indexed
// operators across retrieved fractions, plus mutations.
func BenchmarkFig10FlatVsIndex(b *testing.B) { runFigure(b, bench.RunFig10) }

// BenchmarkFig11PointQueries regenerates Figure 11: indexed point-query
// latency against table size.
func BenchmarkFig11PointQueries(b *testing.B) { runFigure(b, bench.RunFig11) }

// BenchmarkFig12TableTypes regenerates Figure 12: the L1–L5 workload
// mixes per storage kind.
func BenchmarkFig12TableTypes(b *testing.B) { runFigure(b, bench.RunFig12) }

// BenchmarkFig13PlannerChoice regenerates Figure 13: every applicable
// SELECT algorithm against the planner's pick.
func BenchmarkFig13PlannerChoice(b *testing.B) { runFigure(b, bench.RunFig13) }

// BenchmarkFig14Joins regenerates Figure 14: the join-algorithm grid over
// table sizes and oblivious-memory budgets.
func BenchmarkFig14Joins(b *testing.B) { runFigure(b, bench.RunFig14) }

// BenchmarkPaddingMode regenerates the §7.2 padding-mode measurement.
func BenchmarkPaddingMode(b *testing.B) { runFigure(b, bench.RunPadding) }

// BenchmarkAblations measures DESIGN.md's called-out design choices
// against their alternatives (recursive ORAM, sort variants, insert
// variants, bulk loading, journaling).
func BenchmarkAblations(b *testing.B) { runFigure(b, bench.RunAblations) }

// BenchmarkServedThroughput measures statements/second through the
// network server's epoch-padded scheduler at epoch sizes 1, 8, and 64
// (DESIGN.md §6), with concurrent clients over loopback TCP — serial
// and with the Parallelism-4 engine behind a 4-worker epoch pool.
func BenchmarkServedThroughput(b *testing.B) { runFigure(b, bench.RunServed) }

// BenchmarkParallelSpeedup measures the partition-parallel operators'
// wall-clock against worker-pool sizes 1/2/4/8 (DESIGN.md §9).
func BenchmarkParallelSpeedup(b *testing.B) { runFigure(b, bench.RunParallel) }

// BenchmarkPacking measures block packing (DESIGN.md §12): scan, select,
// and oblivious-insert wall time at R ∈ {1, 4, 16, default}, with
// speedups over the paper's one-record-per-block geometry.
func BenchmarkPacking(b *testing.B) { runFigure(b, bench.RunPacking) }

// benchScanAt times a full-table scan of an n-row workload table at
// packing factor r — the read pass under every aggregate, stats scan,
// and select. Compare BenchmarkFlatScanR1 against
// BenchmarkFlatScanPackedDefault for the per-pass speedup (≥4× at the
// default ~4 KiB blocks on typical hardware).
func benchScanAt(b *testing.B, r int) {
	b.Helper()
	e := enclave.MustNew(enclave.Config{Seed: 11})
	const n = 4096
	f, err := storage.NewFlatGeom(e, "bench.scan", workload.Schema(), n, r)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := f.InsertFast(workload.NewRow(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Scan(func(int, table.Row, bool) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n * workload.Schema().RecordSize()))
}

// BenchmarkFlatScanR1 scans at the paper's one-record-per-block layout.
func BenchmarkFlatScanR1(b *testing.B) { benchScanAt(b, 1) }

// BenchmarkFlatScanPacked16 scans at a fixed 16-record packing.
func BenchmarkFlatScanPacked16(b *testing.B) { benchScanAt(b, 16) }

// BenchmarkFlatScanPackedDefault scans at the engine's ~4 KiB default.
func BenchmarkFlatScanPackedDefault(b *testing.B) {
	benchScanAt(b, storage.DefaultRowsPerBlock(workload.Schema()))
}
