package oblidb

import (
	"context"
	"errors"
	"testing"

	"oblidb/internal/table"
)

func apiDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE users (id INTEGER, name VARCHAR(16), age INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, `INSERT INTO users VALUES (?, ?, ?), (?, ?, ?), (?, ?, ?)`,
		1, "alice", 34, 2, "bob", 28, 3, "carol", 41); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryRowsIteration(t *testing.T) {
	db := apiDB(t)
	rows, err := db.Query(context.Background(), `SELECT name, age FROM users WHERE age > $1`, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := map[string]int64{}
	for rows.Next() {
		var name string
		var age int64
		if err := rows.Scan(&name, &age); err != nil {
			t.Fatal(err)
		}
		got[name] = age
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["alice"] != 34 || got["carol"] != 41 {
		t.Fatalf("got %v", got)
	}
	// Scan after exhaustion must error, not panic.
	if err := rows.Scan(new(string), new(int64)); err == nil {
		t.Fatal("Scan after exhausted Next unexpectedly succeeded")
	}
}

func TestPreparedReuse(t *testing.T) {
	db := apiDB(t)
	st, err := db.Prepare(`SELECT name FROM users WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	want := map[int64]string{1: "alice", 2: "bob", 3: "carol"}
	for id, name := range want {
		rows, err := st.Query(id)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no row for id %d", id)
		}
		var got string
		if err := rows.Scan(&got); err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("id %d: got %q want %q", id, got, name)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := st.Exec(int64(1)); err == nil {
		t.Fatal("Exec on closed statement unexpectedly succeeded")
	}
}

func TestQueryRowAndNoRows(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	var name string
	if err := db.QueryRow(ctx, `SELECT name FROM users WHERE id = $1`, 2).Scan(&name); err != nil {
		t.Fatal(err)
	}
	if name != "bob" {
		t.Fatalf("got %q", name)
	}
	err := db.QueryRow(ctx, `SELECT name FROM users WHERE id = $1`, 99).Scan(&name)
	if !errors.Is(err, ErrNoRows) {
		t.Fatalf("want ErrNoRows, got %v", err)
	}
}

func TestContextCancellationBetweenStatements(t *testing.T) {
	db := apiDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, `SELECT * FROM users`); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext on canceled ctx: %v", err)
	}
	st, err := db.Prepare(`SELECT * FROM users WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecContext(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stmt.ExecContext on canceled ctx: %v", err)
	}
}

func TestExecCompatibilityWrapper(t *testing.T) {
	db := apiDB(t)
	res, err := db.Exec(`SELECT name FROM users WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "alice" {
		t.Fatalf("got %v", res.Rows)
	}
	// A parameterized statement through the no-args wrapper is a clean
	// arity error.
	if _, err := db.Exec(`SELECT name FROM users WHERE id = ?`); err == nil {
		t.Fatal("Exec of parameterized statement without args unexpectedly succeeded")
	}
}

func TestArgumentConversions(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	// int widths, float32, []byte all convert through table.FromAny.
	if _, err := db.ExecContext(ctx, `INSERT INTO users VALUES (?, ?, ?)`, int32(4), []byte("dave"), uint16(23)); err != nil {
		t.Fatal(err)
	}
	var age int
	if err := db.QueryRow(ctx, `SELECT age FROM users WHERE name = ?`, "dave").Scan(&age); err != nil {
		t.Fatal(err)
	}
	if age != 23 {
		t.Fatalf("age = %d", age)
	}
	// Unsupported type: clean error.
	if _, err := db.ExecContext(ctx, `SELECT * FROM users WHERE id = ?`, struct{}{}); err == nil {
		t.Fatal("binding a struct unexpectedly succeeded")
	}
	// Values scan: raw table.Value destination.
	var v table.Value
	if err := db.QueryRow(ctx, `SELECT age FROM users WHERE id = $1`, 1).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v.Kind != table.KindInt || v.AsInt() != 34 {
		t.Fatalf("v = %v", v)
	}
}

// TestOrderLimitAndExplainSurface drives ORDER BY / LIMIT and EXPLAIN
// through the public Query API and checks the compiled-plan counters.
func TestOrderLimitAndExplainSurface(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	rows, err := db.Query(ctx, `SELECT name FROM users WHERE age >= $1 ORDER BY age DESC LIMIT 2`, 20)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if len(names) != 2 || names[0] != "carol" || names[1] != "alice" {
		t.Fatalf("ORDER BY age DESC LIMIT 2 = %v", names)
	}
	// Re-execute the shape: the compiled plan replays.
	if _, err := db.Query(ctx, `SELECT name FROM users WHERE age >= $1 ORDER BY age DESC LIMIT 2`, 30); err != nil {
		t.Fatal(err)
	}
	if cs := db.CacheStats(); cs.CompileSkips == 0 {
		t.Fatalf("re-execution did not replay the compiled plan: %+v", cs)
	}
	if ps := db.PlanStats(); ps.Sorts < 2 || ps.Limits < 2 {
		t.Fatalf("pick stats missed the sort/limit pipeline: %+v", ps)
	}

	var first string
	if err := db.QueryRow(ctx, `EXPLAIN SELECT name FROM users ORDER BY age LIMIT 1`).Scan(&first); err != nil {
		t.Fatal(err)
	}
	if first != "Collect" {
		t.Fatalf("EXPLAIN first line = %q", first)
	}
}

func TestPlanCacheStatsSurface(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	_, _, misses0 := db.PlanCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := db.ExecContext(ctx, `SELECT * FROM users WHERE id = ?`, i); err != nil {
			t.Fatal(err)
		}
	}
	_, hits, misses := db.PlanCacheStats()
	if hits < 2 {
		t.Fatalf("expected ≥2 plan-cache hits, got %d (misses %d→%d)", hits, misses0, misses)
	}
}
