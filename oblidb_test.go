package oblidb

import (
	"testing"

	"oblidb/internal/table"
)

func TestPublicAPISQL(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	steps := []string{
		`CREATE TABLE users (id INTEGER, name VARCHAR(16), age INTEGER) STORAGE = BOTH INDEX ON id CAPACITY = 64`,
		`INSERT INTO users VALUES (1, 'alice', 34), (2, 'bob', 28), (3, 'carol', 41)`,
	}
	for _, q := range steps {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := db.Exec(`SELECT name FROM users WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "bob" {
		t.Fatalf("point query = %v", res.Rows)
	}
	res, err = db.Exec(`SELECT COUNT(*), AVG(age) FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestPublicAPIProgrammatic(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	schema := table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindInt},
	)
	if _, err := db.CreateTable("t", schema, TableOptions{Kind: KindBoth, KeyColumn: "k", Capacity: 32}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := db.Insert("t", table.Row{table.Int(i), table.Int(i * i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Select("t", nil, SelectOptions{KeyRange: &KeyRange{Lo: 5, Hi: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("range select = %d rows", len(res.Rows))
	}
	agg, err := db.Aggregate("t", nil, []AggregateSpec{{Kind: AggMax, Column: "v"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rows[0][0].AsInt() != 19*19 {
		t.Fatalf("max = %v", agg.Rows[0][0])
	}
}

func TestPaddingModeThroughFacade(t *testing.T) {
	db, err := Open(Config{Padding: PaddingConfig{Enabled: true, PadRows: 32, PadGroups: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (x INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT * FROM t WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("padded select returned %d real rows", len(res.Rows))
	}
}
