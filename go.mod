module oblidb

go 1.22
