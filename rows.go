package oblidb

import (
	"fmt"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// Rows is a cursor over a materialized query result. Results are always
// fully materialized inside the enclave before delivery — obliviousness
// demands the whole padded output be produced regardless of how much of
// it the caller reads — so the cursor is a reading convenience, not a
// streaming execution: Close never cancels work, and iteration order is
// the engine's output order.
//
//	rows, err := db.Query(ctx, "SELECT id, name FROM users WHERE city = $1", "Oslo")
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var id int64
//		var name string
//		if err := rows.Scan(&id, &name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
type Rows struct {
	cols   []string
	rows   []table.Row
	cur    int // index of the row Scan reads; -1 before the first Next
	closed bool
	err    error
}

func newRows(res *core.Result) *Rows {
	if res == nil {
		return &Rows{cur: -1}
	}
	return &Rows{cols: res.Cols, rows: res.Rows, cur: -1}
}

// Columns returns the result's column names.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, returning false when none remain or
// the cursor is closed.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	r.cur++
	return r.cur < len(r.rows)
}

// Scan copies the current row into dest, which must have one pointer
// per column: *int64, *int, *float64, *string, *bool, *table.Value, or
// *any. Numeric kinds convert to *float64; everything converts to *any
// and *string (via the value's SQL rendering for non-strings).
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return fmt.Errorf("oblidb: Scan on closed Rows")
	}
	if r.cur < 0 || r.cur >= len(r.rows) {
		return fmt.Errorf("oblidb: Scan called without a successful Next")
	}
	row := r.rows[r.cur]
	if len(dest) != len(row) {
		return fmt.Errorf("oblidb: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		if err := scanValue(row[i], d); err != nil {
			return fmt.Errorf("oblidb: column %d (%s): %w", i, r.colName(i), err)
		}
	}
	return nil
}

func (r *Rows) colName(i int) string {
	if i < len(r.cols) {
		return r.cols[i]
	}
	return "?"
}

func scanValue(v table.Value, dest any) error {
	switch d := dest.(type) {
	case *table.Value:
		*d = v
		return nil
	case *any:
		switch v.Kind {
		case table.KindInt:
			*d = v.AsInt()
		case table.KindFloat:
			*d = v.AsFloat()
		case table.KindBool:
			*d = v.AsBool()
		case table.KindNull:
			*d = nil
		default:
			*d = v.AsString()
		}
		return nil
	case *int64:
		if v.Kind != table.KindInt && v.Kind != table.KindBool {
			return fmt.Errorf("cannot scan %s into *int64", v.Kind)
		}
		*d = v.AsInt()
		return nil
	case *int:
		if v.Kind != table.KindInt && v.Kind != table.KindBool {
			return fmt.Errorf("cannot scan %s into *int", v.Kind)
		}
		*d = int(v.AsInt())
		return nil
	case *float64:
		if !v.IsNumeric() {
			return fmt.Errorf("cannot scan %s into *float64", v.Kind)
		}
		*d = v.AsFloat()
		return nil
	case *bool:
		if v.Kind != table.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v.Kind)
		}
		*d = v.AsBool()
		return nil
	case *string:
		if v.Kind == table.KindString {
			*d = v.AsString()
		} else {
			*d = v.String()
		}
		return nil
	}
	return fmt.Errorf("unsupported Scan destination %T", dest)
}

// Values returns the current row's raw values (valid after a successful
// Next, until the next call). Callers must not mutate it.
func (r *Rows) Values() (table.Row, error) {
	if r.closed || r.cur < 0 || r.cur >= len(r.rows) {
		return nil, fmt.Errorf("oblidb: Values called without a successful Next")
	}
	return r.rows[r.cur], nil
}

// Len reports the total number of rows in the result (the result is
// materialized, so this is exact and does not consume the cursor).
func (r *Rows) Len() int { return len(r.rows) }

// Err returns the error, if any, encountered during iteration. It
// exists for database/sql-style loops; materialized iteration itself
// cannot fail.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. It is idempotent; iteration after Close
// reports no rows.
func (r *Rows) Close() error {
	r.closed = true
	return nil
}
