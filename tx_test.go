package oblidb

import (
	"context"
	"testing"
)

func txCount(t *testing.T, db *DB, q string, args ...any) int64 {
	t.Helper()
	var n int64
	if err := db.QueryRow(context.Background(), q, args...).Scan(&n); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return n
}

func TestTxCommitAppliesAtomically(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tx.ExecContext(ctx, `INSERT INTO users VALUES (?, ?, ?)`, 4, "dave", 52)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 0 {
		t.Fatalf("buffered write reported %d affected, want 0", got)
	}
	if _, err := tx.ExecContext(ctx, `DELETE FROM users WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// Reads on the tx (and on the DB) see the pre-transaction snapshot.
	rows, err := tx.Query(ctx, `SELECT * FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for rows.Next() {
		seen++
	}
	if seen != 3 {
		t.Fatalf("tx read saw %d rows, want pre-tx 3", seen)
	}
	res, err = tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 2 {
		t.Fatalf("commit total = %d, want 2", got)
	}
	if n := txCount(t, db, `SELECT COUNT(*) FROM users`); n != 3 {
		t.Fatalf("post-commit count = %d, want 3", n)
	}
	if n := txCount(t, db, `SELECT COUNT(*) FROM users WHERE id = 4`); n != 1 {
		t.Fatal("committed insert missing")
	}
	if _, err := tx.Commit(ctx); err == nil {
		t.Fatal("double commit succeeded")
	}
}

func TestTxRollbackDiscards(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, `DELETE FROM users WHERE age > 0`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := txCount(t, db, `SELECT COUNT(*) FROM users`); n != 3 {
		t.Fatalf("post-rollback count = %d, want 3", n)
	}
	if err := tx.Rollback(); err == nil {
		t.Fatal("double rollback succeeded")
	}
}

func TestTxRejectsDDLAndControl(t *testing.T) {
	db := apiDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.ExecContext(ctx, `CREATE TABLE nope (a INTEGER)`); err == nil {
		t.Fatal("DDL inside tx accepted")
	}
	if _, err := tx.ExecContext(ctx, `BEGIN`); err == nil {
		t.Fatal("nested BEGIN statement accepted")
	}
	if _, err := tx.ExecContext(ctx, `INSERT INTO users VALUES (?, ?, ?)`, 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
