// Analytics: the paper's Big Data Benchmark workload (§7.1) at small
// scale — the three queries that motivate ObliDB's design, run first on a
// flat table (every operator scans, as Opaque must) and then with an
// oblivious index (Q1 reads just the matching key range).
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"oblidb/internal/bdb"
	"oblidb/internal/core"
	"oblidb/internal/exec"
)

func main() {
	const scale = 0.02 // 7,200 rankings / 7,000 visits
	g := bdb.Scaled(scale, 1)

	run := func(kind core.StorageKind, label string) (q1, q2, q3 time.Duration) {
		db := core.MustOpen(core.Config{})
		if err := bdb.Load(db, g, bdb.LoadOptions{RankingsKind: kind}); err != nil {
			log.Fatal(err)
		}
		useIndex := kind != core.KindFlat

		start := time.Now()
		res, err := bdb.Q1(db, useIndex)
		if err != nil {
			log.Fatal(err)
		}
		q1 = time.Since(start)
		fmt.Printf("%s Q1: %4d pages with pageRank > %d        %10s (select: %s)\n",
			label, len(res.Rows), bdb.Q1Param, q1.Round(time.Millisecond), db.LastPlan.SelectAlg)

		start = time.Now()
		res, err = bdb.Q2(db)
		if err != nil {
			log.Fatal(err)
		}
		q2 = time.Since(start)
		fmt.Printf("%s Q2: %4d sourceIP prefixes, revenue summed %9s\n",
			label, len(res.Rows), q2.Round(time.Millisecond))

		start = time.Now()
		res, err = bdb.Q3(db)
		if err != nil {
			log.Fatal(err)
		}
		q3 = time.Since(start)
		fmt.Printf("%s Q3: %4d groups from filtered join         %9s (join: %s)\n",
			label, len(res.Rows), q3.Round(time.Millisecond), db.LastPlan.JoinAlg)
		return
	}

	fmt.Printf("Big Data Benchmark at %.0f%% scale (%d rankings, %d visits)\n\n",
		scale*100, g.Rankings, g.UserVisits)
	_, _, _ = run(core.KindFlat, "flat   ")
	fmt.Println()
	i1, _, _ := run(core.KindBoth, "indexed")

	// The general-purpose scan-based select — what a system restricted to
	// whole-table operators must run for Q1.
	scanDB := core.MustOpen(core.Config{})
	if err := bdb.Load(scanDB, g, bdb.LoadOptions{RankingsKind: core.KindFlat}); err != nil {
		log.Fatal(err)
	}
	hash := exec.SelectHash
	start := time.Now()
	if _, err := scanDB.Select("rankings", bdb.Q1Pred, core.SelectOptions{
		Projection: []string{"pageURL", "pageRank"}, Force: &hash,
	}); err != nil {
		log.Fatal(err)
	}
	scanQ1 := time.Since(start)

	fmt.Printf("\nscan-only oblivious Q1 (forced Hash):              %9s\n", scanQ1.Round(time.Millisecond))
	fmt.Printf("Q1 index speedup over the scan-based operator: %.1f× — the gap that grows\n",
		math.Round(10*float64(scanQ1)/float64(i1))/10)
	fmt.Println("into Figure 7's 19× over Opaque at full scale: the indexed plan touches only")
	fmt.Println("the matching key range, while scan-based systems pay for the whole table.")
}
