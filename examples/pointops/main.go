// Pointops: the paper's §4.1 motivating scenario — a Checkins table
// logging when employees enter or exit a building. A plain database's
// access pattern on `WHERE uid=3172 AND date>'2018-01-01'` would reveal
// which rows matched, i.e. when the user was in the building. Here the
// same workload runs obliviously, and the program *proves* it by counting
// untrusted accesses: hits, misses, and different keys all cost exactly
// the same.
package main

import (
	"fmt"
	"log"

	"oblidb/internal/core"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func main() {
	tr := trace.New()
	tr.EnableCounts()
	tr.Disable() // counts only; no need to keep full event logs
	db := core.MustOpen(core.Config{Tracer: tr})

	schema := table.MustSchema(
		table.Column{Name: "uid", Kind: table.KindInt},
		table.Column{Name: "date", Kind: table.KindString, Width: 10},
		table.Column{Name: "direction", Kind: table.KindString, Width: 4},
	)
	if _, err := db.CreateTable("checkins", schema, core.TableOptions{
		Kind: core.KindIndexed, KeyColumn: "uid", Capacity: 4096,
	}); err != nil {
		log.Fatal(err)
	}

	// Load some employees' movements.
	rows := make([]table.Row, 0, 2000)
	for uid := int64(3000); uid < 3500; uid++ {
		for day := 1; day <= 4; day++ {
			dir := "in"
			if day%2 == 0 {
				dir = "out"
			}
			rows = append(rows, table.Row{
				table.Int(uid),
				table.Str(fmt.Sprintf("2018-01-%02d", day)),
				table.Str(dir),
			})
		}
	}
	if err := db.BulkLoad("checkins", rows); err != nil {
		log.Fatal(err)
	}
	t, _ := db.Table("checkins")

	fmt.Println("Point operations on the oblivious index (2,000-row Checkins table)")
	fmt.Println()

	count := func(f func()) uint64 {
		before := tr.TotalCount()
		f()
		return tr.TotalCount() - before
	}

	// Point lookups: an existing employee, a different employee, and an
	// id that does not exist. The adversary sees the same number of
	// untrusted accesses each time.
	for _, uid := range []int64{3172, 3401, 999999} {
		n := count(func() {
			if _, _, err := t.Index().Lookup(uid); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("  lookup uid=%-7d -> %3d untrusted accesses\n", uid, n)
	}
	fmt.Println()

	// Inserts: one that splits a B+ tree node somewhere and one that
	// doesn't — indistinguishable because mutations are padded to the
	// worst case (§3.2).
	for i, uid := range []int64{3172, 777777} {
		n := count(func() {
			if err := db.Insert("checkins", table.Row{
				table.Int(uid), table.Str("2018-02-01"), table.Str("in"),
			}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("  insert #%d           -> %3d untrusted accesses\n", i+1, n)
	}
	fmt.Println()

	// Single-row deletes on the index: a key that exists, another that
	// exists, and one that doesn't — identical cost, because deletions
	// pad to the worst case whether or not they find, merge, or borrow.
	for _, uid := range []int64{3172, 3401, 424242} {
		n := count(func() {
			if _, err := t.Index().Delete(uid); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("  delete uid=%-7d -> %3d untrusted accesses\n", uid, n)
	}
	fmt.Println()

	// A SQL-level DELETE removing several rows costs one padded delete
	// per removed row. The adversary learns the number removed — but that
	// is already public from the table's size change (§2.3).
	nDel := count(func() {
		removed, err := db.Delete("checkins", nil, core.Point(3100))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  DELETE WHERE uid=3100 removed %d rows", removed)
	})
	fmt.Printf(" -> %4d accesses (scales with the public count)\n\n", nDel)

	// The query from the paper: one employee's check-ins after a date.
	res, err := db.Select("checkins",
		func(r table.Row) bool { return r[1].AsString() > "2018-01-01" },
		core.SelectOptions{KeyRange: core.Point(3300)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SELECT * WHERE uid=3300 AND date>'2018-01-01' -> %d rows\n", len(res.Rows))
	fmt.Println("  (which rows matched — when the employee was present — stayed hidden)")
}
