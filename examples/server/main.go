// Server example: start an epoch-padded ObliDB server on a loopback
// listener, connect with the client package, and run SQL over the wire
// — Exec, Prepare/Exec, concurrent clients, and server stats.
//
// The server executes statements only inside fixed-size epochs on a
// fixed cadence, padding idle slots with dummy queries, so the
// untrusted host observes the same constant-rate stream no matter how
// the clients below behave. The stats printed at the end show the
// padding at work: dummy statements fill every slot the clients left
// empty.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"oblidb/client"
	"oblidb/internal/server"
)

func main() {
	// An in-process server; in production this runs as oblidb-server on
	// the untrusted host, with the engine inside the enclave.
	srv, err := server.New(server.Config{
		EpochSize:     4,
		EpochInterval: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0") }()
	for srv.Addr() == nil {
		select {
		case err := <-serveErr:
			log.Fatal(err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	mustExec := func(q string) *client.Result {
		res, err := c.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	mustExec(`CREATE TABLE events (id INTEGER, kind VARCHAR(12), amount INTEGER) INDEX ON id`)
	mustExec(`INSERT INTO events VALUES
	    (1, 'signup', 0), (2, 'purchase', 40), (3, 'purchase', 75), (4, 'refund', -40)`)

	res := mustExec(`SELECT kind, amount FROM events WHERE amount > 0`)
	fmt.Println("-- purchases over the wire")
	fmt.Printf("   %s\n", strings.Join(res.Cols, " | "))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Printf("   %s\n", strings.Join(cells, " | "))
	}

	// A prepared statement: parsed once server-side, executed many times.
	stmt, err := c.Prepare(`SELECT COUNT(*), SUM(amount) FROM events`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := stmt.Exec()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- prepared run %d: %s = %s, %s = %s\n", i+1,
			res.Cols[0], res.Rows[0][0], res.Cols[1], res.Rows[0][1])
	}
	stmt.Close()

	// Concurrent clients: each dials its own connection and inserts;
	// the epoch scheduler serializes everything against the engine.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cw, err := client.Dial(srv.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer cw.Close()
			for i := 0; i < 4; i++ {
				id := 100 + w*10 + i
				if _, err := cw.Exec(fmt.Sprintf(
					`INSERT INTO events VALUES (%d, 'purchase', %d)`, id, id)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	res = mustExec(`SELECT COUNT(*) FROM events`)
	fmt.Printf("-- after concurrent inserts: %s rows\n", res.Rows[0][0])

	st, err := c.ServerStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- server observed stream: %d epochs × %d slots (%d real, %d dummy statements)\n",
		st.Epochs, st.EpochSize, st.Real, st.Dummy)
}
