// Padding: the paper's padding mode (§2.3, §7.2). In normal mode ObliDB
// leaks result and intermediate table sizes — often acceptable, sometimes
// not (how many orders did this customer place?). Padding mode pads every
// intermediate and result table to a fixed bound so even sizes are
// hidden, at a measurable cost this example prints.
package main

import (
	"fmt"
	"log"
	"time"

	"oblidb/internal/bdb"
	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

func main() {
	const rows = 5000
	padRows := rows * 200 / 107   // the paper's 107k→200k ratio
	padGroups := rows * 350 / 107 // its "maximum supported groups"
	data := bdb.GenCFPB(rows, 3)

	run := func(padding bool) (sel, agg time.Duration, selSlots int) {
		cfg := core.Config{}
		if padding {
			cfg.Padding = core.PaddingConfig{Enabled: true, PadRows: padRows, PadGroups: padGroups}
		}
		db := core.MustOpen(cfg)
		if _, err := db.CreateTable("complaints", bdb.CFPBSchema(), core.TableOptions{Capacity: rows + 1}); err != nil {
			log.Fatal(err)
		}
		if err := db.BulkLoad("complaints", data); err != nil {
			log.Fatal(err)
		}
		t, _ := db.Table("complaints")

		// Padding mode never plans; the normal run forces the same
		// general-purpose operator so the ratio isolates padding's cost.
		opts := core.SelectOptions{}
		if !padding {
			hash := exec.SelectHash
			opts.Force = &hash
		}
		start := time.Now()
		out, err := db.SelectTable(t,
			func(r table.Row) bool { return r[2].AsString() == "CA" },
			opts)
		if err != nil {
			log.Fatal(err)
		}
		sel = time.Since(start)
		selSlots = out.Flat().Capacity()

		start = time.Now()
		if _, err := db.GroupAggregateTable(t, nil,
			func(r table.Row) table.Value { return r[1] }, // by product
			[]core.AggregateSpec{{Kind: exec.AggCount}}, nil); err != nil {
			log.Fatal(err)
		}
		agg = time.Since(start)
		return
	}

	fmt.Printf("CFPB complaints table: %d rows; padded to %d rows, %d groups\n\n", rows, padRows, padGroups)
	selN, aggN, slotsN := run(false)
	selP, aggP, slotsP := run(true)

	fmt.Println("                         normal      padded    slowdown")
	fmt.Printf("  select state='CA'   %9s  %9s      %.1f×\n",
		selN.Round(time.Millisecond), selP.Round(time.Millisecond), float64(selP)/float64(selN))
	fmt.Printf("  group by product    %9s  %9s      %.1f×\n\n",
		aggN.Round(time.Millisecond), aggP.Round(time.Millisecond), float64(aggP)/float64(aggN))

	fmt.Printf("  output structure:   %d slots (leaks |R|)  vs  %d slots (leaks only the bound)\n", slotsN, slotsP)
	fmt.Println("  The paper reports 2.4× (select) and 4.4× (aggregate) for a 107k-row table")
	fmt.Println("  padded to 200k (§7.2); the shape — aggregates pay more because group")
	fmt.Println("  output pads to the maximum group count — holds here too.")
}
