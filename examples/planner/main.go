// Planner: the paper's query planner (§5) choosing among the four
// oblivious SELECT algorithms. The planner sees only what the adversary
// already sees — table and output sizes, and contiguity — yet its picks
// beat the general-purpose algorithm by the margins Figure 13 reports.
package main

import (
	"fmt"
	"log"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
	"oblidb/internal/workload"
)

func main() {
	const n = 20000
	db := core.MustOpen(core.Config{})
	if err := workload.Setup(db, "t", core.KindFlat, n); err != nil {
		log.Fatal(err)
	}
	t, _ := db.Table("t")

	scenarios := []struct {
		name string
		pred table.Pred
	}{
		{"3% scattered", func(r table.Row) bool { return r[0].AsInt()%33 == 0 }},
		{"3% contiguous", func(r table.Row) bool { k := r[0].AsInt(); return k >= 5000 && k < 5600 }},
		{"95% of table", func(r table.Row) bool { return r[0].AsInt()%20 != 0 }},
	}

	fmt.Printf("Planner decisions on a %d-row table\n\n", n)
	for _, sc := range scenarios {
		// Planner's choice.
		start := time.Now()
		if _, err := db.SelectTable(t, sc.pred, core.SelectOptions{}); err != nil {
			log.Fatal(err)
		}
		chosen := db.LastPlan.SelectAlg
		chosenTime := time.Since(start)

		// The general-purpose algorithm, forced, for comparison.
		hash := exec.SelectHash
		start = time.Now()
		if _, err := db.SelectTable(t, sc.pred, core.SelectOptions{Force: &hash}); err != nil {
			log.Fatal(err)
		}
		hashTime := time.Since(start)

		fmt.Printf("  %-15s planner chose %-11s %9s   (Hash would take %9s, %.1f× slower)\n",
			sc.name, chosen.String()+",", chosenTime.Round(time.Millisecond),
			hashTime.Round(time.Millisecond), float64(hashTime)/float64(chosenTime))
		fmt.Printf("  %15s stats scan saw %d matching rows, contiguous=%v\n\n",
			"", db.LastPlan.Stats.Matching, db.LastPlan.Stats.Contiguous)
	}

	fmt.Println("The choice itself is the only leakage planning adds — and it is computed")
	fmt.Println("from sizes the adversary already observes (§5).")
}
