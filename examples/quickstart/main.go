// Quickstart: create a table, load rows, and run oblivious queries
// through the SQL interface. Every statement below executes with
// access-pattern-hiding operators — an OS-level adversary watching memory
// learns only table and result sizes.
package main

import (
	"fmt"
	"log"
	"strings"

	"oblidb"
)

func main() {
	db, err := oblidb.Open(oblidb.Config{})
	if err != nil {
		log.Fatal(err)
	}

	mustExec := func(q string) *oblidb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	// A table stored BOTH ways: a flat array for analytics and an
	// oblivious B+ tree for point lookups (paper §3).
	mustExec(`CREATE TABLE employees (
	    id INTEGER, name VARCHAR(20), dept VARCHAR(12), salary INTEGER
	) STORAGE = BOTH INDEX ON id CAPACITY = 128`)

	mustExec(`INSERT INTO employees VALUES
	    (1, 'alice',  'engineering', 120),
	    (2, 'bob',    'engineering', 100),
	    (3, 'carol',  'sales',        90),
	    (4, 'dave',   'sales',        80),
	    (5, 'erin',   'hr',           75),
	    (6, 'frank',  'engineering', 110)`)

	show := func(title, q string) {
		res := mustExec(q)
		fmt.Printf("-- %s\n   %s\n", title, q)
		fmt.Printf("   %s\n", strings.Join(res.Cols, " | "))
		for _, r := range res.Rows {
			cells := make([]string, len(r))
			for i, v := range r {
				cells[i] = v.String()
			}
			fmt.Printf("   %s\n", strings.Join(cells, " | "))
		}
		fmt.Printf("   (planner chose the %s select algorithm)\n\n", db.LastPlan.SelectAlg)
	}

	// Point query: served by the oblivious index in O(log² N) padded
	// ORAM accesses — the access count is identical for hits and misses.
	show("point query via the oblivious index", `SELECT name, salary FROM employees WHERE id = 4`)

	// Filter: the planner's stats scan finds the output size, then picks
	// the best oblivious selection algorithm for it.
	show("filtered scan", `SELECT name FROM employees WHERE dept = 'engineering' AND salary >= 105`)

	// Fused select+aggregate: no intermediate table, no intermediate
	// size leaked (paper §4.2).
	show("fused aggregate", `SELECT COUNT(*), AVG(salary) FROM employees WHERE dept = 'engineering'`)

	// Grouped aggregation with the in-enclave hash table.
	show("grouped aggregation", `SELECT dept, SUM(salary) FROM employees GROUP BY dept`)

	// Updates and deletes give every block a read and a write — dummy or
	// real — so the touched rows are hidden.
	mustExec(`UPDATE employees SET salary = salary + 10 WHERE dept = 'hr'`)
	mustExec(`DELETE FROM employees WHERE id = 2`)
	show("after update + delete", `SELECT COUNT(*), SUM(salary) FROM employees`)
}
