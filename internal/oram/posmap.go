package oram

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"oblidb/internal/enclave"
)

// posMap maps logical block ids to their assigned leaf. getSet returns the
// current leaf and atomically installs a new one — a single operation so
// the recursive variant costs exactly one child-ORAM access per parent
// access.
type posMap interface {
	getSet(id int, newLeaf uint32) (uint32, error)
	release()
	// untrustedStore is the untrusted store backing the map (nil when the
	// map lives wholly in enclave memory); adversary tests tamper with it.
	untrustedStore() *enclave.Store
}

// plainMap keeps the whole map in enclave oblivious memory, charging the
// paper's 8 B/block rate against the budget.
type plainMap struct {
	enc      *enclave.Enclave
	leaves   []uint32
	reserved int
}

func newPlainMap(e *enclave.Enclave, capacity, numLeaves int, rng *rand.Rand) (*plainMap, error) {
	reserved := capacity * PosBytesPerBlock
	if err := e.Reserve(reserved); err != nil {
		return nil, fmt.Errorf("oram: position map for %d blocks: %w", capacity, err)
	}
	m := &plainMap{enc: e, leaves: make([]uint32, capacity), reserved: reserved}
	for i := range m.leaves {
		m.leaves[i] = uint32(rng.IntN(numLeaves))
	}
	return m, nil
}

func (m *plainMap) getSet(id int, newLeaf uint32) (uint32, error) {
	old := m.leaves[id]
	m.leaves[id] = newLeaf
	return old, nil
}

func (m *plainMap) release() {
	if m.reserved > 0 {
		m.enc.Release(m.reserved)
		m.reserved = 0
	}
}

func (m *plainMap) untrustedStore() *enclave.Store { return nil }

// recursiveMap stores position-map entries packed into the blocks of a
// child ORAM (Appendix B). One layer of recursion suffices in practice:
// "a 10MB position map ... can support 1.1 million records"; the child's
// own (plain) map is smaller than the parent's by the pack factor.
type recursiveMap struct {
	child   *ORAM
	perBlk  int
	scratch []byte
}

func newRecursiveMap(e *enclave.Enclave, name string, capacity, numLeaves, mapBlockSize int, rng *rand.Rand) (*recursiveMap, error) {
	if mapBlockSize == 0 {
		mapBlockSize = 256
	}
	if mapBlockSize%4 != 0 || mapBlockSize < 4 {
		return nil, fmt.Errorf("oram: map block size %d must be a positive multiple of 4", mapBlockSize)
	}
	perBlk := mapBlockSize / 4
	numBlocks := (capacity + perBlk - 1) / perBlk
	// The child ORAM draws its leaf assignments from its own stream,
	// seeded deterministically from the parent's.
	childSeed := rng.Uint64()
	if childSeed == 0 {
		childSeed = 1
	}
	child, err := New(e, name, numBlocks, mapBlockSize, Options{Seed: childSeed})
	if err != nil {
		return nil, err
	}
	m := &recursiveMap{child: child, perBlk: perBlk, scratch: make([]byte, mapBlockSize)}
	// Initialize every entry to a uniformly random leaf, as the plain map
	// does. Entry values are stored +1 so a zero word means "unassigned"
	// and is lazily randomized on first touch — but bulk-initializing here
	// keeps the first accesses uniform too.
	buf := make([]byte, mapBlockSize)
	for b := 0; b < numBlocks; b++ {
		for i := 0; i < perBlk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(rng.IntN(numLeaves))+1)
		}
		if _, err := child.Access(OpWrite, b, buf); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *recursiveMap) getSet(id int, newLeaf uint32) (uint32, error) {
	blk, off := id/m.perBlk, (id%m.perBlk)*4
	var old uint32
	_, err := m.child.UpdateInto(blk, m.scratch, func(data []byte) []byte {
		old = binary.LittleEndian.Uint32(data[off : off+4])
		binary.LittleEndian.PutUint32(data[off:off+4], newLeaf+1)
		return data
	})
	if err != nil {
		return 0, err
	}
	if old == 0 {
		// Unreachable after bulk init, but keep the lazy path correct.
		return newLeaf, nil
	}
	return old - 1, nil
}

func (m *recursiveMap) release() {
	m.child.Close()
}

func (m *recursiveMap) untrustedStore() *enclave.Store { return m.child.store }
