package oram

// Scheme is the ORAM contract ObliDB's data structures program against.
// §8 of the paper: "We use the Path ORAM in our implementation, but any
// other ORAM could replace it with no other changes to the system" — this
// interface is that replaceability, and both Path ORAM (ORAM) and Ring
// ORAM (Ring) satisfy it.
type Scheme interface {
	// Access performs one logical read or write of block id.
	Access(op Op, id int, data []byte) ([]byte, error)
	// AccessInto is Access returning the block contents in dst's capacity
	// (see enclave.Store.ReadInto): hot paths that reuse one scratch block
	// pay zero allocations per access.
	AccessInto(op Op, id int, data, dst []byte) ([]byte, error)
	// Update reads, transforms, and rewrites a block in one operation.
	Update(id int, fn func([]byte) []byte) ([]byte, error)
	// UpdateInto is Update returning the result in dst's capacity.
	UpdateInto(id int, dst []byte, fn func([]byte) []byte) ([]byte, error)
	// AccessesPerOp is the number of untrusted block accesses one logical
	// operation costs (amortized), the public O(log N) factor the planner
	// prices indexed access with.
	AccessesPerOp() int
	// DummyAccess performs an access indistinguishable from a real one,
	// for callers padding to worst-case counts.
	DummyAccess() error
	// RawScan streams all live blocks via one linear pass over untrusted
	// memory (the §3.2 scan-as-flat fallback).
	RawScan(fn func(id int, data []byte) error) error
	// Capacity is the number of logical blocks.
	Capacity() int
	// BlockSize is the logical block payload size.
	BlockSize() int
	// StashSize is the current in-enclave stash occupancy.
	StashSize() int
	// UntrustedBytes is the untrusted memory footprint.
	UntrustedBytes() int
	// Close releases oblivious-memory reservations.
	Close()
}

var (
	_ Scheme = (*ORAM)(nil)
	_ Scheme = (*Ring)(nil)
)
