// Package oram implements Path ORAM (Stefanov et al., CCS'13), the
// oblivious RAM scheme ObliDB instantiates (§3.2, Appendix B). An ORAM
// stores fixed-size logical blocks in untrusted memory such that any two
// access sequences of equal length are indistinguishable: every access
// reads and rewrites one full root-to-leaf path of a bucket tree, and the
// accessed block is remapped to a fresh random leaf.
//
// The client state — position map and stash — lives inside the enclave.
// The nonrecursive position map charges the enclave's oblivious-memory
// budget at the paper's rate of 8 bytes per block (§3.3); the recursive
// variant (Appendix B) stores the map in a second ORAM, trading ~2×
// performance for a constant-size in-enclave map.
package oram

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand/v2"

	"oblidb/internal/enclave"
)

// Z is the bucket capacity in blocks. Path ORAM with Z=4 keeps the stash
// small with overwhelming probability.
const Z = 4

// PosBytesPerBlock is the oblivious-memory cost of one nonrecursive
// position-map entry (a uint32 leaf index). An indexed table's ORAM holds
// roughly two blocks per row (record + its share of tree nodes), so the
// per-row charge lands at the paper's "8 Bytes of memory per row of an
// indexed table" (§3.3).
const PosBytesPerBlock = 4

// stashEntry is an in-enclave copy of a block together with its currently
// assigned leaf. Keeping the leaf here lets eviction proceed without
// consulting the position map, which matters for the recursive variant
// (one child-ORAM access per parent access, not one per stash block).
type stashEntry struct {
	leaf uint32
	data []byte
}

// ORAM is a Path ORAM over an enclave-managed untrusted store.
type ORAM struct {
	enc       *enclave.Enclave
	store     *enclave.Store
	capacity  int // number of logical blocks
	blockSize int // logical block payload bytes
	levels    int // tree levels (path length)
	leaves    int // number of leaf buckets, a power of two
	pos       posMap
	stash     map[uint32]stashEntry
	slotSize  int
	plainBuf  []byte     // reusable bucket buffer for eviction
	readBuf   []byte     // reusable bucket buffer for path reads
	pathBuf   []int      // reusable root-to-leaf bucket index buffer
	dummyBuf  []byte     // DummyAccess result sink
	free      [][]byte   // recycled stash block buffers
	rng       *rand.Rand // dedicated leaf-assignment stream (see Options.Seed)
}

// newBlockBuf returns a zeroed block-sized buffer, recycling buffers of
// evicted stash entries so the steady-state stash churns no allocations.
func (o *ORAM) newBlockBuf() []byte {
	if n := len(o.free); n > 0 {
		buf := o.free[n-1]
		o.free = o.free[:n-1]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]byte, o.blockSize)
}

// Options configures ORAM construction.
type Options struct {
	// Recursive stores the position map in a second ORAM (Appendix B)
	// instead of charging 8 B/block of oblivious memory.
	Recursive bool
	// MapBlockSize is the block size of the recursive position-map ORAM.
	// Zero means 256 bytes (64 entries per map block).
	MapBlockSize int
	// Seed seeds this ORAM's private leaf-assignment PRNG. Zero derives a
	// stable seed from the enclave seed and the store name, so leaf
	// assignment is reproducible per (engine seed, table) regardless of
	// what other structures draw from the enclave's shared PRNG.
	Seed uint64
}

// newRng builds the ORAM's dedicated PRNG from Options.Seed (or the
// enclave-derived default).
func newRng(e *enclave.Enclave, name string, opts Options) *rand.Rand {
	seed := opts.Seed
	if seed == 0 {
		seed = e.SeedFor(name)
	}
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// New creates an ORAM holding capacity logical blocks of blockSize bytes.
// All blocks initially read as zeroes.
func New(e *enclave.Enclave, name string, capacity, blockSize int, opts Options) (*ORAM, error) {
	if capacity <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("oram: invalid capacity=%d blockSize=%d", capacity, blockSize)
	}
	// Sizing: leaves ≈ capacity/2 gives the ~4× slot overhead the paper
	// reports for its oblivious indexes (§3.3) while Z=4 keeps the stash
	// bounded in practice.
	leaves := nextPow2((capacity + 1) / 2)
	levels := bits.TrailingZeros(uint(leaves)) + 1
	numBuckets := 2*leaves - 1
	slotSize := 8 + blockSize
	store, err := e.NewStore(name, numBuckets, Z*slotSize)
	if err != nil {
		return nil, err
	}
	o := &ORAM{
		enc:       e,
		store:     store,
		capacity:  capacity,
		blockSize: blockSize,
		levels:    levels,
		leaves:    leaves,
		stash:     make(map[uint32]stashEntry),
		slotSize:  slotSize,
		plainBuf:  make([]byte, Z*slotSize),
		rng:       newRng(e, name, opts),
	}
	if opts.Recursive {
		o.pos, err = newRecursiveMap(e, name+".posmap", capacity, leaves, opts.MapBlockSize, o.rng)
	} else {
		o.pos, err = newPlainMap(e, capacity, leaves, o.rng)
	}
	if err != nil {
		return nil, err
	}
	return o, nil
}

// Close releases the ORAM's oblivious-memory reservations.
func (o *ORAM) Close() {
	if o.pos != nil {
		o.pos.release()
		o.pos = nil
	}
}

// Capacity returns the number of logical blocks.
func (o *ORAM) Capacity() int { return o.capacity }

// BlockSize returns the logical block payload size.
func (o *ORAM) BlockSize() int { return o.blockSize }

// Levels returns the path length of one access.
func (o *ORAM) Levels() int { return o.levels }

// StashSize returns the current number of blocks in the stash. Path ORAM
// guarantees this stays small with overwhelming probability; tests verify.
func (o *ORAM) StashSize() int { return len(o.stash) }

// UntrustedBytes returns the untrusted memory the ORAM occupies, the ~4×
// overhead of Figure 2's "Index" column.
func (o *ORAM) UntrustedBytes() int { return o.store.SizeBytes() }

// Store exposes the untrusted bucket store for adversary tests.
func (o *ORAM) Store() *enclave.Store { return o.store }

// PosMapStore exposes the recursive position map's untrusted store (nil
// when the map is held in enclave memory), for adversary tests.
func (o *ORAM) PosMapStore() *enclave.Store { return o.pos.untrustedStore() }

// AccessesPerOp returns the number of untrusted block accesses one ORAM
// operation performs (path reads plus path writes), the O(log N) factor of
// §3.2.
func (o *ORAM) AccessesPerOp() int { return 2 * o.levels }

// Op selects the logical operation of an Access.
type Op uint8

const (
	// OpRead fetches a block's current contents.
	OpRead Op = iota
	// OpWrite replaces a block's contents.
	OpWrite
)

// Access performs one ORAM operation on block id and returns the block's
// resulting contents. Reads and writes are indistinguishable to the
// adversary: both read one path and rewrite it.
func (o *ORAM) Access(op Op, id int, data []byte) ([]byte, error) {
	return o.access(op, id, data, nil, nil)
}

// AccessInto is Access returning the contents in dst's capacity: when dst
// can hold one block nothing is allocated for the result.
func (o *ORAM) AccessInto(op Op, id int, data, dst []byte) ([]byte, error) {
	return o.access(op, id, data, nil, dst)
}

// Update atomically reads block id, applies fn to its contents, and writes
// the result back within a single path access. The slice passed to fn is
// owned by fn and may be mutated and returned.
func (o *ORAM) Update(id int, fn func([]byte) []byte) ([]byte, error) {
	return o.access(OpRead, id, nil, fn, nil)
}

// UpdateInto is Update returning the result in dst's capacity.
func (o *ORAM) UpdateInto(id int, dst []byte, fn func([]byte) []byte) ([]byte, error) {
	return o.access(OpRead, id, nil, fn, dst)
}

// DummyAccess performs a read of a uniformly random block, used by callers
// that pad operations to worst-case access counts (§3.2). The result lands
// in an internal scratch buffer so padding allocates nothing.
func (o *ORAM) DummyAccess() error {
	var err error
	o.dummyBuf, err = o.AccessInto(OpRead, o.rng.IntN(o.capacity), nil, o.dummyBuf)
	return err
}

// resultInto copies one block's contents into dst's capacity (allocating
// only when dst is too small), the shared tail of every access.
func resultInto(dst, data []byte, blockSize int) []byte {
	if cap(dst) < blockSize {
		dst = make([]byte, blockSize)
	}
	dst = dst[:blockSize]
	copy(dst, data)
	return dst
}

func (o *ORAM) access(op Op, id int, data []byte, fn func([]byte) []byte, dst []byte) ([]byte, error) {
	if id < 0 || id >= o.capacity {
		return nil, fmt.Errorf("oram: block id %d out of range [0,%d)", id, o.capacity)
	}
	if op == OpWrite && len(data) != o.blockSize {
		return nil, fmt.Errorf("oram: write of %d bytes, block size %d", len(data), o.blockSize)
	}
	newLeaf := uint32(o.rng.IntN(o.leaves))
	oldLeaf, err := o.pos.getSet(id, newLeaf)
	if err != nil {
		return nil, err
	}

	// Read the whole path into the stash.
	path := o.pathBuckets(int(oldLeaf))
	for _, b := range path {
		if err := o.readBucketIntoStash(b); err != nil {
			return nil, err
		}
	}

	// Serve the request from the stash under the block's new leaf. A block
	// never written reads as zeroes and is materialized so it can be
	// evicted to its new path.
	entry, ok := o.stash[uint32(id)]
	if !ok {
		entry = stashEntry{data: o.newBlockBuf()}
	}
	entry.leaf = newLeaf
	switch {
	case fn != nil:
		entry.data = fn(entry.data)
		if len(entry.data) != o.blockSize {
			return nil, fmt.Errorf("oram: update fn returned %d bytes, block size %d", len(entry.data), o.blockSize)
		}
	case op == OpWrite:
		copy(entry.data, data)
	}
	o.stash[uint32(id)] = entry
	result := resultInto(dst, entry.data, o.blockSize)

	// Write the path back, greedily evicting stash blocks as deep as
	// their assigned leaves allow.
	if err := o.evictPath(path); err != nil {
		return nil, err
	}
	return result, nil
}

// pathBuckets returns bucket indices from root to the given leaf. Buckets
// are heap-ordered: root 0, children of i at 2i+1 and 2i+2. The returned
// slice is the ORAM's scratch, valid until the next call.
func (o *ORAM) pathBuckets(leaf int) []int {
	if cap(o.pathBuf) < o.levels {
		o.pathBuf = make([]int, o.levels)
	}
	path := o.pathBuf[:o.levels]
	idx := o.leaves - 1 + leaf
	for l := o.levels - 1; l >= 0; l-- {
		path[l] = idx
		idx = (idx - 1) / 2
	}
	return path
}

// bucketAtLevel returns the bucket index at the given level on the path to
// leaf (level 0 = root).
func (o *ORAM) bucketAtLevel(leaf, level int) int {
	idx := o.leaves - 1 + leaf
	for l := o.levels - 1; l > level; l-- {
		idx = (idx - 1) / 2
	}
	return idx
}

// readBucketIntoStash decrypts one bucket and moves its real blocks into
// the stash. Slot ids are stored +1 so the all-zero fresh bucket decodes
// as empty. Each slot carries the block's assigned leaf so eviction never
// consults the position map.
func (o *ORAM) readBucketIntoStash(bucket int) error {
	plain, err := o.store.ReadInto(bucket, o.readBuf)
	if err != nil {
		return err
	}
	o.readBuf = plain
	for s := 0; s < Z; s++ {
		off := s * o.slotSize
		idPlus := binary.LittleEndian.Uint32(plain[off : off+4])
		if idPlus == 0 {
			continue
		}
		id := idPlus - 1
		if _, dup := o.stash[id]; dup {
			// The stash copy is authoritative; the bucket copy is stale.
			continue
		}
		leaf := binary.LittleEndian.Uint32(plain[off+4 : off+8])
		blk := o.newBlockBuf()
		copy(blk, plain[off+8:off+8+o.blockSize])
		o.stash[id] = stashEntry{leaf: leaf, data: blk}
	}
	return nil
}

// evictPath rewrites every bucket on the path, placing stash blocks into
// the deepest bucket compatible with their assigned leaf.
func (o *ORAM) evictPath(path []int) error {
	var chosen [Z]uint32
	for level := o.levels - 1; level >= 0; level-- {
		n := 0
		for id, entry := range o.stash {
			if n == Z {
				break
			}
			if o.bucketAtLevel(int(entry.leaf), level) == path[level] {
				chosen[n] = id
				n++
			}
		}
		plain := o.plainBuf
		for i := range plain {
			plain[i] = 0
		}
		for s := 0; s < n; s++ {
			id := chosen[s]
			entry := o.stash[id]
			off := s * o.slotSize
			binary.LittleEndian.PutUint32(plain[off:off+4], id+1)
			binary.LittleEndian.PutUint32(plain[off+4:off+8], entry.leaf)
			copy(plain[off+8:off+8+o.blockSize], entry.data)
			o.free = append(o.free, entry.data)
			delete(o.stash, id)
		}
		if err := o.store.Write(path[level], plain); err != nil {
			return err
		}
	}
	return nil
}

// RawScan reads the bucket array front to back — a fixed, data-independent
// access pattern — and yields every live logical block exactly once,
// including any blocks currently in the stash. This implements the paper's
// observation that "the indexed storage data structure can also be scanned
// linearly as a table" with tree nodes and ORAM slack treated as dummy
// blocks (§3.2), at less than the cost of the full ORAM protocol.
func (o *ORAM) RawScan(fn func(id int, data []byte) error) error {
	seen := make(map[uint32]bool, len(o.stash))
	for id, entry := range o.stash {
		seen[id] = true
		if err := fn(int(id), entry.data); err != nil {
			return err
		}
	}
	for b := 0; b < o.store.Len(); b++ {
		plain, err := o.store.Read(b)
		if err != nil {
			return err
		}
		for s := 0; s < Z; s++ {
			off := s * o.slotSize
			idPlus := binary.LittleEndian.Uint32(plain[off : off+4])
			if idPlus == 0 || seen[idPlus-1] {
				continue
			}
			seen[idPlus-1] = true
			if err := fn(int(idPlus-1), plain[off+8:off+8+o.blockSize]); err != nil {
				return err
			}
		}
	}
	return nil
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
