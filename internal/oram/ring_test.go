package oram

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/trace"
)

func newTestRing(t *testing.T, capacity, blockSize int) (*enclave.Enclave, *Ring) {
	t.Helper()
	e := enclave.MustNew(enclave.Config{})
	r, err := NewRing(e, "ring", capacity, blockSize, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return e, r
}

func TestRingWriteThenRead(t *testing.T) {
	_, r := newTestRing(t, 16, 32)
	want := bytes.Repeat([]byte{0x7C}, 32)
	if _, err := r.Access(OpWrite, 9, want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Access(OpRead, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back wrong data")
	}
	// Unwritten blocks read as zero.
	got, _ = r.Access(OpRead, 3, nil)
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("fresh block not zero")
	}
}

func TestRingBounds(t *testing.T) {
	_, r := newTestRing(t, 8, 16)
	if _, err := r.Access(OpRead, 8, nil); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := r.Access(OpWrite, 0, make([]byte, 15)); err == nil {
		t.Fatal("short write accepted")
	}
}

func TestRingModel(t *testing.T) {
	_, r := newTestRing(t, 64, 24)
	model := make(map[int][]byte)
	rng := rand.New(rand.NewPCG(14, 15))
	for i := 0; i < 4000; i++ {
		id := rng.IntN(64)
		if rng.IntN(2) == 0 {
			data := make([]byte, 24)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			if _, err := r.Access(OpWrite, id, data); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			model[id] = data
		} else {
			got, err := r.Access(OpRead, id, nil)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			want, ok := model[id]
			if !ok {
				want = make([]byte, 24)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d mismatch", i, id)
			}
		}
	}
}

func TestRingUpdate(t *testing.T) {
	_, r := newTestRing(t, 8, 8)
	for i := 0; i < 7; i++ {
		if _, err := r.Update(2, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+3)
			return b
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := r.Access(OpRead, 2, nil)
	if binary.LittleEndian.Uint64(got) != 21 {
		t.Fatalf("update result %d, want 21", binary.LittleEndian.Uint64(got))
	}
}

func TestRingStashBounded(t *testing.T) {
	_, r := newTestRing(t, 256, 16)
	rng := rand.New(rand.NewPCG(3, 4))
	data := make([]byte, 16)
	maxStash := 0
	for i := 0; i < 6000; i++ {
		if _, err := r.Access(OpWrite, rng.IntN(256), data); err != nil {
			t.Fatal(err)
		}
		if s := r.StashSize(); s > maxStash {
			maxStash = s
		}
	}
	// Between scheduled evictions the stash legitimately holds recent
	// accesses plus reshuffle pull-ins; it must not trend upward.
	if maxStash > 150 {
		t.Fatalf("ring stash grew to %d", maxStash)
	}
}

func TestRingRawScan(t *testing.T) {
	_, r := newTestRing(t, 32, 8)
	written := map[int]bool{}
	for _, id := range []int{1, 8, 31} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(id))
		if _, err := r.Access(OpWrite, id, b[:]); err != nil {
			t.Fatal(err)
		}
		written[id] = true
	}
	seen := map[int]int{}
	if err := r.RawScan(func(id int, data []byte) error {
		seen[id]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for id := range written {
		if seen[id] != 1 {
			t.Fatalf("block %d seen %d times", id, seen[id])
		}
	}
}

// TestRingCheaperThanPathORAM is the paper's §8 claim: Ring ORAM moves
// roughly 1.5× less data than Path ORAM per access. We compare untrusted
// block accesses per operation (equal block sizes, equal op streams).
func TestRingCheaperThanPathORAM(t *testing.T) {
	const capacity, blockSize, ops = 256, 64, 2000
	run := func(mk func(e *enclave.Enclave) (Scheme, error)) float64 {
		tr := trace.New()
		tr.EnableCounts()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		s, err := mk(e)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rng := rand.New(rand.NewPCG(8, 8))
		data := make([]byte, blockSize)
		before := tr.TotalCount()
		for i := 0; i < ops; i++ {
			if _, err := s.Access(OpWrite, rng.IntN(capacity), data); err != nil {
				t.Fatal(err)
			}
		}
		return float64(tr.TotalCount()-before) / ops
	}
	path := run(func(e *enclave.Enclave) (Scheme, error) {
		return New(e, "p", capacity, blockSize, Options{})
	})
	// Path ORAM buckets hold Z blocks per untrusted block; normalize to
	// slot-sized accesses for a fair bandwidth comparison.
	pathSlots := path * Z
	ring := run(func(e *enclave.Enclave) (Scheme, error) {
		return NewRing(e, "r", capacity, blockSize, Options{})
	})
	improvement := pathSlots / ring
	if improvement < 1.2 {
		t.Fatalf("ring ORAM bandwidth improvement %.2f×, want ≥1.2× (paper: ~1.5×)", improvement)
	}
	t.Logf("path %.1f slot-accesses/op, ring %.1f → %.2f× improvement", pathSlots, ring, improvement)
}

func TestRingUniformReadPositions(t *testing.T) {
	// Distributional obliviousness: accessing the same block repeatedly
	// must not make any path slot measurably hotter than under random
	// accesses. Cheap sanity check: root-bucket slot reads spread over
	// all slots.
	_, r := newTestRing(t, 64, 8)
	data := make([]byte, 8)
	for i := 0; i < 64; i++ {
		if _, err := r.Access(OpWrite, i%64, data); err != nil {
			t.Fatal(err)
		}
	}
	tr := trace.New()
	e2 := enclave.MustNew(enclave.Config{Tracer: tr})
	r2, err := NewRing(e2, "r2", 64, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for i := 0; i < 400; i++ {
		if _, err := r2.Access(OpRead, 7, nil); err != nil { // same block forever
			t.Fatal(err)
		}
	}
	rootSlot := map[uint32]int{}
	for _, ev := range tr.Events() {
		if ev.Op == trace.Read && int(ev.Index) < RingSlots {
			rootSlot[ev.Index]++
		}
	}
	if len(rootSlot) < RingSlots/2 {
		t.Fatalf("repeated access concentrates on %d root slots: %v", len(rootSlot), rootSlot)
	}
}

func TestRingObliviousMemoryReleased(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	free := e.Available()
	r, err := NewRing(e, "r", 128, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Available() >= free {
		t.Fatal("ring ORAM charged no oblivious memory")
	}
	r.Close()
	if e.Available() != free {
		t.Fatal("Close leaked reservations")
	}
}
