package oram

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"slices"

	"oblidb/internal/enclave"
)

// Ring implements Ring ORAM (Ren et al., USENIX Security'15), the scheme
// §8 names as a drop-in upgrade: "using a newer scheme such as Ring ORAM
// would result in performance improvements corresponding to the
// approximately 1.5× improvement of Ring ORAM over Path ORAM".
//
// Where Path ORAM moves every bucket's full contents on every access,
// Ring ORAM reads exactly one slot per bucket on the accessed path — the
// wanted block where it lives, a fresh dummy elsewhere — and defers bulk
// data movement to (a) one scheduled eviction every EvictRate accesses,
// along deterministic reverse-lexicographic paths, and (b) early
// reshuffles of buckets that exhaust their dummies. Per-slot addressing
// is modeled by giving every slot its own untrusted block, so the
// adversary's view has the scheme's true granularity.
//
// Client metadata (slot assignments, dummy counters) lives in the
// enclave, charged to the oblivious-memory budget; the original scheme
// keeps it in encrypted bucket headers instead, which changes constants
// but not access patterns.
type Ring struct {
	enc       *enclave.Enclave
	store     *enclave.Store
	capacity  int
	blockSize int
	levels    int
	leaves    int
	pos       posMap
	stash     map[uint32]stashEntry
	meta      []bucketMeta
	reserved  int
	accesses  int        // since the last scheduled eviction
	evictG    int        // reverse-lexicographic eviction counter
	rng       *rand.Rand // dedicated leaf-assignment stream (see Options.Seed)

	// Reusable scratch: the access hot path allocates nothing in steady
	// state (pinned by the indexed point-lookup AllocsPerRun test).
	readBuf   []byte         // slot read buffer
	zeroBuf   []byte         // dummy-slot payload
	pathBuf   []int          // root-to-leaf bucket indices
	chosenBuf []uint32       // eviction candidates per level
	permBuf   [RingSlots]int // in-place slot permutation
	slotAtBuf [RingSlots]uint32
	dummyBuf  []byte   // DummyAccess result sink
	free      [][]byte // recycled stash block buffers
}

// Ring ORAM parameters: Z real slots and S dummy slots per bucket, with a
// scheduled eviction every EvictRate accesses. Stash stability needs
// EvictRate ≤ Z — each eviction must be able to place at least one
// inter-eviction window's worth of blocks into the root bucket alone, or
// the stash grows with the table instead of staying O(log N). Z = 8,
// A = 8 is the Ring ORAM paper's stable configuration at this rate; with
// 16 slots per bucket it leaves S = 8 dummies, so early reshuffles stay
// rare and the amortized access count is unchanged from Z = 4.
const (
	RingZ         = 8
	RingS         = 8
	RingSlots     = RingZ + RingS
	RingEvictRate = 8
)

// bucketMeta is the enclave-side state of one bucket.
type bucketMeta struct {
	// ids[s] is blockID+1 of the real block in slot s, or 0.
	ids [RingSlots]uint32
	// leaf[s] is the assigned leaf of the block in slot s.
	leaf [RingSlots]uint32
	// used[s] marks slots consumed (read) since the last rewrite.
	used [RingSlots]bool
}

// NewRing creates a Ring ORAM with the same sizing rules as New.
func NewRing(e *enclave.Enclave, name string, capacity, blockSize int, opts Options) (*Ring, error) {
	if capacity <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("oram: invalid capacity=%d blockSize=%d", capacity, blockSize)
	}
	leaves := nextPow2((capacity + 1) / 2)
	levels := bits.TrailingZeros(uint(leaves)) + 1
	numBuckets := 2*leaves - 1
	store, err := e.NewStore(name, numBuckets*RingSlots, blockSize)
	if err != nil {
		return nil, err
	}
	r := &Ring{
		enc:       e,
		store:     store,
		capacity:  capacity,
		blockSize: blockSize,
		levels:    levels,
		leaves:    leaves,
		stash:     make(map[uint32]stashEntry),
		meta:      make([]bucketMeta, numBuckets),
		rng:       newRng(e, name, opts),
		zeroBuf:   make([]byte, blockSize),
	}
	// Enclave metadata: ~9 bytes per slot, charged like the position map.
	r.reserved = numBuckets * RingSlots * 9
	if err := e.Reserve(r.reserved); err != nil {
		return nil, err
	}
	if opts.Recursive {
		r.pos, err = newRecursiveMap(e, name+".posmap", capacity, leaves, opts.MapBlockSize, r.rng)
	} else {
		r.pos, err = newPlainMap(e, capacity, leaves, r.rng)
	}
	if err != nil {
		e.Release(r.reserved)
		return nil, err
	}
	return r, nil
}

// Close releases oblivious-memory reservations.
func (r *Ring) Close() {
	if r.pos != nil {
		r.pos.release()
		r.pos = nil
	}
	if r.reserved > 0 {
		r.enc.Release(r.reserved)
		r.reserved = 0
	}
}

// Capacity returns the number of logical blocks.
func (r *Ring) Capacity() int { return r.capacity }

// BlockSize returns the logical block payload size.
func (r *Ring) BlockSize() int { return r.blockSize }

// Levels returns the tree depth.
func (r *Ring) Levels() int { return r.levels }

// StashSize returns the current stash occupancy.
func (r *Ring) StashSize() int { return len(r.stash) }

// UntrustedBytes returns the untrusted footprint.
func (r *Ring) UntrustedBytes() int { return r.store.SizeBytes() }

// Store exposes the untrusted slot store for adversary tests.
func (r *Ring) Store() *enclave.Store { return r.store }

// PosMapStore exposes the recursive position map's untrusted store (nil
// when the map is held in enclave memory), for adversary tests.
func (r *Ring) PosMapStore() *enclave.Store { return r.pos.untrustedStore() }

// AccessesPerOp returns the amortized untrusted block accesses per
// logical operation: one slot read per path bucket, plus the scheduled
// eviction's read+rewrite of every slot on one path, amortized over
// EvictRate accesses. This is the public cost the planner prices indexed
// access with.
func (r *Ring) AccessesPerOp() int {
	return r.levels + (2*r.levels*RingSlots+RingEvictRate-1)/RingEvictRate
}

// newBlockBuf returns a zeroed block-sized buffer, recycling buffers of
// evicted stash entries so the steady-state stash churns no allocations.
func (r *Ring) newBlockBuf() []byte {
	if n := len(r.free); n > 0 {
		buf := r.free[n-1]
		r.free = r.free[:n-1]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]byte, r.blockSize)
}

// BulkStage registers a block for a bulk build without touching the
// untrusted store: the block draws its random leaf and waits in the
// stash until BulkCommit places it. Only valid on a fresh ORAM (no
// accesses yet) — staging over live buckets would leave stale copies.
func (r *Ring) BulkStage(id int, data []byte) error {
	if id < 0 || id >= r.capacity {
		return fmt.Errorf("oram: ring block id %d out of range [0,%d)", id, r.capacity)
	}
	if len(data) != r.blockSize {
		return fmt.Errorf("oram: ring bulk write of %d bytes, block size %d", len(data), r.blockSize)
	}
	leaf := uint32(r.rng.IntN(r.leaves))
	if _, err := r.pos.getSet(id, leaf); err != nil {
		return err
	}
	entry, ok := r.stash[uint32(id)]
	if !ok {
		entry = stashEntry{data: r.newBlockBuf()}
	}
	entry.leaf = leaf
	copy(entry.data, data)
	r.stash[uint32(id)] = entry
	return nil
}

// BulkCommit drains the staged stash into the tree bottom-up: each block
// lands in the deepest non-full bucket on its leaf's path, and every
// bucket that receives blocks is written exactly once. Compared to
// replaying the blocks through Access, this leaves the stash empty
// instead of flooded — per-access eviction drains at most Z blocks per
// path, so a bulk load's inflow otherwise outruns it and the residue
// taxes every later eviction. The pattern is public: which buckets are
// written is a function of the PRNG leaf assignment and the staged id
// set, never of block contents.
func (r *Ring) BulkCommit() error {
	type leafID struct{ leaf, id uint32 }
	ents := make([]leafID, 0, len(r.stash))
	for id, e := range r.stash {
		ents = append(ents, leafID{e.leaf, id})
	}
	// Map iteration order is random; sort for a deterministic build.
	slices.SortFunc(ents, func(a, b leafID) int {
		if a.leaf != b.leaf {
			return int(a.leaf) - int(b.leaf)
		}
		return int(a.id) - int(b.id)
	})
	// place fills the bucket at (level, leafLo) from the deepest level up,
	// returning the ids its subtree could not hold.
	var place func(level, leafLo, width int, seg []leafID) ([]uint32, error)
	place = func(level, leafLo, width int, seg []leafID) ([]uint32, error) {
		var pool []uint32
		if level == r.levels-1 {
			for _, e := range seg {
				pool = append(pool, e.id)
			}
		} else {
			half := width / 2
			mid := 0
			for mid < len(seg) && int(seg[mid].leaf) < leafLo+half {
				mid++
			}
			left, err := place(level+1, leafLo, half, seg[:mid])
			if err != nil {
				return nil, err
			}
			right, err := place(level+1, leafLo+half, half, seg[mid:])
			if err != nil {
				return nil, err
			}
			pool = append(left, right...)
			slices.Sort(pool)
		}
		if len(pool) == 0 {
			return nil, nil
		}
		chosen := pool
		if len(chosen) > RingZ {
			chosen = chosen[:RingZ]
		}
		if err := r.writeBucket(r.bucketAtLevel(leafLo, level), chosen); err != nil {
			return nil, err
		}
		return pool[len(chosen):], nil
	}
	// Leftover spill past the root stays in the stash, like any other
	// overflow, and drains through scheduled evictions.
	if _, err := place(0, 0, r.leaves, ents); err != nil {
		return err
	}
	// Staging inflated the stash map's capacity to the staged count, and
	// Go maps never shrink — but evictPath iterates the stash on every
	// scheduled eviction, so rebuild it at its (near-empty) final size.
	// Ditto the recycled-buffer list, which now holds one buffer per
	// placed block.
	fresh := make(map[uint32]stashEntry, len(r.stash)+16)
	for id, e := range r.stash {
		fresh[id] = e
	}
	r.stash = fresh
	if len(r.free) > 2*RingSlots {
		r.free = append([][]byte(nil), r.free[:2*RingSlots]...)
	}
	return nil
}

// Access performs one logical operation: one slot read per path bucket,
// plus the amortized scheduled eviction.
func (r *Ring) Access(op Op, id int, data []byte) ([]byte, error) {
	return r.access(op, id, data, nil, nil)
}

// AccessInto is Access returning the contents in dst's capacity: when dst
// can hold one block nothing is allocated for the result.
func (r *Ring) AccessInto(op Op, id int, data, dst []byte) ([]byte, error) {
	return r.access(op, id, data, nil, dst)
}

// Update reads, transforms, and rewrites a block in one operation.
func (r *Ring) Update(id int, fn func([]byte) []byte) ([]byte, error) {
	return r.access(OpRead, id, nil, fn, nil)
}

// UpdateInto is Update returning the result in dst's capacity.
func (r *Ring) UpdateInto(id int, dst []byte, fn func([]byte) []byte) ([]byte, error) {
	return r.access(OpRead, id, nil, fn, dst)
}

// DummyAccess reads a random block. The result lands in an internal
// scratch buffer so padded operations (obtree/indexed lookups that pad to
// worst-case counts) stay allocation-free.
func (r *Ring) DummyAccess() error {
	var err error
	r.dummyBuf, err = r.AccessInto(OpRead, r.rng.IntN(r.capacity), nil, r.dummyBuf)
	return err
}

func (r *Ring) access(op Op, id int, data []byte, fn func([]byte) []byte, dst []byte) ([]byte, error) {
	if id < 0 || id >= r.capacity {
		return nil, fmt.Errorf("oram: ring block id %d out of range [0,%d)", id, r.capacity)
	}
	if op == OpWrite && len(data) != r.blockSize {
		return nil, fmt.Errorf("oram: ring write of %d bytes, block size %d", len(data), r.blockSize)
	}
	newLeaf := uint32(r.rng.IntN(r.leaves))
	oldLeaf, err := r.pos.getSet(id, newLeaf)
	if err != nil {
		return nil, err
	}

	// Read exactly one slot in every bucket on the path.
	path := r.pathBuckets(int(oldLeaf))
	for _, b := range path {
		if err := r.readOneSlot(b, uint32(id)); err != nil {
			return nil, err
		}
	}

	entry, ok := r.stash[uint32(id)]
	if !ok {
		entry = stashEntry{data: r.newBlockBuf()}
	}
	entry.leaf = newLeaf
	switch {
	case fn != nil:
		entry.data = fn(entry.data)
		if len(entry.data) != r.blockSize {
			return nil, fmt.Errorf("oram: ring update fn returned %d bytes, block size %d", len(entry.data), r.blockSize)
		}
	case op == OpWrite:
		copy(entry.data, data)
	}
	r.stash[uint32(id)] = entry
	result := resultInto(dst, entry.data, r.blockSize)

	// Scheduled eviction along the reverse-lexicographic path order.
	r.accesses++
	if r.accesses >= RingEvictRate {
		r.accesses = 0
		g := r.evictG
		r.evictG = (r.evictG + 1) % r.leaves
		if err := r.evictPath(bits.Reverse32(uint32(g)) >> (32 - (r.levels - 1)) % uint32(r.leaves)); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// readOneSlot reads exactly one slot of the bucket: the slot holding
// block id if present, otherwise a uniformly random unused slot,
// reshuffling the bucket first if every slot is consumed. Any real block
// the read exposes is invalidated into the stash, so no slot is ever read
// twice between rewrites; combined with random slot placement at rewrite
// time, the read position is uniform whatever the data — Ring ORAM's
// one-block-per-bucket guarantee.
func (r *Ring) readOneSlot(bucket int, id uint32) error {
	m := &r.meta[bucket]
	target := -1
	for s := 0; s < RingSlots; s++ {
		if m.ids[s] == id+1 {
			target = s // invariant: real-block slots are never 'used'
			break
		}
	}
	if target < 0 {
		var unused [RingSlots]int
		n := 0
		for s := 0; s < RingSlots; s++ {
			if !m.used[s] {
				unused[n] = s
				n++
			}
		}
		if n > 0 {
			target = unused[r.rng.IntN(n)]
		}
	}
	if target < 0 {
		// Every slot consumed: early reshuffle, then read a fresh slot.
		if err := r.rewriteBucket(bucket); err != nil {
			return err
		}
		target = r.rng.IntN(RingSlots)
	}
	data, err := r.store.ReadInto(bucket*RingSlots+target, r.readBuf)
	if err != nil {
		return err
	}
	r.readBuf = data
	if m.ids[target] != 0 {
		bid := m.ids[target] - 1
		if _, dup := r.stash[bid]; !dup {
			blk := r.newBlockBuf()
			copy(blk, data)
			r.stash[bid] = stashEntry{leaf: m.leaf[target], data: blk}
		}
		m.ids[target] = 0
	}
	m.used[target] = true
	return nil
}

// rewriteBucket is Ring ORAM's early reshuffle: pull the bucket's live
// blocks into the stash and rewrite all its slots fresh.
func (r *Ring) rewriteBucket(bucket int) error {
	if err := r.pullBucketIntoStash(bucket); err != nil {
		return err
	}
	return r.writeBucket(bucket, nil)
}

// writeBucket fills a bucket from the chosen stash ids (may be nil) and
// fresh dummies, writing every slot. Real blocks land in uniformly random
// slots — the (simulated) permutation that makes read positions carry no
// information.
func (r *Ring) writeBucket(bucket int, chosen []uint32) error {
	m := &r.meta[bucket]
	// In-place Fisher–Yates over the slot indices: the allocation-free
	// equivalent of Rand().Perm(RingSlots).
	perm := &r.permBuf
	for i := range perm {
		perm[i] = i
	}
	for i := RingSlots - 1; i > 0; i-- {
		j := r.rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	slotAt := &r.slotAtBuf
	for s := range slotAt {
		slotAt[s] = 0
	}
	for i, id := range chosen {
		slotAt[perm[i]] = id + 1
	}
	for s := 0; s < RingSlots; s++ {
		m.ids[s] = 0
		m.used[s] = false
		payload := r.zeroBuf
		var recycle []byte
		if idPlus := slotAt[s]; idPlus != 0 {
			id := idPlus - 1
			entry := r.stash[id]
			m.ids[s] = idPlus
			m.leaf[s] = entry.leaf
			payload = entry.data
			recycle = entry.data
			delete(r.stash, id)
		}
		if err := r.store.Write(bucket*RingSlots+s, payload); err != nil {
			return err
		}
		if recycle != nil {
			r.free = append(r.free, recycle)
		}
	}
	return nil
}

// evictPath performs the scheduled eviction: read every slot on the
// path's buckets, then rewrite them with stash blocks placed as deep as
// their leaves allow — Path ORAM's eviction at Ring ORAM's schedule.
func (r *Ring) evictPath(leaf uint32) error {
	path := r.pathBuckets(int(leaf))
	for _, b := range path {
		if err := r.pullBucketIntoStash(b); err != nil {
			return err
		}
	}
	chosen := r.chosenBuf[:0]
	for level := r.levels - 1; level >= 0; level-- {
		// Collect every candidate and sort before truncating to RingZ: map
		// iteration order is random, and which blocks land in a bucket
		// steers future read-slot positions — two same-shape instances must
		// evict identically for their physical traces to stay identical.
		chosen = chosen[:0]
		for id, entry := range r.stash {
			if r.bucketAtLevel(int(entry.leaf), level) == path[level] {
				chosen = append(chosen, id)
			}
		}
		slices.Sort(chosen)
		if len(chosen) > RingZ {
			chosen = chosen[:RingZ]
		}
		if err := r.writeBucket(path[level], chosen); err != nil {
			return err
		}
	}
	r.chosenBuf = chosen[:0]
	return nil
}

// pullBucketIntoStash reads a bucket's live blocks into the stash
// without rewriting it (the caller's write pass follows).
func (r *Ring) pullBucketIntoStash(bucket int) error {
	m := &r.meta[bucket]
	for s := 0; s < RingSlots; s++ {
		data, err := r.store.ReadInto(bucket*RingSlots+s, r.readBuf)
		if err != nil {
			return err
		}
		r.readBuf = data
		if m.ids[s] == 0 {
			continue
		}
		id := m.ids[s] - 1
		if _, dup := r.stash[id]; !dup {
			blk := r.newBlockBuf()
			copy(blk, data)
			r.stash[id] = stashEntry{leaf: m.leaf[s], data: blk}
		}
		m.ids[s] = 0
	}
	return nil
}

// RawScan streams all live blocks: stash first, then every slot linearly.
func (r *Ring) RawScan(fn func(id int, data []byte) error) error {
	seen := make(map[uint32]bool, len(r.stash))
	for id, entry := range r.stash {
		seen[id] = true
		if err := fn(int(id), entry.data); err != nil {
			return err
		}
	}
	for b := range r.meta {
		m := &r.meta[b]
		for s := 0; s < RingSlots; s++ {
			data, err := r.store.Read(b*RingSlots + s)
			if err != nil {
				return err
			}
			if m.ids[s] == 0 || seen[m.ids[s]-1] {
				continue
			}
			seen[m.ids[s]-1] = true
			if err := fn(int(m.ids[s]-1), data); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Ring) pathBuckets(leaf int) []int {
	if cap(r.pathBuf) < r.levels {
		r.pathBuf = make([]int, r.levels)
	}
	path := r.pathBuf[:r.levels]
	idx := r.leaves - 1 + leaf
	for l := r.levels - 1; l >= 0; l-- {
		path[l] = idx
		idx = (idx - 1) / 2
	}
	return path
}

func (r *Ring) bucketAtLevel(leaf, level int) int {
	idx := r.leaves - 1 + leaf
	for l := r.levels - 1; l > level; l-- {
		idx = (idx - 1) / 2
	}
	return idx
}
