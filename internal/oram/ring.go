package oram

import (
	"fmt"
	"math/bits"

	"oblidb/internal/enclave"
)

// Ring implements Ring ORAM (Ren et al., USENIX Security'15), the scheme
// §8 names as a drop-in upgrade: "using a newer scheme such as Ring ORAM
// would result in performance improvements corresponding to the
// approximately 1.5× improvement of Ring ORAM over Path ORAM".
//
// Where Path ORAM moves every bucket's full contents on every access,
// Ring ORAM reads exactly one slot per bucket on the accessed path — the
// wanted block where it lives, a fresh dummy elsewhere — and defers bulk
// data movement to (a) one scheduled eviction every EvictRate accesses,
// along deterministic reverse-lexicographic paths, and (b) early
// reshuffles of buckets that exhaust their dummies. Per-slot addressing
// is modeled by giving every slot its own untrusted block, so the
// adversary's view has the scheme's true granularity.
//
// Client metadata (slot assignments, dummy counters) lives in the
// enclave, charged to the oblivious-memory budget; the original scheme
// keeps it in encrypted bucket headers instead, which changes constants
// but not access patterns.
type Ring struct {
	enc       *enclave.Enclave
	store     *enclave.Store
	capacity  int
	blockSize int
	levels    int
	leaves    int
	pos       posMap
	stash     map[uint32]stashEntry
	meta      []bucketMeta
	reserved  int
	accesses  int // since the last scheduled eviction
	evictG    int // reverse-lexicographic eviction counter
}

// Ring ORAM parameters: Z real slots and S dummy slots per bucket, with a
// scheduled eviction every EvictRate accesses. S ≈ EvictRate keeps early
// reshuffles rare; these values give the ~1.5× bandwidth advantage the
// paper quotes.
const (
	RingZ         = 4
	RingS         = 12
	RingSlots     = RingZ + RingS
	RingEvictRate = 8
)

// bucketMeta is the enclave-side state of one bucket.
type bucketMeta struct {
	// ids[s] is blockID+1 of the real block in slot s, or 0.
	ids [RingSlots]uint32
	// leaf[s] is the assigned leaf of the block in slot s.
	leaf [RingSlots]uint32
	// used[s] marks slots consumed (read) since the last rewrite.
	used [RingSlots]bool
}

// NewRing creates a Ring ORAM with the same sizing rules as New.
func NewRing(e *enclave.Enclave, name string, capacity, blockSize int, opts Options) (*Ring, error) {
	if capacity <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("oram: invalid capacity=%d blockSize=%d", capacity, blockSize)
	}
	leaves := nextPow2((capacity + 1) / 2)
	levels := bits.TrailingZeros(uint(leaves)) + 1
	numBuckets := 2*leaves - 1
	store, err := e.NewStore(name, numBuckets*RingSlots, blockSize)
	if err != nil {
		return nil, err
	}
	r := &Ring{
		enc:       e,
		store:     store,
		capacity:  capacity,
		blockSize: blockSize,
		levels:    levels,
		leaves:    leaves,
		stash:     make(map[uint32]stashEntry),
		meta:      make([]bucketMeta, numBuckets),
	}
	// Enclave metadata: ~9 bytes per slot, charged like the position map.
	r.reserved = numBuckets * RingSlots * 9
	if err := e.Reserve(r.reserved); err != nil {
		return nil, err
	}
	if opts.Recursive {
		r.pos, err = newRecursiveMap(e, name+".posmap", capacity, leaves, opts.MapBlockSize)
	} else {
		r.pos, err = newPlainMap(e, capacity, leaves)
	}
	if err != nil {
		e.Release(r.reserved)
		return nil, err
	}
	return r, nil
}

// Close releases oblivious-memory reservations.
func (r *Ring) Close() {
	if r.pos != nil {
		r.pos.release()
		r.pos = nil
	}
	if r.reserved > 0 {
		r.enc.Release(r.reserved)
		r.reserved = 0
	}
}

// Capacity returns the number of logical blocks.
func (r *Ring) Capacity() int { return r.capacity }

// BlockSize returns the logical block payload size.
func (r *Ring) BlockSize() int { return r.blockSize }

// Levels returns the tree depth.
func (r *Ring) Levels() int { return r.levels }

// StashSize returns the current stash occupancy.
func (r *Ring) StashSize() int { return len(r.stash) }

// UntrustedBytes returns the untrusted footprint.
func (r *Ring) UntrustedBytes() int { return r.store.SizeBytes() }

// Access performs one logical operation: one slot read per path bucket,
// plus the amortized scheduled eviction.
func (r *Ring) Access(op Op, id int, data []byte) ([]byte, error) {
	return r.access(op, id, data, nil)
}

// Update reads, transforms, and rewrites a block in one operation.
func (r *Ring) Update(id int, fn func([]byte) []byte) ([]byte, error) {
	return r.access(OpRead, id, nil, fn)
}

// DummyAccess reads a random block.
func (r *Ring) DummyAccess() error {
	_, err := r.Access(OpRead, r.enc.Rand().IntN(r.capacity), nil)
	return err
}

func (r *Ring) access(op Op, id int, data []byte, fn func([]byte) []byte) ([]byte, error) {
	if id < 0 || id >= r.capacity {
		return nil, fmt.Errorf("oram: ring block id %d out of range [0,%d)", id, r.capacity)
	}
	if op == OpWrite && len(data) != r.blockSize {
		return nil, fmt.Errorf("oram: ring write of %d bytes, block size %d", len(data), r.blockSize)
	}
	newLeaf := uint32(r.enc.Rand().IntN(r.leaves))
	oldLeaf, err := r.pos.getSet(id, newLeaf)
	if err != nil {
		return nil, err
	}

	// Read exactly one slot in every bucket on the path.
	path := r.pathBuckets(int(oldLeaf))
	for _, b := range path {
		if err := r.readOneSlot(b, uint32(id)); err != nil {
			return nil, err
		}
	}

	entry, ok := r.stash[uint32(id)]
	if !ok {
		entry = stashEntry{data: make([]byte, r.blockSize)}
	}
	entry.leaf = newLeaf
	switch {
	case fn != nil:
		entry.data = fn(entry.data)
		if len(entry.data) != r.blockSize {
			return nil, fmt.Errorf("oram: ring update fn returned %d bytes, block size %d", len(entry.data), r.blockSize)
		}
	case op == OpWrite:
		cp := make([]byte, r.blockSize)
		copy(cp, data)
		entry.data = cp
	}
	r.stash[uint32(id)] = entry
	result := make([]byte, r.blockSize)
	copy(result, entry.data)

	// Scheduled eviction along the reverse-lexicographic path order.
	r.accesses++
	if r.accesses >= RingEvictRate {
		r.accesses = 0
		g := r.evictG
		r.evictG = (r.evictG + 1) % r.leaves
		if err := r.evictPath(bits.Reverse32(uint32(g)) >> (32 - (r.levels - 1)) % uint32(r.leaves)); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// readOneSlot reads exactly one slot of the bucket: the slot holding
// block id if present, otherwise a uniformly random unused slot,
// reshuffling the bucket first if every slot is consumed. Any real block
// the read exposes is invalidated into the stash, so no slot is ever read
// twice between rewrites; combined with random slot placement at rewrite
// time, the read position is uniform whatever the data — Ring ORAM's
// one-block-per-bucket guarantee.
func (r *Ring) readOneSlot(bucket int, id uint32) error {
	m := &r.meta[bucket]
	target := -1
	for s := 0; s < RingSlots; s++ {
		if m.ids[s] == id+1 {
			target = s // invariant: real-block slots are never 'used'
			break
		}
	}
	if target < 0 {
		var unused []int
		for s := 0; s < RingSlots; s++ {
			if !m.used[s] {
				unused = append(unused, s)
			}
		}
		if len(unused) > 0 {
			target = unused[r.enc.Rand().IntN(len(unused))]
		}
	}
	if target < 0 {
		// Every slot consumed: early reshuffle, then read a fresh slot.
		if err := r.rewriteBucket(bucket); err != nil {
			return err
		}
		target = r.enc.Rand().IntN(RingSlots)
	}
	data, err := r.store.Read(bucket*RingSlots + target)
	if err != nil {
		return err
	}
	if m.ids[target] != 0 {
		bid := m.ids[target] - 1
		if _, dup := r.stash[bid]; !dup {
			blk := make([]byte, r.blockSize)
			copy(blk, data)
			r.stash[bid] = stashEntry{leaf: m.leaf[target], data: blk}
		}
		m.ids[target] = 0
	}
	m.used[target] = true
	return nil
}

// rewriteBucket is Ring ORAM's early reshuffle: pull the bucket's live
// blocks into the stash and rewrite all its slots fresh.
func (r *Ring) rewriteBucket(bucket int) error {
	m := &r.meta[bucket]
	for s := 0; s < RingSlots; s++ {
		data, err := r.store.Read(bucket*RingSlots + s)
		if err != nil {
			return err
		}
		if m.ids[s] != 0 {
			id := m.ids[s] - 1
			if _, dup := r.stash[id]; !dup {
				blk := make([]byte, r.blockSize)
				copy(blk, data)
				r.stash[id] = stashEntry{leaf: m.leaf[s], data: blk}
			}
			m.ids[s] = 0
		}
	}
	return r.writeBucket(bucket, nil)
}

// writeBucket fills a bucket from the chosen stash ids (may be nil) and
// fresh dummies, writing every slot. Real blocks land in uniformly random
// slots — the (simulated) permutation that makes read positions carry no
// information.
func (r *Ring) writeBucket(bucket int, chosen []uint32) error {
	m := &r.meta[bucket]
	zero := make([]byte, r.blockSize)
	perm := r.enc.Rand().Perm(RingSlots)
	slotOf := make(map[int]uint32, len(chosen))
	for i, id := range chosen {
		slotOf[perm[i]] = id
	}
	for s := 0; s < RingSlots; s++ {
		m.ids[s] = 0
		m.used[s] = false
		payload := zero
		if id, ok := slotOf[s]; ok {
			entry := r.stash[id]
			m.ids[s] = id + 1
			m.leaf[s] = entry.leaf
			payload = entry.data
			delete(r.stash, id)
		}
		if err := r.store.Write(bucket*RingSlots+s, payload); err != nil {
			return err
		}
	}
	return nil
}

// evictPath performs the scheduled eviction: read every slot on the
// path's buckets, then rewrite them with stash blocks placed as deep as
// their leaves allow — Path ORAM's eviction at Ring ORAM's schedule.
func (r *Ring) evictPath(leaf uint32) error {
	path := r.pathBuckets(int(leaf))
	for _, b := range path {
		if err := r.rewriteBucketIntoStash(b); err != nil {
			return err
		}
	}
	var chosen []uint32
	for level := r.levels - 1; level >= 0; level-- {
		chosen = chosen[:0]
		for id, entry := range r.stash {
			if len(chosen) == RingZ {
				break
			}
			if r.bucketAtLevel(int(entry.leaf), level) == path[level] {
				chosen = append(chosen, id)
			}
		}
		if err := r.writeBucket(path[level], chosen); err != nil {
			return err
		}
	}
	return nil
}

// rewriteBucketIntoStash reads a bucket's live blocks into the stash
// without rewriting it (the eviction's write pass follows).
func (r *Ring) rewriteBucketIntoStash(bucket int) error {
	m := &r.meta[bucket]
	for s := 0; s < RingSlots; s++ {
		data, err := r.store.Read(bucket*RingSlots + s)
		if err != nil {
			return err
		}
		if m.ids[s] == 0 {
			continue
		}
		id := m.ids[s] - 1
		if _, dup := r.stash[id]; !dup {
			blk := make([]byte, r.blockSize)
			copy(blk, data)
			r.stash[id] = stashEntry{leaf: m.leaf[s], data: blk}
		}
		m.ids[s] = 0
	}
	return nil
}

// RawScan streams all live blocks: stash first, then every slot linearly.
func (r *Ring) RawScan(fn func(id int, data []byte) error) error {
	seen := make(map[uint32]bool, len(r.stash))
	for id, entry := range r.stash {
		seen[id] = true
		if err := fn(int(id), entry.data); err != nil {
			return err
		}
	}
	for b := range r.meta {
		m := &r.meta[b]
		for s := 0; s < RingSlots; s++ {
			data, err := r.store.Read(b*RingSlots + s)
			if err != nil {
				return err
			}
			if m.ids[s] == 0 || seen[m.ids[s]-1] {
				continue
			}
			seen[m.ids[s]-1] = true
			if err := fn(int(m.ids[s]-1), data); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Ring) pathBuckets(leaf int) []int {
	path := make([]int, r.levels)
	idx := r.leaves - 1 + leaf
	for l := r.levels - 1; l >= 0; l-- {
		path[l] = idx
		idx = (idx - 1) / 2
	}
	return path
}

func (r *Ring) bucketAtLevel(leaf, level int) int {
	idx := r.leaves - 1 + leaf
	for l := r.levels - 1; l > level; l-- {
		idx = (idx - 1) / 2
	}
	return idx
}
