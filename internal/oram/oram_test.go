package oram

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"oblidb/internal/enclave"
	"oblidb/internal/trace"
)

func newTestORAM(t *testing.T, capacity, blockSize int, opts Options) (*enclave.Enclave, *ORAM) {
	t.Helper()
	e := enclave.MustNew(enclave.Config{})
	o, err := New(e, "test", capacity, blockSize, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return e, o
}

func TestReadNeverWrittenIsZero(t *testing.T) {
	_, o := newTestORAM(t, 16, 32, Options{})
	got, err := o.Access(OpRead, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestWriteThenRead(t *testing.T) {
	_, o := newTestORAM(t, 16, 32, Options{})
	want := bytes.Repeat([]byte{0x5A}, 32)
	if _, err := o.Access(OpWrite, 7, want); err != nil {
		t.Fatal(err)
	}
	got, err := o.Access(OpRead, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back wrong data")
	}
}

func TestBounds(t *testing.T) {
	_, o := newTestORAM(t, 4, 8, Options{})
	if _, err := o.Access(OpRead, 4, nil); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := o.Access(OpRead, -1, nil); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := o.Access(OpWrite, 0, make([]byte, 7)); err == nil {
		t.Fatal("short block accepted")
	}
}

func TestUpdate(t *testing.T) {
	_, o := newTestORAM(t, 8, 8, Options{})
	for i := 0; i < 5; i++ {
		if _, err := o.Update(3, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
			return b
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := o.Access(OpRead, 3, nil)
	if binary.LittleEndian.Uint64(got) != 5 {
		t.Fatalf("update applied %d times, want 5", binary.LittleEndian.Uint64(got))
	}
}

// modelCheck runs a random op sequence against a map model.
func modelCheck(t *testing.T, o *ORAM, capacity, blockSize, ops int, seed uint64) {
	t.Helper()
	model := make(map[int][]byte)
	rng := rand.New(rand.NewPCG(seed, seed))
	for i := 0; i < ops; i++ {
		id := rng.IntN(capacity)
		if rng.IntN(2) == 0 {
			data := make([]byte, blockSize)
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			if _, err := o.Access(OpWrite, id, data); err != nil {
				t.Fatal(err)
			}
			model[id] = data
		} else {
			got, err := o.Access(OpRead, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := model[id]
			if !ok {
				want = make([]byte, blockSize)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d mismatch", i, id)
			}
		}
	}
}

func TestModelNonRecursive(t *testing.T) {
	_, o := newTestORAM(t, 64, 24, Options{})
	modelCheck(t, o, 64, 24, 2000, 1)
}

func TestModelRecursive(t *testing.T) {
	_, o := newTestORAM(t, 64, 24, Options{Recursive: true, MapBlockSize: 16})
	modelCheck(t, o, 64, 24, 2000, 2)
}

func TestModelCapacityOne(t *testing.T) {
	_, o := newTestORAM(t, 1, 8, Options{})
	modelCheck(t, o, 1, 8, 100, 3)
}

func TestStashStaysBounded(t *testing.T) {
	_, o := newTestORAM(t, 256, 16, Options{})
	rng := rand.New(rand.NewPCG(9, 9))
	data := make([]byte, 16)
	maxStash := 0
	for i := 0; i < 5000; i++ {
		if _, err := o.Access(OpWrite, rng.IntN(256), data); err != nil {
			t.Fatal(err)
		}
		if s := o.StashSize(); s > maxStash {
			maxStash = s
		}
	}
	// Z=4 keeps the stash tiny; 60 is a generous ceiling that would only
	// trip on a real eviction bug.
	if maxStash > 60 {
		t.Fatalf("stash grew to %d blocks", maxStash)
	}
}

func TestAccessCountFixedPerOp(t *testing.T) {
	// ORAM's guarantee: equal-length op sequences are indistinguishable.
	// Every access must touch exactly 2*levels untrusted blocks whatever
	// the op, the id, or the data.
	tr := trace.New()
	tr.EnableCounts()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	o, err := New(e, "t", 32, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	data := make([]byte, 16)
	before := tr.TotalCount()
	ops := []func() error{
		func() error { _, err := o.Access(OpWrite, 0, data); return err },
		func() error { _, err := o.Access(OpRead, 31, nil); return err },
		func() error { _, err := o.Update(7, func(b []byte) []byte { return b }); return err },
		func() error { return o.DummyAccess() },
	}
	for i, op := range ops {
		if err := op(); err != nil {
			t.Fatal(err)
		}
		after := tr.TotalCount()
		if int(after-before) != o.AccessesPerOp() {
			t.Fatalf("op %d made %d accesses, want %d", i, after-before, o.AccessesPerOp())
		}
		before = after
	}
}

func TestPathShape(t *testing.T) {
	// Every access reads then writes one root-to-leaf path: levels reads
	// followed by levels writes of the same buckets in reverse order.
	tr := trace.New()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	o, err := New(e, "t", 32, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	tr.Reset()
	if _, err := o.Access(OpRead, 3, nil); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 2*o.Levels() {
		t.Fatalf("%d events, want %d", len(evs), 2*o.Levels())
	}
	for i := 0; i < o.Levels(); i++ {
		if evs[i].Op != trace.Read {
			t.Fatalf("event %d is %v, want read", i, evs[i].Op)
		}
		w := evs[2*o.Levels()-1-i]
		if w.Op != trace.Write || w.Index != evs[i].Index {
			t.Fatalf("write-back does not mirror read path at level %d", i)
		}
	}
	// Root must always be bucket 0.
	if evs[0].Index != 0 {
		t.Fatalf("path does not start at root: %d", evs[0].Index)
	}
}

func TestRecursiveCostsOneChildAccess(t *testing.T) {
	tr := trace.New()
	tr.EnableCounts()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	o, err := New(e, "t", 64, 16, Options{Recursive: true, MapBlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	child := o.pos.(*recursiveMap).child
	want := o.AccessesPerOp() + child.AccessesPerOp()
	before := tr.TotalCount()
	if _, err := o.Access(OpRead, 5, nil); err != nil {
		t.Fatal(err)
	}
	if got := int(tr.TotalCount() - before); got != want {
		t.Fatalf("recursive access made %d untrusted accesses, want %d", got, want)
	}
}

func TestObliviousMemoryCharged(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	free := e.Available()
	o, err := New(e, "t", 1000, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := free - e.Available(); got != 1000*PosBytesPerBlock {
		t.Fatalf("charged %d bytes, want %d", got, 1000*PosBytesPerBlock)
	}
	o.Close()
	if e.Available() != free {
		t.Fatal("Close did not release the position map reservation")
	}
}

func TestRecursiveUsesLessObliviousMemory(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	free := e.Available()
	o, err := New(e, "t", 10000, 16, Options{Recursive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	charged := free - e.Available()
	if charged >= 10000*PosBytesPerBlock/10 {
		t.Fatalf("recursive map charged %d bytes, want ≪ %d", charged, 10000*PosBytesPerBlock)
	}
}

func TestUntrustedOverheadRoughly4x(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	const capacity, blockSize = 1024, 64
	o, err := New(e, "t", capacity, blockSize, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	raw := capacity * blockSize
	ratio := float64(o.UntrustedBytes()) / float64(raw)
	if ratio < 2.5 || ratio > 8 {
		t.Fatalf("untrusted overhead %.1f×, want ~4× (§3.3)", ratio)
	}
}

func TestInvalidConfigs(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	if _, err := New(e, "t", 0, 8, Options{}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(e, "t", 8, 0, Options{}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := New(e, "t", 8, 8, Options{Recursive: true, MapBlockSize: 6}); err == nil {
		t.Fatal("unaligned map block size accepted")
	}
}

func TestUpdateBadLength(t *testing.T) {
	_, o := newTestORAM(t, 4, 8, Options{})
	if _, err := o.Update(0, func(b []byte) []byte { return b[:4] }); err == nil {
		t.Fatal("update fn shrinking the block accepted")
	}
}

func TestRawScanFindsEveryBlockOnce(t *testing.T) {
	_, o := newTestORAM(t, 32, 8, Options{})
	written := map[int]byte{}
	for _, id := range []int{0, 3, 7, 15, 31} {
		data := bytes.Repeat([]byte{byte(id + 1)}, 8)
		if _, err := o.Access(OpWrite, id, data); err != nil {
			t.Fatal(err)
		}
		written[id] = byte(id + 1)
	}
	seen := map[int]int{}
	if err := o.RawScan(func(id int, data []byte) error {
		seen[id]++
		if want, ok := written[id]; ok && data[0] != want {
			t.Fatalf("block %d has wrong content", id)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for id := range written {
		if seen[id] != 1 {
			t.Fatalf("block %d seen %d times in raw scan", id, seen[id])
		}
	}
}

func TestRawScanTraceLinear(t *testing.T) {
	tr := trace.New()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	o, err := New(e, "t", 16, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Access(OpWrite, 5, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	tr.Reset()
	if err := o.RawScan(func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Events() {
		if e.Op != trace.Read || int(e.Index) != i {
			t.Fatalf("raw scan access %d is %+v; want sequential reads", i, e)
		}
	}
}

func TestAccessorGetters(t *testing.T) {
	_, o := newTestORAM(t, 100, 24, Options{})
	if o.Capacity() != 100 || o.BlockSize() != 24 {
		t.Fatalf("getters: %d/%d", o.Capacity(), o.BlockSize())
	}
	if o.Levels() < 1 || o.AccessesPerOp() != 2*o.Levels() {
		t.Fatalf("levels=%d accesses=%d", o.Levels(), o.AccessesPerOp())
	}
}

func TestReadYourWritesProperty(t *testing.T) {
	_, o := newTestORAM(t, 32, 8, Options{})
	f := func(id uint8, v uint64) bool {
		i := int(id) % 32
		var data [8]byte
		binary.LittleEndian.PutUint64(data[:], v)
		if _, err := o.Access(OpWrite, i, data[:]); err != nil {
			return false
		}
		got, err := o.Access(OpRead, i, nil)
		return err == nil && bytes.Equal(got, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
