// Package bdb generates the synthetic datasets of the paper's evaluation:
// the Big Data Benchmark's RANKINGS (360,000 rows) and USERVISITS
// (350,000 rows) tables of Figure 6, and the CFPB consumer-complaints
// table (107,000 rows) used for the padding-mode measurement (§7.2).
//
// The original AMPLab files are not distributable here, so the generators
// reproduce the properties the queries actually exercise: Q1's
// `pageRank > 1000` selects ~1% of RANKINGS; Q2 groups USERVISITS by an
// 8-character sourceIP prefix into a bounded group set; Q3's date filter
// keeps a small fraction of visits, and destURL is a foreign key into
// RANKINGS.pageURL.
package bdb

import (
	"fmt"
	"math/rand/v2"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// Paper-scale row counts (Figure 6).
const (
	PaperRankings   = 360000
	PaperUserVisits = 350000
	PaperCFPB       = 107000
)

// Gen configures dataset generation. Zero counts mean paper scale.
type Gen struct {
	Rankings   int
	UserVisits int
	Seed       uint64
}

// Scaled returns a Gen at the given fraction of paper scale.
func Scaled(fraction float64, seed uint64) Gen {
	return Gen{
		Rankings:   int(float64(PaperRankings) * fraction),
		UserVisits: int(float64(PaperUserVisits) * fraction),
		Seed:       seed,
	}
}

func (g Gen) rankings() int {
	if g.Rankings <= 0 {
		return PaperRankings
	}
	return g.Rankings
}

func (g Gen) userVisits() int {
	if g.UserVisits <= 0 {
		return PaperUserVisits
	}
	return g.UserVisits
}

// RankingsSchema is (pageURL, pageRank, avgDuration).
func RankingsSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "pageURL", Kind: table.KindString, Width: 24},
		table.Column{Name: "pageRank", Kind: table.KindInt},
		table.Column{Name: "avgDuration", Kind: table.KindInt},
	)
}

// UserVisitsSchema is (sourceIP, destURL, visitDate, adRevenue).
func UserVisitsSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "sourceIP", Kind: table.KindString, Width: 15},
		table.Column{Name: "destURL", Kind: table.KindString, Width: 24},
		table.Column{Name: "visitDate", Kind: table.KindString, Width: 10},
		table.Column{Name: "adRevenue", Kind: table.KindFloat},
	)
}

// Q1Param is the pageRank threshold the paper uses for Query 1.
const Q1Param = 1000

// Q2Param is the SUBSTR prefix length for Query 2.
const Q2Param = 8

// Q3DateLo and Q3DateHi bound Query 3's visitDate filter (param
// 1980-04-01, as in the paper).
const (
	Q3DateLo = "1980-01-01"
	Q3DateHi = "1980-04-01"
)

// GenRankings produces the RANKINGS rows. pageRank exceeds Q1Param for
// ~1.2% of rows, reproducing Q1's low selectivity.
func (g Gen) GenRankings() []table.Row {
	n := g.rankings()
	rng := rand.New(rand.NewPCG(g.Seed, 0xA11CE))
	rows := make([]table.Row, n)
	for i := 0; i < n; i++ {
		rank := 1 + rng.Int64N(Q1Param)
		if rng.Float64() < 0.012 {
			rank = Q1Param + 1 + rng.Int64N(9*Q1Param)
		}
		rows[i] = table.Row{
			table.Str(pageURL(i)),
			table.Int(rank),
			table.Int(1 + rng.Int64N(300)),
		}
	}
	return rows
}

// GenUserVisits produces the USERVISITS rows. destURL references
// RANKINGS.pageURL; visitDate spans 1970–2010 uniformly so the Q3 filter
// keeps ~0.6%; sourceIPs come from a pool giving ~1000 distinct
// 8-character prefixes at paper scale.
func (g Gen) GenUserVisits() []table.Row {
	n := g.userVisits()
	nr := g.rankings()
	rng := rand.New(rand.NewPCG(g.Seed, 0xB0B))
	prefixes := 1000
	if n < 100000 {
		prefixes = max(20, n/100)
	}
	rows := make([]table.Row, n)
	for i := 0; i < n; i++ {
		p := rng.IntN(prefixes)
		ip := fmt.Sprintf("%3d.%3d.%d.%d", 100+p/256, p%256, rng.IntN(256), rng.IntN(256))
		rows[i] = table.Row{
			table.Str(ip),
			table.Str(pageURL(rng.IntN(nr))),
			table.Str(randomDate(rng)),
			table.Float(float64(rng.IntN(100000)) / 100),
		}
	}
	return rows
}

func pageURL(i int) string { return fmt.Sprintf("http://url%09d.com", i) }

func randomDate(rng *rand.Rand) string {
	year := 1970 + rng.IntN(41)
	month := 1 + rng.IntN(12)
	day := 1 + rng.IntN(28)
	return fmt.Sprintf("%04d-%02d-%02d", year, month, day)
}

// LoadOptions configures table loading.
type LoadOptions struct {
	// RankingsKind selects the storage for RANKINGS (Q1 benefits from an
	// index on pageRank).
	RankingsKind core.StorageKind
	// UserVisitsKind selects the storage for USERVISITS.
	UserVisitsKind core.StorageKind
}

// Load creates and bulk-loads the two BDB tables into a database.
func Load(db *core.DB, g Gen, opts LoadOptions) error {
	rankRows := g.GenRankings()
	visitRows := g.GenUserVisits()
	keyCol := ""
	if opts.RankingsKind != core.KindFlat {
		keyCol = "pageRank"
	}
	if _, err := db.CreateTable("rankings", RankingsSchema(), core.TableOptions{
		Kind: opts.RankingsKind, KeyColumn: keyCol, Capacity: len(rankRows) + 8,
	}); err != nil {
		return err
	}
	if err := db.BulkLoad("rankings", rankRows); err != nil {
		return err
	}
	if _, err := db.CreateTable("uservisits", UserVisitsSchema(), core.TableOptions{
		Kind: core.KindFlat, Capacity: len(visitRows) + 8,
	}); err != nil {
		return err
	}
	return db.BulkLoad("uservisits", visitRows)
}

// CFPBSchema is the consumer-complaints table: (id, product, state,
// submitted, timely).
func CFPBSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "product", Kind: table.KindString, Width: 20},
		table.Column{Name: "state", Kind: table.KindString, Width: 2},
		table.Column{Name: "submitted", Kind: table.KindString, Width: 10},
		table.Column{Name: "timely", Kind: table.KindBool},
	)
}

var cfpbProducts = []string{
	"Mortgage", "Debt collection", "Credit reporting", "Credit card",
	"Bank account", "Student loan", "Consumer loan", "Payday loan",
	"Money transfers", "Prepaid card",
}

var cfpbStates = []string{
	"CA", "TX", "NY", "FL", "IL", "PA", "OH", "GA", "NC", "MI",
	"NJ", "VA", "WA", "AZ", "MA", "TN", "IN", "MO", "MD", "WI",
}

// GenCFPB produces n synthetic complaint rows (n <= 0 means the paper's
// 107,000).
func GenCFPB(n int, seed uint64) []table.Row {
	if n <= 0 {
		n = PaperCFPB
	}
	rng := rand.New(rand.NewPCG(seed, 0xCF9B))
	rows := make([]table.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = table.Row{
			table.Int(int64(i)),
			table.Str(cfpbProducts[rng.IntN(len(cfpbProducts))]),
			table.Str(cfpbStates[rng.IntN(len(cfpbStates))]),
			table.Str(randomDate(rng)),
			table.Bool(rng.IntN(100) < 97),
		}
	}
	return rows
}
