package bdb

import (
	"math"

	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// The three Big Data Benchmark queries as the paper runs them (§7.1),
// lowered onto the engine's oblivious operators.
//
//	Q1: SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000
//	Q2: SELECT SUBSTR(sourceIP, 1, 8), SUM(adRevenue) FROM uservisits
//	    GROUP BY SUBSTR(sourceIP, 1, 8)
//	Q3: SELECT sourceIP, SUM(adRevenue), AVG(pageRank)
//	    FROM rankings JOIN uservisits ON pageURL = destURL
//	    WHERE visitDate BETWEEN '1980-01-01' AND '1980-04-01'
//	    GROUP BY sourceIP

// Q1Pred matches rankings rows with pageRank > Q1Param.
func Q1Pred(r table.Row) bool { return r[1].AsInt() > Q1Param }

// Q1 runs query 1. With useIndex (and an index on pageRank) the scan
// covers only the matching key range — the source of the paper's 19×
// speedup over whole-table systems.
func Q1(db *core.DB, useIndex bool) (*core.Result, error) {
	opts := core.SelectOptions{Projection: []string{"pageURL", "pageRank"}}
	if useIndex {
		opts.KeyRange = &core.KeyRange{Lo: Q1Param + 1, Hi: math.MaxInt64}
	}
	return db.Select("rankings", Q1Pred, opts)
}

// Q2GroupKey is the 8-character sourceIP prefix.
func Q2GroupKey(r table.Row) table.Value {
	ip := r[0].AsString()
	if len(ip) > Q2Param {
		ip = ip[:Q2Param]
	}
	return table.Str(ip)
}

// Q2 runs query 2: grouped aggregation over USERVISITS.
func Q2(db *core.DB) (*core.Result, error) {
	return db.GroupAggregate("uservisits", nil, Q2GroupKey,
		[]core.AggregateSpec{{Kind: exec.AggSum, Column: "adRevenue"}}, nil)
}

// Q3DatePred matches visits in the query's date window.
func Q3DatePred(r table.Row) bool {
	d := r[2].AsString()
	return d >= Q3DateLo && d <= Q3DateHi
}

// Q3 runs query 3: oblivious filter on USERVISITS, foreign-key join with
// RANKINGS, then grouped aggregation by sourceIP.
func Q3(db *core.DB) (*core.Result, error) {
	joined, err := db.JoinTable("rankings", "uservisits", "pageURL", "destURL",
		core.JoinOptions{FilterRight: Q3DatePred})
	if err != nil {
		return nil, err
	}
	return db.Collect(mustGroup(db, joined))
}

// Q3Into is Q3 returning the intermediate table (benchmarks avoid the
// final client materialization).
func Q3Into(db *core.DB) (*core.Table, error) {
	joined, err := db.JoinTable("rankings", "uservisits", "pageURL", "destURL",
		core.JoinOptions{FilterRight: Q3DatePred})
	if err != nil {
		return nil, err
	}
	return groupQ3(db, joined)
}

func mustGroup(db *core.DB, joined *core.Table) *core.Table {
	t, err := groupQ3(db, joined)
	if err != nil {
		panic(err)
	}
	return t
}

func groupQ3(db *core.DB, joined *core.Table) (*core.Table, error) {
	ipCol := joined.Schema().ColIndex("sourceIP")
	return db.GroupAggregateTable(joined, nil,
		func(r table.Row) table.Value { return r[ipCol] },
		[]core.AggregateSpec{
			{Kind: exec.AggSum, Column: "adRevenue"},
			{Kind: exec.AggAvg, Column: "pageRank"},
		}, nil)
}
