package bdb

import (
	"strings"
	"testing"

	"oblidb/internal/baseline"
	"oblidb/internal/core"
	"oblidb/internal/table"
)

func smallGen() Gen { return Gen{Rankings: 800, UserVisits: 700, Seed: 42} }

func TestGeneratorsDeterministic(t *testing.T) {
	a := smallGen().GenRankings()
	b := smallGen().GenRankings()
	if len(a) != 800 || len(b) != 800 {
		t.Fatalf("row counts %d/%d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatal("generator not deterministic")
			}
		}
	}
}

func TestGeneratorProperties(t *testing.T) {
	g := smallGen()
	ranks := g.GenRankings()
	over := 0
	urls := map[string]bool{}
	for _, r := range ranks {
		if r[1].AsInt() > Q1Param {
			over++
		}
		urls[r[0].AsString()] = true
	}
	// ~1.2% selectivity for Q1 at any scale.
	if over == 0 || over > len(ranks)/20 {
		t.Fatalf("Q1 matches %d of %d; want ~1%%", over, len(ranks))
	}
	if len(urls) != len(ranks) {
		t.Fatal("pageURL is not unique (FK join needs a primary side)")
	}
	visits := g.GenUserVisits()
	inWindow := 0
	for _, v := range visits {
		if !urls[v[1].AsString()] {
			t.Fatalf("destURL %q not in rankings", v[1].AsString())
		}
		d := v[2].AsString()
		if len(d) != 10 || d[4] != '-' {
			t.Fatalf("bad date %q", d)
		}
		if Q3DatePred(v) {
			inWindow++
		}
	}
	if inWindow == 0 || inWindow > len(visits)/10 {
		t.Fatalf("Q3 window keeps %d of %d; want small fraction", inWindow, len(visits))
	}
}

func TestPaperScaleDefaults(t *testing.T) {
	g := Gen{}
	if g.rankings() != PaperRankings || g.userVisits() != PaperUserVisits {
		t.Fatal("zero Gen must mean paper scale")
	}
	s := Scaled(0.1, 1)
	if s.Rankings != 36000 || s.UserVisits != 35000 {
		t.Fatalf("scaled = %+v", s)
	}
}

// plainResults computes Q1-Q3 ground truth with the non-secure executor.
func plainResults(g Gen) (q1 int, q2 map[string]float64, q3 map[string]float64) {
	ranks := baseline.NewPlainTable(RankingsSchema())
	ranks.Insert(g.GenRankings()...)
	visits := baseline.NewPlainTable(UserVisitsSchema())
	visits.Insert(g.GenUserVisits()...)

	q1 = len(ranks.Select(Q1Pred))
	q2 = visits.GroupSum(table.All, func(r table.Row) string {
		return Q2GroupKey(r).AsString()
	}, 3)
	filtered := baseline.NewPlainTable(UserVisitsSchema())
	filtered.Insert(visits.Select(Q3DatePred)...)
	joined := baseline.HashJoin(ranks, filtered, 0, 1)
	q3 = map[string]float64{}
	for _, r := range joined {
		q3[r[3].AsString()] += r[6].AsFloat()
	}
	return
}

func TestQueriesMatchPlainExecutor(t *testing.T) {
	g := smallGen()
	wantQ1, wantQ2, wantQ3 := plainResults(g)

	for _, useIndex := range []bool{false, true} {
		db := core.MustOpen(core.Config{})
		kind := core.KindFlat
		if useIndex {
			kind = core.KindBoth
		}
		if err := Load(db, g, LoadOptions{RankingsKind: kind}); err != nil {
			t.Fatal(err)
		}
		res, err := Q1(db, useIndex)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != wantQ1 {
			t.Fatalf("useIndex=%v: Q1 = %d rows, want %d", useIndex, len(res.Rows), wantQ1)
		}
		if len(res.Cols) != 2 {
			t.Fatalf("Q1 cols = %v", res.Cols)
		}

		res, err = Q2(db)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(wantQ2) {
			t.Fatalf("Q2 groups = %d, want %d", len(res.Rows), len(wantQ2))
		}
		for _, r := range res.Rows {
			want := wantQ2[r[0].AsString()]
			if diff := r[1].AsFloat() - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("Q2 group %q = %v, want %v", r[0].AsString(), r[1].AsFloat(), want)
			}
		}

		res, err = Q3(db)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(wantQ3) {
			t.Fatalf("Q3 groups = %d, want %d", len(res.Rows), len(wantQ3))
		}
		for _, r := range res.Rows {
			want := wantQ3[r[0].AsString()]
			if diff := r[1].AsFloat() - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("Q3 group %q = %v, want %v", r[0].AsString(), r[1].AsFloat(), want)
			}
		}
	}
}

func TestCFPB(t *testing.T) {
	rows := GenCFPB(500, 7)
	if len(rows) != 500 {
		t.Fatalf("%d rows", len(rows))
	}
	products := map[string]bool{}
	for _, r := range rows {
		products[r[1].AsString()] = true
		if !strings.Contains(r[3].AsString(), "-") {
			t.Fatalf("bad date %v", r[3])
		}
	}
	if len(products) < 5 {
		t.Fatalf("only %d products", len(products))
	}
	if len(GenCFPB(0, 1)) != PaperCFPB {
		t.Fatal("default CFPB size wrong")
	}
}
