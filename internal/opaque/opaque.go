// Package opaque reimplements the oblivious-mode operators of Opaque
// (Zheng et al., NSDI'17), the system the paper compares against in §7.1.
// Opaque "supports only analytics queries that scan all the data, relying
// on oblivious sorts of an entire input table": its selection and grouped
// aggregation are built on whole-table oblivious sorts, in contrast to
// ObliDB's size-aware operators. It runs over the same enclave substrate
// so the Figure 7/8 comparisons measure algorithms, not plumbing.
package opaque

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// sortChunkRows returns the in-enclave chunk size Opaque's oblivious sort
// uses: as many elements as fit in the oblivious memory budget.
func sortChunkRows(e *enclave.Enclave, blockSize, n int) int {
	c := e.Available() / blockSize
	if c < 1 {
		return 1
	}
	p := 1
	for p*2 <= c {
		p *= 2
	}
	if p > n {
		p = n
	}
	return p
}

// Select is Opaque's oblivious filter: copy every row into a combined
// array with its match flag, obliviously sort matching rows to the front,
// and emit the first |R| as the result. O(N log² N) whatever the
// selectivity — the cost ObliDB's Small/Large/Continuous algorithms avoid.
func Select(e *enclave.Enclave, in exec.Input, pred table.Pred, outSize int, outName string) (*storage.Flat, error) {
	schema := in.Schema()
	recSize := schema.RecordSize()
	blockSize := 1 + recSize
	rows := exec.RowSlots(in)
	n := exec.NextPow2(rows)
	st, err := e.NewStore(outName+".sort", n, blockSize)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, blockSize)
	err = exec.ForEachRow(in, func(i int, row table.Row, used bool) error {
		for j := range buf {
			buf[j] = 0
		}
		if used && pred(row) {
			buf[0] = 1
			if err := schema.EncodeRecord(buf[1:], row); err != nil {
				return err
			}
		}
		return st.Write(i, buf)
	})
	if err != nil {
		return nil, err
	}
	for i := rows; i < n; i++ {
		for j := range buf {
			buf[j] = 0
		}
		if err := st.Write(i, buf); err != nil {
			return nil, err
		}
	}
	// Sort selected-first; the order within each class is irrelevant.
	less := func(a, b []byte) bool { return a[0] > b[0] }
	if err := exec.ObliviousSort(st, n, sortChunkRows(e, blockSize, n), less); err != nil {
		return nil, err
	}
	out, err := storage.NewFlat(e, outName, schema, maxInt(1, outSize))
	if err != nil {
		return nil, err
	}
	kept := 0
	for i := 0; i < maxInt(1, outSize); i++ {
		data, err := st.Read(i)
		if err != nil {
			return nil, err
		}
		if data[0] == 1 && kept < outSize {
			row, _, err := schema.DecodeRecord(data[1:])
			if err != nil {
				return nil, err
			}
			if err := out.SetRow(i, row, true); err != nil {
				return nil, err
			}
			kept++
			continue
		}
		if err := out.SetRow(i, nil, false); err != nil {
			return nil, err
		}
	}
	out.BumpRows(kept)
	return out, nil
}

// Aggregate is a single oblivious scan, as in ObliDB — whole-table
// aggregation is the one case where the two systems' approaches coincide.
func Aggregate(in exec.Input, pred table.Pred, specs []exec.AggSpec) ([]table.Value, error) {
	return exec.Aggregate(in, pred, specs)
}

// GroupAggregate is Opaque's sort-and-filter grouped aggregation (§4.2
// cites it as the O(N log² N) fallback): obliviously sort the table by
// group key, then one linear scan emits one output write per row — the
// running aggregate at group boundaries, dummies elsewhere.
func GroupAggregate(e *enclave.Enclave, in exec.Input, pred table.Pred, groupBy exec.GroupBy, specs []exec.AggSpec, outName string) (*storage.Flat, error) {
	schema := in.Schema()
	recSize := schema.RecordSize()
	blockSize := 9 + recSize // group hash + record
	rows := exec.RowSlots(in)
	n := exec.NextPow2(rows)
	st, err := e.NewStore(outName+".sort", n, blockSize)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, blockSize)
	write := func(i int, key uint64, row table.Row, used bool) error {
		for j := range buf {
			buf[j] = 0
		}
		if used {
			buf[0] = 1
			binary.LittleEndian.PutUint64(buf[1:9], key)
			if err := schema.EncodeRecord(buf[9:], row); err != nil {
				return err
			}
		} else {
			binary.LittleEndian.PutUint64(buf[1:9], math.MaxUint64)
		}
		return st.Write(i, buf)
	}
	// Fill pass, noting the group column's kind for the output schema
	// (data values stay inside the enclave; only the schema — already
	// public — depends on this).
	groupKind, groupWidth := table.KindInt, 0
	err = exec.ForEachRow(in, func(i int, row table.Row, used bool) error {
		sel := used && pred(row)
		var key uint64
		if sel {
			g := groupBy(row)
			key = groupHash(g)
			if g.Kind == table.KindString {
				groupKind = table.KindString
				if w := 2 * len(g.AsString()); w > groupWidth {
					groupWidth = w
				}
			} else {
				groupKind = g.Kind
			}
		}
		return write(i, key, row, sel)
	})
	if err != nil {
		return nil, err
	}
	if groupWidth < 16 && groupKind == table.KindString {
		groupWidth = 16
	}
	for i := rows; i < n; i++ {
		if err := write(i, 0, nil, false); err != nil {
			return nil, err
		}
	}
	less := func(a, b []byte) bool {
		return binary.LittleEndian.Uint64(a[1:9]) < binary.LittleEndian.Uint64(b[1:9])
	}
	if err := exec.ObliviousSort(st, n, sortChunkRows(e, blockSize, n), less); err != nil {
		return nil, err
	}

	// Merge pass: groups are now contiguous. Every position gets exactly
	// one read and one output write — a finished group's row at its
	// boundary, a dummy elsewhere — plus one final write for the pending
	// group, so the trace is a fixed function of n.
	outSchema, err := groupSchema(schema, groupKind, groupWidth, specs)
	if err != nil {
		return nil, err
	}
	out, err := storage.NewFlat(e, outName, outSchema, n+1)
	if err != nil {
		return nil, err
	}
	var cur *groupState
	written := 0
	flushAt := func(pos int) error {
		if cur != nil {
			if err := out.SetRow(pos, cur.row(specs), true); err != nil {
				return err
			}
			written++
			cur = nil
			return nil
		}
		return out.SetRow(pos, nil, false)
	}
	for i := 0; i < n; i++ {
		data, err := st.Read(i)
		if err != nil {
			return nil, err
		}
		if data[0] != 1 {
			if err := flushAt(i); err != nil {
				return nil, err
			}
			continue
		}
		row, _, err := schema.DecodeRecord(data[9:])
		if err != nil {
			return nil, err
		}
		key := groupBy(row)
		if cur != nil && cur.key.Equal(key) {
			if err := out.SetRow(i, nil, false); err != nil {
				return nil, err
			}
		} else {
			if err := flushAt(i); err != nil {
				return nil, err
			}
			cur = newGroupState(key, specs)
		}
		if err := cur.add(row, specs); err != nil {
			return nil, err
		}
	}
	if err := flushAt(n); err != nil {
		return nil, err
	}
	out.BumpRows(written)
	return out, nil
}

type groupState struct {
	key    table.Value
	counts int64
	sums   []float64
	mins   []table.Value
	maxs   []table.Value
	any    bool
}

func newGroupState(key table.Value, specs []exec.AggSpec) *groupState {
	return &groupState{
		key:  key,
		sums: make([]float64, len(specs)),
		mins: make([]table.Value, len(specs)),
		maxs: make([]table.Value, len(specs)),
	}
}

func (g *groupState) add(r table.Row, specs []exec.AggSpec) error {
	g.counts++
	for i, s := range specs {
		if s.Kind == exec.AggCount {
			continue
		}
		v := r[s.Col]
		switch s.Kind {
		case exec.AggSum, exec.AggAvg:
			if !v.IsNumeric() {
				return fmt.Errorf("opaque: %s over non-numeric column", s.Kind)
			}
			g.sums[i] += v.AsFloat()
		case exec.AggMin, exec.AggMax:
			if !g.any {
				g.mins[i], g.maxs[i] = v, v
				continue
			}
			if c, _ := table.Compare(v, g.mins[i]); c < 0 {
				g.mins[i] = v
			}
			if c, _ := table.Compare(v, g.maxs[i]); c > 0 {
				g.maxs[i] = v
			}
		}
	}
	g.any = true
	return nil
}

func (g *groupState) row(specs []exec.AggSpec) table.Row {
	out := make(table.Row, 1+len(specs))
	out[0] = g.key
	for i, s := range specs {
		switch s.Kind {
		case exec.AggCount:
			out[1+i] = table.Int(g.counts)
		case exec.AggSum:
			out[1+i] = table.Float(g.sums[i])
		case exec.AggAvg:
			out[1+i] = table.Float(g.sums[i] / float64(g.counts))
		case exec.AggMin:
			out[1+i] = g.mins[i]
		case exec.AggMax:
			out[1+i] = g.maxs[i]
		}
	}
	return out
}

func groupSchema(in *table.Schema, kind table.Kind, width int, specs []exec.AggSpec) (*table.Schema, error) {
	cols := make([]table.Column, 1+len(specs))
	cols[0] = table.Column{Name: "group", Kind: kind, Width: width}
	for i, s := range specs {
		c := table.Column{Name: fmt.Sprintf("agg%d", i), Kind: table.KindFloat}
		if s.Kind == exec.AggCount {
			c.Kind = table.KindInt
		}
		if s.Kind == exec.AggMin || s.Kind == exec.AggMax {
			src := in.Col(s.Col)
			c.Kind, c.Width = src.Kind, src.Width
		}
		cols[1+i] = c
	}
	return table.NewSchema(cols...)
}

// Join is Opaque's sort-merge join, shared with ObliDB's operator set.
func Join(e *enclave.Enclave, t1, t2 exec.Input, col1, col2 int, outName string) (*storage.Flat, error) {
	return exec.Join(e, t1, t2, col1, col2, exec.JoinOpaque, exec.JoinOptions{}, outName)
}

func groupHash(v table.Value) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v.String()))
	// Reserve MaxUint64 for dummies.
	s := h.Sum64()
	if s == math.MaxUint64 {
		s--
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
