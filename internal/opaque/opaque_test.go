package opaque

import (
	"fmt"
	"sort"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func testSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "grp", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindInt},
	)
}

func fill(t *testing.T, e *enclave.Enclave, rows [][3]int64) *storage.Flat {
	t.Helper()
	f, err := storage.NewFlat(e, "in", testSchema(), len(rows))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := f.InsertFast(table.Row{table.Int(r[0]), table.Int(r[1]), table.Int(r[2])}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestSelect(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	var rows [][3]int64
	for i := int64(0); i < 40; i++ {
		rows = append(rows, [3]int64{i, i % 4, i * 2})
	}
	f := fill(t, e, rows)
	out, err := Select(e, exec.FromFlat(f), func(r table.Row) bool { return r[0].AsInt() >= 30 }, 10, "out")
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("%d rows, want 10", len(got))
	}
	ids := map[int64]bool{}
	for _, r := range got {
		ids[r[0].AsInt()] = true
	}
	for i := int64(30); i < 40; i++ {
		if !ids[i] {
			t.Fatalf("missing id %d", i)
		}
	}
}

func TestSelectEmpty(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	f := fill(t, e, [][3]int64{{1, 0, 0}, {2, 0, 0}})
	out, err := Select(e, exec.FromFlat(f), table.None, 0, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("%d rows for empty select", out.NumRows())
	}
}

func TestSelectTraceOblivious(t *testing.T) {
	run := func(threshold int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		var rows [][3]int64
		for i := int64(0); i < 16; i++ {
			rows = append(rows, [3]int64{i, 0, 0})
		}
		f := fill(t, e, rows)
		tr.Reset()
		if _, err := Select(e, exec.FromFlat(f),
			func(r table.Row) bool { return r[0].AsInt() < threshold }, 4, "out"); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(4)  // first four match
	b := run(-1) // nothing matches (planner-declared size still 4)
	_ = b
	c := run(4)
	if d := trace.Diff(a, c); d != "" {
		t.Fatalf("same query, different trace: %s", d)
	}
}

func TestGroupAggregate(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	var rows [][3]int64
	for i := int64(0); i < 30; i++ {
		rows = append(rows, [3]int64{i, i % 3, 1})
	}
	f := fill(t, e, rows)
	out, err := GroupAggregate(e, exec.FromFlat(f), table.All,
		func(r table.Row) table.Value { return r[1] },
		[]exec.AggSpec{{Kind: exec.AggCount}, {Kind: exec.AggSum, Col: 2}}, "out")
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d groups, want 3", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0].AsInt() < got[j][0].AsInt() })
	for g, r := range got {
		if r[0].AsInt() != int64(g) || r[1].AsInt() != 10 || r[2].AsFloat() != 10 {
			t.Fatalf("group %d = %v", g, r)
		}
	}
}

func TestGroupAggregateStringKeys(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	s := table.MustSchema(
		table.Column{Name: "tag", Kind: table.KindString, Width: 8},
		table.Column{Name: "v", Kind: table.KindInt},
	)
	f, _ := storage.NewFlat(e, "in", s, 12)
	for i := 0; i < 12; i++ {
		_ = f.InsertFast(table.Row{table.Str(fmt.Sprintf("t%d", i%4)), table.Int(int64(i))})
	}
	out, err := GroupAggregate(e, exec.FromFlat(f), table.All,
		func(r table.Row) table.Value { return r[0] },
		[]exec.AggSpec{{Kind: exec.AggCount}}, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := out.Rows()
	if len(rows) != 4 {
		t.Fatalf("%d groups, want 4", len(rows))
	}
	for _, r := range rows {
		if r[1].AsInt() != 3 {
			t.Fatalf("group %v count %v", r[0], r[1])
		}
	}
}

func TestGroupAggregateWithPredAndDummies(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	var rows [][3]int64
	for i := int64(0); i < 20; i++ {
		rows = append(rows, [3]int64{i, i % 2, 1})
	}
	f := fill(t, e, rows)
	// Delete a few rows to create unused blocks.
	if _, err := f.Delete(func(r table.Row) bool { return r[0].AsInt() < 4 }); err != nil {
		t.Fatal(err)
	}
	out, err := GroupAggregate(e, exec.FromFlat(f),
		func(r table.Row) bool { return r[0].AsInt() < 10 },
		func(r table.Row) table.Value { return r[1] },
		[]exec.AggSpec{{Kind: exec.AggCount}}, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows2, _ := out.Rows()
	if len(rows2) != 2 {
		t.Fatalf("%d groups, want 2", len(rows2))
	}
	// ids 4..9 remain under pred: 4,6,8 even; 5,7,9 odd.
	for _, r := range rows2 {
		if r[1].AsInt() != 3 {
			t.Fatalf("group %v count = %v, want 3", r[0], r[1])
		}
	}
}

func TestGroupTraceFixed(t *testing.T) {
	run := func(mod int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		var rows [][3]int64
		for i := int64(0); i < 16; i++ {
			rows = append(rows, [3]int64{i, i % mod, 1})
		}
		f := fill(t, e, rows)
		tr.Reset()
		if _, err := GroupAggregate(e, exec.FromFlat(f), table.All,
			func(r table.Row) table.Value { return r[1] },
			[]exec.AggSpec{{Kind: exec.AggCount}}, "out"); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// 2 groups vs 8 groups: identical traces (group count shows only in
	// the used-flag contents, which are encrypted).
	a := run(2)
	b := run(8)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("group count leaks into trace: %s", d)
	}
}

func TestJoinDelegates(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	p := fill(t, e, [][3]int64{{1, 0, 0}, {2, 0, 0}, {3, 0, 0}})
	q := fill(t, e, [][3]int64{{2, 0, 0}, {3, 0, 0}, {9, 0, 0}})
	out, err := Join(e, exec.FromFlat(p), exec.FromFlat(q), 0, 0, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("join found %d rows, want 2", out.NumRows())
	}
}
