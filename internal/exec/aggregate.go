package exec

import (
	"fmt"
	"sort"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// AggKind enumerates the aggregates ObliDB supports (§3): COUNT, SUM,
// MIN, MAX, AVG.
type AggKind int

const (
	// AggCount counts matching rows.
	AggCount AggKind = iota
	// AggSum sums a numeric column.
	AggSum
	// AggMin takes the minimum of a column.
	AggMin
	// AggMax takes the maximum of a column.
	AggMax
	// AggAvg averages a numeric column.
	AggAvg
)

// String names the aggregate as its SQL keyword.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggSpec is one aggregate over one column (Col is ignored for COUNT).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// aggState accumulates one aggregate inside the enclave.
type aggState struct {
	spec  AggSpec
	count int64
	sum   float64
	min   table.Value
	max   table.Value
	any   bool
}

func (a *aggState) add(r table.Row) error {
	a.count++
	if a.spec.Kind == AggCount {
		return nil
	}
	v := r[a.spec.Col]
	switch a.spec.Kind {
	case AggSum, AggAvg:
		if !v.IsNumeric() {
			return fmt.Errorf("exec: %s over non-numeric column", a.spec.Kind)
		}
		a.sum += v.AsFloat()
	case AggMin, AggMax:
		// Clone retained extrema: v may alias the scan's scratch block
		// (see table.Value.Clone), and the state outlives the row.
		if !a.any {
			a.min, a.max = v.Clone(), v.Clone()
		} else {
			if c, err := table.Compare(v, a.min); err != nil {
				return err
			} else if c < 0 {
				a.min = v.Clone()
			}
			if c, err := table.Compare(v, a.max); err != nil {
				return err
			} else if c > 0 {
				a.max = v.Clone()
			}
		}
	}
	a.any = true
	return nil
}

// merge folds another partial state for the same spec into a. Every
// aggregate ObliDB supports decomposes over a partition of the input —
// COUNT and SUM add, MIN/MAX compare, AVG carries (sum, count) — which
// is what makes partition-parallel aggregation exact, not approximate.
func (a *aggState) merge(b *aggState) error {
	a.count += b.count
	a.sum += b.sum
	if b.any {
		if !a.any {
			a.min, a.max = b.min, b.max
		} else {
			if c, err := table.Compare(b.min, a.min); err != nil {
				return err
			} else if c < 0 {
				a.min = b.min
			}
			if c, err := table.Compare(b.max, a.max); err != nil {
				return err
			} else if c > 0 {
				a.max = b.max
			}
		}
		a.any = true
	}
	return nil
}

func (a *aggState) result() table.Value {
	switch a.spec.Kind {
	case AggCount:
		return table.Int(a.count)
	case AggSum:
		return table.Float(a.sum)
	case AggAvg:
		if a.count == 0 {
			return table.Float(0)
		}
		return table.Float(a.sum / float64(a.count))
	case AggMin:
		if !a.any {
			return table.Int(0)
		}
		return a.min
	case AggMax:
		if !a.any {
			return table.Int(0)
		}
		return a.max
	}
	return table.Int(0)
}

// Aggregate computes aggregates over the rows matching pred in one scan,
// keeping all state inside the enclave (§4.2). With a non-trivial pred
// this is the paper's fused select+aggregate operator: no intermediate
// table exists, so no intermediate size leaks. The trace is one read per
// block; no oblivious memory is used.
func Aggregate(in Input, pred table.Pred, specs []AggSpec) ([]table.Value, error) {
	states, err := aggScan(in, pred, specs)
	if err != nil {
		return nil, err
	}
	return aggResults(states), nil
}

// aggScan is the scan phase of Aggregate: one read per block, all state
// in the enclave. Parallel aggregation runs one aggScan per partition
// and merges the partial states.
func aggScan(in Input, pred table.Pred, specs []AggSpec) ([]aggState, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("exec: no aggregates requested")
	}
	states := make([]aggState, len(specs))
	for i, s := range specs {
		if s.Kind != AggCount && (s.Col < 0 || s.Col >= in.Schema().NumColumns()) {
			return nil, fmt.Errorf("exec: aggregate column %d out of range", s.Col)
		}
		states[i].spec = s
	}
	err := ForEachRow(in, func(_ int, row table.Row, used bool) error {
		if !used || !pred(row) {
			return nil
		}
		for j := range states {
			if err := states[j].add(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return states, nil
}

func aggResults(states []aggState) []table.Value {
	out := make([]table.Value, len(states))
	for i := range states {
		out[i] = states[i].result()
	}
	return out
}

// GroupBy extracts a grouping key from a row, inside the enclave (e.g. a
// column value or SUBSTR of one).
type GroupBy func(table.Row) table.Value

// GroupAggregateOptions configures grouped aggregation.
type GroupAggregateOptions struct {
	// MaxGroups bounds the in-enclave group table. Zero means the input
	// size. If distinct groups exceed it, the operator fails; the engine
	// then falls back to the Opaque-style sort-and-filter (§4.2).
	MaxGroups int
	// PadGroups, when positive, pads the output to exactly this many rows
	// (padding mode pads "to the maximum supported number of groups",
	// §7.2).
	PadGroups int
}

// GroupAggregate computes grouped aggregates with the paper's hash
// bucketing (§4.2): one scan; each row's group is looked up or added in an
// in-enclave hash table charged to oblivious memory at 4 bytes per group.
// Output is one row per group — [group, aggregates...] — in sorted group
// order, so the only leakage is the (already leaked) number of groups.
func GroupAggregate(e *enclave.Enclave, in Input, pred table.Pred, groupBy GroupBy, specs []AggSpec, opts GroupAggregateOptions, outName string) (*storage.Flat, error) {
	if groupBy == nil {
		return nil, fmt.Errorf("exec: grouped aggregation needs a group key")
	}
	maxGroups := opts.MaxGroups
	if maxGroups <= 0 {
		maxGroups = RowSlots(in)
	}
	groups, reserved, err := groupScan(e, in, pred, groupBy, specs, maxGroups)
	defer func() { e.Release(reserved) }()
	if err != nil {
		return nil, err
	}
	return emitGroups(e, groups, specs, in.Schema(), opts, outGeom(in), outName)
}

// group is one grouping bucket's in-enclave state.
type group struct {
	key    table.Value
	states []aggState
}

// groupScan is the scan phase of grouped aggregation: one read per
// block, buckets in an in-enclave hash table charged 4 bytes apiece to
// e's oblivious memory. It returns the buckets and the bytes reserved;
// the caller releases them once done with the buckets.
func groupScan(e *enclave.Enclave, in Input, pred table.Pred, groupBy GroupBy, specs []AggSpec, maxGroups int) (map[string]*group, int, error) {
	groups := make(map[string]*group)
	reserved := 0
	err := ForEachRow(in, func(_ int, row table.Row, used bool) error {
		if !used || !pred(row) {
			return nil
		}
		key := groupBy(row)
		mk := key.String()
		g, ok := groups[mk]
		if !ok {
			if len(groups) >= maxGroups {
				return fmt.Errorf("exec: more than %d groups; use the sort-based fallback", maxGroups)
			}
			// The paper charges 4 bytes of oblivious memory per group.
			if err := e.Reserve(4); err != nil {
				return fmt.Errorf("exec: group table exceeded oblivious memory: %w", err)
			}
			reserved += 4
			// The key outlives the scanned row; detach it from the scratch.
			g = &group{key: key.Clone(), states: make([]aggState, len(specs))}
			for j, s := range specs {
				g.states[j].spec = s
			}
			groups[mk] = g
		}
		for j := range g.states {
			if err := g.states[j].add(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, reserved, err
	}
	return groups, reserved, nil
}

// mergeGroups folds src's buckets into dst (both in-enclave).
func mergeGroups(dst, src map[string]*group, specs []AggSpec, maxGroups int) error {
	for mk, g := range src {
		d, ok := dst[mk]
		if !ok {
			if len(dst) >= maxGroups {
				return fmt.Errorf("exec: more than %d groups; use the sort-based fallback", maxGroups)
			}
			dst[mk] = g
			continue
		}
		for j := range d.states {
			if err := d.states[j].merge(&g.states[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitGroups is the output phase of grouped aggregation: one row
// [group, aggregates...] per bucket in sorted key order, padded to
// opts.PadGroups when set. Its trace depends only on the number of
// groups (already-conceded leakage) and the padding bound.
func emitGroups(e *enclave.Enclave, groups map[string]*group, specs []AggSpec, inSchema *table.Schema, opts GroupAggregateOptions, rpb int, outName string) (*storage.Flat, error) {
	// Deterministic output order: sorted by group key.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	groupKind, groupWidth := table.KindInt, 0
	for _, g := range groups {
		groupKind = g.key.Kind
		if groupKind == table.KindString {
			for _, h := range groups {
				if n := len(h.key.AsString()); n > groupWidth {
					groupWidth = n
				}
			}
			groupWidth = max(groupWidth, 16)
		}
		break
	}
	outSchema, err := groupOutputSchema(inSchema, groupKind, groupWidth, specs)
	if err != nil {
		return nil, err
	}
	capacity := max(1, len(groups))
	if opts.PadGroups > capacity {
		capacity = opts.PadGroups
	}
	out, err := storage.NewFlatGeom(e, outName, outSchema, capacity, rpb)
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	for _, k := range keys {
		g := groups[k]
		row := make(table.Row, 1+len(specs))
		row[0] = g.key
		for j := range g.states {
			row[1+j] = g.states[j].result()
		}
		if err := w.Append(row, true); err != nil {
			return nil, err
		}
	}
	// Padding mode: dummy-write the remaining slots so the output table
	// has its padded size with indistinguishable contents.
	for i := len(keys); i < capacity; i++ {
		if err := w.Append(nil, false); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(len(keys))
	return out, nil
}

// groupOutputSchema builds the [group, agg...] schema. The group column
// kind is taken from an observed key (INTEGER for an empty input).
func groupOutputSchema(in *table.Schema, groupKind table.Kind, groupWidth int, specs []AggSpec) (*table.Schema, error) {
	cols := make([]table.Column, 1+len(specs))
	cols[0] = table.Column{Name: "group", Kind: groupKind, Width: groupWidth}
	for i, s := range specs {
		name := s.Kind.String()
		kind := table.KindFloat
		if s.Kind == AggCount {
			kind = table.KindInt
		} else {
			name += "_" + in.Col(s.Col).Name
		}
		if s.Kind == AggMin || s.Kind == AggMax {
			c := in.Col(s.Col)
			kind = c.Kind
			cols[1+i] = table.Column{Name: name, Kind: kind, Width: c.Width}
			continue
		}
		cols[1+i] = table.Column{Name: name, Kind: kind}
	}
	return table.NewSchema(cols...)
}
