package exec

import (
	"math/rand/v2"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/trace"
)

func TestShellSortSortsRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	for trial := 0; trial < 60; trial++ {
		n := 1 << (3 + trial%6) // 8..256
		e := enclave.MustNew(enclave.Config{})
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 512
		}
		st := fillStore(t, e, vals)
		if err := ShellSort(st, n, rand.New(rand.NewPCG(uint64(trial), 5)), lessU64); err != nil {
			t.Fatal(err)
		}
		got := readStore(t, st, n)
		for i := 1; i < n; i++ {
			if got[i] < got[i-1] {
				t.Fatalf("trial %d (n=%d): unsorted at %d: %v > %v", trial, n, i, got[i-1], got[i])
			}
		}
	}
}

func TestShellSortAdversarialInputs(t *testing.T) {
	for _, build := range []func(n int) []uint64{
		func(n int) []uint64 { // reversed
			v := make([]uint64, n)
			for i := range v {
				v[i] = uint64(n - i)
			}
			return v
		},
		func(n int) []uint64 { // organ pipe
			v := make([]uint64, n)
			for i := range v {
				if i < n/2 {
					v[i] = uint64(i)
				} else {
					v[i] = uint64(n - i)
				}
			}
			return v
		},
		func(n int) []uint64 { // all equal
			return make([]uint64, n)
		},
	} {
		const n = 128
		e := enclave.MustNew(enclave.Config{})
		st := fillStore(t, e, build(n))
		if err := ShellSort(st, n, rand.New(rand.NewPCG(1, 2)), lessU64); err != nil {
			t.Fatal(err)
		}
		got := readStore(t, st, n)
		for i := 1; i < n; i++ {
			if got[i] < got[i-1] {
				t.Fatalf("unsorted at %d", i)
			}
		}
	}
}

func TestShellSortRejectsNonPow2(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	st := fillStore(t, e, make([]uint64, 6))
	if err := ShellSort(st, 6, rand.New(rand.NewPCG(1, 1)), lessU64); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

// TestShellSortPatternDataIndependent: with the same pattern randomness,
// two different datasets produce the identical trace — randomized but
// data-independent, the property §4.3 relies on.
func TestShellSortPatternDataIndependent(t *testing.T) {
	run := func(vals []uint64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		st := fillStore(t, e, vals)
		tr.Reset()
		if err := ShellSort(st, len(vals), rand.New(rand.NewPCG(9, 9)), lessU64); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	asc := make([]uint64, 64)
	desc := make([]uint64, 64)
	for i := range asc {
		asc[i] = uint64(i)
		desc[i] = uint64(64 - i)
	}
	a := run(asc)
	b := run(desc)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("shellsort trace depends on data: %s", d)
	}
}

// TestShellSortScalesBetterThanBitonic verifies the complexity claim the
// paper cites: O(n log n) vs the network's O(n log² n). At database-bench
// sizes the shellsort's constant still dominates (the crossover is far
// out), so the test compares per-element access *growth* across a 16×
// size increase — linear in log n for shellsort, quadratic for the
// network.
func TestShellSortScalesBetterThanBitonic(t *testing.T) {
	count := func(n int, sort func(st *enclave.Store) error) float64 {
		tr := trace.New()
		tr.EnableCounts()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64((i * 31) % n)
		}
		st := fillStore(t, e, vals)
		if err := sort(st); err != nil {
			t.Fatal(err)
		}
		return float64(tr.TotalCount()) / float64(n)
	}
	shellAt := func(n int) float64 {
		return count(n, func(st *enclave.Store) error {
			return ShellSort(st, n, rand.New(rand.NewPCG(2, 2)), lessU64)
		})
	}
	bitonicAt := func(n int) float64 {
		return count(n, func(st *enclave.Store) error {
			return ObliviousSort(st, n, 1, lessU64)
		})
	}
	shellGrowth := shellAt(4096) / shellAt(256)
	bitonicGrowth := bitonicAt(4096) / bitonicAt(256)
	if shellGrowth >= bitonicGrowth {
		t.Fatalf("per-element growth: shellsort %.2f×, bitonic %.2f×; want shellsort flatter",
			shellGrowth, bitonicGrowth)
	}
}
