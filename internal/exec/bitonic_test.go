package exec

import (
	"encoding/binary"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"oblidb/internal/enclave"
	"oblidb/internal/trace"
)

func lessU64(a, b []byte) bool {
	return binary.LittleEndian.Uint64(a) < binary.LittleEndian.Uint64(b)
}

func fillStore(t *testing.T, e *enclave.Enclave, vals []uint64) *enclave.Store {
	t.Helper()
	st, err := e.NewStore("sort", len(vals), 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf, v)
		if err := st.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func readStore(t *testing.T, st *enclave.Store, n int) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	for i := range out {
		b, err := st.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = binary.LittleEndian.Uint64(b)
	}
	return out
}

func TestBitonicSortChunkSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 64
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
	}
	want := append([]uint64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, chunk := range []int{1, 2, 8, 64, 128} {
		e := enclave.MustNew(enclave.Config{})
		st := fillStore(t, e, vals)
		if err := ObliviousSort(st, n, chunk, lessU64); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		got := readStore(t, st, n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: position %d = %d, want %d", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestBitonicSortProperty(t *testing.T) {
	f := func(raw []uint16, chunkPow uint8) bool {
		n := NextPow2(len(raw) + 1)
		vals := make([]uint64, n)
		for i, v := range raw {
			vals[i] = uint64(v)
		}
		chunk := 1 << (chunkPow % 6)
		e := enclave.MustNew(enclave.Config{})
		st, err := e.NewStore("s", n, 8)
		if err != nil {
			return false
		}
		buf := make([]byte, 8)
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf, v)
			if st.Write(i, buf) != nil {
				return false
			}
		}
		if ObliviousSort(st, n, chunk, lessU64) != nil {
			return false
		}
		prev := uint64(0)
		for i := 0; i < n; i++ {
			b, err := st.Read(i)
			if err != nil {
				return false
			}
			v := binary.LittleEndian.Uint64(b)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortRejectsNonPow2(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	st := fillStore(t, e, make([]uint64, 6))
	if err := ObliviousSort(st, 6, 1, lessU64); err == nil {
		t.Fatal("non-power-of-two size accepted")
	}
	st2 := fillStore(t, e, make([]uint64, 8))
	if err := ObliviousSort(st2, 8, 3, lessU64); err == nil {
		t.Fatal("non-power-of-two chunk accepted")
	}
}

func TestBitonicSortTraceFixed(t *testing.T) {
	// The network's trace is a function of (n, chunk) only.
	run := func(vals []uint64, chunk int) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		st := fillStore(t, e, vals)
		tr.Reset()
		if err := ObliviousSort(st, len(vals), chunk, lessU64); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	sorted := make([]uint64, 32)
	reversed := make([]uint64, 32)
	for i := range sorted {
		sorted[i] = uint64(i)
		reversed[i] = uint64(31 - i)
	}
	for _, chunk := range []int{1, 4, 32} {
		a := run(sorted, chunk)
		b := run(reversed, chunk)
		if d := trace.Diff(a, b); d != "" {
			t.Fatalf("chunk %d: sort trace depends on data: %s", chunk, d)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBitonicChunkingReducesNetworkPasses(t *testing.T) {
	// With larger chunks the network does fewer compare-exchanges, the
	// §4.3 reason the Opaque join beats the 0-OM join.
	count := func(chunk int) int {
		tr := trace.New()
		tr.EnableCounts()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		vals := make([]uint64, 256)
		for i := range vals {
			vals[i] = uint64(255 - i)
		}
		st := fillStore(t, e, vals)
		if err := ObliviousSort(st, 256, chunk, lessU64); err != nil {
			t.Fatal(err)
		}
		return int(tr.TotalCount())
	}
	pure := count(1)
	chunked := count(64)
	if chunked >= pure {
		t.Fatalf("chunked sort made %d accesses, pure network %d", chunked, pure)
	}
}
