package exec

import (
	"fmt"
	"math/bits"
	"sort"

	"oblidb/internal/enclave"
)

// ObliviousSort sorts the first n blocks of st in place with a bitonic
// sorting network. The network's compare-exchange sequence is a fixed
// function of n alone — "it always makes the same set of comparisons
// independent of the data being sorted" (§4.3) — so the sort is oblivious.
// Every compare-exchange reads both blocks and rewrites both, swapped or
// not, under fresh encryption.
//
// chunkRows enables the paper's two accelerations:
//
//   - The Opaque join "uses quicksort to sort chunks of the data that fit
//     inside an enclave's oblivious memory and merges the chunks with a
//     bitonic sorting network": network stages that operate entirely
//     within an aligned chunk are replaced by an in-enclave sort of that
//     chunk (one read and one write per block — still data-independent).
//   - The 0-OM join passes chunkRows = 1, running the pure network with no
//     oblivious memory at all.
//
// n and chunkRows must be powers of two with 1 <= chunkRows.
func ObliviousSort(st *enclave.Store, n, chunkRows int, less func(a, b []byte) bool) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("exec: bitonic sort size %d is not a power of two", n)
	}
	if chunkRows <= 0 || chunkRows&(chunkRows-1) != 0 {
		return fmt.Errorf("exec: chunk size %d is not a power of two", chunkRows)
	}
	if chunkRows > n {
		chunkRows = n
	}
	if chunkRows == n {
		// Whole input fits: one in-enclave sort.
		return sortChunk(st, 0, n, true, less)
	}

	// Initial pass: each aligned chunk sorted in the direction stage
	// k=chunkRows of the full network would leave it.
	for base := 0; base < n; base += chunkRows {
		asc := base&chunkRows == 0
		if err := sortChunk(st, base, chunkRows, asc, less); err != nil {
			return err
		}
	}

	for k := chunkRows << 1; k <= n; k <<= 1 {
		for j := k >> 1; j >= chunkRows; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				asc := i&k == 0
				if err := compareExchange(st, i, l, asc, less); err != nil {
					return err
				}
			}
		}
		if chunkRows > 1 {
			// The remaining stages j < chunkRows form a bitonic merge of
			// each chunk; sorting the (bitonic) chunk in the enclave gives
			// the same result.
			for base := 0; base < n; base += chunkRows {
				asc := base&k == 0
				if err := sortChunk(st, base, chunkRows, asc, less); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// compareExchange is the network primitive: read blocks i and l, order
// them, write both back.
func compareExchange(st *enclave.Store, i, l int, asc bool, less func(a, b []byte) bool) error {
	a, err := st.Read(i)
	if err != nil {
		return err
	}
	b, err := st.Read(l)
	if err != nil {
		return err
	}
	if less(b, a) == asc { // out of order for this direction
		a, b = b, a
	}
	if err := st.Write(i, a); err != nil {
		return err
	}
	return st.Write(l, b)
}

// sortChunk reads rows [base, base+m), sorts them inside the enclave, and
// writes them back: m reads and m writes whatever the data.
func sortChunk(st *enclave.Store, base, m int, asc bool, less func(a, b []byte) bool) error {
	blocks := make([][]byte, m)
	for i := 0; i < m; i++ {
		b, err := st.Read(base + i)
		if err != nil {
			return err
		}
		blocks[i] = b
	}
	sort.SliceStable(blocks, func(x, y int) bool {
		if asc {
			return less(blocks[x], blocks[y])
		}
		return less(blocks[y], blocks[x])
	})
	for i := 0; i < m; i++ {
		if err := st.Write(base+i, blocks[i]); err != nil {
			return err
		}
	}
	return nil
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FloorPow2 returns the largest power of two <= n (0 for n < 1). Sort
// chunk sizing rounds budgets down with it.
func FloorPow2(n int) int {
	if n < 1 {
		return 0
	}
	return 1 << (bits.Len(uint(n)) - 1)
}
