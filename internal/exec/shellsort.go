package exec

import (
	"fmt"
	"math/rand/v2"

	"oblidb/internal/enclave"
)

// ShellSort is the randomized Shellsort of Goodrich (J.ACM 2011), which
// the paper cites as the way to "reduce the O(log² n) terms in the
// oblivious sorts to O(log n) ... at the cost of making the correctness
// of the sorting algorithm probabilistic" (§4.3).
//
// The compare-exchange sequence is drawn from rng *before looking at any
// data*, so the access pattern — though randomized — is data-independent
// and the sort is oblivious exactly like the bitonic network. Unlike the
// network it performs O(n log n) compare-exchanges; with the region
// passes below it sorts with overwhelming probability, and the
// (astronomically unlikely) failure mode is a slightly unsorted output,
// not an error — which is why ObliDB keeps the deterministic bitonic sort
// as its default.
func ShellSort(st *enclave.Store, n int, rng *rand.Rand, less func(a, b []byte) bool) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("exec: shellsort size %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	for offset := n / 2; offset >= 1; offset /= 2 {
		regions := n / offset
		// Shaker pass, upward then downward.
		for i := 0; i < regions-1; i++ {
			if err := compareRegions(st, i*offset, (i+1)*offset, offset, rng, less); err != nil {
				return err
			}
		}
		for i := regions - 2; i >= 0; i-- {
			if err := compareRegions(st, i*offset, (i+1)*offset, offset, rng, less); err != nil {
				return err
			}
		}
		// Brick passes at stride 3 then 2 (Goodrich's extended brick
		// pattern), then the odd-even adjacent passes.
		for _, stride := range []int{3, 2} {
			for i := 0; i+stride < regions; i++ {
				if err := compareRegions(st, i*offset, (i+stride)*offset, offset, rng, less); err != nil {
					return err
				}
			}
		}
		for i := 0; i < regions-1; i += 2 {
			if err := compareRegions(st, i*offset, (i+1)*offset, offset, rng, less); err != nil {
				return err
			}
		}
		for i := 1; i < regions-1; i += 2 {
			if err := compareRegions(st, i*offset, (i+1)*offset, offset, rng, less); err != nil {
				return err
			}
		}
	}
	return nil
}

// regionComparisons is the number of random matchings per region pair;
// Goodrich proves a constant suffices w.h.p., and a slightly generous
// constant keeps the failure probability negligible at database sizes.
const regionComparisons = 3

// compareRegions runs c random matchings between two offset-sized
// regions: for each matching, element i of the left region is
// compare-exchanged with element π(i) of the right. The permutations come
// from rng, never from data.
func compareRegions(st *enclave.Store, a, b, offset int, rng *rand.Rand, less func(x, y []byte) bool) error {
	if offset == 1 {
		return compareExchange(st, a, b, true, less)
	}
	for c := 0; c < regionCompariparisonsFor(offset); c++ {
		perm := rng.Perm(offset)
		for i := 0; i < offset; i++ {
			if err := compareExchange(st, a+i, b+perm[i], true, less); err != nil {
				return err
			}
		}
	}
	return nil
}

// regionCompariparisonsFor lets tiny regions use more matchings, where a
// single random matching mixes poorly.
func regionCompariparisonsFor(offset int) int {
	if offset <= 4 {
		return regionComparisons + 1
	}
	return regionComparisons
}
