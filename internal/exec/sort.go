package exec

import (
	"bytes"
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// OrderBy materializes the rows of in that match pred into a fresh flat
// table sorted on column col (descending when desc is set), with every
// dummy record after every real one. col < 0 sorts by the used flag
// alone — the dummy-last compaction a bare LIMIT needs.
//
// The operator is built for trace independence from the match count:
//
//  1. A copy pass reads every input block once and writes every output
//     block once — the matching rows as themselves, everything else as
//     a dummy — into an output padded to the next power of two of the
//     input size. No stats scan runs and no |R|-sized intermediate
//     exists, so unlike the SELECT algorithms nothing here depends on
//     how many rows matched.
//  2. The bitonic network of ObliviousSort orders the padded table with
//     its fixed, size-determined compare-exchange sequence, accelerated
//     by in-enclave chunk sorts when the memory budget allows (the same
//     two-level scheme as the Opaque join).
//
// The comparator orders dummies last, then by the key column, then by
// the sealed record's remaining bytes — a total order, so the output
// permutation is a deterministic function of the row multiset and ties
// cannot make engines diverge.
func OrderBy(e *enclave.Enclave, in Input, pred table.Pred, col int, desc bool, outName string) (*storage.Flat, error) {
	schema := in.Schema()
	if col >= schema.NumColumns() {
		return nil, fmt.Errorf("exec: sort column %d out of range", col)
	}
	if pred == nil {
		pred = table.All
	}
	n := NextPow2(max(1, RowSlots(in)))
	recSize := schema.RecordSize()

	// Copy pass into a record-granularity sort array — the bitonic
	// network compare-exchanges single records, so the sort runs over
	// one-record blocks whatever the input packing. At R = 1 the output
	// table itself has that granularity and is sorted in place (the
	// paper geometry's original cost); at R > 1 a scratch store holds
	// the records and an emit pass re-packs them. One read per input
	// block, one write per record, real or dummy.
	rpb := outGeom(in)
	var out *storage.Flat
	var st *enclave.Store
	var err error
	if rpb == 1 {
		out, err = storage.NewFlatGeom(e, outName, schema, n, 1)
		if err != nil {
			return nil, err
		}
		st = out.Store()
	} else {
		st, err = e.NewStore(outName+".sortbuf", n, recSize)
		if err != nil {
			return nil, err
		}
	}
	buf := make([]byte, recSize)
	kept := 0
	err = ForEachRow(in, func(i int, row table.Row, used bool) error {
		if used && pred(row) {
			if err := schema.EncodeRecord(buf, row); err != nil {
				return err
			}
			kept++
		} else if err := schema.EncodeDummy(buf); err != nil {
			return err
		}
		return st.Write(i, buf)
	})
	if err != nil {
		return nil, err
	}
	if err := schema.EncodeDummy(buf); err != nil {
		return nil, err
	}
	for i := RowSlots(in); i < n; i++ {
		if err := st.Write(i, buf); err != nil {
			return nil, err
		}
	}

	// Chunk sizing from the oblivious-memory budget, as the sort-merge
	// joins do: whole chunks sort in-enclave, the network merges them.
	chunkRows := FloorPow2(e.Available() / max(1, recSize))
	if chunkRows < 1 {
		chunkRows = 1
	}
	if chunkRows > n {
		chunkRows = n
	}
	if chunkRows > 1 {
		reserve := chunkRows * recSize
		if err := e.Reserve(reserve); err != nil {
			return nil, err
		}
		defer e.Release(reserve)
	}

	var sortErr error
	less := func(a, b []byte) bool {
		la := recordLess(schema, a, b, col, desc, &sortErr)
		return la
	}
	if err := ObliviousSort(st, n, chunkRows, less); err != nil {
		return nil, err
	}
	if sortErr != nil {
		return nil, sortErr
	}
	if out != nil {
		// R = 1: the output was sorted in place; no emit pass.
		out.BumpRows(kept)
		return out, nil
	}

	// Emit pass: the sorted records stream into the packed output in
	// order, one seal per output block.
	out, err = storage.NewFlatGeom(e, outName, schema, n, rpb)
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	for i := 0; i < n; i++ {
		data, err := st.ReadInto(i, buf)
		if err != nil {
			return nil, err
		}
		row, used, err := schema.DecodeRecord(data)
		if err != nil {
			return nil, err
		}
		if err := w.Append(row, used); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(kept)
	return out, nil
}

// recordLess is the OrderBy comparator over two sealed-record
// plaintexts: dummies last, then the key column (col >= 0), then the
// raw bytes as a deterministic tiebreak. Errors stick in *errOut — the
// network must run its full fixed sequence regardless.
func recordLess(schema *table.Schema, a, b []byte, col int, desc bool, errOut *error) bool {
	rowA, usedA, err := schema.DecodeRecord(a)
	if err != nil {
		if *errOut == nil {
			*errOut = err
		}
		return false
	}
	rowB, usedB, err := schema.DecodeRecord(b)
	if err != nil {
		if *errOut == nil {
			*errOut = err
		}
		return false
	}
	if usedA != usedB {
		return usedA // real rows before dummies
	}
	if !usedA {
		return false // dummies are all equal
	}
	if col >= 0 {
		c, err := table.Compare(rowA[col], rowB[col])
		if err != nil {
			if *errOut == nil {
				*errOut = err
			}
			return false
		}
		if c != 0 {
			if desc {
				return c > 0
			}
			return c < 0
		}
	}
	return bytes.Compare(a, b) < 0
}

// Limit copies the first n row slots of in into an n-capacity output —
// the oblivious LIMIT. The input must be dummy-last (an OrderBy
// output), so the copied prefix holds exactly the first min(|R|, n)
// rows. The output size is always n whatever the data: the host learns
// the statement's public limit, never how many rows actually matched.
// Reads and writes both amortize to one access per packed block.
func Limit(e *enclave.Enclave, in Input, n int, outName string) (*storage.Flat, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: negative limit %d", n)
	}
	schema := in.Schema()
	out, err := storage.NewFlatGeom(e, outName, schema, max(1, n), outGeom(in))
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	r := NewRowReader(in)
	kept := 0
	for i := 0; i < max(1, n); i++ {
		if i >= n || i >= RowSlots(in) {
			// Past the input (or a zero limit): pad with dummies.
			if err := w.Append(nil, false); err != nil {
				return nil, err
			}
			continue
		}
		row, used, err := r.Read(i)
		if err != nil {
			return nil, err
		}
		if err := w.Append(row, used); err != nil {
			return nil, err
		}
		if used {
			kept++
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(kept)
	return out, nil
}
