package exec

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func execSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindInt},
		table.Column{Name: "tag", Kind: table.KindString, Width: 8},
	)
}

// buildFlat creates a flat table whose row i has id=i, val=vals[i].
func buildFlat(t *testing.T, e *enclave.Enclave, name string, vals []int64) *storage.Flat {
	t.Helper()
	f, err := storage.NewFlat(e, name, execSchema(), max(1, len(vals)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		r := table.Row{table.Int(int64(i)), table.Int(v), table.Str(fmt.Sprintf("t%d", v))}
		if err := f.InsertFast(r); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// ids returns the sorted id column of a table's used rows.
func ids(t *testing.T, f *storage.Flat) []int64 {
	t.Helper()
	rows, err := f.Rows()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].AsInt()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eqInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var allSelectAlgs = []SelectAlgorithm{SelectNaive, SelectSmall, SelectLarge, SelectContinuous, SelectHash}

func TestSelectAllAlgorithmsCorrect(t *testing.T) {
	// vals: rows 10..29 have val=1 (a contiguous run for Continuous).
	vals := make([]int64, 50)
	for i := 10; i < 30; i++ {
		vals[i] = 1
	}
	pred := func(r table.Row) bool { return r[1].AsInt() == 1 }
	want := make([]int64, 0, 20)
	for i := int64(10); i < 30; i++ {
		want = append(want, i)
	}
	for _, alg := range allSelectAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			e := enclave.MustNew(enclave.Config{})
			in := buildFlat(t, e, "in", vals)
			out, err := Select(e, FromFlat(in), pred, alg, SelectOptions{OutSize: 20}, "out")
			if err != nil {
				t.Fatal(err)
			}
			if got := ids(t, out); !eqInt64s(got, want) {
				t.Fatalf("%s returned %v, want %v", alg, got, want)
			}
			if out.NumRows() != 20 {
				t.Fatalf("%s NumRows = %d, want 20", alg, out.NumRows())
			}
		})
	}
}

func TestSelectScattered(t *testing.T) {
	// Non-contiguous matches for the algorithms that support them.
	rng := rand.New(rand.NewPCG(7, 7))
	vals := make([]int64, 64)
	var want []int64
	for i := range vals {
		if rng.IntN(3) == 0 {
			vals[i] = 1
			want = append(want, int64(i))
		}
	}
	pred := func(r table.Row) bool { return r[1].AsInt() == 1 }
	for _, alg := range []SelectAlgorithm{SelectNaive, SelectSmall, SelectLarge, SelectHash} {
		t.Run(alg.String(), func(t *testing.T) {
			e := enclave.MustNew(enclave.Config{})
			in := buildFlat(t, e, "in", vals)
			out, err := Select(e, FromFlat(in), pred, alg, SelectOptions{OutSize: len(want)}, "out")
			if err != nil {
				t.Fatal(err)
			}
			if got := ids(t, out); !eqInt64s(got, want) {
				t.Fatalf("%s returned %v, want %v", alg, got, want)
			}
		})
	}
}

func TestSelectEmptyResult(t *testing.T) {
	for _, alg := range allSelectAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			e := enclave.MustNew(enclave.Config{})
			in := buildFlat(t, e, "in", make([]int64, 10))
			out, err := Select(e, FromFlat(in), table.None, alg, SelectOptions{OutSize: 0}, "out")
			if err != nil {
				t.Fatal(err)
			}
			if got := ids(t, out); len(got) != 0 {
				t.Fatalf("%s returned %v for empty result", alg, got)
			}
		})
	}
}

func TestSelectSmallMultiplePasses(t *testing.T) {
	// Starve the enclave so the buffer holds ~2 rows, forcing many passes.
	e := enclave.MustNew(enclave.Config{ObliviousMemory: 2 * execSchema().RecordSize()})
	vals := make([]int64, 40)
	var want []int64
	for i := 0; i < 40; i += 2 {
		vals[i] = 1
		want = append(want, int64(i))
	}
	in := buildFlat(t, e, "in", vals)
	tr := trace.New()
	// Count passes via a fresh traced enclave clone of the data.
	_ = tr
	out, err := Select(e, FromFlat(in), func(r table.Row) bool { return r[1].AsInt() == 1 },
		SelectSmall, SelectOptions{OutSize: 20}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(t, out); !eqInt64s(got, want) {
		t.Fatalf("small select with starved memory wrong: %v", got)
	}
}

func TestSelectWithTransform(t *testing.T) {
	outSchema := table.MustSchema(table.Column{Name: "id", Kind: table.KindInt})
	proj := func(r table.Row) table.Row { return table.Row{r[0]} }
	e := enclave.MustNew(enclave.Config{})
	vals := make([]int64, 20)
	for i := 5; i < 10; i++ {
		vals[i] = 1
	}
	in := buildFlat(t, e, "in", vals)
	out, err := Select(e, FromFlat(in), func(r table.Row) bool { return r[1].AsInt() == 1 },
		SelectHash, SelectOptions{OutSize: 5, Transform: proj, OutSchema: outSchema}, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := out.Rows()
	if len(rows) != 5 || len(rows[0]) != 1 {
		t.Fatalf("projected select wrong shape: %v", rows)
	}
}

// TestSelectTraceObliviousness is the central §4.1 property: with |T| and
// |R| fixed, the trace must be identical whatever the data and predicate.
// The Naive baseline goes through an ORAM, whose paths are randomized;
// there the guarantee is distributional, so the test checks access counts
// instead of exact traces (ORAM indistinguishability is tested in the oram
// package).
func TestSelectTraceObliviousness(t *testing.T) {
	run := func(alg SelectAlgorithm, vals []int64, predVal int64, outSize int) *trace.Tracer {
		tr := trace.New()
		tr.EnableCounts()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		in := buildFlat(t, e, "in", vals)
		tr.Reset()
		_, err := Select(e, FromFlat(in), func(r table.Row) bool { return r[1].AsInt() == predVal },
			alg, SelectOptions{OutSize: outSize}, "out")
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	const n, k = 40, 10
	// Dataset A: rows 0..9 match value 1. Dataset B: rows 30..39 match 2.
	valsA := make([]int64, n)
	valsB := make([]int64, n)
	for i := 0; i < k; i++ {
		valsA[i] = 1
		valsB[n-1-i] = 2
	}
	for _, alg := range allSelectAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			a := run(alg, valsA, 1, k)
			b := run(alg, valsB, 2, k)
			if alg == SelectNaive {
				if a.TotalCount() != b.TotalCount() {
					t.Fatalf("Naive access count depends on data: %d vs %d", a.TotalCount(), b.TotalCount())
				}
				return
			}
			if d := trace.Diff(a, b); d != "" {
				t.Fatalf("%s trace depends on data/query: %s", alg, d)
			}
			if a.Len() == 0 {
				t.Fatal("empty trace; tracer not wired through")
			}
		})
	}
}

// TestSelectTraceScatteredVsContiguous checks the data-independence for
// the general algorithms with differently-shaped match sets.
func TestSelectTraceScatteredVsContiguous(t *testing.T) {
	const n, k = 32, 8
	valsScattered := make([]int64, n)
	for i := 0; i < n; i += 4 {
		valsScattered[i] = 1
	}
	valsRun := make([]int64, n)
	for i := 0; i < k; i++ {
		valsRun[i+5] = 1
	}
	pred := func(r table.Row) bool { return r[1].AsInt() == 1 }
	for _, alg := range []SelectAlgorithm{SelectSmall, SelectLarge, SelectHash} {
		t.Run(alg.String(), func(t *testing.T) {
			var traces []*trace.Tracer
			for _, vals := range [][]int64{valsScattered, valsRun} {
				tr := trace.New()
				e := enclave.MustNew(enclave.Config{Tracer: tr})
				in := buildFlat(t, e, "in", vals)
				tr.Reset()
				if _, err := Select(e, FromFlat(in), pred, alg, SelectOptions{OutSize: k}, "out"); err != nil {
					t.Fatal(err)
				}
				traces = append(traces, tr)
			}
			if d := trace.Diff(traces[0], traces[1]); d != "" {
				t.Fatalf("%s distinguishes scattered from contiguous: %s", alg, d)
			}
		})
	}
}

func TestSelectNaiveChargesORAMMap(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", make([]int64, 8))
	free := e.Available()
	if _, err := Select(e, FromFlat(in), table.None, SelectNaive, SelectOptions{OutSize: 0}, "out"); err != nil {
		t.Fatal(err)
	}
	if e.Available() != free {
		t.Fatal("naive select leaked an oblivious-memory reservation")
	}
}

func TestSelectRejectsNegativeOutSize(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", make([]int64, 4))
	if _, err := Select(e, FromFlat(in), table.All, SelectHash, SelectOptions{OutSize: -1}, "out"); err == nil {
		t.Fatal("negative OutSize accepted")
	}
}

func TestHashSelectFullTable(t *testing.T) {
	// Selecting every row stresses hash placement at load factor 1/5.
	e := enclave.MustNew(enclave.Config{})
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = 1
	}
	in := buildFlat(t, e, "in", vals)
	out, err := Select(e, FromFlat(in), table.All, SelectHash, SelectOptions{OutSize: 100}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids(t, out)) != 100 {
		t.Fatal("hash select dropped rows")
	}
}
