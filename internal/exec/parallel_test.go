package exec

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// splitWorkers builds a parent enclave and p untraced workers.
func splitWorkers(t *testing.T, p int) (*enclave.Enclave, []*enclave.Enclave) {
	t.Helper()
	e := enclave.MustNew(enclave.Config{})
	ws, err := e.Split(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, ws
}

var parallelSelectAlgs = []SelectAlgorithm{SelectNaive, SelectSmall, SelectLarge, SelectHash}

func TestParallelSelectMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	vals := make([]int64, 100)
	outSize := 0
	for i := range vals {
		if rng.IntN(4) == 0 {
			vals[i] = 1
			outSize++
		}
	}
	pred := func(r table.Row) bool { return r[1].AsInt() == 1 }
	for _, alg := range parallelSelectAlgs {
		for _, p := range []int{1, 2, 3, 4} {
			t.Run(fmt.Sprintf("%s/P=%d", alg, p), func(t *testing.T) {
				se := enclave.MustNew(enclave.Config{})
				sin := buildFlat(t, se, "in", vals)
				want, err := Select(se, FromFlat(sin), pred, alg, SelectOptions{OutSize: outSize}, "out")
				if err != nil {
					t.Fatal(err)
				}

				e, ws := splitWorkers(t, p)
				in := buildFlat(t, e, "in", vals)
				got, err := ParallelSelect(e, ws, in, pred, alg, SelectOptions{OutSize: outSize}, "out")
				if err != nil {
					t.Fatal(err)
				}
				if !eqInt64s(ids(t, got), ids(t, want)) {
					t.Fatalf("parallel %s at P=%d returned %v, want %v", alg, p, ids(t, got), ids(t, want))
				}
				if got.NumRows() != outSize {
					t.Fatalf("NumRows = %d, want %d", got.NumRows(), outSize)
				}
			})
		}
	}
}

func TestParallelSelectEmptyResult(t *testing.T) {
	for _, alg := range parallelSelectAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			e, ws := splitWorkers(t, 4)
			in := buildFlat(t, e, "in", make([]int64, 40))
			out, err := ParallelSelect(e, ws, in, func(table.Row) bool { return false }, alg, SelectOptions{OutSize: 0}, "out")
			if err != nil {
				t.Fatal(err)
			}
			if out.NumRows() != 0 {
				t.Fatalf("empty select returned %d rows", out.NumRows())
			}
		})
	}
}

func TestParallelSelectContinuousRejected(t *testing.T) {
	e, ws := splitWorkers(t, 2)
	in := buildFlat(t, e, "in", []int64{1, 1, 0, 0})
	if _, err := ParallelSelect(e, ws, in, table.All, SelectContinuous, SelectOptions{OutSize: 2}, "out"); err == nil {
		t.Fatal("parallel Continuous should be rejected")
	}
}

func TestParallelSmallSelectFallsBackWhenMemoryTight(t *testing.T) {
	e := enclave.MustNew(enclave.Config{ObliviousMemory: 1})
	ws, err := e.Split(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := buildFlat(t, e, "in", []int64{1, 1, 1, 1, 0, 0, 0, 0})
	pred := func(r table.Row) bool { return r[1].AsInt() == 1 }
	_, err = ParallelSelect(e, ws, in, pred, SelectSmall, SelectOptions{OutSize: 4}, "out")
	if !errors.Is(err, ErrSerialFallback) {
		t.Fatalf("want ErrSerialFallback with zero worker memory, got %v", err)
	}
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2))
	vals := make([]int64, 97) // deliberately not a multiple of P
	for i := range vals {
		vals[i] = int64(rng.IntN(50) - 25)
	}
	pred := func(r table.Row) bool { return r[1].AsInt()%2 == 0 }
	specs := []AggSpec{
		{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggAvg, Col: 1},
		{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1},
	}
	se := enclave.MustNew(enclave.Config{})
	want, err := Aggregate(FromFlat(buildFlat(t, se, "in", vals)), pred, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		e, ws := splitWorkers(t, p)
		got, err := ParallelAggregate(ws, buildFlat(t, e, "in", vals), pred, specs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("P=%d: aggregate %d = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestParallelGroupAggregateMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 3))
	vals := make([]int64, 90)
	for i := range vals {
		vals[i] = int64(rng.IntN(7))
	}
	groupBy := func(r table.Row) table.Value { return r[1] }
	specs := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 0}}

	se := enclave.MustNew(enclave.Config{})
	want, err := GroupAggregate(se, FromFlat(buildFlat(t, se, "in", vals)), table.All, groupBy, specs, GroupAggregateOptions{}, "out")
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := want.Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		e, ws := splitWorkers(t, p)
		got, err := ParallelGroupAggregate(e, ws, buildFlat(t, e, "in", vals), table.All, groupBy, specs, GroupAggregateOptions{}, "out")
		if err != nil {
			t.Fatal(err)
		}
		gotRows, err := got.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("P=%d: %d groups, want %d", p, len(gotRows), len(wantRows))
		}
		for i := range wantRows {
			for j := range wantRows[i] {
				if !gotRows[i][j].Equal(wantRows[i][j]) {
					t.Fatalf("P=%d: group row %d col %d = %v, want %v", p, i, j, gotRows[i][j], wantRows[i][j])
				}
			}
		}
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	ls := table.MustSchema(table.Column{Name: "pk", Kind: table.KindInt}, table.Column{Name: "name", Kind: table.KindString, Width: 8})
	rs := table.MustSchema(table.Column{Name: "fk", Kind: table.KindInt}, table.Column{Name: "x", Kind: table.KindInt})
	mkTables := func(t *testing.T, e *enclave.Enclave) (lf, rf *storage.Flat) {
		lf = newFilled(t, e, "l", ls, 12, func(i int) table.Row {
			return table.Row{table.Int(int64(i)), table.Str(fmt.Sprintf("n%d", i))}
		})
		rf = newFilled(t, e, "r", rs, 40, func(i int) table.Row {
			return table.Row{table.Int(int64(i % 15)), table.Int(int64(i))}
		})
		return lf, rf
	}
	outSchema, err := JoinedSchema(ls, rs)
	if err != nil {
		t.Fatal(err)
	}
	e1 := enclave.MustNew(enclave.Config{})
	lf, rf := mkTables(t, e1)
	want, err := Join(e1, FromFlat(lf), FromFlat(rf), 0, 0, JoinHash, JoinOptions{OutSchema: outSchema}, "out")
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := joinedKeys(t, want)

	for _, p := range []int{1, 2, 4} {
		e, ws := splitWorkers(t, p)
		lf, rf := mkTables(t, e)
		got, err := ParallelHashJoin(e, ws, lf, rf, 0, 0, outSchema, "out")
		if err != nil {
			t.Fatal(err)
		}
		if gotKeys := joinedKeys(t, got); !eqInt64s(gotKeys, wantKeys) {
			t.Fatalf("P=%d: joined rows %v, want %v", p, gotKeys, wantKeys)
		}
	}
}

// --- parallel obliviousness: per-worker canonical trace multisets ---------

// tracedWorkers builds a traced parent and p traced workers with a fixed
// key, so two runs are fully comparable.
func tracedWorkers(t *testing.T, p int) (*enclave.Enclave, []*enclave.Enclave, *trace.Tracer, []*trace.Tracer) {
	t.Helper()
	parent := trace.New()
	wts := make([]*trace.Tracer, p)
	for i := range wts {
		wts[i] = trace.New()
	}
	e, err := enclave.New(enclave.Config{Tracer: parent, Key: make([]byte, 32)})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.Split(p, wts)
	if err != nil {
		t.Fatal(err)
	}
	return e, ws, parent, wts
}

// fingerprints reduces one parallel run to (parent canonical, worker
// multiset) fingerprints.
type fingerprints struct {
	parent  [32]byte
	workers [32]byte
}

func runTracedSelect(t *testing.T, alg SelectAlgorithm, p int, vals []int64, param int64, outSize int) fingerprints {
	t.Helper()
	e, ws, parent, wts := tracedWorkers(t, p)
	in := buildFlat(t, e, "in", vals)
	parent.Reset()
	for _, w := range wts {
		w.Reset()
	}
	pred := func(r table.Row) bool { return r[1].AsInt() == param }
	if _, err := ParallelSelect(e, ws, in, pred, alg, SelectOptions{OutSize: outSize}, "out"); err != nil {
		t.Fatal(err)
	}
	return fingerprints{parent: parent.CanonicalFingerprint(), workers: trace.MultisetFingerprint(wts)}
}

func TestParallelSelectOblivious(t *testing.T) {
	// Same |T|, same |R|, adversarially different data and predicate
	// parameters: the parent trace and the multiset of per-worker traces
	// must both be identical. Naive is excluded here — its ORAM paths are
	// randomized (indistinguishable by distribution, not equality) — and
	// covered by the count-uniformity test below, matching the ORAM
	// convention in core's trace tests.
	const n, k = 96, 13
	valsA := make([]int64, n)
	valsB := make([]int64, n)
	for i := 0; i < k; i++ {
		valsA[i*7] = 3           // scattered early
		valsB[n-1-i*2] = 1000000 // clustered late, huge values
	}
	for _, alg := range []SelectAlgorithm{SelectSmall, SelectLarge, SelectHash} {
		for _, p := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/P=%d", alg, p), func(t *testing.T) {
				a := runTracedSelect(t, alg, p, valsA, 3, k)
				b := runTracedSelect(t, alg, p, valsB, 1000000, k)
				if a.parent != b.parent {
					t.Fatal("parallel select: parent combine trace depends on data")
				}
				if a.workers != b.workers {
					t.Fatal("parallel select: worker trace multiset depends on data")
				}
			})
		}
	}
}

func TestParallelNaiveSelectAccessCountsUniform(t *testing.T) {
	// Naive's per-partition ORAM paths are randomized, so the guarantee
	// is count-uniformity: every worker performs the same number of
	// untrusted accesses whatever the data, and the parent combine trace
	// is exactly equal.
	const n, k = 96, 13
	run := func(vals []int64, param int64) ([]int, [32]byte) {
		e, ws, parent, wts := tracedWorkers(t, 4)
		in := buildFlat(t, e, "in", vals)
		parent.Reset()
		for _, w := range wts {
			w.Reset()
		}
		pred := func(r table.Row) bool { return r[1].AsInt() == param }
		if _, err := ParallelSelect(e, ws, in, pred, SelectNaive, SelectOptions{OutSize: k}, "out"); err != nil {
			t.Fatal(err)
		}
		counts := make([]int, len(wts))
		for i, w := range wts {
			counts[i] = w.Len()
		}
		sort.Ints(counts)
		return counts, parent.CanonicalFingerprint()
	}
	valsA := make([]int64, n)
	valsB := make([]int64, n)
	for i := 0; i < k; i++ {
		valsA[i*7] = 3
		valsB[n-1-i*2] = 1000000
	}
	ca, pa := run(valsA, 3)
	cb, pb := run(valsB, 1000000)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("worker access counts differ: %v vs %v", ca, cb)
		}
	}
	if pa != pb {
		t.Fatal("parallel naive select: parent combine trace depends on data")
	}
}

func TestParallelAggregateOblivious(t *testing.T) {
	run := func(vals []int64, threshold int64) fingerprints {
		e, ws, parent, wts := tracedWorkers(t, 4)
		in := buildFlat(t, e, "in", vals)
		parent.Reset()
		for _, w := range wts {
			w.Reset()
		}
		pred := func(r table.Row) bool { return r[1].AsInt() > threshold }
		if _, err := ParallelAggregate(ws, in, pred, []AggSpec{{Kind: AggSum, Col: 1}}); err != nil {
			t.Fatal(err)
		}
		return fingerprints{parent: parent.CanonicalFingerprint(), workers: trace.MultisetFingerprint(wts)}
	}
	a := run([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 6)
	b := run([]int64{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, 0)
	if a.parent != b.parent || a.workers != b.workers {
		t.Fatal("parallel aggregate trace depends on data")
	}
}

func TestParallelGroupAggregateOblivious(t *testing.T) {
	// Same group COUNT (the conceded leakage), different memberships.
	run := func(vals []int64) fingerprints {
		e, ws, parent, wts := tracedWorkers(t, 4)
		in := buildFlat(t, e, "in", vals)
		parent.Reset()
		for _, w := range wts {
			w.Reset()
		}
		groupBy := func(r table.Row) table.Value { return r[1] }
		if _, err := ParallelGroupAggregate(e, ws, in, table.All, groupBy, []AggSpec{{Kind: AggCount}}, GroupAggregateOptions{}, "out"); err != nil {
			t.Fatal(err)
		}
		return fingerprints{parent: parent.CanonicalFingerprint(), workers: trace.MultisetFingerprint(wts)}
	}
	a := run([]int64{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}) // balanced groups
	b := run([]int64{5, 6, 7, 5, 5, 5, 5, 5, 5, 5, 5, 5}) // skewed groups
	if a.parent != b.parent || a.workers != b.workers {
		t.Fatal("parallel group aggregate trace depends on group membership")
	}
}

func TestParallelHashJoinOblivious(t *testing.T) {
	run := func(fkBase int64) fingerprints {
		e, ws, parent, wts := tracedWorkers(t, 4)
		ls := table.MustSchema(table.Column{Name: "pk", Kind: table.KindInt})
		rs := table.MustSchema(table.Column{Name: "fk", Kind: table.KindInt})
		lf := newFilled(t, e, "l", ls, 8, func(i int) table.Row { return table.Row{table.Int(int64(i))} })
		rf := newFilled(t, e, "r", rs, 32, func(i int) table.Row { return table.Row{table.Int(fkBase + int64(i%4))} })
		outSchema, err := JoinedSchema(ls, rs)
		if err != nil {
			t.Fatal(err)
		}
		parent.Reset()
		for _, w := range wts {
			w.Reset()
		}
		if _, err := ParallelHashJoin(e, ws, lf, rf, 0, 0, outSchema, "out"); err != nil {
			t.Fatal(err)
		}
		return fingerprints{parent: parent.CanonicalFingerprint(), workers: trace.MultisetFingerprint(wts)}
	}
	a := run(0)    // every probe row matches
	b := run(1000) // none match
	if a.parent != b.parent || a.workers != b.workers {
		t.Fatal("parallel hash join trace depends on match pattern")
	}
}

// --- helpers --------------------------------------------------------------

// newFilled creates a flat table of n rows produced by gen.
func newFilled(t *testing.T, e *enclave.Enclave, name string, s *table.Schema, n int, gen func(i int) table.Row) *storage.Flat {
	t.Helper()
	f, err := storage.NewFlat(e, name, s, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := f.InsertFast(gen(i)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// joinedKeys returns the sorted last column of used joined rows.
func joinedKeys(t *testing.T, f *storage.Flat) []int64 {
	t.Helper()
	rows, err := f.Rows()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[len(r)-1].AsInt()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
