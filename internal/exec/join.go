package exec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// JoinAlgorithm names the oblivious join variants of §4.3.
type JoinAlgorithm int

const (
	// JoinHash is the oblivious block nested hash join: O(|T1|/S · |T2|),
	// using whatever oblivious memory is available for the build table.
	JoinHash JoinAlgorithm = iota
	// JoinOpaque is the Opaque sort-merge join: in-enclave sorts of
	// oblivious-memory-sized chunks merged by a bitonic network,
	// O((N+M) log²((N+M)/S)).
	JoinOpaque
	// JoinZeroOM is the paper's 0-OM variant: a pure bitonic sort needing
	// no oblivious memory, O((N+M) log²(N+M)).
	JoinZeroOM
)

// String names the algorithm as the paper does.
func (a JoinAlgorithm) String() string {
	switch a {
	case JoinHash:
		return "Hash"
	case JoinOpaque:
		return "Opaque"
	case JoinZeroOM:
		return "0-OM"
	}
	return fmt.Sprintf("JoinAlgorithm(%d)", int(a))
}

// JoinOptions configures a join.
type JoinOptions struct {
	// OutSchema is the schema of joined rows (t1's columns then t2's). If
	// nil it is built by concatenation.
	OutSchema *table.Schema
}

// JoinedSchema concatenates two schemas, prefixing duplicate column names.
func JoinedSchema(s1, s2 *table.Schema) (*table.Schema, error) {
	cols := make([]table.Column, 0, s1.NumColumns()+s2.NumColumns())
	cols = append(cols, s1.Columns()...)
	for _, c := range s2.Columns() {
		if s1.ColIndex(c.Name) >= 0 {
			c.Name = "r_" + c.Name
		}
		cols = append(cols, c)
	}
	return table.NewSchema(cols...)
}

// Join runs one oblivious join of t1 and t2 on t1.col1 = t2.col2,
// materializing joined rows into a fresh flat table. t1 is the primary
// (build) side; the sort-merge variants implement foreign-key joins where
// col1 is unique in t1, matching §4.3's scope.
func Join(e *enclave.Enclave, t1, t2 Input, col1, col2 int, alg JoinAlgorithm, opts JoinOptions, outName string) (*storage.Flat, error) {
	if col1 < 0 || col1 >= t1.Schema().NumColumns() || col2 < 0 || col2 >= t2.Schema().NumColumns() {
		return nil, fmt.Errorf("exec: join columns out of range")
	}
	outSchema := opts.OutSchema
	if outSchema == nil {
		var err error
		outSchema, err = JoinedSchema(t1.Schema(), t2.Schema())
		if err != nil {
			return nil, err
		}
	}
	switch alg {
	case JoinHash:
		return hashJoin(e, t1, t2, col1, col2, outSchema, outName)
	case JoinOpaque, JoinZeroOM:
		return sortMergeJoin(e, t1, t2, col1, col2, alg, outSchema, outName)
	}
	return nil, fmt.Errorf("exec: unknown join algorithm %d", alg)
}

// joinKey maps a value to a 64-bit comparison key. Integers and booleans
// map injectively; floats order-preservingly; strings by FNV-64a (the
// merge phase groups by this key, and a 64-bit collision at the paper's
// table sizes is vanishingly unlikely).
func joinKey(v table.Value) int64 {
	switch v.Kind {
	case table.KindInt, table.KindBool:
		return v.AsInt()
	case table.KindFloat:
		bits := math.Float64bits(v.AsFloat())
		if bits>>63 != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		return int64(bits)
	case table.KindString:
		h := fnv.New64a()
		h.Write([]byte(v.AsString()))
		return int64(h.Sum64())
	}
	return 0
}

// hashJoin is the §4.3 oblivious hash join: build an in-enclave hash table
// from as many rows of t1 as oblivious memory holds, then stream t2,
// writing one output slot — joined or dummy — per comparison, so each
// probe's access pattern is data-independent. The output structure has
// ceil(rows(T1)/S)·rows(T2) slots; reads and the sequential output fill
// both amortize to one untrusted access per packed block.
func hashJoin(e *enclave.Enclave, t1, t2 Input, col1, col2 int, outSchema *table.Schema, outName string) (*storage.Flat, error) {
	recSize := t1.Schema().RecordSize()
	t1Rows := RowSlots(t1)
	chunkRows := e.Available() / recSize
	if chunkRows < 1 {
		chunkRows = 1
	}
	if chunkRows > t1Rows {
		chunkRows = t1Rows
	}
	reserve := chunkRows * recSize
	if err := e.Reserve(reserve); err != nil {
		return nil, err
	}
	defer e.Release(reserve)

	numChunks := (t1Rows + chunkRows - 1) / chunkRows
	out, err := storage.NewFlatGeom(e, outName, outSchema, max(1, numChunks*RowSlots(t2)), outGeom(t2))
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	matches := 0
	build := make(map[int64]table.Row, chunkRows)
	t1r := NewRowReader(t1)
	probeBuf := t2.Schema().NewBlockBuf(t2.RowsPerBlock())
	for c := 0; c < numChunks; c++ {
		clear(build)
		// Each chunk's probe pass may read the same underlying table as
		// t1 (a self-join), clobbering the scratch the reader's cached
		// rows alias; drop the cache at every (public) chunk boundary.
		t1r.Invalidate()
		lo, hi := c*chunkRows, min((c+1)*chunkRows, t1Rows)
		for i := lo; i < hi; i++ {
			row, used, err := t1r.Read(i)
			if err != nil {
				return nil, err
			}
			if used {
				build[joinKey(row[col1])] = row.Clone()
			}
		}
		err := ForEachRowInto(t2, probeBuf, func(_ int, row table.Row, used bool) error {
			var joined table.Row
			if used {
				if b, ok := build[joinKey(row[col2])]; ok && b[col1].Equal(row[col2]) {
					joined = append(append(make(table.Row, 0, len(b)+len(row)), b...), row...)
				}
			}
			// One output slot per comparison: the joined row or a dummy.
			if joined != nil {
				matches++
				return w.Append(joined, true)
			}
			return w.Append(nil, false)
		})
		if err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(matches)
	return out, nil
}

// Tags ordering the combined array: for equal keys the primary row must
// precede its foreign matches; dummies sort last.
const (
	tagPrimary = 1
	tagForeign = 2
	tagDummy   = 3
)

// sortMergeJoin implements both the Opaque join and the 0-OM join (§4.3):
// copy both tables into one array tagged with their join keys, sort it
// obliviously by (key, tag), then merge in one linear scan that emits one
// output row — real or dummy — per array position.
func sortMergeJoin(e *enclave.Enclave, t1, t2 Input, col1, col2 int, alg JoinAlgorithm, outSchema *table.Schema, outName string) (*storage.Flat, error) {
	rec1, rec2 := t1.Schema().RecordSize(), t2.Schema().RecordSize()
	payload := max(rec1, rec2)
	blockSize := 1 + 8 + payload
	rows1, rows2 := RowSlots(t1), RowSlots(t2)
	n := NextPow2(rows1 + rows2)

	st, err := e.NewStore(outName+".sortmerge", n, blockSize)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, blockSize)
	fill := func(pos int, tag byte, key int64, schema *table.Schema, row table.Row, used bool) error {
		for i := range buf {
			buf[i] = 0
		}
		if !used {
			tag, key = tagDummy, math.MaxInt64
		}
		buf[0] = tag
		binary.LittleEndian.PutUint64(buf[1:9], uint64(key))
		if used {
			if err := schema.EncodeRecord(buf[9:], row); err != nil {
				return err
			}
		}
		return st.Write(pos, buf)
	}
	err = ForEachRow(t1, func(i int, row table.Row, used bool) error {
		var key int64
		if used {
			key = joinKey(row[col1])
		}
		return fill(i, tagPrimary, key, t1.Schema(), row, used)
	})
	if err != nil {
		return nil, err
	}
	err = ForEachRow(t2, func(j int, row table.Row, used bool) error {
		var key int64
		if used {
			key = joinKey(row[col2])
		}
		return fill(rows1+j, tagForeign, key, t2.Schema(), row, used)
	})
	if err != nil {
		return nil, err
	}
	for p := rows1 + rows2; p < n; p++ {
		if err := fill(p, tagDummy, 0, nil, nil, false); err != nil {
			return nil, err
		}
	}

	// Sort by (key, tag). The Opaque variant accelerates with in-enclave
	// sorts of chunks sized to the oblivious memory; 0-OM runs the pure
	// network.
	chunkRows := 1
	reserve := 0
	if alg == JoinOpaque {
		chunkRows = e.Available() / blockSize
		if chunkRows < 1 {
			chunkRows = 1
		}
		chunkRows = 1 << func() int { // floor to power of two
			b := 0
			for 1<<(b+1) <= chunkRows {
				b++
			}
			return b
		}()
		if chunkRows > n {
			chunkRows = n
		}
		reserve = chunkRows * blockSize
		if err := e.Reserve(reserve); err != nil {
			return nil, err
		}
		defer e.Release(reserve)
	}
	less := func(a, b []byte) bool {
		ka := int64(binary.LittleEndian.Uint64(a[1:9]))
		kb := int64(binary.LittleEndian.Uint64(b[1:9]))
		if ka != kb {
			return ka < kb
		}
		return a[0] < b[0]
	}
	if err := ObliviousSort(st, n, chunkRows, less); err != nil {
		return nil, err
	}

	// Merge: one linear scan; the last-seen primary row rides in the
	// enclave; every position emits exactly one output slot, the
	// sequential fill sealing one packed block at a time.
	out, err := storage.NewFlatGeom(e, outName, outSchema, n, outGeom(t1))
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	var heldKey int64
	var heldRow table.Row
	held := false
	matches := 0
	rbuf := make([]byte, blockSize)
	for p := 0; p < n; p++ {
		data, err := st.ReadInto(p, rbuf)
		if err != nil {
			return nil, err
		}
		tag := data[0]
		key := int64(binary.LittleEndian.Uint64(data[1:9]))
		var joined table.Row
		switch tag {
		case tagPrimary:
			row, used, err := t1.Schema().DecodeRecord(data[9:])
			if err != nil {
				return nil, err
			}
			if used {
				heldKey, heldRow, held = key, row, true
			}
		case tagForeign:
			if held && key == heldKey {
				row, used, err := t2.Schema().DecodeRecord(data[9:])
				if err != nil {
					return nil, err
				}
				if used && heldRow[col1].Equal(row[col2]) {
					joined = append(append(make(table.Row, 0, len(heldRow)+len(row)), heldRow...), row...)
				}
			}
		}
		if joined != nil {
			matches++
			err = w.Append(joined, true)
		} else {
			err = w.Append(nil, false)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(matches)
	return out, nil
}
