package exec

import (
	"fmt"
	"sort"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func primarySchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "pk", Kind: table.KindInt},
		table.Column{Name: "name", Kind: table.KindString, Width: 10},
	)
}

func foreignSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "fk", Kind: table.KindInt},
		table.Column{Name: "amount", Kind: table.KindInt},
	)
}

// buildJoinTables creates a primary table with keys 0..nPrimary-1 and a
// foreign table whose row j references key fks[j].
func buildJoinTables(t *testing.T, e *enclave.Enclave, nPrimary int, fks []int64) (*storage.Flat, *storage.Flat) {
	t.Helper()
	p, err := storage.NewFlat(e, "primary", primarySchema(), max(1, nPrimary))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nPrimary; i++ {
		if err := p.InsertFast(table.Row{table.Int(int64(i)), table.Str(fmt.Sprintf("n%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := storage.NewFlat(e, "foreign", foreignSchema(), max(1, len(fks)))
	if err != nil {
		t.Fatal(err)
	}
	for j, fk := range fks {
		if err := f.InsertFast(table.Row{table.Int(fk), table.Int(int64(100 + j))}); err != nil {
			t.Fatal(err)
		}
	}
	return p, f
}

// joinPairs extracts sorted (pk, amount) pairs from a join output.
func joinPairs(t *testing.T, out *storage.Flat) [][2]int64 {
	t.Helper()
	rows, err := out.Rows()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]int64, len(rows))
	for i, r := range rows {
		pairs[i] = [2]int64{r[0].AsInt(), r[3].AsInt()}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

var allJoinAlgs = []JoinAlgorithm{JoinHash, JoinOpaque, JoinZeroOM}

func TestJoinAllAlgorithmsAgree(t *testing.T) {
	fks := []int64{0, 2, 2, 5, 9, 9, 9, 3, 777} // 777 matches nothing
	var want [][2]int64
	for j, fk := range fks {
		if fk < 10 {
			want = append(want, [2]int64{fk, int64(100 + j)})
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i][0] != want[j][0] {
			return want[i][0] < want[j][0]
		}
		return want[i][1] < want[j][1]
	})
	for _, alg := range allJoinAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			e := enclave.MustNew(enclave.Config{})
			p, f := buildJoinTables(t, e, 10, fks)
			out, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, alg, JoinOptions{}, "out")
			if err != nil {
				t.Fatal(err)
			}
			got := joinPairs(t, out)
			if len(got) != len(want) {
				t.Fatalf("%s: %d pairs, want %d: %v", alg, len(got), len(want), got)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s pair %d: %v, want %v", alg, i, got[i], want[i])
				}
			}
		})
	}
}

func TestJoinEmptyForeign(t *testing.T) {
	for _, alg := range allJoinAlgs {
		e := enclave.MustNew(enclave.Config{})
		p, f := buildJoinTables(t, e, 5, nil)
		out, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, alg, JoinOptions{}, "out")
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if out.NumRows() != 0 {
			t.Fatalf("%s: joined %d rows from empty foreign table", alg, out.NumRows())
		}
	}
}

func TestJoinStringKeys(t *testing.T) {
	// BDB Q3 joins on URLs; exercise string-keyed joins on all variants.
	s1 := table.MustSchema(
		table.Column{Name: "url", Kind: table.KindString, Width: 20},
		table.Column{Name: "rank", Kind: table.KindInt},
	)
	s2 := table.MustSchema(
		table.Column{Name: "dest", Kind: table.KindString, Width: 20},
		table.Column{Name: "rev", Kind: table.KindInt},
	)
	for _, alg := range allJoinAlgs {
		e := enclave.MustNew(enclave.Config{})
		p, _ := storage.NewFlat(e, "p", s1, 4)
		for i := 0; i < 4; i++ {
			_ = p.InsertFast(table.Row{table.Str(fmt.Sprintf("url%d", i)), table.Int(int64(i * 10))})
		}
		f, _ := storage.NewFlat(e, "f", s2, 6)
		for _, d := range []string{"url1", "url3", "url1", "urlX", "url0", "url3"} {
			_ = f.InsertFast(table.Row{table.Str(d), table.Int(7)})
		}
		out, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, alg, JoinOptions{}, "out")
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if out.NumRows() != 5 {
			t.Fatalf("%s: %d matches, want 5", alg, out.NumRows())
		}
	}
}

func TestHashJoinChunking(t *testing.T) {
	// Starve oblivious memory so the build side needs several chunks; the
	// output structure grows to chunks×|T2| (§4.3) but results stay right.
	e := enclave.MustNew(enclave.Config{ObliviousMemory: 3 * primarySchema().RecordSize()})
	fks := []int64{1, 5, 9, 9, 0}
	p, f := buildJoinTables(t, e, 10, fks)
	out, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, JoinHash, JoinOptions{}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 5 {
		t.Fatalf("chunked hash join found %d, want 5", out.NumRows())
	}
	// ceil(10/3)=4 chunks × 5 foreign rows.
	if out.Capacity() != 20 {
		t.Fatalf("output structure %d slots, want 20", out.Capacity())
	}
}

func TestJoinOutputStructureSizes(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	p, f := buildJoinTables(t, e, 6, []int64{0, 1, 2})
	// Plenty of memory: hash join uses one chunk → |T2| slots.
	out, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, JoinHash, JoinOptions{}, "h")
	if err != nil {
		t.Fatal(err)
	}
	if out.Capacity() != 3 {
		t.Fatalf("hash join output %d slots, want 3", out.Capacity())
	}
	// Sort-merge joins output NextPow2(|T1|+|T2|) slots.
	out, err = Join(e, FromFlat(p), FromFlat(f), 0, 0, JoinZeroOM, JoinOptions{}, "z")
	if err != nil {
		t.Fatal(err)
	}
	if out.Capacity() != NextPow2(9) {
		t.Fatalf("0-OM join output %d slots, want %d", out.Capacity(), NextPow2(9))
	}
}

// TestJoinTraceObliviousness: fixed table sizes, different contents and
// match patterns → identical traces, for every algorithm.
func TestJoinTraceObliviousness(t *testing.T) {
	run := func(alg JoinAlgorithm, fks []int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		p, f := buildJoinTables(t, e, 8, fks)
		tr.Reset()
		if _, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, alg, JoinOptions{}, "out"); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	for _, alg := range allJoinAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			a := run(alg, []int64{0, 0, 0, 0, 0})      // everything matches one key
			b := run(alg, []int64{99, 98, 97, 96, 95}) // nothing matches
			if d := trace.Diff(a, b); d != "" {
				t.Fatalf("%s join trace depends on data: %s", alg, d)
			}
		})
	}
}

func TestJoinColumnValidation(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	p, f := buildJoinTables(t, e, 2, []int64{0})
	if _, err := Join(e, FromFlat(p), FromFlat(f), 5, 0, JoinHash, JoinOptions{}, "out"); err == nil {
		t.Fatal("bad join column accepted")
	}
}

func TestJoinedSchemaDedup(t *testing.T) {
	s, err := JoinedSchema(primarySchema(), primarySchema())
	if err != nil {
		t.Fatal(err)
	}
	if s.ColIndex("r_pk") < 0 || s.ColIndex("r_name") < 0 {
		t.Fatalf("duplicate columns not renamed: %s", s)
	}
}

func TestZeroOMJoinNoObliviousMemory(t *testing.T) {
	// The 0-OM join must run with a zero oblivious-memory budget.
	e := enclave.NewZeroOblivious(nil)
	p, f := buildJoinTables(t, e, 6, []int64{1, 3, 5})
	out, err := Join(e, FromFlat(p), FromFlat(f), 0, 0, JoinZeroOM, JoinOptions{}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("0-OM join under zero memory: %d rows, want 3", out.NumRows())
	}
}
