package exec

import (
	"strings"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func TestAggregateAll(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{5, 3, 9, 1, 7})
	got, err := Aggregate(FromFlat(in), table.All, []AggSpec{
		{Kind: AggCount},
		{Kind: AggSum, Col: 1},
		{Kind: AggMin, Col: 1},
		{Kind: AggMax, Col: 1},
		{Kind: AggAvg, Col: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].AsInt() != 5 {
		t.Fatalf("COUNT = %v", got[0])
	}
	if got[1].AsFloat() != 25 {
		t.Fatalf("SUM = %v", got[1])
	}
	if got[2].AsInt() != 1 || got[3].AsInt() != 9 {
		t.Fatalf("MIN/MAX = %v/%v", got[2], got[3])
	}
	if got[4].AsFloat() != 5 {
		t.Fatalf("AVG = %v", got[4])
	}
}

func TestFusedSelectAggregate(t *testing.T) {
	// The fused operator: aggregate only over rows matching a predicate,
	// with no intermediate table (§4.2).
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{5, 3, 9, 1, 7})
	got, err := Aggregate(FromFlat(in),
		func(r table.Row) bool { return r[1].AsInt() > 4 },
		[]AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].AsInt() != 3 || got[1].AsFloat() != 21 {
		t.Fatalf("fused agg = %v", got)
	}
}

func TestAggregateEmptyAndErrors(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", nil)
	if _, err := Aggregate(FromFlat(in), table.All, nil); err == nil {
		t.Fatal("no specs accepted")
	}
	got, err := Aggregate(FromFlat(in), table.All, []AggSpec{{Kind: AggCount}, {Kind: AggAvg, Col: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].AsInt() != 0 || got[1].AsFloat() != 0 {
		t.Fatalf("empty-table aggregates = %v", got)
	}
	if _, err := Aggregate(FromFlat(in), table.All, []AggSpec{{Kind: AggSum, Col: 99}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := Aggregate(FromFlat(in), table.All, []AggSpec{{Kind: AggSum, Col: 2}}); err == nil {
		// col 2 is a string
		t.Skip("empty table: type error surfaces only with rows")
	}
}

func TestAggregateSumOverString(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{1})
	if _, err := Aggregate(FromFlat(in), table.All, []AggSpec{{Kind: AggSum, Col: 2}}); err == nil {
		t.Fatal("SUM over string column accepted")
	}
}

func TestAggregateTraceOblivious(t *testing.T) {
	run := func(vals []int64, threshold int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		in := buildFlat(t, e, "in", vals)
		tr.Reset()
		if _, err := Aggregate(FromFlat(in),
			func(r table.Row) bool { return r[1].AsInt() > threshold },
			[]AggSpec{{Kind: AggSum, Col: 1}}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run([]int64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	b := run([]int64{9, 9, 9, 9, 0, 0, 0, 0}, 100)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("aggregate trace depends on data: %s", d)
	}
	if a.Len() != 8 {
		t.Fatalf("aggregate made %d accesses, want one read per block", a.Len())
	}
}

func groupByVal(r table.Row) table.Value { return r[1] }

func TestGroupAggregate(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{1, 2, 1, 3, 2, 1})
	out, err := GroupAggregate(e, FromFlat(in), table.All, groupByVal,
		[]AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 0}},
		GroupAggregateOptions{}, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := out.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d groups, want 3", len(rows))
	}
	// Groups sorted by key: 1 (count 3), 2 (count 2), 3 (count 1).
	wantCounts := map[int64]int64{1: 3, 2: 2, 3: 1}
	for _, r := range rows {
		if r[1].AsInt() != wantCounts[r[0].AsInt()] {
			t.Fatalf("group %v count %v", r[0], r[1])
		}
	}
}

func TestGroupAggregateStringKeys(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{10, 20, 10, 20, 10})
	out, err := GroupAggregate(e, FromFlat(in), table.All,
		func(r table.Row) table.Value { return r[2] }, // tag strings t10/t20
		[]AggSpec{{Kind: AggCount}},
		GroupAggregateOptions{}, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := out.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d groups, want 2", len(rows))
	}
	if !strings.HasPrefix(rows[0][0].AsString(), "t") {
		t.Fatalf("group key %v", rows[0][0])
	}
}

func TestGroupAggregateMaxGroups(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{1, 2, 3, 4, 5})
	if _, err := GroupAggregate(e, FromFlat(in), table.All, groupByVal,
		[]AggSpec{{Kind: AggCount}}, GroupAggregateOptions{MaxGroups: 3}, "out"); err == nil {
		t.Fatal("exceeding MaxGroups accepted")
	}
}

func TestGroupAggregateObliviousMemoryReleased(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{1, 2, 3, 1, 2, 3})
	free := e.Available()
	if _, err := GroupAggregate(e, FromFlat(in), table.All, groupByVal,
		[]AggSpec{{Kind: AggCount}}, GroupAggregateOptions{}, "out"); err != nil {
		t.Fatal(err)
	}
	if e.Available() != free {
		t.Fatal("group table reservation leaked")
	}
}

func TestGroupAggregatePadding(t *testing.T) {
	// Padding mode pads the output to the maximum supported group count.
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{1, 2, 1})
	out, err := GroupAggregate(e, FromFlat(in), table.All, groupByVal,
		[]AggSpec{{Kind: AggCount}}, GroupAggregateOptions{PadGroups: 10}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.Capacity() != 10 {
		t.Fatalf("padded capacity %d, want 10", out.Capacity())
	}
	rows, _ := out.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d real groups, want 2", len(rows))
	}
}

func TestGroupAggregateTraceOblivious(t *testing.T) {
	// Same |T| and group count, different group shapes → same trace.
	run := func(vals []int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		in := buildFlat(t, e, "in", vals)
		tr.Reset()
		if _, err := GroupAggregate(e, FromFlat(in), table.All, groupByVal,
			[]AggSpec{{Kind: AggCount}}, GroupAggregateOptions{}, "out"); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run([]int64{1, 1, 1, 1, 2, 2, 2, 2})
	b := run([]int64{3, 4, 3, 4, 3, 4, 3, 4})
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("grouped aggregation trace depends on data: %s", d)
	}
}

func TestGroupAggregateFused(t *testing.T) {
	// Fused select+group+aggregate: predicate applied in the same pass.
	e := enclave.MustNew(enclave.Config{})
	in := buildFlat(t, e, "in", []int64{1, 2, 1, 2, 1, 2})
	out, err := GroupAggregate(e, FromFlat(in),
		func(r table.Row) bool { return r[0].AsInt() >= 2 }, // ids 2..5
		groupByVal, []AggSpec{{Kind: AggCount}}, GroupAggregateOptions{}, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := out.Rows()
	if len(rows) != 2 || rows[0][1].AsInt() != 2 || rows[1][1].AsInt() != 2 {
		t.Fatalf("fused grouped agg wrong: %v", rows)
	}
}
