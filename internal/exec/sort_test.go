package exec

import (
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// sortedVals reads the used rows of a table in block order, returning
// the val column — OrderBy's output order.
func sortedVals(t *testing.T, f interface {
	Rows() ([]table.Row, error)
}) []int64 {
	t.Helper()
	rows, err := f.Rows()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[1].AsInt()
	}
	return out
}

func TestOrderBySortsMatchingRowsDummyLast(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	vals := []int64{5, -3, 9, 0, 7, -3, 12, 1, 4, 2}
	in := buildFlat(t, e, "in", vals)
	pred := func(r table.Row) bool { return r[1].AsInt() >= 0 }
	out, err := OrderBy(e, FromFlat(in), pred, 1, false, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.Capacity() != NextPow2(len(vals)) {
		t.Fatalf("capacity = %d, want padded %d", out.Capacity(), NextPow2(len(vals)))
	}
	want := []int64{0, 1, 2, 4, 5, 7, 9, 12}
	if got := sortedVals(t, out); !eqInt64s(got, want) {
		t.Fatalf("ascending sort = %v, want %v", got, want)
	}
	// Dummy-last: the used rows must occupy a prefix of the blocks.
	seenDummy := false
	for i := 0; i < out.Capacity(); i++ {
		_, used, err := out.ReadRow(i)
		if err != nil {
			t.Fatal(err)
		}
		if !used {
			seenDummy = true
		} else if seenDummy {
			t.Fatalf("real row at block %d after a dummy", i)
		}
	}

	desc, err := OrderBy(e, FromFlat(in), pred, 1, true, "out2")
	if err != nil {
		t.Fatal(err)
	}
	wantDesc := []int64{12, 9, 7, 5, 4, 2, 1, 0}
	if got := sortedVals(t, desc); !eqInt64s(got, wantDesc) {
		t.Fatalf("descending sort = %v, want %v", got, wantDesc)
	}
}

func TestOrderByCompactOnly(t *testing.T) {
	// col < 0: no key, just dummy-last compaction.
	e := enclave.MustNew(enclave.Config{})
	vals := []int64{3, 1, 2}
	in := buildFlat(t, e, "in", vals)
	out, err := OrderBy(e, FromFlat(in), func(r table.Row) bool { return r[1].AsInt() != 1 }, -1, false, "out")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := out.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || out.NumRows() != 2 {
		t.Fatalf("compaction kept %d rows (NumRows %d), want 2", len(rows), out.NumRows())
	}
}

func TestLimitFixedOutput(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	vals := []int64{9, 5, 7, 1, 3}
	in := buildFlat(t, e, "in", vals)
	sorted, err := OrderBy(e, FromFlat(in), nil, 1, false, "sorted")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Limit(e, FromFlat(sorted), 3, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.Capacity() != 3 {
		t.Fatalf("limit capacity = %d, want 3", out.Capacity())
	}
	if got := sortedVals(t, out); !eqInt64s(got, []int64{1, 3, 5}) {
		t.Fatalf("limit rows = %v, want [1 3 5]", got)
	}

	// Limit beyond the row count keeps its fixed size, padded.
	big, err := Limit(e, FromFlat(sorted), 7, "big")
	if err != nil {
		t.Fatal(err)
	}
	if big.Capacity() != 7 {
		t.Fatalf("limit capacity = %d, want 7", big.Capacity())
	}
	if got := sortedVals(t, big); !eqInt64s(got, []int64{1, 3, 5, 7, 9}) {
		t.Fatalf("over-limit rows = %v", got)
	}

	zero, err := Limit(e, FromFlat(sorted), 0, "zero")
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedVals(t, zero); len(got) != 0 {
		t.Fatalf("limit 0 returned rows %v", got)
	}
}

// TestOrderByLimitTraceIndependent is the operator-level obliviousness
// claim: for one input size and one limit, the untrusted trace of
// OrderBy+Limit is byte-identical whatever the data and however many
// rows match — there is no stats scan and no |R|-sized intermediate.
func TestOrderByLimitTraceIndependent(t *testing.T) {
	run := func(vals []int64, threshold int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr, Key: make([]byte, 32)})
		in := buildFlat(t, e, "in", vals)
		tr.Reset()
		sorted, err := OrderBy(e, FromFlat(in),
			func(r table.Row) bool { return r[1].AsInt() > threshold }, 1, false, "sorted")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Limit(e, FromFlat(sorted), 4, "out"); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	allMatch := run([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0)
	noneMatch := run([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 100)
	scattered := run([]int64{5, -1, 8, -2, 3, -3, 9, -4, 1, -5}, 0)
	if d := trace.Diff(allMatch, noneMatch); d != "" {
		t.Fatalf("trace depends on match count: %s", d)
	}
	if d := trace.Diff(allMatch, scattered); d != "" {
		t.Fatalf("trace depends on data distribution: %s", d)
	}
}
