// Partition-parallel oblivious operators. ObliDB's operators do work
// determined only by public table sizes, which makes them embarrassingly
// partitionable: split the input's block array into P equal padded
// partitions (storage.Partitioned), run the same oblivious algorithm per
// partition on a pool of worker enclaves, and combine the per-partition
// outputs with a combine step that is itself data-independent — a padded
// concatenation, plus an oblivious compaction (a bitonic sort moving
// dummies last) when the output must shrink to |R|.
//
// Leakage: P and the partition sizes are functions of the public table
// size and configuration, so the adversary learns nothing beyond P
// itself. Each worker's access stream is deterministic given the public
// parameters; what the OS scheduler may reorder is only the interleaving
// BETWEEN workers, which carries no data (trace.MultisetFingerprint is
// the canonical form the tests assert on).
//
// Per-partition output bounds are public too: a partition of S blocks
// holds at most min(S, |R|) of the |R| matching rows, so every partition
// is padded to that bound whatever its true match count.
package exec

import (
	"errors"
	"fmt"
	"sync"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// runWorkers fans fn out over one goroutine per worker and joins them.
func runWorkers(n int, fn func(p int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = fn(p)
		}(p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ErrSerialFallback reports that a parallel variant cannot run within
// the per-worker oblivious memory budget; callers run the serial
// operator instead. The decision depends only on public sizes, so the
// fallback itself leaks nothing new.
var ErrSerialFallback = errors.New("exec: parallel variant needs more oblivious memory; run serial")

// ParallelizableSelect reports whether a SELECT algorithm has a
// partition-parallel variant. Continuous stays serial: partition
// boundaries break the contiguity its single pass depends on.
func ParallelizableSelect(alg SelectAlgorithm) bool {
	return alg != SelectContinuous
}

// ParallelSelect runs one oblivious SELECT partitioned across the worker
// pool. Small parallelizes its scan phase (matches buffered privately in
// enclave memory, emitted serially). The other algorithms run the serial
// operator per partition with output bound min(S, |R|): Large outputs
// concatenate (the serial Large output keeps dummies in place anyway),
// Naive and Hash outputs compact obliviously down to |R|.
func ParallelSelect(e *enclave.Enclave, workers []*enclave.Enclave, in *storage.Flat, pred table.Pred, alg SelectAlgorithm, opts SelectOptions, outName string) (*storage.Flat, error) {
	if !ParallelizableSelect(alg) {
		return nil, fmt.Errorf("exec: select algorithm %s has no parallel variant", alg)
	}
	if err := checkOutSize(opts.OutSize); err != nil {
		return nil, err
	}
	pt, err := storage.NewPartitioned(in, workers)
	if err != nil {
		return nil, err
	}
	if alg == SelectSmall {
		return parallelSelectSmall(e, workers, pt, pred, opts, outName)
	}
	if alg == SelectLarge {
		return parallelSelectLarge(e, workers, pt, pred, opts, outName)
	}
	partOpts := opts
	partOpts.OutSize = min(pt.PartRows(), opts.OutSize)
	partOpts.ContinuousStart = 0

	parts := make([]*storage.Flat, len(workers))
	err = runWorkers(len(workers), func(p int) error {
		out, err := Select(workers[p], pt.Part(p), pred, alg, partOpts, fmt.Sprintf("%s.p%d", outName, p))
		parts[p] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	schema := outputSchema(FromFlat(in), opts.OutSchema)
	return compactParts(e, parts, schema, opts.OutSize, outName)
}

// parallelSelectLarge is the partitioned Large select: one shared
// output sized P·S blocks, with worker p running the serial copy+clear
// passes over its partition directly into output block range
// [p·S, (p+1)·S) through a RangeWriter — no combine pass at all. Padding
// blocks write dummies, so the output shape is a function of (|T|, R, P)
// alone.
func parallelSelectLarge(e *enclave.Enclave, workers []*enclave.Enclave, pt *storage.Partitioned, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(FromFlat(pt.Source()), opts.OutSchema)
	rpb := pt.Source().RowsPerBlock()
	partRows := pt.PartRows()
	out, err := storage.NewFlatGeom(e, outName, schema, max(1, partRows*len(workers)), rpb)
	if err != nil {
		return nil, err
	}
	kept := make([]int, len(workers))
	err = runWorkers(len(workers), func(p int) error {
		view := pt.Part(p)
		w, err := out.RangeWriter(workers[p], p, p*partRows, partRows)
		if err != nil {
			return err
		}
		// Copy pass: one read per partition block, one sealed write per
		// output block.
		err = ForEachRow(view, func(_ int, row table.Row, used bool) error {
			if used {
				return w.Append(applyTransform(opts.Transform, row), true)
			}
			return w.Append(nil, false)
		})
		if err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		// Clearing pass: uniform input read + output read-modify-write
		// per block, keeping only predicate matches (pred evaluated on
		// the re-read input row, as in the serial operator).
		inBuf := view.Schema().NewBlockBuf(rpb)
		for b := 0; b < view.Blocks(); b++ {
			if err := view.ReadBlockInto(b, inBuf); err != nil {
				return err
			}
			err := w.RMWBlock(b, func(plain []byte) error {
				for j := 0; j < rpb; j++ {
					row, used := inBuf.Row(j)
					if used && pred(row) {
						kept[p]++
						continue
					}
					if err := schema.EncodeDummyAt(plain, j); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, k := range kept {
		total += k
	}
	out.BumpRows(total)
	return out, nil
}

// parallelSelectSmall is the partitioned Small select: each worker scans
// its partition once, holding its matches — at most min(S, |R|) rows, a
// public bound it reserves up front — in oblivious memory, and a serial
// emit phase writes the |R| output rows in partition order. Per-worker
// traces are the partition read pass; the emit trace is |R| writes.
// Wall-clock is N/P reads + |R| writes versus the serial N + |R|.
func parallelSelectSmall(e *enclave.Enclave, workers []*enclave.Enclave, pt *storage.Partitioned, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(FromFlat(pt.Source()), opts.OutSchema)
	recSize := schema.RecordSize()
	bound := min(pt.PartRows(), opts.OutSize)
	reserve := bound * recSize
	for _, w := range workers {
		if reserve > w.Available() {
			return nil, ErrSerialFallback
		}
	}
	for p, w := range workers {
		if err := w.Reserve(reserve); err != nil {
			for _, prev := range workers[:p] {
				prev.Release(reserve)
			}
			return nil, ErrSerialFallback
		}
	}
	defer func() {
		for _, w := range workers {
			w.Release(reserve)
		}
	}()

	bufs := make([][]table.Row, len(workers))
	err := runWorkers(len(workers), func(p int) error {
		view := pt.Part(p)
		buf := make([]table.Row, 0, bound)
		err := ForEachRow(view, func(_ int, row table.Row, used bool) error {
			if used && pred(row) {
				if len(buf) >= bound {
					return fmt.Errorf("exec: partition %d found more than %d rows, planner promised %d total", p, bound, opts.OutSize)
				}
				buf = append(buf, applyTransform(opts.Transform, row).Clone())
			}
			return nil
		})
		bufs[p] = buf
		return err
	})
	if err != nil {
		return nil, err
	}

	out, err := storage.NewFlatGeom(e, outName, schema, max(1, opts.OutSize), pt.Source().RowsPerBlock())
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	written := 0
	for _, buf := range bufs {
		for _, row := range buf {
			if written >= opts.OutSize {
				return nil, fmt.Errorf("exec: parallel small select found more rows than the promised %d", opts.OutSize)
			}
			if err := w.Append(row, true); err != nil {
				return nil, err
			}
			written++
		}
	}
	if written < opts.OutSize {
		return nil, fmt.Errorf("exec: parallel small select found %d rows, planner promised %d", written, opts.OutSize)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(written)
	return out, nil
}

// ParallelAggregate computes aggregates with one scan worker per
// partition, merging the partial states inside the enclave. There is no
// combine trace at all — aggregation state never leaves oblivious
// memory — so the speedup is the full scan parallelism.
func ParallelAggregate(workers []*enclave.Enclave, in *storage.Flat, pred table.Pred, specs []AggSpec) ([]table.Value, error) {
	pt, err := storage.NewPartitioned(in, workers)
	if err != nil {
		return nil, err
	}
	partials := make([][]aggState, len(workers))
	err = runWorkers(len(workers), func(p int) error {
		states, err := aggScan(pt.Part(p), pred, specs)
		partials[p] = states
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := partials[0]
	for _, states := range partials[1:] {
		for j := range merged {
			if err := merged[j].merge(&states[j]); err != nil {
				return nil, err
			}
		}
	}
	return aggResults(merged), nil
}

// ParallelGroupAggregate runs the grouped-aggregation scan one worker
// per partition, merges the in-enclave bucket tables, and emits once.
// Like the serial operator it leaks only the number of groups (or the
// padded bound).
func ParallelGroupAggregate(e *enclave.Enclave, workers []*enclave.Enclave, in *storage.Flat, pred table.Pred, groupBy GroupBy, specs []AggSpec, opts GroupAggregateOptions, outName string) (*storage.Flat, error) {
	if groupBy == nil {
		return nil, fmt.Errorf("exec: grouped aggregation needs a group key")
	}
	maxGroups := opts.MaxGroups
	if maxGroups <= 0 {
		maxGroups = in.Capacity()
	}
	// Pre-flight on public sizes only: every worker must be able to hold
	// the WORST-case group table (4 bytes per group, as the serial
	// operator charges) in its budget share. Checking up front — rather
	// than letting a worker exhaust its share mid-scan — keeps the
	// fallback decision data-independent; a mid-scan abort would reveal
	// per-partition group skew, which is finer than the conceded
	// total-group-count leakage.
	for _, w := range workers {
		if 4*maxGroups > w.Available() {
			return nil, ErrSerialFallback
		}
	}
	pt, err := storage.NewPartitioned(in, workers)
	if err != nil {
		return nil, err
	}
	partials := make([]map[string]*group, len(workers))
	reserves := make([]int, len(workers))
	defer func() {
		for p, r := range reserves {
			workers[p].Release(r)
		}
	}()
	err = runWorkers(len(workers), func(p int) error {
		groups, reserved, err := groupScan(workers[p], pt.Part(p), pred, groupBy, specs, maxGroups)
		partials[p], reserves[p] = groups, reserved
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := partials[0]
	for _, m := range partials[1:] {
		if err := mergeGroups(merged, m, specs, maxGroups); err != nil {
			return nil, err
		}
	}
	// Charge the merged bucket table to the parent's oblivious memory,
	// mirroring the serial operator's 4 bytes per group.
	reserve := 4 * len(merged)
	if err := e.Reserve(reserve); err != nil {
		return nil, fmt.Errorf("exec: merged group table exceeded oblivious memory: %w", err)
	}
	defer e.Release(reserve)
	return emitGroups(e, merged, specs, in.Schema(), opts, in.RowsPerBlock(), outName)
}

// ParallelHashJoin partitions the foreign (probe) side across the pool
// and broadcasts the primary (build) side: worker p streams all of t1
// through its own enclave to build hash chunks and probes its partition
// of t2, exactly the serial §4.3 hash join at 1/P the probe width,
// writing one output block — joined or dummy — per comparison directly
// into its disjoint range of the shared output. The output keeps the
// serial operator's chunks×probe slot structure (padded to partition
// boundaries), so no combine pass and no leakage about match counts.
func ParallelHashJoin(e *enclave.Enclave, workers []*enclave.Enclave, t1, t2 *storage.Flat, col1, col2 int, outSchema *table.Schema, outName string) (*storage.Flat, error) {
	pt2, err := storage.NewPartitioned(t2, workers)
	if err != nil {
		return nil, err
	}
	// Chunk sizing mirrors the serial hash join, using the smallest
	// per-worker budget so every worker has the same (public) chunk
	// count and output shape.
	rec1 := t1.Schema().RecordSize()
	avail := workers[0].Available()
	for _, w := range workers[1:] {
		if a := w.Available(); a < avail {
			avail = a
		}
	}
	chunkRows := avail / rec1
	if chunkRows < 1 {
		// A worker's budget share cannot hold even one build row; the
		// serial operator, chunking against the full parent budget,
		// may still succeed. Public-size decision.
		return nil, ErrSerialFallback
	}
	if chunkRows > t1.Capacity() {
		chunkRows = t1.Capacity()
	}
	chunks := (t1.Capacity() + chunkRows - 1) / chunkRows
	partRows := pt2.PartRows()
	per := chunks * partRows // a multiple of R: ranges stay block-aligned
	out, err := storage.NewFlatGeom(e, outName, outSchema, max(1, per*len(workers)), t2.RowsPerBlock())
	if err != nil {
		return nil, err
	}
	matches := make([]int, len(workers))
	reserve := chunkRows * rec1
	err = runWorkers(len(workers), func(p int) error {
		if err := workers[p].Reserve(reserve); err != nil {
			return err
		}
		defer workers[p].Release(reserve)
		bcast := NewRowReader(storage.FullView(t1, workers[p], p))
		view := pt2.Part(p)
		w, err := out.RangeWriter(workers[p], p, p*per, per)
		if err != nil {
			return err
		}
		build := make(map[int64]table.Row, chunkRows)
		probeBuf := view.Schema().NewBlockBuf(view.RowsPerBlock())
		for c := 0; c < chunks; c++ {
			clear(build)
			lo, hi := c*chunkRows, min((c+1)*chunkRows, t1.Capacity())
			for i := lo; i < hi; i++ {
				row, used, err := bcast.Read(i)
				if err != nil {
					return err
				}
				if used {
					build[joinKey(row[col1])] = row.Clone()
				}
			}
			err := ForEachRowInto(view, probeBuf, func(_ int, row table.Row, used bool) error {
				var joined table.Row
				if used {
					if b, ok := build[joinKey(row[col2])]; ok && b[col1].Equal(row[col2]) {
						joined = append(append(make(table.Row, 0, len(b)+len(row)), b...), row...)
					}
				}
				if joined != nil {
					matches[p]++
					return w.Append(joined, true)
				}
				return w.Append(nil, false)
			})
			if err != nil {
				return err
			}
		}
		return w.Flush()
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, m := range matches {
		total += m
	}
	out.BumpRows(total)
	return out, nil
}

// compactParts is the oblivious merge for unsorted padded outputs: copy
// every partition block into one power-of-two scratch array, bitonic-
// sort it by the used flag (real rows first, dummies last — record
// encoding puts the flag in byte 0), and copy the first outSize slots
// into the result. The sort's compare-exchange sequence is a fixed
// function of the (public) padded size, so the compaction reveals
// nothing about which partitions held how many matches.
func compactParts(e *enclave.Enclave, parts []*storage.Flat, schema *table.Schema, outSize int, outName string) (*storage.Flat, error) {
	recSize := schema.RecordSize()
	total := 0
	for _, p := range parts {
		total += p.Capacity()
	}
	if outSize > total {
		return nil, fmt.Errorf("exec: compaction bound %d exceeds %d padded slots", outSize, total)
	}
	n := NextPow2(total)
	st, err := e.NewStore(outName+".compact", n, recSize)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, recSize)
	pos := 0
	for _, p := range parts {
		err := ForEachRow(FromFlat(p), func(_ int, row table.Row, used bool) error {
			if used {
				if err := schema.EncodeRecord(buf, row); err != nil {
					return err
				}
			} else if err := schema.EncodeDummy(buf); err != nil {
				return err
			}
			if err := st.Write(pos, buf); err != nil {
				return err
			}
			pos++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dummy := make([]byte, recSize)
	if err := schema.EncodeDummy(dummy); err != nil {
		return nil, err
	}
	for ; pos < n; pos++ {
		if err := st.Write(pos, dummy); err != nil {
			return nil, err
		}
	}

	// Sort real rows (flag byte 1) ahead of dummies (0); accelerate with
	// in-enclave chunks when oblivious memory allows, like the joins.
	chunk := FloorPow2(e.Available() / recSize)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > n {
		chunk = n
	}
	reserve := chunk * recSize
	if chunk > 1 {
		if err := e.Reserve(reserve); err != nil {
			return nil, err
		}
		defer e.Release(reserve)
	}
	less := func(a, b []byte) bool { return a[0] > b[0] }
	if err := ObliviousSort(st, n, chunk, less); err != nil {
		return nil, err
	}

	rpb := 1
	if len(parts) > 0 {
		rpb = parts[0].RowsPerBlock()
	}
	out, err := storage.NewFlatGeom(e, outName, schema, max(1, outSize), rpb)
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	kept := 0
	for i := 0; i < outSize; i++ {
		plain, err := st.ReadInto(i, buf)
		if err != nil {
			return nil, err
		}
		row, used, err := schema.DecodeRecord(plain)
		if err != nil {
			return nil, err
		}
		if used {
			kept++
		}
		if err := w.Append(row, used); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(kept)
	return out, nil
}
