// Package exec implements ObliDB's oblivious physical operators (§4):
// five SELECT algorithms, one-pass and grouped aggregation, a fused
// select+aggregate, and three join algorithms, plus the oblivious bitonic
// sorting network the sort-merge joins build on.
//
// Every operator's untrusted access pattern depends only on public sizes
// (|T|, |R|, oblivious-memory budget), never on data or query parameters;
// the package tests assert this by trace equality.
package exec

import (
	"fmt"

	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// Input is a readable table: a fixed number of record blocks, each holding
// one (possibly unused) row. *storage.Flat implements it directly; the
// engine adapts index range-scan results to it so every operator runs over
// both storage methods, as §4 requires.
type Input interface {
	// Schema describes the rows.
	Schema() *table.Schema
	// Blocks is the number of record blocks — the public size |T|.
	Blocks() int
	// ReadBlock reads block i (a traced untrusted access).
	ReadBlock(i int) (table.Row, bool, error)
}

// flatInput adapts *storage.Flat to Input.
type flatInput struct{ f *storage.Flat }

func (fi flatInput) Schema() *table.Schema { return fi.f.Schema() }
func (fi flatInput) Blocks() int           { return fi.f.Capacity() }
func (fi flatInput) ReadBlock(i int) (table.Row, bool, error) {
	return fi.f.ReadBlock(i)
}

// FromFlat wraps a flat table as an operator input.
func FromFlat(f *storage.Flat) Input { return flatInput{f} }

// AsFlat recovers the flat table behind an input, when there is one.
// The partition-parallel operators need the table itself (to build a
// Partitioned view over its block array), not just a block reader.
func AsFlat(in Input) (*storage.Flat, bool) {
	fi, ok := in.(flatInput)
	if !ok {
		return nil, false
	}
	return fi.f, true
}

// Transform maps an input row to an output row inside the enclave —
// projections and computed columns. A nil Transform is the identity. It
// never affects access patterns.
type Transform func(table.Row) table.Row

func applyTransform(t Transform, r table.Row) table.Row {
	if t == nil {
		return r
	}
	return t(r)
}

// outputSchema picks the schema of an operator's output table.
func outputSchema(in Input, outSchema *table.Schema) *table.Schema {
	if outSchema != nil {
		return outSchema
	}
	return in.Schema()
}

func checkOutSize(outSize int) error {
	if outSize < 0 {
		return fmt.Errorf("exec: negative output size %d", outSize)
	}
	return nil
}
