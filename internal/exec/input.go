// Package exec implements ObliDB's oblivious physical operators (§4):
// five SELECT algorithms, one-pass and grouped aggregation, a fused
// select+aggregate, and three join algorithms, plus the oblivious bitonic
// sorting network the sort-merge joins build on.
//
// Every operator's untrusted access pattern depends only on public sizes
// (|T| in blocks, the packing factor R, |R|, oblivious-memory budget),
// never on data or query parameters; the package tests assert this by
// trace equality.
package exec

import (
	"fmt"

	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// Input is a readable table: a fixed number of sealed blocks, each
// packing RowsPerBlock records (any of which may be unused). Operators
// iterate block-at-a-time, decoding into caller-owned scratch, so a
// full-table pass costs one untrusted access per block — not per row.
// *storage.Flat implements it directly; the engine adapts index
// range-scan results to it so every operator runs over both storage
// methods, as §4 requires.
type Input interface {
	// Schema describes the rows.
	Schema() *table.Schema
	// Blocks is the number of sealed blocks — the public size |T|.
	Blocks() int
	// RowsPerBlock is R, the (public) packing factor.
	RowsPerBlock() int
	// ReadBlockInto reads block b (one traced untrusted access) and
	// decodes its records into buf, a scratch the caller reuses.
	ReadBlockInto(b int, buf *table.BlockBuf) error
}

// RowSlots returns an input's row capacity: Blocks × RowsPerBlock.
func RowSlots(in Input) int { return in.Blocks() * in.RowsPerBlock() }

// ForEachRow streams every row slot of in, in order, through fn: one
// untrusted read per block, rows decoded into a single reused scratch.
// The row passed to fn is only valid during the call — fn must Clone
// anything it retains. row is nil when the slot is unused.
func ForEachRow(in Input, fn func(i int, row table.Row, used bool) error) error {
	return ForEachRowInto(in, in.Schema().NewBlockBuf(in.RowsPerBlock()), fn)
}

// ForEachRowInto is ForEachRow decoding through a caller-owned scratch,
// for call sites that stream the same input repeatedly (a hash join's
// per-chunk probe passes, a Small select's output passes) and should
// allocate the scratch once, not once per pass.
func ForEachRowInto(in Input, buf *table.BlockBuf, fn func(i int, row table.Row, used bool) error) error {
	r := in.RowsPerBlock()
	for b := 0; b < in.Blocks(); b++ {
		if err := in.ReadBlockInto(b, buf); err != nil {
			return err
		}
		base := b * r
		for j := 0; j < r; j++ {
			row, used := buf.Row(j)
			if err := fn(base+j, row, used); err != nil {
				return err
			}
		}
	}
	return nil
}

// RowReader reads single row slots through a one-block cache: reading
// within the cached block costs no untrusted access, so sequential or
// range reads over a packed input amortize to one access per block.
// Whether a read hits the cache depends only on the sequence of indices
// — which every oblivious operator derives from public sizes — never on
// data.
//
// Contract: the returned rows alias scratch owned by the underlying
// input (a Flat's single decrypt buffer), so a row — and the cache
// itself — is valid only until the next read of that input through ANY
// path, not just this reader. Callers interleaving other reads of the
// same table (a self-join probing the table it builds from) must
// Invalidate before trusting the cache again, and Clone any row they
// retain.
type RowReader struct {
	in  Input
	buf *table.BlockBuf
	cur int // cached block, -1 when empty
}

// NewRowReader creates a reader over in with an empty cache.
func NewRowReader(in Input) *RowReader {
	return &RowReader{in: in, buf: in.Schema().NewBlockBuf(in.RowsPerBlock()), cur: -1}
}

// Read returns row slot i. The row is valid until the next Read — or
// the next read of the underlying input through any other path.
func (r *RowReader) Read(i int) (table.Row, bool, error) {
	rp := r.in.RowsPerBlock()
	b := i / rp
	if b != r.cur {
		if err := r.in.ReadBlockInto(b, r.buf); err != nil {
			return nil, false, err
		}
		r.cur = b
	}
	row, used := r.buf.Row(i % rp)
	return row, used, nil
}

// Invalidate drops the cached block, forcing the next Read to fetch.
// Call it after the underlying input was read through another path.
// Invalidation points must depend only on public sizes (chunk
// boundaries, pass starts), like every other access decision.
func (r *RowReader) Invalidate() { r.cur = -1 }

// flatInput adapts *storage.Flat to Input.
type flatInput struct{ f *storage.Flat }

func (fi flatInput) Schema() *table.Schema { return fi.f.Schema() }
func (fi flatInput) Blocks() int           { return fi.f.NumBlocks() }
func (fi flatInput) RowsPerBlock() int     { return fi.f.RowsPerBlock() }
func (fi flatInput) ReadBlockInto(b int, buf *table.BlockBuf) error {
	return fi.f.ReadBlockInto(b, buf)
}

// FromFlat wraps a flat table as an operator input.
func FromFlat(f *storage.Flat) Input { return flatInput{f} }

// AsFlat recovers the flat table behind an input, when there is one.
// The partition-parallel operators need the table itself (to build a
// Partitioned view over its block array), not just a block reader.
func AsFlat(in Input) (*storage.Flat, bool) {
	fi, ok := in.(flatInput)
	if !ok {
		return nil, false
	}
	return fi.f, true
}

// Transform maps an input row to an output row inside the enclave —
// projections and computed columns. A nil Transform is the identity. It
// never affects access patterns.
type Transform func(table.Row) table.Row

func applyTransform(t Transform, r table.Row) table.Row {
	if t == nil {
		return r
	}
	return t(r)
}

// outputSchema picks the schema of an operator's output table.
func outputSchema(in Input, outSchema *table.Schema) *table.Schema {
	if outSchema != nil {
		return outSchema
	}
	return in.Schema()
}

// outGeom picks an operator output's packing factor: inherit the
// input's. Geometry is public, so propagating it is a deterministic
// function of public configuration.
func outGeom(in Input) int { return in.RowsPerBlock() }

func checkOutSize(outSize int) error {
	if outSize < 0 {
		return fmt.Errorf("exec: negative output size %d", outSize)
	}
	return nil
}
