package exec

import (
	"errors"
	"fmt"
	"hash/fnv"

	"oblidb/internal/enclave"
	"oblidb/internal/oram"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// SelectAlgorithm names the oblivious SELECT variants of §4.1.
type SelectAlgorithm int

const (
	// SelectNaive is the ORAM-per-row baseline the paper includes only for
	// comparison: O(N log N), 4|R| bytes of oblivious memory.
	SelectNaive SelectAlgorithm = iota
	// SelectSmall makes one pass per enclave-buffer of output: O(N²/S).
	SelectSmall
	// SelectLarge copies the table and clears unselected rows: O(N), for
	// outputs that are almost the whole table.
	SelectLarge
	// SelectContinuous handles results forming one contiguous segment in a
	// single pass: O(N). Choosing it leaks contiguity (§4.1) and it can be
	// disabled.
	SelectContinuous
	// SelectHash writes each row (or a dummy) to hashed slots of the
	// output: O(N·C), the general case.
	SelectHash
)

// String names the algorithm as the paper does.
func (a SelectAlgorithm) String() string {
	switch a {
	case SelectNaive:
		return "Naive"
	case SelectSmall:
		return "Small"
	case SelectLarge:
		return "Large"
	case SelectContinuous:
		return "Continuous"
	case SelectHash:
		return "Hash"
	}
	return fmt.Sprintf("SelectAlgorithm(%d)", int(a))
}

// hashSlotsPerPosition is the fixed chain depth of the Hash select:
// "double hashing and ... a fixed-depth list of 5 slots for each position
// in R ... for each block in T, there will be 10 accesses to R" (§4.1).
const hashSlotsPerPosition = 5

// ErrHashOverflow reports that the Hash select could not place a selected
// row within its 10 candidate slots. Azar et al.'s two-choice bound makes
// this astronomically unlikely at the paper's parameters; callers may
// retry with a different salt.
var ErrHashOverflow = errors.New("exec: hash select overflow; retry with a new salt")

// SelectOptions carries the per-query parameters of a SELECT.
type SelectOptions struct {
	// OutSize is |R|, the number of matching rows, supplied by the query
	// planner's stats scan (§5) and already part of the permitted leakage.
	OutSize int
	// Transform optionally projects each selected row (fused
	// select+project, §4.2). The output schema must match.
	Transform Transform
	// OutSchema overrides the output schema when Transform changes the row
	// shape. Nil keeps the input schema.
	OutSchema *table.Schema
	// Salt perturbs the Hash algorithm's hash functions on retry.
	Salt uint64
	// ContinuousStart is the block index of the first matching row, needed
	// only by SelectContinuous (also from the stats scan).
	ContinuousStart int
}

// Select runs one oblivious SELECT algorithm over in, materializing the
// matching rows into a fresh flat table. The trace depends only on
// (algorithm, |T|, |R|, oblivious memory) — never on pred's outcomes.
func Select(e *enclave.Enclave, in Input, pred table.Pred, alg SelectAlgorithm, opts SelectOptions, outName string) (*storage.Flat, error) {
	if err := checkOutSize(opts.OutSize); err != nil {
		return nil, err
	}
	switch alg {
	case SelectNaive:
		return selectNaive(e, in, pred, opts, outName)
	case SelectSmall:
		return selectSmall(e, in, pred, opts, outName)
	case SelectLarge:
		return selectLarge(e, in, pred, opts, outName)
	case SelectContinuous:
		return selectContinuous(e, in, pred, opts, outName)
	case SelectHash:
		return selectHash(e, in, pred, opts, outName)
	}
	return nil, fmt.Errorf("exec: unknown select algorithm %d", alg)
}

// selectNaive is the baseline: one ORAM operation per input row — a write
// of the row if selected, a dummy read otherwise — then an oblivious copy
// of the ORAM contents into flat form (§4.1 "Naive").
func selectNaive(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	capacity := max(1, opts.OutSize)
	o, err := oram.New(e, outName+".naive-oram", capacity, schema.RecordSize(), oram.Options{})
	if err != nil {
		return nil, err
	}
	defer o.Close()
	buf := make([]byte, schema.RecordSize())
	next := 0
	for i := 0; i < in.Blocks(); i++ {
		row, used, err := in.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		if used && pred(row) && next < capacity {
			if err := schema.EncodeRecord(buf, applyTransform(opts.Transform, row)); err != nil {
				return nil, err
			}
			if _, err := o.Access(oram.OpWrite, next, buf); err != nil {
				return nil, err
			}
			next++
		} else {
			if err := o.DummyAccess(); err != nil {
				return nil, err
			}
		}
	}
	out, err := storage.NewFlat(e, outName, schema, capacity)
	if err != nil {
		return nil, err
	}
	for i := 0; i < capacity; i++ {
		data, err := o.Access(oram.OpRead, i, nil)
		if err != nil {
			return nil, err
		}
		if err := out.Store().Write(i, data); err != nil {
			return nil, err
		}
	}
	out.BumpRows(opts.OutSize)
	return out, nil
}

// selectSmall scans the table once per enclave-buffer of output rows
// (§4.1 "Small", Figure 4A). The buffer draws on whatever oblivious
// memory is available; less memory means more passes, never wrong results.
func selectSmall(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	recSize := schema.RecordSize()
	bufRows := e.Available() / recSize
	if bufRows < 1 {
		bufRows = 1
	}
	if bufRows > max(1, opts.OutSize) {
		bufRows = max(1, opts.OutSize)
	}
	reserve := bufRows * recSize
	if err := e.Reserve(reserve); err != nil {
		return nil, err
	}
	defer e.Release(reserve)

	out, err := storage.NewFlat(e, outName, schema, max(1, opts.OutSize))
	if err != nil {
		return nil, err
	}
	buffer := make([]table.Row, 0, bufRows)
	written := 0
	for written < opts.OutSize || written == 0 {
		matchOrdinal := 0
		buffer = buffer[:0]
		for i := 0; i < in.Blocks(); i++ {
			row, used, err := in.ReadBlock(i)
			if err != nil {
				return nil, err
			}
			if used && pred(row) {
				// Store only this pass's window of matches.
				if matchOrdinal >= written && len(buffer) < bufRows {
					buffer = append(buffer, applyTransform(opts.Transform, row).Clone())
				}
				matchOrdinal++
			}
		}
		for _, r := range buffer {
			if err := out.SetRow(written, r, true); err != nil {
				return nil, err
			}
			written++
		}
		if written >= opts.OutSize {
			break
		}
		if len(buffer) == 0 {
			return nil, fmt.Errorf("exec: small select found %d rows, planner promised %d", written, opts.OutSize)
		}
	}
	out.BumpRows(written)
	return out, nil
}

// selectLarge copies the input and clears unselected rows in one more pass
// (§4.1 "Large", Figure 4B). No oblivious memory.
func selectLarge(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	out, err := storage.NewFlat(e, outName, schema, max(1, in.Blocks()))
	if err != nil {
		return nil, err
	}
	// Copy pass: the copy does not depend on the data copied.
	for i := 0; i < in.Blocks(); i++ {
		row, used, err := in.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		if used {
			err = out.SetRow(i, applyTransform(opts.Transform, row), true)
		} else {
			err = out.SetRow(i, nil, false)
		}
		if err != nil {
			return nil, err
		}
	}
	// Clearing pass over the copy: read each block, write back either the
	// same data (dummy) or an unused record.
	kept := 0
	for i := 0; i < in.Blocks(); i++ {
		// Note pred must be evaluated on the original row; with a
		// transform the output row may lack predicate columns, so re-read
		// the input block for the decision while giving the output the
		// uniform read+write.
		row, used, err := in.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		outRow, outUsed, err := out.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		if used && pred(row) {
			if err := out.SetRow(i, outRow, outUsed); err != nil {
				return nil, err
			}
			kept++
		} else {
			if err := out.SetRow(i, nil, false); err != nil {
				return nil, err
			}
		}
	}
	out.BumpRows(kept)
	return out, nil
}

// selectContinuous handles results forming one contiguous run: for the
// i-th input row, write (really or dummily) to output position i mod |R|
// (§4.1 "Continuous", Figure 4C). The run may start anywhere; the output
// is the run rotated by start mod |R|. No oblivious memory.
func selectContinuous(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	capacity := max(1, opts.OutSize)
	out, err := storage.NewFlat(e, outName, schema, capacity)
	if err != nil {
		return nil, err
	}
	kept := 0
	for i := 0; i < in.Blocks(); i++ {
		row, used, err := in.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		j := i % capacity
		// Read the target slot so a dummy write re-encrypts its current
		// contents, indistinguishable from a real write.
		cur, curUsed, err := out.ReadBlock(j)
		if err != nil {
			return nil, err
		}
		if used && pred(row) && kept < opts.OutSize {
			err = out.SetRow(j, applyTransform(opts.Transform, row), true)
			kept++
		} else {
			err = out.SetRow(j, cur, curUsed)
		}
		if err != nil {
			return nil, err
		}
	}
	out.BumpRows(kept)
	return out, nil
}

// selectHash writes each selected row to one of 10 hash-addressed slots of
// the output — 5 chained slots at each of two hash positions — and gives
// every input row the identical 10 read+write accesses (§4.1 "Hash",
// Figure 5). The hashes are over the row's position in T, not its
// contents, so access patterns carry no data. No oblivious memory.
func selectHash(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	positions := max(1, opts.OutSize)
	out, err := storage.NewFlat(e, outName, schema, positions*hashSlotsPerPosition)
	if err != nil {
		return nil, err
	}
	kept := 0
	for i := 0; i < in.Blocks(); i++ {
		row, used, err := in.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		selected := used && pred(row) && kept < opts.OutSize
		placed := false
		p1 := hashPos(uint64(i), 0x9e37+opts.Salt, positions)
		p2 := hashPos(uint64(i), 0x85eb+opts.Salt, positions)
		for _, p := range [2]int{p1, p2} {
			for s := 0; s < hashSlotsPerPosition; s++ {
				slot := p*hashSlotsPerPosition + s
				cur, curUsed, err := out.ReadBlock(slot)
				if err != nil {
					return nil, err
				}
				if selected && !placed && !curUsed {
					if err := out.SetRow(slot, applyTransform(opts.Transform, row), true); err != nil {
						return nil, err
					}
					placed = true
					continue
				}
				if err := out.SetRow(slot, cur, curUsed); err != nil {
					return nil, err
				}
			}
		}
		if selected {
			if !placed {
				return nil, ErrHashOverflow
			}
			kept++
		}
	}
	out.BumpRows(kept)
	return out, nil
}

// hashPos hashes a block index (with salt) to an output position.
func hashPos(i, salt uint64, positions int) int {
	h := fnv.New64a()
	var b [16]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(i >> (8 * k))
		b[8+k] = byte(salt >> (8 * k))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(positions))
}
