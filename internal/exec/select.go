package exec

import (
	"errors"
	"fmt"
	"hash/fnv"

	"oblidb/internal/enclave"
	"oblidb/internal/oram"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// SelectAlgorithm names the oblivious SELECT variants of §4.1.
type SelectAlgorithm int

const (
	// SelectNaive is the ORAM-per-row baseline the paper includes only for
	// comparison: O(N log N), 4|R| bytes of oblivious memory.
	SelectNaive SelectAlgorithm = iota
	// SelectSmall makes one pass per enclave-buffer of output: O(N²/S).
	SelectSmall
	// SelectLarge copies the table and clears unselected rows: O(N), for
	// outputs that are almost the whole table.
	SelectLarge
	// SelectContinuous handles results forming one contiguous segment in a
	// single pass: O(N). Choosing it leaks contiguity (§4.1) and it can be
	// disabled.
	SelectContinuous
	// SelectHash writes each row (or a dummy) to hashed slots of the
	// output: O(N·C), the general case.
	SelectHash
)

// String names the algorithm as the paper does.
func (a SelectAlgorithm) String() string {
	switch a {
	case SelectNaive:
		return "Naive"
	case SelectSmall:
		return "Small"
	case SelectLarge:
		return "Large"
	case SelectContinuous:
		return "Continuous"
	case SelectHash:
		return "Hash"
	}
	return fmt.Sprintf("SelectAlgorithm(%d)", int(a))
}

// hashSlotsPerPosition is the fixed chain depth of the Hash select:
// "double hashing and ... a fixed-depth list of 5 slots for each position
// in R ... for each block in T, there will be 10 accesses to R" (§4.1).
const hashSlotsPerPosition = 5

// ErrHashOverflow reports that the Hash select could not place a selected
// row within its 10 candidate slots. Azar et al.'s two-choice bound makes
// this astronomically unlikely at the paper's parameters; callers may
// retry with a different salt.
var ErrHashOverflow = errors.New("exec: hash select overflow; retry with a new salt")

// SelectOptions carries the per-query parameters of a SELECT.
type SelectOptions struct {
	// OutSize is |R|, the number of matching rows, supplied by the query
	// planner's stats scan (§5) and already part of the permitted leakage.
	OutSize int
	// Transform optionally projects each selected row (fused
	// select+project, §4.2). The output schema must match.
	Transform Transform
	// OutSchema overrides the output schema when Transform changes the row
	// shape. Nil keeps the input schema.
	OutSchema *table.Schema
	// Salt perturbs the Hash algorithm's hash functions on retry.
	Salt uint64
	// ContinuousStart is the block index of the first matching row, needed
	// only by SelectContinuous (also from the stats scan).
	ContinuousStart int
}

// Select runs one oblivious SELECT algorithm over in, materializing the
// matching rows into a fresh flat table. The trace depends only on
// (algorithm, |T|, R, |R|, oblivious memory) — never on pred's outcomes.
func Select(e *enclave.Enclave, in Input, pred table.Pred, alg SelectAlgorithm, opts SelectOptions, outName string) (*storage.Flat, error) {
	if err := checkOutSize(opts.OutSize); err != nil {
		return nil, err
	}
	switch alg {
	case SelectNaive:
		return selectNaive(e, in, pred, opts, outName)
	case SelectSmall:
		return selectSmall(e, in, pred, opts, outName)
	case SelectLarge:
		return selectLarge(e, in, pred, opts, outName)
	case SelectContinuous:
		return selectContinuous(e, in, pred, opts, outName)
	case SelectHash:
		return selectHash(e, in, pred, opts, outName)
	}
	return nil, fmt.Errorf("exec: unknown select algorithm %d", alg)
}

// selectNaive is the baseline: one ORAM operation per input row — a write
// of the row if selected, a dummy read otherwise — then an oblivious copy
// of the ORAM contents into flat form (§4.1 "Naive").
func selectNaive(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	capacity := max(1, opts.OutSize)
	o, err := oram.New(e, outName+".naive-oram", capacity, schema.RecordSize(), oram.Options{})
	if err != nil {
		return nil, err
	}
	defer o.Close()
	buf := make([]byte, schema.RecordSize())
	next := 0
	err = ForEachRow(in, func(i int, row table.Row, used bool) error {
		if used && pred(row) && next < capacity {
			if err := schema.EncodeRecord(buf, applyTransform(opts.Transform, row)); err != nil {
				return err
			}
			if _, err := o.Access(oram.OpWrite, next, buf); err != nil {
				return err
			}
			next++
			return nil
		}
		return o.DummyAccess()
	})
	if err != nil {
		return nil, err
	}
	out, err := storage.NewFlatGeom(e, outName, schema, capacity, outGeom(in))
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	for i := 0; i < capacity; i++ {
		data, err := o.Access(oram.OpRead, i, nil)
		if err != nil {
			return nil, err
		}
		row, used, err := schema.DecodeRecord(data)
		if err != nil {
			return nil, err
		}
		if err := w.Append(row, used); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(opts.OutSize)
	return out, nil
}

// selectSmall scans the table once per enclave-buffer of output rows
// (§4.1 "Small", Figure 4A). The buffer draws on whatever oblivious
// memory is available; less memory means more passes, never wrong results.
// Each pass costs one read per sealed block; the output is written
// sequentially, one seal per output block.
func selectSmall(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	recSize := schema.RecordSize()
	bufRows := e.Available() / recSize
	if bufRows < 1 {
		bufRows = 1
	}
	if bufRows > max(1, opts.OutSize) {
		bufRows = max(1, opts.OutSize)
	}
	reserve := bufRows * recSize
	if err := e.Reserve(reserve); err != nil {
		return nil, err
	}
	defer e.Release(reserve)

	out, err := storage.NewFlatGeom(e, outName, schema, max(1, opts.OutSize), outGeom(in))
	if err != nil {
		return nil, err
	}
	w := out.NewBlockWriter()
	buffer := make([]table.Row, 0, bufRows)
	scanBuf := in.Schema().NewBlockBuf(in.RowsPerBlock())
	written := 0
	for written < opts.OutSize || written == 0 {
		matchOrdinal := 0
		buffer = buffer[:0]
		err := ForEachRowInto(in, scanBuf, func(_ int, row table.Row, used bool) error {
			if used && pred(row) {
				// Store only this pass's window of matches.
				if matchOrdinal >= written && len(buffer) < bufRows {
					buffer = append(buffer, applyTransform(opts.Transform, row).Clone())
				}
				matchOrdinal++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, r := range buffer {
			if err := w.Append(r, true); err != nil {
				return nil, err
			}
			written++
		}
		if written >= opts.OutSize {
			break
		}
		if len(buffer) == 0 {
			return nil, fmt.Errorf("exec: small select found %d rows, planner promised %d", written, opts.OutSize)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	out.BumpRows(written)
	return out, nil
}

// selectLarge copies the input and clears unselected rows in one more pass
// (§4.1 "Large", Figure 4B). No oblivious memory. Both passes run
// block-at-a-time: the copy is one read + one write per block, the
// clearing pass one input read plus one output read-modify-write per
// block.
func selectLarge(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	rpb := outGeom(in)
	out, err := storage.NewFlatGeom(e, outName, schema, max(1, RowSlots(in)), rpb)
	if err != nil {
		return nil, err
	}
	// Copy pass: the copy does not depend on the data copied.
	w := out.NewBlockWriter()
	err = ForEachRow(in, func(_ int, row table.Row, used bool) error {
		if used {
			return w.Append(applyTransform(opts.Transform, row), true)
		}
		return w.Append(nil, false)
	})
	if err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	// Clearing pass over the copy: read each input block and
	// read-modify-write the aligned output block, keeping matches and
	// clearing the rest. Note pred must be evaluated on the original row;
	// with a transform the output row may lack predicate columns, so the
	// input block is re-read for the decision while the output gets the
	// uniform read+write.
	inBuf := in.Schema().NewBlockBuf(in.RowsPerBlock())
	scratch := make([]byte, out.Store().BlockSize())
	kept := 0
	for b := 0; b < in.Blocks(); b++ {
		if err := in.ReadBlockInto(b, inBuf); err != nil {
			return nil, err
		}
		scratch, err = out.Store().RMW(b, scratch, func(plain []byte) error {
			for j := 0; j < in.RowsPerBlock(); j++ {
				row, used := inBuf.Row(j)
				if used && pred(row) {
					kept++
					continue // the copied record stays, re-encrypted
				}
				if err := schema.EncodeDummyAt(plain, j); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	out.BumpRows(kept)
	return out, nil
}

// selectContinuous handles results forming one contiguous run: for the
// i-th input row, write (really or dummily) to output position i mod |R|
// (§4.1 "Continuous", Figure 4C). The run may start anywhere; the output
// is the run rotated by start mod |R|. No oblivious memory. Every input
// row costs one read-modify-write of the target output block — a dummy
// write re-seals the block's current contents, indistinguishable from a
// real write.
func selectContinuous(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	capacity := max(1, opts.OutSize)
	out, err := storage.NewFlatGeom(e, outName, schema, capacity, outGeom(in))
	if err != nil {
		return nil, err
	}
	kept := 0
	err = ForEachRow(in, func(i int, row table.Row, used bool) error {
		j := i % capacity
		match := used && pred(row) && kept < opts.OutSize
		return out.RMWSlot(j, func(plain []byte, slot int) error {
			if match {
				kept++
				return schema.EncodeRecordAt(plain, slot, applyTransform(opts.Transform, row))
			}
			return nil // dummy write: re-seal the slot's current contents
		})
	})
	if err != nil {
		return nil, err
	}
	out.BumpRows(kept)
	return out, nil
}

// selectHash writes each selected row to one of 10 hash-addressed slots of
// the output — 5 chained slots at each of two hash positions — and gives
// every input row the identical 10 read-modify-write accesses (§4.1
// "Hash", Figure 5). The hashes are over the row's position in T, not its
// contents, so access patterns carry no data. No oblivious memory.
func selectHash(e *enclave.Enclave, in Input, pred table.Pred, opts SelectOptions, outName string) (*storage.Flat, error) {
	schema := outputSchema(in, opts.OutSchema)
	positions := max(1, opts.OutSize)
	out, err := storage.NewFlatGeom(e, outName, schema, positions*hashSlotsPerPosition, outGeom(in))
	if err != nil {
		return nil, err
	}
	kept := 0
	err = ForEachRow(in, func(i int, row table.Row, used bool) error {
		selected := used && pred(row) && kept < opts.OutSize
		placed := false
		p1 := hashPos(uint64(i), 0x9e37+opts.Salt, positions)
		p2 := hashPos(uint64(i), 0x85eb+opts.Salt, positions)
		for _, p := range [2]int{p1, p2} {
			for s := 0; s < hashSlotsPerPosition; s++ {
				slot := p*hashSlotsPerPosition + s
				err := out.RMWSlot(slot, func(plain []byte, j int) error {
					if selected && !placed && !schema.UsedAt(plain, j) {
						placed = true
						return schema.EncodeRecordAt(plain, j, applyTransform(opts.Transform, row))
					}
					return nil // dummy write
				})
				if err != nil {
					return err
				}
			}
		}
		if selected {
			if !placed {
				return ErrHashOverflow
			}
			kept++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.BumpRows(kept)
	return out, nil
}

// hashPos hashes a block index (with salt) to an output position.
func hashPos(i, salt uint64, positions int) int {
	h := fnv.New64a()
	var b [16]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(i >> (8 * k))
		b[8+k] = byte(salt >> (8 * k))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(positions))
}
