package exec

import (
	"fmt"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// Operator-level tests at packed geometry (R > 1): every oblivious
// operator must produce correct results over packed inputs and keep its
// trace a function of the public pair (capacity, R) alone.

func packedInput(t *testing.T, e *enclave.Enclave, name string, vals []int64, r int) *storage.Flat {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindInt},
	)
	f, err := storage.NewFlatGeom(e, name, s, len(vals), r)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if err := f.InsertFast(table.Row{table.Int(int64(i)), table.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestPackedSelectAllAlgorithmsCorrect(t *testing.T) {
	vals := make([]int64, 40)
	want := 0
	for i := range vals {
		vals[i] = int64(i % 7)
		if vals[i] >= 4 {
			want++
		}
	}
	pred := func(r table.Row) bool { return r[1].AsInt() >= 4 }
	for _, r := range []int{1, 3, 4, 16} {
		for _, alg := range []SelectAlgorithm{SelectNaive, SelectSmall, SelectLarge, SelectHash} {
			t.Run(fmt.Sprintf("R=%d/%s", r, alg), func(t *testing.T) {
				e := enclave.MustNew(enclave.Config{})
				f := packedInput(t, e, "in", vals, r)
				out, err := Select(e, FromFlat(f), pred, alg, SelectOptions{OutSize: want}, "out")
				if err != nil {
					t.Fatal(err)
				}
				rows, err := out.Rows()
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != want {
					t.Fatalf("R=%d %s: %d rows, want %d", r, alg, len(rows), want)
				}
				if out.RowsPerBlock() != r {
					t.Fatalf("R=%d %s: output geometry %d, want inherited %d", r, alg, out.RowsPerBlock(), r)
				}
			})
		}
	}
}

func TestPackedSelectContinuous(t *testing.T) {
	vals := make([]int64, 24)
	for i := 8; i < 16; i++ {
		vals[i] = 1
	}
	for _, r := range []int{1, 4} {
		e := enclave.MustNew(enclave.Config{})
		f := packedInput(t, e, "in", vals, r)
		out, err := Select(e, FromFlat(f),
			func(rw table.Row) bool { return rw[1].AsInt() == 1 },
			SelectContinuous, SelectOptions{OutSize: 8, ContinuousStart: 8}, "out")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := out.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 8 {
			t.Fatalf("R=%d: continuous returned %d rows, want 8", r, len(rows))
		}
	}
}

func TestPackedJoinAndAggregate(t *testing.T) {
	for _, r := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			e := enclave.MustNew(enclave.Config{})
			pk := packedInput(t, e, "pk", []int64{10, 20, 30, 40, 50, 60, 70, 80}, r)
			fkVals := make([]int64, 20)
			matches := 0
			for i := range fkVals {
				fkVals[i] = int64(i % 10)
				if fkVals[i] < 8 {
					matches++
				}
			}
			fk := packedInput(t, e, "fk", fkVals, r)
			// Join pk.id (0..7, unique) with fk.val (i mod 10).
			for _, alg := range []JoinAlgorithm{JoinHash, JoinOpaque, JoinZeroOM} {
				out, err := Join(e, FromFlat(pk), FromFlat(fk), 0, 1, alg, JoinOptions{}, fmt.Sprintf("j.%s", alg))
				if err != nil {
					t.Fatal(err)
				}
				if out.NumRows() != matches {
					t.Fatalf("R=%d %s: %d joined rows, want %d", r, alg, out.NumRows(), matches)
				}
			}
			vals, err := Aggregate(FromFlat(fk), table.All, []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if vals[0].AsInt() != 20 {
				t.Fatalf("R=%d: COUNT = %v", r, vals[0])
			}
			g, err := GroupAggregate(e, FromFlat(fk), table.All,
				func(rw table.Row) table.Value { return table.Int(rw[1].AsInt() % 2) },
				[]AggSpec{{Kind: AggCount}}, GroupAggregateOptions{}, "g")
			if err != nil {
				t.Fatal(err)
			}
			if g.NumRows() != 2 {
				t.Fatalf("R=%d: %d groups, want 2", r, g.NumRows())
			}
		})
	}
}

func TestPackedOrderByLimit(t *testing.T) {
	for _, r := range []int{1, 4, 16} {
		e := enclave.MustNew(enclave.Config{})
		f := packedInput(t, e, "in", []int64{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}, r)
		sorted, err := OrderBy(e, FromFlat(f), table.All, 1, false, "s")
		if err != nil {
			t.Fatal(err)
		}
		lim, err := Limit(e, FromFlat(sorted), 3, "l")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := lim.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("R=%d: LIMIT produced %d rows, want 3", r, len(rows))
		}
		for i, want := range []int64{0, 1, 2} {
			if rows[i][1].AsInt() != want {
				t.Fatalf("R=%d: sorted row %d = %v, want val %d", r, i, rows[i], want)
			}
		}
	}
}

// TestPackedSelfJoinChunked is the regression test for the hash join's
// row-reader cache over a self-join: both inputs are the SAME Flat, so
// the probe pass clobbers the scratch the build reader's cached rows
// alias. With the cache invalidated at chunk boundaries the join must
// still be exact — including string payloads, which are the values that
// aliasing corrupts.
func TestPackedSelfJoinChunked(t *testing.T) {
	for _, r := range []int{1, 4} {
		// Oblivious memory sized so chunkRows < rows: multiple build
		// chunks, each followed by a full probe pass over the same table.
		e := enclave.MustNew(enclave.Config{ObliviousMemory: 1024})
		s := table.MustSchema(
			table.Column{Name: "id", Kind: table.KindInt},
			table.Column{Name: "name", Kind: table.KindString, Width: 16},
		)
		f, err := storage.NewFlatGeom(e, "t", s, 100, r)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 100; i++ {
			if err := f.InsertFast(table.Row{table.Int(i), table.Str(fmt.Sprintf("name-%02d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		out, err := Join(e, FromFlat(f), FromFlat(f), 0, 0, JoinHash, JoinOptions{}, "self")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := out.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 100 {
			t.Fatalf("R=%d: self-join produced %d rows, want 100", r, len(rows))
		}
		for _, rw := range rows {
			id := rw[0].AsInt()
			want := fmt.Sprintf("name-%02d", id)
			if rw[1].AsString() != want || rw[3].AsString() != want || rw[2].AsInt() != id {
				t.Fatalf("R=%d: self-join row corrupted: %v", r, rw)
			}
		}
	}
}

// packedOpTrace runs select + sort over seed-derived data at geometry r
// and returns the trace; public parameters (capacity, R, |R|, algorithm)
// are fixed across seeds.
func packedOpTrace(t *testing.T, r int, seed int64, alg SelectAlgorithm) *trace.Tracer {
	t.Helper()
	tr := trace.New()
	e := enclave.MustNew(enclave.Config{Tracer: tr, Key: make([]byte, 32)})
	vals := make([]int64, 32)
	for i := range vals {
		if int64(i)%4 == seed%4 {
			vals[i] = 1
		}
	}
	f := packedInput(t, e, "in", vals, r)
	tr.Reset()
	if _, err := Select(e, FromFlat(f),
		func(rw table.Row) bool { return rw[1].AsInt() == 1 }, alg,
		SelectOptions{OutSize: 8}, "out"); err != nil {
		t.Fatal(err)
	}
	if _, err := OrderBy(e, FromFlat(f),
		func(rw table.Row) bool { return rw[1].AsInt() == 1 }, 0, false, "sorted"); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPackedOperatorTracesOblivious(t *testing.T) {
	// For each (R, algorithm): same public sizes, different data →
	// byte-identical traces. Across R the traces differ, because R is
	// part of the public geometry.
	for _, alg := range []SelectAlgorithm{SelectSmall, SelectLarge, SelectHash} {
		var prints [][32]byte
		rs := []int{1, 4, 16}
		for _, r := range rs {
			t.Run(fmt.Sprintf("%s/R=%d", alg, r), func(t *testing.T) {
				a := packedOpTrace(t, r, 1, alg)
				b := packedOpTrace(t, r, 3, alg)
				if d := trace.Diff(a, b); d != "" {
					t.Fatalf("%s at R=%d: trace depends on data: %s", alg, r, d)
				}
				prints = append(prints, a.Fingerprint())
			})
		}
		for i := 1; i < len(prints); i++ {
			if prints[i] == prints[0] {
				t.Fatalf("%s: R=%d and R=%d produced identical traces", alg, rs[0], rs[i])
			}
		}
	}
}

func TestPackedParallelSelectMatchesSerial(t *testing.T) {
	// Partition boundaries align to blocks: parallel results at R > 1
	// match the serial operator's row multiset.
	for _, r := range []int{1, 4} {
		e := enclave.MustNew(enclave.Config{})
		vals := make([]int64, 200)
		want := 0
		for i := range vals {
			vals[i] = int64(i % 5)
			if vals[i] == 2 {
				want++
			}
		}
		f := packedInput(t, e, "in", vals, r)
		workers, err := e.Split(4, nil)
		if err != nil {
			t.Fatal(err)
		}
		pred := func(rw table.Row) bool { return rw[1].AsInt() == 2 }
		for _, alg := range []SelectAlgorithm{SelectSmall, SelectLarge, SelectHash} {
			out, err := ParallelSelect(e, workers, f, pred, alg, SelectOptions{OutSize: want}, fmt.Sprintf("p.%s", alg))
			if err != nil {
				t.Fatal(err)
			}
			if out.NumRows() != want {
				t.Fatalf("R=%d %s: parallel select %d rows, want %d", r, alg, out.NumRows(), want)
			}
		}
	}
}
