package obtree

import (
	"math/rand/v2"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
)

func TestBulkLoadMatchesIncremental(t *testing.T) {
	for _, n := range []int{1, 5, 13, 100, 500} {
		tree := newTree(t, n+50, nil)
		rng := rand.New(rand.NewPCG(uint64(n), 1))
		rows := make([]table.Row, n)
		for i := range rows {
			rows[i] = trow(int64(rng.IntN(200)))
		}
		if err := tree.BulkLoad(rows); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.NumRows() != n {
			t.Fatalf("n=%d: NumRows=%d", n, tree.NumRows())
		}
		got, err := tree.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: range scan found %d rows", n, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i][0].AsInt() < got[i-1][0].AsInt() {
				t.Fatalf("n=%d: rows out of order at %d", n, i)
			}
		}
		// The loaded tree must support all mutations.
		if err := tree.Insert(trow(1000)); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := tree.Lookup(1000); !ok {
			t.Fatal("lookup after bulk load + insert failed")
		}
		k := rows[0][0].AsInt()
		if ok, err := tree.Delete(k); err != nil || !ok {
			t.Fatalf("delete(%d) after bulk load: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestBulkLoadDeleteAll(t *testing.T) {
	tree := newTree(t, 200, nil)
	rows := make([]table.Row, 120)
	for i := range rows {
		rows[i] = trow(int64(i))
	}
	if err := tree.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if ok, err := tree.Delete(int64(i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if tree.NumRows() != 0 || tree.Height() != 0 {
		t.Fatalf("rows=%d height=%d after deleting all", tree.NumRows(), tree.Height())
	}
}

func TestBulkLoadRequiresEmpty(t *testing.T) {
	tree := newTree(t, 50, nil)
	_ = tree.Insert(trow(1))
	if err := tree.BulkLoad([]table.Row{trow(2)}); err == nil {
		t.Fatal("bulk load into non-empty tree accepted")
	}
}

func TestBulkLoadCapacity(t *testing.T) {
	tree := newTree(t, 4, nil)
	rows := make([]table.Row, 5)
	for i := range rows {
		rows[i] = trow(int64(i))
	}
	if err := tree.BulkLoad(rows); err == nil {
		t.Fatal("over-capacity bulk load accepted")
	}
	e := enclave.MustNew(enclave.Config{})
	tree2, err := New(e, "t2", treeSchema(), 0, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	if err := tree2.BulkLoad(nil); err != nil {
		t.Fatalf("empty bulk load: %v", err)
	}
}
