// Package obtree implements ObliDB's indexed storage method (§3.2): a B+
// tree stored inside a Path ORAM, modified so that composing the two leaks
// nothing beyond what the paper concedes.
//
// The modifications from a textbook B+ tree:
//
//   - Every insertion and deletion is padded with dummy ORAM accesses to
//     the worst-case access count for the tree's (public) height, hiding
//     splits and merges.
//   - No parent pointers: splits and merges would otherwise trigger an
//     ORAM write per child to repoint them (§3.2).
//   - Lazy write-back: nodes touched by an operation are held in the
//     enclave and each written to the ORAM once, at the end.
//   - Data lives in record blocks of one row each (the paper fixes leaves
//     to one record per block), addressed by the leaf entries.
//
// Entries are ordered by the composite (key, record id), which makes every
// entry unique even under duplicate keys, so ranges never straddle
// ambiguously and delete targets one specific entry.
package obtree

import (
	"encoding/binary"
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/oram"
	"oblidb/internal/table"
)

// fanout is the maximum number of keys per node. One extra slot in the
// arrays absorbs the transient overflow that triggers a split.
const fanout = 8

const (
	minKeys = fanout / 2
	maxKeys = fanout + 1
)

// Block kinds. A fresh (all-zero) ORAM block decodes as kindFree.
const (
	kindFree     = 0
	kindInternal = 1
	kindLeaf     = 2
	kindRecord   = 3
)

// node is the in-enclave form of a tree node.
//
// Internal: keys[0..n-1] with seqs as separator tiebreakers, ptrs[0..n]
// child node ids. Child i holds entries < (keys[i], seqs[i]); child n
// holds the rest.
//
// Leaf: entries (keys[i], ptrs[i]) for i < n, sorted by composite key;
// ptrs are record block ids (which double as the seq tiebreaker).
// next links the leaf chain (stored +1; 0 = none).
type node struct {
	leaf bool
	n    int
	keys [maxKeys]int64
	seqs [maxKeys]uint32
	ptrs [maxKeys + 1]uint32
	next uint32
}

// seq returns the composite tiebreaker of entry/separator i.
func (nd *node) seq(i int) int64 {
	if nd.leaf {
		return int64(nd.ptrs[i])
	}
	return int64(nd.seqs[i])
}

// cmpKS orders composite keys. seq -1 acts as -infinity for range bounds.
func cmpKS(k1, s1, k2, s2 int64) int {
	switch {
	case k1 < k2:
		return -1
	case k1 > k2:
		return 1
	case s1 < s2:
		return -1
	case s1 > s2:
		return 1
	}
	return 0
}

// nodeBytes is the encoded size of a node.
const nodeBytes = 1 + 2 + 4 + maxKeys*8 + (maxKeys+1)*4 + maxKeys*4

// Tree is an oblivious B+ tree over one Path ORAM.
type Tree struct {
	enc     *enclave.Enclave
	schema  *table.Schema
	keyCol  int
	o       oram.Scheme
	name    string
	root    uint32
	height  int // node levels on the root-leaf path; 0 = empty tree
	rows    int
	free    []uint32
	nextID  uint32
	maxRows int
	ops     int // ORAM accesses in the current operation, for padding
	buf     []byte
}

// Options tunes tree construction.
type Options struct {
	// RecursiveORAM selects the recursive position map (Appendix B).
	RecursiveORAM bool
	// RingORAM stores the tree in a Ring ORAM instead of Path ORAM — the
	// §8 drop-in replacement ("any other ORAM could replace it with no
	// other changes to the system").
	RingORAM bool
}

// New creates an empty oblivious B+ tree indexing rows of the given schema
// by the integer column keyCol, able to hold up to maxRows rows.
func New(e *enclave.Enclave, name string, schema *table.Schema, keyCol, maxRows int, opts Options) (*Tree, error) {
	if keyCol < 0 || keyCol >= schema.NumColumns() {
		return nil, fmt.Errorf("obtree: key column %d out of range", keyCol)
	}
	if k := schema.Col(keyCol).Kind; k != table.KindInt {
		return nil, fmt.Errorf("obtree: key column %q must be INTEGER, is %s", schema.Col(keyCol).Name, k)
	}
	if maxRows <= 0 {
		return nil, fmt.Errorf("obtree: maxRows must be positive, got %d", maxRows)
	}
	blockSize := nodeBytes
	if rs := 1 + schema.RecordSize(); rs > blockSize {
		blockSize = rs
	}
	// One record block per row plus tree nodes (≤ ~N/3 at half occupancy),
	// with slack for transient split allocations.
	capacity := 2*maxRows + 16
	var o oram.Scheme
	var err error
	if opts.RingORAM {
		o, err = oram.NewRing(e, name, capacity, blockSize, oram.Options{Recursive: opts.RecursiveORAM})
	} else {
		o, err = oram.New(e, name, capacity, blockSize, oram.Options{Recursive: opts.RecursiveORAM})
	}
	if err != nil {
		return nil, err
	}
	return &Tree{
		enc:     e,
		schema:  schema,
		keyCol:  keyCol,
		o:       o,
		name:    name,
		maxRows: maxRows,
		buf:     make([]byte, blockSize),
	}, nil
}

// Close releases the tree's ORAM resources.
func (t *Tree) Close() { t.o.Close() }

// Schema returns the row schema.
func (t *Tree) Schema() *table.Schema { return t.schema }

// KeyCol returns the indexed column.
func (t *Tree) KeyCol() int { return t.keyCol }

// NumRows returns the number of rows stored.
func (t *Tree) NumRows() int { return t.rows }

// MaxRows returns the construction-time capacity.
func (t *Tree) MaxRows() int { return t.maxRows }

// Height returns the number of node levels (0 for an empty tree). Height
// is public: it is a function of the (leaked) table size.
func (t *Tree) Height() int { return t.height }

// ORAM exposes the underlying ORAM scheme for size accounting and raw
// scans.
func (t *Tree) ORAM() oram.Scheme { return t.o }

// --- block ids -----------------------------------------------------------

func (t *Tree) alloc() (uint32, error) {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		return id, nil
	}
	if int(t.nextID) >= t.o.Capacity() {
		return 0, fmt.Errorf("obtree: index %q is full (%d rows)", t.name, t.maxRows)
	}
	id := t.nextID
	t.nextID++
	return id, nil
}

func (t *Tree) freeID(id uint32) { t.free = append(t.free, id) }

// --- ORAM I/O with access counting ----------------------------------------

func (t *Tree) readNode(id uint32) (*node, error) {
	t.ops++
	data, err := t.o.Access(oram.OpRead, int(id), nil)
	if err != nil {
		return nil, err
	}
	return decodeNode(data)
}

func (t *Tree) writeNode(id uint32, nd *node) error {
	t.ops++
	encodeNode(t.buf, nd)
	_, err := t.o.Access(oram.OpWrite, int(id), t.buf)
	return err
}

func (t *Tree) readRecord(id uint32) (table.Row, error) {
	t.ops++
	data, err := t.o.Access(oram.OpRead, int(id), nil)
	if err != nil {
		return nil, err
	}
	if data[0] != kindRecord {
		return nil, fmt.Errorf("obtree: block %d is not a record (kind %d)", id, data[0])
	}
	row, used, err := t.schema.DecodeRecord(data[1:])
	if err != nil {
		return nil, err
	}
	if !used {
		return nil, fmt.Errorf("obtree: record block %d is unused", id)
	}
	return row, nil
}

func (t *Tree) writeRecord(id uint32, r table.Row) error {
	t.ops++
	for i := range t.buf {
		t.buf[i] = 0
	}
	t.buf[0] = kindRecord
	if err := t.schema.EncodeRecord(t.buf[1:], r); err != nil {
		return err
	}
	_, err := t.o.Access(oram.OpWrite, int(id), t.buf)
	return err
}

// clearBlock overwrites a freed block with kindFree so linear raw scans
// never resurrect deleted rows.
func (t *Tree) clearBlock(id uint32) error {
	t.ops++
	for i := range t.buf {
		t.buf[i] = 0
	}
	_, err := t.o.Access(oram.OpWrite, int(id), t.buf)
	return err
}

func (t *Tree) dummyAccess() error {
	t.ops++
	return t.o.DummyAccess()
}

// beginOp resets the access counter.
func (t *Tree) beginOp() { t.ops = 0 }

// padTo issues dummy ORAM accesses until the operation has performed
// exactly target accesses — the paper's defense for hiding splits and
// merges (§3.2). target must be a function of public state only.
func (t *Tree) padTo(target int) error {
	if t.ops > target {
		return fmt.Errorf("obtree: operation used %d accesses, exceeding its padding target %d", t.ops, target)
	}
	for t.ops < target {
		if err := t.dummyAccess(); err != nil {
			return err
		}
	}
	return nil
}

// --- node codec ------------------------------------------------------------

func encodeNode(buf []byte, nd *node) {
	for i := range buf {
		buf[i] = 0
	}
	if nd.leaf {
		buf[0] = kindLeaf
	} else {
		buf[0] = kindInternal
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(nd.n))
	binary.LittleEndian.PutUint32(buf[3:7], nd.next)
	off := 7
	for i := 0; i < maxKeys; i++ {
		binary.LittleEndian.PutUint64(buf[off+i*8:], uint64(nd.keys[i]))
	}
	off += maxKeys * 8
	for i := 0; i < maxKeys+1; i++ {
		binary.LittleEndian.PutUint32(buf[off+i*4:], nd.ptrs[i])
	}
	off += (maxKeys + 1) * 4
	for i := 0; i < maxKeys; i++ {
		binary.LittleEndian.PutUint32(buf[off+i*4:], nd.seqs[i])
	}
}

func decodeNode(data []byte) (*node, error) {
	kind := data[0]
	if kind != kindInternal && kind != kindLeaf {
		return nil, fmt.Errorf("obtree: block is not a node (kind %d)", kind)
	}
	nd := &node{leaf: kind == kindLeaf}
	nd.n = int(binary.LittleEndian.Uint16(data[1:3]))
	if nd.n > maxKeys {
		return nil, fmt.Errorf("obtree: corrupt node: %d keys", nd.n)
	}
	nd.next = binary.LittleEndian.Uint32(data[3:7])
	off := 7
	for i := 0; i < maxKeys; i++ {
		nd.keys[i] = int64(binary.LittleEndian.Uint64(data[off+i*8:]))
	}
	off += maxKeys * 8
	for i := 0; i < maxKeys+1; i++ {
		nd.ptrs[i] = binary.LittleEndian.Uint32(data[off+i*4:])
	}
	off += (maxKeys + 1) * 4
	for i := 0; i < maxKeys; i++ {
		nd.seqs[i] = binary.LittleEndian.Uint32(data[off+i*4:])
	}
	return nd, nil
}
