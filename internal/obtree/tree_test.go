package obtree

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/oram"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func treeSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "payload", Kind: table.KindString, Width: 20},
	)
}

func newTree(t *testing.T, maxRows int, tr *trace.Tracer) *Tree {
	t.Helper()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	tree, err := New(e, "idx", treeSchema(), 0, maxRows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return tree
}

func trow(k int64) table.Row {
	return table.Row{table.Int(k), table.Str(fmt.Sprintf("p%d", k))}
}

func TestNewValidation(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	s := treeSchema()
	if _, err := New(e, "i", s, 5, 10, Options{}); err == nil {
		t.Error("out-of-range key column accepted")
	}
	if _, err := New(e, "i", s, 1, 10, Options{}); err == nil {
		t.Error("string key column accepted")
	}
	if _, err := New(e, "i", s, 0, 0, Options{}); err == nil {
		t.Error("zero maxRows accepted")
	}
}

func TestInsertLookup(t *testing.T) {
	tree := newTree(t, 64, nil)
	for i := int64(0); i < 40; i++ {
		if err := tree.Insert(trow(i * 2)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tree.NumRows() != 40 {
		t.Fatalf("NumRows = %d, want 40", tree.NumRows())
	}
	for i := int64(0); i < 40; i++ {
		row, ok, err := tree.Lookup(i * 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || row[0].AsInt() != i*2 {
			t.Fatalf("lookup %d: ok=%v row=%v", i*2, ok, row)
		}
		if _, ok, _ := tree.Lookup(i*2 + 1); ok {
			t.Fatalf("lookup of absent key %d succeeded", i*2+1)
		}
	}
}

func TestLookupEmptyTree(t *testing.T) {
	tree := newTree(t, 8, nil)
	if _, ok, err := tree.Lookup(1); ok || err != nil {
		t.Fatalf("empty lookup: ok=%v err=%v", ok, err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tree := newTree(t, 64, nil)
	for i := 0; i < 20; i++ {
		if err := tree.Insert(table.Row{table.Int(7), table.Str(fmt.Sprintf("d%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tree.RangeScan(7, 7, func(table.Row) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("range scan found %d duplicates, want 20", n)
	}
	for i := 0; i < 20; i++ {
		ok, err := tree.Delete(7)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ok, _ := tree.Delete(7); ok {
		t.Fatal("delete on empty key succeeded")
	}
	if tree.Height() != 0 {
		t.Fatalf("tree height %d after emptying", tree.Height())
	}
}

func TestRangeScanOrdered(t *testing.T) {
	tree := newTree(t, 128, nil)
	perm := rand.New(rand.NewPCG(4, 4)).Perm(100)
	for _, k := range perm {
		if err := tree.Insert(trow(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	n, err := tree.RangeScan(25, 74, func(r table.Row) error {
		got = append(got, r[0].AsInt())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || len(got) != 50 {
		t.Fatalf("scanned %d rows, want 50", n)
	}
	for i, k := range got {
		if k != int64(25+i) {
			t.Fatalf("position %d: key %d, want %d", i, k, 25+i)
		}
	}
	// Empty and inverted ranges.
	if n, _ := tree.RangeScan(1000, 2000, func(table.Row) error { return nil }); n != 0 {
		t.Fatalf("out-of-range scan returned %d", n)
	}
	if n, _ := tree.RangeScan(50, 20, func(table.Row) error { return nil }); n != 0 {
		t.Fatalf("inverted scan returned %d", n)
	}
}

func TestUpdateByKey(t *testing.T) {
	tree := newTree(t, 32, nil)
	for i := int64(0); i < 10; i++ {
		_ = tree.Insert(trow(i))
	}
	ok, err := tree.UpdateByKey(4, func(r table.Row) table.Row {
		r[1] = table.Str("updated")
		return r
	})
	if err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	row, _, _ := tree.Lookup(4)
	if row[1].AsString() != "updated" {
		t.Fatalf("update not applied: %v", row)
	}
	if ok, _ := tree.UpdateByKey(99, func(r table.Row) table.Row { return r }); ok {
		t.Fatal("update of absent key reported success")
	}
	if _, err := tree.UpdateByKey(4, func(r table.Row) table.Row {
		r[0] = table.Int(5)
		return r
	}); err == nil {
		t.Fatal("key-changing update accepted")
	}
}

func TestFullTree(t *testing.T) {
	tree := newTree(t, 4, nil)
	for i := int64(0); i < 4; i++ {
		if err := tree.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Insert(trow(5)); err == nil {
		t.Fatal("insert into full index succeeded")
	}
}

// TestModel runs a random op mix against a sorted-multiset model.
func TestModel(t *testing.T) {
	tree := newTree(t, 300, nil)
	rng := rand.New(rand.NewPCG(11, 13))
	model := map[int64]int{} // key -> count
	live := 0
	for step := 0; step < 3000; step++ {
		k := int64(rng.IntN(60))
		switch op := rng.IntN(4); {
		case op <= 1 && live < 300: // insert
			if err := tree.Insert(trow(k)); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			model[k]++
			live++
		case op == 2: // delete
			ok, err := tree.Delete(k)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if ok != (model[k] > 0) {
				t.Fatalf("step %d: delete(%d) ok=%v, model count %d", step, k, ok, model[k])
			}
			if ok {
				model[k]--
				live--
			}
		default: // lookup
			_, ok, err := tree.Lookup(k)
			if err != nil {
				t.Fatalf("step %d lookup: %v", step, err)
			}
			if ok != (model[k] > 0) {
				t.Fatalf("step %d: lookup(%d) ok=%v, model count %d", step, k, ok, model[k])
			}
		}
	}
	// Final full-content check via range scan.
	var keys []int64
	if _, err := tree.RangeScan(minInt64, maxInt64, func(r table.Row) error {
		keys = append(keys, r[0].AsInt())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var want []int64
	for k, c := range model {
		for i := 0; i < c; i++ {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(keys) != len(want) {
		t.Fatalf("tree has %d rows, model %d", len(keys), len(want))
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("position %d: key %d, model %d", i, keys[i], want[i])
		}
	}
	if tree.NumRows() != live {
		t.Fatalf("NumRows=%d, live=%d", tree.NumRows(), live)
	}
}

func TestScanRawMatchesRangeScan(t *testing.T) {
	tree := newTree(t, 64, nil)
	rng := rand.New(rand.NewPCG(5, 5))
	inserted := map[int64]bool{}
	for i := 0; i < 50; i++ {
		k := int64(rng.IntN(1000))
		if inserted[k] {
			continue
		}
		inserted[k] = true
		if err := tree.Insert(trow(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a few to leave cleared record blocks behind.
	deleted := 0
	for k := range inserted {
		if deleted == 10 {
			break
		}
		if ok, err := tree.Delete(k); err != nil || !ok {
			t.Fatal(err)
		}
		delete(inserted, k)
		deleted++
	}
	got := map[int64]bool{}
	if err := tree.ScanRaw(func(r table.Row) error {
		k := r[0].AsInt()
		if got[k] {
			return fmt.Errorf("duplicate key %d in raw scan", k)
		}
		got[k] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inserted) {
		t.Fatalf("raw scan found %d rows, want %d", len(got), len(inserted))
	}
	for k := range inserted {
		if !got[k] {
			t.Fatalf("raw scan missed key %d", k)
		}
	}
}

// TestFixedAccessCounts is the §3.2 obliviousness property: every
// operation of a given type performs a fixed number of ORAM accesses
// determined only by the (public) tree height — splits, merges, hits, and
// misses are all invisible.
func TestFixedAccessCounts(t *testing.T) {
	tr := trace.New()
	tr.EnableCounts()
	tree := newTree(t, 300, tr)
	perOp := tree.ORAM().(*oram.ORAM).AccessesPerOp()

	counts := func(f func() error) int {
		before := tr.TotalCount()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		return int(tr.TotalCount() - before)
	}

	rng := rand.New(rand.NewPCG(3, 3))
	// Grow the tree, checking every insert at unchanged height costs the
	// same.
	byHeight := map[[2]int]int{}
	for i := 0; i < 260; i++ {
		hPre := tree.Height()
		k := int64(rng.IntN(100))
		n := counts(func() error { return tree.Insert(trow(k)) })
		sig := [2]int{hPre, tree.Height()}
		if prev, seen := byHeight[sig]; seen && prev != n {
			t.Fatalf("insert at height %v cost %d accesses, previously %d", sig, n, prev)
		}
		byHeight[sig] = n
		if n != insertTarget(sig[0], sig[1])*perOp {
			t.Fatalf("insert cost %d, want %d", n, insertTarget(sig[0], sig[1])*perOp)
		}
	}

	h := tree.Height()
	// Lookups: hit, miss, and deep-duplicate all cost the same.
	want := lookupTarget(h) * perOp
	for _, k := range []int64{0, 50, 99, -5, 1000} {
		if n := counts(func() error { _, _, err := tree.Lookup(k); return err }); n != want {
			t.Fatalf("lookup(%d) cost %d accesses, want %d", k, n, want)
		}
	}

	// Updates.
	wantU := updateTarget(h) * perOp
	for _, k := range []int64{0, 99, -7} {
		n := counts(func() error {
			_, err := tree.UpdateByKey(k, func(r table.Row) table.Row { return r })
			return err
		})
		if n != wantU {
			t.Fatalf("update(%d) cost %d accesses, want %d", k, n, wantU)
		}
	}

	// Deletes: hit and miss cost the same while height is unchanged.
	for i := 0; i < 50; i++ {
		hPre := tree.Height()
		k := int64(rng.IntN(120)) // some misses
		n := counts(func() error { _, err := tree.Delete(k); return err })
		if n != deleteTarget(hPre)*perOp {
			t.Fatalf("delete(%d) cost %d accesses, want %d", k, n, deleteTarget(hPre)*perOp)
		}
	}
}

func TestRingORAMTree(t *testing.T) {
	// §8: "any other ORAM could replace it with no other changes to the
	// system" — the full index works over Ring ORAM.
	e := enclave.MustNew(enclave.Config{})
	tree, err := New(e, "idx", treeSchema(), 0, 120, Options{RingORAM: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rows := make([]table.Row, 80)
	for i := range rows {
		rows[i] = trow(int64(i))
	}
	if err := tree.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 80; i += 7 {
		if _, ok, err := tree.Lookup(i); !ok || err != nil {
			t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := int64(0); i < 20; i++ {
		if err := tree.Insert(trow(1000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		if ok, err := tree.Delete(i); !ok || err != nil {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if tree.NumRows() != 90 {
		t.Fatalf("NumRows = %d, want 90", tree.NumRows())
	}
	n, err := tree.RangeScan(minInt64, maxInt64, func(table.Row) error { return nil })
	if err != nil || n != 90 {
		t.Fatalf("range scan found %d rows: %v", n, err)
	}
	seen := 0
	if err := tree.ScanRaw(func(table.Row) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 90 {
		t.Fatalf("raw scan found %d rows, want 90", seen)
	}
}

func TestRecursiveORAMTree(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	tree, err := New(e, "idx", treeSchema(), 0, 64, Options{RecursiveORAM: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	for i := int64(0); i < 30; i++ {
		if err := tree.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 30; i++ {
		if _, ok, err := tree.Lookup(i); !ok || err != nil {
			t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestHeightGrowsPolylog(t *testing.T) {
	tree := newTree(t, 1100, nil)
	for i := int64(0); i < 1000; i++ {
		if err := tree.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	// fanout 8, 1000 rows: height should be ~log_8(1000)+1 ≈ 4-5.
	if h := tree.Height(); h < 3 || h > 6 {
		t.Fatalf("height %d for 1000 rows, want 3-6", h)
	}
}

func TestRowsOrdered(t *testing.T) {
	tree := newTree(t, 32, nil)
	for _, k := range []int64{5, 1, 9, 3, 7} {
		_ = tree.Insert(trow(k))
	}
	rows, err := tree.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5, 7, 9}
	for i, r := range rows {
		if r[0].AsInt() != want[i] {
			t.Fatalf("rows out of order: %v", rows)
		}
	}
}

func TestDeleteAcrossLeafBoundary(t *testing.T) {
	// Force duplicates to straddle leaves, then delete them all: exercises
	// the peek-and-re-descend path.
	tree := newTree(t, 128, nil)
	for i := 0; i < 30; i++ {
		_ = tree.Insert(table.Row{table.Int(1), table.Str("a")})
		_ = tree.Insert(table.Row{table.Int(2), table.Str("b")})
	}
	for i := 0; i < 30; i++ {
		if ok, err := tree.Delete(2); err != nil || !ok {
			t.Fatalf("delete 2 #%d: ok=%v err=%v", i, ok, err)
		}
	}
	n, _ := tree.RangeScan(1, 1, func(table.Row) error { return nil })
	if n != 30 {
		t.Fatalf("%d rows with key 1 remain, want 30", n)
	}
	if tree.NumRows() != 30 {
		t.Fatalf("NumRows=%d, want 30", tree.NumRows())
	}
}
