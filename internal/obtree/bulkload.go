package obtree

import (
	"fmt"
	"sort"

	"oblidb/internal/table"
)

// BulkLoad fills an empty tree bottom-up: records first, then leaf nodes
// at ~3/4 occupancy, then each internal level, one ORAM write per block.
// This is the standard initial-load path — the access pattern is a fixed
// function of the row count (every block of a freshly built tree is
// written exactly once in a deterministic order), so it leaks only the
// table size, like everything else. It avoids the per-insert worst-case
// padding that makes incremental loads O(N log² N).
func (t *Tree) BulkLoad(rows []table.Row) error {
	if t.height != 0 || t.rows != 0 {
		return fmt.Errorf("obtree: BulkLoad requires an empty tree")
	}
	if len(rows) == 0 {
		return nil
	}
	if len(rows) > t.maxRows {
		return fmt.Errorf("obtree: %d rows exceed capacity %d", len(rows), t.maxRows)
	}
	for _, r := range rows {
		if err := t.schema.ValidateRow(r); err != nil {
			return err
		}
	}
	// Sort by key; record ids are assigned in sorted order so composite
	// (key, recID) order matches slice order.
	sorted := make([]table.Row, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i][t.keyCol].AsInt() < sorted[j][t.keyCol].AsInt()
	})

	type entry struct {
		key int64
		seq uint32 // record id (leaf) or separator seq (internal)
		ptr uint32 // child/record id
	}
	entries := make([]entry, len(sorted))
	for i, r := range sorted {
		recID, err := t.alloc()
		if err != nil {
			return err
		}
		if err := t.writeRecord(recID, r); err != nil {
			return err
		}
		entries[i] = entry{key: r[t.keyCol].AsInt(), seq: recID, ptr: recID}
	}

	const fill = fanout * 3 / 4 // leave room for future inserts
	level := 0
	leaf := true
	for {
		numNodes := (len(entries) + fill - 1) / fill
		if len(entries) <= fanout {
			numNodes = 1
		}
		// Pre-allocate ids so leaves can set next pointers.
		ids := make([]uint32, numNodes)
		for i := range ids {
			id, err := t.alloc()
			if err != nil {
				return err
			}
			ids[i] = id
		}
		parents := make([]entry, 0, numNodes)
		for i := 0; i < numNodes; i++ {
			lo := i * len(entries) / numNodes
			hi := (i + 1) * len(entries) / numNodes
			nd := &node{leaf: leaf}
			if leaf {
				nd.n = hi - lo
				for j, e := range entries[lo:hi] {
					nd.keys[j] = e.key
					nd.seqs[j] = e.seq
					nd.ptrs[j] = e.ptr
				}
				if i+1 < numNodes {
					nd.next = ids[i+1] + 1
				}
			} else {
				// Internal: first child has no separator; separators come
				// from each subsequent child's leftmost composite key.
				nd.n = hi - lo - 1
				nd.ptrs[0] = entries[lo].ptr
				for j, e := range entries[lo+1 : hi] {
					nd.keys[j] = e.key
					nd.seqs[j] = e.seq
					nd.ptrs[j+1] = e.ptr
				}
			}
			if err := t.writeNode(ids[i], nd); err != nil {
				return err
			}
			// This node's leftmost composite key becomes its parent
			// separator.
			parents = append(parents, entry{key: entries[lo].key, seq: entries[lo].seq, ptr: ids[i]})
		}
		level++
		if numNodes == 1 {
			t.root = ids[0]
			t.height = level
			t.rows = len(rows)
			return nil
		}
		entries = parents
		leaf = false
	}
}
