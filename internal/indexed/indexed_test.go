package indexed

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func tblSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "payload", Kind: table.KindString, Width: 20},
	)
}

func newTable(t *testing.T, maxRows int, opts Options, tr *trace.Tracer) *Table {
	t.Helper()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	tbl, err := New(e, "t", tblSchema(), 0, maxRows, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Close)
	return tbl
}

func trow(k int64) table.Row {
	return table.Row{table.Int(k), table.Str(fmt.Sprintf("p%d", k))}
}

func TestNewValidation(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	s := tblSchema()
	if _, err := New(e, "i", s, 5, 10, Options{}); err == nil {
		t.Error("out-of-range key column accepted")
	}
	if _, err := New(e, "i", s, 1, 10, Options{}); err == nil {
		t.Error("string key column accepted")
	}
	if _, err := New(e, "i", s, 0, 0, Options{}); err == nil {
		t.Error("zero maxRows accepted")
	}
	if _, err := New(e, "i", s, 0, 10, Options{RowsPerBlock: -1}); err == nil {
		t.Error("negative rows per block accepted")
	}
}

func TestInsertLookupAcrossPackings(t *testing.T) {
	for _, r := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			tbl := newTable(t, 64, Options{RowsPerBlock: r}, nil)
			for i := int64(0); i < 40; i++ {
				if err := tbl.Insert(trow(i * 2)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if tbl.NumRows() != 40 {
				t.Fatalf("NumRows = %d, want 40", tbl.NumRows())
			}
			for i := int64(0); i < 40; i++ {
				row, ok, err := tbl.Lookup(i * 2)
				if err != nil || !ok {
					t.Fatalf("lookup %d: ok=%v err=%v", i*2, ok, err)
				}
				if row[0].AsInt() != i*2 {
					t.Fatalf("lookup %d returned key %d", i*2, row[0].AsInt())
				}
			}
			for _, miss := range []int64{-1, 1, 79, 100} {
				if _, ok, err := tbl.Lookup(miss); err != nil || ok {
					t.Fatalf("lookup miss %d: ok=%v err=%v", miss, ok, err)
				}
			}
		})
	}
}

func TestLookupInto(t *testing.T) {
	tbl := newTable(t, 64, Options{RowsPerBlock: 4}, nil)
	for i := int64(0); i < 30; i++ {
		if err := tbl.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	dst := make(table.Row, 2)
	for i := int64(0); i < 30; i++ {
		ok, err := tbl.LookupInto(i, dst)
		if err != nil || !ok {
			t.Fatalf("LookupInto(%d): ok=%v err=%v", i, ok, err)
		}
		if dst[0].AsInt() != i || dst[1].AsString() != fmt.Sprintf("p%d", i) {
			t.Fatalf("LookupInto(%d) = %v", i, dst)
		}
	}
	if ok, err := tbl.LookupInto(99, dst); err != nil || ok {
		t.Fatalf("LookupInto miss: ok=%v err=%v", ok, err)
	}
	if _, err := tbl.LookupInto(1, make(table.Row, 3)); err == nil {
		t.Fatal("wrong-width destination accepted")
	}
}

// TestModel runs a random op mix against a map model, exercising splits,
// merges, duplicates, and slot reuse at a small packing factor.
func TestModel(t *testing.T) {
	tbl := newTable(t, 220, Options{RowsPerBlock: 3}, nil)
	rng := rand.New(rand.NewPCG(42, 42))
	counts := map[int64]int{}
	live := 0
	for op := 0; op < 1500; op++ {
		k := int64(rng.IntN(60))
		switch {
		case rng.IntN(3) != 0 && live < 200:
			if err := tbl.Insert(trow(k)); err != nil {
				t.Fatalf("op %d insert(%d): %v", op, k, err)
			}
			counts[k]++
			live++
		case rng.IntN(2) == 0:
			ok, err := tbl.Delete(k)
			if err != nil {
				t.Fatalf("op %d delete(%d): %v", op, k, err)
			}
			if ok != (counts[k] > 0) {
				t.Fatalf("op %d delete(%d) = %v, model has %d", op, k, ok, counts[k])
			}
			if ok {
				counts[k]--
				live--
			}
		default:
			row, ok, err := tbl.Lookup(k)
			if err != nil {
				t.Fatalf("op %d lookup(%d): %v", op, k, err)
			}
			if ok != (counts[k] > 0) {
				t.Fatalf("op %d lookup(%d) = %v, model has %d", op, k, ok, counts[k])
			}
			if ok && row[0].AsInt() != k {
				t.Fatalf("op %d lookup(%d) returned key %d", op, k, row[0].AsInt())
			}
		}
		if tbl.NumRows() != live {
			t.Fatalf("op %d: NumRows = %d, model has %d", op, tbl.NumRows(), live)
		}
	}
	rows, err := tbl.Rows()
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int{}
	for _, r := range rows {
		got[r[0].AsInt()]++
	}
	for k, n := range counts {
		if got[k] != n {
			t.Fatalf("key %d: table has %d rows, model has %d", k, got[k], n)
		}
	}
}

func TestUpdateByKey(t *testing.T) {
	tbl := newTable(t, 64, Options{RowsPerBlock: 4}, nil)
	for i := int64(0); i < 20; i++ {
		if err := tbl.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tbl.UpdateByKey(7, func(r table.Row) table.Row {
		r[1] = table.Str("updated")
		return r
	})
	if err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	row, _, err := tbl.Lookup(7)
	if err != nil || row[1].AsString() != "updated" {
		t.Fatalf("after update: row=%v err=%v", row, err)
	}
	if _, err := tbl.UpdateByKey(7, func(r table.Row) table.Row {
		r[0] = table.Int(8)
		return r
	}); err == nil {
		t.Fatal("key change accepted")
	}
	if ok, err := tbl.UpdateByKey(99, func(r table.Row) table.Row { return r }); err != nil || ok {
		t.Fatalf("update miss: ok=%v err=%v", ok, err)
	}
}

func TestRangeScanOrdered(t *testing.T) {
	tbl := newTable(t, 128, Options{RowsPerBlock: 4}, nil)
	perm := rand.New(rand.NewPCG(9, 9)).Perm(100)
	for _, k := range perm {
		if err := tbl.Insert(trow(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	n, err := tbl.RangeScan(25, 74, func(r table.Row) error {
		got = append(got, r[0].AsInt())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || len(got) != 50 {
		t.Fatalf("range returned %d rows (count %d), want 50", len(got), n)
	}
	for i, k := range got {
		if k != int64(25+i) {
			t.Fatalf("position %d: key %d, want %d", i, k, 25+i)
		}
	}
}

func TestScanRawMatchesRangeScan(t *testing.T) {
	tbl := newTable(t, 128, Options{RowsPerBlock: 4}, nil)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 90; i++ {
		if err := tbl.Insert(trow(int64(rng.IntN(40)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := tbl.Delete(int64(rng.IntN(40))); err != nil {
			t.Fatal(err)
		}
	}
	want := map[int64]int{}
	if _, err := tbl.RangeScan(minInt64, maxInt64, func(r table.Row) error {
		want[r[0].AsInt()]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := map[int64]int{}
	if err := tbl.ScanRaw(func(r table.Row) error {
		got[r[0].AsInt()]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ScanRaw saw %d keys, RangeScan %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %d: ScanRaw %d, RangeScan %d", k, got[k], n)
		}
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	mk := func(bulk bool) []table.Row {
		tbl := newTable(t, 200, Options{RowsPerBlock: 4}, nil)
		rng := rand.New(rand.NewPCG(77, 77))
		var rows []table.Row
		for i := 0; i < 150; i++ {
			rows = append(rows, trow(int64(rng.IntN(500))))
		}
		if bulk {
			if err := tbl.BulkLoad(rows); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, r := range rows {
				if err := tbl.Insert(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		out, err := tbl.Rows()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(true), mk(false)
	if len(a) != len(b) {
		t.Fatalf("bulk %d rows, incremental %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0].AsInt() != b[i][0].AsInt() {
			t.Fatalf("row %d: bulk key %d, incremental %d", i, a[i][0].AsInt(), b[i][0].AsInt())
		}
	}
	// Bulk-loaded tables must keep absorbing mutations.
	tbl := newTable(t, 200, Options{RowsPerBlock: 4}, nil)
	var rows []table.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, trow(i))
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	for i := int64(100); i < 140; i++ {
		if err := tbl.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 30; i++ {
		if ok, err := tbl.Delete(i * 2); err != nil || !ok {
			t.Fatalf("delete %d after bulk: ok=%v err=%v", i*2, ok, err)
		}
	}
	if tbl.NumRows() != 110 {
		t.Fatalf("NumRows = %d, want 110", tbl.NumRows())
	}
}

func TestFullTable(t *testing.T) {
	tbl := newTable(t, 10, Options{RowsPerBlock: 4}, nil)
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Insert(trow(10)); err == nil {
		t.Fatal("insert into full table accepted")
	}
	// Delete + insert reuses the freed slot.
	if _, err := tbl.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(trow(99)); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

// fixedKey pins the AES key so two enclaves seal identically-shaped state
// with the same randomness.
func fixedKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i*7 + 1)
	}
	return k
}

func tracedTable(t *testing.T, n int, keyOf func(int) int64, payload string) (*Table, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	tr.Enable()
	e := enclave.MustNew(enclave.Config{Key: fixedKey(), Seed: 11, Tracer: tr})
	tbl, err := New(e, "t", tblSchema(), 0, n, Options{RowsPerBlock: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Close)
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = table.Row{table.Int(keyOf(i)), table.Str(payload)}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return tbl, tr
}

// TestSameShapeTracesIdentical pins the indexed path's obliviousness on
// satellite-1 seeding: two tables with the same public shape (row count,
// op sequence, lookup ranks) but different keys and payloads produce
// byte-identical untrusted access traces.
func TestSameShapeTracesIdentical(t *testing.T) {
	const n = 600
	a, trA := tracedTable(t, n, func(i int) int64 { return int64(2 * i) }, "aaaa")
	b, trB := tracedTable(t, n, func(i int) int64 { return int64(3*i + 1) }, "zz")

	if fa, fb := trA.Fingerprint(), trB.Fingerprint(); fa != fb {
		t.Fatalf("bulk-load traces differ for same-shape tables:\n%s", trace.Diff(trA, trB))
	}
	// Same-rank point lookups: the descent visits the same node ids, the
	// record access the same block, the ORAM the same (seeded) paths.
	for _, rank := range []int{0, 1, 57, 300, 599} {
		trA.Reset()
		trB.Reset()
		if _, ok, err := a.Lookup(int64(2 * rank)); err != nil || !ok {
			t.Fatalf("lookup rank %d in a: ok=%v err=%v", rank, ok, err)
		}
		if _, ok, err := b.Lookup(int64(3*rank + 1)); err != nil || !ok {
			t.Fatalf("lookup rank %d in b: ok=%v err=%v", rank, ok, err)
		}
		if fa, fb := trA.Fingerprint(), trB.Fingerprint(); fa != fb {
			t.Fatalf("lookup traces differ at rank %d:\n%s", rank, trace.Diff(trA, trB))
		}
	}
}

// TestLookupCostGrowsLogarithmically pins the indexed method's asymptotic
// advantage: the untrusted block accesses of one point lookup grow like
// (height+2)·AccessesPerOp — logarithmically in the table size — while a
// flat scan grows linearly.
func TestLookupCostGrowsLogarithmically(t *testing.T) {
	cost := func(n int) float64 {
		tr := trace.New()
		tr.EnableCounts()
		e := enclave.MustNew(enclave.Config{Key: fixedKey(), Seed: 11, Tracer: tr})
		tbl, err := New(e, "t", tblSchema(), 0, n, Options{RowsPerBlock: 4, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		defer tbl.Close()
		rows := make([]table.Row, n)
		for i := range rows {
			rows[i] = table.Row{table.Int(int64(i)), table.Str("x")}
		}
		if err := tbl.BulkLoad(rows); err != nil {
			t.Fatal(err)
		}
		// Average over a multiple of the eviction rate so scheduled
		// evictions amortize identically at every size.
		const reps = 64
		before := tr.TotalCount()
		for i := 0; i < reps; i++ {
			if _, ok, err := tbl.Lookup(int64((i * 97) % n)); err != nil || !ok {
				t.Fatalf("lookup: ok=%v err=%v", ok, err)
			}
		}
		return float64(tr.TotalCount()-before) / reps
	}

	sizes := []int{200, 3200, 12800}
	costs := make([]float64, len(sizes))
	for i, n := range sizes {
		costs[i] = cost(n)
		if costs[i] <= 0 {
			t.Fatalf("size %d: nonpositive lookup cost %v", n, costs[i])
		}
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[i-1]*0.8 {
			t.Fatalf("lookup cost shrank with size: %v at %v", costs, sizes)
		}
	}
	// 64× more rows must cost far less than 64× more accesses — allow up
	// to 6×, generous for (h+2)·AccessesPerOp growth.
	if ratio := costs[len(costs)-1] / costs[0]; ratio > 6 {
		t.Fatalf("lookup cost grew %0.1f× over a 64× size increase (%v at %v)", ratio, costs, sizes)
	}
}

// TestLookupIntoZeroAlloc pins the indexed point-lookup hot path: after
// warmup, LookupInto allocates nothing — the ORAM access, padding dummies,
// node decoding, and record decoding all run in reused scratch.
func TestLookupIntoZeroAlloc(t *testing.T) {
	e := enclave.MustNew(enclave.Config{Key: fixedKey(), Seed: 11})
	tbl, err := New(e, "t", tblSchema(), 0, 500, Options{RowsPerBlock: 8, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	rows := make([]table.Row, 500)
	for i := range rows {
		rows[i] = table.Row{table.Int(int64(i)), table.Str("payload")}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	dst := make(table.Row, 2)
	// Warm every scratch buffer and a few eviction cycles.
	for i := 0; i < 64; i++ {
		if _, err := tbl.LookupInto(int64(i%500), dst); err != nil {
			t.Fatal(err)
		}
	}
	k := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		ok, err := tbl.LookupInto(k%500, dst)
		if err != nil || !ok {
			t.Fatalf("LookupInto(%d): ok=%v err=%v", k%500, ok, err)
		}
		k += 37
	})
	if allocs != 0 {
		t.Fatalf("LookupInto allocates %v times per run, want 0", allocs)
	}
}

func TestRecursiveORAMTable(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	tbl, err := New(e, "t", tblSchema(), 0, 120, Options{RowsPerBlock: 4, RecursiveORAM: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if tbl.PosMapStore() == nil {
		t.Fatal("recursive table has no untrusted position-map store")
	}
	for i := int64(0); i < 80; i++ {
		if err := tbl.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 80; i++ {
		if _, ok, err := tbl.Lookup(i); err != nil || !ok {
			t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestHeightGrowsPolylog sanity-checks the public height function.
func TestHeightGrowsPolylog(t *testing.T) {
	tbl := newTable(t, 3000, Options{RowsPerBlock: 8}, nil)
	rows := make([]table.Row, 3000)
	for i := range rows {
		rows[i] = trow(int64(i))
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if h := tbl.Height(); h < 3 || h > 7 {
		t.Fatalf("height %d for 3000 rows at fanout %d", h, fanout)
	}
}
