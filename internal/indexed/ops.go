package indexed

import (
	"fmt"

	"oblidb/internal/table"
)

// pathEntry records one node on a root-to-leaf descent together with its
// position in its parent, which splits and merges need.
type pathEntry struct {
	id          uint32
	nd          *node
	idxInParent int // -1 for the root
}

// dirtySet is an insertion-ordered set of modified nodes awaiting
// write-back. Order matters: flushing in a deterministic order keeps the
// physical access trace of two same-shape operations identical, which the
// trace-pinning tests (and the obliviousness argument they check) rely on.
type dirtySet struct {
	ids []uint32
	nds []*node
}

func (d *dirtySet) reset() {
	d.ids = d.ids[:0]
	d.nds = d.nds[:0]
}

func (d *dirtySet) put(id uint32, nd *node) {
	for i, x := range d.ids {
		if x == id {
			d.nds[i] = nd
			return
		}
	}
	d.ids = append(d.ids, id)
	d.nds = append(d.nds, nd)
}

func (d *dirtySet) del(id uint32) {
	for i, x := range d.ids {
		if x == id {
			d.ids = append(d.ids[:i], d.ids[i+1:]...)
			d.nds = append(d.nds[:i], d.nds[i+1:]...)
			return
		}
	}
}

func (t *Table) flushDirty() error {
	for i, id := range t.dirty.ids {
		if err := t.writeNode(id, t.dirty.nds[i]); err != nil {
			return err
		}
	}
	return nil
}

// descend walks from the root to the leaf whose range contains the
// composite key (key, seq), reading height nodes. The returned slice is
// scratch, valid until the next descend.
func (t *Table) descend(key, seq int64) ([]pathEntry, error) {
	t.path = t.path[:0]
	id := t.root
	idxInParent := -1
	for level := 0; level < t.height; level++ {
		nd, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		t.path = append(t.path, pathEntry{id: id, nd: nd, idxInParent: idxInParent})
		if nd.leaf {
			break
		}
		i := 0
		for i < nd.n && cmpKS(key, seq, nd.keys[i], nd.seq(i)) >= 0 {
			i++
		}
		idxInParent = i
		id = nd.ptrs[i]
	}
	if len(t.path) == 0 || !t.path[len(t.path)-1].nd.leaf {
		return nil, fmt.Errorf("indexed: descent did not reach a leaf (height %d)", t.height)
	}
	return t.path, nil
}

// lowerBound returns the first entry index in leaf nd with composite key
// >= (key, seq), possibly nd.n.
func lowerBound(nd *node, key, seq int64) int {
	i := 0
	for i < nd.n && cmpKS(nd.keys[i], nd.seq(i), key, seq) < 0 {
		i++
	}
	return i
}

// lookupTarget is the fixed access count of a point lookup at height h:
// h path reads, at most one next-leaf hop, one record-block read.
func lookupTarget(h int) int { return h + 2 }

// lookupEntry locates the first entry with the given key, returning its
// rowID. The access count so far is h or h+1; callers pad.
func (t *Table) lookupEntry(key int64) (uint32, bool, error) {
	path, err := t.descend(key, -1)
	if err != nil {
		return 0, false, err
	}
	leaf := path[len(path)-1].nd
	i := lowerBound(leaf, key, -1)
	if i == leaf.n {
		// The matching entry, if any, is the first entry of the next leaf.
		if leaf.next == 0 {
			return 0, false, nil
		}
		nxt, err := t.readNode(leaf.next - 1)
		if err != nil {
			return 0, false, err
		}
		leaf, i = nxt, 0
		if leaf.n == 0 {
			return 0, false, nil
		}
	}
	if leaf.keys[i] != key {
		return 0, false, nil
	}
	return leaf.ptrs[i], true, nil
}

// Lookup returns the first row whose key equals key, decoded into fresh
// memory. Every lookup at the same tree height performs exactly the same
// number of ORAM accesses.
func (t *Table) Lookup(key int64) (table.Row, bool, error) {
	t.beginOp()
	var row table.Row
	rowID, ok, err := t.lookupEntry(key)
	if err != nil {
		return nil, false, err
	}
	if ok {
		if row, err = t.readRecord(rowID); err != nil {
			return nil, false, err
		}
	}
	if err := t.padTo(lookupTarget(t.height)); err != nil {
		return nil, false, err
	}
	return row, ok, nil
}

// LookupInto is Lookup decoding the row into dst without allocating.
// String values alias an internal buffer and are valid only until the
// next operation on this table. Same fixed access count as Lookup.
func (t *Table) LookupInto(key int64, dst table.Row) (bool, error) {
	if len(dst) != t.schema.NumColumns() {
		return false, fmt.Errorf("indexed: LookupInto row has %d columns, schema has %d", len(dst), t.schema.NumColumns())
	}
	t.beginOp()
	rowID, ok, err := t.lookupEntry(key)
	if err != nil {
		return false, err
	}
	if ok {
		if err := t.readRecordInto(dst, rowID); err != nil {
			return false, err
		}
	}
	if err := t.padTo(lookupTarget(t.height)); err != nil {
		return false, err
	}
	return ok, nil
}

// insertTarget is the worst-case access count of an insertion when the
// tree height moves from hPre to hPost: hPre path reads + 1 record write +
// 2 node writes per split level + a new root.
func insertTarget(hPre, hPost int) int {
	h := hPre
	if hPost > h {
		h = hPost
	}
	return 3*h + 3
}

// Insert adds a row, padding to the worst-case access count so splits are
// invisible.
func (t *Table) Insert(r table.Row) error {
	if err := t.schema.ValidateRow(r); err != nil {
		return err
	}
	if t.rows >= t.maxRows {
		return fmt.Errorf("indexed: table %q is full (%d rows)", t.name, t.maxRows)
	}
	t.beginOp()
	hPre := t.height
	if err := t.insertInner(r); err != nil {
		return err
	}
	t.rows++
	return t.padTo(insertTarget(hPre, t.height))
}

func (t *Table) insertInner(r table.Row) error {
	key := r[t.keyCol].AsInt()
	rowID, err := t.allocRow()
	if err != nil {
		return err
	}
	if err := t.writeRecord(rowID, r); err != nil {
		return err
	}

	if t.height == 0 {
		leafID, err := t.allocNode()
		if err != nil {
			return err
		}
		nd := t.newNode()
		nd.leaf = true
		nd.n = 1
		nd.keys[0] = key
		nd.ptrs[0] = rowID
		nd.seqs[0] = rowID
		if err := t.writeNode(leafID, nd); err != nil {
			return err
		}
		t.root = leafID
		t.height = 1
		return nil
	}

	path, err := t.descend(key, int64(rowID))
	if err != nil {
		return err
	}
	t.dirty.reset()

	leafEnt := path[len(path)-1]
	leaf := leafEnt.nd
	pos := lowerBound(leaf, key, int64(rowID))
	insertLeafEntry(leaf, pos, key, rowID)
	t.dirty.put(leafEnt.id, leaf)

	// Split cascade, bottom-up.
	for level := len(path) - 1; level >= 0; level-- {
		nd := path[level].nd
		if nd.n <= fanout {
			break
		}
		newID, err := t.allocNode()
		if err != nil {
			return err
		}
		right, sepK, sepS := t.splitNode(nd)
		if nd.leaf {
			right.next = nd.next
			nd.next = newID + 1
		}
		t.dirty.put(newID, right)

		if level == 0 {
			rootID, err := t.allocNode()
			if err != nil {
				return err
			}
			root := t.newNode()
			root.n = 1
			root.keys[0] = sepK
			root.seqs[0] = uint32(sepS)
			root.ptrs[0] = path[0].id
			root.ptrs[1] = newID
			t.dirty.put(rootID, root)
			t.root = rootID
			t.height++
			break
		}
		parent := path[level-1].nd
		insertInternalEntry(parent, path[level].idxInParent, sepK, uint32(sepS), newID)
		t.dirty.put(path[level-1].id, parent)
	}

	return t.flushDirty()
}

// insertLeafEntry shifts entries right and inserts (key, rowID) at pos.
func insertLeafEntry(nd *node, pos int, key int64, rowID uint32) {
	for i := nd.n; i > pos; i-- {
		nd.keys[i] = nd.keys[i-1]
		nd.ptrs[i] = nd.ptrs[i-1]
		nd.seqs[i] = nd.seqs[i-1]
	}
	nd.keys[pos] = key
	nd.ptrs[pos] = rowID
	nd.seqs[pos] = rowID
	nd.n++
}

// insertInternalEntry inserts separator (sepK, sepS) with right child
// newID just after child childIdx.
func insertInternalEntry(nd *node, childIdx int, sepK int64, sepS, newID uint32) {
	for i := nd.n; i > childIdx; i-- {
		nd.keys[i] = nd.keys[i-1]
		nd.seqs[i] = nd.seqs[i-1]
	}
	for i := nd.n + 1; i > childIdx+1; i-- {
		nd.ptrs[i] = nd.ptrs[i-1]
	}
	nd.keys[childIdx] = sepK
	nd.seqs[childIdx] = sepS
	nd.ptrs[childIdx+1] = newID
	nd.n++
}

// splitNode splits an overflowing node in place, returning the new right
// sibling (arena-allocated) and the separator to push up.
func (t *Table) splitNode(nd *node) (right *node, sepK int64, sepS int64) {
	right = t.newNode()
	right.leaf = nd.leaf
	if nd.leaf {
		mid := (nd.n + 1) / 2
		right.n = nd.n - mid
		for i := 0; i < right.n; i++ {
			right.keys[i] = nd.keys[mid+i]
			right.ptrs[i] = nd.ptrs[mid+i]
			right.seqs[i] = nd.seqs[mid+i]
		}
		nd.n = mid
		return right, right.keys[0], right.seq(0)
	}
	mid := nd.n / 2
	sepK = nd.keys[mid]
	sepS = int64(nd.seqs[mid])
	right.n = nd.n - mid - 1
	for i := 0; i < right.n; i++ {
		right.keys[i] = nd.keys[mid+1+i]
		right.seqs[i] = nd.seqs[mid+1+i]
	}
	for i := 0; i <= right.n; i++ {
		right.ptrs[i] = nd.ptrs[mid+1+i]
	}
	nd.n = mid
	return right, sepK, sepS
}

// deleteTarget is the worst-case access count of a deletion at height h:
// up to 2h+1 reads locating the entry (descend, hop, re-descend), h
// sibling reads, 2h+2 writes, plus clearing the record slot.
func deleteTarget(h int) int { return 5*h + 4 }

// Delete removes the first row whose key equals key, padding to the
// worst-case access count so merges and borrows are invisible. It reports
// whether a row was deleted.
func (t *Table) Delete(key int64) (bool, error) {
	t.beginOp()
	hPre := t.height
	ok, err := t.deleteInner(key)
	if err != nil {
		return false, err
	}
	if ok {
		t.rows--
	}
	return ok, t.padTo(deleteTarget(hPre))
}

func (t *Table) deleteInner(key int64) (bool, error) {
	if t.height == 0 {
		return false, nil
	}
	path, err := t.descend(key, -1)
	if err != nil {
		return false, err
	}
	leaf := path[len(path)-1].nd
	i := lowerBound(leaf, key, -1)
	if i == leaf.n {
		// First candidate lives in the next leaf: peek at it, then
		// re-descend with its exact composite key so the deletion path
		// (needed for rebalancing) is correct.
		if leaf.next == 0 {
			return false, nil
		}
		nxt, err := t.readNode(leaf.next - 1)
		if err != nil {
			return false, err
		}
		if nxt.n == 0 || nxt.keys[0] != key {
			return false, nil
		}
		seq := int64(nxt.ptrs[0])
		path, err = t.descend(key, seq)
		if err != nil {
			return false, err
		}
		leaf = path[len(path)-1].nd
		i = lowerBound(leaf, key, seq)
	}
	if i >= leaf.n || leaf.keys[i] != key {
		return false, nil
	}
	rowID := leaf.ptrs[i]
	if err := t.clearRecord(rowID); err != nil {
		return false, err
	}
	t.freeRow(rowID)
	removeLeafEntry(leaf, i)
	t.dirty.reset()
	t.dirty.put(path[len(path)-1].id, leaf)

	if err := t.rebalance(path); err != nil {
		return false, err
	}
	return true, t.flushDirty()
}

func removeLeafEntry(nd *node, i int) {
	for j := i; j < nd.n-1; j++ {
		nd.keys[j] = nd.keys[j+1]
		nd.ptrs[j] = nd.ptrs[j+1]
		nd.seqs[j] = nd.seqs[j+1]
	}
	nd.n--
}

// removeInternalEntry drops separator i and child i+1.
func removeInternalEntry(nd *node, i int) {
	for j := i; j < nd.n-1; j++ {
		nd.keys[j] = nd.keys[j+1]
		nd.seqs[j] = nd.seqs[j+1]
	}
	for j := i + 1; j < nd.n; j++ {
		nd.ptrs[j] = nd.ptrs[j+1]
	}
	nd.n--
}

// rebalance fixes underflow from the leaf level upward. Nodes it modifies
// are added to the dirty set; nodes it empties are freed and removed.
func (t *Table) rebalance(path []pathEntry) error {
	for level := len(path) - 1; level > 0; level-- {
		nd := path[level].nd
		if nd.n >= minKeys {
			return nil
		}
		parent := path[level-1].nd
		idx := path[level].idxInParent

		// Prefer the left sibling; the leftmost child uses its right one.
		var sibID uint32
		var sepIdx int
		left := idx > 0
		if left {
			sibID = parent.ptrs[idx-1]
			sepIdx = idx - 1
		} else {
			sibID = parent.ptrs[idx+1]
			sepIdx = idx
		}
		sib, err := t.readNode(sibID)
		if err != nil {
			return err
		}

		if sib.n > minKeys {
			borrow(nd, sib, parent, sepIdx, left)
			t.dirty.put(sibID, sib)
			t.dirty.put(path[level].id, nd)
			t.dirty.put(path[level-1].id, parent)
			return nil
		}

		// Merge: absorb the right of the pair into the left.
		var lo, hi *node
		var loID, hiID uint32
		if left {
			lo, hi, loID, hiID = sib, nd, sibID, path[level].id
		} else {
			lo, hi, loID, hiID = nd, sib, path[level].id, sibID
		}
		mergeNodes(lo, hi, parent, sepIdx)
		removeInternalEntry(parent, sepIdx)
		t.dirty.put(loID, lo)
		t.dirty.del(hiID)
		t.freeNode(hiID)
		t.dirty.put(path[level-1].id, parent)
		// Continue upward: the parent may now underflow.
	}

	// Root adjustments.
	root := path[0].nd
	if !root.leaf && root.n == 0 {
		t.freeNode(path[0].id)
		t.dirty.del(path[0].id)
		t.root = root.ptrs[0]
		t.height--
	} else if root.leaf && root.n == 0 {
		t.freeNode(path[0].id)
		t.dirty.del(path[0].id)
		t.root = 0
		t.height = 0
	}
	return nil
}

// borrow moves one entry from sib into nd through the parent separator at
// sepIdx. left says whether sib is nd's left sibling.
func borrow(nd, sib, parent *node, sepIdx int, left bool) {
	if nd.leaf {
		if left {
			// Take sib's last entry as nd's first.
			insertLeafEntry(nd, 0, sib.keys[sib.n-1], sib.ptrs[sib.n-1])
			sib.n--
			parent.keys[sepIdx] = nd.keys[0]
			parent.seqs[sepIdx] = uint32(nd.seq(0))
		} else {
			// Take sib's first entry as nd's last.
			insertLeafEntry(nd, nd.n, sib.keys[0], sib.ptrs[0])
			removeLeafEntry(sib, 0)
			parent.keys[sepIdx] = sib.keys[0]
			parent.seqs[sepIdx] = uint32(sib.seq(0))
		}
		return
	}
	if left {
		// Rotate right through the parent.
		for i := nd.n; i > 0; i-- {
			nd.keys[i] = nd.keys[i-1]
			nd.seqs[i] = nd.seqs[i-1]
		}
		for i := nd.n + 1; i > 0; i-- {
			nd.ptrs[i] = nd.ptrs[i-1]
		}
		nd.keys[0] = parent.keys[sepIdx]
		nd.seqs[0] = parent.seqs[sepIdx]
		nd.ptrs[0] = sib.ptrs[sib.n]
		nd.n++
		parent.keys[sepIdx] = sib.keys[sib.n-1]
		parent.seqs[sepIdx] = sib.seqs[sib.n-1]
		sib.n--
		return
	}
	// Rotate left through the parent.
	nd.keys[nd.n] = parent.keys[sepIdx]
	nd.seqs[nd.n] = parent.seqs[sepIdx]
	nd.ptrs[nd.n+1] = sib.ptrs[0]
	nd.n++
	parent.keys[sepIdx] = sib.keys[0]
	parent.seqs[sepIdx] = sib.seqs[0]
	for i := 0; i < sib.n-1; i++ {
		sib.keys[i] = sib.keys[i+1]
		sib.seqs[i] = sib.seqs[i+1]
	}
	for i := 0; i < sib.n; i++ {
		sib.ptrs[i] = sib.ptrs[i+1]
	}
	sib.n--
}

// mergeNodes folds hi into lo, pulling the parent separator down for
// internal nodes and splicing the leaf chain for leaves.
func mergeNodes(lo, hi, parent *node, sepIdx int) {
	if lo.leaf {
		for i := 0; i < hi.n; i++ {
			lo.keys[lo.n+i] = hi.keys[i]
			lo.ptrs[lo.n+i] = hi.ptrs[i]
			lo.seqs[lo.n+i] = hi.seqs[i]
		}
		lo.n += hi.n
		lo.next = hi.next
		return
	}
	lo.keys[lo.n] = parent.keys[sepIdx]
	lo.seqs[lo.n] = parent.seqs[sepIdx]
	for i := 0; i < hi.n; i++ {
		lo.keys[lo.n+1+i] = hi.keys[i]
		lo.seqs[lo.n+1+i] = hi.seqs[i]
	}
	for i := 0; i <= hi.n; i++ {
		lo.ptrs[lo.n+1+i] = hi.ptrs[i]
	}
	lo.n += hi.n + 1
}

// updateTarget is the fixed access count of an in-place update at height
// h: a lookup plus one record-block write.
func updateTarget(h int) int { return lookupTarget(h) + 1 }

// UpdateByKey rewrites the first row whose key equals key. The updater
// must not change the key column (use Delete+Insert for key changes). The
// access count is fixed for the tree's height.
func (t *Table) UpdateByKey(key int64, upd table.Updater) (bool, error) {
	t.beginOp()
	ok, err := t.updateInner(key, upd)
	if err != nil {
		return false, err
	}
	return ok, t.padTo(updateTarget(t.height))
}

func (t *Table) updateInner(key int64, upd table.Updater) (bool, error) {
	rowID, ok, err := t.lookupEntry(key)
	if err != nil || !ok {
		return false, err
	}
	row, err := t.readRecord(rowID)
	if err != nil {
		return false, err
	}
	newRow := upd(row)
	if err := t.schema.ValidateRow(newRow); err != nil {
		return false, err
	}
	if newRow[t.keyCol].AsInt() != key {
		return false, fmt.Errorf("indexed: UpdateByKey must not change the key column")
	}
	return true, t.writeRecord(rowID, newRow)
}

// RangeScan visits every row with lo <= key <= hi in key order. Its access
// count is height + (leaves touched) + (records read); the paper counts
// this scanned-segment size as part of the leaked intermediate sizes
// (§4.1, "Selection over Indexes").
func (t *Table) RangeScan(lo, hi int64, fn func(table.Row) error) (int, error) {
	if t.height == 0 || lo > hi {
		return 0, nil
	}
	t.beginOp()
	path, err := t.descend(lo, -1)
	if err != nil {
		return 0, err
	}
	leaf := path[len(path)-1].nd
	// One arena node absorbs every leaf-chain hop so long scans do not
	// grow the arena.
	hop := t.newNode()
	i := lowerBound(leaf, lo, -1)
	count := 0
	for {
		for ; i < leaf.n; i++ {
			if leaf.keys[i] > hi {
				return count, nil
			}
			row, err := t.readRecord(leaf.ptrs[i])
			if err != nil {
				return count, err
			}
			if err := fn(row); err != nil {
				return count, err
			}
			count++
		}
		if leaf.next == 0 {
			return count, nil
		}
		if err := t.readNodeInto(hop, leaf.next-1); err != nil {
			return count, err
		}
		leaf = hop
		i = 0
	}
}

// ScanRaw reads the underlying ORAM buckets linearly — a fixed pattern
// cheaper than N full ORAM accesses — and yields every stored row in
// arbitrary order. This is the paper's "scan the index as a flat table"
// fallback; tree nodes, dummy slots, and ORAM slack all look alike to the
// adversary.
func (t *Table) ScanRaw(fn func(table.Row) error) error {
	return t.o.RawScan(func(id int, data []byte) error {
		if id >= t.dataBlocks || data[0] != kindRecord {
			return nil
		}
		for j := 0; j < t.rpb; j++ {
			row, used, err := t.schema.DecodeRecordAt(data[1:], j)
			if err != nil {
				return err
			}
			if !used {
				continue
			}
			if err := fn(row); err != nil {
				return err
			}
		}
		return nil
	})
}

// Rows collects all rows in key order (test/result helper, not padded).
func (t *Table) Rows() ([]table.Row, error) {
	var out []table.Row
	_, err := t.RangeScan(minInt64, maxInt64, func(r table.Row) error {
		out = append(out, r.Clone())
		return nil
	})
	return out, err
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)
