// Package indexed is ObliDB's indexed storage method (§3, §4): an
// oblivious B+ tree whose nodes AND packed record blocks both live inside
// one Ring ORAM, so traversal and row access are equally oblivious. It is
// the second of the paper's two planner-selectable access methods — flat
// storage answers every query with a full scan; indexed storage answers
// point and range queries in O(height + result blocks) ORAM operations.
//
// The layout differs from internal/obtree (one row per record block) in
// one way: record blocks hold R rows each, packed with the internal/table
// codec, exactly like PR 5's packed flat blocks. A row is addressed by
// rowID = blockID*R + slot; the rowID doubles as the leaf-entry sequence
// tiebreaker, so the B+ tree algorithms — and crucially their public
// padding targets — carry over from obtree unchanged: reading or writing
// one row is still exactly one ORAM access (of the block holding its
// slot).
//
// Block ids partition the ORAM address space: [0, dataBlocks) are record
// blocks, [dataBlocks, capacity) are tree nodes. Both partitions are
// behind the same ORAM, so the adversary sees only uniformly random path
// accesses either way.
package indexed

import (
	"encoding/binary"
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/oram"
	"oblidb/internal/table"
)

// fanout is the maximum number of keys per node. One extra slot in the
// arrays absorbs the transient overflow that triggers a split.
const fanout = 8

const (
	minKeys = fanout / 2
	maxKeys = fanout + 1
)

// Block kinds. A fresh (all-zero) ORAM block decodes as kindFree.
const (
	kindFree     = 0
	kindInternal = 1
	kindLeaf     = 2
	kindRecord   = 3
)

// DefaultRowsPerBlock is the packing factor used when the caller does not
// choose one. Eight rows per record block keeps record blocks in the same
// size class as tree nodes for typical schemas.
const DefaultRowsPerBlock = 8

// node is the in-enclave form of a tree node.
//
// Internal: keys[0..n-1] with seqs as separator tiebreakers, ptrs[0..n]
// child node ids. Child i holds entries < (keys[i], seqs[i]); child n
// holds the rest.
//
// Leaf: entries (keys[i], ptrs[i]) for i < n, sorted by composite key;
// ptrs are rowIDs (block*R+slot), which double as the seq tiebreaker.
// next links the leaf chain (stored +1; 0 = none).
type node struct {
	leaf bool
	n    int
	keys [maxKeys]int64
	seqs [maxKeys]uint32
	ptrs [maxKeys + 1]uint32
	next uint32
}

// seq returns the composite tiebreaker of entry/separator i.
func (nd *node) seq(i int) int64 {
	if nd.leaf {
		return int64(nd.ptrs[i])
	}
	return int64(nd.seqs[i])
}

// cmpKS orders composite keys. seq -1 acts as -infinity for range bounds.
func cmpKS(k1, s1, k2, s2 int64) int {
	switch {
	case k1 < k2:
		return -1
	case k1 > k2:
		return 1
	case s1 < s2:
		return -1
	case s1 > s2:
		return 1
	}
	return 0
}

// nodeBytes is the encoded size of a node.
const nodeBytes = 1 + 2 + 4 + maxKeys*8 + (maxKeys+1)*4 + maxKeys*4

// Table is an ORAM-backed indexed table: packed record blocks plus the
// B+ tree over them, all in one Ring ORAM.
type Table struct {
	enc    *enclave.Enclave
	schema *table.Schema
	keyCol int
	o      *oram.Ring
	name   string

	rpb        int // rows per record block (R)
	dataBlocks int // record blocks; node ids start here
	maxSlots   int // dataBlocks * rpb

	root   uint32
	height int // node levels on the root-leaf path; 0 = empty tree
	rows   int

	freeRows  []uint32 // recycled rowIDs
	nextRow   uint32
	freeNodes []uint32 // recycled node block ids
	nextNode  uint32

	maxRows int
	ops     int // ORAM accesses in the current operation, for padding

	// Reusable scratch: the point-lookup hot path (LookupInto) allocates
	// nothing in steady state, pinned by an AllocsPerRun test.
	buf     []byte  // node/record encode buffer
	nodeBuf []byte  // node read destination
	recBuf  []byte  // record read destination
	updBuf  []byte  // UpdateInto result sink
	arena   []*node // per-operation node arena (pointers stay stable)
	arenaN  int
	path    []pathEntry
	dirty   dirtySet
}

// Options tunes indexed-table construction.
type Options struct {
	// RecursiveORAM selects the recursive position map (Appendix B).
	RecursiveORAM bool
	// RowsPerBlock is R, the packing factor of record blocks. Zero means
	// DefaultRowsPerBlock.
	RowsPerBlock int
	// Seed seeds the ORAM's leaf-assignment PRNG. Zero derives a stable
	// seed from the enclave seed and the table name, so traces are
	// reproducible either way; a nonzero seed pins them across enclaves.
	Seed uint64
}

// New creates an empty indexed table over the integer column keyCol, able
// to hold up to maxRows rows.
func New(e *enclave.Enclave, name string, schema *table.Schema, keyCol, maxRows int, opts Options) (*Table, error) {
	if keyCol < 0 || keyCol >= schema.NumColumns() {
		return nil, fmt.Errorf("indexed: key column %d out of range", keyCol)
	}
	if k := schema.Col(keyCol).Kind; k != table.KindInt {
		return nil, fmt.Errorf("indexed: key column %q must be INTEGER, is %s", schema.Col(keyCol).Name, k)
	}
	if maxRows <= 0 {
		return nil, fmt.Errorf("indexed: maxRows must be positive, got %d", maxRows)
	}
	rpb := opts.RowsPerBlock
	if rpb == 0 {
		rpb = DefaultRowsPerBlock
	}
	if rpb < 1 {
		return nil, fmt.Errorf("indexed: rows per block must be positive, got %d", rpb)
	}
	blockSize := nodeBytes
	if rs := 1 + schema.BlockSize(rpb); rs > blockSize {
		blockSize = rs
	}
	dataBlocks := (maxRows + rpb - 1) / rpb
	// Node census at worst-case (half) occupancy: ≤ maxRows/minKeys leaves
	// plus a geometric tail of internals — under maxRows/3, with slack for
	// shallow trees and transient splits.
	nodeCap := maxRows/3 + 64
	capacity := dataBlocks + nodeCap
	o, err := oram.NewRing(e, name, capacity, blockSize, oram.Options{
		Recursive: opts.RecursiveORAM,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		enc:        e,
		schema:     schema,
		keyCol:     keyCol,
		o:          o,
		name:       name,
		rpb:        rpb,
		dataBlocks: dataBlocks,
		maxSlots:   dataBlocks * rpb,
		nextNode:   uint32(dataBlocks),
		maxRows:    maxRows,
		buf:        make([]byte, blockSize),
	}, nil
}

// Close releases the table's ORAM resources.
func (t *Table) Close() { t.o.Close() }

// Schema returns the row schema.
func (t *Table) Schema() *table.Schema { return t.schema }

// KeyCol returns the indexed column.
func (t *Table) KeyCol() int { return t.keyCol }

// NumRows returns the number of rows stored.
func (t *Table) NumRows() int { return t.rows }

// MaxRows returns the construction-time capacity.
func (t *Table) MaxRows() int { return t.maxRows }

// RowsPerBlock returns R, the record-block packing factor.
func (t *Table) RowsPerBlock() int { return t.rpb }

// Height returns the number of node levels (0 for an empty tree). Height
// is public: it is a function of the (leaked) table size.
func (t *Table) Height() int { return t.height }

// ORAM exposes the underlying ORAM scheme for size accounting and raw
// scans.
func (t *Table) ORAM() oram.Scheme { return t.o }

// AccessesPerOp is the number of untrusted block accesses one logical
// ORAM operation costs — the public O(log N) factor the planner
// multiplies tree-operation counts by.
func (t *Table) AccessesPerOp() int { return t.o.AccessesPerOp() }

// Store exposes the untrusted bucket store; adversary tests tamper with
// it.
func (t *Table) Store() *enclave.Store { return t.o.Store() }

// PosMapStore exposes the untrusted store behind a recursive position map
// (nil for the in-enclave map).
func (t *Table) PosMapStore() *enclave.Store { return t.o.PosMapStore() }

// --- rowIDs and node ids ---------------------------------------------------

func (t *Table) rowBlock(rowID uint32) int { return int(rowID) / t.rpb }
func (t *Table) rowSlot(rowID uint32) int  { return int(rowID) % t.rpb }

func (t *Table) allocRow() (uint32, error) {
	if n := len(t.freeRows); n > 0 {
		id := t.freeRows[n-1]
		t.freeRows = t.freeRows[:n-1]
		return id, nil
	}
	if int(t.nextRow) >= t.maxSlots {
		return 0, fmt.Errorf("indexed: table %q is full (%d rows)", t.name, t.maxRows)
	}
	id := t.nextRow
	t.nextRow++
	return id, nil
}

func (t *Table) freeRow(id uint32) { t.freeRows = append(t.freeRows, id) }

func (t *Table) allocNode() (uint32, error) {
	if n := len(t.freeNodes); n > 0 {
		id := t.freeNodes[n-1]
		t.freeNodes = t.freeNodes[:n-1]
		return id, nil
	}
	if int(t.nextNode) >= t.o.Capacity() {
		return 0, fmt.Errorf("indexed: node space of table %q is exhausted", t.name)
	}
	id := t.nextNode
	t.nextNode++
	return id, nil
}

func (t *Table) freeNode(id uint32) { t.freeNodes = append(t.freeNodes, id) }

// --- per-operation scratch -------------------------------------------------

// newNode hands out an arena node, valid until the next beginOp. Pointers
// stay stable while the arena grows because the arena holds pointers.
func (t *Table) newNode() *node {
	if t.arenaN == len(t.arena) {
		t.arena = append(t.arena, &node{})
	}
	nd := t.arena[t.arenaN]
	t.arenaN++
	*nd = node{}
	return nd
}

// beginOp resets the access counter and recycles the node arena.
func (t *Table) beginOp() {
	t.ops = 0
	t.arenaN = 0
}

// --- ORAM I/O with access counting ----------------------------------------

// readNodeInto decodes block id into nd. One ORAM access.
func (t *Table) readNodeInto(nd *node, id uint32) error {
	t.ops++
	data, err := t.o.AccessInto(oram.OpRead, int(id), nil, t.nodeBuf)
	if err != nil {
		return err
	}
	t.nodeBuf = data
	return decodeNodeInto(nd, data)
}

func (t *Table) readNode(id uint32) (*node, error) {
	nd := t.newNode()
	if err := t.readNodeInto(nd, id); err != nil {
		return nil, err
	}
	return nd, nil
}

func (t *Table) writeNode(id uint32, nd *node) error {
	t.ops++
	encodeNode(t.buf, nd)
	res, err := t.o.AccessInto(oram.OpWrite, int(id), t.buf, t.updBuf)
	t.updBuf = res
	return err
}

// stageNode is writeNode for the bulk-build path: the encoded node joins
// the staged stash instead of paying a per-write ORAM access.
func (t *Table) stageNode(id uint32, nd *node) error {
	encodeNode(t.buf, nd)
	return t.o.BulkStage(int(id), t.buf)
}

// readRecord reads the row at rowID, decoded into fresh memory (safe to
// retain). One ORAM access.
func (t *Table) readRecord(rowID uint32) (table.Row, error) {
	t.ops++
	data, err := t.o.AccessInto(oram.OpRead, t.rowBlock(rowID), nil, t.recBuf)
	if err != nil {
		return nil, err
	}
	t.recBuf = data
	if data[0] != kindRecord {
		return nil, fmt.Errorf("indexed: block %d is not a record block (kind %d)", t.rowBlock(rowID), data[0])
	}
	row, used, err := t.schema.DecodeRecordAt(data[1:], t.rowSlot(rowID))
	if err != nil {
		return nil, err
	}
	if !used {
		return nil, fmt.Errorf("indexed: row slot %d is unused", rowID)
	}
	return row, nil
}

// readRecordInto decodes the row at rowID into dst without allocating;
// string values alias the internal read buffer and are valid only until
// the next ORAM access. One ORAM access.
func (t *Table) readRecordInto(dst table.Row, rowID uint32) error {
	t.ops++
	data, err := t.o.AccessInto(oram.OpRead, t.rowBlock(rowID), nil, t.recBuf)
	if err != nil {
		return err
	}
	t.recBuf = data
	if data[0] != kindRecord {
		return fmt.Errorf("indexed: block %d is not a record block (kind %d)", t.rowBlock(rowID), data[0])
	}
	used, err := t.schema.DecodeRecordInto(dst, data[1:], t.rowSlot(rowID))
	if err != nil {
		return err
	}
	if !used {
		return fmt.Errorf("indexed: row slot %d is unused", rowID)
	}
	return nil
}

// writeRecord installs r in rowID's slot, leaving the block's other slots
// untouched. One ORAM access (read-modify-write).
func (t *Table) writeRecord(rowID uint32, r table.Row) error {
	t.ops++
	slot := t.rowSlot(rowID)
	var encErr error
	res, err := t.o.UpdateInto(t.rowBlock(rowID), t.updBuf, func(data []byte) []byte {
		data[0] = kindRecord
		if e := t.schema.EncodeRecordAt(data[1:], slot, r); e != nil && encErr == nil {
			encErr = e
		}
		return data
	})
	t.updBuf = res
	if err != nil {
		return err
	}
	return encErr
}

// clearRecord marks rowID's slot unused so raw scans never resurrect
// deleted rows. One ORAM access.
func (t *Table) clearRecord(rowID uint32) error {
	t.ops++
	slot := t.rowSlot(rowID)
	res, err := t.o.UpdateInto(t.rowBlock(rowID), t.updBuf, func(data []byte) []byte {
		data[0] = kindRecord
		_ = t.schema.EncodeDummyAt(data[1:], slot)
		return data
	})
	t.updBuf = res
	return err
}

func (t *Table) dummyAccess() error {
	t.ops++
	return t.o.DummyAccess()
}

// padTo issues dummy ORAM accesses until the operation has performed
// exactly target accesses — the paper's defense for hiding splits and
// merges (§3.2). target must be a function of public state only.
func (t *Table) padTo(target int) error {
	if t.ops > target {
		return fmt.Errorf("indexed: operation used %d accesses, exceeding its padding target %d", t.ops, target)
	}
	for t.ops < target {
		if err := t.dummyAccess(); err != nil {
			return err
		}
	}
	return nil
}

// --- node codec ------------------------------------------------------------

func encodeNode(buf []byte, nd *node) {
	for i := range buf {
		buf[i] = 0
	}
	if nd.leaf {
		buf[0] = kindLeaf
	} else {
		buf[0] = kindInternal
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(nd.n))
	binary.LittleEndian.PutUint32(buf[3:7], nd.next)
	off := 7
	for i := 0; i < maxKeys; i++ {
		binary.LittleEndian.PutUint64(buf[off+i*8:], uint64(nd.keys[i]))
	}
	off += maxKeys * 8
	for i := 0; i < maxKeys+1; i++ {
		binary.LittleEndian.PutUint32(buf[off+i*4:], nd.ptrs[i])
	}
	off += (maxKeys + 1) * 4
	for i := 0; i < maxKeys; i++ {
		binary.LittleEndian.PutUint32(buf[off+i*4:], nd.seqs[i])
	}
}

func decodeNodeInto(nd *node, data []byte) error {
	kind := data[0]
	if kind != kindInternal && kind != kindLeaf {
		return fmt.Errorf("indexed: block is not a node (kind %d)", kind)
	}
	nd.leaf = kind == kindLeaf
	nd.n = int(binary.LittleEndian.Uint16(data[1:3]))
	if nd.n > maxKeys {
		return fmt.Errorf("indexed: corrupt node: %d keys", nd.n)
	}
	nd.next = binary.LittleEndian.Uint32(data[3:7])
	off := 7
	for i := 0; i < maxKeys; i++ {
		nd.keys[i] = int64(binary.LittleEndian.Uint64(data[off+i*8:]))
	}
	off += maxKeys * 8
	for i := 0; i < maxKeys+1; i++ {
		nd.ptrs[i] = binary.LittleEndian.Uint32(data[off+i*4:])
	}
	off += (maxKeys + 1) * 4
	for i := 0; i < maxKeys; i++ {
		nd.seqs[i] = binary.LittleEndian.Uint32(data[off+i*4:])
	}
	return nil
}
