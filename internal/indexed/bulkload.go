package indexed

import (
	"fmt"
	"sort"

	"oblidb/internal/table"
)

// BulkLoad fills an empty table bottom-up: packed record blocks first (one
// ORAM write per block of R rows), then leaf nodes at ~3/4 occupancy, then
// each internal level. The access pattern is a fixed function of the row
// count — every block of a freshly built tree is written exactly once in a
// deterministic order — so it leaks only the table size, like everything
// else. It avoids the per-insert worst-case padding that makes incremental
// loads O(N log² N).
func (t *Table) BulkLoad(rows []table.Row) error {
	if t.height != 0 || t.rows != 0 {
		return fmt.Errorf("indexed: BulkLoad requires an empty table")
	}
	if len(rows) == 0 {
		return nil
	}
	if len(rows) > t.maxRows {
		return fmt.Errorf("indexed: %d rows exceed capacity %d", len(rows), t.maxRows)
	}
	for _, r := range rows {
		if err := t.schema.ValidateRow(r); err != nil {
			return err
		}
	}
	// Sort by key; rowIDs are assigned in sorted order so composite
	// (key, rowID) order matches slice order.
	sorted := make([]table.Row, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i][t.keyCol].AsInt() < sorted[j][t.keyCol].AsInt()
	})

	type entry struct {
		key int64
		seq uint32 // rowID (leaf) or separator seq (internal)
		ptr uint32 // child id or rowID
	}
	entries := make([]entry, len(sorted))
	numBlocks := (len(sorted) + t.rpb - 1) / t.rpb
	for b := 0; b < numBlocks; b++ {
		for i := range t.buf {
			t.buf[i] = 0
		}
		t.buf[0] = kindRecord
		for j := 0; j < t.rpb; j++ {
			i := b*t.rpb + j
			if i >= len(sorted) {
				break // remaining slots stay zero, i.e. dummy records
			}
			if err := t.schema.EncodeRecordAt(t.buf[1:], j, sorted[i]); err != nil {
				return err
			}
			rowID := uint32(i)
			entries[i] = entry{key: sorted[i][t.keyCol].AsInt(), seq: rowID, ptr: rowID}
		}
		if err := t.o.BulkStage(b, t.buf); err != nil {
			return err
		}
	}
	t.nextRow = uint32(len(sorted))

	const fill = fanout * 3 / 4 // leave room for future inserts
	level := 0
	leaf := true
	var nd node
	for {
		numNodes := (len(entries) + fill - 1) / fill
		if len(entries) <= fanout {
			numNodes = 1
		}
		// Pre-allocate ids so leaves can set next pointers.
		ids := make([]uint32, numNodes)
		for i := range ids {
			id, err := t.allocNode()
			if err != nil {
				return err
			}
			ids[i] = id
		}
		parents := make([]entry, 0, numNodes)
		for i := 0; i < numNodes; i++ {
			lo := i * len(entries) / numNodes
			hi := (i + 1) * len(entries) / numNodes
			nd = node{leaf: leaf}
			if leaf {
				nd.n = hi - lo
				for j, e := range entries[lo:hi] {
					nd.keys[j] = e.key
					nd.seqs[j] = e.seq
					nd.ptrs[j] = e.ptr
				}
				if i+1 < numNodes {
					nd.next = ids[i+1] + 1
				}
			} else {
				// Internal: first child has no separator; separators come
				// from each subsequent child's leftmost composite key.
				nd.n = hi - lo - 1
				nd.ptrs[0] = entries[lo].ptr
				for j, e := range entries[lo+1 : hi] {
					nd.keys[j] = e.key
					nd.seqs[j] = e.seq
					nd.ptrs[j+1] = e.ptr
				}
			}
			if err := t.stageNode(ids[i], &nd); err != nil {
				return err
			}
			// This node's leftmost composite key becomes its parent
			// separator.
			parents = append(parents, entry{key: entries[lo].key, seq: entries[lo].seq, ptr: ids[i]})
		}
		level++
		if numNodes == 1 {
			t.root = ids[0]
			t.height = level
			t.rows = len(rows)
			// One bottom-up placement pass writes every staged block
			// straight into its bucket, leaving the stash empty instead of
			// flooded by 1/access eviction arithmetic (see Ring.BulkCommit).
			return t.o.BulkCommit()
		}
		entries = parents
		leaf = false
	}
}
