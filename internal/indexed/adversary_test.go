package indexed

import (
	"errors"
	"testing"

	"oblidb/internal/crypt"
	"oblidb/internal/enclave"
	"oblidb/internal/table"
)

// Integrity tests at the indexed layer, mirroring the packed-flat
// adversary suite: every §2.3 attack class against the ORAM bucket store
// or the recursive position map must surface as crypt.ErrAuth on a
// subsequent table operation.

func attackTable(t *testing.T, opts Options) *Table {
	t.Helper()
	e := enclave.MustNew(enclave.Config{})
	tbl, err := New(e, "t", tblSchema(), 0, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Close)
	for i := int64(0); i < 48; i++ {
		if err := tbl.Insert(trow(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// scanAll drives a raw scan, the one access pattern guaranteed to touch
// every untrusted slot.
func scanAll(tbl *Table) error {
	return tbl.ScanRaw(func(table.Row) error { return nil })
}

func TestAttackBucketBitFlip(t *testing.T) {
	tbl := attackTable(t, Options{RowsPerBlock: 4})
	st := tbl.Store()
	raw := st.AdversaryRawBlock(st.Len() / 2)
	raw[3] ^= 0x40
	st.AdversarySetRawBlock(st.Len()/2, raw)
	if err := scanAll(tbl); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("tampered bucket slot: err=%v, want ErrAuth", err)
	}
}

func TestAttackBucketSwap(t *testing.T) {
	// Swapping two sealed slots is caught by position binding even though
	// both ciphertexts are individually authentic.
	tbl := attackTable(t, Options{RowsPerBlock: 4})
	st := tbl.Store()
	st.AdversarySwapBlocks(0, st.Len()-1)
	if err := scanAll(tbl); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("swapped bucket slots: err=%v, want ErrAuth", err)
	}
}

func TestAttackBucketRollback(t *testing.T) {
	// The adversary snapshots the whole untrusted store, waits for an
	// update, and replays the snapshot. Revision binding in the enclave's
	// trusted metadata catches the stale ciphertexts.
	tbl := attackTable(t, Options{RowsPerBlock: 4})
	st := tbl.Store()
	snapshot := make([][]byte, st.Len())
	for i := range snapshot {
		snapshot[i] = st.AdversaryRawBlock(i)
	}
	// Several updates, so the ORAM's scheduled evictions write fresh
	// ciphertexts back to the store (a lone update can park entirely in
	// the enclave stash, leaving nothing for the snapshot to roll back).
	for k := int64(5); k < 10; k++ {
		if ok, err := tbl.UpdateByKey(k, func(r table.Row) table.Row {
			r[1] = table.Str("v2")
			return r
		}); err != nil || !ok {
			t.Fatalf("update %d: ok=%v err=%v", k, ok, err)
		}
	}
	for i, raw := range snapshot {
		st.AdversarySetRawBlock(i, raw)
	}
	if err := scanAll(tbl); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("whole-store rollback: err=%v, want ErrAuth", err)
	}
}

func TestAttackRollbackAfterDelete(t *testing.T) {
	// Replaying pre-deletion ciphertexts must not resurrect the row.
	tbl := attackTable(t, Options{RowsPerBlock: 4})
	st := tbl.Store()
	snapshot := make([][]byte, st.Len())
	for i := range snapshot {
		snapshot[i] = st.AdversaryRawBlock(i)
	}
	if ok, err := tbl.Delete(5); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	for i, raw := range snapshot {
		st.AdversarySetRawBlock(i, raw)
	}
	if err := scanAll(tbl); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("post-delete rollback: err=%v, want ErrAuth", err)
	}
}

func TestAttackPosMapTamper(t *testing.T) {
	// With a recursive position map the map itself lives in untrusted
	// memory; corrupting all of it must fail the very next lookup.
	tbl := attackTable(t, Options{RowsPerBlock: 4, RecursiveORAM: true})
	pm := tbl.PosMapStore()
	if pm == nil {
		t.Fatal("recursive table has no untrusted position-map store")
	}
	for i := 0; i < pm.Len(); i++ {
		raw := pm.AdversaryRawBlock(i)
		if len(raw) == 0 {
			continue
		}
		raw[0] ^= 0xff
		pm.AdversarySetRawBlock(i, raw)
	}
	if _, _, err := tbl.Lookup(3); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("tampered position map: err=%v, want ErrAuth", err)
	}
}

func TestAttackStashStateNotInStore(t *testing.T) {
	// The stash and bucket metadata are trusted state: zeroing every
	// untrusted slot still yields ErrAuth (never silent wrong answers).
	tbl := attackTable(t, Options{RowsPerBlock: 4})
	st := tbl.Store()
	zero := make([]byte, len(st.AdversaryRawBlock(0)))
	for i := 0; i < st.Len(); i++ {
		st.AdversarySetRawBlock(i, zero)
	}
	if err := scanAll(tbl); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("zeroed store scan: err=%v, want ErrAuth", err)
	}
	if _, _, err := tbl.Lookup(1); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("zeroed store lookup: err=%v, want ErrAuth", err)
	}
}
