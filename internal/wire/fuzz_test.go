package wire

import (
	"bytes"
	"testing"

	"oblidb/internal/table"
)

// FuzzWireFrame feeds arbitrary payloads to both frame decoders: they
// must reject garbage with an error, never panic or over-allocate, and
// any payload they accept must re-encode to a canonical form that
// round-trips (encode → decode → encode is a fixed point).
func FuzzWireFrame(f *testing.F) {
	f.Add(EncodeRequest(&Request{Type: TExec, ID: 7, SQL: "SELECT * FROM t"}))
	f.Add(EncodeRequest(&Request{Type: TPrepare, ID: 1, SQL: "INSERT INTO t VALUES (1)"}))
	f.Add(EncodeRequest(&Request{Type: TExecPrepared, ID: 2, Handle: 3}))
	f.Add(EncodeRequest(&Request{Type: TExecPrepared, ID: 3, Handle: 4, Args: []table.Value{
		table.Int(7), table.Float(-0.5), table.Str("x"), table.Bool(false), table.Null(),
	}}))
	f.Add(EncodeResponse(&Response{Type: TPrepared, ID: 12, Handle: 9, NumParams: 2}))
	f.Add([]byte{TExecPrepared, 0, 0, 0, 9, 0, 0, 0, 3}) // protocol-v1 body: handle only
	f.Add(EncodeRequest(&Request{Type: TStats, ID: 9}))
	f.Add(EncodeResponse(&Response{Type: TError, ID: 4, Err: "no such table"}))
	f.Add(EncodeResponse(&Response{Type: TPrepared, ID: 5, Handle: 8}))
	f.Add(EncodeResponse(&Response{Type: TStatsResult, ID: 6, Stats: Stats{Epochs: 10, EpochSize: 8, Real: 3, Dummy: 77, Sessions: 2, UptimeMillis: 1234}}))
	f.Add(EncodeResponse(&Response{Type: TResult, ID: 7, Result: &Result{
		Cols: []string{"k", "f", "s", "b"},
		Rows: []table.Row{
			{table.Int(-1), table.Float(2.5), table.Str("x'y"), table.Bool(true)},
			{table.Int(9), table.Float(0), table.Str(""), table.Bool(false)},
		},
	}}))
	f.Add([]byte{})
	f.Add([]byte{TResult, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}) // lying row count
	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := DecodeRequest(payload); err == nil {
			b1 := EncodeRequest(req)
			req2, err := DecodeRequest(b1)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if b2 := EncodeRequest(req2); !bytes.Equal(b1, b2) {
				t.Fatalf("request encoding not canonical:\n%x\n%x", b1, b2)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			b1 := EncodeResponse(resp)
			resp2, err := DecodeResponse(b1)
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			if b2 := EncodeResponse(resp2); !bytes.Equal(b1, b2) {
				t.Fatalf("response encoding not canonical:\n%x\n%x", b1, b2)
			}
		}
	})
}
