package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"oblidb/internal/table"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, []byte("hello"), bytes.Repeat([]byte{0xab}, 1<<16)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	r := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(r); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame accepted: %v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Type: TExec, ID: 7, SQL: "SELECT * FROM t WHERE k = 1"},
		{Type: TPrepare, ID: 8, SQL: "INSERT INTO t VALUES (1, 'x')"},
		{Type: TExecPrepared, ID: 9, Handle: 3},
		{Type: TExecPrepared, ID: 12, Handle: 4, Args: []table.Value{
			table.Int(-7), table.Float(2.5), table.Str("al'ice"), table.Bool(true), table.Null(),
		}},
		{Type: TClosePrepared, ID: 10, Handle: 3},
		{Type: TStats, ID: 11},
	}
	for _, req := range reqs {
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("decode %d: %v", req.Type, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip %d: got %+v, want %+v", req.Type, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Type: TError, ID: 1, Err: "core: no table \"t\""},
		{Type: TError, ID: 7, Err: "server: admission queue full", ErrCode: 3},
		{Type: TPrepared, ID: 2, Handle: 42},
		{Type: TPrepared, ID: 6, Handle: 43, NumParams: 3},
		{Type: TStatsResult, ID: 3, Stats: Stats{
			Epochs: 10, EpochSize: 8, Real: 3, Dummy: 77, Sessions: 2, UptimeMillis: 1234,
		}},
		{Type: TStatsResult, ID: 9, Stats: Stats{
			Epochs: 2, EpochSize: 4, Real: 1, Dummy: 7, Sessions: 1, UptimeMillis: 55,
			PlanEntries: 3, PlanHits: 9, PlanMisses: 4, PlanCompiles: 3, PlanCompileSkips: 6,
			Picks: []AlgPick{{Name: "join.Hash", Count: 2}, {Name: "select.Small", Count: 11}, {Name: "sort", Count: 5}},
		}},
		{Type: TResult, ID: 4, Result: &Result{
			Cols: []string{"k", "name", "score", "ok"},
			Rows: []table.Row{
				{table.Int(-5), table.Str("alice"), table.Float(1.5), table.Bool(true)},
				{table.Int(9), table.Str(""), table.Float(-0.25), table.Bool(false)},
			},
		}},
		{Type: TResult, ID: 5, Result: &Result{Cols: []string{"affected"}}},
		{Type: TResult, ID: 8, Result: &Result{
			Cols:     []string{"affected"},
			Rows:     []table.Row{{table.Int(3)}},
			Affected: true,
		}},
	}
	for _, resp := range resps {
		got, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("decode %d: %v", resp.Type, err)
		}
		if got.Type != resp.Type || got.ID != resp.ID || got.Err != resp.Err ||
			got.ErrCode != resp.ErrCode ||
			got.Handle != resp.Handle || got.NumParams != resp.NumParams ||
			!reflect.DeepEqual(got.Stats, resp.Stats) {
			t.Fatalf("round trip %d: got %+v, want %+v", resp.Type, got, resp)
		}
		if resp.Result == nil {
			continue
		}
		if !reflect.DeepEqual(got.Result.Cols, resp.Result.Cols) {
			t.Fatalf("cols: got %v, want %v", got.Result.Cols, resp.Result.Cols)
		}
		if got.Result.Affected != resp.Result.Affected {
			t.Fatalf("affected flag: got %v, want %v", got.Result.Affected, resp.Result.Affected)
		}
		if len(got.Result.Rows) != len(resp.Result.Rows) {
			t.Fatalf("rows: got %d, want %d", len(got.Result.Rows), len(resp.Result.Rows))
		}
		for i, row := range resp.Result.Rows {
			for j, v := range row {
				if !got.Result.Rows[i][j].Equal(v) {
					t.Fatalf("row %d col %d: got %s, want %s", i, j, got.Result.Rows[i][j], v)
				}
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown request type accepted")
	}
	if _, err := DecodeResponse([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown response type accepted")
	}
	if _, err := DecodeRequest([]byte{TExec, 0}); err == nil {
		t.Fatal("truncated request accepted")
	}
	// A string length pointing past the payload must error, not panic.
	if _, err := DecodeRequest(append([]byte{TExec, 0, 0, 0, 1}, 0xff, 0x7f)); err == nil {
		t.Fatal("lying string length accepted")
	}
	// A lying argument count on TExecPrepared must error, not panic or
	// over-allocate.
	if _, err := DecodeRequest(append([]byte{TExecPrepared, 0, 0, 0, 1, 0, 0, 0, 2}, 0xff, 0x7f)); err == nil {
		t.Fatal("lying argument count accepted")
	}
	// An unknown value tag in the argument list must error.
	if _, err := DecodeRequest(append([]byte{TExecPrepared, 0, 0, 0, 1, 0, 0, 0, 2}, 1, 99)); err == nil {
		t.Fatal("unknown argument value kind accepted")
	}
}

// TestLegacyPreparedFramesDecode pins protocol-v1 compatibility: frames
// whose TExecPrepared body ends at the handle (and TPrepared at the
// handle) still decode, as zero arguments / zero parameters.
func TestLegacyPreparedFramesDecode(t *testing.T) {
	req, err := DecodeRequest([]byte{TExecPrepared, 0, 0, 0, 9, 0, 0, 0, 3})
	if err != nil {
		t.Fatalf("legacy TExecPrepared: %v", err)
	}
	if req.Handle != 3 || len(req.Args) != 0 {
		t.Fatalf("legacy TExecPrepared decoded to %+v", req)
	}
	resp, err := DecodeResponse([]byte{TPrepared, 0, 0, 0, 2, 0, 0, 0, 42})
	if err != nil {
		t.Fatalf("legacy TPrepared: %v", err)
	}
	if resp.Handle != 42 || resp.NumParams != 0 {
		t.Fatalf("legacy TPrepared decoded to %+v", resp)
	}
}

// TestLegacyErrorFrameDecodes pins the v5 TError extension: a v4-style
// frame ending at the message string still decodes, with ErrCode 0
// (unknown) — and a v5 frame truncated mid-code errors instead of
// panicking.
func TestLegacyErrorFrameDecodes(t *testing.T) {
	legacy := &enc{}
	legacy.byte(TError)
	legacy.u32(5)
	legacy.str("boom")
	resp, err := DecodeResponse(legacy.b)
	if err != nil {
		t.Fatalf("legacy TError: %v", err)
	}
	if resp.Err != "boom" || resp.ErrCode != 0 {
		t.Fatalf("legacy TError decoded to %+v", resp)
	}
	// A multi-byte varint cut after its continuation byte must error.
	if _, err := DecodeResponse(append(legacy.b, 0xff)); err == nil {
		t.Fatal("truncated v5 error code accepted")
	}
}

// TestLegacyStatsFrameDecodes pins the v1 TStatsResult layout: a frame
// ending after UptimeMillis decodes with zeroed plan-cache counters and
// no picks.
func TestLegacyStatsFrameDecodes(t *testing.T) {
	payload := []byte{TStatsResult, 0, 0, 0, 7}
	payload = append(payload, 0, 0, 0, 0, 0, 0, 0, 10)  // Epochs
	payload = append(payload, 0, 0, 0, 8)               // EpochSize
	payload = append(payload, 0, 0, 0, 0, 0, 0, 0, 3)   // Real
	payload = append(payload, 0, 0, 0, 0, 0, 0, 0, 77)  // Dummy
	payload = append(payload, 0, 0, 0, 2)               // Sessions
	payload = append(payload, 0, 0, 0, 0, 0, 0, 4, 210) // UptimeMillis
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("legacy TStatsResult: %v", err)
	}
	if resp.Stats.Epochs != 10 || resp.Stats.EpochSize != 8 || resp.Stats.UptimeMillis != 1234 {
		t.Fatalf("legacy TStatsResult decoded to %+v", resp.Stats)
	}
	if resp.Stats.PlanEntries != 0 || resp.Stats.PlanHits != 0 || resp.Stats.Picks != nil {
		t.Fatalf("v1 frame grew plan fields: %+v", resp.Stats)
	}
}

// TestStatsFrameVersionMatrix pins the three TStatsResult generations
// against golden frames: a v3 frame round-trips MetricsJSON, a v2 frame
// (ending after the picks) decodes with MetricsJSON empty, and a v1
// frame (ending after UptimeMillis) decodes with every extension
// zeroed. Encoding v3 then truncating at the documented boundaries
// reproduces exactly what a v2 or v1 peer would have sent, so the
// truncation points themselves are part of the pin.
func TestStatsFrameVersionMatrix(t *testing.T) {
	full := &Response{Type: TStatsResult, ID: 9, Stats: Stats{
		Epochs: 10, EpochSize: 8, Real: 3, Dummy: 77, Sessions: 2, UptimeMillis: 1234,
		PlanEntries: 4, PlanHits: 20, PlanMisses: 5, PlanCompiles: 6, PlanCompileSkips: 14,
		Picks:       []AlgPick{{Name: "select.Hash", Count: 7}, {Name: "sort", Count: 3}},
		MetricsJSON: `{"oblidb_epochs_total":10}`,
	}}
	payload := EncodeResponse(full)

	// v1 boundary: type+id (5) + u64 + u32 + u64 + u64 + u32 + u64.
	v1End := 5 + 8 + 4 + 8 + 8 + 4 + 8
	// v2 boundary: v1 + plan counters (u32 + 4×u64) + picks (uvarint
	// count, then per pick a uvarint-length name and a u64 count).
	v2End := v1End + 4 + 4*8 + 1
	for _, p := range full.Stats.Picks {
		v2End += 1 + len(p.Name) + 8
	}

	// v3: full round-trip.
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("v3 frame: %v", err)
	}
	if resp.Stats.MetricsJSON != full.Stats.MetricsJSON {
		t.Fatalf("v3 MetricsJSON = %q, want %q", resp.Stats.MetricsJSON, full.Stats.MetricsJSON)
	}
	if len(resp.Stats.Picks) != 2 || resp.Stats.Picks[0].Name != "select.Hash" {
		t.Fatalf("v3 picks = %+v", resp.Stats.Picks)
	}

	// v2: same header and plan fields, no metrics.
	resp, err = DecodeResponse(payload[:v2End])
	if err != nil {
		t.Fatalf("v2 frame: %v", err)
	}
	if resp.Stats.PlanHits != 20 || len(resp.Stats.Picks) != 2 {
		t.Fatalf("v2 frame lost plan fields: %+v", resp.Stats)
	}
	if resp.Stats.MetricsJSON != "" {
		t.Fatalf("v2 frame grew MetricsJSON %q", resp.Stats.MetricsJSON)
	}

	// v1: header only.
	resp, err = DecodeResponse(payload[:v1End])
	if err != nil {
		t.Fatalf("v1 frame: %v", err)
	}
	if resp.Stats.Epochs != 10 || resp.Stats.Dummy != 77 || resp.Stats.UptimeMillis != 1234 {
		t.Fatalf("v1 frame decoded to %+v", resp.Stats)
	}
	if resp.Stats.PlanEntries != 0 || resp.Stats.Picks != nil || resp.Stats.MetricsJSON != "" {
		t.Fatalf("v1 frame grew extensions: %+v", resp.Stats)
	}
}

// TestTxControlFramesRoundTrip pins the v4 transaction-control request
// frames: empty bodies, just type and ID.
func TestTxControlFramesRoundTrip(t *testing.T) {
	for _, typ := range []byte{TBegin, TCommit, TRollback} {
		req := &Request{Type: typ, ID: 21}
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("decode %d: %v", typ, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip %d: got %+v, want %+v", typ, got, req)
		}
	}
}

// TestStatsFrameV4Tail pins the v4 TStatsResult extension: eight u64
// transaction/journal counters after MetricsJSON. A v4 frame round-trips
// them; the same frame truncated at the v3 boundary decodes with the
// tail zeroed, exactly what a v3 peer would have sent.
func TestStatsFrameV4Tail(t *testing.T) {
	full := &Response{Type: TStatsResult, ID: 4, Stats: Stats{
		Epochs: 10, EpochSize: 8, Real: 3, Dummy: 77, Sessions: 2, UptimeMillis: 1234,
		MetricsJSON:    `{"oblidb_epochs_total":10}`,
		TxBegun:        6,
		TxCommitted:    4,
		TxRolledBack:   1,
		TxAborted:      1,
		WalEntries:     250,
		WalCommits:     40,
		WalCheckpoints: 2,
		WalBytes:       4096,
	}}
	payload := EncodeResponse(full)

	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("v4 frame: %v", err)
	}
	if !reflect.DeepEqual(resp.Stats, full.Stats) {
		t.Fatalf("v4 round trip: got %+v, want %+v", resp.Stats, full.Stats)
	}

	// v3 boundary: everything up to and including MetricsJSON — the v4
	// tail is exactly the last 8 u64s.
	v3End := len(payload) - 8*8
	resp, err = DecodeResponse(payload[:v3End])
	if err != nil {
		t.Fatalf("v3 frame: %v", err)
	}
	if resp.Stats.MetricsJSON != full.Stats.MetricsJSON {
		t.Fatalf("v3 frame lost MetricsJSON: %+v", resp.Stats)
	}
	if resp.Stats.TxBegun != 0 || resp.Stats.WalEntries != 0 || resp.Stats.WalBytes != 0 {
		t.Fatalf("v3 frame grew v4 fields: %+v", resp.Stats)
	}
}
