// Package wire is ObliDB's client/server protocol: length-prefixed
// binary frames carrying SQL requests and materialized results.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload; the payload's first byte is the message type, the next four
// a request id the client chooses, and the rest the type-specific body.
// Request ids let one connection carry many statements in flight at
// once — the server answers in epoch order, not arrival order, so
// responses must name the request they answer.
//
// The protocol rides inside the client↔enclave secure channel of the
// paper's model (§2.2): the adversary observing the host's network sees
// only ciphertext sizes and timing. Hiding *those* is the epoch
// scheduler's job (internal/server); the wire format itself makes no
// attempt at padding.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"oblidb/internal/table"
)

// Message types. Requests flow client→server, responses server→client.
const (
	// TExec executes one SQL statement (body: string SQL).
	TExec byte = 1
	// TPrepare parses a statement and returns a reusable handle (body:
	// string SQL). The statement may contain ? / $n placeholders.
	TPrepare byte = 2
	// TExecPrepared executes a prepared handle with bound arguments
	// (body: uint32 handle, uvarint argument count, then one tagged
	// value per argument — int64, float64, string, bool, or null). A
	// body that ends after the handle means zero arguments, which keeps
	// protocol-v1 frames decodable.
	TExecPrepared byte = 3
	// TClosePrepared releases a prepared handle (body: uint32 handle).
	TClosePrepared byte = 4
	// TStats requests server statistics (empty body).
	TStats byte = 5
	// TBegin opens a transaction on this session (v4; empty body).
	TBegin byte = 6
	// TCommit commits the session's open transaction (v4; empty body).
	// The result carries the transaction's total affected-row count.
	TCommit byte = 7
	// TRollback discards the session's open transaction (v4; empty body).
	TRollback byte = 8

	// TResult answers an Exec with a materialized result.
	TResult byte = 16
	// TError answers any request with an error string.
	TError byte = 17
	// TPrepared answers a Prepare with the new handle.
	TPrepared byte = 18
	// TStatsResult answers a Stats request.
	TStatsResult byte = 19
)

// MaxFrame bounds a frame's payload; both ends reject bigger frames
// rather than trusting a length word from the network.
const MaxFrame = 64 << 20

// Request is any client→server message.
type Request struct {
	Type   byte
	ID     uint32
	SQL    string        // TExec, TPrepare
	Handle uint32        // TExecPrepared, TClosePrepared
	Args   []table.Value // TExecPrepared: bound placeholder values
}

// Result is a materialized query result in transit: the same shape as
// core.Result, duplicated here so the protocol layer does not depend on
// the engine.
type Result struct {
	Cols []string
	Rows []table.Row
	// Affected marks a DDL/DML outcome result (single cell = affected
	// row count). Encoded as a trailing flag byte; protocol-v1 frames
	// without it decode as false.
	Affected bool
}

// Stats is the server's self-report: everything in it is information
// the server deliberately publishes (epoch cadence and size are exactly
// what the untrusted host observes anyway, and plan choices are the
// conceded leakage of §2.3).
type Stats struct {
	// Epochs is the number of epochs executed so far.
	Epochs uint64
	// EpochSize is the fixed number of statement slots per epoch.
	EpochSize uint32
	// Real and Dummy count executed statements by kind; Real+Dummy =
	// Epochs×EpochSize.
	Real, Dummy uint64
	// Sessions is the number of currently connected clients.
	Sessions uint32
	// UptimeMillis is milliseconds since the server started serving.
	UptimeMillis uint64

	// Plan-cache and optimizer counters (a v2 extension; v1 frames
	// decode with zeros). PlanEntries is the number of cached statement
	// shapes; PlanHits/PlanMisses count parse-cache lookups;
	// PlanCompiles/PlanCompileSkips count plan compilations vs
	// executions that replayed a compiled plan.
	PlanEntries                    uint32
	PlanHits, PlanMisses           uint64
	PlanCompiles, PlanCompileSkips uint64
	// Picks tallies runtime operator-algorithm decisions, e.g.
	// "select.Hash" or "join.Opaque" or "sort", sorted by name.
	Picks []AlgPick

	// MetricsJSON is the server's full metrics snapshot, JSON-encoded
	// (a v3 extension; v1/v2 frames decode with ""). It carries the
	// same leakage-audited registry the /metrics endpoint exposes, so a
	// client behind a firewall still gets the whole catalog through the
	// protocol it already speaks.
	MetricsJSON string

	// Transaction and journal counters (a v4 extension; older frames
	// decode with zeros). The Tx counters tally BEGIN/COMMIT/ROLLBACK
	// traffic the client already generated; the Wal counters describe
	// the durable journal — all zero when the server runs without one.
	TxBegun, TxCommitted, TxRolledBack, TxAborted uint64
	WalEntries, WalCommits, WalCheckpoints        uint64
	WalBytes                                      uint64
}

// AlgPick is one operator-algorithm tally of Stats.Picks.
type AlgPick struct {
	Name  string
	Count uint64
}

// Response is any server→client message.
type Response struct {
	Type byte
	ID   uint32
	Err  string // TError
	// ErrCode is the stable oberr.Code of a TError (a v5 extension;
	// older frames decode with 0 = unknown). Clients branch on it for
	// retry decisions, so codes are never renumbered.
	ErrCode   uint16
	Result    *Result // TResult
	Handle    uint32  // TPrepared
	NumParams uint32  // TPrepared: placeholder count of the statement
	Stats     Stats   // TStatsResult
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) byte(v byte)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) uvarint(v int) { e.b = binary.AppendUvarint(e.b, uint64(v)) }
func (e *enc) str(s string)  { e.uvarint(len(s)); e.b = append(e.b, s...) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }

// dec is a consuming payload reader; the first decode error sticks.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: %s", msg)
	}
}

func (d *dec) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("truncated uint32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("truncated uint64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) uvarint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 || v > MaxFrame {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil || len(d.b) < n {
		d.fail("truncated string")
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) i64() int64   { return int64(d.u64()) }

// EncodeRequest serializes a request payload (frame it with WriteFrame).
func EncodeRequest(r *Request) []byte {
	e := &enc{}
	e.byte(r.Type)
	e.u32(r.ID)
	switch r.Type {
	case TExec, TPrepare:
		e.str(r.SQL)
	case TExecPrepared:
		e.u32(r.Handle)
		e.uvarint(len(r.Args))
		for _, v := range r.Args {
			e.value(v)
		}
	case TClosePrepared:
		e.u32(r.Handle)
	}
	return e.b
}

// DecodeRequest parses a request payload.
func DecodeRequest(payload []byte) (*Request, error) {
	d := &dec{b: payload}
	r := &Request{Type: d.byte(), ID: d.u32()}
	switch r.Type {
	case TExec, TPrepare:
		r.SQL = d.str()
	case TExecPrepared:
		r.Handle = d.u32()
		// Protocol v1 ended here; an empty remainder is zero arguments.
		if d.err == nil && len(d.b) > 0 {
			n := d.uvarint()
			// Cap preallocation by what the remaining payload could
			// encode (≥1 byte per value) so a lying count cannot force
			// a huge allocation.
			capHint := n
			if maxVals := len(d.b); capHint > maxVals {
				capHint = maxVals
			}
			if n > 0 {
				args := make([]table.Value, 0, capHint)
				for i := 0; i < n && d.err == nil; i++ {
					args = append(args, d.value())
				}
				if d.err == nil {
					r.Args = args
				}
			}
		}
	case TClosePrepared:
		r.Handle = d.u32()
	case TStats, TBegin, TCommit, TRollback:
	default:
		return nil, fmt.Errorf("wire: unknown request type %d", r.Type)
	}
	return r, d.err
}

// EncodeResponse serializes a response payload.
func EncodeResponse(r *Response) []byte {
	e := &enc{}
	e.byte(r.Type)
	e.u32(r.ID)
	switch r.Type {
	case TError:
		e.str(r.Err)
		// v5 extension: the stable error code.
		e.uvarint(int(r.ErrCode))
	case TPrepared:
		e.u32(r.Handle)
		e.uvarint(int(r.NumParams))
	case TResult:
		encodeResult(e, r.Result)
	case TStatsResult:
		e.u64(r.Stats.Epochs)
		e.u32(r.Stats.EpochSize)
		e.u64(r.Stats.Real)
		e.u64(r.Stats.Dummy)
		e.u32(r.Stats.Sessions)
		e.u64(r.Stats.UptimeMillis)
		// v2 extension: plan-cache and optimizer counters.
		e.u32(r.Stats.PlanEntries)
		e.u64(r.Stats.PlanHits)
		e.u64(r.Stats.PlanMisses)
		e.u64(r.Stats.PlanCompiles)
		e.u64(r.Stats.PlanCompileSkips)
		e.uvarint(len(r.Stats.Picks))
		for _, p := range r.Stats.Picks {
			e.str(p.Name)
			e.u64(p.Count)
		}
		// v3 extension: the full metrics snapshot as JSON.
		e.str(r.Stats.MetricsJSON)
		// v4 extension: transaction and journal counters.
		e.u64(r.Stats.TxBegun)
		e.u64(r.Stats.TxCommitted)
		e.u64(r.Stats.TxRolledBack)
		e.u64(r.Stats.TxAborted)
		e.u64(r.Stats.WalEntries)
		e.u64(r.Stats.WalCommits)
		e.u64(r.Stats.WalCheckpoints)
		e.u64(r.Stats.WalBytes)
	}
	return e.b
}

// DecodeResponse parses a response payload.
func DecodeResponse(payload []byte) (*Response, error) {
	d := &dec{b: payload}
	r := &Response{Type: d.byte(), ID: d.u32()}
	switch r.Type {
	case TError:
		r.Err = d.str()
		// Protocol v4 ended here; the remainder is the v5 error code.
		if d.err == nil && len(d.b) > 0 {
			r.ErrCode = uint16(d.uvarint())
		}
	case TPrepared:
		r.Handle = d.u32()
		// Protocol v1 ended here; an empty remainder is zero parameters.
		if d.err == nil && len(d.b) > 0 {
			r.NumParams = uint32(d.uvarint())
		}
	case TResult:
		r.Result = decodeResult(d)
	case TStatsResult:
		r.Stats.Epochs = d.u64()
		r.Stats.EpochSize = d.u32()
		r.Stats.Real = d.u64()
		r.Stats.Dummy = d.u64()
		r.Stats.Sessions = d.u32()
		r.Stats.UptimeMillis = d.u64()
		// Protocol v1 ended here; the remainder is the plan-cache and
		// optimizer extension.
		if d.err == nil && len(d.b) > 0 {
			r.Stats.PlanEntries = d.u32()
			r.Stats.PlanHits = d.u64()
			r.Stats.PlanMisses = d.u64()
			r.Stats.PlanCompiles = d.u64()
			r.Stats.PlanCompileSkips = d.u64()
			n := d.uvarint()
			capHint := n
			if maxPicks := len(d.b) / 9; capHint > maxPicks {
				capHint = maxPicks
			}
			if n > 0 && d.err == nil {
				picks := make([]AlgPick, 0, capHint)
				for i := 0; i < n && d.err == nil; i++ {
					name := d.str()
					picks = append(picks, AlgPick{Name: name, Count: d.u64()})
				}
				if d.err == nil {
					r.Stats.Picks = picks
				}
			}
			// Protocol v2 ended here; the remainder is the v3 metrics
			// snapshot.
			if d.err == nil && len(d.b) > 0 {
				r.Stats.MetricsJSON = d.str()
				// Protocol v3 ended here; the remainder is the v4
				// transaction and journal counters.
				if d.err == nil && len(d.b) > 0 {
					r.Stats.TxBegun = d.u64()
					r.Stats.TxCommitted = d.u64()
					r.Stats.TxRolledBack = d.u64()
					r.Stats.TxAborted = d.u64()
					r.Stats.WalEntries = d.u64()
					r.Stats.WalCommits = d.u64()
					r.Stats.WalCheckpoints = d.u64()
					r.Stats.WalBytes = d.u64()
				}
			}
		}
	default:
		return nil, fmt.Errorf("wire: unknown response type %d", r.Type)
	}
	return r, d.err
}

// Value kind tags on the wire (independent of table.Kind's numbering so
// the storage layer can evolve without a protocol break).
const (
	vInt    byte = 1
	vFloat  byte = 2
	vString byte = 3
	vBool   byte = 4
	vNull   byte = 5
)

// value appends one tagged value.
func (e *enc) value(v table.Value) {
	switch v.Kind {
	case table.KindInt:
		e.byte(vInt)
		e.i64(v.AsInt())
	case table.KindFloat:
		e.byte(vFloat)
		e.f64(v.AsFloat())
	case table.KindBool:
		e.byte(vBool)
		if v.AsBool() {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case table.KindNull:
		e.byte(vNull)
	default:
		e.byte(vString)
		e.str(v.AsString())
	}
}

// value consumes one tagged value.
func (d *dec) value() table.Value {
	switch d.byte() {
	case vInt:
		return table.Int(d.i64())
	case vFloat:
		return table.Float(d.f64())
	case vBool:
		return table.Bool(d.byte() != 0)
	case vString:
		return table.Str(d.str())
	case vNull:
		return table.Null()
	}
	d.fail("unknown value kind")
	return table.Value{}
}

func encodeResult(e *enc, res *Result) {
	e.uvarint(len(res.Cols))
	for _, c := range res.Cols {
		e.str(c)
	}
	e.uvarint(len(res.Rows))
	for _, row := range res.Rows {
		e.uvarint(len(row))
		for _, v := range row {
			e.value(v)
		}
	}
	if res.Affected {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func decodeResult(d *dec) *Result {
	res := &Result{}
	nc := d.uvarint()
	for i := 0; i < nc && d.err == nil; i++ {
		res.Cols = append(res.Cols, d.str())
	}
	nr := d.uvarint()
	for i := 0; i < nr && d.err == nil; i++ {
		nv := d.uvarint()
		// Cap the preallocation by what the remaining payload could
		// possibly encode (≥2 bytes per value), so a lying count from
		// the network cannot force a huge allocation.
		capHint := nv
		if maxVals := len(d.b) / 2; capHint > maxVals {
			capHint = maxVals
		}
		row := make(table.Row, 0, capHint)
		for j := 0; j < nv && d.err == nil; j++ {
			row = append(row, d.value())
		}
		res.Rows = append(res.Rows, row)
	}
	// Protocol v1 ended at the rows; the trailing byte is the
	// affected-count flag.
	if d.err == nil && len(d.b) > 0 {
		res.Affected = d.byte() != 0
	}
	return res
}
