package plan

import (
	"fmt"
	"math"
	"strings"
)

// Explain renders a plan tree as indented text, one line per node, with
// whatever annotations the optimizer pass filled in. The rendering is a
// pure function of the plan (statement shape + public catalog sizes at
// annotation time), so EXPLAIN output is stable per shape and golden
// tests can pin it.
func Explain(root Node) []string {
	var lines []string
	var walk func(n Node, prefix string, last bool, top bool)
	walk = func(n Node, prefix string, last bool, top bool) {
		line := describe(n)
		if top {
			lines = append(lines, line)
		} else {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			lines = append(lines, prefix+branch+line)
		}
		childPrefix := prefix
		if !top {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		kids := children(n)
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1, false)
		}
	}
	walk(root, "", true, true)
	return lines
}

// children lists a node's inputs in display order.
func children(n Node) []Node {
	switch x := n.(type) {
	case *Filter:
		return []Node{x.Input}
	case *Project:
		return []Node{x.Input}
	case *Join:
		return []Node{x.Left, x.Right}
	case *Aggregate:
		return []Node{x.Input}
	case *GroupBy:
		return []Node{x.Input}
	case *Sort:
		return []Node{x.Input}
	case *Limit:
		return []Node{x.Input}
	case *Collect:
		return []Node{x.Input}
	}
	return nil
}

// describe renders one node.
func describe(n Node) string {
	switch x := n.(type) {
	case *Scan:
		if x.InBlocks > 0 {
			return fmt.Sprintf("Scan %s [blocks=%d%s]", x.Table, x.InBlocks, geomSuffix(x.RowsPerBlock))
		}
		return "Scan " + x.Table
	case *IndexScan:
		s := fmt.Sprintf("IndexScan %s (%s)", x.Table, rangeSQL(x.KeyCol, x.Range))
		if x.Algorithm != "" {
			// Both method prices are rendered so EXPLAIN shows *why* the
			// planner picked flat or indexed access, not just which.
			s += fmt.Sprintf(" [alg≈%s index≈%d flat≈%d blocks≤%d]",
				x.Algorithm, x.IndexCost, x.FlatCost, x.InBlocks)
		} else if x.InBlocks > 0 {
			s += fmt.Sprintf(" [blocks≤%d]", x.InBlocks)
		}
		return s
	case *Filter:
		cond := x.CondSQL
		if cond == "" {
			cond = "*"
		}
		s := "Filter " + cond
		if x.Force != nil {
			s += " FORCE " + x.Force.String()
		}
		return s + annot(&x.Choice)
	case *Project:
		names := make([]string, len(x.Items))
		for i, it := range x.Items {
			names[i] = it.Name
		}
		return "Project " + strings.Join(names, ", ")
	case *Join:
		s := fmt.Sprintf("Join %s.%s = %s.%s", x.LeftTable, x.LeftCol, x.RightTable, x.RightCol)
		if x.Force != nil {
			s += " FORCE " + x.Force.String()
		}
		return s + annot(&x.Choice)
	case *Aggregate:
		return "Aggregate " + specNames(x.Specs)
	case *GroupBy:
		return "GroupBy " + x.KeySQL + ": " + specNames(x.Specs) + annot(&x.Choice)
	case *Sort:
		s := "Sort"
		if x.Key == nil {
			s += " (compact)"
		} else {
			s += " " + x.KeySQL
			if x.Desc {
				s += " DESC"
			}
		}
		return s + annot(&x.Choice)
	case *Limit:
		return fmt.Sprintf("Limit %d", x.N)
	case *Collect:
		return "Collect"
	case *Insert:
		return fmt.Sprintf("Insert %s (%d row(s))", x.Table, len(x.Rows))
	case *Update:
		s := fmt.Sprintf("Update %s (%d set(s))", x.Table, len(x.Sets))
		if x.CondSQL != "" {
			s += " WHERE " + x.CondSQL
		}
		if x.Key != nil {
			s += " via " + rangeSQL(x.KeyCol, *x.Key)
		}
		return s
	case *Delete:
		s := "Delete " + x.Table
		if x.CondSQL != "" {
			s += " WHERE " + x.CondSQL
		}
		if x.Key != nil {
			s += " via " + rangeSQL(x.KeyCol, *x.Key)
		}
		return s
	case *Tx:
		return "Tx " + x.Kind.String()
	}
	return fmt.Sprintf("%T", n)
}

func specNames(specs []AggSpec) string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// geomSuffix renders the block-packing geometry (" R=…"), omitted at the
// paper's one-record-per-block layout so R = 1 plans read as before.
func geomSuffix(rpb int) string {
	if rpb <= 1 {
		return ""
	}
	return fmt.Sprintf(" R=%d", rpb)
}

// rangeSQL renders a key range on a named column.
func rangeSQL(col string, r KeyRange) string {
	switch {
	case r.Lo == r.Hi:
		return fmt.Sprintf("%s = %d", col, r.Lo)
	case r.Lo == math.MinInt64:
		return fmt.Sprintf("%s <= %d", col, r.Hi)
	case r.Hi == math.MaxInt64:
		return fmt.Sprintf("%s >= %d", col, r.Lo)
	}
	return fmt.Sprintf("%s in [%d, %d]", col, r.Lo, r.Hi)
}

// annot renders a filled-in Choice (empty string before annotation).
func annot(c *Choice) string {
	if c.Algorithm == "" && c.InBlocks == 0 && c.Cost == 0 {
		return ""
	}
	var parts []string
	if c.Algorithm != "" {
		eq := "="
		if c.Estimated {
			eq = "≈"
		}
		parts = append(parts, "alg"+eq+c.Algorithm)
	}
	if c.InBlocks > 0 || c.OutBlocks > 0 {
		parts = append(parts, fmt.Sprintf("blocks=%d→%d%s", c.InBlocks, c.OutBlocks, geomSuffix(c.RowsPerBlock)))
	}
	if c.Parallelism > 1 {
		parts = append(parts, fmt.Sprintf("P=%d", c.Parallelism))
	}
	if c.Cost > 0 {
		parts = append(parts, fmt.Sprintf("cost≈%d", c.Cost))
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}
