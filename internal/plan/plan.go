// Package plan defines ObliDB's physical plan IR: the typed operator
// tree a SQL statement compiles into before execution. A plan is pure
// statement *shape* — table names, expression structure, literal-derived
// key ranges, forced algorithms, and the public LIMIT size — and never
// contains a bound parameter value, so one compiled plan serves every
// execution of a statement shape and the shape-keyed plan cache can
// store compiled plans without its hit pattern depending on private
// data.
//
// The package sits below both the SQL frontend and the engine:
// internal/sql compiles statements into plans, internal/planner
// annotates them with algorithm and parallelism choices derived from
// public sizes only (the Catalog interface exposes exactly that
// metadata), and internal/core interprets them by wrapping the existing
// oblivious operators. Expressions stay opaque here (the Expr alias):
// the interpreter evaluates them through a Binder the SQL layer
// implements, which is where this execution's argument values live —
// inside the enclave, invisible to planning.
package plan

import (
	"fmt"
	"math"

	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// Expr is an opaque statement-shape expression (the sql package's AST).
// Plans store expressions unbound; a Binder evaluates them at execution
// time with that execution's arguments.
type Expr = any

// KeyRange is an inclusive range on a table's indexed column, extracted
// from literal comparisons in a WHERE clause. Placeholders never feed a
// key range — their values are private — so a range in a plan is part
// of the statement shape.
type KeyRange struct {
	Lo, Hi int64
}

// FullRange spans every key.
func FullRange() KeyRange { return KeyRange{Lo: math.MinInt64, Hi: math.MaxInt64} }

// Node is one operator of a physical plan tree.
type Node interface{ node() }

// Scan reads a whole table: the leaf every full-scan pipeline starts
// from. Operators above it always touch all Blocks of the table,
// whatever the data.
type Scan struct {
	Table string
	Choice
}

// IndexScan reads the rows of Table whose indexed column falls in
// Range, through the oblivious B+ tree. Choosing it (over Scan) leaks
// the scanned segment's size — §4.1's conceded index leakage.
type IndexScan struct {
	Table  string
	KeyCol string
	Range  KeyRange
	// IndexCost and FlatCost are the estimated untrusted block accesses
	// of serving this ranged read through the index vs. a full flat scan;
	// Choice.Algorithm records which method the planner picked. Both are
	// functions of public sizes only.
	IndexCost, FlatCost int64
	Choice
}

// Filter materializes the rows of Input matching Cond into an
// intermediate table using one of the oblivious SELECT algorithms. A
// nil Cond selects everything (still one full oblivious pass — the
// engine never hands out raw table handles). CondSQL is the rendered
// condition for EXPLAIN.
type Filter struct {
	Input   Node
	Cond    Expr
	CondSQL string
	Force   *exec.SelectAlgorithm
	Choice
}

// ProjItem is one output column of a Project node: either a positional
// reference into the input's columns (Col >= 0, used above GroupBy
// whose output layout is [group, aggregates...]) or an expression
// evaluated per row (Col < 0).
type ProjItem struct {
	Col  int
	E    Expr
	SQL  string
	Name string
}

// Project maps each collected row through its items inside the enclave.
// It is always the topmost node under Collect: projection is a
// trace-neutral in-enclave computation applied at materialization.
type Project struct {
	Input Node
	Items []ProjItem
}

// Join joins its two sides on LeftCol = RightCol. The sides are Scan or
// Filter(Scan) nodes; side filters are fused into the join's oblivious
// pre-filter passes.
type Join struct {
	Left, Right           Node
	LeftTable, RightTable string
	LeftCol, RightCol     string
	Force                 *exec.JoinAlgorithm
	Choice
}

// AggSpec is one aggregate output of an Aggregate or GroupBy node.
type AggSpec struct {
	Kind   exec.AggKind
	Column string // empty for COUNT(*)
	Name   string // output column name
}

// Aggregate computes scalar aggregates over Input in one fused pass:
// when Input is a Filter over a leaf, the predicate folds into the scan
// and no intermediate table exists.
type Aggregate struct {
	Input Node
	Specs []AggSpec
}

// GroupBy computes grouped aggregates, emitting one [group, aggs...]
// row per group in sorted group order. KeySQL renders the grouping
// expression for EXPLAIN.
type GroupBy struct {
	Input  Node
	Key    Expr
	KeySQL string
	Specs  []AggSpec
	Choice
}

// Sort materializes Input into a power-of-two padded table ordered by
// Key (dummies last) with a bitonic network. A nil Key sorts by the
// used flag alone — the dummy-last compaction a bare LIMIT needs. The
// filter of a Filter-over-leaf input fuses into Sort's copy pass, which
// skips the planner's stats scan entirely: the trace depends only on
// the input capacity, never on how many rows match.
type Sort struct {
	Input  Node
	Key    Expr // *sql.ColumnRef; nil = compaction only
	KeySQL string
	Desc   bool
	Choice
}

// Limit copies exactly N blocks of Input into an N-capacity output —
// fixed-size padded output, so the host never learns how many rows
// matched. N is always a statement literal (the parser rejects
// placeholder limits), hence public shape.
type Limit struct {
	Input Node
	N     int
}

// Collect decrypts the final table into a client result. It is the root
// of every row-returning plan.
type Collect struct {
	Input Node
}

// SetExpr is one SET col = expr assignment of an Update plan.
type SetExpr struct {
	Column string
	Value  Expr
	SQL    string
}

// Insert appends rows (each a vector of constant expressions, possibly
// placeholders) to a table.
type Insert struct {
	Table string
	Rows  [][]Expr
}

// Update rewrites the rows matching Cond, optionally narrowed by the
// key range extracted from the literal conjuncts of the WHERE clause.
type Update struct {
	Table   string
	Sets    []SetExpr
	Cond    Expr
	CondSQL string
	Key     *KeyRange
	KeyCol  string
}

// Delete removes the rows matching Cond, with the same key-range
// narrowing as Update.
type Delete struct {
	Table   string
	Cond    Expr
	CondSQL string
	Key     *KeyRange
	KeyCol  string
}

// Tx is a transaction-control statement. It compiles like any other
// statement so EXPLAIN renders it and the plan cache keys it, but it
// executes in the session layer (transaction state is per-connection,
// not per-engine).
type Tx struct {
	Kind TxKind
}

// TxKind selects which transaction-control statement a Tx node is.
type TxKind uint8

const (
	// TxBegin opens a transaction.
	TxBegin TxKind = iota
	// TxCommit atomically applies the buffered writes.
	TxCommit
	// TxRollback discards them.
	TxRollback
)

// String renders the kind as its SQL keyword.
func (k TxKind) String() string {
	switch k {
	case TxBegin:
		return "BEGIN"
	case TxCommit:
		return "COMMIT"
	case TxRollback:
		return "ROLLBACK"
	}
	return fmt.Sprintf("TxKind(%d)", uint8(k))
}

func (*Scan) node()      {}
func (*IndexScan) node() {}
func (*Filter) node()    {}
func (*Project) node()   {}
func (*Join) node()      {}
func (*Aggregate) node() {}
func (*GroupBy) node()   {}
func (*Sort) node()      {}
func (*Limit) node()     {}
func (*Collect) node()   {}
func (*Insert) node()    {}
func (*Update) node()    {}
func (*Delete) node()    {}
func (*Tx) node()        {}

// Choice records the optimizer pass's per-node decisions and padded
// cost estimates — exactly the information the paper concedes a query
// plan leaks (§2.3). For selections the final algorithm additionally
// consults the runtime stats scan (|R| is known only then); the
// annotation is the choice under the padded estimate |R| = |T|.
type Choice struct {
	// Algorithm names the chosen (or estimated) operator variant.
	Algorithm string
	// Estimated marks Algorithm as the padded-estimate pick, refined by
	// the runtime stats scan.
	Estimated bool
	// Parallelism is the partition count the planner would use (>= 1).
	Parallelism int
	// InBlocks and OutBlocks are the public input and (padded) output
	// sizes in sealed blocks.
	InBlocks, OutBlocks int
	// RowsPerBlock is the packing factor R of the node's input: how many
	// records each sealed block holds. Part of the public geometry the
	// cost is expressed in.
	RowsPerBlock int
	// Cost is the estimated number of untrusted block accesses under
	// the padded output estimate.
	Cost int64
}

// choice lets the annotator reach the embedded Choice of any node that
// carries one.
func (c *Choice) choice() *Choice { return c }

// Annotatable is implemented by every node embedding a Choice.
type Annotatable interface{ choice() *Choice }

// TableMeta is the public metadata of one table: sizes the adversary
// already observes plus index configuration. It is everything the
// optimizer is allowed to consult.
type TableMeta struct {
	// Blocks is the table's capacity in sealed blocks (the size |T| the
	// host sees).
	Blocks int
	// Rows is the row-slot capacity, Blocks × RowsPerBlock.
	Rows int
	// RowsPerBlock is the packing factor R (1 for index-only tables,
	// whose block unit is the record).
	RowsPerBlock int
	// RecordSize is the sealed record size in bytes.
	RecordSize int
	// KeyColumn names the indexed column ("" when the table has no
	// index).
	KeyColumn string
	// NumColumns is the schema width (needed for join layouts).
	NumColumns int
	// HasFlat reports whether the table has a flat representation a full
	// scan can run against (false for index-only tables).
	HasFlat bool
	// HasIndex reports whether the table has an ORAM-backed index the
	// planner may route ranged reads through.
	HasIndex bool
	// IndexHeight is the B+ tree's level count — public, a function of
	// the (leaked) row count.
	IndexHeight int
	// IndexAccessesPerOp is the untrusted block accesses one logical ORAM
	// operation costs — the public O(log N) factor of the indexed method.
	IndexAccessesPerOp int
	// IndexRowsPerBlock is the packing factor of the index's record
	// blocks (how many rows one ORAM record block holds).
	IndexRowsPerBlock int
}

// Catalog exposes public table metadata to the compiler and optimizer.
type Catalog interface {
	TableMeta(name string) (TableMeta, bool)
}

// JoinNames carries the naming context expressions need above a Join:
// the source table names and the first right-side column index of the
// joined schema (right-side duplicates carry the "r_" prefix).
type JoinNames struct {
	Left, Right string
	RightStart  int
}

// Binder supplies the execution-time expression services a plan needs.
// The SQL layer implements it; this execution's argument values live
// only inside the Binder, so nothing the interpreter or planner touches
// can depend on them. Compiled predicates defer evaluation errors —
// operators must run their full padded access sequence regardless — so
// the interpreter checks Err after operators complete.
type Binder interface {
	// Pred compiles a filter condition into a predicate over rows of
	// schema s. A nil cond yields the all-rows predicate. names carries
	// join naming context (nil outside joins).
	Pred(cond Expr, s *table.Schema, names *JoinNames) (table.Pred, error)
	// GroupKey compiles a grouping expression into a per-row key.
	GroupKey(e Expr, s *table.Schema, names *JoinNames) (exec.GroupBy, error)
	// Column resolves a column-reference expression to its index in s.
	Column(e Expr, s *table.Schema, names *JoinNames) (int, error)
	// Project compiles projection items against the collected result's
	// column names, returning the per-row mapper. names carries the join
	// naming context of the collected rows (nil outside joins), so
	// qualified references resolve against the joined layout.
	Project(items []ProjItem, cols []string, names *JoinNames) (func(table.Row) (table.Row, error), error)
	// RowValues evaluates one INSERT row's constant expressions with
	// this execution's arguments bound.
	RowValues(exprs []Expr) (table.Row, error)
	// Updater compiles SET clauses into an in-place row updater over s.
	Updater(sets []SetExpr, s *table.Schema) (table.Updater, error)
	// Err reports the first deferred evaluation error captured by any
	// compiled callback, checked after operators complete.
	Err() error
}

// ReadOnly reports whether executing the plan cannot mutate engine
// state. Collect and Aggregate roots are pure reads: their subtrees are
// built exclusively from Scan/IndexScan/Filter/Join/GroupBy/Sort/Limit/
// Project nodes, none of which mutate. Insert, Update, Delete, and Tx
// roots are writes. The engine routes read-only plans to its shared
// (read-concurrent) lock side and everything else to the exclusive side.
func ReadOnly(n Node) bool {
	switch n.(type) {
	case *Collect, *Aggregate:
		return true
	default:
		return false
	}
}
