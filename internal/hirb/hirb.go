// Package hirb models the HIRB tree + vORAM oblivious map of Roche,
// Aviv, and Choi (S&P'16), the point-query comparison system of §7.1.
//
// HIRB differs from ObliDB's indexes in the ways that make it slower in
// the paper's measurement (Figure 9):
//
//   - Its ORAM ("vORAM") uses large buckets — the paper instantiates 4096
//     bytes, "a somewhat larger size than our own ORAM's buckets" — so
//     every path access moves far more data through encryption.
//   - Its client does not sit in an enclave shortcutting reads and
//     writes: each tree level costs a separate ORAM read and ORAM write
//     round trip, preserving history independence under the paper's
//     "catastrophic attack" model.
//
// The structure here is a hash-digit trie of fixed height with β=16
// children per node, giving the same expected O(log_β n) levels as the
// HIRB tree's hash-derived node heights, with every operation touching
// exactly height levels.
package hirb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"oblidb/internal/enclave"
	"oblidb/internal/oram"
)

// BucketSize is the vORAM bucket size from the paper's evaluation.
const BucketSize = 4096

const beta = 16 // children per internal node

// Map is an oblivious key-value map over a large-bucket ORAM.
type Map struct {
	o         *oram.ORAM
	height    int // levels, including the leaf level
	valueSize int
	capacity  int
	count     int
	nextID    uint32
	free      []uint32
	buf       []byte
}

// node kinds; a fresh all-zero block is kindEmpty.
const (
	kindEmpty    = 0
	kindInternal = 1
	kindLeaf     = 2
)

// New creates a map for up to capacity entries of fixed valueSize.
func New(e *enclave.Enclave, name string, capacity, valueSize int) (*Map, error) {
	if capacity <= 0 || valueSize <= 0 {
		return nil, fmt.Errorf("hirb: invalid capacity=%d valueSize=%d", capacity, valueSize)
	}
	entrySize := 8 + valueSize
	perLeaf := (BucketSize - 3) / entrySize
	if perLeaf < 1 {
		return nil, fmt.Errorf("hirb: value size %d too large for %d-byte buckets", valueSize, BucketSize)
	}
	// Choose the height so expected leaf occupancy is ~perLeaf/2, leaving
	// headroom for hash skew.
	height := 1
	leaves := 1
	for leaves*perLeaf < 2*capacity {
		leaves *= beta
		height++
	}
	// Block budget: the full trie can materialize in the worst case.
	blocks := 1 + 16
	p := 1
	for l := 1; l < height; l++ {
		p *= beta
		blocks += p
	}
	o, err := oram.New(e, name, blocks, BucketSize, oram.Options{})
	if err != nil {
		return nil, err
	}
	m := &Map{o: o, height: height, valueSize: valueSize, capacity: capacity, nextID: 1, buf: make([]byte, BucketSize)}
	// Materialize the root.
	if _, err := o.Access(oram.OpWrite, 0, m.encodeInternal(make([]uint32, beta))); err != nil {
		return nil, err
	}
	if height == 1 {
		if _, err := o.Access(oram.OpWrite, 0, m.encodeLeaf(nil)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Close releases ORAM resources.
func (m *Map) Close() { m.o.Close() }

// Count returns the number of stored entries.
func (m *Map) Count() int { return m.count }

// Height returns the trie height.
func (m *Map) Height() int { return m.height }

func keyHash(key int64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(key))
	h.Write(b[:])
	return h.Sum64()
}

func digit(hash uint64, level int) int {
	return int(hash >> (4 * level) & 0xF)
}

type leafEntry struct {
	key int64
	val []byte
}

func (m *Map) encodeInternal(children []uint32) []byte {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.buf[0] = kindInternal
	for i, c := range children {
		binary.LittleEndian.PutUint32(m.buf[3+4*i:], c)
	}
	return m.buf
}

func (m *Map) encodeLeaf(entries []leafEntry) []byte {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.buf[0] = kindLeaf
	binary.LittleEndian.PutUint16(m.buf[1:3], uint16(len(entries)))
	off := 3
	for _, e := range entries {
		binary.LittleEndian.PutUint64(m.buf[off:], uint64(e.key))
		copy(m.buf[off+8:off+8+m.valueSize], e.val)
		off += 8 + m.valueSize
	}
	return m.buf
}

func decodeInternal(data []byte) []uint32 {
	children := make([]uint32, beta)
	for i := range children {
		children[i] = binary.LittleEndian.Uint32(data[3+4*i:])
	}
	return children
}

func (m *Map) decodeLeaf(data []byte) []leafEntry {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	entries := make([]leafEntry, n)
	off := 3
	for i := 0; i < n; i++ {
		entries[i].key = int64(binary.LittleEndian.Uint64(data[off:]))
		entries[i].val = append([]byte(nil), data[off+8:off+8+m.valueSize]...)
		off += 8 + m.valueSize
	}
	return entries
}

// walk descends to the leaf for key, modeling the vORAM client's
// separate read and write round trips at every level: each level costs
// two ORAM operations whatever the op, so gets, puts, and deletes are
// indistinguishable.
//
// mutate edits the leaf entries (nil for reads) and reports whether it
// changed them; walk still rewrites every visited node either way.
func (m *Map) walk(key int64, mutate func(entries []leafEntry) ([]leafEntry, bool)) ([]leafEntry, error) {
	h := keyHash(key)
	id := uint32(0)
	var leafEntries []leafEntry
	for level := 0; level < m.height; level++ {
		data, err := m.o.Access(oram.OpRead, int(id), nil)
		if err != nil {
			return nil, err
		}
		kind := data[0]
		atLeafLevel := level == m.height-1
		if atLeafLevel {
			var entries []leafEntry
			if kind == kindLeaf {
				entries = m.decodeLeaf(data)
			}
			leafEntries = entries
			if mutate != nil {
				if newEntries, changed := mutate(entries); changed {
					entries = newEntries
					leafEntries = newEntries
				}
			}
			if len(entries)*(8+m.valueSize)+3 > BucketSize {
				return nil, fmt.Errorf("hirb: leaf overflow (%d entries); capacity exceeded or hash skew", len(entries))
			}
			if _, err := m.o.Access(oram.OpWrite, int(id), m.encodeLeaf(entries)); err != nil {
				return nil, err
			}
			break
		}
		var children []uint32
		if kind == kindInternal {
			children = decodeInternal(data)
		} else {
			children = make([]uint32, beta)
		}
		d := digit(h, level)
		if children[d] == 0 {
			if mutate == nil {
				// Read of a never-materialized subtree: write the node
				// back unchanged and pad the remaining levels with dummy
				// accesses so every walk costs 2 ORAM ops per level.
				if _, err := m.o.Access(oram.OpWrite, int(id), m.encodeInternal(children)); err != nil {
					return nil, err
				}
				for rest := level + 1; rest < m.height; rest++ {
					if err := m.o.DummyAccess(); err != nil {
						return nil, err
					}
					if err := m.o.DummyAccess(); err != nil {
						return nil, err
					}
				}
				return nil, nil
			}
			// Mutations materialize the path.
			cid, err := m.alloc()
			if err != nil {
				return nil, err
			}
			children[d] = cid + 1
		}
		next := children[d] - 1
		if _, err := m.o.Access(oram.OpWrite, int(id), m.encodeInternal(children)); err != nil {
			return nil, err
		}
		id = next
	}
	return leafEntries, nil
}

func (m *Map) alloc() (uint32, error) {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id, nil
	}
	if int(m.nextID) >= m.o.Capacity() {
		return 0, fmt.Errorf("hirb: out of blocks")
	}
	id := m.nextID
	m.nextID++
	return id, nil
}

// Get fetches the value for key.
func (m *Map) Get(key int64) ([]byte, bool, error) {
	entries, err := m.walk(key, nil)
	if err != nil {
		return nil, false, err
	}
	for _, e := range entries {
		if e.key == key {
			return e.val, true, nil
		}
	}
	return nil, false, nil
}

// Put inserts or replaces the value for key.
func (m *Map) Put(key int64, val []byte) error {
	if len(val) != m.valueSize {
		return fmt.Errorf("hirb: value must be %d bytes, got %d", m.valueSize, len(val))
	}
	if m.count >= m.capacity {
		return fmt.Errorf("hirb: map is full (%d entries)", m.capacity)
	}
	added := false
	_, err := m.walk(key, func(entries []leafEntry) ([]leafEntry, bool) {
		for i := range entries {
			if entries[i].key == key {
				entries[i].val = append([]byte(nil), val...)
				return entries, true
			}
		}
		added = true
		return append(entries, leafEntry{key: key, val: append([]byte(nil), val...)}), true
	})
	if err == nil && added {
		m.count++
	}
	return err
}

// Delete removes key, reporting whether it existed.
func (m *Map) Delete(key int64) (bool, error) {
	removed := false
	_, err := m.walk(key, func(entries []leafEntry) ([]leafEntry, bool) {
		for i := range entries {
			if entries[i].key == key {
				entries = append(entries[:i], entries[i+1:]...)
				removed = true
				return entries, true
			}
		}
		return entries, false
	})
	if err == nil && removed {
		m.count--
	}
	return removed, err
}

// BulkLoad fills an empty map in one pass, writing each trie node block
// exactly once — setup for benchmarks, where only the entry count leaks.
// Duplicate keys keep the last value.
func (m *Map) BulkLoad(keys []int64, vals [][]byte) error {
	if m.count != 0 {
		return fmt.Errorf("hirb: BulkLoad requires an empty map")
	}
	if len(keys) != len(vals) {
		return fmt.Errorf("hirb: %d keys but %d values", len(keys), len(vals))
	}
	if len(keys) > m.capacity {
		return fmt.Errorf("hirb: %d entries exceed capacity %d", len(keys), m.capacity)
	}
	type memNode struct {
		children [beta]*memNode
		entries  []leafEntry
	}
	root := &memNode{}
	count := 0
	for i, k := range keys {
		if len(vals[i]) != m.valueSize {
			return fmt.Errorf("hirb: value %d is %d bytes, want %d", i, len(vals[i]), m.valueSize)
		}
		h := keyHash(k)
		n := root
		for level := 0; level < m.height-1; level++ {
			d := digit(h, level)
			if n.children[d] == nil {
				n.children[d] = &memNode{}
			}
			n = n.children[d]
		}
		replaced := false
		for j := range n.entries {
			if n.entries[j].key == k {
				n.entries[j].val = append([]byte(nil), vals[i]...)
				replaced = true
				break
			}
		}
		if !replaced {
			n.entries = append(n.entries, leafEntry{key: k, val: append([]byte(nil), vals[i]...)})
			count++
		}
	}
	var write func(n *memNode, id uint32, level int) error
	write = func(n *memNode, id uint32, level int) error {
		if level == m.height-1 {
			if len(n.entries)*(8+m.valueSize)+3 > BucketSize {
				return fmt.Errorf("hirb: leaf overflow during bulk load")
			}
			_, err := m.o.Access(oram.OpWrite, int(id), m.encodeLeaf(n.entries))
			return err
		}
		children := make([]uint32, beta)
		for d, c := range n.children {
			if c == nil {
				continue
			}
			cid, err := m.alloc()
			if err != nil {
				return err
			}
			children[d] = cid + 1
			if err := write(c, cid, level+1); err != nil {
				return err
			}
		}
		_, err := m.o.Access(oram.OpWrite, int(id), m.encodeInternal(children))
		return err
	}
	if err := write(root, 0, 0); err != nil {
		return err
	}
	m.count = count
	return nil
}

// valueEqual is a test helper for fixed-size values.
func valueEqual(a, b []byte) bool { return bytes.Equal(a, b) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
