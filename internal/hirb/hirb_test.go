package hirb

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/trace"
)

func newMap(t *testing.T, capacity int, tr *trace.Tracer) *Map {
	t.Helper()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	m, err := New(e, "hirb", capacity, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func val64(v uint64) []byte {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestPutGetDelete(t *testing.T) {
	m := newMap(t, 200, nil)
	for i := int64(0); i < 100; i++ {
		if err := m.Put(i, val64(uint64(i*7))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if m.Count() != 100 {
		t.Fatalf("Count = %d", m.Count())
	}
	for i := int64(0); i < 100; i++ {
		v, ok, err := m.Get(i)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if binary.LittleEndian.Uint64(v) != uint64(i*7) {
			t.Fatalf("get %d wrong value", i)
		}
	}
	if _, ok, _ := m.Get(1000); ok {
		t.Fatal("absent key found")
	}
	for i := int64(0); i < 50; i++ {
		ok, err := m.Delete(i)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if m.Count() != 50 {
		t.Fatalf("Count after deletes = %d", m.Count())
	}
	if ok, _ := m.Delete(0); ok {
		t.Fatal("double delete succeeded")
	}
	for i := int64(50); i < 100; i++ {
		if _, ok, _ := m.Get(i); !ok {
			t.Fatalf("surviving key %d lost", i)
		}
	}
}

func TestPutReplaces(t *testing.T) {
	m := newMap(t, 10, nil)
	_ = m.Put(5, val64(1))
	_ = m.Put(5, val64(2))
	if m.Count() != 1 {
		t.Fatalf("replace changed count: %d", m.Count())
	}
	v, _, _ := m.Get(5)
	if binary.LittleEndian.Uint64(v) != 2 {
		t.Fatal("replace did not take")
	}
}

func TestValueSizeEnforced(t *testing.T) {
	m := newMap(t, 10, nil)
	if err := m.Put(1, make([]byte, 63)); err == nil {
		t.Fatal("short value accepted")
	}
}

func TestModel(t *testing.T) {
	m := newMap(t, 300, nil)
	model := map[int64]uint64{}
	rng := rand.New(rand.NewPCG(6, 6))
	for step := 0; step < 1500; step++ {
		k := int64(rng.IntN(80))
		switch rng.IntN(3) {
		case 0:
			if len(model) < 300 {
				v := rng.Uint64()
				if err := m.Put(k, val64(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		case 1:
			ok, err := m.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[k]
			if ok != want {
				t.Fatalf("step %d: delete(%d)=%v, model %v", step, k, ok, want)
			}
			delete(model, k)
		default:
			v, ok, err := m.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := model[k]
			if ok != exists {
				t.Fatalf("step %d: get(%d)=%v, model %v", step, k, ok, exists)
			}
			if ok && binary.LittleEndian.Uint64(v) != want {
				t.Fatalf("step %d: get(%d) wrong value", step, k)
			}
		}
	}
}

func TestUniformAccessCounts(t *testing.T) {
	// Gets, puts, and deletes — hit or miss — perform identical numbers of
	// untrusted accesses: 2 ORAM ops per level.
	tr := trace.New()
	tr.EnableCounts()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	m, err := New(e, "hirb", 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := int64(0); i < 50; i++ {
		_ = m.Put(i, val64(uint64(i)))
	}
	count := func(f func()) int {
		before := tr.TotalCount()
		f()
		return int(tr.TotalCount() - before)
	}
	want := count(func() { _, _, _ = m.Get(0) })
	ops := []func(){
		func() { _, _, _ = m.Get(49) },
		func() { _, _, _ = m.Get(-12345) }, // miss
		func() { _ = m.Put(7, val64(9)) },  // replace
		func() { _, _ = m.Delete(3) },
		func() { _, _ = m.Delete(-999) }, // miss
	}
	for i, f := range ops {
		if got := count(f); got != want {
			t.Fatalf("op %d made %d accesses, want %d", i, got, want)
		}
	}
}

func TestCapacityEnforced(t *testing.T) {
	m := newMap(t, 4, nil)
	for i := int64(0); i < 4; i++ {
		if err := m.Put(i, val64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Put(99, val64(0)); err == nil {
		t.Fatal("over-capacity put accepted")
	}
}

func TestBulkLoad(t *testing.T) {
	m := newMap(t, 300, nil)
	keys := make([]int64, 0, 200)
	vals := make([][]byte, 0, 200)
	for i := int64(0); i < 200; i++ {
		keys = append(keys, i)
		vals = append(vals, val64(uint64(i*3)))
	}
	// One duplicate: last value wins, count unaffected.
	keys = append(keys, 10)
	vals = append(vals, val64(999))
	if err := m.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 200 {
		t.Fatalf("Count = %d, want 200", m.Count())
	}
	for i := int64(0); i < 200; i++ {
		v, ok, err := m.Get(i)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		want := uint64(i * 3)
		if i == 10 {
			want = 999
		}
		if binary.LittleEndian.Uint64(v) != want {
			t.Fatalf("get %d = %d, want %d", i, binary.LittleEndian.Uint64(v), want)
		}
	}
	// Mutations still work after a bulk load.
	if err := m.Put(500, val64(1)); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Delete(0); !ok {
		t.Fatal("delete after bulk load failed")
	}
	if err := m.BulkLoad(keys, vals); err == nil {
		t.Fatal("bulk load into non-empty map accepted")
	}
}

func TestHeightScalesWithCapacity(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	small, err := New(e, "s", 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	big, err := New(e, "b", 50000, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if big.Height() <= small.Height() {
		t.Fatalf("heights: big=%d small=%d", big.Height(), small.Height())
	}
}
