package difftest

import (
	"fmt"
	"path/filepath"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/crypt"
	"oblidb/internal/faultstore"
	"oblidb/internal/oberr"
	"oblidb/internal/sql"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
)

// chaosEngine is a journaled engine running over a fault-injecting
// store, plus the retry-and-recover policy a resilient application
// would use: retriable errors are retried; a broken engine (containment
// hit a second fault mid-rollback) is rebuilt from its own journal and
// the statement retried there. Anything else — a non-retriable error or
// a statement that never lands — fails the test.
type chaosEngine struct {
	t    *testing.T
	cfg  core.Config
	inj  *faultstore.Injector
	key  []byte
	path string

	db         *core.DB
	x          *sql.Executor
	l          *wal.Log
	recoveries int
}

func newChaosEngine(t *testing.T, seed uint64, sched faultstore.Schedule) *chaosEngine {
	t.Helper()
	e := &chaosEngine{
		t:    t,
		inj:  faultstore.NewInjector(sched),
		key:  crypt.NewRandomKey(),
		path: filepath.Join(t.TempDir(), "chaos.wal"),
	}
	e.cfg = core.Config{Key: e.key, Seed: seed + 1, RowsPerBlock: 4, Fault: e.inj}
	db, err := core.Open(e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(e.path, e.key, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	e.db, e.l, e.x = db, l, sql.New(db)
	t.Cleanup(func() { e.l.Close() })
	return e
}

// exec runs one statement under chaos. The bound is generous but real:
// the schedule's MaxFaults caps total injections, so a statement that
// still fails after the cap has hit a genuine bug, not bad luck.
func (e *chaosEngine) exec(stmt string) *core.Result {
	e.t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		if e.db.Broken() != nil {
			e.recover()
		}
		res, err := e.x.Execute(stmt)
		if err == nil {
			return res
		}
		if oberr.CodeOf(err) == oberr.CodeEngineFailed || e.db.Broken() != nil {
			// Containment itself failed (a second fault mid-rollback): the
			// in-memory engine is latched broken, but the journal is intact
			// by construction — rebuild from it and retry.
			e.recover()
			continue
		}
		if !oberr.Retriable(err) {
			e.t.Fatalf("non-retriable error under chaos: %s: %v", stmt, err)
		}
	}
	e.t.Fatalf("statement made no progress after 200 attempts: %s", stmt)
	return nil
}

// recover rebuilds the engine from its journal. Recovery replays into a
// fresh engine over the SAME faulty store, so it may itself hit faults;
// each failed replay is discarded wholesale and retried.
func (e *chaosEngine) recover() {
	e.t.Helper()
	e.l.Close()
	for attempt := 0; attempt < 200; attempt++ {
		l, err := wal.Open(e.path, e.key, wal.Options{})
		if err != nil {
			e.t.Fatalf("reopening journal for recovery: %v", err)
		}
		db, err := core.Open(e.cfg)
		if err != nil {
			e.t.Fatal(err)
		}
		if err := db.Recover(l); err != nil {
			l.Close()
			if !oberr.Retriable(err) {
				e.t.Fatalf("recovery failed non-retriably: %v", err)
			}
			continue
		}
		// Recover replays but does not attach; journaling must resume for
		// the next crash. Attaching checkpoints through the faulty store,
		// so it too may need another round.
		if err := db.AttachWAL(l); err != nil {
			l.Close()
			if !oberr.Retriable(err) {
				e.t.Fatalf("re-attaching journal after recovery: %v", err)
			}
			continue
		}
		e.db, e.l, e.x = db, l, sql.New(db)
		e.recoveries++
		return
	}
	e.t.Fatal("recovery made no progress after 200 attempts")
}

// TestChaosDifferential is the end-to-end resilience pin: seeded random
// workloads run on a journaled engine under a randomized store-fault
// schedule, diffed statement by statement against a fault-free engine
// with identical configuration. Every statement must either land with
// the reference answer (possibly after typed-retriable retries and
// journal recoveries) — never a wrong answer, a hang, or corruption.
// Afterward the journal is replayed into a clean engine and the final
// state diffed again, pinning that the fault-and-retry history left a
// consistent durable record.
func TestChaosDifferential(t *testing.T) {
	seeds := []uint64{5, 21, 77}
	ops := 50
	if testing.Short() {
		seeds = seeds[:1]
		ops = 25
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			refDB, err := core.Open(core.Config{Seed: seed + 1, RowsPerBlock: 4})
			if err != nil {
				t.Fatal(err)
			}
			refX := sql.New(refDB)
			ce := newChaosEngine(t, seed, faultstore.Schedule{
				Seed:       seed,
				ReadFault:  0.002,
				WriteFault: 0.002,
				MaxFaults:  25,
			})
			for _, ddl := range Setup() {
				if _, err := refX.Execute(ddl); err != nil {
					t.Fatal(err)
				}
				ce.exec(ddl)
			}
			g := NewGenerator(seed)
			for i := 0; i < ops; i++ {
				op := g.Next()
				want, err := refX.Execute(op.SQL)
				if err != nil {
					t.Fatalf("op %d on fault-free reference: %s: %v", i, op.SQL, err)
				}
				got := ce.exec(op.SQL)
				// DML included: affected counts must survive retries exactly
				// (a retried statement must not double-apply).
				if w, g := Canon(want.Cols, want.Rows), Canon(got.Cols, got.Rows); w != g {
					t.Fatalf("op %d diverged under chaos:\n  %s\n chaos:\n%s\n reference:\n%s",
						i, op.SQL, g, w)
				}
			}
			// The journal must describe the same final state: replay it into
			// a clean (fault-free) engine and diff the full tables.
			ce.l.Close()
			l, err := wal.Open(ce.path, ce.key, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			rec, err := core.Open(core.Config{Key: ce.key, Seed: seed + 1, RowsPerBlock: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Recover(l); err != nil {
				t.Fatalf("chaos run left an unrecoverable journal: %v", err)
			}
			recX := sql.New(rec)
			for _, q := range []string{"SELECT * FROM t0", "SELECT * FROM t1"} {
				want, err := refX.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := recX.Execute(q)
				if err != nil {
					t.Fatalf("recovered engine: %s: %v", q, err)
				}
				if w, g := Canon(want.Cols, want.Rows), Canon(got.Cols, got.Rows); w != g {
					t.Fatalf("journal diverged from reference on %s:\n recovered:\n%s\n reference:\n%s", q, g, w)
				}
			}
			if ce.inj.Injected() == 0 {
				t.Fatal("schedule injected no faults — the chaos run was vacuous")
			}
			t.Logf("chaos seed=%d: %d faults injected, %d journal recoveries", seed, ce.inj.Injected(), ce.recoveries)
		})
	}
}

// TestChaosTraceIdentity pins the leakage side of the fault path at the
// SQL level: two workloads with identical statement shapes and matched
// per-statement affected counts, but different data values, run under
// the same fault schedule with the same retry policy, must emit
// byte-identical store traces. Fault decisions key on access index only,
// so injection points, rollbacks, and retries line up run to run — a
// host watching a faulty execution learns nothing about values it would
// not learn from a fault-free one.
func TestChaosTraceIdentity(t *testing.T) {
	key := crypt.NewRandomKey()
	shape := func(base int64) []string {
		vals := ""
		for i := int64(0); i < 8; i++ {
			if i > 0 {
				vals += ", "
			}
			vals += fmt.Sprintf("(%d, %d)", base+i, base*3+i)
		}
		return []string{
			"CREATE TABLE c0 (k INTEGER, v INTEGER) CAPACITY = 64",
			"INSERT INTO c0 VALUES " + vals,
			fmt.Sprintf("UPDATE c0 SET v = v + 1 WHERE k < %d", base+4), // matches 4 rows in every run
			fmt.Sprintf("DELETE FROM c0 WHERE k >= %d", base+6),         // matches 2 rows in every run
			"SELECT COUNT(*) FROM c0",
			fmt.Sprintf("INSERT INTO c0 VALUES (%d, %d)", base+100, base),
			fmt.Sprintf("SELECT * FROM c0 WHERE v < %d", base), // matches 0 rows in every run
		}
	}
	fingerprint := func(base int64) [32]byte {
		tr := trace.New()
		inj := faultstore.NewInjector(faultstore.Schedule{Seed: 4242, ReadFault: 0.01, WriteFault: 0.01})
		db, err := core.Open(core.Config{Key: key, Seed: 7, RowsPerBlock: 4, Tracer: tr, Fault: inj})
		if err != nil {
			t.Fatal(err)
		}
		l, err := wal.Open(filepath.Join(t.TempDir(), "trace.wal"), key, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if err := db.AttachWAL(l); err != nil {
			t.Fatal(err)
		}
		x := sql.New(db)
		for si, stmt := range shape(base) {
			for attempt := 0; ; attempt++ {
				_, err := x.Execute(stmt)
				if err == nil {
					break
				}
				if !oberr.Retriable(err) {
					t.Fatalf("statement %d: non-retriable %v", si, err)
				}
				if attempt > 100 {
					t.Fatalf("statement %d: no progress after %d attempts", si, attempt)
				}
			}
		}
		return tr.Fingerprint()
	}
	if fingerprint(1000) != fingerprint(33000) {
		t.Fatal("same-shape/different-data workloads diverged their traces under one fault schedule")
	}
}
