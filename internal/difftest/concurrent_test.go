package difftest

import (
	"fmt"
	"sync"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/sql"
)

// TestDifferentialConcurrentReads extends the matrix with the
// concurrent-read engines behind server.Config.Workers: the same seeded
// workloads, but every run of consecutive queries executes across
// goroutines on an engine whose read-slot pool is 2 or 4 wide — the
// exact shape RunEpoch drives at Workers ∈ {2, 4} — while a chaff
// writer hammers a table the queries never read, so shared-side reads
// genuinely race exclusive-side writes on the engine lock. Workload
// DML applies between runs, like the epoch scheduler's mutation
// barriers. Every query's multiset must still match the serial
// reference exactly: a read that ever observes a torn catalog, a
// half-applied mutation, or another slot's scratch state diverges here.
func TestDifferentialConcurrentReads(t *testing.T) {
	seeds := []uint64{5, 13, 20260808}
	opsPerSeed := 80
	if testing.Short() {
		seeds = seeds[:1]
		opsPerSeed = 40
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			type engine struct {
				name string
				x    *sql.Executor
			}
			engines := []engine{}
			for _, rc := range []int{2, 4} {
				db, err := core.Open(core.Config{Seed: seed + 1, ReadConcurrency: rc})
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, engine{fmt.Sprintf("readconc-W%d", rc), sql.New(db)})
			}
			ref := NewRef()
			for _, e := range engines {
				for _, ddl := range Setup() {
					if _, err := e.x.Execute(ddl); err != nil {
						t.Fatalf("%s: %s: %v", e.name, ddl, err)
					}
				}
				// The chaff table: written concurrently with every read run,
				// never read by the workload, so racing it is deterministic.
				if _, err := e.x.Execute("CREATE TABLE chaff (a INTEGER) CAPACITY = 16"); err != nil {
					t.Fatal(err)
				}
				if _, err := e.x.Execute("INSERT INTO chaff VALUES (0)"); err != nil {
					t.Fatal(err)
				}
			}

			type pendingRead struct {
				sql  string
				want string
				op   int
			}
			var pending []pendingRead
			flush := func() {
				if len(pending) == 0 {
					return
				}
				for _, e := range engines {
					var wg sync.WaitGroup
					// Exclusive-side chaff racing the shared-side reads.
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 2; i++ {
							if _, err := e.x.Execute("UPDATE chaff SET a = a + 1"); err != nil {
								t.Errorf("%s: chaff write: %v", e.name, err)
								return
							}
						}
					}()
					for _, pr := range pending {
						wg.Add(1)
						go func(pr pendingRead) {
							defer wg.Done()
							res, err := e.x.Execute(pr.sql)
							if err != nil {
								t.Errorf("op %d on %s: %s: %v", pr.op, e.name, pr.sql, err)
								return
							}
							if got := Canon(res.Cols, res.Rows); got != pr.want {
								t.Errorf("op %d diverged on %s:\n  %s\n engine:\n%s\n reference:\n%s",
									pr.op, e.name, pr.sql, got, pr.want)
							}
						}(pr)
					}
					wg.Wait()
				}
				pending = pending[:0]
			}

			g := NewGenerator(seed)
			for i := 0; i < opsPerSeed; i++ {
				op := g.Next()
				want := op.Ref(ref)
				if want == nil {
					// Mutation barrier: drain the read run, then apply the
					// DML alone, in arrival order — RunEpoch's discipline.
					flush()
					for _, e := range engines {
						if _, err := e.x.Execute(op.SQL); err != nil {
							t.Fatalf("op %d on %s: %s: %v", i, e.name, op.SQL, err)
						}
					}
					continue
				}
				pending = append(pending, pendingRead{op.SQL, Canon(want.Cols, want.Rows), i})
			}
			flush()
			if t.Failed() {
				t.FailNow()
			}
		})
	}
}
