package difftest

import (
	"fmt"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/sql"
)

// TestDifferentialSQLWorkloads is the harness itself: seeded random
// workloads through the serial oblivious engine, the parallel engine at
// P ∈ {1, 2, 4}, and the baseline reference, asserting identical result
// multisets statement by statement.
func TestDifferentialSQLWorkloads(t *testing.T) {
	seeds := []uint64{1, 7, 20260726}
	opsPerSeed := 80
	if testing.Short() {
		seeds = seeds[:1]
		opsPerSeed = 40
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			type engine struct {
				name string
				x    *sql.Executor
			}
			engines := []engine{}
			for _, p := range []int{0, 1, 2, 4} {
				name := "serial"
				if p > 0 {
					name = fmt.Sprintf("parallel-P%d", p)
				}
				db, err := core.Open(core.Config{Seed: seed + 1, Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, engine{name, sql.New(db)})
			}
			// Block-packing matrix: the same workloads at R ∈ {1, 4, 16}
			// (the default engines above run the auto ~4 KiB packing), so
			// every packed geometry — including R = 1, the paper's — is
			// differentially checked against the same reference. R = 4
			// also runs parallel, exercising block-aligned partitions.
			for _, r := range []int{1, 4, 16} {
				db, err := core.Open(core.Config{Seed: seed + 1, RowsPerBlock: r})
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, engine{fmt.Sprintf("packed-R%d", r), sql.New(db)})
			}
			dbp, err := core.Open(core.Config{Seed: seed + 1, RowsPerBlock: 4, Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, engine{"packed-R4-P2", sql.New(dbp)})
			ref := NewRef()
			for _, e := range engines {
				for _, ddl := range Setup() {
					if _, err := e.x.Execute(ddl); err != nil {
						t.Fatalf("%s: %s: %v", e.name, ddl, err)
					}
				}
			}

			g := NewGenerator(seed)
			for i := 0; i < opsPerSeed; i++ {
				op := g.Next()
				want := op.Ref(ref)
				var wantCanon string
				if want != nil {
					wantCanon = Canon(want.Cols, want.Rows)
				}
				for _, e := range engines {
					res, err := e.x.Execute(op.SQL)
					if err != nil {
						t.Fatalf("op %d on %s: %s: %v", i, e.name, op.SQL, err)
					}
					if want == nil {
						continue // DML: engines return affected counts
					}
					if got := Canon(res.Cols, res.Rows); got != wantCanon {
						t.Fatalf("op %d diverged on %s:\n  %s\n engine:\n%s\n reference:\n%s",
							i, e.name, op.SQL, got, wantCanon)
					}
				}
			}
		})
	}
}

// TestGeneratorDeterministic pins the generator's stream to its seed:
// the differential runs only mean something if every engine sees the
// same workload.
func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(99), NewGenerator(99)
	refA, refB := NewRef(), NewRef()
	for i := 0; i < 50; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.SQL != ob.SQL {
			t.Fatalf("op %d differs:\n%s\n%s", i, oa.SQL, ob.SQL)
		}
		oa.Ref(refA)
		ob.Ref(refB)
	}
}

// TestDifferentialSQLWorkloadsIndexed runs the same seeded workloads
// with the generator's key column indexed, so the planner's costed
// access choice (flat scan vs. ORAM index) and the dual-write DML paths
// are differentially checked against the reference at every packing
// R ∈ {1, 4, 16}, plus an index-only engine where the ORAM B+ tree is
// the sole representation. Every fourth DML statement additionally runs
// through BEGIN/COMMIT, exercising the deferred-transaction path.
func TestDifferentialSQLWorkloadsIndexed(t *testing.T) {
	seeds := []uint64{3, 11}
	opsPerSeed := 60
	if testing.Short() {
		seeds = seeds[:1]
		opsPerSeed = 30
	}
	bothDDL := []string{
		"CREATE TABLE t0 (k INTEGER, v INTEGER, s VARCHAR(12)) INDEX ON k CAPACITY = 512",
		"CREATE TABLE t1 (fk INTEGER, w INTEGER) CAPACITY = 512",
	}
	indexOnlyDDL := []string{
		"CREATE TABLE t0 (k INTEGER, v INTEGER, s VARCHAR(12)) USING INDEX(k) CAPACITY = 512",
		"CREATE TABLE t1 (fk INTEGER, w INTEGER) CAPACITY = 512",
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			type engine struct {
				name string
				x    *sql.Executor
				tx   sql.TxState
			}
			engines := []*engine{}
			add := func(name string, r int, ddl []string) {
				db, err := core.Open(core.Config{Seed: seed + 1, RowsPerBlock: r})
				if err != nil {
					t.Fatal(err)
				}
				e := &engine{name: name, x: sql.New(db)}
				for _, stmt := range ddl {
					if _, err := e.x.Execute(stmt); err != nil {
						t.Fatalf("%s: %s: %v", name, stmt, err)
					}
				}
				engines = append(engines, e)
			}
			for _, r := range []int{1, 4, 16} {
				add(fmt.Sprintf("indexed-R%d", r), r, bothDDL)
			}
			add("index-only-R4", 4, indexOnlyDDL)

			ref := NewRef()
			g := NewGenerator(seed)
			for i := 0; i < opsPerSeed; i++ {
				op := g.Next()
				want := op.Ref(ref)
				var wantCanon string
				if want != nil {
					wantCanon = Canon(want.Cols, want.Rows)
				}
				for _, e := range engines {
					var res *core.Result
					var err error
					if want == nil && i%4 == 0 {
						// DML through an explicit transaction: buffer, then
						// commit the one-statement batch atomically.
						res, err = execInTx(e.x, &e.tx, op.SQL)
					} else {
						res, err = e.x.Execute(op.SQL)
					}
					if err != nil {
						t.Fatalf("op %d on %s: %s: %v", i, e.name, op.SQL, err)
					}
					if want == nil {
						continue
					}
					if got := Canon(res.Cols, res.Rows); got != wantCanon {
						t.Fatalf("op %d diverged on %s:\n  %s\n engine:\n%s\n reference:\n%s",
							i, e.name, op.SQL, got, wantCanon)
					}
				}
			}
		})
	}
}

// execInTx wraps one DML statement in BEGIN/COMMIT through the session
// transaction machinery.
func execInTx(x *sql.Executor, tx *sql.TxState, stmt string) (*core.Result, error) {
	if err := tx.Begin(); err != nil {
		return nil, err
	}
	prep, err := x.Prepare(stmt)
	if err != nil {
		return nil, err
	}
	if err := tx.Buffer(prep, nil); err != nil {
		return nil, err
	}
	items, err := tx.Take()
	if err != nil {
		return nil, err
	}
	return x.ExecTx(items)
}
