// Package difftest is the differential test harness: a seeded generator
// produces randomized SQL workloads (extending internal/workload's mix
// idea to full statements), each statement carries its own reference
// semantics over internal/baseline's plain tables, and the harness runs
// the workload through the serial oblivious engine, the partition-
// parallel engine at several pool sizes, and the baseline, asserting
// every engine returns the same result multiset for every statement.
//
// The point is cross-checking three independent implementations of the
// same semantics: the oblivious operators (with all their padding and
// dummy-write machinery), their partition-parallel variants (with
// split/merge machinery on top), and a plain in-memory executor with
// none of it. A divergence in any padding, compaction, or merge step
// shows up as a multiset mismatch on some generated statement.
package difftest

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"oblidb/internal/baseline"
	"oblidb/internal/table"
)

// Op is one generated statement: its SQL text (for the engines) and its
// reference execution (for the baseline).
type Op struct {
	SQL string
	// Ref applies the statement to the reference state and returns the
	// expected result, or nil for DML (engines return affected-count
	// rows, which the harness does not compare for DML).
	Ref func(r *Ref) *RefResult
}

// RefResult is the reference answer: column names plus rows.
type RefResult struct {
	Cols []string
	Rows []table.Row
}

// Ref is the reference state: plain unprotected tables.
type Ref struct {
	t0 *baseline.PlainTable // t0(k INTEGER unique, v INTEGER, s VARCHAR)
	t1 *baseline.PlainTable // t1(fk INTEGER, w INTEGER)
}

// NewRef creates empty reference state matching the generator's schema.
func NewRef() *Ref {
	return &Ref{
		t0: baseline.NewPlainTable(table.MustSchema(
			table.Column{Name: "k", Kind: table.KindInt},
			table.Column{Name: "v", Kind: table.KindInt},
			table.Column{Name: "s", Kind: table.KindString, Width: 12},
		)),
		t1: baseline.NewPlainTable(table.MustSchema(
			table.Column{Name: "fk", Kind: table.KindInt},
			table.Column{Name: "w", Kind: table.KindInt},
		)),
	}
}

// Setup returns the DDL every engine runs before the workload.
func Setup() []string {
	return []string{
		"CREATE TABLE t0 (k INTEGER, v INTEGER, s VARCHAR(12)) CAPACITY = 512",
		"CREATE TABLE t1 (fk INTEGER, w INTEGER) CAPACITY = 512",
	}
}

// pred is a generated predicate over t0: SQL text plus semantics.
type pred struct {
	sql string
	fn  func(k, v int64, s string) bool
}

// Generator produces a deterministic statement stream.
type Generator struct {
	rng   *rand.Rand
	nextK int64
	rows0 int // live t0 rows (bounds delete/insert churn)
	rows1 int
}

// NewGenerator seeds a generator.
func NewGenerator(seed uint64) *Generator {
	return &Generator{rng: rand.New(rand.NewPCG(seed, 0x5eed))}
}

func (g *Generator) pred0() pred {
	switch g.rng.IntN(6) {
	case 0:
		c := int64(g.rng.IntN(40) - 20)
		return pred{fmt.Sprintf("v < %d", c), func(_, v int64, _ string) bool { return v < c }}
	case 1:
		c := int64(g.rng.IntN(40) - 20)
		return pred{fmt.Sprintf("v >= %d", c), func(_, v int64, _ string) bool { return v >= c }}
	case 2:
		m := int64(g.rng.IntN(4) + 2)
		r := g.rng.Int64N(m)
		return pred{fmt.Sprintf("k %% %d = %d", m, r), func(k, _ int64, _ string) bool { return k%m == r }}
	case 3:
		c := int64(g.rng.IntN(40) - 20)
		return pred{fmt.Sprintf("NOT v = %d", c), func(_, v int64, _ string) bool { return v != c }}
	case 4:
		s := g.genStr()
		return pred{fmt.Sprintf("s = '%s'", s), func(_, _ int64, have string) bool { return have == s }}
	default:
		c := int64(g.rng.IntN(40) - 20)
		m := int64(g.rng.IntN(3) + 2)
		return pred{fmt.Sprintf("(v < %d) OR (k %% %d = 0)", c, m),
			func(k, v int64, _ string) bool { return v < c || k%m == 0 }}
	}
}

func (g *Generator) genStr() string { return fmt.Sprintf("s%d", g.rng.IntN(7)) }

func (g *Generator) genVal() int64 { return int64(g.rng.IntN(40) - 20) }

// row0 iterates t0 reference rows as (k, v, s).
func each0(r *Ref, fn func(k, v int64, s string)) {
	for _, row := range r.t0.Rows {
		fn(row[0].AsInt(), row[1].AsInt(), row[2].AsString())
	}
}

// Next produces the next workload statement.
func (g *Generator) Next() Op {
	p := g.rng.IntN(100)
	switch {
	case p < 25 && g.rows0 < 400 || g.rows0 == 0:
		return g.insert0()
	case p < 35 && g.rows1 < 400:
		return g.insert1()
	case p < 43:
		return g.delete0()
	case p < 51:
		return g.update0()
	case p < 63:
		return g.select0()
	case p < 71:
		return g.orderLimit0()
	case p < 79:
		return g.aggregate0()
	case p < 88:
		return g.group0()
	case p < 94:
		return g.joinAggregate()
	default:
		return g.join()
	}
}

func (g *Generator) insert0() Op {
	n := g.rng.IntN(8) + 1
	g.rows0 += n
	vals := make([]string, n)
	rows := make([]table.Row, n)
	for i := range vals {
		k, v, s := g.nextK, g.genVal(), g.genStr()
		g.nextK++
		vals[i] = fmt.Sprintf("(%d, %d, '%s')", k, v, s)
		rows[i] = table.Row{table.Int(k), table.Int(v), table.Str(s)}
	}
	return Op{
		SQL: "INSERT INTO t0 VALUES " + strings.Join(vals, ", "),
		Ref: func(r *Ref) *RefResult { r.t0.Insert(rows...); return nil },
	}
}

func (g *Generator) insert1() Op {
	n := g.rng.IntN(8) + 1
	g.rows1 += n
	vals := make([]string, n)
	rows := make([]table.Row, n)
	for i := range vals {
		// Foreign keys land in (and slightly beyond) the primary range.
		fk := g.rng.Int64N(g.nextK + 4)
		w := g.genVal()
		vals[i] = fmt.Sprintf("(%d, %d)", fk, w)
		rows[i] = table.Row{table.Int(fk), table.Int(w)}
	}
	return Op{
		SQL: "INSERT INTO t1 VALUES " + strings.Join(vals, ", "),
		Ref: func(r *Ref) *RefResult { r.t1.Insert(rows...); return nil },
	}
}

func (g *Generator) delete0() Op {
	// Delete a narrow slice so the table keeps churning without
	// emptying: one specific value.
	c := g.genVal()
	return Op{
		SQL: fmt.Sprintf("DELETE FROM t0 WHERE v = %d", c),
		Ref: func(r *Ref) *RefResult {
			kept := r.t0.Rows[:0]
			for _, row := range r.t0.Rows {
				if row[1].AsInt() != c {
					kept = append(kept, row)
				}
			}
			g.rows0 -= len(r.t0.Rows) - len(kept)
			r.t0.Rows = kept
			return nil
		},
	}
}

func (g *Generator) update0() Op {
	pd := g.pred0()
	c := int64(g.rng.IntN(9) - 4)
	return Op{
		SQL: fmt.Sprintf("UPDATE t0 SET v = v + %d WHERE %s", c, pd.sql),
		Ref: func(r *Ref) *RefResult {
			for i, row := range r.t0.Rows {
				if pd.fn(row[0].AsInt(), row[1].AsInt(), row[2].AsString()) {
					r.t0.Rows[i] = table.Row{row[0], table.Int(row[1].AsInt() + c), row[2]}
				}
			}
			return nil
		},
	}
}

func (g *Generator) select0() Op {
	pd := g.pred0()
	sql := fmt.Sprintf("SELECT * FROM t0 WHERE %s", pd.sql)
	cols := []string{"k", "v", "s"}
	project := false
	switch g.rng.IntN(5) {
	case 0:
		sql = fmt.Sprintf("SELECT k FROM t0 WHERE %s", pd.sql)
		cols = []string{"k"}
		project = true
	case 1:
		sql += " FORCE Hash"
	case 2:
		sql += " FORCE Large"
	case 3:
		sql += " FORCE Small"
	}
	return Op{
		SQL: sql,
		Ref: func(r *Ref) *RefResult {
			res := &RefResult{Cols: cols}
			each0(r, func(k, v int64, s string) {
				if !pd.fn(k, v, s) {
					return
				}
				if project {
					res.Rows = append(res.Rows, table.Row{table.Int(k)})
				} else {
					res.Rows = append(res.Rows, table.Row{table.Int(k), table.Int(v), table.Str(s)})
				}
			})
			return res
		},
	}
}

// orderLimit0 generates ORDER BY (and usually LIMIT) shapes over t0.
// The sort key is k — unique by construction — so the top-n prefix is
// deterministic and every engine must return the same multiset.
func (g *Generator) orderLimit0() Op {
	pd := g.pred0()
	desc := g.rng.IntN(2) == 0
	dir := ""
	if desc {
		dir = " DESC"
	}
	limit := -1
	limitSQL := ""
	if g.rng.IntN(4) != 0 {
		limit = g.rng.IntN(6) + 1
		limitSQL = fmt.Sprintf(" LIMIT %d", limit)
	}
	return Op{
		SQL: fmt.Sprintf("SELECT * FROM t0 WHERE %s ORDER BY k%s%s", pd.sql, dir, limitSQL),
		Ref: func(r *Ref) *RefResult {
			res := &RefResult{Cols: []string{"k", "v", "s"}}
			each0(r, func(k, v int64, s string) {
				if pd.fn(k, v, s) {
					res.Rows = append(res.Rows, table.Row{table.Int(k), table.Int(v), table.Str(s)})
				}
			})
			sort.Slice(res.Rows, func(i, j int) bool {
				if desc {
					return res.Rows[i][0].AsInt() > res.Rows[j][0].AsInt()
				}
				return res.Rows[i][0].AsInt() < res.Rows[j][0].AsInt()
			})
			if limit >= 0 && len(res.Rows) > limit {
				res.Rows = res.Rows[:limit]
			}
			return res
		},
	}
}

// joinAggregate generates join-then-aggregate shapes: the aggregate
// runs fused over the joined intermediate with the side filter pushed
// into the join's oblivious pre-filter.
func (g *Generator) joinAggregate() Op {
	c := g.genVal()
	return Op{
		SQL: fmt.Sprintf("SELECT COUNT(*), SUM(w) FROM t0 JOIN t1 ON k = fk WHERE w < %d", c),
		Ref: func(r *Ref) *RefResult {
			byK := make(map[int64]table.Row, len(r.t0.Rows))
			for _, row := range r.t0.Rows {
				byK[row[0].AsInt()] = row
			}
			var count int64
			var sum float64
			for _, fr := range r.t1.Rows {
				if fr[1].AsInt() >= c {
					continue
				}
				if _, ok := byK[fr[0].AsInt()]; ok {
					count++
					sum += float64(fr[1].AsInt())
				}
			}
			return &RefResult{
				Cols: []string{"COUNT(*)", "SUM(w)"},
				Rows: []table.Row{{table.Int(count), table.Float(sum)}},
			}
		},
	}
}

func (g *Generator) aggregate0() Op {
	pd := g.pred0()
	return Op{
		SQL: fmt.Sprintf("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t0 WHERE %s", pd.sql),
		Ref: func(r *Ref) *RefResult {
			var count, sum int64
			var minV, maxV int64
			any := false
			each0(r, func(k, v int64, s string) {
				if !pd.fn(k, v, s) {
					return
				}
				count++
				sum += v
				if !any || v < minV {
					minV = v
				}
				if !any || v > maxV {
					maxV = v
				}
				any = true
			})
			row := table.Row{table.Int(count), table.Float(float64(sum))}
			if any {
				row = append(row, table.Int(minV), table.Int(maxV))
			} else {
				row = append(row, table.Int(0), table.Int(0))
			}
			return &RefResult{Cols: []string{"COUNT(*)", "SUM(v)", "MIN(v)", "MAX(v)"}, Rows: []table.Row{row}}
		},
	}
}

func (g *Generator) group0() Op {
	pd := g.pred0()
	// A quarter of grouped queries ride the ORDER BY ... LIMIT pipeline
	// over the grouped output (the group key v is unique per group, so
	// the top-n prefix is deterministic).
	limit := -1
	suffix := ""
	if g.rng.IntN(4) == 0 {
		limit = g.rng.IntN(4) + 1
		suffix = fmt.Sprintf(" ORDER BY v LIMIT %d", limit)
	}
	return Op{
		SQL: fmt.Sprintf("SELECT v, COUNT(*), SUM(k) FROM t0 WHERE %s GROUP BY v%s", pd.sql, suffix),
		Ref: func(r *Ref) *RefResult {
			type acc struct{ count, sum int64 }
			groups := map[int64]*acc{}
			each0(r, func(k, v int64, s string) {
				if !pd.fn(k, v, s) {
					return
				}
				a := groups[v]
				if a == nil {
					a = &acc{}
					groups[v] = a
				}
				a.count++
				a.sum += k
			})
			res := &RefResult{Cols: []string{"group", "COUNT(*)", "SUM(k)"}}
			for v, a := range groups {
				res.Rows = append(res.Rows, table.Row{table.Int(v), table.Int(a.count), table.Float(float64(a.sum))})
			}
			if limit >= 0 {
				sort.Slice(res.Rows, func(i, j int) bool {
					return res.Rows[i][0].AsInt() < res.Rows[j][0].AsInt()
				})
				if len(res.Rows) > limit {
					res.Rows = res.Rows[:limit]
				}
			}
			return res
		},
	}
}

func (g *Generator) join() Op {
	c := g.genVal()
	return Op{
		SQL: fmt.Sprintf("SELECT * FROM t0 JOIN t1 ON k = fk WHERE w < %d", c),
		Ref: func(r *Ref) *RefResult {
			// t0.k is unique by construction, so the hash-join map
			// semantics and nested-loop semantics coincide.
			byK := make(map[int64]table.Row, len(r.t0.Rows))
			for _, row := range r.t0.Rows {
				byK[row[0].AsInt()] = row
			}
			res := &RefResult{Cols: []string{"k", "v", "s", "fk", "w"}}
			for _, fr := range r.t1.Rows {
				if fr[1].AsInt() >= c {
					continue
				}
				if pr, ok := byK[fr[0].AsInt()]; ok {
					res.Rows = append(res.Rows, append(append(table.Row{}, pr...), fr...))
				}
			}
			return res
		},
	}
}

// Canon renders a result as an order-independent multiset string. Row
// order is not part of query semantics — the oblivious operators
// deliberately scatter it — so comparisons sort first.
func Canon(cols []string, rows []table.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return strings.Join(cols, "|") + "\n" + strings.Join(lines, "\n")
}
