// Package oberr defines the typed error vocabulary shared by every
// tier of the system — enclave store, journal, engine, server, wire
// protocol, client, and database/sql driver.
//
// The design goal is end-to-end classification: a transient untrusted
// host fault injected below the enclave boundary must surface to a
// remote client as the SAME stable code it was born with, so the
// client (or an application) can decide mechanically whether retrying
// can help. Codes therefore travel across the wire (TError frames
// carry them as a trailing extension) and each code has a fixed
// Retriable classification.
//
// Nothing here may depend on data values: a code describes the kind of
// failure (host fault, overload, shutdown, lost connection), never the
// content of the statement that hit it. DESIGN.md §17 makes the
// leakage argument for error paths as a whole.
package oberr

import (
	"errors"
	"fmt"
)

// Code is a stable error classification, carried end-to-end from the
// failing tier to the client. Values are part of the wire protocol:
// never renumber existing codes, only append.
type Code uint16

const (
	// CodeUnknown is the zero value: an error with no classification,
	// including every error produced before this vocabulary existed.
	// Unknown errors are never retriable.
	CodeUnknown Code = 0

	// CodeStoreFault is a transient fault of the untrusted host —
	// a failed sealed-block access or journal write. The mutation it
	// interrupted was rolled back; retrying the statement is safe.
	CodeStoreFault Code = 1

	// CodeAuth is a sealed-block authentication failure: tampering or
	// rollback by a malicious host. Never retriable — the store is
	// hostile, not unlucky.
	CodeAuth Code = 2

	// CodeOverload is a typed admission rejection: the server's bounded
	// statement queue stayed full past the admission timeout. The
	// statement was never executed; retry after backoff.
	CodeOverload Code = 3

	// CodeShutdown is the typed shutdown rejection: the server is
	// draining and accepted no new work. The statement was never
	// executed; retry (against a restarted server) is safe.
	CodeShutdown Code = 4

	// CodeConnLost is an ambiguous failure: the connection died after
	// the request may have been sent, so a mutation may or may not have
	// executed. Retriable for read-only statements only.
	CodeConnLost Code = 5

	// CodeUnavailable is an unambiguous delivery failure: the request
	// was provably never sent (no healthy connection, or the write
	// failed before any byte left). Safe to retry even for mutations.
	CodeUnavailable Code = 6

	// CodeEngineFailed means fault containment itself failed: a rollback
	// hit a second fault and the in-memory engine state can no longer be
	// trusted. Not retriable on this engine — recover from the journal.
	CodeEngineFailed Code = 7
)

// String names the code for logs and error text. The set is closed;
// unknown values render numerically.
func (c Code) String() string {
	switch c {
	case CodeUnknown:
		return "unknown"
	case CodeStoreFault:
		return "store_fault"
	case CodeAuth:
		return "auth"
	case CodeOverload:
		return "overload"
	case CodeShutdown:
		return "shutdown"
	case CodeConnLost:
		return "conn_lost"
	case CodeUnavailable:
		return "unavailable"
	case CodeEngineFailed:
		return "engine_failed"
	}
	return fmt.Sprintf("code_%d", uint16(c))
}

// Retriable reports whether an error with this code may succeed if the
// whole statement is retried. CodeConnLost is listed retriable here
// because the CLASS can help on retry; callers that might re-execute a
// mutation must additionally check the ambiguity themselves (the
// client only auto-retries CodeConnLost for read-only statements).
func (c Code) Retriable() bool {
	switch c {
	case CodeStoreFault, CodeOverload, CodeShutdown, CodeConnLost, CodeUnavailable:
		return true
	}
	return false
}

// Error is the typed error every tier wraps failures in. It holds a
// classification code, a human-readable message, and optionally the
// underlying cause for errors.Is/As chains.
type Error struct {
	Code Code
	Msg  string
	Err  error // wrapped cause, may be nil
}

// New builds a typed error with a formatted message and no wrapped
// cause.
func New(c Code, format string, args ...any) *Error {
	return &Error{Code: c, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a classification to an existing error, preserving it
// for errors.Is/As.
func Wrap(c Code, err error) *Error {
	return &Error{Code: c, Err: err}
}

// Wrapf is Wrap with a context message prefixed to the cause.
func Wrapf(c Code, err error, format string, args ...any) *Error {
	return &Error{Code: c, Msg: fmt.Sprintf(format, args...), Err: err}
}

func (e *Error) Error() string {
	switch {
	case e.Msg != "" && e.Err != nil:
		return e.Msg + ": " + e.Err.Error()
	case e.Err != nil:
		return e.Err.Error()
	}
	return e.Msg
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Retriable reports whether retrying the failed statement may succeed.
func (e *Error) Retriable() bool { return e.Code.Retriable() }

// CodeOf extracts the classification from an error chain; CodeUnknown
// when no *Error is present.
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeUnknown
}

// Retriable reports whether the error chain carries a retriable
// classification. Unclassified errors are not retriable.
func Retriable(err error) bool {
	return CodeOf(err).Retriable()
}
