package oberr

import (
	"errors"
	"fmt"
	"testing"
)

func TestRetriableClassification(t *testing.T) {
	retriable := []Code{CodeStoreFault, CodeOverload, CodeShutdown, CodeConnLost, CodeUnavailable}
	fatal := []Code{CodeUnknown, CodeAuth, CodeEngineFailed}
	for _, c := range retriable {
		if !c.Retriable() {
			t.Errorf("%v should be retriable", c)
		}
	}
	for _, c := range fatal {
		if c.Retriable() {
			t.Errorf("%v should not be retriable", c)
		}
	}
}

func TestCodeOfThroughWrapping(t *testing.T) {
	base := New(CodeStoreFault, "injected fault at access %d", 7)
	wrapped := fmt.Errorf("statement failed: %w", base)
	deeper := fmt.Errorf("outer: %w", wrapped)

	if got := CodeOf(deeper); got != CodeStoreFault {
		t.Fatalf("CodeOf = %v, want store_fault", got)
	}
	if !Retriable(deeper) {
		t.Fatal("wrapped store fault should stay retriable")
	}
	if Retriable(errors.New("plain")) {
		t.Fatal("unclassified errors must not be retriable")
	}
	if CodeOf(nil) != CodeUnknown {
		t.Fatal("CodeOf(nil) should be unknown")
	}
}

func TestWrapPreservesCause(t *testing.T) {
	cause := errors.New("disk on fire")
	err := Wrapf(CodeStoreFault, cause, "journal commit")
	if !errors.Is(err, cause) {
		t.Fatal("Wrapf must preserve the cause for errors.Is")
	}
	if err.Error() != "journal commit: disk on fire" {
		t.Fatalf("message = %q", err.Error())
	}
	if Wrap(CodeAuth, cause).Error() != "disk on fire" {
		t.Fatal("Wrap without message should render the cause")
	}
}

func TestCodeStrings(t *testing.T) {
	if CodeStoreFault.String() != "store_fault" || CodeConnLost.String() != "conn_lost" {
		t.Fatal("stable code names changed")
	}
	if Code(99).String() != "code_99" {
		t.Fatalf("unknown code renders %q", Code(99).String())
	}
}
