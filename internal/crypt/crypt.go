// Package crypt implements the block sealing ObliDB applies to every block
// stored outside the enclave (§3): authenticated encryption binding each
// ciphertext to the table it belongs to, the block index it occupies, and a
// monotonically increasing revision number. The binding is what lets the
// engine catch the malicious-OS attacks the paper enumerates — tampering
// within a block, adding/removing rows, shuffling blocks between slots, and
// rolling a block back to an earlier revision.
//
// The paper uses the SGX SDK's crypto; here we use stdlib AES-GCM, with the
// (table, index, revision) triple carried as GCM additional data.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the AES key size in bytes (AES-256).
const KeySize = 32

// Overhead is the number of bytes sealing adds to a plaintext block:
// a 12-byte nonce plus a 16-byte GCM tag. The paper notes this "only adds a
// few bytes to each block" (§3.3); it is the fixed per-block cost.
const Overhead = 12 + 16

// ErrAuth is returned when a sealed block fails authentication: its
// contents were modified, or it was moved to a different slot, or it is a
// stale revision replayed by the adversary.
var ErrAuth = errors.New("crypt: block authentication failed")

// Sealer encrypts and authenticates fixed-role blocks. It is not safe for
// concurrent use; the engine serializes operator execution, matching the
// paper's single-enclave design.
type Sealer struct {
	aead cipher.AEAD
	// Nonce randomness is drawn from the system in large chunks: a
	// syscall per sealed block would dominate the whole engine (every
	// dummy write needs a fresh nonce).
	nonceBuf []byte
	nonceOff int
	// adbuf is the reusable additional-data buffer. A stack array would
	// escape through the AEAD interface call and cost one heap
	// allocation per sealed block — the kind of per-block cost this
	// package exists to amortize away.
	adbuf [16]byte
}

// NewSealer creates a Sealer from a 32-byte key.
func NewSealer(key []byte) (*Sealer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("crypt: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// NewRandomKey returns a fresh random AES-256 key.
func NewRandomKey() []byte {
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		panic("crypt: system randomness unavailable: " + err.Error())
	}
	return key
}

// aad fills the Sealer's reusable additional-data binding for a block.
func (s *Sealer) aad(table uint32, index uint32, revision uint64) []byte {
	binary.LittleEndian.PutUint32(s.adbuf[0:4], table)
	binary.LittleEndian.PutUint32(s.adbuf[4:8], index)
	binary.LittleEndian.PutUint64(s.adbuf[8:16], revision)
	return s.adbuf[:]
}

// Seal encrypts plaintext for slot (table, index) at the given revision.
// Every call uses a fresh random nonce, so re-sealing identical plaintext
// yields a different ciphertext — this is what makes the paper's "dummy
// writes" (re-encrypting unchanged data) indistinguishable from real ones.
func (s *Sealer) Seal(table, index uint32, revision uint64, plaintext []byte) []byte {
	return s.SealTo(nil, table, index, revision, plaintext)
}

// SealTo is Seal writing into dst's capacity instead of allocating.
// dst's length is ignored; when its capacity holds the sealed block
// (SealedSize(len(plaintext)) bytes) no allocation happens, which is what
// keeps the per-block hot path allocation-free — stores re-seal every
// dummy write into the ciphertext buffer the slot already owns. dst must
// not overlap plaintext.
func (s *Sealer) SealTo(dst []byte, table, index uint32, revision uint64, plaintext []byte) []byte {
	need := SealedSize(len(plaintext))
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	dst = dst[:12]
	s.fillNonce(dst)
	ad := s.aad(table, index, revision)
	return s.aead.Seal(dst, dst[:12], plaintext, ad)
}

// fillNonce copies 12 fresh random bytes into dst from the buffered pool.
func (s *Sealer) fillNonce(dst []byte) {
	if s.nonceOff+12 > len(s.nonceBuf) {
		if s.nonceBuf == nil {
			s.nonceBuf = make([]byte, 1<<16)
		}
		if _, err := rand.Read(s.nonceBuf); err != nil {
			panic("crypt: system randomness unavailable: " + err.Error())
		}
		s.nonceOff = 0
	}
	copy(dst, s.nonceBuf[s.nonceOff:s.nonceOff+12])
	s.nonceOff += 12
}

// Open authenticates and decrypts a sealed block, verifying it belongs to
// slot (table, index) at exactly the given revision. A wrong revision —
// i.e. a rollback — fails with ErrAuth just like any other tampering.
func (s *Sealer) Open(table, index uint32, revision uint64, sealed []byte) ([]byte, error) {
	return s.OpenInto(nil, table, index, revision, sealed)
}

// OpenInto is Open decrypting into dst's capacity instead of allocating.
// dst's length is ignored; when its capacity holds the plaintext
// (PlainSize(len(sealed)) bytes) no allocation happens. dst must not
// overlap sealed. The returned slice aliases dst (or a fresh buffer when
// dst was too small).
func (s *Sealer) OpenInto(dst []byte, table, index uint32, revision uint64, sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrAuth
	}
	if need := PlainSize(len(sealed)); cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	ad := s.aad(table, index, revision)
	pt, err := s.aead.Open(dst[:0], sealed[:12], sealed[12:], ad)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// SealedSize returns the sealed length of a plaintext of size n.
func SealedSize(n int) int { return n + Overhead }

// PlainSize returns the plaintext length of a sealed block of size n.
func PlainSize(n int) int { return n - Overhead }
