package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestSealer(t *testing.T) *Sealer {
	t.Helper()
	s, err := NewSealer(NewRandomKey())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newTestSealer(t)
	pt := []byte("hello oblivious world")
	ct := s.Seal(7, 42, 3, pt)
	got, err := s.Open(7, 42, 3, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip mismatch: %q vs %q", got, pt)
	}
}

func TestKeySizeEnforced(t *testing.T) {
	if _, err := NewSealer(make([]byte, 16)); err == nil {
		t.Fatal("16-byte key accepted; want AES-256 only")
	}
}

func TestFreshNonceEachSeal(t *testing.T) {
	s := newTestSealer(t)
	pt := []byte("same plaintext")
	a := s.Seal(1, 1, 1, pt)
	b := s.Seal(1, 1, 1, pt)
	if bytes.Equal(a, b) {
		t.Fatal("re-sealing produced identical ciphertext; dummy writes would be distinguishable")
	}
}

func TestWrongSlotRejected(t *testing.T) {
	s := newTestSealer(t)
	ct := s.Seal(1, 5, 0, []byte("row"))
	cases := []struct {
		name       string
		table, idx uint32
		rev        uint64
	}{
		{"moved to another table", 2, 5, 0},
		{"shuffled to another index", 1, 6, 0},
		{"rolled back revision", 1, 5, 1},
	}
	for _, c := range cases {
		if _, err := s.Open(c.table, c.idx, c.rev, ct); err == nil {
			t.Errorf("%s: authentication unexpectedly succeeded", c.name)
		}
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	s := newTestSealer(t)
	ct := s.Seal(1, 1, 1, []byte("sensitive"))
	for i := range ct {
		mod := append([]byte(nil), ct...)
		mod[i] ^= 0x01
		if _, err := s.Open(1, 1, 1, mod); err == nil {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestShortCiphertextRejected(t *testing.T) {
	s := newTestSealer(t)
	if _, err := s.Open(0, 0, 0, make([]byte, Overhead-1)); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestDifferentKeysIncompatible(t *testing.T) {
	a, b := newTestSealer(t), newTestSealer(t)
	ct := a.Seal(0, 0, 0, []byte("x"))
	if _, err := b.Open(0, 0, 0, ct); err == nil {
		t.Fatal("block sealed under one key opened under another")
	}
}

func TestSizes(t *testing.T) {
	s := newTestSealer(t)
	pt := make([]byte, 100)
	ct := s.Seal(0, 0, 0, pt)
	if len(ct) != SealedSize(len(pt)) {
		t.Fatalf("SealedSize = %d, actual %d", SealedSize(len(pt)), len(ct))
	}
	if PlainSize(len(ct)) != len(pt) {
		t.Fatalf("PlainSize = %d, want %d", PlainSize(len(ct)), len(pt))
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := newTestSealer(t)
	f := func(table, idx uint32, rev uint64, pt []byte) bool {
		ct := s.Seal(table, idx, rev, pt)
		got, err := s.Open(table, idx, rev, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
