// Package faultstore is the seeded fault-injection layer: it wraps the
// two untrusted surfaces the engine depends on — the sealed-block
// Store (via the enclave.FaultInjector hook) and the journal's backing
// file (via the wal.Options.OpenFile hook) — and makes them fail on a
// deterministic, schedule-driven basis.
//
// Every fault decision is drawn from a seeded PRNG keyed on the ACCESS
// COUNT, never on data, offsets, or block contents: the decision for
// access i is a pure function of (seed, i). Injection therefore cannot
// introduce a data-dependent channel — two workloads with the same
// statement shapes see faults at the same access indices, so their
// (truncated, retried) traces stay identical. DESIGN.md §17 makes this
// argument part of the failure model.
//
// The package also provides named crash points on the journal file
// (pre-commit, mid-commit-marker, post-commit-pre-ack), which exploit
// the journal's commit discipline — one contiguous WriteAt carrying
// every staged frame plus the commit marker — to simulate a process
// death at an exact durability boundary.
package faultstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oblidb/internal/oberr"
)

// ErrInjected is the sentinel underneath every injected fault, so tests
// can tell injected failures from real bugs with errors.Is.
var ErrInjected = errors.New("faultstore: injected fault")

// ErrCrashed is returned by every operation on a crashed File: the
// simulated process is gone, and nothing more reaches the disk.
var ErrCrashed = errors.New("faultstore: crashed at crash point")

// mix is splitmix64's finalizer: the per-access decision hash. A pure
// function of its input, so the decision for access i is fixed by
// (seed, i) alone.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Schedule drives an Injector. The zero value injects nothing.
type Schedule struct {
	// Seed keys every probabilistic decision. Two injectors with the
	// same seed fault at the same access indices.
	Seed uint64
	// ReadFault and WriteFault are per-access probabilities of a
	// transient error on a read / write access.
	ReadFault, WriteFault float64
	// LatencyProb and Latency inject latency spikes: with probability
	// LatencyProb an access sleeps Latency before proceeding.
	LatencyProb float64
	Latency     time.Duration
	// FailAt lists explicit access indices (0-based) that fault,
	// independent of the probabilities — the exhaustive containment
	// tests inject one fault at every index of a workload this way.
	FailAt []uint64
	// MaxFaults, when positive, caps the total number of injected
	// faults; once reached the injector passes everything through.
	MaxFaults uint64
}

// Injector implements enclave.FaultInjector: a per-access fault
// decision keyed on its own access counter. Safe for concurrent use.
type Injector struct {
	sched    Schedule
	failAt   map[uint64]struct{}
	accesses atomic.Uint64
	injected atomic.Uint64
}

// NewInjector builds an injector for a schedule.
func NewInjector(s Schedule) *Injector {
	in := &Injector{sched: s}
	if len(s.FailAt) > 0 {
		in.failAt = make(map[uint64]struct{}, len(s.FailAt))
		for _, i := range s.FailAt {
			in.failAt[i] = struct{}{}
		}
	}
	return in
}

// Access implements the enclave hook: called once per sealed-block
// access with the access kind, it returns nil (pass through) or a
// typed retriable store fault. The decision depends only on the access
// index and the seed.
func (in *Injector) Access(write bool) error {
	idx := in.accesses.Add(1) - 1
	kind := "read"
	stream := uint64(0x7265616400000000) // "read"
	p := in.sched.ReadFault
	if write {
		kind = "write"
		stream = 0x7772697400000000 // "writ"
		p = in.sched.WriteFault
	}
	if in.sched.LatencyProb > 0 && in.sched.Latency > 0 &&
		unit(mix(in.sched.Seed^idx^0x6c617400000000)) < in.sched.LatencyProb {
		time.Sleep(in.sched.Latency)
	}
	fault := false
	if _, ok := in.failAt[idx]; ok {
		fault = true
	} else if p > 0 && unit(mix(in.sched.Seed^idx^stream)) < p {
		fault = true
	}
	if !fault {
		return nil
	}
	if in.sched.MaxFaults > 0 && in.injected.Load() >= in.sched.MaxFaults {
		return nil
	}
	in.injected.Add(1)
	return oberr.Wrapf(oberr.CodeStoreFault, ErrInjected,
		"faultstore: transient %s fault at access %d", kind, idx)
}

// Accesses returns how many store accesses the injector has observed.
// A fault-free reference run uses this to learn a workload's access
// count before sweeping FailAt over every index.
func (in *Injector) Accesses() uint64 { return in.accesses.Load() }

// Injected returns the total number of faults injected so far — the
// authoritative source for oblidb_store_faults_injected_total.
func (in *Injector) Injected() uint64 { return in.injected.Load() }

// Crash points on the journal file. The journal lands each commit as
// ONE contiguous WriteAt (staged frames + commit marker), so the three
// durability boundaries are expressible purely in WriteAt behavior.
const (
	// PointPreCommit crashes before any byte of the commit batch is
	// written: the transaction must vanish on recovery.
	PointPreCommit = "pre-commit"
	// PointMidCommitMarker writes the batch but tears the trailing
	// commit marker: recovery must truncate the torn tail and the
	// transaction must vanish.
	PointMidCommitMarker = "mid-commit-marker"
	// PointPostCommitPreAck writes and syncs the full batch, then
	// crashes before the engine can acknowledge: the transaction is
	// durable and must SURVIVE recovery even though no client saw an
	// acknowledgment.
	PointPostCommitPreAck = "post-commit-pre-ack"
)

// markerTear is how many trailing bytes PointMidCommitMarker withholds:
// enough to tear the commit-marker frame's MAC, never the whole batch.
const markerTear = 5

// Crash is a named crash point shared by every File of one journal
// (the live file and checkpoint temporaries): after Arm, the n-th
// subsequent commit write triggers the point, runs the crash function,
// and latches every wrapped file dead. The zero of after crashes on
// the first post-arm commit.
type Crash struct {
	point string
	after int
	fn    func()

	mu      sync.Mutex
	armed   bool
	writes  int
	crashed bool
}

// NewCrash validates the point name and builds a controller. fn runs
// at the crash instant — os.Exit in the server binary, nil (latch
// only) in tests, which then reopen the file and recover.
func NewCrash(point string, after int, fn func()) (*Crash, error) {
	switch point {
	case PointPreCommit, PointMidCommitMarker, PointPostCommitPreAck:
	default:
		return nil, fmt.Errorf("faultstore: unknown crash point %q", point)
	}
	if fn == nil {
		fn = func() {}
	}
	return &Crash{point: point, after: after, fn: fn}, nil
}

// Arm starts counting commit writes. Writes before Arm (recovery,
// checkpointing at attach, pad-table setup) pass through untouched.
func (c *Crash) Arm() {
	c.mu.Lock()
	c.armed = true
	c.mu.Unlock()
}

// Crashed reports whether the point has fired.
func (c *Crash) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// hostFile is the slice of *os.File the journal uses; it matches
// wal.File structurally so a faultstore.File can be returned from
// wal.Options.OpenFile without an import cycle.
type hostFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// FileSchedule drives probabilistic faults on a wrapped journal file.
// The zero value injects nothing. Decisions are keyed on the file's
// write-access counter with the same splitmix64 construction as the
// store injector.
type FileSchedule struct {
	Seed uint64
	// WriteFault is the per-WriteAt probability of failing outright
	// with no bytes written.
	WriteFault float64
	// TornWrite is the per-WriteAt probability of a torn write: a
	// prefix of the buffer lands, the rest is lost, and the call
	// errors. The prefix length is drawn from the same keyed PRNG —
	// or fixed by TornPrefix when ≥ 0.
	TornWrite  float64
	TornPrefix int
	// SyncFault is the per-Sync probability of failing.
	SyncFault float64
}

// File wraps a journal file with schedule-driven write faults and an
// optional crash point. It satisfies wal.File.
type File struct {
	f      hostFile
	sched  FileSchedule
	crash  *Crash
	writes atomic.Uint64
	faults atomic.Uint64
}

// WrapFile wraps f. sched may be zero and crash may be nil; a Crash
// may be shared across several files (the journal and its checkpoint
// temporaries) so the countdown covers whichever file commits next.
func WrapFile(f hostFile, sched FileSchedule, crash *Crash) *File {
	if sched.TornPrefix == 0 {
		sched.TornPrefix = -1
	}
	return &File{f: f, sched: sched, crash: crash}
}

// Faults returns the number of probabilistic faults this file injected.
func (w *File) Faults() uint64 { return w.faults.Load() }

// checkCrash runs the crash-point protocol for one WriteAt. It returns
// (handled, n, err): when handled, the write was consumed by the crash
// point and n/err are the result.
func (w *File) checkCrash(p []byte, off int64) (bool, int, error) {
	c := w.crash
	if c == nil {
		return false, 0, nil
	}
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return true, 0, ErrCrashed
	}
	if !c.armed {
		c.mu.Unlock()
		return false, 0, nil
	}
	if c.writes < c.after {
		c.writes++
		c.mu.Unlock()
		return false, 0, nil
	}
	c.crashed = true
	point, fn := c.point, c.fn
	c.mu.Unlock()

	switch point {
	case PointPreCommit:
		fn()
		return true, 0, fmt.Errorf("%w (%s)", ErrCrashed, point)
	case PointMidCommitMarker:
		n := len(p) - markerTear
		if n < 0 {
			n = 0
		}
		wrote, _ := w.f.WriteAt(p[:n], off)
		_ = w.f.Sync()
		fn()
		return true, wrote, fmt.Errorf("%w (%s)", ErrCrashed, point)
	case PointPostCommitPreAck:
		wrote, err := w.f.WriteAt(p, off)
		if err == nil {
			err = w.f.Sync()
		}
		fn()
		if err != nil {
			return true, wrote, err
		}
		return true, wrote, fmt.Errorf("%w (%s)", ErrCrashed, point)
	}
	return true, 0, ErrCrashed
}

// WriteAt applies the crash point and the probabilistic schedule, then
// forwards to the underlying file.
func (w *File) WriteAt(p []byte, off int64) (int, error) {
	if handled, n, err := w.checkCrash(p, off); handled {
		return n, err
	}
	idx := w.writes.Add(1) - 1
	s := w.sched
	if s.WriteFault > 0 && unit(mix(s.Seed^idx^0x66756c6c00000000)) < s.WriteFault {
		w.faults.Add(1)
		return 0, oberr.Wrapf(oberr.CodeStoreFault, ErrInjected,
			"faultstore: journal write fault at write %d", idx)
	}
	if s.TornWrite > 0 && unit(mix(s.Seed^idx^0x746f726e00000000)) < s.TornWrite {
		n := s.TornPrefix
		if n < 0 {
			n = int(mix(s.Seed^idx^0x6c656e00000000) % uint64(len(p)+1))
		}
		if n > len(p) {
			n = len(p)
		}
		wrote, werr := w.f.WriteAt(p[:n], off)
		w.faults.Add(1)
		err := oberr.Wrapf(oberr.CodeStoreFault, ErrInjected,
			"faultstore: torn journal write at write %d (%d of %d bytes)", idx, n, len(p))
		if werr != nil {
			return wrote, werr
		}
		return wrote, err
	}
	return w.f.WriteAt(p, off)
}

// ReadAt forwards, failing when crashed.
func (w *File) ReadAt(p []byte, off int64) (int, error) {
	if w.crashDead() {
		return 0, ErrCrashed
	}
	return w.f.ReadAt(p, off)
}

// Truncate forwards, failing when crashed — a crashed process cannot
// rewind the journal, so the engine's broken-latch path is exercised
// exactly as a real crash would.
func (w *File) Truncate(size int64) error {
	if w.crashDead() {
		return ErrCrashed
	}
	return w.f.Truncate(size)
}

// Sync applies the schedule, then forwards.
func (w *File) Sync() error {
	if w.crashDead() {
		return ErrCrashed
	}
	idx := w.writes.Add(1) - 1
	if s := w.sched; s.SyncFault > 0 && unit(mix(s.Seed^idx^0x73796e6300000000)) < s.SyncFault {
		w.faults.Add(1)
		return oberr.Wrapf(oberr.CodeStoreFault, ErrInjected,
			"faultstore: journal sync fault at access %d", idx)
	}
	return w.f.Sync()
}

// Stat forwards.
func (w *File) Stat() (os.FileInfo, error) { return w.f.Stat() }

// Close forwards; closing a crashed file is allowed so tests can
// release the descriptor before reopening for recovery.
func (w *File) Close() error { return w.f.Close() }

func (w *File) crashDead() bool {
	return w.crash != nil && w.crash.Crashed()
}
