package faultstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"oblidb/internal/crypt"
	"oblidb/internal/oberr"
	"oblidb/internal/table"
	"oblidb/internal/wal"
)

// TestInjectorDeterministic pins the obliviousness property of the
// harness itself: fault decisions are a pure function of (seed, access
// index), so two injectors with the same schedule fault at identical
// indices whatever the workload carried.
func TestInjectorDeterministic(t *testing.T) {
	sched := Schedule{Seed: 42, ReadFault: 0.1, WriteFault: 0.2}
	a, b := NewInjector(sched), NewInjector(sched)
	const n = 2000
	var faultsA, faultsB []int
	for i := 0; i < n; i++ {
		if a.Access(i%3 == 0) != nil {
			faultsA = append(faultsA, i)
		}
		if b.Access(i%3 == 0) != nil {
			faultsB = append(faultsB, i)
		}
	}
	if len(faultsA) == 0 {
		t.Fatal("schedule with 10-20% fault rates injected nothing over 2000 accesses")
	}
	if len(faultsA) != len(faultsB) {
		t.Fatalf("same schedule, different fault counts: %d vs %d", len(faultsA), len(faultsB))
	}
	for i := range faultsA {
		if faultsA[i] != faultsB[i] {
			t.Fatalf("fault index %d differs: %d vs %d", i, faultsA[i], faultsB[i])
		}
	}
	if a.Injected() != uint64(len(faultsA)) || a.Accesses() != n {
		t.Fatalf("counters: injected=%d accesses=%d, want %d/%d", a.Injected(), a.Accesses(), len(faultsA), n)
	}
}

// TestInjectorFailAt pins the exhaustive-containment mode: exactly the
// listed access indices fault, typed and retriable.
func TestInjectorFailAt(t *testing.T) {
	in := NewInjector(Schedule{FailAt: []uint64{3}})
	for i := 0; i < 10; i++ {
		err := in.Access(false)
		if (err != nil) != (i == 3) {
			t.Fatalf("access %d: err=%v", i, err)
		}
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected fault should wrap ErrInjected, got %v", err)
			}
			if !oberr.Retriable(err) || oberr.CodeOf(err) != oberr.CodeStoreFault {
				t.Fatalf("injected fault should be a retriable store fault, got %v", err)
			}
		}
	}
}

// TestInjectorMaxFaults pins the cap: once MaxFaults fire, everything
// passes through.
func TestInjectorMaxFaults(t *testing.T) {
	in := NewInjector(Schedule{FailAt: []uint64{1, 2, 3, 4}, MaxFaults: 2})
	faults := 0
	for i := 0; i < 10; i++ {
		if in.Access(true) != nil {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("MaxFaults=2 injected %d", faults)
	}
}

// journalWithCrash builds a journal through a crash-wrapped file, with
// one committed batch of two rows before the crash point is armed.
func journalWithCrash(t *testing.T, point string) (string, []byte, *Crash) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.wal")
	key := crypt.NewRandomKey()
	crash, err := NewCrash(point, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := wal.Options{Sync: true, OpenFile: func(p string) (wal.File, error) {
		f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o600)
		if err != nil {
			return nil, err
		}
		return WrapFile(f, FileSchedule{}, crash), nil
	}}
	l, err := wal.Open(path, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := table.MustSchema(table.Column{Name: "k", Kind: table.KindInt})
	def := wal.TableDef{Name: "t", Schema: s, Capacity: 8}
	if err := l.AppendCreate(def); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.OpInsert, "t", s, table.Row{table.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	crash.Arm()
	if err := l.Append(wal.OpInsert, "t", s, table.Row{table.Int(2)}); err != nil {
		t.Fatal(err)
	}
	err = l.Commit()
	if err == nil {
		t.Fatalf("%s: commit across the crash point should error", point)
	}
	if !crash.Crashed() {
		t.Fatalf("%s: crash point did not fire", point)
	}
	l.Close()
	return path, key, crash
}

// TestCrashPoints drives each named crash point through a real journal
// commit and checks what recovery finds: the pre-commit and
// mid-commit-marker crashes lose the batch, the post-commit-pre-ack
// crash keeps it — durable but unacknowledged.
func TestCrashPoints(t *testing.T) {
	cases := []struct {
		point    string
		wantRows int
	}{
		{PointPreCommit, 1},
		{PointMidCommitMarker, 1},
		{PointPostCommitPreAck, 2},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			path, key, _ := journalWithCrash(t, tc.point)
			// Reopen the file fresh — the "restarted process".
			l, err := wal.Open(path, key, wal.Options{})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer l.Close()
			rows := 0
			err = l.Replay(func(e wal.Entry) error {
				if e.Op == wal.OpInsert {
					rows++
				}
				return nil
			})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rows != tc.wantRows {
				t.Fatalf("%s: recovered %d inserted rows, want %d", tc.point, rows, tc.wantRows)
			}
		})
	}
}

// TestTornWriteRollsBack pins the probabilistic file schedule: a torn
// commit write errors, the log rolls back, and a reopen recovers only
// the committed prefix.
func TestTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	key := crypt.NewRandomKey()
	var wrapped *File
	armed := false
	opts := wal.Options{OpenFile: func(p string) (wal.File, error) {
		f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o600)
		if err != nil {
			return nil, err
		}
		sched := FileSchedule{}
		if armed {
			sched = FileSchedule{TornWrite: 1, TornPrefix: 7}
		}
		wrapped = WrapFile(f, sched, nil)
		return wrapped, nil
	}}
	l, err := wal.Open(path, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := table.MustSchema(table.Column{Name: "k", Kind: table.KindInt})
	if err := l.AppendCreate(wal.TableDef{Name: "t", Schema: s, Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	committed := l.SizeBytes()
	l.Close()

	armed = true
	l, err = wal.Open(path, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.OpInsert, "t", s, table.Row{table.Int(1)}); err != nil {
		t.Fatal(err)
	}
	err = l.Commit()
	if err == nil {
		t.Fatal("torn write should fail the commit")
	}
	if !oberr.Retriable(err) || oberr.CodeOf(err) != oberr.CodeStoreFault {
		t.Fatalf("torn commit should be a typed retriable store fault, got %v", err)
	}
	if wrapped.Faults() == 0 {
		t.Fatal("wrapper did not count the injected fault")
	}
	if l.SizeBytes() != committed {
		t.Fatalf("failed commit left size %d, want rollback to %d", l.SizeBytes(), committed)
	}
	// The log stays usable: the same batch commits once faults stop.
	wrapped.sched.TornWrite = 0
	if err := l.Append(wal.OpInsert, "t", s, table.Row{table.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("retry after torn write: %v", err)
	}
	l.Close()

	armed = false
	l, err = wal.Open(path, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 2 {
		t.Fatalf("recovered %d entries, want 2 (create + retried insert)", l.Len())
	}
}
