package storage

import (
	"errors"
	"fmt"
	"testing"

	"oblidb/internal/crypt"
	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// Tests for block-packed geometry (DESIGN.md §12): correctness across
// R, the §2.3 attack classes against packed blocks, trace-obliviousness
// pinned at R > 1, and the zero-allocation scan read path.

// geometries is the packing sweep every packed test runs.
var geometries = []int{1, 3, 4, 16}

func newPacked(t *testing.T, capacity, r int, tr *trace.Tracer) *Flat {
	t.Helper()
	e := enclave.MustNew(enclave.Config{Tracer: tr, Key: make([]byte, 32)})
	f, err := NewFlatGeom(e, "t", kvSchema(t), capacity, r)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPackedGeometry(t *testing.T) {
	f := newPacked(t, 10, 4, nil)
	if f.NumBlocks() != 3 { // ceil(10/4)
		t.Fatalf("NumBlocks = %d, want 3", f.NumBlocks())
	}
	if f.Capacity() != 12 { // rounded up to whole blocks
		t.Fatalf("Capacity = %d, want 12", f.Capacity())
	}
	if f.RowsPerBlock() != 4 {
		t.Fatalf("RowsPerBlock = %d, want 4", f.RowsPerBlock())
	}
	if got := f.Store().BlockSize(); got != kvSchema(t).BlockSize(4) {
		t.Fatalf("store block size = %d, want %d", got, kvSchema(t).BlockSize(4))
	}
}

func TestPackedRoundTripAllGeometries(t *testing.T) {
	for _, r := range geometries {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			f := newPacked(t, 10, r, nil)
			for i := int64(0); i < 10; i++ {
				if err := f.InsertFast(row(i, fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			rows, err := f.Rows()
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 10 {
				t.Fatalf("Rows() = %d rows, want 10", len(rows))
			}
			for i, rw := range rows {
				if rw[0].AsInt() != int64(i) || rw[1].AsString() != fmt.Sprintf("v%d", i) {
					t.Fatalf("row %d = %v", i, rw)
				}
			}
			// Point reads straddle block boundaries.
			for _, i := range []int{0, r - 1, r, 9} {
				if i >= 10 {
					continue
				}
				rw, used, err := f.ReadRow(i)
				if err != nil || !used || rw[0].AsInt() != int64(i) {
					t.Fatalf("ReadRow(%d) = %v used=%v err=%v", i, rw, used, err)
				}
			}
			// Mutations across the whole sweep.
			if n, err := f.Update(func(rw table.Row) bool { return rw[0].AsInt()%2 == 0 },
				func(rw table.Row) table.Row { rw[1] = table.Str("even"); return rw }); err != nil || n != 5 {
				t.Fatalf("Update = %d, %v", n, err)
			}
			if n, err := f.Delete(func(rw table.Row) bool { return rw[0].AsInt() >= 8 }); err != nil || n != 2 {
				t.Fatalf("Delete = %d, %v", n, err)
			}
			if f.NumRows() != 8 {
				t.Fatalf("NumRows = %d, want 8", f.NumRows())
			}
			rw, _, err := f.ReadRow(4)
			if err != nil || rw[1].AsString() != "even" {
				t.Fatalf("ReadRow(4) after update = %v, %v", rw, err)
			}
		})
	}
}

// TestPackedUpdateValidatesBeforeWriting is the regression test for the
// Update validation fix: a misbehaving updater (wrong arity, wrong kind,
// oversized string) must fail cleanly with the table unmodified, not
// error mid-pass with the table half-rewritten.
func TestPackedUpdateValidatesBeforeWriting(t *testing.T) {
	for _, r := range []int{1, 4} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			f := newPacked(t, 8, r, nil)
			for i := int64(0); i < 8; i++ {
				if err := f.InsertFast(row(i, "orig")); err != nil {
					t.Fatal(err)
				}
			}
			bad := []struct {
				name string
				upd  table.Updater
			}{
				{"wrong arity", func(rw table.Row) table.Row { return rw[:1] }},
				{"wrong kind", func(rw table.Row) table.Row { rw[1] = table.Int(1); return rw }},
				{"oversized string", func(rw table.Row) table.Row { rw[1] = table.Str("way-too-long-for-width-12"); return rw }},
			}
			for _, tc := range bad {
				n, err := f.Update(table.All, tc.upd)
				if err == nil {
					t.Fatalf("%s: invalid update accepted", tc.name)
				}
				if n != 0 {
					t.Fatalf("%s: %d rows reported updated on failure", tc.name, n)
				}
				rows, err := f.Rows()
				if err != nil {
					t.Fatal(err)
				}
				for i, rw := range rows {
					if rw[1].AsString() != "orig" {
						t.Fatalf("%s: row %d modified by failed update: %v", tc.name, i, rw)
					}
				}
			}
		})
	}
}

// --- Adversary attacks against packed blocks ----------------------------

func packedAttackTable(t *testing.T, r int) *Flat {
	t.Helper()
	f := newPacked(t, 12, r, nil)
	for i := int64(0); i < 12; i++ {
		if err := f.InsertFast(row(i, "secret")); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestPackedAttackTamper(t *testing.T) {
	f := packedAttackTable(t, 4)
	raw := f.Store().AdversaryRawBlock(1)
	raw[len(raw)/2] ^= 0x01
	f.Store().AdversarySetRawBlock(1, raw)
	// Any row of the tampered block fails, whatever slot it occupies.
	for i := 4; i < 8; i++ {
		if _, _, err := f.ReadRow(i); !errors.Is(err, crypt.ErrAuth) {
			t.Fatalf("tampered packed block read of row %d: err=%v, want ErrAuth", i, err)
		}
	}
	// Other blocks stay readable.
	if _, _, err := f.ReadRow(0); err != nil {
		t.Fatalf("untampered block unreadable: %v", err)
	}
}

func TestPackedAttackSwap(t *testing.T) {
	f := packedAttackTable(t, 4)
	f.Store().AdversarySwapBlocks(0, 2)
	if _, _, err := f.ReadRow(0); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("swapped packed block accepted: %v", err)
	}
	if _, _, err := f.ReadRow(11); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("swapped packed block accepted at the other slot: %v", err)
	}
}

func TestPackedAttackRollback(t *testing.T) {
	// Snapshot a packed block, delete one of its rows, replay the
	// snapshot: the revision binding must reject the resurrected block.
	f := packedAttackTable(t, 4)
	old := f.Store().AdversaryRawBlock(1)
	if _, err := f.Delete(func(rw table.Row) bool { return rw[0].AsInt() == 5 }); err != nil {
		t.Fatal(err)
	}
	f.Store().AdversarySetRawBlock(1, old)
	if _, _, err := f.ReadRow(5); !errors.Is(err, crypt.ErrAuth) {
		t.Fatalf("rolled-back packed block accepted: %v", err)
	}
}

// --- Trace obliviousness at R > 1 ---------------------------------------

// packedTrace runs one mutation workload over data derived from seed and
// returns the trace. Everything public (capacity, R, operation sequence)
// is fixed; everything data (values, which rows match) varies with seed.
func packedTrace(t *testing.T, r int, seed int64) *trace.Tracer {
	t.Helper()
	tr := trace.New()
	f := newPacked(t, 16, r, tr)
	for i := int64(0); i < 12; i++ {
		if err := f.InsertFast(row(i*seed%17, "v")); err != nil {
			t.Fatal(err)
		}
	}
	tr.Reset()
	if err := f.Insert(row(seed, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Update(func(rw table.Row) bool { return rw[0].AsInt()%3 == seed%3 },
		func(rw table.Row) table.Row { rw[1] = table.Str("u"); return rw }); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Delete(func(rw table.Row) bool { return rw[0].AsInt()%5 == seed%5 }); err != nil {
		t.Fatal(err)
	}
	if err := f.Scan(func(int, table.Row, bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPackedMutationTraceOblivious(t *testing.T) {
	// For each fixed (capacity, R), the insert/update/delete/scan trace
	// is byte-identical whatever the data — and different R gives a
	// different (public) trace.
	var prints [][32]byte
	for _, r := range geometries {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			a := packedTrace(t, r, 3)
			b := packedTrace(t, r, 11)
			if d := trace.Diff(a, b); d != "" {
				t.Fatalf("R=%d: packed mutation trace depends on data: %s", r, d)
			}
			prints = append(prints, a.Fingerprint())
		})
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] == prints[0] {
			t.Fatalf("geometries %d and %d produced identical traces; R is not reflected in the public pattern", geometries[0], geometries[i])
		}
	}
}

func TestPackedScanTraceOneReadPerBlock(t *testing.T) {
	// The scan trace is exactly one read per sealed block, in order —
	// the R× trace reduction the packing exists for.
	for _, r := range []int{1, 4, 16} {
		tr := trace.New()
		f := newPacked(t, 32, r, tr)
		tr.Reset()
		if err := f.Scan(func(int, table.Row, bool) error { return nil }); err != nil {
			t.Fatal(err)
		}
		events := tr.Events()
		if len(events) != f.NumBlocks() {
			t.Fatalf("R=%d: scan recorded %d events, want %d (one per block)", r, len(events), f.NumBlocks())
		}
		for i, ev := range events {
			if ev.Op != trace.Read || int(ev.Index) != i {
				t.Fatalf("R=%d: event %d = %v, want sequential reads", r, i, ev)
			}
		}
	}
}

// --- Zero-allocation scan read path -------------------------------------

func TestScanReadPathZeroAllocs(t *testing.T) {
	// The steady-state scan read path — traced block read, AEAD open
	// into scratch, in-place record decode — allocates nothing per
	// block. Strings alias the scratch (Clone detaches), numerics decode
	// in place, and the sealer reuses its nonce pool and AAD buffer.
	s := table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindString, Width: 12},
	)
	e := enclave.MustNew(enclave.Config{})
	f, err := NewFlatGeom(e, "t", s, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 256; i++ {
		if err := f.InsertFast(table.Row{table.Int(i), table.Str("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	fn := func(_ int, rw table.Row, used bool) error {
		if used {
			sum += rw[0].AsInt()
		}
		return nil
	}
	// Warm the lazily-allocated decode scratch.
	if err := f.Scan(fn); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.Scan(fn); err != nil {
			t.Fatal(err)
		}
	})
	// The sealer's 64 KiB nonce pool refills once every ~5461 seals and
	// shows up as a fractional alloc count; anything ≥ 1 would mean a
	// real per-scan allocation, and per-block costs would push it ≥ 16.
	if allocs >= 1 {
		t.Fatalf("scan read path allocates: %.2f allocs per 16-block scan, want 0", allocs)
	}
}

// --- BlockWriter --------------------------------------------------------

func TestBlockWriterFillsAndPads(t *testing.T) {
	for _, r := range geometries {
		tr := trace.New()
		f := newPacked(t, 10, r, tr)
		w := f.NewBlockWriter()
		tr.Reset()
		for i := int64(0); i < 7; i++ {
			if err := w.Append(row(i, "w"), true); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.BumpRows(7)
		// One sealed write per touched block, none re-read.
		wantWrites := (7 + r - 1) / r
		if tr.Len() != wantWrites {
			t.Fatalf("R=%d: writer recorded %d events, want %d block writes", r, tr.Len(), wantWrites)
		}
		rows, err := f.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 7 {
			t.Fatalf("R=%d: %d rows after writer, want 7", r, len(rows))
		}
		// The padded tail of the final block reads as dummies.
		if rw, used, err := f.ReadRow(7); err != nil || used || rw != nil {
			t.Fatalf("R=%d: tail slot not dummy: %v %v %v", r, rw, used, err)
		}
	}
}
