package storage

import (
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func partSchema() *table.Schema {
	return table.MustSchema(table.Column{Name: "k", Kind: table.KindInt})
}

// readPart reads one record of a partition block (these tests use R = 1
// tables, where block and row indices coincide).
func readPart(v *PartitionView, i int) (table.Row, bool, error) {
	buf := v.Schema().NewBlockBuf(v.RowsPerBlock())
	if err := v.ReadBlockInto(i, buf); err != nil {
		return nil, false, err
	}
	row, used := buf.Row(0)
	return row, used, nil
}

func TestPartitionedCoversAllBlocksOnce(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	f, err := NewFlat(e, "t", partSchema(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.InsertFast(table.Row{table.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	workers, err := e.Split(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPartitioned(f, workers)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d", pt.NumPartitions())
	}
	if pt.PartLen() != 4 { // ceil(10/3)
		t.Fatalf("PartLen = %d, want 4", pt.PartLen())
	}
	seen := map[int64]int{}
	for p := 0; p < pt.NumPartitions(); p++ {
		v := pt.Part(p)
		if v.Blocks() != pt.PartLen() {
			t.Fatalf("partition %d has %d blocks, want padded %d", p, v.Blocks(), pt.PartLen())
		}
		for i := 0; i < v.Blocks(); i++ {
			row, used, err := readPart(v, i)
			if err != nil {
				t.Fatal(err)
			}
			if used {
				seen[row[0].AsInt()]++
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("partitions covered %d distinct rows, want 10", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("row %d seen %d times", k, n)
		}
	}
}

func TestPartitionReadsLandOnWorkerTracers(t *testing.T) {
	parent := trace.New()
	wts := []*trace.Tracer{trace.New(), trace.New()}
	e, err := enclave.New(enclave.Config{Tracer: parent, Key: make([]byte, 32)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(e, "t", partSchema(), 8)
	if err != nil {
		t.Fatal(err)
	}
	workers, err := e.Split(2, wts)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPartitioned(f, workers)
	if err != nil {
		t.Fatal(err)
	}
	parent.Reset()
	for p := 0; p < 2; p++ {
		v := pt.Part(p)
		for i := 0; i < v.Blocks(); i++ {
			if _, _, err := readPart(v, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if parent.Len() != 0 {
		t.Fatalf("partition reads leaked onto the parent tracer: %d events", parent.Len())
	}
	for p, w := range wts {
		if w.Len() != 4 {
			t.Fatalf("worker %d recorded %d events, want 4", p, w.Len())
		}
	}
}

func TestPartitionPaddingReadsNothing(t *testing.T) {
	wt := trace.New()
	e, err := enclave.New(enclave.Config{Key: make([]byte, 32)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFlat(e, "t", partSchema(), 5)
	if err != nil {
		t.Fatal(err)
	}
	workers, err := e.Split(2, []*trace.Tracer{trace.New(), wt})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPartitioned(f, workers)
	if err != nil {
		t.Fatal(err)
	}
	// Partition 1 covers blocks [3,6) of a 5-block table: index 2 is
	// padding and must decode unused without an untrusted access.
	v := pt.Part(1)
	wt.Reset()
	row, used, err := readPart(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if used || row != nil {
		t.Fatal("padding block read as used")
	}
	if wt.Len() != 0 {
		t.Fatalf("padding read touched untrusted memory: %d events", wt.Len())
	}
}
