package storage

import (
	"testing"
	"testing/quick"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func kvSchema(t *testing.T) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindString, Width: 12},
	)
}

func newFlat(t *testing.T, capacity int, tr *trace.Tracer) *Flat {
	t.Helper()
	e := enclave.MustNew(enclave.Config{Tracer: tr})
	f, err := NewFlat(e, "t", kvSchema(t), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func row(k int64, v string) table.Row { return table.Row{table.Int(k), table.Str(v)} }

func TestInsertAndRows(t *testing.T) {
	f := newFlat(t, 8, nil)
	for i := int64(0); i < 5; i++ {
		if err := f.Insert(row(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumRows() != 5 {
		t.Fatalf("NumRows = %d, want 5", f.NumRows())
	}
	rows, err := f.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d has key %d", i, r[0].AsInt())
		}
	}
}

func TestInsertFull(t *testing.T) {
	f := newFlat(t, 2, nil)
	_ = f.Insert(row(1, "a"))
	_ = f.Insert(row(2, "b"))
	if err := f.Insert(row(3, "c")); err == nil {
		t.Fatal("insert into full table succeeded")
	}
	if err := f.InsertFast(row(3, "c")); err == nil {
		t.Fatal("fast insert into full table succeeded")
	}
}

func TestInsertFillsHoles(t *testing.T) {
	f := newFlat(t, 4, nil)
	for i := int64(0); i < 4; i++ {
		_ = f.Insert(row(i, "x"))
	}
	if _, err := f.Delete(func(r table.Row) bool { return r[0].AsInt() == 1 }); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(row(9, "new")); err != nil {
		t.Fatal(err)
	}
	rows, _ := f.Rows()
	if len(rows) != 4 || rows[1][0].AsInt() != 9 {
		t.Fatalf("hole not refilled: %v", rows)
	}
}

func TestInsertFastSequential(t *testing.T) {
	f := newFlat(t, 4, nil)
	for i := int64(0); i < 3; i++ {
		if err := f.InsertFast(row(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	rows, _ := f.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestInsertFastIsConstantTime(t *testing.T) {
	tr := trace.New()
	f := newFlat(t, 16, tr)
	tr.Reset()
	if err := f.InsertFast(row(1, "a")); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("fast insert made %d accesses, want 1", tr.Len())
	}
	tr.Reset()
	if err := f.Insert(row(2, "b")); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2*f.Capacity() {
		t.Fatalf("oblivious insert made %d accesses, want %d", tr.Len(), 2*f.Capacity())
	}
}

func TestUpdateCountsAndApplies(t *testing.T) {
	f := newFlat(t, 6, nil)
	for i := int64(0); i < 6; i++ {
		_ = f.Insert(row(i, "old"))
	}
	n, err := f.Update(
		func(r table.Row) bool { return r[0].AsInt()%2 == 0 },
		func(r table.Row) table.Row { r[1] = table.Str("new"); return r },
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("updated %d, want 3", n)
	}
	rows, _ := f.Rows()
	for _, r := range rows {
		want := "old"
		if r[0].AsInt()%2 == 0 {
			want = "new"
		}
		if r[1].AsString() != want {
			t.Fatalf("row %d: %q", r[0].AsInt(), r[1].AsString())
		}
	}
}

func TestDelete(t *testing.T) {
	f := newFlat(t, 6, nil)
	for i := int64(0); i < 6; i++ {
		_ = f.Insert(row(i, "x"))
	}
	n, err := f.Delete(func(r table.Row) bool { return r[0].AsInt() >= 4 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || f.NumRows() != 4 {
		t.Fatalf("deleted %d rows, NumRows %d", n, f.NumRows())
	}
}

// TestMutationTraceOblivious is the core §3.1 property: insert, update,
// and delete must produce identical traces regardless of which rows they
// touch — one read and one write per block.
func TestMutationTraceOblivious(t *testing.T) {
	run := func(deleteKey int64, updKey int64, insKey int64) *trace.Tracer {
		tr := trace.New()
		f := newFlat(t, 8, tr)
		for i := int64(0); i < 6; i++ {
			if err := f.Insert(row(i, "x")); err != nil {
				t.Fatal(err)
			}
		}
		tr.Reset()
		if err := f.Insert(row(insKey, "new")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Update(
			func(r table.Row) bool { return r[0].AsInt() == updKey },
			func(r table.Row) table.Row { r[1] = table.Str("u"); return r },
		); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Delete(func(r table.Row) bool { return r[0].AsInt() == deleteKey }); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(0, 1, 100)
	b := run(5, 4, 200)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("mutation trace depends on data: %s", d)
	}
}

func TestScanTraceFixed(t *testing.T) {
	tr := trace.New()
	f := newFlat(t, 8, tr)
	_ = f.Insert(row(1, "a"))
	tr.Reset()
	_ = f.Scan(func(int, table.Row, bool) error { return nil })
	if tr.Len() != 8 {
		t.Fatalf("scan made %d accesses, want 8", tr.Len())
	}
	for i, e := range tr.Events() {
		if e.Op != trace.Read || int(e.Index) != i {
			t.Fatalf("scan access %d is %v", i, e)
		}
	}
}

func TestCopyIntoAndExpand(t *testing.T) {
	f := newFlat(t, 4, nil)
	for i := int64(0); i < 4; i++ {
		_ = f.Insert(row(i, "x"))
	}
	big, err := f.Expand("t2", 10)
	if err != nil {
		t.Fatal(err)
	}
	if big.Capacity() != 10 || big.NumRows() != 4 {
		t.Fatalf("expanded capacity=%d rows=%d", big.Capacity(), big.NumRows())
	}
	rows, _ := big.Rows()
	if len(rows) != 4 {
		t.Fatalf("expanded table has %d rows", len(rows))
	}
	if err := big.Insert(row(99, "y")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Expand("t3", 2); err == nil {
		t.Fatal("shrinking expand succeeded")
	}
}

func TestCopyIntoSchemaMismatch(t *testing.T) {
	f := newFlat(t, 2, nil)
	e := enclave.MustNew(enclave.Config{})
	other, _ := NewFlat(e, "o", table.MustSchema(table.Column{Name: "z", Kind: table.KindInt}), 2)
	if err := f.CopyInto(other); err == nil {
		t.Fatal("schema mismatch copy succeeded")
	}
}

func TestSetRowAndBump(t *testing.T) {
	f := newFlat(t, 3, nil)
	if err := f.SetRow(1, row(7, "v"), true); err != nil {
		t.Fatal(err)
	}
	if err := f.SetRow(2, nil, false); err != nil {
		t.Fatal(err)
	}
	f.BumpRows(1)
	rows, _ := f.Rows()
	if len(rows) != 1 || rows[0][0].AsInt() != 7 || f.NumRows() != 1 {
		t.Fatalf("SetRow result wrong: %v rows=%d", rows, f.NumRows())
	}
}

func TestZeroCapacityRejected(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	if _, err := NewFlat(e, "t", table.MustSchema(table.Column{Name: "k", Kind: table.KindInt}), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestInsertRejectsBadRow(t *testing.T) {
	f := newFlat(t, 2, nil)
	if err := f.Insert(table.Row{table.Str("wrong"), table.Str("v")}); err == nil {
		t.Fatal("bad row accepted")
	}
}

// TestMutationSequenceProperty: any insert/delete sequence keeps NumRows
// equal to the live-row count, and content matches a model multiset.
func TestMutationSequenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		flat := newFlat(t, 32, nil)
		model := map[int64]int{}
		live := 0
		for _, op := range ops {
			k := int64(op % 8)
			if op%2 == 0 && live < 32 {
				if flat.Insert(row(k, "p")) != nil {
					return false
				}
				model[k]++
				live++
			} else {
				n, err := flat.Delete(func(r table.Row) bool { return r[0].AsInt() == k })
				if err != nil {
					return false
				}
				if n != model[k] {
					return false
				}
				live -= n
				model[k] = 0
			}
			if flat.NumRows() != live {
				return false
			}
		}
		rows, err := flat.Rows()
		if err != nil || len(rows) != live {
			return false
		}
		counts := map[int64]int{}
		for _, r := range rows {
			counts[r[0].AsInt()]++
		}
		for k, c := range model {
			if counts[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
