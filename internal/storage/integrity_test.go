package storage

import (
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
)

// Integrity tests at the storage layer: every §2.3 attack class against a
// flat table must surface as an error on the next access.

func attackTable(t *testing.T) *Flat {
	t.Helper()
	e := enclave.MustNew(enclave.Config{})
	f, err := NewFlat(e, "t", kvSchema(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if err := f.InsertFast(row(i, "secret")); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestAttackBitFlip(t *testing.T) {
	f := attackTable(t)
	raw := f.Store().AdversaryRawBlock(3)
	raw[5] ^= 0x01
	f.Store().AdversarySetRawBlock(3, raw)
	if _, _, err := f.ReadRow(3); err == nil {
		t.Fatal("bit flip undetected")
	}
}

func TestAttackRowSwap(t *testing.T) {
	f := attackTable(t)
	f.Store().AdversarySwapBlocks(0, 5)
	if _, _, err := f.ReadRow(0); err == nil {
		t.Fatal("row shuffle undetected")
	}
	if _, _, err := f.ReadRow(5); err == nil {
		t.Fatal("row shuffle undetected at the other slot")
	}
}

func TestAttackRollbackAfterDelete(t *testing.T) {
	// The adversary snapshots a row, waits for its deletion, and replays
	// the snapshot — resurrecting deleted data. Caught by revision
	// binding.
	f := attackTable(t)
	old := f.Store().AdversaryRawBlock(2)
	if _, err := f.Delete(func(r table.Row) bool { return r[0].AsInt() == 2 }); err != nil {
		t.Fatal(err)
	}
	f.Store().AdversarySetRawBlock(2, old)
	if _, _, err := f.ReadRow(2); err == nil {
		t.Fatal("deleted row resurrected undetected")
	}
}

func TestAttackWholeTableRollback(t *testing.T) {
	// Rolling back every block to a consistent earlier state still fails:
	// the enclave's revision map is trusted metadata the OS cannot reset.
	f := attackTable(t)
	snapshot := make([][]byte, f.Capacity())
	for i := range snapshot {
		snapshot[i] = f.Store().AdversaryRawBlock(i)
	}
	if _, err := f.Update(table.All, func(r table.Row) table.Row {
		r[1] = table.Str("v2")
		return r
	}); err != nil {
		t.Fatal(err)
	}
	for i, raw := range snapshot {
		f.Store().AdversarySetRawBlock(i, raw)
	}
	if err := f.Scan(func(int, table.Row, bool) error { return nil }); err == nil {
		t.Fatal("whole-table rollback undetected")
	}
}

func TestAttackBlockFromOtherTable(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	a, _ := NewFlat(e, "a", kvSchema(t), 4)
	b, _ := NewFlat(e, "b", kvSchema(t), 4)
	_ = a.InsertFast(row(1, "from-a"))
	_ = b.InsertFast(row(2, "from-b"))
	b.Store().AdversarySetRawBlock(0, a.Store().AdversaryRawBlock(0))
	if _, _, err := b.ReadRow(0); err == nil {
		t.Fatal("cross-table block transplant undetected")
	}
}

func TestDummyWritesChangeCiphertext(t *testing.T) {
	// An update that touches nothing must still re-randomize every block,
	// or the adversary could tell dummy from real writes.
	f := attackTable(t)
	before := make([][]byte, f.Capacity())
	for i := range before {
		before[i] = f.Store().AdversaryRawBlock(i)
	}
	if _, err := f.Update(table.None, func(r table.Row) table.Row { return r }); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := f.Store().AdversaryRawBlock(i)
		same := len(after) == len(before[i])
		if same {
			diff := false
			for j := range after {
				if after[j] != before[i][j] {
					diff = true
					break
				}
			}
			same = !diff
		}
		if same {
			t.Fatalf("block %d ciphertext unchanged by dummy write", i)
		}
	}
}
