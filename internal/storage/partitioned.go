package storage

import (
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// Partitioned splits a flat table's sealed-block array into P equal
// padded partitions for partition-parallel operators. Partition
// boundaries are aligned to whole blocks — partition p covers blocks
// [p·S, (p+1)·S) of the source, where S = ceil(blocks/P) — so parallel
// workers never share a sealed block, and indices past the source extent
// read as padding (all-dummy records) without touching untrusted memory.
// P, S, and the packing factor R are all functions of public sizes and
// configuration, so the layout leaks nothing beyond P itself.
//
// Each partition reads the shared source through its own worker
// enclave: the access lands on that worker's tracer — the adversarial
// view of one core — and decryption uses the worker's sealer, so P
// goroutines can scan their partitions concurrently. (Concurrent reads
// of an enclave.Store are safe while nothing writes it; oblivious
// operators never write their input.)
type Partitioned struct {
	src     *Flat
	parts   []*PartitionView
	partLen int // S, in blocks
}

// NewPartitioned builds the P-way partitioned view of src, one
// partition per worker enclave.
func NewPartitioned(src *Flat, workers []*enclave.Enclave) (*Partitioned, error) {
	p := len(workers)
	if p < 1 {
		return nil, fmt.Errorf("storage: partitioning %q needs at least one worker", src.Name())
	}
	partLen := (src.NumBlocks() + p - 1) / p
	pt := &Partitioned{src: src, partLen: partLen}
	for i, w := range workers {
		view := &PartitionView{
			src:  src,
			via:  w,
			lo:   i * partLen,
			n:    partLen,
			part: i,
			raw:  make([]byte, src.Store().BlockSize()),
		}
		if tr := w.Tracer(); tr != nil {
			view.region = tr.Region(fmt.Sprintf("%s.part%d", src.Name(), i))
		}
		pt.parts = append(pt.parts, view)
	}
	return pt, nil
}

// NumPartitions returns P.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// PartLen returns S, the padded per-partition block count.
func (p *Partitioned) PartLen() int { return p.partLen }

// PartRows returns the padded per-partition row capacity, S·R.
func (p *Partitioned) PartRows() int { return p.partLen * p.src.RowsPerBlock() }

// Part returns partition i's view (an operator input).
func (p *Partitioned) Part(i int) *PartitionView { return p.parts[i] }

// Source returns the underlying flat table.
func (p *Partitioned) Source() *Flat { return p.src }

// PartitionView is one partition: an exec.Input over a sealed-block
// range of the source table, reading through one worker enclave with its
// own plaintext scratch (so concurrent partition scans stay
// allocation-free per block).
type PartitionView struct {
	src    *Flat
	via    *enclave.Enclave
	region trace.Region
	lo     int // first source block
	n      int // padded partition length, in blocks
	part   int
	raw    []byte
}

// Schema describes the rows (the source schema).
func (v *PartitionView) Schema() *table.Schema { return v.src.Schema() }

// Blocks is the padded partition size S in sealed blocks — identical
// for every partition, whatever the data.
func (v *PartitionView) Blocks() int { return v.n }

// RowsPerBlock returns the source's packing factor R.
func (v *PartitionView) RowsPerBlock() int { return v.src.RowsPerBlock() }

// Index reports which partition this view is.
func (v *PartitionView) Index() int { return v.part }

// ReadBlockInto reads partition block b, i.e. source block lo+b, into
// buf. Padding blocks past the source extent decode as all-dummy without
// an untrusted access; whether index b is padding is a function of the
// public sizes only.
func (v *PartitionView) ReadBlockInto(b int, buf *table.BlockBuf) error {
	if b < 0 || b >= v.n {
		return fmt.Errorf("storage: partition %d read out of range: %d of %d", v.part, b, v.n)
	}
	abs := v.lo + b
	if abs >= v.src.NumBlocks() {
		buf.SetAllDummy()
		return nil
	}
	plain, err := v.src.Store().ReadIntoVia(v.via, v.region, abs, v.raw)
	if err != nil {
		return err
	}
	v.raw = plain
	return v.src.Schema().DecodeBlockInto(buf, plain)
}

// RangeWriter gives one worker write access to a disjoint, block-aligned
// row range [lo, lo+n) of a shared output table: sealing runs on the
// worker's enclave and the accesses land on its tracer, so P workers can
// fill P disjoint ranges of one output concurrently with no combine pass
// afterwards. Sequential fills buffer records in-enclave and seal each
// block once (Append/Flush); the read-modify half of operators like
// Large's clearing pass works block-at-a-time through RMWBlock. The
// caller guarantees ranges do not overlap and that nobody reads the
// table until the workers join; row accounting (BumpRows) stays with the
// caller.
type RangeWriter struct {
	seqFill // sequential Append/Flush over the range, sealed via the worker
	via     *enclave.Enclave
	region  trace.Region
	lo      int // first block of the range
	n       int // range length in blocks
	raw     []byte
}

// RangeWriter creates a writer for row slots [lo, lo+n) of f through
// worker enclave w (partition index part names the trace region). lo and
// n must be multiples of f's packing factor — partition layouts are
// block-aligned by construction.
func (f *Flat) RangeWriter(w *enclave.Enclave, part, lo, n int) (*RangeWriter, error) {
	if lo%f.rpb != 0 || n%f.rpb != 0 {
		return nil, fmt.Errorf("storage: range [%d,%d) of %q not block-aligned (R=%d)", lo, lo+n, f.name, f.rpb)
	}
	rw := &RangeWriter{
		via: w,
		lo:  lo / f.rpb,
		n:   n / f.rpb,
		raw: make([]byte, f.store.BlockSize()),
	}
	if tr := w.Tracer(); tr != nil {
		rw.region = tr.Region(fmt.Sprintf("%s.out%d", f.name, part))
	}
	rw.seqFill = newSeqFill(f, n, func(b int, plain []byte) error {
		return f.store.WriteVia(rw.via, rw.region, rw.lo+b, plain)
	})
	return rw, nil
}

// RMWBlock reads range block b back through the worker, hands the
// plaintext to fn for in-place mutation, and re-seals it — exactly one
// read and one write on the worker's trace whatever fn does.
func (w *RangeWriter) RMWBlock(b int, fn func(plain []byte) error) error {
	if b < 0 || b >= w.n {
		return fmt.Errorf("storage: range RMW out of range: %d of %d", b, w.n)
	}
	abs := w.lo + b
	plain, err := w.f.store.ReadIntoVia(w.via, w.region, abs, w.raw)
	if err != nil {
		return err
	}
	w.raw = plain
	if err := fn(plain); err != nil {
		return err
	}
	return w.f.store.WriteVia(w.via, w.region, abs, plain)
}

// FullView wraps an entire flat table as a single worker-read view —
// the broadcast side of a parallel join, where every worker streams the
// same (small) table through its own enclave.
func FullView(src *Flat, w *enclave.Enclave, part int) *PartitionView {
	v := &PartitionView{
		src:  src,
		via:  w,
		lo:   0,
		n:    src.NumBlocks(),
		part: part,
		raw:  make([]byte, src.Store().BlockSize()),
	}
	if tr := w.Tracer(); tr != nil {
		v.region = tr.Region(fmt.Sprintf("%s.bcast%d", src.Name(), part))
	}
	return v
}
