package storage

import (
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// Partitioned splits a flat table's block array into P equal padded
// partitions for partition-parallel operators. The split is purely a
// view: partition p covers blocks [p·S, (p+1)·S) of the source, where
// S = ceil(capacity/P), and indices past the source capacity read as
// padding (an unused record) without touching untrusted memory. Both P
// and S are functions of the (public) table size alone, so the layout
// leaks nothing beyond P itself.
//
// Each partition reads the shared source through its own worker
// enclave: the access lands on that worker's tracer — the adversarial
// view of one core — and decryption uses the worker's sealer, so P
// goroutines can scan their partitions concurrently. (Concurrent reads
// of an enclave.Store are safe while nothing writes it; oblivious
// operators never write their input.)
type Partitioned struct {
	src     *Flat
	parts   []*PartitionView
	partLen int
}

// NewPartitioned builds the P-way partitioned view of src, one
// partition per worker enclave.
func NewPartitioned(src *Flat, workers []*enclave.Enclave) (*Partitioned, error) {
	p := len(workers)
	if p < 1 {
		return nil, fmt.Errorf("storage: partitioning %q needs at least one worker", src.Name())
	}
	partLen := (src.Capacity() + p - 1) / p
	pt := &Partitioned{src: src, partLen: partLen}
	for i, w := range workers {
		view := &PartitionView{
			src:  src,
			via:  w,
			lo:   i * partLen,
			n:    partLen,
			part: i,
		}
		if tr := w.Tracer(); tr != nil {
			view.region = tr.Region(fmt.Sprintf("%s.part%d", src.Name(), i))
		}
		pt.parts = append(pt.parts, view)
	}
	return pt, nil
}

// NumPartitions returns P.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// PartLen returns S, the padded per-partition block count.
func (p *Partitioned) PartLen() int { return p.partLen }

// Part returns partition i's view (an operator input).
func (p *Partitioned) Part(i int) *PartitionView { return p.parts[i] }

// Source returns the underlying flat table.
func (p *Partitioned) Source() *Flat { return p.src }

// PartitionView is one partition: an exec.Input over a block range of
// the source table, reading through one worker enclave.
type PartitionView struct {
	src    *Flat
	via    *enclave.Enclave
	region trace.Region
	lo     int
	n      int
	part   int
}

// Schema describes the rows (the source schema).
func (v *PartitionView) Schema() *table.Schema { return v.src.Schema() }

// Blocks is the padded partition size S — identical for every
// partition, whatever the data.
func (v *PartitionView) Blocks() int { return v.n }

// Index reports which partition this view is.
func (v *PartitionView) Index() int { return v.part }

// ReadBlock reads partition block i, i.e. source block lo+i. Padding
// blocks past the source capacity decode as unused records without an
// untrusted access; whether index i is padding is a function of the
// public sizes only.
func (v *PartitionView) ReadBlock(i int) (table.Row, bool, error) {
	if i < 0 || i >= v.n {
		return nil, false, fmt.Errorf("storage: partition %d read out of range: %d of %d", v.part, i, v.n)
	}
	abs := v.lo + i
	if abs >= v.src.Capacity() {
		return nil, false, nil
	}
	return v.src.ReadBlockVia(v.via, v.region, abs)
}

// RangeWriter gives one worker write access to a disjoint block range
// [lo, lo+n) of a shared output table: sealing runs on the worker's
// enclave and the accesses land on its tracer, so P workers can fill P
// disjoint ranges of one output concurrently with no combine pass
// afterwards. The caller guarantees ranges do not overlap and that
// nobody reads the table until the workers join; row accounting
// (BumpRows) stays with the caller.
type RangeWriter struct {
	f      *Flat
	via    *enclave.Enclave
	region trace.Region
	lo, n  int
	buf    []byte
}

// RangeWriter creates a writer for blocks [lo, lo+n) of f through
// worker enclave w (partition index part names the trace region).
func (f *Flat) RangeWriter(w *enclave.Enclave, part, lo, n int) *RangeWriter {
	rw := &RangeWriter{f: f, via: w, lo: lo, n: n, buf: make([]byte, f.schema.RecordSize())}
	if tr := w.Tracer(); tr != nil {
		rw.region = tr.Region(fmt.Sprintf("%s.out%d", f.name, part))
	}
	return rw
}

// SetRow writes a row (or dummy) to range block i, i.e. table block
// lo+i.
func (w *RangeWriter) SetRow(i int, r table.Row, used bool) error {
	if i < 0 || i >= w.n {
		return fmt.Errorf("storage: range write out of range: %d of %d", i, w.n)
	}
	var err error
	if used {
		err = w.f.schema.EncodeRecord(w.buf, r)
	} else {
		err = w.f.schema.EncodeDummy(w.buf)
	}
	if err != nil {
		return err
	}
	return w.f.store.WriteVia(w.via, w.region, w.lo+i, w.buf)
}

// ReadBlock reads range block i back (the read-modify half of operators
// like Large's clearing pass), traced on the worker.
func (w *RangeWriter) ReadBlock(i int) (table.Row, bool, error) {
	if i < 0 || i >= w.n {
		return nil, false, fmt.Errorf("storage: range read out of range: %d of %d", i, w.n)
	}
	return w.f.ReadBlockVia(w.via, w.region, w.lo+i)
}

// FullView wraps an entire flat table as a single worker-read view —
// the broadcast side of a parallel join, where every worker streams the
// same (small) table through its own enclave.
func FullView(src *Flat, w *enclave.Enclave, part int) *PartitionView {
	v := &PartitionView{src: src, via: w, lo: 0, n: src.Capacity(), part: part}
	if tr := w.Tracer(); tr != nil {
		v.region = tr.Region(fmt.Sprintf("%s.bcast%d", src.Name(), part))
	}
	return v
}
