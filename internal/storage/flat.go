// Package storage implements ObliDB's flat storage method (§3.1): rows in
// a series of adjacent sealed blocks with no built-in access-pattern
// protection, so every operation that must be oblivious scans the whole
// table, giving unaffected blocks dummy writes (a re-encryption of the
// data they already hold).
//
// One record per block, as in the paper's implementation. The trusted
// metadata per table is tiny: the capacity, the used-row count, and the
// cursor for the constant-time insert variant.
package storage

import (
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// Flat is a flat-method table: capacity sealed record blocks in untrusted
// memory.
type Flat struct {
	enc      *enclave.Enclave
	schema   *table.Schema
	store    *enclave.Store
	name     string
	rows     int // number of used records (trusted metadata)
	appendAt int // next slot for the constant-time insert variant
	buf      []byte
}

// NewFlat creates a flat table with the given fixed capacity in rows.
func NewFlat(e *enclave.Enclave, name string, schema *table.Schema, capacity int) (*Flat, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: flat table %q needs positive capacity, got %d", name, capacity)
	}
	store, err := e.NewStore(name, capacity, schema.RecordSize())
	if err != nil {
		return nil, err
	}
	return &Flat{
		enc:    e,
		schema: schema,
		store:  store,
		name:   name,
		buf:    make([]byte, schema.RecordSize()),
	}, nil
}

// Name returns the table name.
func (f *Flat) Name() string { return f.name }

// Schema returns the table schema.
func (f *Flat) Schema() *table.Schema { return f.schema }

// Capacity returns the number of record blocks. This is the size the
// adversary sees.
func (f *Flat) Capacity() int { return f.store.Len() }

// NumRows returns the used-record count (trusted enclave metadata).
func (f *Flat) NumRows() int { return f.rows }

// Store exposes the underlying untrusted store (for adversary tests and
// operators that stream blocks directly).
func (f *Flat) Store() *enclave.Store { return f.store }

// ReadBlock decrypts block i, returning its row and used flag.
func (f *Flat) ReadBlock(i int) (table.Row, bool, error) {
	plain, err := f.store.Read(i)
	if err != nil {
		return nil, false, err
	}
	return f.schema.DecodeRecord(plain)
}

// ReadBlockVia is ReadBlock with the untrusted access recorded on a
// worker enclave's tracer (see enclave.Store.ReadVia); partition views
// use it so concurrent workers never touch a shared tracer.
func (f *Flat) ReadBlockVia(via *enclave.Enclave, r trace.Region, i int) (table.Row, bool, error) {
	plain, err := f.store.ReadVia(via, r, i)
	if err != nil {
		return nil, false, err
	}
	return f.schema.DecodeRecord(plain)
}

// WriteRow seals row r into block i as a used record.
func (f *Flat) WriteRow(i int, r table.Row) error {
	if err := f.schema.EncodeRecord(f.buf, r); err != nil {
		return err
	}
	return f.store.Write(i, f.buf)
}

// WriteDummy seals an unused record into block i.
func (f *Flat) WriteDummy(i int) error {
	if err := f.schema.EncodeDummy(f.buf); err != nil {
		return err
	}
	return f.store.Write(i, f.buf)
}

// rewrite re-seals the given plaintext unchanged — the paper's dummy
// write: "overwriting a row with the data it already held, re-encrypted
// and therefore re-randomized".
func (f *Flat) rewrite(i int, plain []byte) error {
	return f.store.Write(i, plain)
}

// Insert obliviously inserts a row: one pass over the table in which the
// first unused block receives the real write and every other block a dummy
// write. Leaks only the table size.
func (f *Flat) Insert(r table.Row) error {
	if err := f.schema.ValidateRow(r); err != nil {
		return err
	}
	inserted := false
	for i := 0; i < f.store.Len(); i++ {
		plain, err := f.store.Read(i)
		if err != nil {
			return err
		}
		if !inserted && plain[0] == 0 {
			if err := f.WriteRow(i, r); err != nil {
				return err
			}
			inserted = true
			if i >= f.appendAt {
				f.appendAt = i + 1
			}
			continue
		}
		if err := f.rewrite(i, plain); err != nil {
			return err
		}
	}
	if !inserted {
		return fmt.Errorf("storage: table %q is full (%d rows)", f.name, f.store.Len())
	}
	f.rows++
	return nil
}

// InsertFast is the constant-time insertion variant for tables with few
// deletions (§3.1): it writes directly to the next slot, skipping the
// scan. The slot sequence depends only on the number of prior insertions,
// which the adversary already learns from table sizes over time.
func (f *Flat) InsertFast(r table.Row) error {
	if err := f.schema.ValidateRow(r); err != nil {
		return err
	}
	if f.appendAt >= f.store.Len() {
		return fmt.Errorf("storage: table %q is full (%d rows)", f.name, f.store.Len())
	}
	if err := f.WriteRow(f.appendAt, r); err != nil {
		return err
	}
	f.appendAt++
	f.rows++
	return nil
}

// Update obliviously applies upd to every row matching pred in one pass:
// matching blocks get the rewritten row, all others a dummy write. It
// returns the number of rows updated.
func (f *Flat) Update(pred table.Pred, upd table.Updater) (int, error) {
	updated := 0
	for i := 0; i < f.store.Len(); i++ {
		plain, err := f.store.Read(i)
		if err != nil {
			return updated, err
		}
		row, used, err := f.schema.DecodeRecord(plain)
		if err != nil {
			return updated, err
		}
		if used && pred(row) {
			newRow := upd(row)
			if err := f.WriteRow(i, newRow); err != nil {
				return updated, err
			}
			updated++
			continue
		}
		if err := f.rewrite(i, plain); err != nil {
			return updated, err
		}
	}
	return updated, nil
}

// Delete obliviously marks every row matching pred unused, overwriting it
// with dummy data; all other blocks get dummy writes. It returns the
// number of rows deleted.
func (f *Flat) Delete(pred table.Pred) (int, error) {
	deleted := 0
	for i := 0; i < f.store.Len(); i++ {
		plain, err := f.store.Read(i)
		if err != nil {
			return deleted, err
		}
		row, used, err := f.schema.DecodeRecord(plain)
		if err != nil {
			return deleted, err
		}
		if used && pred(row) {
			if err := f.WriteDummy(i); err != nil {
				return deleted, err
			}
			deleted++
			continue
		}
		if err := f.rewrite(i, plain); err != nil {
			return deleted, err
		}
	}
	f.rows -= deleted
	if deleted > 0 {
		// Deletions may open holes before appendAt; fall back to scanning
		// inserts for correctness (the paper offers InsertFast for tables
		// "with few deletions").
		f.appendAt = f.store.Len()
	}
	return deleted, nil
}

// Scan reads every block once in order, invoking fn inside the enclave.
// This is the read pass underlying aggregates and the planner's stats
// scan; its trace is one read per block regardless of data.
func (f *Flat) Scan(fn func(i int, row table.Row, used bool) error) error {
	for i := 0; i < f.store.Len(); i++ {
		row, used, err := f.ReadBlock(i)
		if err != nil {
			return err
		}
		if err := fn(i, row, used); err != nil {
			return err
		}
	}
	return nil
}

// Rows collects all used rows in block order. It is a convenience for
// tests and result delivery, not an oblivious operator.
func (f *Flat) Rows() ([]table.Row, error) {
	var out []table.Row
	err := f.Scan(func(_ int, row table.Row, used bool) error {
		if used {
			out = append(out, row)
		}
		return nil
	})
	return out, err
}

// CopyInto obliviously copies this table block-for-block into dst, which
// must have at least the same capacity and an equal schema. The copy's
// trace depends only on sizes (used by the Large select, §4.1).
func (f *Flat) CopyInto(dst *Flat) error {
	if !f.schema.Equal(dst.schema) {
		return fmt.Errorf("storage: schema mismatch copying %q into %q", f.name, dst.name)
	}
	if dst.store.Len() < f.store.Len() {
		return fmt.Errorf("storage: destination %q too small: %d < %d", dst.name, dst.store.Len(), f.store.Len())
	}
	for i := 0; i < f.store.Len(); i++ {
		plain, err := f.store.Read(i)
		if err != nil {
			return err
		}
		if err := dst.store.Write(i, plain); err != nil {
			return err
		}
	}
	dst.rows = f.rows
	dst.appendAt = f.appendAt
	return nil
}

// Expand returns a new flat table with larger capacity holding the same
// rows ("an initial maximum capacity that can be increased later by
// copying to a new, larger table", §3).
func (f *Flat) Expand(name string, newCapacity int) (*Flat, error) {
	if newCapacity < f.store.Len() {
		return nil, fmt.Errorf("storage: cannot shrink %q from %d to %d", f.name, f.store.Len(), newCapacity)
	}
	bigger, err := NewFlat(f.enc, name, f.schema, newCapacity)
	if err != nil {
		return nil, err
	}
	if err := f.CopyInto(bigger); err != nil {
		return nil, err
	}
	return bigger, nil
}

// SetRow writes a row (or dummy) directly to block i, adjusting the used
// count. It is the building block operators use when they own the whole
// output table; it performs exactly one write.
func (f *Flat) SetRow(i int, r table.Row, used bool) error {
	if !used {
		return f.WriteDummy(i)
	}
	return f.WriteRow(i, r)
}

// BumpRows adjusts the trusted row count after operators fill an output
// table directly through SetRow.
func (f *Flat) BumpRows(n int) { f.rows += n }
