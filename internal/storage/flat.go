// Package storage implements ObliDB's flat storage method (§3.1): rows in
// a series of adjacent sealed blocks with no built-in access-pattern
// protection, so every operation that must be oblivious scans the whole
// table, giving unaffected blocks dummy writes (a re-encryption of the
// data they already hold).
//
// Unlike the paper's one-record-per-block implementation, each sealed
// block packs R records (the paper's design only fixes the *block* as the
// sealed unit). R is public geometry chosen at table creation — by
// default sized so a block holds ~4 KiB of plaintext — and every
// full-table pass costs one AEAD open and one seal per block instead of
// per row, dividing crypto, trace, and allocation cost by R. R = 1
// reproduces the paper's geometry exactly. The trusted metadata per table
// is tiny: the capacity, the used-row count, and the cursor for the
// constant-time insert variant.
package storage

import (
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// DefaultBlockBytes is the plaintext block size the default packing
// targets: large enough to amortize the fixed per-AEAD-call cost, small
// enough that a single-row RMW does not dominate point updates.
const DefaultBlockBytes = 4096

// DefaultRowsPerBlock returns the packing factor R that makes one block
// hold ~DefaultBlockBytes of plaintext for the schema (at least 1).
func DefaultRowsPerBlock(s *table.Schema) int {
	r := DefaultBlockBytes / s.RecordSize()
	if r < 1 {
		r = 1
	}
	return r
}

// Flat is a flat-method table: ceil(capacity/R) sealed blocks in
// untrusted memory, each packing R records.
type Flat struct {
	enc      *enclave.Enclave
	schema   *table.Schema
	store    *enclave.Store
	name     string
	rpb      int             // R, records per sealed block (public geometry)
	rows     int             // number of used records (trusted metadata)
	appendAt int             // next row slot for the constant-time insert variant
	blk      []byte          // one-block plaintext scratch (hot path, reused)
	dec      *table.BlockBuf // decode scratch for Scan (lazily allocated)
}

// NewFlat creates a flat table with the given fixed capacity in rows and
// the paper's one-record-per-block geometry (R = 1).
func NewFlat(e *enclave.Enclave, name string, schema *table.Schema, capacity int) (*Flat, error) {
	return NewFlatGeom(e, name, schema, capacity, 1)
}

// NewFlatGeom creates a flat table packing rowsPerBlock records into
// each sealed block. The row capacity is rounded up to a whole number of
// blocks; both the block count and R are public.
func NewFlatGeom(e *enclave.Enclave, name string, schema *table.Schema, capacity, rowsPerBlock int) (*Flat, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: flat table %q needs positive capacity, got %d", name, capacity)
	}
	if rowsPerBlock <= 0 {
		return nil, fmt.Errorf("storage: flat table %q needs positive rows per block, got %d", name, rowsPerBlock)
	}
	blocks := (capacity + rowsPerBlock - 1) / rowsPerBlock
	store, err := e.NewStore(name, blocks, schema.BlockSize(rowsPerBlock))
	if err != nil {
		return nil, err
	}
	return &Flat{
		enc:    e,
		schema: schema,
		store:  store,
		name:   name,
		rpb:    rowsPerBlock,
		blk:    make([]byte, schema.BlockSize(rowsPerBlock)),
	}, nil
}

// Name returns the table name.
func (f *Flat) Name() string { return f.name }

// Schema returns the table schema.
func (f *Flat) Schema() *table.Schema { return f.schema }

// Capacity returns the number of row slots (block count × R). Both
// factors are public: this is the size the adversary sees, in rows.
func (f *Flat) Capacity() int { return f.store.Len() * f.rpb }

// NumBlocks returns the number of sealed blocks — the untrusted
// structure's extent, and the unit every trace event indexes.
func (f *Flat) NumBlocks() int { return f.store.Len() }

// RowsPerBlock returns R, the packing factor.
func (f *Flat) RowsPerBlock() int { return f.rpb }

// NumRows returns the used-record count (trusted enclave metadata).
func (f *Flat) NumRows() int { return f.rows }

// Store exposes the underlying untrusted store (for adversary tests and
// operators that stream blocks directly).
func (f *Flat) Store() *enclave.Store { return f.store }

// readBlk reads block b into the table's plaintext scratch.
func (f *Flat) readBlk(b int) error {
	plain, err := f.store.ReadInto(b, f.blk)
	if err != nil {
		return err
	}
	f.blk = plain
	return nil
}

// ReadRow decrypts the block containing row slot i and decodes that
// record, returning a fresh Row the caller owns. One traced block read.
func (f *Flat) ReadRow(i int) (table.Row, bool, error) {
	if i < 0 || i >= f.Capacity() {
		return nil, false, fmt.Errorf("storage: table %q row read out of range: %d of %d", f.name, i, f.Capacity())
	}
	if err := f.readBlk(i / f.rpb); err != nil {
		return nil, false, err
	}
	return f.schema.DecodeRecordAt(f.blk, i%f.rpb)
}

// ReadBlockInto decrypts packed block b into the caller-owned scratch
// buf (which fixes R and is reused across calls, so steady-state scans
// allocate nothing per block).
func (f *Flat) ReadBlockInto(b int, buf *table.BlockBuf) error {
	if err := f.readBlk(b); err != nil {
		return err
	}
	return f.schema.DecodeBlockInto(buf, f.blk)
}

// SetRow writes a row (or dummy) to row slot i, adjusting nothing else.
// At R = 1 this is a single block write; at R > 1 it is a
// read-modify-write of the containing block — one read plus one write,
// never R row operations. Row accounting stays with the caller
// (BumpRows), as before.
func (f *Flat) SetRow(i int, r table.Row, used bool) error {
	if i < 0 || i >= f.Capacity() {
		return fmt.Errorf("storage: table %q row write out of range: %d of %d", f.name, i, f.Capacity())
	}
	b, j := i/f.rpb, i%f.rpb
	if f.rpb == 1 {
		// The write covers the whole block: no read needed, preserving
		// the paper geometry's exact one-write trace.
		if err := f.encodeAt(f.blk, j, r, used); err != nil {
			return err
		}
		return f.store.Write(b, f.blk)
	}
	var err error
	f.blk, err = f.store.RMW(b, f.blk, func(plain []byte) error {
		return f.encodeAt(plain, j, r, used)
	})
	return err
}

// RMWSlot reads the block containing row slot i, hands the plaintext and
// the in-block record index to fn for in-place mutation, and re-seals the
// block — exactly one read plus one write whatever fn does, so a packed
// dummy write (fn leaving the plaintext untouched) re-seals one block,
// not R rows.
func (f *Flat) RMWSlot(i int, fn func(plain []byte, j int) error) error {
	if i < 0 || i >= f.Capacity() {
		return fmt.Errorf("storage: table %q slot RMW out of range: %d of %d", f.name, i, f.Capacity())
	}
	b, j := i/f.rpb, i%f.rpb
	var err error
	f.blk, err = f.store.RMW(b, f.blk, func(plain []byte) error {
		return fn(plain, j)
	})
	return err
}

// encodeAt encodes a record (or dummy) at slot j of a block plaintext.
func (f *Flat) encodeAt(plain []byte, j int, r table.Row, used bool) error {
	if !used {
		return f.schema.EncodeDummyAt(plain, j)
	}
	return f.schema.EncodeRecordAt(plain, j, r)
}

// Insert obliviously inserts a row: one pass over the table in which the
// block holding the first unused slot receives the real write (a
// read-modify-write) and every other block a dummy write (a re-seal of
// the data it already holds). One read and one write per block; leaks
// only the table size and geometry.
func (f *Flat) Insert(r table.Row) error {
	if err := f.schema.ValidateRow(r); err != nil {
		return err
	}
	inserted := false
	for b := 0; b < f.store.Len(); b++ {
		if err := f.readBlk(b); err != nil {
			return err
		}
		if !inserted {
			for j := 0; j < f.rpb; j++ {
				if f.schema.UsedAt(f.blk, j) {
					continue
				}
				if err := f.schema.EncodeRecordAt(f.blk, j, r); err != nil {
					return err
				}
				inserted = true
				if i := b*f.rpb + j; i >= f.appendAt {
					f.appendAt = i + 1
				}
				break
			}
		}
		if err := f.store.Write(b, f.blk); err != nil {
			return err
		}
	}
	if !inserted {
		return fmt.Errorf("storage: table %q is full (%d rows)", f.name, f.Capacity())
	}
	f.rows++
	return nil
}

// InsertFast is the constant-time insertion variant for tables with few
// deletions (§3.1): it touches only the block holding the next slot,
// skipping the scan. The slot sequence depends only on the number of
// prior insertions, which the adversary already learns from table sizes
// over time.
func (f *Flat) InsertFast(r table.Row) error {
	if err := f.schema.ValidateRow(r); err != nil {
		return err
	}
	if f.appendAt >= f.Capacity() {
		return fmt.Errorf("storage: table %q is full (%d rows)", f.name, f.Capacity())
	}
	if err := f.SetRow(f.appendAt, r, true); err != nil {
		return err
	}
	f.appendAt++
	f.rows++
	return nil
}

// Update obliviously applies upd to every row matching pred. It runs two
// full passes whose traces depend only on the block count: a read-only
// validation pass that applies upd to every matching row and checks the
// result (ValidateRow), then a read-modify-write pass giving every block
// one read and one write (re-applying upd to its matching records, or a
// dummy re-encryption). A misbehaving updater — wrong arity, wrong kind,
// oversized string — fails cleanly in the first pass with the table
// untouched, instead of erroring mid-pass with the table half-rewritten;
// nothing is buffered, so tables arbitrarily larger than the oblivious
// memory update in O(1) enclave space. pred and upd must be pure: both
// passes evaluate them, so side-effecting or non-deterministic callbacks
// would diverge between validation and write. It returns the number of
// rows updated.
func (f *Flat) Update(pred table.Pred, upd table.Updater) (int, error) {
	err := f.Scan(func(i int, row table.Row, used bool) error {
		if !used || !pred(row) {
			return nil
		}
		if err := f.schema.ValidateRow(upd(row.Clone())); err != nil {
			return fmt.Errorf("storage: update on %q produced an invalid row: %w", f.name, err)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if f.dec == nil {
		f.dec = f.schema.NewBlockBuf(f.rpb)
	}
	updated := 0
	for b := 0; b < f.store.Len(); b++ {
		f.blk, err = f.store.RMW(b, f.blk, func(plain []byte) error {
			if err := f.schema.DecodeBlockInto(f.dec, plain); err != nil {
				return err
			}
			for j := 0; j < f.rpb; j++ {
				row, used := f.dec.Row(j)
				if !used || !pred(row) {
					continue
				}
				if err := f.schema.EncodeRecordAt(plain, j, upd(row.Clone())); err != nil {
					return err
				}
				updated++
			}
			return nil
		})
		if err != nil {
			return updated, err
		}
	}
	return updated, nil
}

// Delete obliviously marks every row matching pred unused, overwriting
// it with dummy data; every block gets exactly one read and one write
// (its survivors re-encrypted). It returns the number of rows deleted.
func (f *Flat) Delete(pred table.Pred) (int, error) {
	if f.dec == nil {
		f.dec = f.schema.NewBlockBuf(f.rpb)
	}
	deleted := 0
	for b := 0; b < f.store.Len(); b++ {
		var err error
		f.blk, err = f.store.RMW(b, f.blk, func(plain []byte) error {
			if err := f.schema.DecodeBlockInto(f.dec, plain); err != nil {
				return err
			}
			for j := 0; j < f.rpb; j++ {
				row, used := f.dec.Row(j)
				if used && pred(row) {
					if err := f.schema.EncodeDummyAt(plain, j); err != nil {
						return err
					}
					deleted++
				}
			}
			return nil
		})
		if err != nil {
			return deleted, err
		}
	}
	f.rows -= deleted
	if deleted > 0 {
		// Deletions may open holes before appendAt; fall back to scanning
		// inserts for correctness (the paper offers InsertFast for tables
		// "with few deletions").
		f.appendAt = f.Capacity()
	}
	return deleted, nil
}

// Scan reads every block once in order, invoking fn inside the enclave
// for each row slot (row is nil when the slot is unused). The rows
// passed to fn alias a scratch buffer reused block to block: fn must
// Clone any row it retains. The trace is one read per block regardless
// of data, and the steady-state path allocates nothing per block.
func (f *Flat) Scan(fn func(i int, row table.Row, used bool) error) error {
	if f.dec == nil {
		f.dec = f.schema.NewBlockBuf(f.rpb)
	}
	for b := 0; b < f.store.Len(); b++ {
		if err := f.ReadBlockInto(b, f.dec); err != nil {
			return err
		}
		base := b * f.rpb
		for j := 0; j < f.rpb; j++ {
			row, used := f.dec.Row(j)
			if err := fn(base+j, row, used); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rows collects all used rows in slot order. It is a convenience for
// tests and result delivery, not an oblivious operator. The result slice
// is preallocated to the known row count and every row is a fresh copy.
func (f *Flat) Rows() ([]table.Row, error) {
	out := make([]table.Row, 0, f.rows)
	err := f.Scan(func(_ int, row table.Row, used bool) error {
		if used {
			out = append(out, row.Clone())
		}
		return nil
	})
	return out, err
}

// CopyInto obliviously copies this table block-for-block into dst, which
// must have at least the same capacity, an equal schema, and the same
// packing factor. The copy's trace depends only on sizes (used by table
// growth); dst blocks past the source keep their freshly-initialized
// dummy contents.
func (f *Flat) CopyInto(dst *Flat) error {
	if !f.schema.Equal(dst.schema) {
		return fmt.Errorf("storage: schema mismatch copying %q into %q", f.name, dst.name)
	}
	if dst.rpb != f.rpb {
		return fmt.Errorf("storage: geometry mismatch copying %q (R=%d) into %q (R=%d)", f.name, f.rpb, dst.name, dst.rpb)
	}
	if dst.Capacity() < f.Capacity() {
		return fmt.Errorf("storage: destination %q too small: %d < %d", dst.name, dst.Capacity(), f.Capacity())
	}
	for b := 0; b < f.store.Len(); b++ {
		if err := f.readBlk(b); err != nil {
			return err
		}
		if err := dst.store.Write(b, f.blk); err != nil {
			return err
		}
	}
	dst.rows = f.rows
	dst.appendAt = f.appendAt
	return nil
}

// Expand returns a new flat table with larger capacity (same geometry)
// holding the same rows ("an initial maximum capacity that can be
// increased later by copying to a new, larger table", §3).
func (f *Flat) Expand(name string, newCapacity int) (*Flat, error) {
	if newCapacity < f.Capacity() {
		return nil, fmt.Errorf("storage: cannot shrink %q from %d to %d", f.name, f.Capacity(), newCapacity)
	}
	bigger, err := NewFlatGeom(f.enc, name, f.schema, newCapacity, f.rpb)
	if err != nil {
		return nil, err
	}
	if err := f.CopyInto(bigger); err != nil {
		return nil, err
	}
	return bigger, nil
}

// BumpRows adjusts the trusted row count after operators fill an output
// table directly through SetRow or a BlockWriter.
func (f *Flat) BumpRows(n int) { f.rows += n }

// seqFill owns the sequential-fill slot arithmetic shared by
// BlockWriter and storage.RangeWriter: records encode into an
// in-enclave block buffer and each block is handed to write exactly
// once — when it completes, or dummy-padded at Flush. One sealed write
// per block instead of one read-modify-write per row.
type seqFill struct {
	f       *Flat
	buf     []byte
	next    int // next row slot, relative to the fill's origin
	slots   int // total row slots available
	flushed bool
	write   func(block int, plain []byte) error
}

func newSeqFill(f *Flat, slots int, write func(block int, plain []byte) error) seqFill {
	return seqFill{f: f, buf: make([]byte, f.store.BlockSize()), slots: slots, write: write}
}

// Append encodes one row (or dummy) into the next slot, emitting the
// block when it completes.
func (w *seqFill) Append(r table.Row, used bool) error {
	if w.flushed {
		return fmt.Errorf("storage: sequential fill of %q appended after Flush", w.f.name)
	}
	if w.next >= w.slots {
		return fmt.Errorf("storage: sequential fill past its %d slots of %q", w.slots, w.f.name)
	}
	j := w.next % w.f.rpb
	if err := w.f.encodeAt(w.buf, j, r, used); err != nil {
		return err
	}
	w.next++
	if j == w.f.rpb-1 {
		return w.write(w.next/w.f.rpb-1, w.buf)
	}
	return nil
}

// Written returns the number of slots appended so far.
func (w *seqFill) Written() int { return w.next }

// Flush completes a partial final block, padding its remaining slots
// with dummies. Appending after Flush is an error.
func (w *seqFill) Flush() error {
	w.flushed = true
	j := w.next % w.f.rpb
	if j == 0 {
		return nil
	}
	for ; j < w.f.rpb; j++ {
		if err := w.f.schema.EncodeDummyAt(w.buf, j); err != nil {
			return err
		}
		w.next++
	}
	return w.write(w.next/w.f.rpb-1, w.buf)
}

// BlockWriter fills a table's row slots sequentially from slot 0 — the
// output half of every sequential-fill operator. The writer must own
// the whole table (a fresh operator output); Flush pads the final
// partial block's remaining slots with dummies and writes it.
type BlockWriter struct{ seqFill }

// NewBlockWriter creates a sequential writer over f starting at slot 0.
func (f *Flat) NewBlockWriter() *BlockWriter {
	return &BlockWriter{newSeqFill(f, f.Capacity(), func(b int, plain []byte) error {
		return f.store.Write(b, plain)
	})}
}

// ReadView is a read-only view of a flat table owned by one concurrent
// read context: it carries its own plaintext and decode scratch and reads
// through the context's enclave (ReadIntoVia), so several views — and the
// table's owner — may read the same sealed blocks concurrently. Accesses
// are recorded on the view's tracer under the table's name, exactly as
// the owning enclave would record them. A view is only valid while no
// goroutine writes the table (the engine guarantees this with its
// read/write lock) and is invalidated by Expand, which replaces the
// table's store.
//
// ReadView implements the exec.Input block-reader shape directly.
type ReadView struct {
	f      *Flat
	via    *enclave.Enclave
	region trace.Region
	blk    []byte
}

// ReadViewVia creates a read view of f for the given enclave context.
// The view registers a region named after the table on the context's
// tracer.
func (f *Flat) ReadViewVia(via *enclave.Enclave) *ReadView {
	return &ReadView{
		f:      f,
		via:    via,
		region: via.Tracer().Region(f.name),
		blk:    make([]byte, f.store.BlockSize()),
	}
}

// Table returns the flat table behind the view.
func (v *ReadView) Table() *Flat { return v.f }

// Schema returns the table schema.
func (v *ReadView) Schema() *table.Schema { return v.f.schema }

// Blocks returns the number of sealed blocks.
func (v *ReadView) Blocks() int { return v.f.store.Len() }

// RowsPerBlock returns R, the packing factor.
func (v *ReadView) RowsPerBlock() int { return v.f.rpb }

// ReadBlockInto decrypts packed block b through the view's enclave into
// the caller-owned scratch buf.
func (v *ReadView) ReadBlockInto(b int, buf *table.BlockBuf) error {
	plain, err := v.f.store.ReadIntoVia(v.via, v.region, b, v.blk)
	if err != nil {
		return err
	}
	v.blk = plain
	return v.f.schema.DecodeBlockInto(buf, plain)
}
