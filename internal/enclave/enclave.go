// Package enclave simulates the hardware-enclave environment ObliDB runs
// in (§2). It provides the two memories the paper distinguishes:
//
//   - A small *oblivious memory* region inside the enclave whose access
//     patterns the OS cannot observe. The paper budgets this explicitly
//     (≤20 MB in all experiments, §2.2); Enclave meters it in bytes and
//     operators degrade gracefully when it is scarce.
//   - Untrusted memory managed by the OS, where every access is visible to
//     the adversary. Store wraps a block array so that every read and write
//     is recorded by a trace.Tracer and every block is sealed (encrypted +
//     authenticated + revision-bound) before it leaves the enclave.
//
// There is no SGX here; the substitution preserves exactly what the
// paper's algorithms depend on — the visible access sequence, the sealed
// block format, and the oblivious-memory budget — which is argued in
// DESIGN.md §2.
package enclave

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"oblidb/internal/crypt"
	"oblidb/internal/trace"
)

// Config configures a simulated enclave.
type Config struct {
	// ObliviousMemory is the budget, in bytes, of enclave memory assumed
	// safe from access-pattern leakage. The paper uses 20 MB or less in all
	// experiments. Zero means no oblivious memory: only the operators the
	// paper marks "0 Bytes" can then run.
	ObliviousMemory int
	// Tracer, if non-nil, observes every untrusted-memory access. Tests use
	// this to check obliviousness; benchmarks leave it nil.
	Tracer *trace.Tracer
	// Key is the AES-256 data key. If nil a random key is generated,
	// matching the paper's model where the key lives only inside the
	// enclave.
	Key []byte
	// Seed seeds the enclave's PRNG (ORAM leaf assignment, hash salts).
	// Zero derives a seed from the key so runs are reproducible per key.
	Seed uint64
	// StoreLatency models the cost of one untrusted-memory block access
	// (the OCALL / remote-storage round trip a deployed enclave pays):
	// every Store read and write sleeps this long before touching the
	// block. Zero (the default) keeps untrusted memory at in-process
	// speed. The delay is per access — a function of the traced sequence
	// only, never of data — so it adds no leakage channel. Benchmarks use
	// it to measure latency-hiding concurrency on hardware where sealed
	// blocks would otherwise be CPU-bound.
	StoreLatency time.Duration
	// Fault, if non-nil, is consulted once per untrusted-memory block
	// access and may fail it — the unreliable (not malicious) host of
	// the failure model. Implementations must key their decisions on
	// the access count only, never on data (internal/faultstore does),
	// so injection adds no leakage channel. Inherited by Split, Child,
	// and Replica contexts so every path to untrusted memory is
	// covered.
	Fault FaultInjector
}

// FaultInjector decides, per untrusted-memory block access, whether
// the host transiently fails it. Access is called after the access is
// traced and accounted (the adversary observes attempts, not
// outcomes) and before the block is touched; returning a non-nil
// error aborts the access with no state change. Implementations must
// be safe for concurrent use and data-independent: the decision may
// depend on how MANY accesses happened, never on what they carried.
type FaultInjector interface {
	Access(write bool) error
}

// DefaultObliviousMemory is the 20 MB budget used throughout the paper's
// evaluation (§2.2).
const DefaultObliviousMemory = 20 << 20

// Enclave is the trusted environment: it owns the data key, the oblivious
// memory accountant, and the randomness used by oblivious data structures.
type Enclave struct {
	sealer *crypt.Sealer
	tracer *trace.Tracer
	rng    *rand.Rand
	// acct is the oblivious-memory accountant. Split workers and Replica
	// contexts own their accountant; Child contexts share the parent's, so
	// standing reservations (ORAM stashes, position maps) stay visible to
	// everyone pricing against the parent.
	acct *acct
	key  []byte
	seed uint64
	// io tallies sealed-block traffic through this enclave's boundary.
	// Split workers and Replica contexts each own their tallies (readers
	// fold across the pool, core.DB.IOStats); Child contexts share the
	// parent's so a table's index I/O lands on the engine tally.
	io *IOStats
	// tids hands out store ids for sealed-block domain separation. It is
	// shared (and atomic) across an enclave and its Split workers so two
	// workers never seal blocks under the same id.
	tids *atomic.Uint32
	// latency is Config.StoreLatency: the modeled cost of one untrusted
	// block access. Inherited by Split/Child/Replica contexts so every
	// path to untrusted memory pays the same toll.
	latency time.Duration
	// fault is Config.Fault: the unreliable-host model. Inherited by
	// Split/Child/Replica contexts so every path to untrusted memory
	// can fail, not just the serial engine's.
	fault FaultInjector
}

// acct meters oblivious memory for one budget domain. used and peak are
// atomic so a metrics scrape can read the accountant while worker
// enclaves reserve concurrently, and so enclaves sharing an accountant
// (Child) reserve safely.
type acct struct {
	budget int
	used   atomic.Int64
	peak   atomic.Int64
}

// IOStats counts the sealed blocks and plaintext bytes crossing one
// enclave's boundary to untrusted memory: blocks opened (read +
// authenticated + decrypted) and sealed (encrypted + written). All four
// are functions of the executed access sequence — exactly what the
// untrusted host already observes — so they are safe to publish.
// The counters are atomic: hot paths Add, scrapes Load.
type IOStats struct {
	BlocksOpened, BlocksSealed atomic.Uint64
	BytesOpened, BytesSealed   atomic.Uint64
}

// IOSnapshot is a point-in-time copy of IOStats.
type IOSnapshot struct {
	BlocksOpened, BlocksSealed uint64
	BytesOpened, BytesSealed   uint64
}

// Add folds another snapshot into this one.
func (s *IOSnapshot) Add(o IOSnapshot) {
	s.BlocksOpened += o.BlocksOpened
	s.BlocksSealed += o.BlocksSealed
	s.BytesOpened += o.BytesOpened
	s.BytesSealed += o.BytesSealed
}

// IOStats snapshots this enclave's sealed-block I/O tallies. For a
// parallel engine, fold the Split workers' snapshots in too.
func (e *Enclave) IOStats() IOSnapshot {
	return IOSnapshot{
		BlocksOpened: e.io.BlocksOpened.Load(),
		BlocksSealed: e.io.BlocksSealed.Load(),
		BytesOpened:  e.io.BytesOpened.Load(),
		BytesSealed:  e.io.BytesSealed.Load(),
	}
}

// New creates a simulated enclave. A zero Config gets the paper's default
// 20 MB oblivious-memory budget and a fresh random key.
func New(cfg Config) (*Enclave, error) {
	if cfg.ObliviousMemory < 0 {
		return nil, fmt.Errorf("enclave: negative oblivious memory budget %d", cfg.ObliviousMemory)
	}
	budget := cfg.ObliviousMemory
	if budget == 0 {
		budget = DefaultObliviousMemory
	}
	key := cfg.Key
	if key == nil {
		key = crypt.NewRandomKey()
	}
	sealer, err := crypt.NewSealer(key)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = binary.LittleEndian.Uint64(key[:8])
	}
	return &Enclave{
		sealer:  sealer,
		tracer:  cfg.Tracer,
		rng:     rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		acct:    &acct{budget: budget},
		key:     key,
		seed:    seed,
		io:      new(IOStats),
		tids:    new(atomic.Uint32),
		latency: cfg.StoreLatency,
		fault:   cfg.Fault,
	}, nil
}

// Split derives n worker enclaves for partition-parallel operators. Each
// worker shares the parent's data key (so sealed blocks interoperate) and
// its store-id counter (so ids stay globally unique), but owns everything
// a concurrent goroutine must not share: its own sealer (the nonce pool
// is stateful), its own deterministic PRNG stream, its own tracer — the
// adversarial view of one core — and an equal slice, budget/n, of the
// parent's currently unreserved oblivious memory.
//
// tracers may be nil (workers run untraced) or hold one tracer per
// worker; obliviousness tests pass per-worker tracers and assert the
// multiset of worker traces is input-independent.
func (e *Enclave) Split(n int, tracers []*trace.Tracer) ([]*Enclave, error) {
	if n < 1 {
		return nil, fmt.Errorf("enclave: cannot split into %d workers", n)
	}
	if tracers != nil && len(tracers) != n {
		return nil, fmt.Errorf("enclave: %d tracers for %d workers", len(tracers), n)
	}
	workers := make([]*Enclave, n)
	share := e.Available() / n
	for i := range workers {
		sealer, err := crypt.NewSealer(e.key)
		if err != nil {
			return nil, err
		}
		var tr *trace.Tracer
		if tracers != nil {
			tr = tracers[i]
		}
		seed := e.seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		workers[i] = &Enclave{
			sealer:  sealer,
			tracer:  tr,
			rng:     rand.New(rand.NewPCG(seed, seed^0xbf58476d1ce4e5b9)),
			acct:    &acct{budget: share},
			key:     e.key,
			seed:    seed,
			io:      new(IOStats),
			tids:    e.tids,
			latency: e.latency,
			fault:   e.fault,
		}
	}
	return workers, nil
}

// Child derives a context that acts as the parent for everything the
// trace and the accountant can see — same seed (so SeedFor-derived PRNG
// streams, e.g. ORAM leaf assignment, are identical), same tracer, same
// oblivious-memory accountant, same I/O tallies, same store-id counter —
// but owns the one thing a concurrent goroutine must not share: the
// sealer's stateful nonce pool. A structure built on a Child behaves
// byte-for-byte like one built on the parent while remaining safe to
// drive from a different goroutine than the parent's other children.
func (e *Enclave) Child(label string) (*Enclave, error) {
	sealer, err := crypt.NewSealer(e.key)
	if err != nil {
		return nil, err
	}
	sub := e.SeedFor(label)
	return &Enclave{
		sealer:  sealer,
		tracer:  e.tracer,
		rng:     rand.New(rand.NewPCG(sub, sub^0xbf58476d1ce4e5b9)),
		acct:    e.acct,
		key:     e.key,
		seed:    e.seed,
		io:      e.io,
		tids:    e.tids,
		latency: e.latency,
		fault:   e.fault,
	}, nil
}

// Replica derives a read-slot context: own sealer, own PRNG stream, own
// tracer, own I/O tallies, and — unlike Split — its own accountant at the
// parent's full budget rather than a 1/n share, so operator buffer sizing
// (and therefore the planner's algorithm picks and the emitted trace) is
// identical to the serial engine's. Callers re-sync the budget with
// Rebudget at checkout so standing reservations on the parent (ORAM
// stashes, position maps) are reflected exactly as a serial operator
// would see them.
func (e *Enclave) Replica(i int, tr *trace.Tracer) (*Enclave, error) {
	sealer, err := crypt.NewSealer(e.key)
	if err != nil {
		return nil, err
	}
	sub := e.seed ^ (uint64(i+1) * 0xd6e8feb86659fd93)
	return &Enclave{
		sealer:  sealer,
		tracer:  tr,
		rng:     rand.New(rand.NewPCG(sub, sub^0xbf58476d1ce4e5b9)),
		acct:    &acct{budget: e.acct.budget},
		key:     e.key,
		seed:    e.seed,
		io:      new(IOStats),
		tids:    e.tids,
		latency: e.latency,
		fault:   e.fault,
	}, nil
}

// Rebudget resets this enclave's oblivious-memory budget to n bytes. It
// must only be called when no reservations are outstanding — read-slot
// pools call it between statements to mirror the parent's Available().
func (e *Enclave) Rebudget(n int) {
	if n < 0 {
		n = 0
	}
	e.acct.budget = n
}

// MustNew is New for tests and examples where the config is known good.
func MustNew(cfg Config) *Enclave {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// NewZeroOblivious creates an enclave whose oblivious memory budget is
// "as good as zero": the paper's 0-OM operators must still run, so the
// accountant permits only reservations of zero bytes.
func NewZeroOblivious(tr *trace.Tracer) *Enclave {
	e := MustNew(Config{Tracer: tr})
	e.acct.budget = 0
	return e
}

// Tracer returns the enclave's tracer (possibly nil).
func (e *Enclave) Tracer() *trace.Tracer { return e.tracer }

// Rand returns the enclave-internal PRNG. In real SGX this would be a
// hardware CSPRNG; determinism here makes simulations reproducible.
func (e *Enclave) Rand() *rand.Rand { return e.rng }

// SeedFor derives a stable sub-seed for a named consumer — e.g. one
// ORAM's leaf-assignment PRNG — from the enclave seed. Each oblivious
// structure then draws from its own reproducible stream, so its leaf
// assignments do not depend on how many random draws other structures
// made first (the property trace-pinning tests rely on).
func (e *Enclave) SeedFor(label string) uint64 {
	h := e.seed ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	if h == 0 {
		h = 1
	}
	return h
}

// Reserve claims n bytes of oblivious memory, failing if the budget would
// be exceeded. Callers must pair it with Release.
func (e *Enclave) Reserve(n int) error {
	if n < 0 {
		return fmt.Errorf("enclave: reserve of negative size %d", n)
	}
	used := e.acct.used.Load()
	if used+int64(n) > int64(e.acct.budget) {
		return fmt.Errorf("enclave: oblivious memory exhausted: want %d bytes, %d of %d in use",
			n, used, e.acct.budget)
	}
	now := e.acct.used.Add(int64(n))
	for {
		peak := e.acct.peak.Load()
		if now <= peak || e.acct.peak.CompareAndSwap(peak, now) {
			return nil
		}
	}
}

// Release returns n bytes of oblivious memory to the pool.
func (e *Enclave) Release(n int) {
	if e.acct.used.Add(-int64(n)) < 0 {
		panic("enclave: release of more oblivious memory than reserved")
	}
}

// Available returns the unreserved oblivious memory in bytes. Operators
// that "use whatever quantity of oblivious memory is made available" (§4)
// size their buffers from this.
func (e *Enclave) Available() int { return e.acct.budget - int(e.acct.used.Load()) }

// Budget returns the total oblivious memory budget in bytes.
func (e *Enclave) Budget() int { return e.acct.budget }

// Used returns the currently reserved oblivious memory in bytes.
func (e *Enclave) Used() int { return int(e.acct.used.Load()) }

// PeakUsed returns the high-water mark of reserved oblivious memory.
func (e *Enclave) PeakUsed() int { return int(e.acct.peak.Load()) }

// hostDelay pays the modeled untrusted-memory access cost (see
// Config.StoreLatency). It runs once per block access, before the
// block is touched, and is a no-op when no latency is configured.
func (e *Enclave) hostDelay() {
	if e.latency > 0 {
		time.Sleep(e.latency)
	}
}

// hostAccess is the per-access untrusted-host model: the latency toll
// followed by the fault injector's verdict. It runs after the access
// is traced (the adversary sees attempts) and before the block is
// touched, so a failed access changes no store state.
func (e *Enclave) hostAccess(write bool) error {
	e.hostDelay()
	if e.fault != nil {
		return e.fault.Access(write)
	}
	return nil
}

// nextTableID hands out unique ids for sealed-block domain separation.
func (e *Enclave) nextTableID() uint32 {
	return e.tids.Add(1) - 1
}
