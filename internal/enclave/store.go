package enclave

import (
	"fmt"

	"oblidb/internal/crypt"
	"oblidb/internal/oberr"
	"oblidb/internal/trace"
)

// authError types a sealed-block authentication failure: the MALICIOUS
// host of the threat model, as opposed to the merely unreliable one
// (CodeStoreFault). Never retriable.
func authError(store string, i int, err error) error {
	return oberr.Wrapf(oberr.CodeAuth, err,
		"enclave: store %q block %d (tampering or rollback detected)", store, i)
}

// Store is a fixed-block-size array in untrusted memory. It is the only
// way data leaves the enclave: every Read/Write is recorded by the tracer
// (the adversary's view) and every block is sealed with AES-GCM bound to
// (store id, block index, revision).
//
// The enclave-side revision map is trusted metadata — the paper keeps "a
// copy of which ObliDB also stores inside the enclave" (§3) — so a block
// replayed from an earlier state fails authentication on the next read.
type Store struct {
	enclave *Enclave
	region  trace.Region
	id      uint32
	bsize   int // plaintext block size
	blocks  [][]byte
	revs    []uint64
}

// NewStore allocates a store of n sealed blocks of the given plaintext
// block size, initialized to all-zero plaintext. Allocation writes every
// block once, which is itself data-independent.
func (e *Enclave) NewStore(name string, n, blockSize int) (*Store, error) {
	if n < 0 || blockSize <= 0 {
		return nil, fmt.Errorf("enclave: invalid store dimensions n=%d blockSize=%d", n, blockSize)
	}
	s := &Store{
		enclave: e,
		id:      e.nextTableID(),
		bsize:   blockSize,
		blocks:  make([][]byte, n),
		revs:    make([]uint64, n),
	}
	if e.tracer != nil {
		s.region = e.tracer.Region(name)
	}
	zero := make([]byte, blockSize)
	for i := range s.blocks {
		s.blocks[i] = e.sealer.Seal(s.id, uint32(i), 0, zero)
	}
	e.io.BlocksSealed.Add(uint64(n))
	e.io.BytesSealed.Add(uint64(n) * uint64(blockSize))
	return s, nil
}

// Len returns the number of blocks.
func (s *Store) Len() int { return len(s.blocks) }

// BlockSize returns the plaintext block size.
func (s *Store) BlockSize() int { return s.bsize }

// Region returns the trace region of this store.
func (s *Store) Region() trace.Region { return s.region }

// Read fetches block i into the enclave: the access is traced, then the
// sealed block is authenticated against its current revision and
// decrypted. The returned slice is a fresh copy owned by the caller.
func (s *Store) Read(i int) ([]byte, error) {
	return s.ReadInto(i, nil)
}

// ReadInto is Read decrypting into dst's capacity: when dst can hold one
// plaintext block nothing is allocated, so steady-state scans that reuse
// one scratch block pay zero allocations per block. The returned slice
// aliases dst (or a fresh buffer when dst was too small).
func (s *Store) ReadInto(i int, dst []byte) ([]byte, error) {
	if i < 0 || i >= len(s.blocks) {
		return nil, fmt.Errorf("enclave: store %q read out of range: %d of %d", s.region.Name(), i, len(s.blocks))
	}
	s.enclave.tracer.Record(s.region, trace.Read, i)
	s.enclave.io.BlocksOpened.Add(1)
	s.enclave.io.BytesOpened.Add(uint64(s.bsize))
	if err := s.enclave.hostAccess(false); err != nil {
		return nil, fmt.Errorf("enclave: store %q block %d: %w", s.region.Name(), i, err)
	}
	pt, err := s.enclave.sealer.OpenInto(dst, s.id, uint32(i), s.revs[i], s.blocks[i])
	if err != nil {
		return nil, authError(s.region.Name(), i, err)
	}
	return pt, nil
}

// ReadVia is Read with the access recorded against a caller-supplied
// tracer and region instead of the store's own. Partition-parallel
// workers read a shared source table through it so that each worker's
// adversarial view — the per-core access stream — lands on that worker's
// tracer. Concurrent ReadVia calls are safe as long as no goroutine
// writes the store meanwhile: decryption is stateless and the revision
// map is only read. via may belong to a different enclave than the
// store; sealed blocks interoperate because Split workers share the key.
func (s *Store) ReadVia(via *Enclave, r trace.Region, i int) ([]byte, error) {
	return s.ReadIntoVia(via, r, i, nil)
}

// ReadIntoVia is ReadVia decrypting into dst's capacity (see ReadInto);
// each parallel worker owns its scratch, so concurrent partition scans
// stay allocation-free per block too.
func (s *Store) ReadIntoVia(via *Enclave, r trace.Region, i int, dst []byte) ([]byte, error) {
	if i < 0 || i >= len(s.blocks) {
		return nil, fmt.Errorf("enclave: store %q read out of range: %d of %d", s.region.Name(), i, len(s.blocks))
	}
	via.tracer.Record(r, trace.Read, i)
	via.io.BlocksOpened.Add(1)
	via.io.BytesOpened.Add(uint64(s.bsize))
	if err := via.hostAccess(false); err != nil {
		return nil, fmt.Errorf("enclave: store %q block %d: %w", s.region.Name(), i, err)
	}
	pt, err := via.sealer.OpenInto(dst, s.id, uint32(i), s.revs[i], s.blocks[i])
	if err != nil {
		return nil, authError(s.region.Name(), i, err)
	}
	return pt, nil
}

// Write seals plaintext into block i under the next revision and stores
// it. The plaintext must be exactly one block. Writing the same logical
// content produces fresh ciphertext, so dummy writes are indistinguishable
// from real ones — the tracer records both identically.
func (s *Store) Write(i int, plaintext []byte) error {
	if i < 0 || i >= len(s.blocks) {
		return fmt.Errorf("enclave: store %q write out of range: %d of %d", s.region.Name(), i, len(s.blocks))
	}
	if len(plaintext) != s.bsize {
		return fmt.Errorf("enclave: store %q write of %d bytes to %d-byte blocks", s.region.Name(), len(plaintext), s.bsize)
	}
	s.enclave.tracer.Record(s.region, trace.Write, i)
	s.enclave.io.BlocksSealed.Add(1)
	s.enclave.io.BytesSealed.Add(uint64(len(plaintext)))
	if err := s.enclave.hostAccess(true); err != nil {
		return fmt.Errorf("enclave: store %q block %d: %w", s.region.Name(), i, err)
	}
	s.revs[i]++
	// Re-seal into the slot's existing ciphertext buffer: the sealed size
	// is fixed, so steady-state writes (every dummy write included)
	// allocate nothing.
	s.blocks[i] = s.enclave.sealer.SealTo(s.blocks[i][:0], s.id, uint32(i), s.revs[i], plaintext)
	return nil
}

// RMW is the read-modify-write cycle packed tables need: it reads block
// i into dst's capacity, hands the plaintext to fn for in-place
// mutation, and writes the (possibly updated) block back under the next
// revision. The trace is always exactly one read then one write,
// whatever fn does — a packed dummy write re-seals one block, not R
// rows. The returned slice is the plaintext buffer for reuse on the
// next call.
func (s *Store) RMW(i int, dst []byte, fn func(plain []byte) error) ([]byte, error) {
	plain, err := s.ReadInto(i, dst)
	if err != nil {
		return dst, err
	}
	if err := fn(plain); err != nil {
		// fn failed possibly mid-mutation: abort without writing the torn
		// plaintext back. Errors abort the whole statement, so the
		// truncated trace carries nothing data-dependent beyond the
		// failure itself (which the caller surfaces anyway).
		return plain, err
	}
	return plain, s.Write(i, plain)
}

// WriteVia is Write with the access recorded against a caller-supplied
// tracer and the sealing done by the caller's enclave (same key, so the
// ciphertext interoperates). Partition-parallel workers use it to fill
// DISJOINT block ranges of one shared output store concurrently: writes
// to different indices touch different revision and block slots, so no
// two workers may ever write the same index, and nothing may read the
// store until the workers join.
func (s *Store) WriteVia(via *Enclave, r trace.Region, i int, plaintext []byte) error {
	if i < 0 || i >= len(s.blocks) {
		return fmt.Errorf("enclave: store %q write out of range: %d of %d", s.region.Name(), i, len(s.blocks))
	}
	if len(plaintext) != s.bsize {
		return fmt.Errorf("enclave: store %q write of %d bytes to %d-byte blocks", s.region.Name(), len(plaintext), s.bsize)
	}
	via.tracer.Record(r, trace.Write, i)
	via.io.BlocksSealed.Add(1)
	via.io.BytesSealed.Add(uint64(len(plaintext)))
	if err := via.hostAccess(true); err != nil {
		return fmt.Errorf("enclave: store %q block %d: %w", s.region.Name(), i, err)
	}
	s.revs[i]++
	s.blocks[i] = via.sealer.SealTo(s.blocks[i][:0], s.id, uint32(i), s.revs[i], plaintext)
	return nil
}

// SizeBytes returns the untrusted memory consumed by the store, including
// sealing overhead. This is the "size of data structures" the paper
// concedes as leakage.
func (s *Store) SizeBytes() int {
	return len(s.blocks) * crypt.SealedSize(s.bsize)
}

// --- Adversary interface -------------------------------------------------
//
// The methods below model the malicious OS of the threat model (§2.2).
// They bypass the enclave: tests use them to mount the attacks the paper
// claims to catch.

// AdversaryRawBlock returns the sealed bytes of block i as stored in
// untrusted memory.
func (s *Store) AdversaryRawBlock(i int) []byte {
	cp := make([]byte, len(s.blocks[i]))
	copy(cp, s.blocks[i])
	return cp
}

// AdversarySetRawBlock overwrites the sealed bytes of block i without the
// enclave's knowledge — arbitrary tampering.
func (s *Store) AdversarySetRawBlock(i int, raw []byte) {
	cp := make([]byte, len(raw))
	copy(cp, raw)
	s.blocks[i] = cp
}

// AdversarySwapBlocks exchanges the sealed contents of two slots —
// shuffling table contents.
func (s *Store) AdversarySwapBlocks(i, j int) {
	s.blocks[i], s.blocks[j] = s.blocks[j], s.blocks[i]
}
