package enclave

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"oblidb/internal/trace"
)

func TestBudgetAccounting(t *testing.T) {
	e := MustNew(Config{ObliviousMemory: 100})
	if e.Budget() != 100 || e.Available() != 100 {
		t.Fatalf("budget=%d available=%d, want 100/100", e.Budget(), e.Available())
	}
	if err := e.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if err := e.Reserve(50); err == nil {
		t.Fatal("over-budget reserve succeeded")
	}
	if err := e.Reserve(40); err != nil {
		t.Fatal(err)
	}
	if e.Available() != 0 {
		t.Fatalf("available=%d, want 0", e.Available())
	}
	e.Release(100)
	if e.Available() != 100 || e.PeakUsed() != 100 {
		t.Fatalf("available=%d peak=%d, want 100/100", e.Available(), e.PeakUsed())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	e := MustNew(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on releasing unreserved memory")
		}
	}()
	e.Release(1)
}

func TestNegativeBudgetRejected(t *testing.T) {
	if _, err := New(Config{ObliviousMemory: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestZeroObliviousEnclave(t *testing.T) {
	e := NewZeroOblivious(nil)
	if err := e.Reserve(0); err != nil {
		t.Fatal(err)
	}
	if err := e.Reserve(1); err == nil {
		t.Fatal("zero-OM enclave granted oblivious memory")
	}
}

func TestDefaultBudgetIsPaperDefault(t *testing.T) {
	e := MustNew(Config{})
	if e.Budget() != DefaultObliviousMemory {
		t.Fatalf("default budget %d, want %d", e.Budget(), DefaultObliviousMemory)
	}
}

func TestDeterministicRNGPerKey(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	a := MustNew(Config{Key: key})
	b := MustNew(Config{Key: key})
	for i := 0; i < 16; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same key produced different PRNG streams")
		}
	}
}

func TestStoreReadWrite(t *testing.T) {
	e := MustNew(Config{})
	s, err := e.NewStore("t", 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 32)
	if err := s.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back wrong data")
	}
	// Unwritten blocks read as zero plaintext.
	got, err = s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("fresh block not zero")
	}
}

func TestStoreBounds(t *testing.T) {
	e := MustNew(Config{})
	s, _ := e.NewStore("t", 4, 16)
	if _, err := s.Read(4); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if _, err := s.Read(-1); err == nil {
		t.Fatal("negative read succeeded")
	}
	if err := s.Write(4, make([]byte, 16)); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := s.Write(0, make([]byte, 15)); err == nil {
		t.Fatal("short block write succeeded")
	}
}

func TestStoreTracesAccesses(t *testing.T) {
	tr := trace.New()
	e := MustNew(Config{Tracer: tr})
	s, _ := e.NewStore("t", 4, 16)
	_, _ = s.Read(2)
	_ = s.Write(1, make([]byte, 16))
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("traced %d events, want 2", len(evs))
	}
	if evs[0].Op != trace.Read || evs[0].Index != 2 {
		t.Fatalf("first event %+v, want read of 2", evs[0])
	}
	if evs[1].Op != trace.Write || evs[1].Index != 1 {
		t.Fatalf("second event %+v, want write of 1", evs[1])
	}
}

func TestTamperingDetected(t *testing.T) {
	e := MustNew(Config{})
	s, _ := e.NewStore("t", 4, 16)
	_ = s.Write(0, bytes.Repeat([]byte{1}, 16))
	raw := s.AdversaryRawBlock(0)
	raw[20] ^= 0xFF
	s.AdversarySetRawBlock(0, raw)
	if _, err := s.Read(0); err == nil {
		t.Fatal("tampered block read successfully")
	} else if !strings.Contains(err.Error(), "tampering or rollback") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRollbackDetected(t *testing.T) {
	e := MustNew(Config{})
	s, _ := e.NewStore("t", 4, 16)
	_ = s.Write(0, bytes.Repeat([]byte{1}, 16))
	old := s.AdversaryRawBlock(0) // snapshot revision 1
	_ = s.Write(0, bytes.Repeat([]byte{2}, 16))
	s.AdversarySetRawBlock(0, old) // roll back to revision 1
	if _, err := s.Read(0); err == nil {
		t.Fatal("rolled-back block read successfully")
	}
}

func TestShuffleDetected(t *testing.T) {
	e := MustNew(Config{})
	s, _ := e.NewStore("t", 4, 16)
	_ = s.Write(0, bytes.Repeat([]byte{1}, 16))
	_ = s.Write(1, bytes.Repeat([]byte{2}, 16))
	s.AdversarySwapBlocks(0, 1)
	if _, err := s.Read(0); err == nil {
		t.Fatal("shuffled block read successfully")
	}
}

func TestCrossStoreReplayDetected(t *testing.T) {
	// A block from one table placed in another table's slot must fail.
	e := MustNew(Config{})
	a, _ := e.NewStore("a", 2, 16)
	b, _ := e.NewStore("b", 2, 16)
	_ = a.Write(0, bytes.Repeat([]byte{1}, 16))
	_ = b.Write(0, bytes.Repeat([]byte{2}, 16))
	b.AdversarySetRawBlock(0, a.AdversaryRawBlock(0))
	if _, err := b.Read(0); err == nil {
		t.Fatal("cross-table block replay succeeded")
	}
}

func TestStoreSizeBytes(t *testing.T) {
	e := MustNew(Config{})
	s, _ := e.NewStore("t", 10, 64)
	if s.SizeBytes() != 10*(64+28) {
		t.Fatalf("SizeBytes = %d, want %d", s.SizeBytes(), 10*(64+28))
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	e := MustNew(Config{})
	s, _ := e.NewStore("t", 16, 24)
	f := func(idx uint8, data [24]byte) bool {
		i := int(idx) % 16
		if err := s.Write(i, data[:]); err != nil {
			return false
		}
		got, err := s.Read(i)
		return err == nil && bytes.Equal(got, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWorkers(t *testing.T) {
	e := MustNew(Config{ObliviousMemory: 4000, Key: make([]byte, 32)})
	ws, err := e.Split(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if w.Budget() != 1000 {
			t.Fatalf("worker %d budget %d, want 1000", i, w.Budget())
		}
	}
	// Stores created by parent and workers interoperate: same key, and
	// ids never collide (shared atomic counter).
	ps, err := e.NewStore("p", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Write(0, []byte("parental")); err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		ws2, err := w.NewStore("w", 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := ws2.Write(0, []byte("workerly")); err != nil {
			t.Fatal(err)
		}
	}
	// A worker can read the parent's sealed block (ReadVia) and vice
	// versa is unnecessary; the AAD binding (store id) must hold.
	got, err := ps.ReadVia(ws[0], ws[0].Tracer().Region("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "parental" {
		t.Fatalf("cross-enclave read got %q", got)
	}

	// Worker PRNG streams are deterministic per (key, index) and
	// distinct across workers.
	e2 := MustNew(Config{ObliviousMemory: 4000, Key: make([]byte, 32)})
	ws2, err := e2.Split(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ws[1].Rand().Uint64(), ws2[1].Rand().Uint64(); a != b {
		t.Fatalf("worker PRNG not reproducible: %d vs %d", a, b)
	}
	if a, b := ws[0].Rand().Uint64(), ws[2].Rand().Uint64(); a == b {
		t.Fatal("distinct workers share a PRNG stream")
	}
}

func TestSplitValidation(t *testing.T) {
	e := MustNew(Config{})
	if _, err := e.Split(0, nil); err == nil {
		t.Fatal("Split(0) accepted")
	}
	if _, err := e.Split(2, make([]*trace.Tracer, 3)); err == nil {
		t.Fatal("tracer/worker count mismatch accepted")
	}
}
