package baseline

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"oblidb/internal/table"
)

func plainSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindFloat},
		table.Column{Name: "tag", Kind: table.KindString, Width: 8},
	)
}

func TestPlainTableOps(t *testing.T) {
	pt := NewPlainTable(plainSchema())
	for i := int64(0); i < 10; i++ {
		pt.Insert(table.Row{table.Int(i), table.Float(float64(i)), table.Str("a")})
	}
	got := pt.Select(func(r table.Row) bool { return r[0].AsInt() >= 7 })
	if len(got) != 3 {
		t.Fatalf("select returned %d", len(got))
	}
	count, sum, avg, min, max := pt.Aggregate(table.All, 1)
	if count != 10 || sum != 45 || avg != 4.5 || min.AsFloat() != 0 || max.AsFloat() != 9 {
		t.Fatalf("agg = %d %v %v %v %v", count, sum, avg, min, max)
	}
	groups := pt.GroupSum(table.All, func(r table.Row) string {
		if r[0].AsInt()%2 == 0 {
			return "even"
		}
		return "odd"
	}, 1)
	if groups["even"] != 20 || groups["odd"] != 25 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestHashJoin(t *testing.T) {
	l := NewPlainTable(plainSchema())
	r := NewPlainTable(plainSchema())
	for i := int64(0); i < 5; i++ {
		l.Insert(table.Row{table.Int(i), table.Float(0), table.Str("l")})
	}
	for _, k := range []int64{1, 3, 3, 9} {
		r.Insert(table.Row{table.Int(k), table.Float(0), table.Str("r")})
	}
	out := HashJoin(l, r, 0, 0)
	if len(out) != 3 {
		t.Fatalf("join returned %d rows, want 3", len(out))
	}
}

func TestBTreeBasics(t *testing.T) {
	bt := NewPlainBTree(8)
	for i := int64(0); i < 1000; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		bt.Put(i, b[:])
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	for i := int64(0); i < 1000; i++ {
		v, ok := bt.Get(i)
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i) {
			t.Fatalf("get %d: ok=%v", i, ok)
		}
	}
	if _, ok := bt.Get(5000); ok {
		t.Fatal("absent key found")
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewPlainBTree(8)
	for i := int64(0); i < 100; i += 2 {
		bt.Put(i, nil)
	}
	var got []int64
	bt.Range(10, 20, func(k int64, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v", got)
		}
	}
}

func TestBTreeReplaceAndDelete(t *testing.T) {
	bt := NewPlainBTree(8)
	bt.Put(1, []byte{1})
	bt.Put(1, []byte{2})
	if bt.Len() != 1 {
		t.Fatalf("replace changed Len: %d", bt.Len())
	}
	v, _ := bt.Get(1)
	if v[0] != 2 {
		t.Fatal("replace did not take")
	}
	if !bt.Delete(1) || bt.Delete(1) {
		t.Fatal("delete semantics wrong")
	}
	if bt.Len() != 0 {
		t.Fatalf("Len after delete = %d", bt.Len())
	}
}

func TestBTreeRandomized(t *testing.T) {
	bt := NewPlainBTree(16)
	model := map[int64][]byte{}
	rng := rand.New(rand.NewPCG(8, 8))
	for step := 0; step < 5000; step++ {
		k := int64(rng.IntN(500))
		switch rng.IntN(3) {
		case 0:
			v := []byte{byte(rng.Uint32())}
			bt.Put(k, v)
			model[k] = v
		case 1:
			_, want := model[k]
			if bt.Delete(k) != want {
				t.Fatalf("step %d: delete(%d) mismatch", step, k)
			}
			delete(model, k)
		default:
			v, ok := bt.Get(k)
			want, exists := model[k]
			if ok != exists || (ok && v[0] != want[0]) {
				t.Fatalf("step %d: get(%d) mismatch", step, k)
			}
		}
	}
	if bt.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", bt.Len(), len(model))
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeSortedProperty(t *testing.T) {
	f := func(keys []int64) bool {
		bt := NewPlainBTree(8)
		for _, k := range keys {
			bt.Put(k, nil)
		}
		return bt.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
