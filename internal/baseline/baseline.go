// Package baseline provides the non-secure reference systems the paper
// compares against: an in-memory relational executor standing in for
// Spark SQL (Figure 7: "which provides no security guarantees") and a
// plain B+ tree standing in for MySQL's point-query path (Figure 9). No
// encryption, no obliviousness — they exist to anchor the cost of
// security.
package baseline

import (
	"fmt"
	"sort"

	"oblidb/internal/table"
)

// PlainTable is an unprotected in-memory table.
type PlainTable struct {
	Schema *table.Schema
	Rows   []table.Row
}

// NewPlainTable creates an empty table.
func NewPlainTable(s *table.Schema) *PlainTable { return &PlainTable{Schema: s} }

// Insert appends rows.
func (t *PlainTable) Insert(rows ...table.Row) { t.Rows = append(t.Rows, rows...) }

// Select filters rows.
func (t *PlainTable) Select(pred table.Pred) []table.Row {
	var out []table.Row
	for _, r := range t.Rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Aggregate computes COUNT/SUM/MIN/MAX/AVG over a column for matching
// rows (col < 0 for COUNT only).
func (t *PlainTable) Aggregate(pred table.Pred, col int) (count int64, sum, avg float64, min, max table.Value) {
	for _, r := range t.Rows {
		if !pred(r) {
			continue
		}
		count++
		if col >= 0 {
			v := r[col]
			if v.IsNumeric() {
				sum += v.AsFloat()
			}
			if count == 1 {
				min, max = v, v
			} else {
				if c, _ := table.Compare(v, min); c < 0 {
					min = v
				}
				if c, _ := table.Compare(v, max); c > 0 {
					max = v
				}
			}
		}
	}
	if count > 0 {
		avg = sum / float64(count)
	}
	return
}

// GroupSum groups matching rows by key and sums a column — the Q2 shape.
func (t *PlainTable) GroupSum(pred table.Pred, key func(table.Row) string, col int) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range t.Rows {
		if pred(r) {
			out[key(r)] += r[col].AsFloat()
		}
	}
	return out
}

// HashJoin joins two tables on string equality of the given columns,
// returning concatenated rows — the Q3 shape.
func HashJoin(left, right *PlainTable, lcol, rcol int) []table.Row {
	build := make(map[string]table.Row, len(left.Rows))
	for _, r := range left.Rows {
		build[r[lcol].String()] = r
	}
	var out []table.Row
	for _, r := range right.Rows {
		if l, ok := build[r[rcol].String()]; ok {
			out = append(out, append(append(table.Row{}, l...), r...))
		}
	}
	return out
}

// PlainBTree is a non-oblivious in-memory B+ tree keyed by int64 — the
// MySQL stand-in for point-query latency (Figure 9).
type PlainBTree struct {
	order    int
	root     *btNode
	numEntry int
}

type btNode struct {
	leaf     bool
	keys     []int64
	vals     [][]byte  // leaf
	children []*btNode // internal
	next     *btNode   // leaf chain
}

// NewPlainBTree creates an empty tree with the given fanout (min 4).
func NewPlainBTree(order int) *PlainBTree {
	if order < 4 {
		order = 4
	}
	return &PlainBTree{order: order, root: &btNode{leaf: true}}
}

// Len returns the number of entries.
func (t *PlainBTree) Len() int { return t.numEntry }

// Get fetches the value for key.
func (t *PlainBTree) Get(key int64) ([]byte, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return nil, false
}

// Put inserts or replaces key.
func (t *PlainBTree) Put(key int64, val []byte) {
	replaced := t.insert(t.root, key, val)
	if !replaced && len(t.root.keys) >= t.order {
		left := t.root
		mid, right := splitBT(left)
		t.root = &btNode{keys: []int64{mid}, children: []*btNode{left, right}}
	}
	if !replaced {
		t.numEntry++
	}
}

func (t *PlainBTree) insert(n *btNode, key int64, val []byte) (replaced bool) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return true
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		return false
	}
	ci := upperBound(n.keys, key)
	replaced = t.insert(n.children[ci], key, val)
	if !replaced && len(n.children[ci].keys) >= t.order {
		mid, right := splitBT(n.children[ci])
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = mid
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
	}
	return replaced
}

// Delete removes key (no rebalancing — the baseline only measures
// lookup/insert latency; deletions just drop the entry).
func (t *PlainBTree) Delete(key int64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.numEntry--
		return true
	}
	return false
}

// Range visits entries with lo <= key <= hi in order.
func (t *PlainBTree) Range(lo, hi int64, fn func(key int64, val []byte) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, lo)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

func splitBT(n *btNode) (int64, *btNode) {
	if n.leaf {
		mid := len(n.keys) / 2
		right := &btNode{
			leaf: true,
			keys: append([]int64(nil), n.keys[mid:]...),
			vals: append([][]byte(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	}
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btNode{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*btNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

func upperBound(keys []int64, key int64) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// Validate checks tree ordering invariants (tests).
func (t *PlainBTree) Validate() error {
	var prev *int64
	ok := true
	t.Range(-1<<63, 1<<63-1, func(k int64, _ []byte) bool {
		if prev != nil && k <= *prev {
			ok = false
			return false
		}
		kk := k
		prev = &kk
		return true
	})
	if !ok {
		return fmt.Errorf("baseline: keys out of order")
	}
	return nil
}
