// Package wal implements the write-ahead log §3 of the paper sketches as
// the path to durability: "a standard write-ahead log could be
// generically added to the system. Appends to such a log would not leak
// any additional information or affect obliviousness, as the only change
// would be to make a write to an encrypted log file before each
// insert/update/delete operation."
//
// The log is an append-only file of sealed frames. Each frame carries one
// record — a journaled mutation, a journaled DDL statement, or a commit
// marker — AEAD-sealed under the log's own key with the frame's sequence
// number bound as additional data, so frames cannot be reordered,
// duplicated, or transplanted between positions without detection.
// Mutations are first *staged* in enclave memory and only reach the file
// when Commit seals the whole batch plus a trailing commit marker in a
// single write, so a crash (or an aborted statement) can never leave a
// half-logged batch that replay would apply: recovery discards any suffix
// after the last commit marker.
//
// What the file leaks is exactly what the paper concedes: the count and
// sealed size of journaled records and the commit grouping — all
// functions of public mutation counts and schemas, never of row values.
// The access pattern of logging is one sequential write per frame.
package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"oblidb/internal/crypt"
	"oblidb/internal/oberr"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// File is the slice of *os.File the log uses. It exists so tests (and
// the fault-injection harness, internal/faultstore) can interpose on
// the journal's disk traffic: Options.OpenFile returns one for the
// live log file and for checkpoint temporaries alike.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// Op tags a logged record.
type Op uint8

const (
	// OpInsert logs an inserted row.
	OpInsert Op = 1
	// OpUpdate logs one row's post-image (the engine logs each rewritten
	// row as a delete of the pre-image plus an update post-image).
	OpUpdate Op = 2
	// OpDelete logs a deleted row's pre-image.
	OpDelete Op = 3
	// OpCreateTable logs a table definition, so recovery rebuilds the
	// catalog from the journal alone.
	OpCreateTable Op = 4
	// OpDropTable logs a table drop.
	OpDropTable Op = 5
)

// Record kinds inside a sealed frame.
const (
	recEntry  byte = 1
	recCommit byte = 2
)

// magic is the plaintext file header; it versions the frame format.
const magic = "OBLWAL1\n"

// walAAD is the constant "table" id bound into every frame's additional
// data, namespacing WAL frames away from storage blocks sealed under the
// same primitives.
const walAAD uint32 = 0x57414C31 // "WAL1"

// TableDef is the journaled form of a CREATE TABLE: everything recovery
// needs to re-create the table before replaying its rows. Kind is the
// engine's StorageKind as a raw byte (the wal package cannot import core).
type TableDef struct {
	Name             string
	Schema           *table.Schema
	Kind             uint8
	KeyColumn        string
	Capacity         int
	ObliviousInserts bool
	RecursiveORAM    bool
}

// Entry is one replayed record.
type Entry struct {
	Op    Op
	Table string
	// Row is the journaled row for OpInsert/OpUpdate/OpDelete.
	Row table.Row
	// Def is the journaled definition for OpCreateTable.
	Def *TableDef
}

// Options configures a log.
type Options struct {
	// Sync fsyncs the file on every commit. Without it, a commit is
	// atomic on replay (all-or-nothing) but an OS crash may lose the
	// tail; with it, an acknowledged commit survives power loss.
	Sync bool
	// Tracer, when set, observes the log's untrusted accesses: one Write
	// event per sealed frame, one Read per frame replayed. Tests assert
	// the stream depends only on public counts.
	Tracer *trace.Tracer
	// AutoCheckpointBytes, when positive, makes ShouldCheckpoint report
	// true once the file exceeds this size, so the engine compacts the
	// journal instead of ever hitting a "log full" dead end.
	AutoCheckpointBytes int64
	// OpenFile, when set, opens (or creates, read-write) the backing
	// file for a path instead of os.OpenFile. Open uses it for the log
	// file and Checkpoint for its temporary, so a fault-injecting
	// wrapper sees every byte the journal writes.
	OpenFile func(path string) (File, error)
}

// openFile opens path through the configured hook or the OS default.
func (o *Options) openFile(path string, flag int) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.OpenFile(path, flag, 0o600)
}

// Log is a sealed, file-backed, append-only mutation journal.
//
// Concurrency: a Log is not safe for concurrent use; the engine calls it
// under its database mutex.
type Log struct {
	f      File
	path   string
	sealer *crypt.Sealer
	key    []byte
	opts   Options
	region trace.Region

	// Committed state of the current file.
	seq     uint32 // next frame sequence number
	size    int64  // committed file size in bytes
	entries int    // committed entry records (excludes commit markers)
	commits int    // commit markers

	// Monotonic counters across checkpoints (metrics).
	totalEntries, totalCommits, totalCheckpoints uint64

	// Staged (uncommitted) records: plaintext concatenated in arena,
	// offs[i] is the end offset of record i. Both retain capacity across
	// commits, which is what keeps Append allocation-free in steady
	// state.
	arena []byte
	offs  []int

	// Reusable commit scratch. cmBuf holds the commit-marker plaintext;
	// as a field it stays off the per-commit allocation path (a local
	// array would escape into appendFrame).
	sealBuf []byte
	wbuf    []byte
	cmBuf   [11]byte

	// broken latches a failure that left the file in a state we could
	// not roll back (a partial write whose truncate also failed); every
	// later operation refuses until the log is reopened.
	broken error
}

// Open opens (or creates) a log file sealed under key. An existing file
// is scanned to the last complete committed batch; a torn tail — frames
// cut short by a crash mid-write, or a trailing batch with no commit
// marker — is truncated away, while corruption *followed by* more data
// (which a crash cannot produce) is reported as tampering.
func Open(path string, key []byte, opts Options) (*Log, error) {
	sealer, err := crypt.NewSealer(key)
	if err != nil {
		return nil, err
	}
	f, err := opts.openFile(path, os.O_RDWR|os.O_CREATE)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, sealer: sealer, key: key, opts: opts}
	if opts.Tracer != nil {
		l.region = opts.Tracer.Region("wal:" + filepath.Base(path))
	}
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// scan validates the header, walks the frames, and truncates the file to
// the last committed batch.
func (l *Log) scan() error {
	info, err := l.f.Stat()
	if err != nil {
		return err
	}
	fileSize := info.Size()
	if fileSize == 0 {
		if _, err := l.f.WriteAt([]byte(magic), 0); err != nil {
			return err
		}
		l.size = int64(len(magic))
		return nil
	}
	if fileSize < int64(len(magic)) {
		// A file shorter than the header can only be a creation torn by
		// a crash before the header landed. If the bytes are a clean
		// prefix of the magic, restart the file; anything else is not a
		// WAL file.
		hdr := make([]byte, fileSize)
		if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, fileSize), hdr); err != nil || string(hdr) != magic[:fileSize] {
			return fmt.Errorf("wal: %s is not a WAL file (bad header)", l.path)
		}
		if err := l.f.Truncate(0); err != nil {
			return err
		}
		if _, err := l.f.WriteAt([]byte(magic), 0); err != nil {
			return err
		}
		l.size = int64(len(magic))
		return nil
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, int64(len(magic))), hdr); err != nil || string(hdr) != magic {
		return fmt.Errorf("wal: %s is not a WAL file (bad header)", l.path)
	}

	var (
		off      = int64(len(magic))
		lastGood = off
		seq      uint32
		goodSeq  uint32
		entries  int
		commits  int
		batch    int // entry frames since the last commit marker
		lenBuf   [4]byte
		frame    []byte
		plain    []byte
	)
	for off < fileSize {
		if fileSize-off < 4 {
			break // torn length prefix
		}
		if _, err := l.f.ReadAt(lenBuf[:], off); err != nil {
			return err
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		frameEnd := off + 4 + n
		if n == 0 || n > int64(crypt.SealedSize(1<<24)) {
			// A nonsense length with complete bytes after it is tampering;
			// at EOF it is a torn write.
			if frameEnd >= fileSize || n == 0 {
				break
			}
			return fmt.Errorf("wal: frame %d has corrupt length %d", seq, n)
		}
		if frameEnd > fileSize {
			break // torn frame body
		}
		if int64(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := l.f.ReadAt(frame, off+4); err != nil {
			return err
		}
		plain, err = l.sealer.OpenInto(plain[:0], walAAD, seq, uint64(seq), frame)
		if err != nil {
			if frameEnd == fileSize {
				break // torn: the crash interleaved garbage at the very end
			}
			return fmt.Errorf("wal: frame %d fails authentication mid-file: %w", seq, err)
		}
		if len(plain) == 0 {
			return fmt.Errorf("wal: frame %d is empty", seq)
		}
		switch plain[0] {
		case recEntry:
			batch++
		case recCommit:
			count, k := binary.Uvarint(plain[1:])
			if k <= 0 || int(count) != batch {
				return fmt.Errorf("wal: commit marker %d covers %d entries, %d staged", seq, count, batch)
			}
			entries += batch
			batch = 0
			commits++
			lastGood = frameEnd
			goodSeq = seq + 1
		default:
			return fmt.Errorf("wal: frame %d has unknown record kind %d", seq, plain[0])
		}
		seq++
		off = frameEnd
	}
	if lastGood < fileSize {
		if err := l.f.Truncate(lastGood); err != nil {
			return err
		}
	}
	l.size = lastGood
	l.seq = goodSeq
	l.entries = entries
	l.commits = commits
	return nil
}

// Len returns the committed entry count in the current file.
func (l *Log) Len() int { return l.entries }

// Commits returns the committed batch count in the current file.
func (l *Log) Commits() int { return l.commits }

// SizeBytes returns the committed file size.
func (l *Log) SizeBytes() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// TotalEntries returns the monotonic count of entries ever committed
// through this handle, across checkpoints.
func (l *Log) TotalEntries() uint64 { return l.totalEntries }

// TotalCommits returns the monotonic commit count across checkpoints.
func (l *Log) TotalCommits() uint64 { return l.totalCommits }

// Checkpoints returns the number of completed checkpoints.
func (l *Log) Checkpoints() uint64 { return l.totalCheckpoints }

// Staged returns the number of staged (uncommitted) records.
func (l *Log) Staged() int { return len(l.offs) }

// Rewind discards staged records beyond mark (a previous Staged value):
// the abort path for a failed statement. The records never reached the
// file, so there is nothing to undo durably.
func (l *Log) Rewind(mark int) {
	if mark < 0 || mark > len(l.offs) {
		return
	}
	if mark == 0 {
		l.arena = l.arena[:0]
	} else {
		l.arena = l.arena[:l.offs[mark-1]]
	}
	l.offs = l.offs[:mark]
}

// stage reserves n bytes at the arena tail and returns them. Capacity is
// retained across commits, so the steady state allocates nothing.
func (l *Log) stage(n int) []byte {
	start := len(l.arena)
	if start+n <= cap(l.arena) {
		l.arena = l.arena[:start+n]
	} else {
		l.arena = append(l.arena, make([]byte, n)...)
	}
	l.offs = append(l.offs, start+n)
	return l.arena[start : start+n]
}

// Append stages one mutation record — the single extra write per
// mutation the paper describes, deferred to the enclosing Commit. The
// schema is passed by the caller (the engine owns the catalog); it is
// only used to size and encode the record. Append is allocation-free in
// steady state.
func (l *Log) Append(op Op, tableName string, s *table.Schema, row table.Row) error {
	if l.broken != nil {
		return l.broken
	}
	if op != OpInsert && op != OpUpdate && op != OpDelete {
		return fmt.Errorf("wal: Append takes a row op, got %d", op)
	}
	if len(tableName) > 255 {
		return fmt.Errorf("wal: table name %q too long", tableName)
	}
	n := 3 + len(tableName) + s.RecordSize()
	buf := l.stage(n)
	buf[0] = recEntry
	buf[1] = byte(op)
	buf[2] = byte(len(tableName))
	copy(buf[3:], tableName)
	if err := s.EncodeRecord(buf[3+len(tableName):], row); err != nil {
		l.Rewind(len(l.offs) - 1)
		return err
	}
	return nil
}

// AppendCreate stages a CREATE TABLE record.
func (l *Log) AppendCreate(def TableDef) error {
	if l.broken != nil {
		return l.broken
	}
	if len(def.Name) > 255 || len(def.KeyColumn) > 255 {
		return fmt.Errorf("wal: name too long in definition of %q", def.Name)
	}
	cols := def.Schema.Columns()
	if len(cols) > 255 {
		return fmt.Errorf("wal: too many columns in %q", def.Name)
	}
	var flags byte
	if def.ObliviousInserts {
		flags |= 1
	}
	if def.RecursiveORAM {
		flags |= 2
	}
	buf := make([]byte, 0, 64+8*len(cols))
	buf = append(buf, recEntry, byte(OpCreateTable), byte(len(def.Name)))
	buf = append(buf, def.Name...)
	buf = append(buf, def.Kind, flags)
	buf = binary.AppendUvarint(buf, uint64(def.Capacity))
	buf = append(buf, byte(len(def.KeyColumn)))
	buf = append(buf, def.KeyColumn...)
	buf = append(buf, byte(len(cols)))
	for _, c := range cols {
		if len(c.Name) > 255 {
			return fmt.Errorf("wal: column name %q too long", c.Name)
		}
		buf = append(buf, byte(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Kind))
		buf = binary.AppendUvarint(buf, uint64(c.Width))
	}
	copy(l.stage(len(buf)), buf)
	return nil
}

// AppendDrop stages a DROP TABLE record.
func (l *Log) AppendDrop(name string) error {
	if l.broken != nil {
		return l.broken
	}
	if len(name) > 255 {
		return fmt.Errorf("wal: table name %q too long", name)
	}
	buf := l.stage(3 + len(name))
	buf[0] = recEntry
	buf[1] = byte(OpDropTable)
	buf[2] = byte(len(name))
	copy(buf[3:], name)
	return nil
}

// appendFrame seals plain as the frame with sequence seq and appends
// [len][sealed] to w, reusing l.sealBuf.
func (l *Log) appendFrame(w []byte, seq uint32, plain []byte) []byte {
	l.sealBuf = l.sealer.SealTo(l.sealBuf[:0], walAAD, seq, uint64(seq), plain)
	w = binary.LittleEndian.AppendUint32(w, uint32(len(l.sealBuf)))
	return append(w, l.sealBuf...)
}

// Commit makes the staged batch durable: every staged record plus a
// trailing commit marker is sealed and written in one write call, then
// optionally fsynced. On failure the file is truncated back to the last
// committed batch and the staged records are discarded — replay never
// sees a partial batch either way. Committing an empty stage is a no-op.
func (l *Log) Commit() error {
	if l.broken != nil {
		return l.broken
	}
	n := len(l.offs)
	if n == 0 {
		return nil
	}
	l.wbuf = l.wbuf[:0]
	seq := l.seq
	start := 0
	for _, end := range l.offs {
		l.wbuf = l.appendFrame(l.wbuf, seq, l.arena[start:end])
		start = end
		seq++
	}
	l.cmBuf[0] = recCommit
	k := binary.PutUvarint(l.cmBuf[1:], uint64(n))
	l.wbuf = l.appendFrame(l.wbuf, seq, l.cmBuf[:1+k])
	seq++

	if _, err := l.f.WriteAt(l.wbuf, l.size); err != nil {
		l.undoWrite()
		return oberr.Wrapf(oberr.CodeStoreFault, err, "wal: commit write")
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			l.undoWrite()
			return oberr.Wrapf(oberr.CodeStoreFault, err, "wal: commit sync")
		}
	}
	if l.opts.Tracer != nil {
		for s := l.seq; s < seq; s++ {
			l.opts.Tracer.Record(l.region, trace.Write, int(s))
		}
	}
	l.size += int64(len(l.wbuf))
	l.seq = seq
	l.entries += n
	l.commits++
	l.totalEntries += uint64(n)
	l.totalCommits++
	l.arena = l.arena[:0]
	l.offs = l.offs[:0]
	return nil
}

// undoWrite rolls the file back to the last committed size after a
// failed commit write, discarding the staged batch. If even the rollback
// fails the log latches broken: the file may hold a partial batch that
// only a reopen (whose scan truncates it) can clean up.
func (l *Log) undoWrite() {
	l.arena = l.arena[:0]
	l.offs = l.offs[:0]
	if err := l.f.Truncate(l.size); err != nil {
		// Typed CodeEngineFailed, not retriable: the file may hold a
		// partial batch that only a reopen (whose scan truncates it)
		// can clean up, so callers must recover, not retry.
		l.broken = oberr.Wrapf(oberr.CodeEngineFailed, err,
			"wal: log unusable after failed rollback (reopen to recover)")
	}
}

// Replay streams every committed entry in append order, skipping commit
// markers. Row records are decoded against the schemas journaled by
// earlier OpCreateTable entries in the same file, so recovery needs no
// pre-existing catalog. Staged records are invisible to Replay.
func (l *Log) Replay(fn func(Entry) error) error {
	if l.broken != nil {
		return l.broken
	}
	schemas := make(map[string]*table.Schema)
	var (
		off    = int64(len(magic))
		seq    uint32
		lenBuf [4]byte
		frame  []byte
		plain  []byte
	)
	for off < l.size {
		if _, err := l.f.ReadAt(lenBuf[:], off); err != nil {
			return err
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if off+4+n > l.size {
			return fmt.Errorf("wal: frame %d overruns the committed region", seq)
		}
		if int64(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := l.f.ReadAt(frame, off+4); err != nil {
			return err
		}
		if l.opts.Tracer != nil {
			l.opts.Tracer.Record(l.region, trace.Read, int(seq))
		}
		var err error
		plain, err = l.sealer.OpenInto(plain[:0], walAAD, seq, uint64(seq), frame)
		if err != nil {
			return fmt.Errorf("wal: frame %d fails authentication: %w", seq, err)
		}
		if plain[0] == recEntry {
			e, err := decodeEntry(plain[1:], schemas)
			if err != nil {
				return fmt.Errorf("wal: frame %d: %w", seq, err)
			}
			if e.Op == OpCreateTable {
				schemas[strings.ToLower(e.Def.Name)] = e.Def.Schema
			}
			if e.Op == OpDropTable {
				delete(schemas, strings.ToLower(e.Table))
			}
			if err := fn(e); err != nil {
				return err
			}
		}
		off += 4 + n
		seq++
	}
	return nil
}

// decodeEntry parses one entry record (after the recEntry tag).
func decodeEntry(b []byte, schemas map[string]*table.Schema) (Entry, error) {
	if len(b) < 2 {
		return Entry{}, fmt.Errorf("truncated entry")
	}
	op := Op(b[0])
	nameLen := int(b[1])
	if len(b) < 2+nameLen {
		return Entry{}, fmt.Errorf("truncated table name")
	}
	name := string(b[2 : 2+nameLen])
	rest := b[2+nameLen:]
	switch op {
	case OpInsert, OpUpdate, OpDelete:
		s, ok := schemas[strings.ToLower(name)]
		if !ok {
			return Entry{}, fmt.Errorf("row entry for table %q with no journaled definition", name)
		}
		row, used, err := s.DecodeRecord(rest)
		if err != nil {
			return Entry{}, err
		}
		if !used {
			return Entry{}, fmt.Errorf("row entry for %q decodes as a dummy", name)
		}
		return Entry{Op: op, Table: name, Row: row}, nil
	case OpDropTable:
		return Entry{Op: op, Table: name}, nil
	case OpCreateTable:
		def, err := decodeDef(name, rest)
		if err != nil {
			return Entry{}, err
		}
		return Entry{Op: op, Table: name, Def: def}, nil
	}
	return Entry{}, fmt.Errorf("unknown op %d", op)
}

// decodeDef parses a CREATE TABLE record body after the table name.
func decodeDef(name string, b []byte) (*TableDef, error) {
	bad := fmt.Errorf("truncated definition of %q", name)
	if len(b) < 2 {
		return nil, bad
	}
	def := &TableDef{Name: name, Kind: b[0], ObliviousInserts: b[1]&1 != 0, RecursiveORAM: b[1]&2 != 0}
	b = b[2:]
	capacity, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, bad
	}
	def.Capacity = int(capacity)
	b = b[k:]
	if len(b) < 1 {
		return nil, bad
	}
	keyLen := int(b[0])
	if len(b) < 1+keyLen {
		return nil, bad
	}
	def.KeyColumn = string(b[1 : 1+keyLen])
	b = b[1+keyLen:]
	if len(b) < 1 {
		return nil, bad
	}
	ncols := int(b[0])
	b = b[1:]
	cols := make([]table.Column, 0, ncols)
	for i := 0; i < ncols; i++ {
		if len(b) < 1 {
			return nil, bad
		}
		cn := int(b[0])
		if len(b) < 1+cn+1 {
			return nil, bad
		}
		col := table.Column{Name: string(b[1 : 1+cn]), Kind: table.Kind(b[1+cn])}
		b = b[2+cn:]
		width, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, bad
		}
		col.Width = int(width)
		b = b[k:]
		cols = append(cols, col)
	}
	s, err := table.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("definition of %q: %w", name, err)
	}
	def.Schema = s
	return def, nil
}

// ShouldCheckpoint reports whether the file has outgrown the configured
// auto-checkpoint threshold.
func (l *Log) ShouldCheckpoint() bool {
	return l.opts.AutoCheckpointBytes > 0 && l.size >= l.opts.AutoCheckpointBytes
}

// Checkpoint compacts the log: fill stages a snapshot of the live state
// (via AppendCreate/Append), which is committed into a temporary file
// that then atomically replaces the log. The old file's history — and
// with it every checkpointed entry — is gone afterwards; the snapshot is
// the new replay baseline. Nothing may be staged when Checkpoint is
// called. On any failure the original file is untouched.
func (l *Log) Checkpoint(fill func() error) error {
	if l.broken != nil {
		return l.broken
	}
	if len(l.offs) != 0 {
		return fmt.Errorf("wal: checkpoint with %d records staged", len(l.offs))
	}
	tmpPath := l.path + ".ckpt"
	tmpf, err := l.opts.openFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return err
	}
	if err := tmpf.Truncate(0); err != nil {
		tmpf.Close()
		os.Remove(tmpPath)
		return err
	}
	if _, err := tmpf.WriteAt([]byte(magic), 0); err != nil {
		tmpf.Close()
		os.Remove(tmpPath)
		return err
	}

	// Redirect the log at the temp file; fill and Commit write there.
	saved := *l
	l.f = tmpf
	l.seq = 0
	l.size = int64(len(magic))
	l.entries = 0
	l.commits = 0
	abort := func(err error) error {
		mono := [3]uint64{l.totalEntries, l.totalCommits, l.totalCheckpoints}
		*l = saved
		l.totalEntries, l.totalCommits, l.totalCheckpoints = mono[0], mono[1], mono[2]
		tmpf.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := fill(); err != nil {
		return abort(fmt.Errorf("wal: checkpoint snapshot: %w", err))
	}
	if err := l.Commit(); err != nil {
		return abort(err)
	}
	// The rename must find the snapshot on disk regardless of Options.Sync.
	if err := tmpf.Sync(); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return abort(err)
	}
	syncDir(l.path)
	saved.f.Close()
	l.totalCheckpoints++
	return nil
}

// syncDir best-effort fsyncs the directory holding path, making a
// just-renamed file durable.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Close releases the file handle. Staged records are discarded (they
// were never acknowledged).
func (l *Log) Close() error {
	l.arena = nil
	l.offs = nil
	return l.f.Close()
}
