// Package wal implements the write-ahead log §3 of the paper sketches as
// the path to durability: "a standard write-ahead log could be
// generically added to the system. Appends to such a log would not leak
// any additional information or affect obliviousness, as the only change
// would be to make a write to an encrypted log file before each
// insert/update/delete operation."
//
// Entries are sealed blocks in an append-only region of untrusted
// memory; the access pattern of logging is one write per mutation, at the
// next sequential slot — a function only of the (already public) count of
// mutations. Replay reads the region front to back.
package wal

import (
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
)

// Entry layout: [op:1][nameLen:1][name][record...]; the record is the row
// codec of the entry's table. Sealing (nonce, tag, revision binding)
// comes from the enclave store like every other block.

// Op tags a logged mutation.
type Op uint8

const (
	// OpInsert logs an inserted row.
	OpInsert Op = 1
	// OpUpdate logs one row's post-image (the engine logs each rewritten
	// row).
	OpUpdate Op = 2
	// OpDelete logs a deleted row's pre-image key fields.
	OpDelete Op = 3
)

// Entry is one logged mutation.
type Entry struct {
	Op    Op
	Table string
	Row   table.Row
}

// Log is an encrypted, append-only mutation journal.
type Log struct {
	enc       *enclave.Enclave
	store     *enclave.Store
	schemas   map[string]*table.Schema
	blockSize int
	next      int
}

// New creates a log holding up to capacity entries. Schemas registered
// with Register bound the entry payload size.
func New(e *enclave.Enclave, name string, capacity int) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wal: capacity must be positive, got %d", capacity)
	}
	return &Log{
		enc:     e,
		schemas: make(map[string]*table.Schema),
		// The store is allocated lazily at first Register, when the block
		// size (max row encoding) is known.
		blockSize: 0,
		next:      -capacity, // sentinel: stores capacity until allocation
	}, nil
}

// Register declares a table whose mutations will be logged. All tables
// must be registered before the first Append.
func (l *Log) Register(name string, s *table.Schema) error {
	if l.store != nil {
		return fmt.Errorf("wal: cannot register %q after appends began", name)
	}
	l.schemas[name] = s
	need := 1 + 1 + len(name) + s.RecordSize()
	if need > l.blockSize {
		l.blockSize = need
	}
	return nil
}

func (l *Log) ensureStore() error {
	if l.store != nil {
		return nil
	}
	if len(l.schemas) == 0 {
		return fmt.Errorf("wal: no tables registered")
	}
	capacity := -l.next
	st, err := l.enc.NewStore("wal", capacity, l.blockSize)
	if err != nil {
		return err
	}
	l.store = st
	l.next = 0
	return nil
}

// Len returns the number of entries logged.
func (l *Log) Len() int {
	if l.store == nil {
		return 0
	}
	return l.next
}

// Append seals one mutation record into the next log slot — the single
// extra write per mutation the paper describes.
func (l *Log) Append(e Entry) error {
	if err := l.ensureStore(); err != nil {
		return err
	}
	s, ok := l.schemas[e.Table]
	if !ok {
		return fmt.Errorf("wal: table %q not registered", e.Table)
	}
	if l.next >= l.store.Len() {
		return fmt.Errorf("wal: log full (%d entries); checkpoint and truncate", l.store.Len())
	}
	buf := make([]byte, l.blockSize)
	buf[0] = byte(e.Op)
	if len(e.Table) > 255 {
		return fmt.Errorf("wal: table name too long")
	}
	buf[1] = byte(len(e.Table))
	copy(buf[2:], e.Table)
	if err := s.EncodeRecord(buf[2+len(e.Table):], e.Row); err != nil {
		return err
	}
	if err := l.store.Write(l.next, buf); err != nil {
		return err
	}
	l.next++
	return nil
}

// Replay streams every entry in append order — recovery after a crash of
// the in-memory engine.
func (l *Log) Replay(fn func(Entry) error) error {
	for i := 0; i < l.Len(); i++ {
		data, err := l.store.Read(i)
		if err != nil {
			return err
		}
		nameLen := int(data[1])
		name := string(data[2 : 2+nameLen])
		s, ok := l.schemas[name]
		if !ok {
			return fmt.Errorf("wal: replay found unregistered table %q", name)
		}
		row, used, err := s.DecodeRecord(data[2+nameLen:])
		if err != nil {
			return err
		}
		if !used {
			return fmt.Errorf("wal: corrupt entry %d", i)
		}
		if err := fn(Entry{Op: Op(data[0]), Table: name, Row: row}); err != nil {
			return err
		}
	}
	return nil
}
