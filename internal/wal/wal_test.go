package wal

import (
	"os"
	"path/filepath"
	"testing"

	"oblidb/internal/crypt"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func walSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "s", Kind: table.KindString, Width: 10},
	)
}

func walDef() TableDef {
	return TableDef{Name: "t", Schema: walSchema(), Kind: 2, KeyColumn: "k",
		Capacity: 64, ObliviousInserts: true, RecursiveORAM: false}
}

func openLog(t *testing.T, path string, key []byte, opts Options) *Log {
	t.Helper()
	l, err := Open(path, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func row(k int64, s string) table.Row {
	return table.Row{table.Int(k), table.Str(s)}
}

// seedLog journals the table definition plus one committed batch of
// row mutations.
func seedLog(t *testing.T, l *Log) {
	t.Helper()
	if err := l.AppendCreate(walDef()); err != nil {
		t.Fatal(err)
	}
	s := walSchema()
	if err := l.Append(OpInsert, "t", s, row(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(OpDelete, "t", s, row(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(OpUpdate, "t", s, row(2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T, l *Log) []Entry {
	t.Helper()
	var got []Entry
	if err := l.Replay(func(e Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendCommitReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	l := openLog(t, path, key, Options{})
	seedLog(t, l)

	if l.Len() != 4 || l.Commits() != 1 {
		t.Fatalf("Len, Commits = %d, %d; want 4, 1", l.Len(), l.Commits())
	}
	got := collect(t, l)
	if len(got) != 4 {
		t.Fatalf("replayed %d entries, want 4", len(got))
	}
	def := got[0]
	if def.Op != OpCreateTable || def.Def == nil {
		t.Fatalf("entry 0 = %+v, want a create", def)
	}
	want := walDef()
	if def.Def.Name != want.Name || def.Def.Kind != want.Kind ||
		def.Def.KeyColumn != want.KeyColumn || def.Def.Capacity != want.Capacity ||
		!def.Def.ObliviousInserts || def.Def.RecursiveORAM {
		t.Fatalf("journaled definition = %+v, want %+v", def.Def, want)
	}
	if len(def.Def.Schema.Columns()) != 2 {
		t.Fatalf("journaled schema has %d columns", len(def.Def.Schema.Columns()))
	}
	ops := []Op{OpCreateTable, OpInsert, OpDelete, OpUpdate}
	for i, e := range got {
		if e.Op != ops[i] {
			t.Fatalf("entry %d op = %d, want %d", i, e.Op, ops[i])
		}
	}
	if !got[3].Row[0].Equal(table.Int(2)) || !got[3].Row[1].Equal(table.Str("b")) {
		t.Fatalf("entry 3 row = %v", got[3].Row)
	}
}

func TestReopenKeepsCommittedDropsStaged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	l := openLog(t, path, key, Options{})
	seedLog(t, l)
	// Staged but never committed: must not survive the reopen.
	if err := l.Append(OpInsert, "t", walSchema(), row(9, "x")); err != nil {
		t.Fatal(err)
	}
	if l.Staged() != 1 {
		t.Fatalf("Staged = %d", l.Staged())
	}
	l.Close()

	l2 := openLog(t, path, key, Options{})
	if l2.Len() != 4 || l2.Commits() != 1 {
		t.Fatalf("after reopen: Len, Commits = %d, %d; want 4, 1", l2.Len(), l2.Commits())
	}
	if got := collect(t, l2); len(got) != 4 {
		t.Fatalf("after reopen: replayed %d entries, want 4", len(got))
	}
}

func TestWrongKeyRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l := openLog(t, path, crypt.NewRandomKey(), Options{})
	seedLog(t, l)
	l.Close()
	if _, err := Open(path, crypt.NewRandomKey(), Options{}); err == nil {
		t.Fatal("opening with the wrong key succeeded")
	}
}

func TestTornTailTruncated(t *testing.T) {
	cases := []struct {
		name string
		tail []byte
	}{
		{"torn length prefix", []byte{0xAB, 0xCD}},
		{"torn frame body", []byte{40, 0, 0, 0, 1, 2, 3}},
		{"garbage frame at EOF", append([]byte{8, 0, 0, 0}, make([]byte, 8)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			key := crypt.NewRandomKey()
			l := openLog(t, path, key, Options{})
			seedLog(t, l)
			size := l.SizeBytes()
			l.Close()

			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2 := openLog(t, path, key, Options{})
			if l2.Len() != 4 || l2.SizeBytes() != size {
				t.Fatalf("after torn tail: Len=%d size=%d, want 4, %d", l2.Len(), l2.SizeBytes(), size)
			}
			if got := collect(t, l2); len(got) != 4 {
				t.Fatalf("after torn tail: replayed %d entries", len(got))
			}
		})
	}
}

func TestUncommittedBatchOnDiskDropped(t *testing.T) {
	// A batch that reached the file but whose commit marker did not (the
	// crash window Commit's single write narrows but the OS does not
	// close) must be truncated on reopen. Simulate it by chopping the
	// commit marker off the end of a second committed batch.
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	l := openLog(t, path, key, Options{})
	seedLog(t, l)
	firstSize := l.SizeBytes()
	if err := l.Append(OpInsert, "t", walSchema(), row(7, "g")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	secondSize := l.SizeBytes()
	l.Close()

	// Drop the last 10 bytes: the second batch's commit marker is torn.
	if err := os.Truncate(path, secondSize-10); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, path, key, Options{})
	if l2.Len() != 4 || l2.SizeBytes() != firstSize {
		t.Fatalf("Len=%d size=%d, want 4, %d", l2.Len(), l2.SizeBytes(), firstSize)
	}
}

func TestMidFileTamperingDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	l := openLog(t, path, key, Options{})
	seedLog(t, l)
	if err := l.Append(OpInsert, "t", walSchema(), row(7, "g")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip one byte inside the first frame's sealed body: corruption
	// *followed by* intact data is tampering, not a torn write.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)+6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, key, Options{}); err == nil {
		t.Fatal("mid-file tampering went undetected")
	}
}

func TestRewindDiscardsStaged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l := openLog(t, path, crypt.NewRandomKey(), Options{})
	if err := l.AppendCreate(walDef()); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	s := walSchema()
	mark := l.Staged()
	if err := l.Append(OpInsert, "t", s, row(1, "a")); err != nil {
		t.Fatal(err)
	}
	keep := l.Staged()
	if err := l.Append(OpInsert, "t", s, row(2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(OpInsert, "t", s, row(3, "c")); err != nil {
		t.Fatal(err)
	}
	l.Rewind(keep)
	if l.Staged() != 1 {
		t.Fatalf("Staged after partial rewind = %d", l.Staged())
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != 2 || !got[1].Row[0].Equal(table.Int(1)) {
		t.Fatalf("after rewind+commit replayed %v", got)
	}

	// Rewinding everything staged makes the next Commit a no-op.
	if err := l.Append(OpInsert, "t", s, row(4, "d")); err != nil {
		t.Fatal(err)
	}
	l.Rewind(mark)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len after full rewind = %d", l.Len())
	}
}

func TestCheckpointCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	l := openLog(t, path, key, Options{})
	if err := l.AppendCreate(walDef()); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	s := walSchema()
	for i := 0; i < 50; i++ {
		if err := l.Append(OpInsert, "t", s, row(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(OpDelete, "t", s, row(int64(i), "x")); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	bigSize := l.SizeBytes()
	totalBefore := l.TotalEntries()

	// The live state is empty except the table itself: the snapshot is
	// one definition record.
	err := l.Checkpoint(func() error { return l.AppendCreate(walDef()) })
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 || l.Commits() != 1 {
		t.Fatalf("after checkpoint: Len, Commits = %d, %d; want 1, 1", l.Len(), l.Commits())
	}
	if l.SizeBytes() >= bigSize {
		t.Fatalf("checkpoint did not shrink the file: %d -> %d", bigSize, l.SizeBytes())
	}
	if l.Checkpoints() != 1 {
		t.Fatalf("Checkpoints = %d", l.Checkpoints())
	}
	if l.TotalEntries() != totalBefore+1 {
		t.Fatalf("TotalEntries = %d, want %d", l.TotalEntries(), totalBefore+1)
	}
	if got := collect(t, l); len(got) != 1 || got[0].Op != OpCreateTable {
		t.Fatalf("after checkpoint replayed %v", got)
	}
	l.Close()

	// The compacted file replays identically after reopen.
	l2 := openLog(t, path, key, Options{})
	if got := collect(t, l2); len(got) != 1 {
		t.Fatalf("reopened checkpoint replayed %d entries", len(got))
	}
}

func TestCheckpointAbortKeepsOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l := openLog(t, path, crypt.NewRandomKey(), Options{})
	seedLog(t, l)
	err := l.Checkpoint(func() error { return os.ErrInvalid })
	if err == nil {
		t.Fatal("failing snapshot did not fail the checkpoint")
	}
	if l.Len() != 4 || l.Commits() != 1 {
		t.Fatalf("after aborted checkpoint: Len, Commits = %d, %d", l.Len(), l.Commits())
	}
	if got := collect(t, l); len(got) != 4 {
		t.Fatalf("after aborted checkpoint replayed %d entries", len(got))
	}
	if _, err := os.Stat(path + ".ckpt"); !os.IsNotExist(err) {
		t.Fatalf("temp checkpoint file left behind: %v", err)
	}
}

func TestShouldCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l := openLog(t, path, crypt.NewRandomKey(), Options{AutoCheckpointBytes: 100})
	if l.ShouldCheckpoint() {
		t.Fatal("empty log wants a checkpoint")
	}
	seedLog(t, l)
	if !l.ShouldCheckpoint() {
		t.Fatal("oversized log does not want a checkpoint")
	}
}

func TestCommitEmptyIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l := openLog(t, path, crypt.NewRandomKey(), Options{})
	size := l.SizeBytes()
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.SizeBytes() != size || l.Commits() != 0 {
		t.Fatal("empty commit touched the file")
	}
}

func TestAppendCommitDoesNotAllocate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l := openLog(t, path, crypt.NewRandomKey(), Options{})
	if err := l.AppendCreate(walDef()); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	s := walSchema()
	r := row(1, "a")
	// Warm the arena to its steady-state capacity: one batch of the size
	// the measured loop stages.
	for i := 0; i < 8; i++ {
		if err := l.Append(OpInsert, "t", s, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 8; i++ {
			if err := l.Append(OpInsert, "t", s, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append+Commit allocates %.1f times per batch, want 0", allocs)
	}
}

// TestTraceShapeOblivious pins the paper's §3 claim: the journal's
// untrusted access stream is a function of public mutation counts and
// schemas only. Two same-shape workloads with different values must
// produce identical traces, both while logging and while replaying.
func TestTraceShapeOblivious(t *testing.T) {
	run := func(base int64, label string) (*trace.Tracer, *trace.Tracer) {
		dir := t.TempDir()
		logTr := trace.New()
		path := filepath.Join(dir, "j.wal")
		key := crypt.NewRandomKey()
		l := openLog(t, path, key, Options{Tracer: logTr})
		if err := l.AppendCreate(walDef()); err != nil {
			t.Fatal(err)
		}
		s := walSchema()
		for i := int64(0); i < 10; i++ {
			if err := l.Append(OpInsert, "t", s, row(base+i, label)); err != nil {
				t.Fatal(err)
			}
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		replayTr := trace.New()
		l2 := openLog(t, path, key, Options{Tracer: replayTr})
		if err := l2.Replay(func(Entry) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return logTr, replayTr
	}
	logA, repA := run(0, "aaa")
	logB, repB := run(1000, "zzz")
	if d := trace.Diff(logA, logB); d != "" {
		t.Fatalf("logging trace depends on values: %s", d)
	}
	if d := trace.Diff(repA, repB); d != "" {
		t.Fatalf("replay trace depends on values: %s", d)
	}
}
