package wal

import (
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/table"
)

func walSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "s", Kind: table.KindString, Width: 10},
	)
}

func newLog(t *testing.T, capacity int) *Log {
	t.Helper()
	e := enclave.MustNew(enclave.Config{})
	l, err := New(e, "j", capacity)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Register("t", walSchema()); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l := newLog(t, 16)
	entries := []Entry{
		{Op: OpInsert, Table: "t", Row: table.Row{table.Int(1), table.Str("a")}},
		{Op: OpDelete, Table: "t", Row: table.Row{table.Int(1), table.Str("a")}},
		{Op: OpUpdate, Table: "t", Row: table.Row{table.Int(2), table.Str("b")}},
	}
	for _, e := range entries {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	i := 0
	if err := l.Replay(func(e Entry) error {
		want := entries[i]
		if e.Op != want.Op || e.Table != want.Table || !e.Row[0].Equal(want.Row[0]) || !e.Row[1].Equal(want.Row[1]) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != 3 {
		t.Fatalf("replayed %d entries", i)
	}
}

func TestCapacityAndRegistrationRules(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	if _, err := New(e, "j", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	l := newLog(t, 1)
	if err := l.Append(Entry{Op: OpInsert, Table: "t", Row: table.Row{table.Int(1), table.Str("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Op: OpInsert, Table: "t", Row: table.Row{table.Int(2), table.Str("y")}}); err == nil {
		t.Fatal("over-capacity append accepted")
	}
	if err := l.Register("late", walSchema()); err == nil {
		t.Fatal("registration after appends accepted")
	}
	if err := l.Append(Entry{Op: OpInsert, Table: "nope", Row: table.Row{table.Int(1), table.Str("x")}}); err == nil {
		t.Fatal("unregistered table accepted")
	}
}

func TestEmptyLogReplay(t *testing.T) {
	l := newLog(t, 4)
	if err := l.Replay(func(Entry) error { t.Fatal("unexpected entry"); return nil }); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestAppendWithoutRegistration(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	l, err := New(e, "j", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Op: OpInsert, Table: "t"}); err == nil {
		t.Fatal("append with no registered tables accepted")
	}
}

func TestMultiTableEntries(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	l, err := New(e, "j", 8)
	if err != nil {
		t.Fatal(err)
	}
	wide := table.MustSchema(table.Column{Name: "text", Kind: table.KindString, Width: 64})
	if err := l.Register("a", walSchema()); err != nil {
		t.Fatal(err)
	}
	if err := l.Register("b", wide); err != nil {
		t.Fatal(err)
	}
	// The wider schema sets the entry size; narrow entries still fit.
	if err := l.Append(Entry{Op: OpInsert, Table: "a", Row: table.Row{table.Int(1), table.Str("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Op: OpInsert, Table: "b", Row: table.Row{table.Str("wide value")}}); err != nil {
		t.Fatal(err)
	}
	tables := map[string]int{}
	if err := l.Replay(func(e Entry) error { tables[e.Table]++; return nil }); err != nil {
		t.Fatal(err)
	}
	if tables["a"] != 1 || tables["b"] != 1 {
		t.Fatalf("replayed tables = %v", tables)
	}
}
