package wal

import (
	"os"
	"path/filepath"
	"testing"

	"oblidb/internal/crypt"
)

// buildTornTailJournal writes a journal with three committed batches
// and returns its bytes plus the (size, entries) pair at every commit
// boundary — the set of states a clean torn tail may recover to.
func buildTornTailJournal(t *testing.T) (key, data []byte, bounds [][2]int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	key = crypt.NewRandomKey()
	l, err := Open(path, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := walSchema()
	bounds = append(bounds, [2]int64{int64(len(magic)), 0}) // the empty log
	if err := l.AppendCreate(walDef()); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(OpInsert, "t", s, row(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	bounds = append(bounds, [2]int64{l.SizeBytes(), int64(l.Len())})
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 3; i++ {
			if err := l.Append(OpInsert, "t", s, row(int64(10*batch+i), "x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, [2]int64{l.SizeBytes(), int64(l.Len())})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return key, data, bounds
}

// checkTornTail damages one journal at offset cut — truncating it
// there, or additionally flipping the byte at the cut — reopens it,
// and asserts the recovery contract: a clean torn tail NEVER errors
// and recovers exactly the longest committed prefix; a corrupted tail
// either reports tampering or still recovers a committed boundary —
// never a partial batch, never a crash.
func checkTornTail(t *testing.T, cut int, flip byte, corrupt bool) {
	t.Helper()
	key, data, bounds := buildTornTailJournal(t)
	if cut > len(data) {
		cut = cut % (len(data) + 1)
	}
	damaged := append([]byte(nil), data[:cut]...)
	if corrupt && cut > 0 {
		damaged[cut-1] ^= flip | 1 // always changes the byte
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "damaged.wal")
	if err := os.WriteFile(path, damaged, 0o600); err != nil {
		t.Fatal(err)
	}

	l, err := Open(path, key, Options{})
	if err != nil {
		if !corrupt {
			t.Fatalf("clean torn tail at offset %d must not error, got: %v", cut, err)
		}
		return // tampering detected: acceptable for a corrupted file
	}
	defer l.Close()

	// Whatever survived must be exactly a committed boundary, and the
	// committed region must replay without error.
	atBoundary := false
	for _, b := range bounds {
		if l.SizeBytes() == b[0] && int64(l.Len()) == b[1] {
			atBoundary = true
		}
	}
	if !atBoundary {
		t.Fatalf("cut=%d corrupt=%v recovered to a non-boundary state: size=%d entries=%d (boundaries %v)",
			cut, corrupt, l.SizeBytes(), l.Len(), bounds)
	}
	if !corrupt {
		// A clean truncation must recover the LONGEST boundary that fits;
		// a tear inside the header restores the empty log (bounds[0]).
		want := bounds[0]
		for _, b := range bounds {
			if b[0] <= int64(cut) {
				want = b
			}
		}
		if l.SizeBytes() != want[0] || int64(l.Len()) != want[1] {
			t.Fatalf("cut=%d recovered (size=%d entries=%d), want (size=%d entries=%d)",
				cut, l.SizeBytes(), l.Len(), want[0], want[1])
		}
	}
	replayed := 0
	if err := l.Replay(func(Entry) error { replayed++; return nil }); err != nil {
		t.Fatalf("cut=%d corrupt=%v: recovered journal fails replay: %v", cut, corrupt, err)
	}
	if int64(replayed) != int64(l.Len()) {
		t.Fatalf("replay saw %d entries, Len says %d", replayed, l.Len())
	}
}

// TestWALTornTailEveryOffset is the exhaustive gate behind
// FuzzWALTornTail: truncate a valid three-batch journal at EVERY byte
// offset and require recovery of exactly the committed prefix, with no
// error at any offset.
func TestWALTornTailEveryOffset(t *testing.T) {
	_, data, _ := buildTornTailJournal(t)
	for cut := 0; cut <= len(data); cut++ {
		checkTornTail(t, cut, 0, false)
	}
}

// FuzzWALTornTail fuzzes the same contract with corruption added: the
// fuzzer picks a cut offset, whether to flip the byte at the cut, and
// the flip mask. Clean tears must always recover silently; corrupt
// tears must recover a committed boundary or report tampering.
func FuzzWALTornTail(f *testing.F) {
	f.Add(uint16(0), byte(0), false)
	f.Add(uint16(4), byte(0), false)     // inside the header
	f.Add(uint16(8), byte(0), false)     // exactly the header
	f.Add(uint16(10), byte(0), false)    // inside a length prefix
	f.Add(uint16(60), byte(0), false)    // mid-frame
	f.Add(uint16(60), byte(0x40), true)  // corrupt mid-frame
	f.Add(uint16(200), byte(0xff), true) // corrupt later batch
	f.Add(uint16(9999), byte(1), false)  // wraps to a valid offset
	f.Fuzz(func(t *testing.T, cut uint16, flip byte, corrupt bool) {
		checkTornTail(t, int(cut), flip, corrupt)
	})
}
