package bench

import (
	"fmt"
	"time"

	"oblidb/internal/enclave"
	"oblidb/internal/indexed"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/workload"
)

// This file measures the indexed access method (DESIGN.md §15): the same
// point and small-range queries answered by a full flat scan versus the
// ORAM-backed index, as the table grows. The crossover is the planner's
// whole reason to exist — at small n the flat pass wins, at large n the
// O(log² n) index does — and the point-lookup speedup at the largest
// size is the number BENCH_8.json pins for future PRs.

// indexedSizes returns the figure's size sweep (paper counts, scaled).
func indexedSizes(o Options) []int {
	return []int{o.n(1000), o.n(10000), o.n(100000)}
}

// indexedCell is one measured (operation, size, method) point.
type indexedCell struct {
	Op      string  `json:"op"`     // "point" | "range1pct"
	Rows    int     `json:"rows"`   // table size n
	Method  string  `json:"method"` // "flat" | "indexed"
	NsPerOp float64 `json:"ns_per_op"`
}

// indexedPair builds the two storage representations of the same n-row
// workload table at the paper's geometry (R = 1, one record per sealed
// block — the geometry Figure 2's asymptotic claims are stated in; the
// packing figure quantifies what larger R buys each method): a flat
// table, and an ORAM-backed indexed table keyed on the workload key
// column.
func indexedPair(o Options, n int) (*storage.Flat, *indexed.Table, error) {
	// The ring ORAM reserves ~144 B of enclave metadata per logical block
	// at R = 1, which outgrows the paper's 20 MB default near n = 100k;
	// size the modeled budget to the sweep so the figure measures the
	// access methods, not the budget.
	mem := enclave.DefaultObliviousMemory
	if need := 800 * n; need > mem {
		mem = need
	}
	e := enclave.MustNew(enclave.Config{Seed: o.seed(), ObliviousMemory: mem})
	f, err := packedTable(e, fmt.Sprintf("idxfig.flat.%d", n), n, 1)
	if err != nil {
		return nil, nil, err
	}
	idx, err := indexed.New(e, fmt.Sprintf("idxfig.idx.%d", n), workload.Schema(),
		0, n+64, indexed.Options{RowsPerBlock: 1})
	if err != nil {
		return nil, nil, err
	}
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = workload.NewRow(int64(i))
	}
	if err := idx.BulkLoad(rows); err != nil {
		return nil, nil, err
	}
	return f, idx, nil
}

// measureIndexed times point lookups and a 1% range read through both
// access methods on an n-row table. The flat method pays a full scan
// either way (§3: every flat operator touches every block); the index
// pays O(log n) ORAM operations for the point and O(log n + k) for the
// range.
func measureIndexed(o Options, n int) ([]indexedCell, error) {
	f, idx, err := indexedPair(o, n)
	if err != nil {
		return nil, err
	}
	defer idx.Close()

	span := n / 100
	if span < 1 {
		span = 1
	}
	lo := int64(n / 3)
	hi := lo + int64(span) - 1
	key := int64(n / 2)
	reps := 6

	var cells []indexedCell
	add := func(op, method string, d time.Duration) {
		cells = append(cells, indexedCell{Op: op, Rows: n, Method: method,
			NsPerOp: float64(d.Nanoseconds())})
	}

	// Flat point read: one full pass, matching on the key column.
	d, err := timedN(reps, func() error {
		return f.Scan(func(_ int, r table.Row, live bool) error {
			if live && r[0].AsInt() == key {
				_ = r[1]
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	add("point", "flat", d)

	// Flat 1% range read: the same full pass with a range predicate.
	d, err = timedN(reps, func() error {
		return f.Scan(func(_ int, r table.Row, live bool) error {
			if live {
				if k := r[0].AsInt(); k >= lo && k <= hi {
					_ = r[1]
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	add("range1pct", "flat", d)

	// Indexed point lookup: root-to-leaf descent through the ORAM.
	d, err = timedN(4*reps, func() error {
		_, _, err := idx.Lookup(key)
		return err
	})
	if err != nil {
		return nil, err
	}
	add("point", "indexed", d)

	// Indexed 1% range: descent plus a leaf walk over the scanned
	// segment (whose size is the §4.1 conceded leakage).
	d, err = timedN(reps, func() error {
		_, err := idx.RangeScan(lo, hi, func(table.Row) error { return nil })
		return err
	})
	if err != nil {
		return nil, err
	}
	add("range1pct", "indexed", d)
	return cells, nil
}

// indexedNs pulls one (op, method) timing out of a cell list.
func indexedNs(cells []indexedCell, op, method string) time.Duration {
	for _, c := range cells {
		if c.Op == op && c.Method == method {
			return time.Duration(c.NsPerOp)
		}
	}
	return 0
}

// RunIndexed is the "indexed" figure: flat scan versus ORAM index for
// point and 1% range reads across the size sweep.
func RunIndexed(o Options) error {
	o.printf("Indexed access method: flat scan vs ORAM index (point and 1%% range reads)\n")
	tp := newTable("n", "flat point", "index point", "speedup", "flat 1% range", "index 1% range", "speedup")
	for _, n := range indexedSizes(o) {
		cells, err := measureIndexed(o, n)
		if err != nil {
			return fmt.Errorf("indexed n=%d: %w", n, err)
		}
		fp := indexedNs(cells, "point", "flat")
		ip := indexedNs(cells, "point", "indexed")
		fr := indexedNs(cells, "range1pct", "flat")
		ir := indexedNs(cells, "range1pct", "indexed")
		tp.addf(n, fmtDur(fp), fmtDur(ip), ratio(fp, ip), fmtDur(fr), fmtDur(ir), ratio(fr, ir))
	}
	tp.render(o.Out)
	o.printf("  (paper geometry, R = 1: the flat method pays one block access per row\n")
	o.printf("   whatever the query; the index pays O(log n) ORAM ops per descent —\n")
	o.printf("   the planner flips between them on exactly these block-access prices,\n")
	o.printf("   see EXPLAIN)\n\n")
	return nil
}
