// Package bench regenerates every table and figure of the paper's
// evaluation (§7). Each RunFigN function reproduces one figure's
// experiment and prints rows in the figure's shape; cmd/oblidb-bench and
// the repository-root benchmarks drive them.
//
// Absolute numbers differ from the paper's (this substrate is a simulated
// enclave, not an SGX testbed); the reproduction target is the shape —
// who wins, by roughly what factor, and where crossovers fall. Default
// sizes are 10% of paper scale; Options.Scale = 1 restores it.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Options configures experiment runs.
type Options struct {
	// Scale is the fraction of paper-scale data (default 0.1).
	Scale float64
	// Out receives the report (default: discard-unsafe; callers set it).
	Out io.Writer
	// Seed makes data generation reproducible.
	Seed uint64
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.1
	}
	return o.Scale
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20190919 // the paper's arXiv v6 date
	}
	return o.Seed
}

// n scales a paper-scale count, with a small floor so tiny scales stay
// meaningful.
func (o Options) n(paperCount int) int {
	v := int(float64(paperCount) * o.scale())
	if v < 8 {
		v = 8
	}
	return v
}

func (o Options) printf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// timed runs f once and returns the wall time.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// timedN runs f n times and returns the mean duration.
func timedN(n int, f func() error) (time.Duration, error) {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// tablePrinter renders aligned rows.
type tablePrinter struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *tablePrinter {
	return &tablePrinter{header: header}
}

func (t *tablePrinter) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *tablePrinter) addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDur(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.add(row...)
}

func (t *tablePrinter) render(w io.Writer) {
	if w == nil {
		return
	}
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
}

// ratio renders a/b as "N.N×".
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f×", float64(a)/float64(b))
}
