package bench

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/crypt"
	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/obtree"
	"oblidb/internal/oram"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
	"oblidb/internal/workload"
)

// RunAblations measures the design choices DESIGN.md calls out, each
// against its alternative:
//
//   - recursive vs nonrecursive ORAM position maps (Appendix B's "at an
//     approximately 2× performance overhead"),
//   - the Opaque join's in-enclave chunk sorting vs the pure bitonic
//     network vs the randomized shellsort the paper cites,
//   - the constant-time flat insert vs the oblivious scanning insert
//     (§3.1),
//   - bottom-up index bulk loading vs padded incremental inserts,
//   - the write-ahead log's §3 claim that journaling adds only an append
//     per mutation.
func RunAblations(o Options) error {
	o.printf("Ablations: design choices, measured against their alternatives\n")
	if err := ablationORAM(o); err != nil {
		return err
	}
	if err := ablationSort(o); err != nil {
		return err
	}
	if err := ablationInsert(o); err != nil {
		return err
	}
	if err := ablationBulkLoad(o); err != nil {
		return err
	}
	return ablationWAL(o)
}

func ablationORAM(o Options) error {
	n := o.n(50000)
	ops := max(50, o.n(2000))
	tp := newTable("ORAM variant", "per-op", "bandwidth/op", "oblivious bytes")
	variants := []struct {
		name string
		// plainBlockBytes is the untrusted unit each traced access moves:
		// a Z-slot bucket for Path ORAM, a single slot for Ring ORAM.
		plainBlockBytes int
		mk              func(e *enclave.Enclave) (oram.Scheme, error)
	}{
		{"Path, plain map", oram.Z * (8 + 64), func(e *enclave.Enclave) (oram.Scheme, error) {
			return oram.New(e, "abl", n, 64, oram.Options{})
		}},
		{"Path, recursive map (App. B)", oram.Z * (8 + 64), func(e *enclave.Enclave) (oram.Scheme, error) {
			return oram.New(e, "abl", n, 64, oram.Options{Recursive: true})
		}},
		{"Ring ORAM (§8)", 64, func(e *enclave.Enclave) (oram.Scheme, error) {
			return oram.NewRing(e, "abl", n, 64, oram.Options{})
		}},
	}
	for _, v := range variants {
		tr := trace.New()
		tr.EnableCounts()
		tr.Disable()
		e := enclave.MustNew(enclave.Config{Seed: o.seed(), Tracer: tr})
		free := e.Available()
		om, err := v.mk(e)
		if err != nil {
			return err
		}
		charged := free - e.Available()
		rng := rand.New(rand.NewPCG(o.seed(), 3))
		buf := make([]byte, 64)
		before := tr.TotalCount()
		d, err := timedN(ops, func() error {
			_, err := om.Access(oram.OpWrite, rng.IntN(n), buf)
			return err
		})
		if err != nil {
			return err
		}
		bytesPerOp := int(tr.TotalCount()-before) * v.plainBlockBytes / ops
		tp.addf(v.name, d, fmt.Sprintf("%d B", bytesPerOp), charged)
		om.Close()
	}
	tp.render(o.Out)
	o.printf("  (%d-block ORAM, 64 B blocks; paper: recursive map ~2× slower per op,\n", n)
	o.printf("   Ring ORAM ~1.5× less bandwidth — its wall-clock advantage needs transfer\n")
	o.printf("   costs to dominate, which a RAM-backed simulation does not exhibit)\n\n")
	return nil
}

func ablationSort(o Options) error {
	n := exec.NextPow2(o.n(160000))
	tp := newTable("Sort", "time", "notes")
	build := func(e *enclave.Enclave) (*enclaveStoreWrap, error) {
		st, err := e.NewStore("abl.sort", n, 16)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewPCG(o.seed(), 7))
		buf := make([]byte, 16)
		for i := 0; i < n; i++ {
			for j := range buf {
				buf[j] = byte(rng.Uint32())
			}
			if err := st.Write(i, buf); err != nil {
				return nil, err
			}
		}
		return &enclaveStoreWrap{st}, nil
	}
	less := func(a, b []byte) bool {
		for i := 0; i < 16; i++ {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	runs := []struct {
		name, notes string
		sort        func(*enclave.Enclave, *enclaveStoreWrap) error
	}{
		{"bitonic, chunked", "Opaque join's accelerated sort", func(e *enclave.Enclave, w *enclaveStoreWrap) error {
			chunk := exec.NextPow2(max(2, n/16)) / 2
			return exec.ObliviousSort(w.st, n, chunk, less)
		}},
		{"bitonic, pure", "the 0-OM join's network", func(e *enclave.Enclave, w *enclaveStoreWrap) error {
			return exec.ObliviousSort(w.st, n, 1, less)
		}},
		{"randomized shellsort", "O(n log n), probabilistic (§4.3)", func(e *enclave.Enclave, w *enclaveStoreWrap) error {
			return exec.ShellSort(w.st, n, rand.New(rand.NewPCG(o.seed(), 9)), less)
		}},
	}
	for _, r := range runs {
		e := enclave.MustNew(enclave.Config{Seed: o.seed()})
		w, err := build(e)
		if err != nil {
			return err
		}
		d, err := timed(func() error { return r.sort(e, w) })
		if err != nil {
			return fmt.Errorf("ablation %s: %w", r.name, err)
		}
		tp.addf(r.name, d, r.notes)
	}
	tp.render(o.Out)
	o.printf("  (%d elements)\n\n", n)
	return nil
}

type enclaveStoreWrap struct{ st *enclave.Store }

func ablationInsert(o Options) error {
	n := o.n(100000)
	e := enclave.MustNew(enclave.Config{Seed: o.seed()})
	s := workload.Schema()
	fast, err := storage.NewFlat(e, "abl.fast", s, n)
	if err != nil {
		return err
	}
	obliv, err := storage.NewFlat(e, "abl.obliv", s, n)
	if err != nil {
		return err
	}
	for i := 0; i < n/2; i++ {
		if err := fast.InsertFast(workload.NewRow(int64(i))); err != nil {
			return err
		}
		if err := obliv.InsertFast(workload.NewRow(int64(i))); err != nil {
			return err
		}
	}
	reps := 10
	dFast, err := timedN(reps, func() error { return fast.InsertFast(workload.NewRow(0)) })
	if err != nil {
		return err
	}
	dObliv, err := timedN(reps, func() error { return obliv.Insert(workload.NewRow(0)) })
	if err != nil {
		return err
	}
	tp := newTable("Flat insert", "per-op", "paper")
	tp.addf("constant-time append", dFast, "O(1)")
	tp.addf("oblivious scan", dObliv, "O(N)")
	tp.render(o.Out)
	o.printf("  (half-full %d-row table; the append leaks only the insert count, §3.1)\n\n", n)
	return nil
}

func ablationBulkLoad(o Options) error {
	n := o.n(30000)
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = workload.NewRow(int64(i))
	}
	mk := func() (*obtree.Tree, error) {
		e := enclave.MustNew(enclave.Config{Seed: o.seed()})
		return obtree.New(e, "abl.idx", workload.Schema(), 0, n+4, obtree.Options{})
	}
	t1, err := mk()
	if err != nil {
		return err
	}
	dBulk, err := timed(func() error { return t1.BulkLoad(rows) })
	if err != nil {
		return err
	}
	t1.Close()
	t2, err := mk()
	if err != nil {
		return err
	}
	dInc, err := timed(func() error {
		for _, r := range rows {
			if err := t2.Insert(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	t2.Close()
	tp := newTable("Index load", "total", "per row")
	tp.addf("bulk (bottom-up)", dBulk, time.Duration(int64(dBulk)/int64(n)))
	tp.addf("incremental (padded inserts)", dInc, time.Duration(int64(dInc)/int64(n)))
	tp.render(o.Out)
	o.printf("  (%d rows; incremental pays worst-case padding per insert, §3.2)\n\n", n)
	return nil
}

func ablationWAL(o Options) error {
	n := max(100, o.n(2000))
	run := func(journal bool) (time.Duration, error) {
		db := core.MustOpen(core.Config{Seed: o.seed()})
		if journal {
			dir, err := os.MkdirTemp("", "oblidb-abl-wal")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(filepath.Join(dir, "abl.wal"), crypt.NewRandomKey(), wal.Options{})
			if err != nil {
				return 0, err
			}
			defer l.Close()
			if err := db.AttachWAL(l); err != nil {
				return 0, err
			}
		}
		if _, err := db.CreateTable("t", workload.Schema(), core.TableOptions{Capacity: n + 8}); err != nil {
			return 0, err
		}
		return timed(func() error {
			for i := 0; i < n; i++ {
				if err := db.Insert("t", workload.NewRow(int64(i))); err != nil {
					return err
				}
			}
			return nil
		})
	}
	plain, err := run(false)
	if err != nil {
		return err
	}
	logged, err := run(true)
	if err != nil {
		return err
	}
	tp := newTable("Inserts", "total", "vs plain")
	tp.addf("without journal", plain, "—")
	tp.addf("with write-ahead log", logged, ratio(logged, plain))
	tp.render(o.Out)
	o.printf("  (%d inserts; §3: the log adds one sealed append per mutation)\n\n", n)
	return nil
}
