package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestAllFiguresSmoke runs every experiment at a tiny scale: the point is
// that each runner executes end to end and produces its table.
func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness smoke test skipped in -short mode")
	}
	var buf bytes.Buffer
	o := Options{Scale: 0.004, Out: &buf, Seed: 7}
	if err := RunAll(o); err != nil {
		t.Fatalf("RunAll: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Figure 14", "Padding mode", "Served throughput", "Parallel speedup",
		"Opaque Oblivious", "ObliDB (indexed)", "Spark SQL (plain)",
		"HIRB", "planner pick", "Dummy share", "Speedup @4",
		"Indexed access method", "index point",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 0.1 {
		t.Fatalf("default scale %v", o.scale())
	}
	if o.n(100) != 10 || o.n(10) != 8 {
		t.Fatalf("n scaling: %d %d", o.n(100), o.n(10))
	}
	if o.seed() == 0 {
		t.Fatal("default seed is zero")
	}
	if o.obliviousMemory() < 1<<20 || o.opaqueMemory() < o.obliviousMemory() {
		t.Fatal("memory defaults out of order")
	}
}

func TestTablePrinter(t *testing.T) {
	var buf bytes.Buffer
	tp := newTable("A", "Blong")
	tp.addf("x", 1500*time.Millisecond)
	tp.addf(42, 3.14159)
	tp.render(&buf)
	out := buf.String()
	for _, want := range []string{"A", "Blong", "1.500s", "42", "3.14"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:         "2.000s",
		1500 * time.Microsecond: "1.50ms",
		800 * time.Nanosecond:   "0.8µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if ratio(2*time.Second, time.Second) != "2.0×" {
		t.Fatal("ratio wrong")
	}
	if ratio(time.Second, 0) != "—" {
		t.Fatal("zero denominator not handled")
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	if len(Order) != len(Figures) {
		t.Fatalf("Order has %d entries, Figures %d", len(Order), len(Figures))
	}
	for _, id := range Order {
		if Figures[id] == nil {
			t.Fatalf("figure %q missing from registry", id)
		}
	}
}
