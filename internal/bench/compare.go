package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file is the sqlbench-style regression gate of the ROADMAP: it
// diffs a fresh (or saved) trajectory run against a checked-in
// BENCH_<n>.json baseline, cell by cell, and fails past a threshold.
// Wall-clock microbenchmarks on shared CI runners are noisy, so the
// gate is advisory there (continue-on-error); the point is that a perf
// PR sees the regression it introduced in the numbers it changed.

// compareResult is one matched baseline/current cell pair.
type compareResult struct {
	name     string
	base     float64 // baseline value
	cur      float64 // current value
	slowdown float64 // >1 = current is worse, in the metric's own sense
}

// loadReport reads a BenchReport from a BENCH_<n>.json file.
func loadReport(path string) (BenchReport, error) {
	var rep BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports matches every cell family by identity — (op, rows, R)
// for packing, (R, epoch size) for served, (op, rows, method) for the
// access-method sweep, worker count for concurrency — and computes the
// current-vs-baseline slowdown. Cells present on only one side are
// skipped: a new figure has no baseline to regress against.
func compareReports(base, cur BenchReport) []compareResult {
	var out []compareResult

	packKey := func(c packingCell) string { return fmt.Sprintf("packing %s rows=%d R=%d", c.Op, c.Rows, c.R) }
	basePack := map[string]packingCell{}
	for _, c := range base.Packing {
		basePack[packKey(c)] = c
	}
	for _, c := range cur.Packing {
		if b, ok := basePack[packKey(c)]; ok && b.NsPerOp > 0 {
			out = append(out, compareResult{packKey(c), b.NsPerOp, c.NsPerOp, c.NsPerOp / b.NsPerOp})
		}
	}

	servedKey := func(c servedCell) string { return fmt.Sprintf("served R=%d epoch=%d", c.R, c.EpochSize) }
	baseServed := map[string]servedCell{}
	for _, c := range base.Served {
		baseServed[servedKey(c)] = c
	}
	for _, c := range cur.Served {
		// Throughput: slowdown is baseline/current.
		if b, ok := baseServed[servedKey(c)]; ok && c.StmtsPerSec > 0 {
			out = append(out, compareResult{servedKey(c), b.StmtsPerSec, c.StmtsPerSec, b.StmtsPerSec / c.StmtsPerSec})
		}
	}

	idxKey := func(c indexedCell) string { return fmt.Sprintf("indexed %s rows=%d %s", c.Op, c.Rows, c.Method) }
	baseIdx := map[string]indexedCell{}
	for _, c := range base.Indexed {
		baseIdx[idxKey(c)] = c
	}
	for _, c := range cur.Indexed {
		if b, ok := baseIdx[idxKey(c)]; ok && b.NsPerOp > 0 {
			out = append(out, compareResult{idxKey(c), b.NsPerOp, c.NsPerOp, c.NsPerOp / b.NsPerOp})
		}
	}

	concKey := func(c concurrencyCell) string { return fmt.Sprintf("concurrency workers=%d", c.Workers) }
	baseConc := map[string]concurrencyCell{}
	for _, c := range base.Concurrency {
		baseConc[concKey(c)] = c
	}
	for _, c := range cur.Concurrency {
		if b, ok := baseConc[concKey(c)]; ok && c.StmtsPerSec > 0 {
			out = append(out, compareResult{concKey(c), b.StmtsPerSec, c.StmtsPerSec, b.StmtsPerSec / c.StmtsPerSec})
		}
	}
	return out
}

// Compare diffs the perf trajectory against the baseline at
// baselinePath. When againstPath is non-empty it holds a saved current
// run; otherwise the full measurement suite runs now. Returns an error
// listing every cell whose slowdown exceeds threshold (e.g. 1.5 =
// fifty percent worse than baseline).
func Compare(o Options, baselinePath, againstPath string, threshold float64) error {
	base, err := loadReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var cur BenchReport
	if againstPath != "" {
		if cur, err = loadReport(againstPath); err != nil {
			return fmt.Errorf("current: %w", err)
		}
	} else {
		o.printf("measuring current trajectory (baseline %s)...\n", baselinePath)
		if cur, err = measureReport(o); err != nil {
			return err
		}
	}

	results := compareReports(base, cur)
	if len(results) == 0 {
		return fmt.Errorf("no comparable cells between baseline and current run")
	}
	tp := newTable("Cell", "Baseline", "Current", "Slowdown", "Verdict")
	regressions := 0
	for _, r := range results {
		verdict := "ok"
		if r.slowdown > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		tp.addf(r.name,
			fmt.Sprintf("%.3g", r.base), fmt.Sprintf("%.3g", r.cur),
			fmt.Sprintf("%.2fx", r.slowdown), verdict)
	}
	tp.render(o.Out)
	o.printf("  (%d cells compared against %s, threshold %.2fx)\n\n", len(results), baselinePath, threshold)
	if regressions > 0 {
		return fmt.Errorf("%d of %d cells regressed more than %.2fx over %s",
			regressions, len(results), threshold, baselinePath)
	}
	return nil
}
