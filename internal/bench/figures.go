package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"oblidb/internal/baseline"
	"oblidb/internal/bdb"
	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/hirb"
	"oblidb/internal/obtree"
	"oblidb/internal/opaque"
	"oblidb/internal/planner"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/workload"
)

// obliviousMemory scales the paper's 20 MB budget with the data so the
// budget-to-data ratio matches the paper's setup.
func (o Options) obliviousMemory() int {
	m := int(float64(20<<20) * o.scale())
	if m < 1<<20 {
		m = 1 << 20
	}
	return m
}

// opaqueMemory scales Opaque's 72 MB budget (§7.1).
func (o Options) opaqueMemory() int {
	m := int(float64(72<<20) * o.scale())
	if m < 1<<20 {
		m = 1 << 20
	}
	return m
}

// RunFig2 measures the storage methods' operation scaling (Figure 2):
// point reads, large reads, inserts, updates, and deletes on flat,
// indexed, and combined tables across a size sweep, reporting the log-log
// growth exponent next to Figure 2's asymptotic claim.
func RunFig2(o Options) error {
	o.printf("Figure 2: asymptotic behaviour of storage methods\n")
	sizes := []int{o.n(10000), o.n(20000), o.n(40000)}
	type cell struct{ first, last time.Duration }
	ops := []string{"point read", "large read", "insert", "update", "delete"}
	kinds := []core.StorageKind{core.KindFlat, core.KindIndexed, core.KindBoth}
	results := map[string]map[core.StorageKind]cell{}
	for _, op := range ops {
		results[op] = map[core.StorageKind]cell{}
	}

	for _, kind := range kinds {
		for si, n := range sizes {
			db := core.MustOpen(core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed()})
			if err := workload.Setup(db, "t", kind, n); err != nil {
				return err
			}
			t, _ := db.Table("t")
			// Point and mutation ops are sub-millisecond; repetitions keep
			// the growth exponents out of the noise.
			reps := 12
			measure := map[string]func() error{
				"point read": func() error {
					_, err := db.SelectTable(t, func(r table.Row) bool { return r[0].AsInt() == 1 }, core.SelectOptions{KeyRange: keyIf(t, 1, 1)})
					return err
				},
				"large read": func() error {
					hi := int64(n/20) - 1
					_, err := db.SelectTable(t, func(r table.Row) bool { k := r[0].AsInt(); return k >= 0 && k <= hi }, core.SelectOptions{KeyRange: keyIf(t, 0, hi)})
					return err
				},
				"insert": func() error { return db.Insert("t", workload.NewRow(int64(n)+1e6)) },
				"update": func() error {
					_, err := db.Update("t", func(r table.Row) bool { return r[0].AsInt() == 2 },
						func(r table.Row) table.Row { r[1] = table.Str("updated"); return r }, core.Point(2))
					return err
				},
				"delete": func() error {
					_, err := db.Delete("t", nil, core.Point(3))
					return err
				},
			}
			for _, op := range ops {
				d, err := timedN(reps, measure[op])
				if err != nil {
					return fmt.Errorf("fig2 %s/%s: %w", kind, op, err)
				}
				c := results[op][kind]
				if si == 0 {
					c.first = d
				}
				if si == len(sizes)-1 {
					c.last = d
				}
				results[op][kind] = c
			}
		}
	}

	paper := map[string][3]string{
		"point read": {"O(N)", "O(log² N)", "O(log² N)"},
		"large read": {"O(N)", "O(N)", "O(N)"},
		"insert":     {"O(1)", "O(log² N)", "O(log² N)"},
		"update":     {"O(N)", "O(log² N)", "O(N)"},
		"delete":     {"O(N)", "O(log² N)", "O(N)"},
	}
	growth := func(c cell) string {
		if c.first <= 0 {
			return "—"
		}
		exp := math.Log(float64(c.last)/float64(c.first)) / math.Log(float64(sizes[len(sizes)-1])/float64(sizes[0]))
		return fmt.Sprintf("N^%.2f", exp)
	}
	tp := newTable("Op", "Flat", "paper", "Indexed", "paper", "Both", "paper")
	for _, op := range ops {
		tp.add(op,
			growth(results[op][core.KindFlat]), paper[op][0],
			growth(results[op][core.KindIndexed]), paper[op][1],
			growth(results[op][core.KindBoth]), paper[op][2])
	}
	tp.render(o.Out)
	o.printf("  (measured growth exponents over N=%d..%d; log²N ≈ N^0.1 at these sizes)\n\n", sizes[0], sizes[len(sizes)-1])
	return nil
}

func keyIf(t *core.Table, lo, hi int64) *core.KeyRange {
	if t.Index() == nil {
		return nil
	}
	return &core.KeyRange{Lo: lo, Hi: hi}
}

// RunFig3 measures each oblivious physical operator once (Figure 3's
// inventory), reporting runtime alongside the paper's complexity.
func RunFig3(o Options) error {
	o.printf("Figure 3: oblivious physical operators\n")
	n := o.n(100000)
	db := core.MustOpen(core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed()})
	if err := workload.Setup(db, "t", core.KindFlat, n); err != nil {
		return err
	}
	t, _ := db.Table("t")
	in := exec.FromFlat(t.Flat())
	e := db.Enclave()
	tenPct := func(r table.Row) bool { return r[0].AsInt() < int64(n/10) }
	outSize := n / 10

	n2 := o.n(10000)
	if err := workload.Setup(db, "t2", core.KindFlat, n2); err != nil {
		return err
	}
	t2, _ := db.Table("t2")
	in2 := exec.FromFlat(t2.Flat())

	tp := newTable("Operator", "Time", "Complexity (paper)")
	run := func(name, complexity string, f func() error) error {
		d, err := timed(f)
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", name, err)
		}
		tp.addf(name, d, complexity)
		return nil
	}
	sel := func(alg exec.SelectAlgorithm, pred table.Pred, size int) func() error {
		return func() error {
			_, err := exec.Select(e, in, pred, alg, exec.SelectOptions{OutSize: size}, "out")
			return err
		}
	}
	continuous := func(r table.Row) bool { return r[0].AsInt() < int64(outSize) }
	large := func(r table.Row) bool { return r[0].AsInt() >= int64(n/20) }
	steps := []struct {
		name, complexity string
		f                func() error
	}{
		{"Small Select", "O(N²/S)", sel(exec.SelectSmall, tenPct, outSize)},
		{"Large Select", "O(N)", sel(exec.SelectLarge, large, n-n/20)},
		{"Cont. Select", "O(N)", sel(exec.SelectContinuous, continuous, outSize)},
		{"Hash Select", "O(N·C)", sel(exec.SelectHash, tenPct, outSize)},
		{"Naive Select", "O(N logN)", sel(exec.SelectNaive, tenPct, outSize)},
		{"Aggregate", "O(N)", func() error {
			_, err := exec.Aggregate(in, table.All, []exec.AggSpec{{Kind: exec.AggSum, Col: 0}})
			return err
		}},
		{"Gp. Aggregate", "O(N)", func() error {
			_, err := exec.GroupAggregate(e, in, table.All,
				func(r table.Row) table.Value { return table.Int(r[0].AsInt() % 16) },
				[]exec.AggSpec{{Kind: exec.AggCount}}, exec.GroupAggregateOptions{}, "out")
			return err
		}},
		{"Hash Join", "O(N/S·M)", func() error {
			_, err := exec.Join(e, in2, in2, 0, 0, exec.JoinHash, exec.JoinOptions{}, "out")
			return err
		}},
		{"Opaque Join", "O((N+M)log²((N+M)/S))", func() error {
			_, err := exec.Join(e, in2, in2, 0, 0, exec.JoinOpaque, exec.JoinOptions{}, "out")
			return err
		}},
		{"0-OM Join", "O((N+M)log²(N+M))", func() error {
			_, err := exec.Join(e, in2, in2, 0, 0, exec.JoinZeroOM, exec.JoinOptions{}, "out")
			return err
		}},
	}
	for _, s := range steps {
		if err := run(s.name, s.complexity, s.f); err != nil {
			return err
		}
	}
	tp.render(o.Out)
	o.printf("  (selects over %d rows selecting %d; joins %d⋈%d)\n\n", n, outSize, n2, n2)
	return nil
}

// RunFig6 materializes the datasets of Figure 6 and reports their shape.
func RunFig6(o Options) error {
	o.printf("Figure 6: datasets\n")
	g := bdb.Scaled(o.scale(), o.seed())
	ranks := g.GenRankings()
	visits := g.GenUserVisits()
	q1 := 0
	for _, r := range ranks {
		if bdb.Q1Pred(r) {
			q1++
		}
	}
	q3 := 0
	prefixes := map[string]bool{}
	for _, v := range visits {
		if bdb.Q3DatePred(v) {
			q3++
		}
		prefixes[bdb.Q2GroupKey(v).AsString()] = true
	}
	tp := newTable("Table", "Rows", "Paper rows", "Notes")
	tp.addf("RANKINGS", len(ranks), bdb.PaperRankings,
		fmt.Sprintf("pageRank>%d matches %d (%.1f%%)", bdb.Q1Param, q1, 100*float64(q1)/float64(len(ranks))))
	tp.addf("USERVISITS", len(visits), bdb.PaperUserVisits,
		fmt.Sprintf("%d Q2 groups; Q3 window keeps %d (%.1f%%)", len(prefixes), q3, 100*float64(q3)/float64(len(visits))))
	tp.render(o.Out)
	o.printf("\n")
	return nil
}

// opaqueBDB holds the Opaque comparator's copies of the BDB tables.
type opaqueBDB struct {
	e      *enclaveHandle
	ranks  *storage.Flat
	visits *storage.Flat
}

// enclaveHandle lets the harness talk about Opaque's enclave uniformly.
type enclaveHandle struct{ db *core.DB }

func newOpaqueBDB(o Options, budget int, g bdb.Gen) (*opaqueBDB, error) {
	db := core.MustOpen(core.Config{ObliviousMemory: budget, Seed: o.seed()})
	if err := bdb.Load(db, g, bdb.LoadOptions{RankingsKind: core.KindFlat}); err != nil {
		return nil, err
	}
	rt, _ := db.Table("rankings")
	vt, _ := db.Table("uservisits")
	return &opaqueBDB{e: &enclaveHandle{db: db}, ranks: rt.Flat(), visits: vt.Flat()}, nil
}

func (ob *opaqueBDB) q1() error {
	in := exec.FromFlat(ob.ranks)
	st, err := planner.ScanStats(in, bdb.Q1Pred)
	if err != nil {
		return err
	}
	_, err = opaque.Select(ob.e.db.Enclave(), in, bdb.Q1Pred, st.Matching, "oq1")
	return err
}

func (ob *opaqueBDB) q2() error {
	_, err := opaque.GroupAggregate(ob.e.db.Enclave(), exec.FromFlat(ob.visits), table.All,
		bdb.Q2GroupKey, []exec.AggSpec{{Kind: exec.AggSum, Col: 3}}, "oq2")
	return err
}

func (ob *opaqueBDB) q3() error {
	e := ob.e.db.Enclave()
	vin := exec.FromFlat(ob.visits)
	st, err := planner.ScanStats(vin, bdb.Q3DatePred)
	if err != nil {
		return err
	}
	filtered, err := opaque.Select(e, vin, bdb.Q3DatePred, st.Matching, "oq3.filter")
	if err != nil {
		return err
	}
	joined, err := opaque.Join(e, exec.FromFlat(ob.ranks), exec.FromFlat(filtered), 0, 1, "oq3.join")
	if err != nil {
		return err
	}
	ipCol := joined.Schema().ColIndex("sourceIP")
	revCol := joined.Schema().ColIndex("adRevenue")
	_, err = opaque.GroupAggregate(e, exec.FromFlat(joined), table.All,
		func(r table.Row) table.Value { return r[ipCol] },
		[]exec.AggSpec{{Kind: exec.AggSum, Col: revCol}}, "oq3.group")
	return err
}

// RunFig7 reproduces the Big Data Benchmark comparison (Figure 7):
// Opaque's oblivious mode vs ObliDB (flat), ObliDB with an index, and the
// no-security executor, on Q1–Q3.
func RunFig7(o Options) error {
	o.printf("Figure 7: Big Data Benchmark, Q1–Q3\n")
	g := bdb.Scaled(o.scale(), o.seed())

	// Opaque.
	ob, err := newOpaqueBDB(o, o.opaqueMemory(), g)
	if err != nil {
		return err
	}
	// ObliDB flat (Continuous disabled for leakage parity with Opaque,
	// §7.1) and ObliDB with an index on pageRank.
	flatDB := core.MustOpen(core.Config{
		ObliviousMemory: o.obliviousMemory(), Seed: o.seed(),
		Planner: planner.Config{DisableContinuous: true},
	})
	if err := bdb.Load(flatDB, g, bdb.LoadOptions{RankingsKind: core.KindFlat}); err != nil {
		return err
	}
	idxDB := core.MustOpen(core.Config{
		ObliviousMemory: o.obliviousMemory(), Seed: o.seed(),
		Planner: planner.Config{DisableContinuous: true},
	})
	if err := bdb.Load(idxDB, g, bdb.LoadOptions{RankingsKind: core.KindBoth}); err != nil {
		return err
	}
	// Spark SQL stand-in.
	plainRanks := baseline.NewPlainTable(bdb.RankingsSchema())
	plainRanks.Insert(g.GenRankings()...)
	plainVisits := baseline.NewPlainTable(bdb.UserVisitsSchema())
	plainVisits.Insert(g.GenUserVisits()...)

	type sys struct {
		name string
		q    [3]func() error
	}
	systems := []sys{
		{"Opaque Oblivious", [3]func() error{ob.q1, ob.q2, ob.q3}},
		{"ObliDB (no index)", [3]func() error{
			func() error { _, err := bdb.Q1(flatDB, false); return err },
			func() error { _, err := bdb.Q2(flatDB); return err },
			func() error { _, err := bdb.Q3Into(flatDB); return err },
		}},
		{"ObliDB (indexed)", [3]func() error{
			func() error { _, err := bdb.Q1(idxDB, true); return err },
			func() error { _, err := bdb.Q2(idxDB); return err },
			func() error { _, err := bdb.Q3Into(idxDB); return err },
		}},
		{"Spark SQL (plain)", [3]func() error{
			func() error { plainRanks.Select(bdb.Q1Pred); return nil },
			func() error {
				plainVisits.GroupSum(table.All, func(r table.Row) string { return bdb.Q2GroupKey(r).AsString() }, 3)
				return nil
			},
			func() error {
				f := baseline.NewPlainTable(bdb.UserVisitsSchema())
				f.Insert(plainVisits.Select(bdb.Q3DatePred)...)
				joined := baseline.HashJoin(plainRanks, f, 0, 1)
				agg := map[string]float64{}
				for _, r := range joined {
					agg[r[3].AsString()] += r[6].AsFloat()
				}
				return nil
			},
		}},
	}

	times := make([][3]time.Duration, len(systems))
	for i, s := range systems {
		for q := 0; q < 3; q++ {
			d, err := timed(s.q[q])
			if err != nil {
				return fmt.Errorf("fig7 %s Q%d: %w", s.name, q+1, err)
			}
			times[i][q] = d
		}
	}
	tp := newTable("System", "Q1", "Q2", "Q3")
	for i, s := range systems {
		tp.addf(s.name, times[i][0], times[i][1], times[i][2])
	}
	tp.render(o.Out)
	o.printf("  Q1 speedup of index over Opaque: %s; over ObliDB flat: %s\n\n",
		ratio(times[0][0], times[2][0]), ratio(times[1][0], times[2][0]))
	return nil
}

// RunFig8 sweeps the oblivious-memory budget for BDB Q3 (Figure 8). The
// budget axis is scaled with the data so the budget-to-table ratio
// matches the paper's 6–20 MB against 360 k rows.
func RunFig8(o Options) error {
	o.printf("Figure 8: Q3 runtime vs oblivious memory budget\n")
	g := bdb.Scaled(o.scale(), o.seed())
	tp := newTable("Budget", "ObliDB", "join chunks", "Opaque")
	for mb := 6; mb <= 20; mb += 2 {
		budget := int(float64(mb<<20) * o.scale())
		if budget < 64<<10 {
			budget = 64 << 10
		}
		db := core.MustOpen(core.Config{ObliviousMemory: budget, Seed: o.seed()})
		if err := bdb.Load(db, g, bdb.LoadOptions{RankingsKind: core.KindFlat}); err != nil {
			return err
		}
		dOblidb, err := timed(func() error { _, err := bdb.Q3Into(db); return err })
		if err != nil {
			return fmt.Errorf("fig8 oblidb %dMB: %w", mb, err)
		}
		rt, _ := db.Table("rankings")
		buildRows := budget / rt.Schema().RecordSize()
		chunks := (rt.NumRows() + buildRows - 1) / max(1, buildRows)

		ob, err := newOpaqueBDB(o, budget, g)
		if err != nil {
			return err
		}
		dOpaque, err := timed(ob.q3)
		if err != nil {
			return fmt.Errorf("fig8 opaque %dMB: %w", mb, err)
		}
		tp.addf(fmt.Sprintf("%2dMB×%.2g", mb, o.scale()), dOblidb, chunks, dOpaque)
	}
	tp.render(o.Out)
	o.printf("\n")
	return nil
}

// RunFig9 compares point operations across ObliDB's oblivious index, the
// HIRB+vORAM map, and a plain B+ tree (Figure 9), with 64-byte entries as
// in the paper.
func RunFig9(o Options) error {
	o.printf("Figure 9: point operations — HIRB vs ObliDB vs plain B+ tree\n")
	sizes := []int{o.n(10000), o.n(100000), o.n(1000000)}
	schema := table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindString, Width: 54}, // 64 B records
	)
	value := func(k int64) table.Row {
		return table.Row{table.Int(k), table.Str(fmt.Sprintf("%054d", k))}
	}
	const reps = 10
	tp := newTable("Rows", "Op", "HIRB", "ObliDB", "PlainBT", "HIRB/ObliDB")
	for _, n := range sizes {
		e := core.MustOpen(core.Config{ObliviousMemory: 64 << 20, Seed: o.seed()}).Enclave()
		tree, err := obtree.New(e, "idx", schema, 0, n+reps+8, obtree.Options{})
		if err != nil {
			return err
		}
		rows := make([]table.Row, n)
		keys := make([]int64, n)
		vals := make([][]byte, n)
		for i := 0; i < n; i++ {
			rows[i] = value(int64(i))
			keys[i] = int64(i)
			v := make([]byte, 64)
			binary.LittleEndian.PutUint64(v, uint64(i))
			vals[i] = v
		}
		if err := tree.BulkLoad(rows); err != nil {
			return err
		}
		hm, err := hirb.New(e, "hirb", n+reps+8, 64)
		if err != nil {
			return err
		}
		if err := hm.BulkLoad(keys, vals); err != nil {
			return err
		}
		bt := baseline.NewPlainBTree(64)
		for i := 0; i < n; i++ {
			bt.Put(keys[i], vals[i])
		}

		next := int64(n)
		ops := []struct {
			name                 string
			hirbOp, treeOp, btOp func(i int) error
		}{
			{"retrieve",
				func(i int) error { _, _, err := hm.Get(int64(i)); return err },
				func(i int) error { _, _, err := tree.Lookup(int64(i)); return err },
				func(i int) error { bt.Get(int64(i)); return nil }},
			{"insert",
				func(i int) error { return hm.Put(next+int64(i), vals[0]) },
				func(i int) error { return tree.Insert(value(next + int64(i))) },
				func(i int) error { bt.Put(next+int64(i), vals[0]); return nil }},
			{"delete",
				func(i int) error { _, err := hm.Delete(int64(i)); return err },
				func(i int) error { _, err := tree.Delete(int64(i)); return err },
				func(i int) error { bt.Delete(int64(i)); return nil }},
		}
		for _, op := range ops {
			var dh, dt, db time.Duration
			for _, m := range []struct {
				d *time.Duration
				f func(int) error
			}{{&dh, op.hirbOp}, {&dt, op.treeOp}, {&db, op.btOp}} {
				start := time.Now()
				for i := 0; i < reps; i++ {
					if err := m.f(i); err != nil {
						return fmt.Errorf("fig9 %s n=%d: %w", op.name, n, err)
					}
				}
				*m.d = time.Since(start) / reps
			}
			tp.addf(n, op.name, dh, dt, db, ratio(dh, dt))
		}
		tree.Close()
		hm.Close()
	}
	tp.render(o.Out)
	o.printf("\n")
	return nil
}

// RunFig10 compares flat and indexed representations as the retrieved
// fraction grows, plus mutation latencies (Figure 10).
func RunFig10(o Options) error {
	o.printf("Figure 10: flat vs indexed operators\n")
	n := o.n(100000)
	db := core.MustOpen(core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed()})
	if err := workload.Setup(db, "flat_t", core.KindFlat, n); err != nil {
		return err
	}
	if err := workload.Setup(db, "idx_t", core.KindIndexed, n); err != nil {
		return err
	}
	ft, _ := db.Table("flat_t")
	it, _ := db.Table("idx_t")

	tp := newTable("% retrieved", "Select flat", "Select index", "GroupBy flat", "GroupBy index")
	for _, pct := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		hi := int64(float64(n)*pct/100) - 1
		pred := func(r table.Row) bool { k := r[0].AsInt(); return k >= 0 && k <= hi }
		groupKey := func(r table.Row) table.Value { return table.Int(r[0].AsInt() % 8) }
		specs := []core.AggregateSpec{{Kind: exec.AggCount}}
		dsf, err := timed(func() error { _, err := db.SelectTable(ft, pred, core.SelectOptions{}); return err })
		if err != nil {
			return err
		}
		dsi, err := timed(func() error {
			_, err := db.SelectTable(it, pred, core.SelectOptions{KeyRange: &core.KeyRange{Lo: 0, Hi: hi}})
			return err
		})
		if err != nil {
			return err
		}
		dgf, err := timed(func() error { _, err := db.GroupAggregateTable(ft, pred, groupKey, specs, nil); return err })
		if err != nil {
			return err
		}
		dgi, err := timed(func() error {
			_, err := db.GroupAggregateTable(it, pred, groupKey, specs, &core.KeyRange{Lo: 0, Hi: hi})
			return err
		})
		if err != nil {
			return err
		}
		tp.addf(fmt.Sprintf("%.1f%%", pct), dsf, dsi, dgf, dgi)
	}
	tp.render(o.Out)

	tp2 := newTable("Op", "Flat", "Indexed")
	mut := []struct {
		name      string
		flat, idx func() error
	}{
		{"insert",
			func() error { return db.Insert("flat_t", workload.NewRow(int64(n)+5e6)) },
			func() error { return db.Insert("idx_t", workload.NewRow(int64(n)+5e6)) }},
		{"delete",
			func() error { _, err := db.Delete("flat_t", nil, core.Point(5)); return err },
			func() error { _, err := db.Delete("idx_t", nil, core.Point(5)); return err }},
		{"update",
			func() error {
				_, err := db.Update("flat_t", nil, func(r table.Row) table.Row { return r }, core.Point(6))
				return err
			},
			func() error {
				_, err := db.Update("idx_t", nil, func(r table.Row) table.Row { return r }, core.Point(6))
				return err
			}},
	}
	for _, m := range mut {
		df, err := timedN(3, m.flat)
		if err != nil {
			return err
		}
		di, err := timedN(3, m.idx)
		if err != nil {
			return err
		}
		tp2.addf(m.name, df, di)
	}
	tp2.render(o.Out)
	o.printf("  (%d-row tables)\n\n", n)
	return nil
}

// RunFig11 measures point-query latency against table size on the
// oblivious index (Figure 11): polylogarithmic growth.
func RunFig11(o Options) error {
	o.printf("Figure 11: point queries on indexes vs table size\n")
	tp := newTable("Rows", "SELECT", "INSERT", "DELETE")
	const reps = 10
	for _, n := range []int{o.n(10000), o.n(100000), o.n(1000000)} {
		db := core.MustOpen(core.Config{ObliviousMemory: 64 << 20, Seed: o.seed()})
		if err := workload.Setup(db, "t", core.KindIndexed, n); err != nil {
			return err
		}
		t, _ := db.Table("t")
		dSel, err := timedN(reps, func() error {
			_, ok, err := t.Index().Lookup(7)
			if err == nil && !ok {
				return fmt.Errorf("fig11: key 7 missing")
			}
			return err
		})
		if err != nil {
			return err
		}
		next := int64(n + 1000)
		dIns, err := timedN(reps, func() error {
			next++
			return t.Index().Insert(workload.NewRow(next))
		})
		if err != nil {
			return err
		}
		k := int64(100)
		dDel, err := timedN(reps, func() error {
			k++
			_, err := t.Index().Delete(k)
			return err
		})
		if err != nil {
			return err
		}
		tp.addf(n, dSel, dIns, dDel)
	}
	tp.render(o.Out)
	o.printf("\n")
	return nil
}

// RunFig12 runs the L1–L5 mixed workloads over flat, indexed, and
// combined tables, reporting throughput (Figure 12).
func RunFig12(o Options) error {
	o.printf("Figure 12: workload mixes L1–L5 by table type (ops/second)\n")
	rows := o.n(100000)
	const opsPerCell = 30
	tp := newTable("Workload", "Flat", "Indexed", "Both", "best")
	for _, mix := range workload.Mixes {
		var cells [3]float64
		kinds := []core.StorageKind{core.KindFlat, core.KindIndexed, core.KindBoth}
		for ki, kind := range kinds {
			db := core.MustOpen(core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed()})
			if err := workload.Setup(db, "w", kind, rows); err != nil {
				return err
			}
			r := workload.NewRunner(db, "w", rows, o.seed())
			ops := mix.Ops(opsPerCell, o.seed())
			d, err := timed(func() error {
				for _, op := range ops {
					if err := r.RunOp(op); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("fig12 %s/%s: %w", mix.Name, kind, err)
			}
			cells[ki] = float64(opsPerCell) / d.Seconds()
		}
		best := "Flat"
		if cells[1] > cells[0] && cells[1] > cells[2] {
			best = "Indexed"
		} else if cells[2] > cells[0] {
			best = "Both"
		}
		tp.addf(mix.Name,
			fmt.Sprintf("%.1f", cells[0]), fmt.Sprintf("%.1f", cells[1]), fmt.Sprintf("%.1f", cells[2]), best)
	}
	tp.render(o.Out)
	o.printf("  (%d-row table, %d ops per cell)\n\n", rows, opsPerCell)
	return nil
}

// RunFig13 shows planner effectiveness (Figure 13): each applicable
// SELECT algorithm forced, against the planner's pick, for 5%/95%
// selectivity in scattered and contiguous layouts.
func RunFig13(o Options) error {
	o.printf("Figure 13: query planner effectiveness\n")
	n := o.n(100000)
	// A buffer near 1.5% of the table reproduces the paper's operating
	// point, where the Small select needs multiple passes for anything
	// but small outputs and each algorithm has a regime it wins. The
	// table is exactly full: selectivity fractions are of |T| in blocks,
	// as in the paper's scenarios.
	budget := n * workload.Schema().RecordSize() * 15 / 1000
	db := core.MustOpen(core.Config{ObliviousMemory: budget, Seed: o.seed()})
	if _, err := db.CreateTable("t", workload.Schema(), core.TableOptions{Capacity: n}); err != nil {
		return err
	}
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = workload.NewRow(int64(i))
	}
	if err := db.BulkLoad("t", rows); err != nil {
		return err
	}
	t, _ := db.Table("t")

	scenario := func(pct int, contiguous bool) (string, table.Pred) {
		count := n * pct / 100
		if contiguous {
			lo := int64(n / 4)
			hi := lo + int64(count) - 1
			return fmt.Sprintf("Cont. %d%%", pct), func(r table.Row) bool {
				k := r[0].AsInt()
				return k >= lo && k <= hi
			}
		}
		if pct > 50 {
			// Scattered high selectivity: everything except every k-th row.
			stride := int64(100 / (100 - pct))
			return fmt.Sprintf("%d%%", pct), func(r table.Row) bool { return r[0].AsInt()%stride != 0 }
		}
		stride := int64(100 / pct)
		return fmt.Sprintf("%d%%", pct), func(r table.Row) bool { return r[0].AsInt()%stride == 0 }
	}

	algs := []exec.SelectAlgorithm{exec.SelectHash, exec.SelectSmall, exec.SelectLarge, exec.SelectContinuous}
	tp := newTable("Scenario", "Hash", "Small", "Large", "Cont.", "Planner pick", "pick time")
	for _, sc := range []struct {
		pct  int
		cont bool
	}{{5, false}, {5, true}, {95, false}, {95, true}} {
		name, pred := scenario(sc.pct, sc.cont)
		cells := make([]string, len(algs))
		for i, alg := range algs {
			if alg == exec.SelectLarge && sc.pct < 50 {
				cells[i] = "n/a"
				continue
			}
			if alg == exec.SelectContinuous && !sc.cont {
				cells[i] = "n/a"
				continue
			}
			a := alg
			d, err := timed(func() error {
				_, err := db.SelectTable(t, pred, core.SelectOptions{Force: &a})
				return err
			})
			if err != nil {
				return fmt.Errorf("fig13 %s/%s: %w", name, alg, err)
			}
			cells[i] = fmtDur(d)
		}
		d, err := timed(func() error {
			_, err := db.SelectTable(t, pred, core.SelectOptions{})
			return err
		})
		if err != nil {
			return err
		}
		tp.add(name, cells[0], cells[1], cells[2], cells[3], db.LastPlan.SelectAlg.String(), fmtDur(d))
	}
	tp.render(o.Out)
	o.printf("  (%d-row table; planner input: output size + contiguity from its stats scan)\n\n", n)
	return nil
}

// RunFig14 reproduces the join grid (Figure 14): foreign-key joins across
// table sizes, oblivious-memory budgets, and all three algorithms, plus
// the planner's pick per cell.
func RunFig14(o Options) error {
	o.printf("Figure 14: foreign-key join algorithms\n")
	pSchema := table.MustSchema(
		table.Column{Name: "pk", Kind: table.KindInt},
		table.Column{Name: "pv", Kind: table.KindString, Width: 24},
	)
	fSchema := table.MustSchema(
		table.Column{Name: "fk", Kind: table.KindInt},
		table.Column{Name: "fv", Kind: table.KindString, Width: 24},
	)
	// The paper's grid is OM ∈ {500, 7500} rows; a third, far smaller
	// budget exhibits the hash/sort-merge crossover, which in this
	// implementation's constants lies below the paper's smallest cell.
	omRows := []int{o.n(250), o.n(5000), o.n(75000)}
	t1s := []int{o.n(50000), o.n(100000)}
	t2s := []int{o.n(1000), o.n(10000), o.n(50000), o.n(100000), o.n(250000)}
	algs := []exec.JoinAlgorithm{exec.JoinHash, exec.JoinOpaque, exec.JoinZeroOM}

	for _, om := range omRows {
		budget := om * pSchema.RecordSize()
		o.printf("  Oblivious memory: %d rows (%d KB)\n", om, budget>>10)
		for _, n1 := range t1s {
			tp := newTable(fmt.Sprintf("T2 (T1=%d)", n1), "Hash", "Opaque", "0-OM", "planner pick")
			for _, n2 := range t2s {
				db := core.MustOpen(core.Config{ObliviousMemory: budget, Seed: o.seed()})
				if err := loadJoinTables(db, pSchema, fSchema, n1, n2); err != nil {
					return err
				}
				cells := make([]string, len(algs))
				for ai, alg := range algs {
					a := alg
					d, err := timed(func() error {
						_, err := db.JoinTable("p", "f", "pk", "fk", core.JoinOptions{Force: &a})
						return err
					})
					if err != nil {
						return fmt.Errorf("fig14 %d/%d/%s: %w", n1, n2, alg, err)
					}
					cells[ai] = fmtDur(d)
				}
				pick := planner.ChooseJoin(db.Enclave(), planner.JoinSizes{
					T1Blocks: n1, T2Blocks: n2,
					BuildRecSize:  pSchema.RecordSize(),
					SortBlockSize: 9 + max(pSchema.RecordSize(), fSchema.RecordSize()),
				})
				tp.add(fmt.Sprintf("%d", n2), cells[0], cells[1], cells[2], pick.String())
			}
			tp.render(o.Out)
		}
	}
	o.printf("\n")
	return nil
}

func loadJoinTables(db *core.DB, pSchema, fSchema *table.Schema, n1, n2 int) error {
	if _, err := db.CreateTable("p", pSchema, core.TableOptions{Capacity: n1 + 1}); err != nil {
		return err
	}
	rows := make([]table.Row, n1)
	for i := range rows {
		rows[i] = table.Row{table.Int(int64(i)), table.Str(fmt.Sprintf("p%020d", i))}
	}
	if err := db.BulkLoad("p", rows); err != nil {
		return err
	}
	if _, err := db.CreateTable("f", fSchema, core.TableOptions{Capacity: n2 + 1}); err != nil {
		return err
	}
	rows = make([]table.Row, n2)
	for i := range rows {
		rows[i] = table.Row{table.Int(int64((i * 7) % n1)), table.Str(fmt.Sprintf("f%020d", i))}
	}
	return db.BulkLoad("f", rows)
}

// RunPadding reproduces the §7.2 padding-mode measurement: CFPB queries
// with intermediate results padded, against normal-mode runs of the same
// physical operator. Pad bounds scale with the table as in the paper:
// 107k rows padded to 200k, grouped aggregates padded to 350k groups.
func RunPadding(o Options) error {
	o.printf("Padding mode (§7.2): CFPB table padded\n")
	n := o.n(bdb.PaperCFPB)
	padRows := n * 200 / 107   // the paper's 107k→200k ratio
	padGroups := n * 350 / 107 // "the maximum supported number of groups"
	rows := bdb.GenCFPB(n, o.seed())

	setup := func(padding bool) (*core.DB, error) {
		cfg := core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed()}
		if padding {
			cfg.Padding = core.PaddingConfig{Enabled: true, PadRows: padRows, PadGroups: padGroups}
		}
		db := core.MustOpen(cfg)
		if _, err := db.CreateTable("cfpb", bdb.CFPBSchema(), core.TableOptions{Capacity: n + 1}); err != nil {
			return nil, err
		}
		return db, db.BulkLoad("cfpb", rows)
	}
	selPred := func(r table.Row) bool { return r[2].AsString() == "CA" }
	groupKey := func(r table.Row) table.Value { return r[1] }
	specs := []core.AggregateSpec{{Kind: exec.AggCount}}

	var selNorm, selPad, aggNorm, aggPad time.Duration
	for _, padding := range []bool{false, true} {
		db, err := setup(padding)
		if err != nil {
			return err
		}
		t, _ := db.Table("cfpb")
		// Padding mode never plans (§2.3); the normal-mode run forces the
		// same general-purpose operator so the slowdown isolates the cost
		// of padding, as in the paper's comparison.
		opts := core.SelectOptions{}
		if !padding {
			hash := exec.SelectHash
			opts.Force = &hash
		}
		dSel, err := timed(func() error { _, err := db.SelectTable(t, selPred, opts); return err })
		if err != nil {
			return fmt.Errorf("padding select (pad=%v): %w", padding, err)
		}
		dAgg, err := timed(func() error { _, err := db.GroupAggregateTable(t, nil, groupKey, specs, nil); return err })
		if err != nil {
			return fmt.Errorf("padding agg (pad=%v): %w", padding, err)
		}
		if padding {
			selPad, aggPad = dSel, dAgg
		} else {
			selNorm, aggNorm = dSel, dAgg
		}
	}
	tp := newTable("Query", "Normal", "Padded", "Slowdown", "paper")
	tp.add("select (state='CA')", fmtDur(selNorm), fmtDur(selPad), ratio(selPad, selNorm), "2.4×")
	tp.add("grouped aggregate", fmtDur(aggNorm), fmtDur(aggPad), ratio(aggPad, aggNorm), "4.4×")
	tp.render(o.Out)
	o.printf("  (%d rows padded to %d; groups padded to %d)\n\n", n, padRows, padGroups)
	return nil
}

// Figures maps experiment ids to runners.
var Figures = map[string]func(Options) error{
	"2":           RunFig2,
	"3":           RunFig3,
	"6":           RunFig6,
	"7":           RunFig7,
	"8":           RunFig8,
	"9":           RunFig9,
	"10":          RunFig10,
	"11":          RunFig11,
	"12":          RunFig12,
	"13":          RunFig13,
	"14":          RunFig14,
	"pad":         RunPadding,
	"abl":         RunAblations,
	"served":      RunServed,
	"parallel":    RunParallel,
	"packing":     RunPacking,
	"indexed":     RunIndexed,
	"concurrency": RunConcurrency,
}

// Order is the canonical run order for RunAll.
var Order = []string{"2", "3", "6", "7", "8", "9", "10", "11", "12", "13", "14", "pad", "abl", "served", "parallel", "packing", "indexed", "concurrency"}

// RunAll executes every experiment.
func RunAll(o Options) error {
	for _, id := range Order {
		if err := Figures[id](o); err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
	}
	return nil
}
