package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/enclave"
	"oblidb/internal/server"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/workload"
)

// This file measures block packing (DESIGN.md §12): the same oblivious
// operations at R = 1 (the paper's one-record-per-block geometry) versus
// packed geometries, where every full-table pass costs one AEAD
// open/seal per sealed block instead of per row. The speedup column is
// part of the bench trajectory future perf PRs compare against
// (BENCH_8.json, which also carries the access-method sweep).

// packingGeometries lists the packing factors the figure sweeps: the
// paper geometry, two fixed intermediate points, and the engine's
// ~4 KiB default for the workload schema.
func packingGeometries() []int {
	def := storage.DefaultRowsPerBlock(workload.Schema())
	gs := []int{1, 4, 16}
	for _, g := range gs {
		if g == def {
			return gs
		}
	}
	if def > 1 {
		gs = append(gs, def)
	}
	return gs
}

// packedTable builds and fills a flat workload table at geometry r.
func packedTable(e *enclave.Enclave, name string, rows, r int) (*storage.Flat, error) {
	f, err := storage.NewFlatGeom(e, name, workload.Schema(), rows, r)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if err := f.InsertFast(workload.NewRow(int64(i))); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// packingCell is one measured (operation, R) point.
type packingCell struct {
	Op      string  `json:"op"`
	Rows    int     `json:"rows"`
	R       int     `json:"rows_per_block"`
	NsPerOp float64 `json:"ns_per_op"`
}

// measurePacking times the scan / select / insert trio at geometry r.
// The select runs through the engine (stats scan + planner + chosen
// operator), exactly the full-table select path queries take; the insert
// is the oblivious full-scan variant (§3.1).
func measurePacking(o Options, rows, r int) ([]packingCell, error) {
	var cells []packingCell

	// Flat scan: the read pass under every aggregate and stats scan.
	e := enclave.MustNew(enclave.Config{Seed: o.seed()})
	f, err := packedTable(e, fmt.Sprintf("pack.r%d", r), rows, r)
	if err != nil {
		return nil, err
	}
	reps := 5
	d, err := timedN(reps, func() error {
		return f.Scan(func(int, table.Row, bool) error { return nil })
	})
	if err != nil {
		return nil, err
	}
	cells = append(cells, packingCell{"flat_scan", rows, r, float64(d.Nanoseconds())})

	// Engine select (~10% selectivity): stats scan + planner + operator.
	db := core.MustOpen(core.Config{Seed: o.seed(), RowsPerBlock: r})
	if err := workload.Setup(db, "t", core.KindFlat, rows); err != nil {
		return nil, err
	}
	tab, err := db.Table("t")
	if err != nil {
		return nil, err
	}
	cut := int64(rows / 10)
	d, err = timedN(reps, func() error {
		_, err := db.SelectTable(tab, func(rw table.Row) bool { return rw[0].AsInt() < cut }, core.SelectOptions{})
		return err
	})
	if err != nil {
		return nil, err
	}
	cells = append(cells, packingCell{"select", rows, r, float64(d.Nanoseconds())})

	// Oblivious insert: one full read+rewrite pass over the table.
	half, err := storage.NewFlatGeom(e, fmt.Sprintf("pack.ins.r%d", r), workload.Schema(), rows, r)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows/2; i++ {
		if err := half.InsertFast(workload.NewRow(int64(i))); err != nil {
			return nil, err
		}
	}
	d, err = timedN(reps, func() error { return half.Insert(workload.NewRow(0)) })
	if err != nil {
		return nil, err
	}
	cells = append(cells, packingCell{"insert", rows, r, float64(d.Nanoseconds())})
	return cells, nil
}

// RunPacking is the "packing" figure: scan, select, and oblivious-insert
// wall time at each geometry, with the speedup over R = 1.
func RunPacking(o Options) error {
	rows := o.n(100000)
	o.printf("Block packing: R rows per sealed block (%d-row table, %d B records)\n",
		rows, workload.Schema().RecordSize())
	cells := map[int][]packingCell{}
	for _, r := range packingGeometries() {
		cs, err := measurePacking(o, rows, r)
		if err != nil {
			return fmt.Errorf("packing R=%d: %w", r, err)
		}
		cells[r] = cs
	}
	base := cells[1]
	tp := newTable("R", "block bytes", "scan", "select", "insert", "scan speedup", "select speedup")
	for _, r := range packingGeometries() {
		cs := cells[r]
		tp.addf(r, workload.Schema().BlockSize(r),
			time.Duration(cs[0].NsPerOp), time.Duration(cs[1].NsPerOp), time.Duration(cs[2].NsPerOp),
			ratio(time.Duration(base[0].NsPerOp), time.Duration(cs[0].NsPerOp)),
			ratio(time.Duration(base[1].NsPerOp), time.Duration(cs[1].NsPerOp)))
	}
	tp.render(o.Out)
	o.printf("  (R=1 is the paper's geometry; the default packs ~4 KiB of plaintext per\n")
	o.printf("   sealed block, dividing AEAD calls, trace events, and allocations per\n")
	o.printf("   full-table pass by R — §3's block is the sealed unit, not the row)\n\n")
	return nil
}

// servedCell is one served-throughput measurement at a geometry.
type servedCell struct {
	R            int     `json:"rows_per_block"`
	Stmts        int     `json:"stmts"`
	StmtsPerSec  float64 `json:"stmts_per_sec"`
	EpochSize    int     `json:"epoch_size"`
	NsPerStmt    float64 `json:"ns_per_stmt"`
	ClientsCount int     `json:"clients"`
}

// measureServed runs the loopback server benchmark at geometry r (0 =
// engine default) and epoch size 8. Alongside the throughput cell it
// returns the server's end-of-run metrics snapshot.
func measureServed(o Options, r int) (servedCell, map[string]any, error) {
	const clients = 4
	const epochSize = 8
	perClient := o.n(200)
	perClient -= perClient % 2
	srv, err := server.New(server.Config{
		Engine:        core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed(), RowsPerBlock: r},
		EpochSize:     epochSize,
		EpochInterval: time.Millisecond,
	})
	if err != nil {
		return servedCell{}, nil, err
	}
	defer srv.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0") }()
	for srv.Addr() == nil {
		select {
		case err := <-serveErr:
			return servedCell{}, nil, err
		default:
			time.Sleep(time.Millisecond)
		}
	}
	addr := srv.Addr().String()
	setup, err := client.Dial(addr)
	if err != nil {
		return servedCell{}, nil, err
	}
	if _, err := setup.Exec(fmt.Sprintf(
		"CREATE TABLE s (k INTEGER, payload VARCHAR(32)) CAPACITY = %d", 4*clients*perClient+64)); err != nil {
		return servedCell{}, nil, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i += 2 {
				k := w*perClient + i
				if _, err := c.Exec(fmt.Sprintf("INSERT INTO s VALUES (%d, 'payload-%016d')", k, k)); err != nil {
					errs <- err
					return
				}
				if _, err := c.Exec(fmt.Sprintf("SELECT COUNT(*) FROM s WHERE k = %d", k)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return servedCell{}, nil, err
		}
	}
	total := clients * perClient
	cell := servedCell{
		R:            r,
		Stmts:        total,
		StmtsPerSec:  float64(total) / elapsed.Seconds(),
		EpochSize:    epochSize,
		NsPerStmt:    float64(elapsed.Nanoseconds()) / float64(total),
		ClientsCount: clients,
	}
	// The full metrics snapshot of the served run: epoch occupancy,
	// padding ratio, enclave I/O, plan-cache behavior — the telemetry a
	// perf PR wants next to the throughput number it changed.
	return cell, srv.Metrics().Snapshot(), nil
}

// BenchReport is the machine-readable perf trajectory one PR leaves for
// the next (BENCH_<n>.json): the packed-storage figures plus served
// throughput at the paper geometry and the default packing.
type BenchReport struct {
	Bench    string        `json:"bench"`
	GOOS     string        `json:"goos"`
	GOARCH   string        `json:"goarch"`
	DefaultR int           `json:"default_rows_per_block"`
	Packing  []packingCell `json:"packing"`
	Served   []servedCell  `json:"served"`
	// Indexed is the access-method figure: point and 1% range reads via
	// flat scan vs the ORAM index across the size sweep, and the
	// point-lookup speedup at the largest size — the number this PR's
	// trajectory pins (flat pays O(n) per point read, the index
	// O(log² n), so the gap widens with n).
	Indexed             []indexedCell `json:"indexed"`
	IndexedPointSpeedup float64       `json:"indexed_point_speedup"`
	// Concurrency is the read-concurrency figure: served read-heavy
	// throughput as Workers sweeps 1 → 8 with a modeled untrusted-store
	// latency (DESIGN.md §16), and the Workers=4 speedup over serial —
	// the number this PR's trajectory pins.
	Concurrency          []concurrencyCell `json:"concurrency"`
	ConcurrencySpeedupW4 float64           `json:"concurrency_speedup_w4"`
	// Metrics is the served run's full metrics snapshot at the default
	// geometry (the same catalog /metrics exposes), so the trajectory
	// records occupancy, padding, enclave I/O, and plan-cache behavior
	// next to the throughput numbers.
	Metrics map[string]any `json:"metrics"`
}

// measureReport runs every trajectory measurement — packing and served
// throughput at R ∈ {1, default}, the access-method sweep, and the read
// concurrency sweep — into one BenchReport.
func measureReport(o Options) (BenchReport, error) {
	def := storage.DefaultRowsPerBlock(workload.Schema())
	rows := o.n(100000)
	rep := BenchReport{
		Bench:    "access-methods",
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		DefaultR: def,
	}
	for _, r := range []int{1, def} {
		cs, err := measurePacking(o, rows, r)
		if err != nil {
			return rep, err
		}
		rep.Packing = append(rep.Packing, cs...)
		sc, snap, err := measureServed(o, r)
		if err != nil {
			return rep, err
		}
		sc.R = r
		rep.Served = append(rep.Served, sc)
		rep.Metrics = snap
	}
	for _, n := range indexedSizes(o) {
		cs, err := measureIndexed(o, n)
		if err != nil {
			return rep, err
		}
		rep.Indexed = append(rep.Indexed, cs...)
		if n == indexedSizes(o)[len(indexedSizes(o))-1] {
			if ip := indexedNs(cs, "point", "indexed"); ip > 0 {
				rep.IndexedPointSpeedup = float64(indexedNs(cs, "point", "flat")) / float64(ip)
			}
		}
	}
	ccells, err := measureConcurrency(o)
	if err != nil {
		return rep, err
	}
	rep.Concurrency = ccells
	for _, c := range ccells {
		if c.Workers == 4 {
			rep.ConcurrencySpeedupW4 = c.Speedup
		}
	}
	return rep, nil
}

// WriteBenchJSON runs the full trajectory measurement and writes
// BENCH_<n>.json-style output to path. CI uploads it as an artifact so
// subsequent PRs have a trajectory to compare against.
func WriteBenchJSON(o Options, path string) error {
	rep, err := measureReport(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	o.printf("wrote %s (default R=%d)\n", path, rep.DefaultR)
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
