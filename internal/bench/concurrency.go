package bench

import (
	"fmt"
	"sync"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/server"
	"oblidb/internal/table"
)

// This file measures engine read concurrency (DESIGN.md §16): served
// read-heavy throughput as server.Config.Workers sweeps 1 → 8, with the
// engine's read-slot context pool sized to match. Every statement is a
// full-scan aggregate over the same flat table, so the epoch scheduler
// fans whole read runs out to concurrent slots while the trace each
// slot emits stays the serial trace.
//
// Untrusted memory is given a modeled per-block access latency
// (core.Config.StoreLatency) for this figure: in a deployed enclave
// every sealed-block access pays an OCALL or storage round trip, and it
// is that waiting — not the AES — which concurrent read slots overlap.
// With the latency at zero the figure would instead measure how many
// cores the host has, which is not this PR's claim.

// concurrencyStoreLatency is the modeled cost of one untrusted
// sealed-block access, applied to every store read and write during the
// sweep. 100µs is a conservative stand-in for an SGX OCALL plus a
// local NVMe or remote-store hop.
const concurrencyStoreLatency = 100 * time.Microsecond

// concurrencyWorkers is the Workers sweep of the figure.
var concurrencyWorkers = []int{1, 2, 4, 8}

// concurrencyCell is one Workers point of the "concurrency" figure, as
// emitted into BENCH_N.json.
type concurrencyCell struct {
	Workers        int     `json:"workers"`
	EpochSize      int     `json:"epoch_size"`
	Clients        int     `json:"clients"`
	Stmts          int     `json:"stmts"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	StmtsPerSec    float64 `json:"stmts_per_sec"`
	Speedup        float64 `json:"speedup_vs_serial"`
	DummyShare     float64 `json:"dummy_share"`
	StoreLatencyUS float64 `json:"store_latency_us"`
}

// concurrencyPoint measures served read-heavy throughput at one worker
// count: a loopback server, a preloaded flat table, and 2× epoch-size
// synchronous clients issuing point-COUNT scans so the queue keeps
// every epoch's slots full.
func concurrencyPoint(o Options, workers, rows, perClient int) (concurrencyCell, error) {
	const epochSize = 8
	clients := 2 * epochSize
	srv, err := server.New(server.Config{
		Engine: core.Config{
			ObliviousMemory: o.obliviousMemory(),
			Seed:            o.seed(),
			StoreLatency:    concurrencyStoreLatency,
		},
		EpochSize:     epochSize,
		EpochInterval: time.Millisecond,
		Workers:       workers,
	})
	if err != nil {
		return concurrencyCell{}, err
	}
	defer srv.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0") }()
	for srv.Addr() == nil {
		select {
		case err := <-serveErr:
			return concurrencyCell{}, err
		default:
			time.Sleep(time.Millisecond)
		}
	}
	addr := srv.Addr().String()

	setup, err := client.Dial(addr)
	if err != nil {
		return concurrencyCell{}, err
	}
	defer setup.Close()
	if _, err := setup.Exec(fmt.Sprintf(
		"CREATE TABLE s (k INTEGER, payload VARCHAR(32)) CAPACITY = %d", rows+64)); err != nil {
		return concurrencyCell{}, err
	}
	// Preload through the engine directly: the figure measures read
	// throughput, not load time.
	preload := make([]table.Row, rows)
	for i := range preload {
		preload[i] = table.Row{table.Int(int64(i)), table.Str(fmt.Sprintf("payload-%016d", i))}
	}
	if err := srv.DB().BulkLoad("s", preload); err != nil {
		return concurrencyCell{}, err
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	base := srv.Stats()
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				k := (w*perClient + i) % rows
				if _, err := c.Exec(fmt.Sprintf("SELECT COUNT(*) FROM s WHERE k = %d", k)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return concurrencyCell{}, err
		}
	}
	st := srv.Stats()
	real, dummy := st.Real-base.Real, st.Dummy-base.Dummy
	total := clients * perClient
	return concurrencyCell{
		Workers:        workers,
		EpochSize:      epochSize,
		Clients:        clients,
		Stmts:          total,
		ElapsedMS:      float64(elapsed.Nanoseconds()) / 1e6,
		StmtsPerSec:    float64(total) / elapsed.Seconds(),
		DummyShare:     float64(dummy) / float64(real+dummy),
		StoreLatencyUS: float64(concurrencyStoreLatency.Microseconds()),
	}, nil
}

// measureConcurrency runs the Workers sweep and fills each cell's
// speedup relative to the serial point.
func measureConcurrency(o Options) ([]concurrencyCell, error) {
	rows := o.n(8000)
	perClient := o.n(120)
	var cells []concurrencyCell
	for _, w := range concurrencyWorkers {
		cell, err := concurrencyPoint(o, w, rows, perClient)
		if err != nil {
			return nil, fmt.Errorf("concurrency workers=%d: %w", w, err)
		}
		if len(cells) > 0 {
			cell.Speedup = cell.StmtsPerSec / cells[0].StmtsPerSec
		} else {
			cell.Speedup = 1
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RunConcurrency is the "concurrency" figure: served read-heavy
// throughput at Workers ∈ {1, 2, 4, 8}.
func RunConcurrency(o Options) error {
	o.printf("Read concurrency: served read-heavy throughput vs epoch workers\n")
	cells, err := measureConcurrency(o)
	if err != nil {
		return err
	}
	tp := newTable("Workers", "Clients", "Stmts", "Elapsed", "Stmts/sec", "Speedup", "Dummy share")
	for _, c := range cells {
		tp.addf(c.Workers, c.Clients, c.Stmts,
			time.Duration(c.ElapsedMS*float64(time.Millisecond)).Round(time.Millisecond),
			fmt.Sprintf("%.0f", c.StmtsPerSec),
			fmt.Sprintf("%.2fx", c.Speedup),
			fmt.Sprintf("%.0f%%", 100*c.DummyShare))
	}
	tp.render(o.Out)
	o.printf("  (loopback TCP, 8-slot 1ms epochs, full-scan COUNT statements over one\n")
	o.printf("   flat table; untrusted block accesses pay a modeled %s host latency,\n", concurrencyStoreLatency)
	o.printf("   which concurrent read slots overlap — DESIGN.md §16)\n\n")
	return nil
}
