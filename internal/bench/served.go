package bench

import (
	"fmt"
	"sync"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/server"
)

// RunServed measures the serving layer: statements per second through
// the network server's epoch scheduler, at epoch sizes 1, 8, and 64,
// with concurrent clients hammering a loopback listener. It is the
// throughput counterpart of the figure experiments: epoch size 1 is the
// no-batching baseline (every statement pays a full epoch), larger
// epochs amortize the fixed cadence across more real work, and the
// dummy column shows what padding the idle slots cost. There is no
// paper figure to match — the paper's engine is a library — but this is
// the number the ROADMAP's production-scale target moves.
func RunServed(o Options) error {
	o.printf("Served throughput: statements/second through the epoch scheduler\n")
	const clients = 4
	interval := time.Millisecond
	perClient := o.n(500)
	perClient -= perClient % 2 // statements issue in insert+select pairs

	type cell struct {
		epochSize, parallelism int
	}
	cells := []cell{
		{1, 1}, {8, 1}, {64, 1},
		// Selection-heavy mixes against a parallel engine: the epoch
		// slots run on a worker pool and each statement's operators
		// partition across the intra-query pool.
		{8, 4}, {64, 4},
	}
	tp := newTable("Epoch size", "P", "Clients", "Stmts", "Elapsed", "Stmts/sec", "Dummy share")
	for _, c := range cells {
		epochSize := c.epochSize
		srv, err := server.New(server.Config{
			Engine:        core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed(), Parallelism: c.parallelism},
			EpochSize:     epochSize,
			EpochInterval: interval,
			Workers:       c.parallelism,
		})
		if err != nil {
			return fmt.Errorf("served: %w", err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0") }()
		for srv.Addr() == nil {
			select {
			case err := <-serveErr:
				srv.Close()
				return fmt.Errorf("served: listen: %w", err)
			default:
				time.Sleep(time.Millisecond)
			}
		}
		addr := srv.Addr().String()

		setup, err := client.Dial(addr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("served: %w", err)
		}
		if _, err := setup.Exec(fmt.Sprintf(
			"CREATE TABLE s (k INTEGER, payload VARCHAR(32)) CAPACITY = %d", 4*clients*perClient+64)); err != nil {
			srv.Close()
			return fmt.Errorf("served: %w", err)
		}

		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := client.Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				// Half writes, half point reads, pipelined in pairs so
				// the epoch's slots can actually fill.
				for i := 0; i < perClient; i += 2 {
					k := w*perClient + i
					pair := make(chan error, 2)
					for _, stmt := range []string{
						fmt.Sprintf("INSERT INTO s VALUES (%d, 'payload-%016d')", k, k),
						fmt.Sprintf("SELECT COUNT(*) FROM s WHERE k = %d", k),
					} {
						go func(stmt string) {
							_, err := c.Exec(stmt)
							pair <- err
						}(stmt)
					}
					for j := 0; j < 2; j++ {
						if err := <-pair; err != nil {
							errs <- err
							return
						}
					}
				}
				errs <- nil
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		for err := range errs {
			if err != nil {
				srv.Close()
				return fmt.Errorf("served (epoch %d): %w", epochSize, err)
			}
		}
		st := srv.Stats()
		srv.Close()

		total := clients * perClient
		dummyShare := float64(st.Dummy) / float64(st.Real+st.Dummy)
		tp.addf(epochSize, c.parallelism, clients, total, elapsed,
			fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
			fmt.Sprintf("%.0f%%", 100*dummyShare))
	}
	tp.render(o.Out)
	o.printf("  (loopback TCP, %s epochs; dummy share is the padding cost of the constant-rate stream)\n\n", interval)
	return nil
}
