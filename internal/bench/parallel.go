package bench

import (
	"fmt"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// RunParallel measures the partition-parallel operators: wall-clock per
// operation at worker-pool sizes 1, 2, 4, and 8, on the operator mix a
// selection-heavy serving workload actually runs (fused aggregates,
// selective Hash selects, near-full Large selects, and the broadcast
// hash join). There is no paper figure to match — the paper's engine is
// single-threaded — but this is the tentpole number for the ROADMAP's
// "as fast as the hardware allows": the dominant per-block cost is
// AES-GCM sealing, which partitions perfectly, so speedup should track
// P until the serial combine step bites.
func RunParallel(o Options) error {
	o.printf("Parallel speedup: operator wall-clock vs worker-pool size P\n")
	rows := o.n(200000)
	ps := []int{1, 2, 4, 8}

	schema := table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindInt},
	)
	smallSchema := table.MustSchema(table.Column{Name: "k", Kind: table.KindInt})

	setup := func(p int) (*core.DB, error) {
		db, err := core.Open(core.Config{ObliviousMemory: o.obliviousMemory(), Seed: o.seed(), Parallelism: p})
		if err != nil {
			return nil, err
		}
		if _, err := db.CreateTable("big", schema, core.TableOptions{Capacity: rows}); err != nil {
			return nil, err
		}
		data := make([]table.Row, rows)
		for i := range data {
			data[i] = table.Row{table.Int(int64(i)), table.Int(int64(i % 100))}
		}
		if err := db.BulkLoad("big", data); err != nil {
			return nil, err
		}
		if _, err := db.CreateTable("small", smallSchema, core.TableOptions{Capacity: 64}); err != nil {
			return nil, err
		}
		keys := make([]table.Row, 64)
		for i := range keys {
			keys[i] = table.Row{table.Int(int64(i))}
		}
		if err := db.BulkLoad("small", keys); err != nil {
			return nil, err
		}
		return db, nil
	}

	hash := exec.SelectHash
	large := exec.SelectLarge
	hashJoin := exec.JoinHash
	selWidth := int64(max(1, rows/100)) // ≈1% of the table matches
	ops := []struct {
		name string
		run  func(db *core.DB) error
	}{
		{"aggregate (fused COUNT+SUM)", func(db *core.DB) error {
			_, err := db.Aggregate("big", func(r table.Row) bool { return r[1].AsInt() < 50 },
				[]core.AggregateSpec{{Kind: exec.AggCount}, {Kind: exec.AggSum, Column: "v"}}, nil)
			return err
		}},
		{fmt.Sprintf("select Hash (|R|=%d)", selWidth), func(db *core.DB) error {
			_, err := db.SelectTable(mustTable(db, "big"),
				func(r table.Row) bool { return r[0].AsInt() < selWidth },
				core.SelectOptions{Force: &hash})
			return err
		}},
		{"select Large (R≈N)", func(db *core.DB) error {
			_, err := db.SelectTable(mustTable(db, "big"),
				func(r table.Row) bool { return r[1].AsInt() >= 0 },
				core.SelectOptions{Force: &large})
			return err
		}},
		{"hash join (64 ⋈ N)", func(db *core.DB) error {
			_, err := db.JoinTable("small", "big", "k", "k", core.JoinOptions{Force: &hashJoin})
			return err
		}},
	}

	times := make(map[string]map[int]time.Duration)
	for _, p := range ps {
		db, err := setup(p)
		if err != nil {
			return fmt.Errorf("parallel: setup P=%d: %w", p, err)
		}
		for _, op := range ops {
			d, err := timedN(2, func() error { return op.run(db) })
			if err != nil {
				return fmt.Errorf("parallel: %s at P=%d: %w", op.name, p, err)
			}
			if times[op.name] == nil {
				times[op.name] = make(map[int]time.Duration)
			}
			times[op.name][p] = d
		}
	}

	tp := newTable("Operation", "P=1", "P=2", "P=4", "P=8", "Speedup @4")
	for _, op := range ops {
		row := times[op.name]
		tp.addf(op.name, row[1], row[2], row[4], row[8], ratio(row[1], row[4]))
	}
	tp.render(o.Out)
	o.printf("  (%d-row table; partitioned execution per core.Config.Parallelism, planner-chosen P capped by the pool)\n\n", rows)
	return nil
}

// mustTable resolves a table handle inside a benchmark op (the tables
// are created by the same run).
func mustTable(db *core.DB, name string) *core.Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}
