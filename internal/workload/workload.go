// Package workload drives the mixed read/write workloads of Figure 12:
// five mixes (L1–L5) of point reads (1 row), small reads (50 rows), large
// reads (5% of the table), insertions, and deletions, executed against a
// table stored flat, indexed, or both, to show when each representation
// — and the combined one — wins.
package workload

import (
	"fmt"
	"math/rand/v2"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// Mix is one workload's operation percentages (Figure 12's table).
type Mix struct {
	Name                            string
	PointRead, SmallRead, LargeRead int
	Insert, Delete                  int
}

// Mixes are the paper's five workloads.
var Mixes = []Mix{
	{Name: "L1", PointRead: 5, LargeRead: 5, Insert: 90},
	{Name: "L2", SmallRead: 90, Insert: 9, Delete: 1},
	{Name: "L3", PointRead: 50, LargeRead: 50},
	{Name: "L4", PointRead: 45, LargeRead: 45, Insert: 5, Delete: 5},
	{Name: "L5", LargeRead: 90, Insert: 5, Delete: 5},
}

// Schema is the benchmark table: an integer key and a fixed payload.
func Schema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "payload", Kind: table.KindString, Width: 32},
	)
}

// NewRow builds one row for key k.
func NewRow(k int64) table.Row {
	return table.Row{table.Int(k), table.Str(fmt.Sprintf("payload-%016d", k))}
}

// Setup creates and loads a workload table named name with keys
// 0..rows-1.
func Setup(db *core.DB, name string, kind core.StorageKind, rows int) error {
	keyCol := ""
	if kind != core.KindFlat {
		keyCol = "k"
	}
	if _, err := db.CreateTable(name, Schema(), core.TableOptions{
		Kind: kind, KeyColumn: keyCol, Capacity: rows + rows/4 + 64,
	}); err != nil {
		return err
	}
	data := make([]table.Row, rows)
	for i := range data {
		data[i] = NewRow(int64(i))
	}
	return db.BulkLoad(name, data)
}

// Runner executes mix operations against one table.
type Runner struct {
	DB      *core.DB
	Name    string
	Rows    int // initial table size; sets read-range spans
	rng     *rand.Rand
	nextKey int64
}

// NewRunner prepares a runner with a deterministic op stream.
func NewRunner(db *core.DB, name string, rows int, seed uint64) *Runner {
	return &Runner{DB: db, Name: name, Rows: rows,
		rng: rand.New(rand.NewPCG(seed, 0x17)), nextKey: int64(rows)}
}

// RunOp executes one operation of the given category. Read results are
// discarded; errors abort the workload.
func (r *Runner) RunOp(category string) error {
	t, err := r.DB.Table(r.Name)
	if err != nil {
		return err
	}
	span := int64(r.Rows)
	switch category {
	case "point":
		k := r.rng.Int64N(span)
		return r.read(t, k, k)
	case "small":
		lo := r.rng.Int64N(span)
		return r.read(t, lo, lo+49)
	case "large":
		width := span / 20 // 5% of the table
		if width < 1 {
			width = 1
		}
		lo := r.rng.Int64N(span)
		return r.read(t, lo, lo+width-1)
	case "insert":
		k := r.nextKey
		r.nextKey++
		return r.DB.Insert(r.Name, NewRow(k))
	case "delete":
		k := r.rng.Int64N(span)
		_, err := r.DB.Delete(r.Name, nil, core.Point(k))
		return err
	}
	return fmt.Errorf("workload: unknown category %q", category)
}

// read selects keys in [lo, hi] through the best available access method:
// the index for point and small reads, the flat representation for large
// ones — the §3.3 rationale for keeping both ("use the index for point
// queries and the flat table for full-table ... queries").
func (r *Runner) read(t *core.Table, lo, hi int64) error {
	opts := core.SelectOptions{}
	pred := func(row table.Row) bool {
		k := row[0].AsInt()
		return k >= lo && k <= hi
	}
	span := hi - lo + 1
	wantIndex := t.Flat() == nil || span <= int64(r.Rows)/10
	if t.Index() != nil && wantIndex {
		opts.KeyRange = &core.KeyRange{Lo: lo, Hi: hi}
	}
	_, err := r.DB.SelectTable(t, pred, opts)
	return err
}

// Ops builds a deterministic operation sequence of length n matching the
// mix's percentages.
func (m Mix) Ops(n int, seed uint64) []string {
	rng := rand.New(rand.NewPCG(seed, 0x23))
	ops := make([]string, n)
	for i := range ops {
		p := rng.IntN(100)
		switch {
		case p < m.PointRead:
			ops[i] = "point"
		case p < m.PointRead+m.SmallRead:
			ops[i] = "small"
		case p < m.PointRead+m.SmallRead+m.LargeRead:
			ops[i] = "large"
		case p < m.PointRead+m.SmallRead+m.LargeRead+m.Insert:
			ops[i] = "insert"
		default:
			ops[i] = "delete"
		}
	}
	return ops
}
