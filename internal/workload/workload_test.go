package workload

import (
	"testing"

	"oblidb/internal/core"
)

func TestMixPercentagesSum(t *testing.T) {
	for _, m := range Mixes {
		total := m.PointRead + m.SmallRead + m.LargeRead + m.Insert + m.Delete
		if total != 100 {
			t.Errorf("%s sums to %d", m.Name, total)
		}
	}
}

func TestOpsDistribution(t *testing.T) {
	m := Mixes[0] // L1: 5/0/5/90/0
	ops := m.Ops(2000, 1)
	counts := map[string]int{}
	for _, op := range ops {
		counts[op]++
	}
	if counts["insert"] < 1600 {
		t.Fatalf("L1 inserts = %d of 2000, want ~1800", counts["insert"])
	}
	if counts["delete"] != 0 {
		t.Fatalf("L1 has deletes: %d", counts["delete"])
	}
	// Deterministic per seed.
	again := m.Ops(2000, 1)
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatal("op stream not deterministic")
		}
	}
}

func TestRunnerAllKindsAllCategories(t *testing.T) {
	for _, kind := range []core.StorageKind{core.KindFlat, core.KindIndexed, core.KindBoth} {
		t.Run(kind.String(), func(t *testing.T) {
			db := core.MustOpen(core.Config{})
			if err := Setup(db, "w", kind, 200); err != nil {
				t.Fatal(err)
			}
			r := NewRunner(db, "w", 200, 3)
			for _, cat := range []string{"point", "small", "large", "insert", "delete"} {
				if err := r.RunOp(cat); err != nil {
					t.Fatalf("%s/%s: %v", kind, cat, err)
				}
			}
			if err := r.RunOp("bogus"); err == nil {
				t.Fatal("unknown category accepted")
			}
		})
	}
}

func TestRunnerMixEndToEnd(t *testing.T) {
	db := core.MustOpen(core.Config{})
	if err := Setup(db, "w", core.KindBoth, 150); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(db, "w", 150, 9)
	for _, op := range Mixes[3].Ops(40, 9) { // L4 exercises everything
		if err := r.RunOp(op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}
