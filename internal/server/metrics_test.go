package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/metrics"
	"oblidb/internal/server"
)

// runOne submits one statement and drives exactly one manual epoch, so
// every server in a comparison sees an identical epoch/slot schedule.
func runOne(t *testing.T, srv *server.Server, exec func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- exec() }()
	for deadline := time.Now().Add(5 * time.Second); srv.Pending() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}
	srv.RunEpoch()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMetricsObliviousness is the leakage pin for the whole metric
// catalog: two served workloads with identical statement shapes, sizes,
// and epoch schedules — but different data values — must produce
// byte-identical /metrics expositions, timing buckets included. Any
// diff means some exported value is a function of data, not of the
// public quantities DESIGN.md §13 allows.
func TestMetricsObliviousness(t *testing.T) {
	fixedKey := make([]byte, 32)
	expositions := make([]string, 2)
	// Same statement text lengths, same matching counts (two rows per
	// bound argument), same result widths — only the values differ.
	workloads := []struct {
		insert string
		arg    int
	}{
		{"INSERT INTO t VALUES (1, 11, 'aa'), (2, 11, 'bb'), (3, 22, 'cc'), (4, 22, 'dd')", 11},
		{"INSERT INTO t VALUES (5, 77, 'ee'), (6, 77, 'ff'), (7, 88, 'gg'), (8, 88, 'hh')", 77},
	}
	for i, w := range workloads {
		srv, addr := startServer(t, server.Config{
			Engine:        core.Config{Key: fixedKey},
			EpochSize:     2,
			EpochInterval: time.Second, // manual epochs finish well within one interval
			Manual:        true,
		})
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		runOne(t, srv, func() error {
			_, err := c.Exec("CREATE TABLE t (id INTEGER, v INTEGER, name VARCHAR(8))")
			return err
		})
		runOne(t, srv, func() error {
			_, err := c.Exec(w.insert)
			return err
		})
		st, err := c.Prepare("SELECT name FROM t WHERE v = $1")
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			runOne(t, srv, func() error {
				res, err := st.Exec(w.arg)
				if err != nil {
					return err
				}
				if len(res.Rows) != 2 {
					t.Errorf("workload %d rep %d: %d rows, want 2", i, rep, len(res.Rows))
				}
				return nil
			})
		}
		// One idle epoch so dummy padding and the padding ratio are
		// exercised too.
		srv.RunEpoch()

		var sb strings.Builder
		if err := srv.Metrics().WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		expositions[i] = sb.String()

		if problems, err := metrics.Lint(strings.NewReader(expositions[i])); err != nil || len(problems) != 0 {
			t.Errorf("workload %d exposition fails lint: %v %v", i, problems, err)
		}
		c.Close()
		srv.Close()
	}
	if expositions[0] != expositions[1] {
		t.Fatalf("metrics depend on data values:\n--- workload 0 ---\n%s\n--- workload 1 ---\n%s",
			expositions[0], expositions[1])
	}
	// Guard against a vacuous pass: the exposition must show real work.
	for _, want := range []string{
		"oblidb_epochs_total 6",
		`oblidb_statements_total{kind="select"} 3`,
		"oblidb_statements_dummy_total",
		"oblidb_enclave_blocks_sealed_total",
	} {
		if !strings.Contains(expositions[0], want) {
			t.Errorf("exposition missing %q:\n%s", want, expositions[0])
		}
	}
}

// TestDebugEndpoint scrapes a live debug listener: /metrics must be a
// lint-clean Prometheus exposition, /debug/vars valid JSON, and the
// pprof index reachable. Close must take the listener down with the
// server.
func TestDebugEndpoint(t *testing.T) {
	srv, addr := startServer(t, server.Config{EpochSize: 2, EpochInterval: time.Millisecond})
	dbgAddr, err := srv.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE TABLE d (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + dbgAddr.String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if problems, err := metrics.Lint(bytes.NewReader(body)); err != nil || len(problems) != 0 {
		t.Fatalf("/metrics fails lint: %v %v", problems, err)
	}
	if !strings.Contains(string(body), "oblidb_epochs_total") {
		t.Fatalf("/metrics missing catalog:\n%s", body)
	}

	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := snap["oblidb_epochs_total"]; !ok {
		t.Fatalf("/debug/vars missing oblidb_epochs_total: %v", snap)
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", resp.StatusCode)
	}

	c.Close()
	srv.Close()
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("debug listener still serving after Close")
	}
}

// TestSlowStatementLog pins the slow-statement path: a statement that
// waits past the threshold increments the counter and is logged by its
// literal-free shape — the log line must carry ? placeholders, never
// the statement's literals.
func TestSlowStatementLog(t *testing.T) {
	var logBuf bytes.Buffer
	srv, addr := startServer(t, server.Config{
		EpochSize:           1,
		EpochInterval:       time.Second,
		Manual:              true,
		SlowStatementEpochs: 1,
		Logger:              slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	runOne(t, srv, func() error {
		_, err := c.Exec("CREATE TABLE s (id INTEGER)")
		return err
	})
	// Two statements into one-slot epochs: the second sits through a
	// full epoch before executing, so it waits 1 epoch ≥ threshold.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Exec("SELECT COUNT(*) FROM s WHERE id = 4242")
			done <- err
		}()
	}
	for deadline := time.Now().Add(5 * time.Second); srv.Pending() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("statements never queued")
		}
		time.Sleep(time.Millisecond)
	}
	srv.RunEpoch()
	srv.RunEpoch()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := srv.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "oblidb_slow_statements_total 1") {
		t.Errorf("slow counter not incremented:\n%s", sb.String())
	}
	// Read the log only after Close: the session goroutines log lines
	// as they unwind, and Close waiting them out is the happens-before
	// edge that makes the buffer safe to read.
	c.Close()
	srv.Close()
	logged := logBuf.String()
	if !strings.Contains(logged, "slow statement") {
		t.Fatalf("no slow-statement log line:\n%s", logged)
	}
	if strings.Contains(logged, "4242") {
		t.Fatalf("slow-statement log leaked a literal:\n%s", logged)
	}
	if !strings.Contains(logged, "?") {
		t.Fatalf("slow-statement log shape has no placeholder:\n%s", logged)
	}
}

// TestConnStats pins the client's local counters: frames and bytes in
// both directions, pending, and the sticky last error after the server
// goes away.
func TestConnStats(t *testing.T) {
	srv, addr := startServer(t, server.Config{EpochSize: 2, EpochInterval: time.Millisecond})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.FramesSent != 0 || st.FramesReceived != 0 || st.LastError != "" {
		t.Fatalf("fresh connection has non-zero stats: %+v", st)
	}
	if _, err := c.Exec("CREATE TABLE cs (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO cs VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.FramesSent != 2 || st.FramesReceived != 2 {
		t.Fatalf("frames sent/received = %d/%d, want 2/2", st.FramesSent, st.FramesReceived)
	}
	if st.BytesWritten == 0 || st.BytesRead == 0 {
		t.Fatalf("byte counters not moving: %+v", st)
	}
	if st.Pending != 0 || st.LastError != "" {
		t.Fatalf("healthy idle connection: %+v", st)
	}
	srv.Close()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if _, err := c.Exec("SELECT COUNT(*) FROM cs"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("exec kept succeeding after server close")
		}
	}
	for deadline := time.Now().Add(5 * time.Second); c.Stats().LastError == ""; {
		if time.Now().After(deadline) {
			t.Fatal("last error never recorded after connection loss")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
}

// TestStatsMetricsJSON checks the wire.Stats v3 extension end to end:
// client.ServerStats carries the same snapshot the registry renders.
func TestStatsMetricsJSON(t *testing.T) {
	srv, addr := startServer(t, server.Config{EpochSize: 2, EpochInterval: time.Millisecond})
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE mj (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MetricsJSON == "" {
		t.Fatal("v3 server returned no MetricsJSON")
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(st.MetricsJSON), &snap); err != nil {
		t.Fatalf("MetricsJSON not JSON: %v", err)
	}
	for _, key := range []string{"oblidb_epochs_total", "oblidb_statements_total", "oblidb_enclave_blocks_sealed_total"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("MetricsJSON missing %q", key)
		}
	}
	if epochs, ok := snap["oblidb_epochs_total"].(float64); !ok || uint64(epochs) > st.Epochs {
		// The snapshot is taken inside the same Stats call; it can only
		// trail the header counter, never lead it.
		t.Errorf("snapshot epochs %v inconsistent with header %d", snap["oblidb_epochs_total"], st.Epochs)
	}
}
