package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/oberr"
	"oblidb/internal/sql"
	"oblidb/internal/table"
	"oblidb/internal/wire"
)

// outBuffer is how many responses a session may leave unread before the
// server declares it a slow consumer and drops it. The epoch scheduler
// never blocks on a client socket: replies go through this buffer and a
// per-session writer goroutine, so one stalled client cannot stall the
// epoch cadence — or other clients — by not reading.
const outBuffer = 256

// session is one client connection. A single reader goroutine decodes
// frames and either answers directly (Prepare, Stats — neither touches
// the engine) or queues a job for the epoch scheduler; all responses
// funnel through the out channel to a single writer goroutine.
type session struct {
	srv  *Server
	conn net.Conn

	out        chan *wire.Response
	readDone   chan struct{} // closed when the reader loop exits
	closing    chan struct{} // closed by Server.Close: flush out, then hang up
	writerDone chan struct{} // closed when the writer goroutine exits

	// prepared is touched only by the reader goroutine. Each entry is a
	// statement shape whose parse and compiled plan are shared through
	// the executor's shape-keyed cache; arity is checked against every
	// execution's bound arguments before the statement reaches an epoch
	// slot.
	prepared   map[uint32]*sql.Prepared
	nextHandle uint32

	// tx is this session's transaction state, touched only by the reader
	// goroutine: writes between BEGIN and COMMIT are buffered here and
	// handed to the engine as one atomic epoch-slot job at COMMIT. Reads
	// inside a transaction run immediately against the pre-transaction
	// snapshot (see internal/sql's transaction notes). Dropping the
	// connection abandons the buffer — an implicit rollback.
	tx sql.TxState

	closeOnce sync.Once
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		srv:        s,
		conn:       conn,
		out:        make(chan *wire.Response, outBuffer),
		readDone:   make(chan struct{}),
		closing:    make(chan struct{}),
		writerDone: make(chan struct{}),
		prepared:   make(map[uint32]*sql.Prepared),
	}
}

// serve runs the reader loop until the connection drops or the server
// closes it.
func (ss *session) serve() {
	ss.srv.log.Info("session connected", "remote", ss.conn.RemoteAddr().String())
	defer ss.srv.log.Info("session closed", "remote", ss.conn.RemoteAddr().String())
	defer ss.srv.dropSession(ss)
	defer ss.close()
	defer close(ss.readDone)
	// A connection that drops with a transaction open abandons its
	// buffered writes — an implicit rollback, counted like an explicit
	// one. tx is owned by this (reader) goroutine, so the defer is the
	// one safe place to account it.
	defer func() {
		if ss.tx.Active() {
			if err := ss.tx.Rollback(); err == nil {
				ss.srv.m.txRolledBack.Inc()
			}
		}
	}()
	go ss.writer()
	for {
		payload, err := wire.ReadFrame(ss.conn)
		if err != nil {
			return
		}
		ss.srv.m.bytesIn.Add(uint64(len(payload)) + 4)
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// Undecodable frame: the stream is unsynchronized, drop it.
			ss.srv.m.framesIn.WithCounter("unknown").Inc()
			ss.srv.log.Warn("bad frame", "remote", ss.conn.RemoteAddr().String(), "err", err)
			return
		}
		ss.srv.m.framesIn.WithCounter(frameTypeName(req.Type)).Inc()
		ss.handle(req)
	}
}

// writeResp encodes and writes one response frame, counting it. With
// WriteDeadline configured, a client that stops draining its socket
// fails the write within the deadline and is evicted, instead of
// holding the writer goroutine (and its buffered responses) forever.
func (ss *session) writeResp(r *wire.Response) error {
	payload := wire.EncodeResponse(r)
	if d := ss.srv.cfg.WriteDeadline; d > 0 {
		_ = ss.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := wire.WriteFrame(ss.conn, payload); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			ss.srv.m.sessionsEvicted.Inc()
			ss.srv.log.Warn("evicting stalled client",
				"remote", ss.conn.RemoteAddr().String(), "deadline", ss.srv.cfg.WriteDeadline)
		}
		return err
	}
	ss.srv.m.framesOut.WithCounter(frameTypeName(r.Type)).Inc()
	ss.srv.m.bytesOut.Add(uint64(len(payload)) + 4)
	return nil
}

// closeFlushDeadline bounds the graceful-shutdown flush: a client that
// has stopped reading cannot hold Server.Close hostage past it.
const closeFlushDeadline = 5 * time.Second

// writer drains the out channel onto the socket. After the reader
// exits it flushes what is already queued, then stops. On graceful
// shutdown (closing) the writer owns the hang-up ordering: every reply
// the drain queued is flushed to the socket *before* the connection
// closes, so a statement answered by the final epochs is never lost to
// a close/flush race.
func (ss *session) writer() {
	defer close(ss.writerDone)
	for {
		select {
		case r := <-ss.out:
			if err := ss.writeResp(r); err != nil {
				ss.close()
				return
			}
		case <-ss.readDone:
			ss.flush()
			return
		case <-ss.closing:
			_ = ss.conn.SetWriteDeadline(time.Now().Add(closeFlushDeadline))
			ss.flush()
			ss.close()
			return
		}
	}
}

// flush writes everything already queued, stopping at the first write
// error (the connection is dead; the remaining replies have no reader).
func (ss *session) flush() {
	for {
		select {
		case r := <-ss.out:
			if err := ss.writeResp(r); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (ss *session) handle(req *wire.Request) {
	switch req.Type {
	case wire.TExec:
		prep, err := ss.srv.exec.PrepareOneShot(req.SQL)
		if err == nil {
			err = checkReserved(prep.Stmt())
		}
		if err == nil && prep.NumParams() > 0 {
			// A one-shot Exec has nowhere to bind arguments from;
			// placeholder statements must go through Prepare.
			err = fmt.Errorf("server: statement has parameters; prepare it and execute with arguments")
		}
		if err != nil {
			ss.send(errResp(req.ID, err))
			return
		}
		ss.route(req.ID, prep, nil)
	case wire.TPrepare:
		prep, err := ss.srv.exec.Prepare(req.SQL)
		if err == nil {
			err = checkReserved(prep.Stmt())
		}
		if err != nil {
			ss.send(errResp(req.ID, err))
			return
		}
		ss.nextHandle++
		ss.prepared[ss.nextHandle] = prep
		ss.send(&wire.Response{Type: wire.TPrepared, ID: req.ID,
			Handle: ss.nextHandle, NumParams: uint32(prep.NumParams())})
	case wire.TExecPrepared:
		ps, ok := ss.prepared[req.Handle]
		if !ok {
			ss.send(&wire.Response{Type: wire.TError, ID: req.ID,
				Err: fmt.Sprintf("server: no prepared statement %d", req.Handle)})
			return
		}
		if len(req.Args) != ps.NumParams() {
			ss.send(&wire.Response{Type: wire.TError, ID: req.ID,
				Err: fmt.Sprintf("server: statement has %d parameter(s), got %d argument(s)",
					ps.NumParams(), len(req.Args))})
			return
		}
		ss.route(req.ID, ps, req.Args)
	case wire.TClosePrepared:
		delete(ss.prepared, req.Handle)
	case wire.TStats:
		ss.send(&wire.Response{Type: wire.TStatsResult, ID: req.ID, Stats: ss.srv.Stats()})
	case wire.TBegin:
		ss.begin(req.ID)
	case wire.TCommit:
		ss.commit(req.ID)
	case wire.TRollback:
		ss.rollback(req.ID)
	default:
		ss.send(&wire.Response{Type: wire.TError, ID: req.ID,
			Err: fmt.Sprintf("server: unknown request type %d", req.Type)})
	}
}

// checkReserved rejects DDL and mutations against the server-owned pad
// table: a client that could drop or rewrite it would silently disable
// the dummy padding the leakage model depends on. Reads are allowed —
// they are exactly what the dummy statement itself does.
func checkReserved(stmt sql.Statement) error {
	var name string
	switch s := stmt.(type) {
	case *sql.CreateTable:
		name = s.Name
	case *sql.Insert:
		name = s.Name
	case *sql.Update:
		name = s.Name
	case *sql.Delete:
		name = s.Name
	case *sql.DropTable:
		name = s.Name
	}
	if strings.EqualFold(name, padTable) {
		return fmt.Errorf("server: table %q is reserved", padTable)
	}
	return nil
}

// route dispatches a checked statement: transaction control runs here
// in the session (BEGIN/ROLLBACK never touch the engine; COMMIT becomes
// one epoch-slot job), writes inside an open transaction are buffered,
// and everything else — including reads inside a transaction, which see
// the pre-transaction snapshot — takes the normal epoch path.
func (ss *session) route(id uint32, prep *sql.Prepared, args []table.Value) {
	stmt := prep.Stmt()
	switch {
	case sql.IsBegin(stmt):
		ss.begin(id)
	case sql.IsCommit(stmt):
		ss.commit(id)
	case sql.IsRollback(stmt):
		ss.rollback(id)
	case ss.tx.Active() && sql.IsDDL(stmt):
		ss.send(&wire.Response{Type: wire.TError, ID: id,
			Err: "server: DDL cannot run inside a transaction"})
	case ss.tx.Active() && sql.IsWrite(stmt):
		if err := ss.tx.Buffer(prep, args); err != nil {
			ss.send(errResp(id, err))
			return
		}
		// Deferred writes acknowledge 0 affected rows at buffer time; the
		// COMMIT result carries the transaction's total.
		ss.ack(id)
	default:
		ss.enqueue(id, prep, args)
	}
}

// begin opens this session's transaction.
func (ss *session) begin(id uint32) {
	if err := ss.tx.Begin(); err != nil {
		ss.send(errResp(id, err))
		return
	}
	ss.srv.m.txBegun.Inc()
	ss.ack(id)
}

// commit queues the buffered writes as one atomic epoch-slot job. An
// empty transaction still rides a slot, so commits look alike.
func (ss *session) commit(id uint32) {
	items, err := ss.tx.Take()
	if err != nil {
		ss.send(errResp(id, err))
		return
	}
	if err := ss.srv.submit(&job{sess: ss, id: id, commit: true, txItems: items}); err != nil {
		ss.send(errResp(id, err))
	}
}

// rollback discards the buffered writes.
func (ss *session) rollback(id uint32) {
	if err := ss.tx.Rollback(); err != nil {
		ss.send(errResp(id, err))
		return
	}
	ss.srv.m.txRolledBack.Inc()
	ss.ack(id)
}

// ack answers a session-level statement with the zero-affected result.
func (ss *session) ack(id uint32) {
	ss.send(&wire.Response{Type: wire.TResult, ID: id, Result: &wire.Result{
		Cols: []string{"affected"}, Rows: []table.Row{{table.Int(0)}}, Affected: true}})
}

// enqueue hands a prepared statement and its bound arguments to the
// scheduler.
func (ss *session) enqueue(id uint32, prep *sql.Prepared, args []table.Value) {
	if err := ss.srv.submit(&job{sess: ss, id: id, prep: prep, args: args}); err != nil {
		ss.send(errResp(id, err))
	}
}

// errResp builds a TError frame carrying the error's stable code (the
// wire v5 extension), so clients can branch on retriability without
// parsing message strings. Untyped errors carry code 0 (unknown) —
// never retriable.
func errResp(id uint32, err error) *wire.Response {
	return &wire.Response{Type: wire.TError, ID: id,
		Err: err.Error(), ErrCode: uint16(oberr.CodeOf(err))}
}

// reply delivers an epoch slot's outcome to the client.
func (ss *session) reply(id uint32, res *core.Result, err error) {
	if err != nil {
		ss.send(errResp(id, err))
		return
	}
	wres := &wire.Result{}
	if res != nil {
		wres.Cols = res.Cols
		wres.Rows = res.Rows
		wres.Affected = res.Affected
	}
	ss.send(&wire.Response{Type: wire.TResult, ID: id, Result: wres})
}

// send queues a response for the writer goroutine. It never blocks: a
// session whose buffer is full has stopped reading, and is dropped
// rather than allowed to stall the caller (which may be the epoch
// scheduler).
func (ss *session) send(r *wire.Response) {
	select {
	case ss.out <- r:
	default:
		ss.srv.m.sessionsEvicted.Inc()
		ss.srv.log.Warn("dropping slow client", "remote", ss.conn.RemoteAddr().String())
		ss.close()
	}
}

// close tears the connection down, unblocking the reader and writer.
func (ss *session) close() {
	ss.closeOnce.Do(func() { ss.conn.Close() })
}

// beginShutdown asks the writer to flush queued replies and then hang
// up; writerDone reports when it has. Called once, by Server.Close.
func (ss *session) beginShutdown() {
	close(ss.closing)
}
