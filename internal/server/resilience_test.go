package server_test

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/oberr"
	"oblidb/internal/server"
	"oblidb/internal/table"
	"oblidb/internal/wire"
)

// rawConn is a frame-level test client: it speaks the wire protocol
// directly so tests can observe error codes and response ordering
// without the client package's retry machinery in the way.
type rawConn struct {
	t *testing.T
	c net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c}
}

func (r *rawConn) send(req *wire.Request) {
	r.t.Helper()
	if err := wire.WriteFrame(r.c, wire.EncodeRequest(req)); err != nil {
		r.t.Fatalf("send: %v", err)
	}
}

func (r *rawConn) recv() *wire.Response {
	r.t.Helper()
	payload, err := wire.ReadFrame(r.c)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		r.t.Fatalf("decode: %v", err)
	}
	return resp
}

// waitPending blocks until at least n statements are queued for future
// epochs — manual-mode tests need the session reader to have submitted
// before they drive an epoch.
func waitPending(t *testing.T, srv *server.Server, n int) {
	t.Helper()
	for i := 0; srv.Pending() < n; i++ {
		if i > 2000 {
			t.Fatalf("only %d of %d statements queued", srv.Pending(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionOverloadTyped pins bounded admission: with a full queue
// that no epoch drains (Manual mode), a submission waits only
// AdmissionTimeout and is then rejected with the typed, retriable
// overload code — never an unbounded stall, never a silent drop.
func TestAdmissionOverloadTyped(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Manual:           true,
		MaxPending:       1,
		AdmissionTimeout: 20 * time.Millisecond,
	})
	rc := dialRaw(t, addr)
	// The first statement fills the queue's only slot; the second must
	// come back as a typed overload rejection.
	rc.send(&wire.Request{Type: wire.TExec, ID: 1, SQL: "SELECT COUNT(*) FROM oblidb_pad"})
	rc.send(&wire.Request{Type: wire.TExec, ID: 2, SQL: "SELECT COUNT(*) FROM oblidb_pad"})
	resp := rc.recv()
	if resp.Type != wire.TError || resp.ID != 2 {
		t.Fatalf("expected TError for request 2, got type=%d id=%d", resp.Type, resp.ID)
	}
	if oberr.Code(resp.ErrCode) != oberr.CodeOverload {
		t.Fatalf("overload rejection carried code %d (%s), want %d",
			resp.ErrCode, oberr.Code(resp.ErrCode), oberr.CodeOverload)
	}
	if !oberr.Code(resp.ErrCode).Retriable() {
		t.Fatal("overload code must be retriable")
	}
	if !strings.Contains(resp.Err, "admission queue full") {
		t.Fatalf("overload message = %q", resp.Err)
	}
	// Draining one epoch clears the queue; the queued statement answers
	// and a retry of the rejected one now succeeds.
	srv.RunEpoch()
	if resp := rc.recv(); resp.Type != wire.TResult || resp.ID != 1 {
		t.Fatalf("queued statement: got type=%d id=%d", resp.Type, resp.ID)
	}
	rc.send(&wire.Request{Type: wire.TExec, ID: 3, SQL: "SELECT COUNT(*) FROM oblidb_pad"})
	waitPending(t, srv, 1) // the reader must queue it before the manual epoch runs
	srv.RunEpoch()
	if resp := rc.recv(); resp.Type != wire.TResult || resp.ID != 3 {
		t.Fatalf("retry after overload: got type=%d id=%d", resp.Type, resp.ID)
	}
	// The rejection is visible in the audited counter (v3 MetricsJSON).
	if mj := srv.Stats().MetricsJSON; !strings.Contains(mj, "oblidb_admission_rejected_total") {
		t.Fatal("admission rejection counter missing from metrics snapshot")
	}
}

// TestCloseDuringPendingEpoch pins the graceful drain: statements
// queued for future epochs when Close begins are still executed (in
// padded epochs) and answered — no request is ever silently dropped by
// shutdown.
func TestCloseDuringPendingEpoch(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Manual:     true,
		EpochSize:  2,
		MaxPending: 64,
	})
	rc := dialRaw(t, addr)
	const n = 5
	for i := 1; i <= n; i++ {
		rc.send(&wire.Request{Type: wire.TExec, ID: uint32(i), SQL: "SELECT COUNT(*) FROM oblidb_pad"})
	}
	// Wait for all n to be queued before closing, so the drain has real
	// work: the reader goroutine may still be decoding frames.
	waitPending(t, srv, n)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	seen := make(map[uint32]bool)
	for len(seen) < n {
		resp := rc.recv()
		if seen[resp.ID] {
			t.Fatalf("duplicate response for id %d", resp.ID)
		}
		seen[resp.ID] = true
		switch resp.Type {
		case wire.TResult:
		case wire.TError:
			// A statement the drain rejected must carry the typed,
			// retriable shutdown code — the client may safely resubmit.
			if oberr.Code(resp.ErrCode) != oberr.CodeShutdown {
				t.Fatalf("drain rejection carried code %d, want %d (shutdown)",
					resp.ErrCode, oberr.CodeShutdown)
			}
		default:
			t.Fatalf("unexpected response type %d", resp.Type)
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCloseDuringOpenTransaction pins shutdown's transaction handling:
// a session holding an open transaction when the server closes has it
// rolled back (and accounted), not left half-buffered.
func TestCloseDuringOpenTransaction(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		EpochSize:     2,
		EpochInterval: time.Millisecond,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE txdrain (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO txdrain VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	before := srv.Stats().TxRolledBack
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The implicit rollback is accounted on the session goroutine as it
	// unwinds; give it a moment.
	deadline := time.After(5 * time.Second)
	for srv.Stats().TxRolledBack != before+1 {
		select {
		case <-deadline:
			t.Fatalf("open transaction not rolled back on close: counter %d, want %d",
				srv.Stats().TxRolledBack, before+1)
		case <-time.After(time.Millisecond):
		}
	}
	// The buffered write never committed: nothing reached the journal-
	// visible engine state.
	res, err := srv.DB().Select("txdrain", table.All, core.SelectOptions{})
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("abandoned transaction leaked %d row(s)", len(res.Rows))
	}
}

// TestSlowConsumerEvicted pins eviction accounting: a client that
// floods requests without ever reading responses overruns its response
// buffer and is dropped, counted in oblidb_sessions_evicted_total.
func TestSlowConsumerEvicted(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		EpochSize:     8,
		EpochInterval: time.Millisecond,
		MaxPending:    4096,
	})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Shrink our receive window so TCP flow control stalls the server's
	// writer after a few KB instead of after megabytes of autotuned
	// kernel buffering — the 256-response overrun then happens fast.
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	evicted := func() bool {
		var snap map[string]any
		if err := json.Unmarshal([]byte(srv.Stats().MetricsJSON), &snap); err != nil {
			t.Fatalf("metrics snapshot not JSON: %v", err)
		}
		v, ok := snap["oblidb_sessions_evicted_total"].(float64)
		return ok && v >= 1
	}
	// An unknown-handle exec is answered immediately from the reader
	// goroutine (a map miss — no epoch slot, no engine), so flooding
	// them while reading nothing overruns the 256-response session
	// buffer as fast as the reader can decode. Kernel socket buffers
	// autotune, so no fixed request count is guaranteed to fill them:
	// keep writing until the eviction shows up in the counter or the
	// server hangs up on us (the eviction closes the connection, which
	// fails the write — that is the point).
	for i := 0; i < 500000; i++ {
		req := &wire.Request{Type: wire.TExecPrepared, ID: uint32(i), Handle: 999999}
		if err := wire.WriteFrame(c, wire.EncodeRequest(req)); err != nil {
			break
		}
		if i%512 == 0 && evicted() {
			return
		}
	}
	deadline := time.After(10 * time.Second)
	for !evicted() {
		select {
		case <-deadline:
			t.Fatal("slow consumer never evicted")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
