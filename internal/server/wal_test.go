package server_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/crypt"
	"oblidb/internal/server"
	"oblidb/internal/wal"
)

func openServerLog(t *testing.T, path string, key []byte) *wal.Log {
	t.Helper()
	l, err := wal.Open(path, key, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestServedTransactions drives BEGIN/COMMIT/ROLLBACK through the wire
// protocol: buffered writes acknowledge zero and stay invisible to reads
// until COMMIT lands them as one epoch-slot batch.
func TestServedTransactions(t *testing.T) {
	_, addr := startServer(t, server.Config{
		EpochSize: 4, EpochInterval: time.Millisecond,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	mustClientExec(t, c, "CREATE TABLE acct (id INTEGER, bal INTEGER) CAPACITY = 16")
	mustClientExec(t, c, "INSERT INTO acct VALUES (1, 100), (2, 50)")

	// Committed transaction: a transfer as two updates.
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"UPDATE acct SET bal = bal - 30 WHERE id = 1",
		"UPDATE acct SET bal = bal + 30 WHERE id = 2",
	} {
		res, err := c.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got := res.Rows[0][0].AsInt(); got != 0 {
			t.Fatalf("buffered write acknowledged %d affected, want 0", got)
		}
	}
	// Reads inside the transaction see the pre-transaction snapshot.
	res, err := c.Exec("SELECT bal FROM acct WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 100 {
		t.Fatalf("read inside tx saw %d, want pre-tx 100", got)
	}
	commitRes, err := c.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := commitRes.Rows[0][0].AsInt(); got != 2 {
		t.Fatalf("COMMIT affected = %d, want 2", got)
	}
	res, err = c.Exec("SELECT bal FROM acct WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 80 {
		t.Fatalf("post-commit balance = %d, want 80", got)
	}

	// Rolled-back transaction leaves no trace.
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("DELETE FROM acct WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// DDL inside a transaction is rejected without poisoning it.
	if _, err := c.Exec("CREATE TABLE nope (a INTEGER)"); err == nil ||
		!strings.Contains(err.Error(), "DDL") {
		t.Fatalf("DDL inside tx: %v", err)
	}
	if err := c.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT * FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rollback lost rows: %d, want 2", len(res.Rows))
	}

	// The SQL spellings route identically to the dedicated frames.
	mustClientExec(t, c, "BEGIN")
	mustClientExec(t, c, "INSERT INTO acct VALUES (3, 10)")
	mustClientExec(t, c, "COMMIT")
	res, err = c.Exec("SELECT * FROM acct WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("SQL-spelled transaction did not commit")
	}

	// Protocol errors: COMMIT/ROLLBACK without BEGIN, double BEGIN.
	if _, err := c.Commit(ctx); err == nil {
		t.Fatal("COMMIT without BEGIN succeeded")
	}
	if err := c.Rollback(ctx); err == nil {
		t.Fatal("ROLLBACK without BEGIN succeeded")
	}
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(ctx); err == nil {
		t.Fatal("nested BEGIN succeeded")
	}
	if err := c.Rollback(ctx); err != nil {
		t.Fatal(err)
	}

	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TxBegun != 4 || st.TxCommitted != 2 || st.TxRolledBack != 2 {
		t.Fatalf("tx stats = begun %d committed %d rolled back %d, want 4/2/2",
			st.TxBegun, st.TxCommitted, st.TxRolledBack)
	}
}

// TestServerRestartRecoversWAL is the served durability contract: a
// server journaling to -wal is killed without shutdown; a new server on
// the same file serves every acknowledged commit — plain statements and
// explicit transactions — and nothing of a transaction left open.
func TestServerRestartRecoversWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.wal")
	key := crypt.NewRandomKey()

	l1 := openServerLog(t, path, key)
	srv1, addr := startServer(t, server.Config{
		EpochSize: 4, EpochInterval: time.Millisecond, WAL: l1,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	mustClientExec(t, c, "CREATE TABLE notes (id INTEGER, body VARCHAR(20)) CAPACITY = 32")
	mustClientExec(t, c, "INSERT INTO notes VALUES (1, 'plain'), (2, 'doomed')")
	mustClientExec(t, c, "DELETE FROM notes WHERE id = 2")

	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	mustClientExec(t, c, "INSERT INTO notes VALUES (3, 'committed tx')")
	if _, err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Left open across the "crash": must not survive.
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	mustClientExec(t, c, "INSERT INTO notes VALUES (4, 'uncommitted')")

	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WalEntries == 0 || st.WalCommits == 0 || st.WalBytes == 0 {
		t.Fatalf("journal stats not populated: %+v", st)
	}

	// Crash: no graceful shutdown, no checkpoint, engine abandoned.
	c.Close()
	srv1.Close()
	l1.Close()

	l2 := openServerLog(t, path, key)
	srv2, addr2 := startServer(t, server.Config{
		EpochSize: 4, EpochInterval: time.Millisecond, WAL: l2,
	})
	defer srv2.Close()
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	res, err := c2.Exec("SELECT * FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("recovered %d rows, want 2 (ids 1 and 3)", len(res.Rows))
	}
	for _, q := range []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM notes WHERE id = 1", 1},
		{"SELECT * FROM notes WHERE id = 2", 0},
		{"SELECT * FROM notes WHERE id = 3", 1},
		{"SELECT * FROM notes WHERE id = 4", 0},
	} {
		res, err := c2.Exec(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		if len(res.Rows) != q.want {
			t.Fatalf("%s: %d rows, want %d", q.sql, len(res.Rows), q.want)
		}
	}

	// The recovered server keeps serving and journaling.
	mustClientExec(t, c2, "INSERT INTO notes VALUES (5, 'after restart')")
	res, err = c2.Exec("SELECT * FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("post-restart insert: %d rows, want 3", len(res.Rows))
	}
	l2.Close()
}

func mustClientExec(t *testing.T, c *client.Conn, q string) {
	t.Helper()
	if _, err := c.Exec(q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}
