package server_test

import (
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/server"
	"oblidb/internal/trace"
)

// TestPreparedArgsServedTraceIdentical is the end-to-end leakage
// assertion for parameter binding through the serving layer: two
// servers executing the same prepared statement shape with different
// argument values publish identical observables — the same epoch
// stream AND byte-identical engine traces — provided the public sizes
// (tables, matching counts) coincide. The argument value exists only
// inside the encrypted frames and the enclave's evaluator.
func TestPreparedArgsServedTraceIdentical(t *testing.T) {
	const epochSize = 2

	// runOne submits one statement and drives exactly one manual epoch,
	// so both servers see an identical epoch/slot schedule.
	runOne := func(t *testing.T, srv *server.Server, exec func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- exec() }()
		for deadline := time.Now().Add(5 * time.Second); srv.Pending() < 1; {
			if time.Now().After(deadline) {
				t.Fatal("statement never queued")
			}
			time.Sleep(time.Millisecond)
		}
		srv.RunEpoch()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	fixedKey := make([]byte, 32)
	engTraces := make([]*trace.Tracer, 2)
	streams := make([][]int, 2)
	for i, arg := range []int{10, 40} {
		engTr := trace.New()
		srv, addr := startServer(t, server.Config{
			Engine:    core.Config{Tracer: engTr, Key: fixedKey},
			EpochSize: epochSize,
			Manual:    true,
			Tracer:    trace.New(), // enables epoch-stream recording
		})
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}

		// Identical setup on both servers: same data, and both argument
		// values (10 and 40) match exactly two of the eight rows, so the
		// public output size is equal.
		runOne(t, srv, func() error {
			_, err := c.Exec("CREATE TABLE t (id INTEGER, v INTEGER, name VARCHAR(8))")
			return err
		})
		runOne(t, srv, func() error {
			_, err := c.Exec("INSERT INTO t VALUES (1, 10, 'a'), (2, 10, 'b'), (3, 20, 'c'), (4, 20, 'd'), (5, 30, 'e'), (6, 30, 'f'), (7, 40, 'g'), (8, 40, 'h')")
			return err
		})

		st, err := c.Prepare("SELECT name FROM t WHERE v = $1")
		if err != nil {
			t.Fatal(err)
		}
		// Reset the engine trace here: the assertion is about the
		// prepared executions, not the (already identical) setup.
		engTr.Reset()
		for rep := 0; rep < 3; rep++ {
			runOne(t, srv, func() error {
				res, err := st.Exec(arg)
				if err != nil {
					return err
				}
				if len(res.Rows) != 2 {
					t.Errorf("arg %d rep %d: %d rows, want 2", arg, rep, len(res.Rows))
				}
				return nil
			})
		}

		engTraces[i] = engTr
		streams[i] = srv.ObservedStream()
		c.Close()
		srv.Close()
	}

	// Identical epoch streams: same epoch count, every epoch full-size.
	if len(streams[0]) != len(streams[1]) {
		t.Fatalf("epoch streams differ in length: %d vs %d", len(streams[0]), len(streams[1]))
	}
	for e := range streams[0] {
		if streams[0][e] != streams[1][e] || streams[0][e] != epochSize {
			t.Fatalf("epoch %d: sizes %d vs %d (want %d)", e, streams[0][e], streams[1][e], epochSize)
		}
	}
	// Byte-identical engine traces across the prepared executions.
	if d := trace.Diff(engTraces[0], engTraces[1]); d != "" {
		t.Fatalf("served prepared-statement trace depends on the bound argument: %s", d)
	}
	if engTraces[0].Len() == 0 {
		t.Fatal("no engine events traced; the test is vacuous")
	}
}
