package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/server"
)

// TestServedConcurrentReadWrite drives the real served path — scheduler
// goroutine on its cadence, no Manual crutch — at Workers=4 with reader
// sessions racing writer sessions, so the read-run dispatch, the
// mutation barriers, the context pool, and the catalog snapshot all run
// under genuine concurrency. CI runs this package under the race
// detector; the assertions here are the semantic floor: every statement
// succeeds, reads never observe a torn count (counts are monotonic in
// the number of committed inserts), and the final state matches the
// writes exactly.
func TestServedConcurrentReadWrite(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		EpochSize:     8,
		EpochInterval: time.Millisecond,
		Workers:       4,
	})
	defer srv.Close()

	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer setup.Close()
	if _, err := setup.Exec("CREATE TABLE rw (k INTEGER, v VARCHAR(16)) CAPACITY = 512"); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 2, 12
	const readers, perReader = 4, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				if _, err := c.Exec(fmt.Sprintf("INSERT INTO rw VALUES (%d, 'w%d')", k, k)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			last := int64(-1)
			for i := 0; i < perReader; i++ {
				res, err := c.Exec("SELECT COUNT(*) FROM rw")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
					errs <- fmt.Errorf("reader %d: malformed count result %v", r, res.Rows)
					return
				}
				n := res.Rows[0][0].AsInt()
				// Inserts only: a count that ever goes backwards means a
				// read observed state no serial execution could produce.
				if n < last || n > writers*perWriter {
					errs <- fmt.Errorf("reader %d: count went from %d to %d (max %d)", r, last, n, writers*perWriter)
					return
				}
				last = n
			}
			errs <- nil
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	res, err := setup.Exec("SELECT COUNT(*) FROM rw")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != writers*perWriter {
		t.Fatalf("final count %d; want %d", got, writers*perWriter)
	}
}
