package server

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler returns the server's debug mux:
//
//	/metrics       Prometheus text exposition of the metric catalog
//	/debug/vars    the same registry as an expvar-style JSON snapshot
//	/debug/pprof/  the standard Go profiling endpoints
//
// Everything served here is either the leakage-audited registry
// (DESIGN.md §13) or process-level profiling data; bind it to loopback
// or an operator network, not the client port. The handlers are
// registered on a private mux — importing net/http/pprof's side-effect
// registration on http.DefaultServeMux is deliberately avoided.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.m.reg.WriteText(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.m.reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug HTTP listener on addr ("host:port") and
// returns its bound address (useful with ":0"). The listener is owned
// by the server and shut down by Close.
func (s *Server) ServeDebug(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return nil, errClosed
	}
	s.debugLis = lis
	s.mu.Unlock()
	s.log.Info("debug listener started", "addr", lis.Addr().String())
	go hs.Serve(lis)
	return lis.Addr(), nil
}
