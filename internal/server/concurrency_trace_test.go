package server_test

import (
	"fmt"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/server"
	"oblidb/internal/sql"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// These tests pin the concurrency tentpole's observability claim: a
// server at Workers=4 publishes exactly the observable stream of the
// serial server — same epoch slot stream, and the same engine-level
// untrusted-access profile — for the same workload. The workload is
// queued with deterministic arrival order (one statement at a time,
// confirmed via Pending before the next submit) so the only variable
// between the two runs is how many slots execute concurrently.
//
// Flat tables get the strong form: the full multiset fingerprint over
// (structure, op, block) is byte-identical, because flat reads touch a
// set of blocks fixed by the statement alone. ORAM-backed tables get
// the form the leakage model actually promises: per-structure access
// *counts* are identical, while the leaf sequence legitimately depends
// on which read ran first — randomized remapping is the whole point.

// traceRun is everything observable from one server run.
type traceRun struct {
	stream      []int
	fingerprint [32]byte
	counts      map[string]uint64
	real, dummy uint64
}

// driveWorkload starts a Manual-mode server at the given worker count,
// applies setup serially on the engine, then queues each wave with
// deterministic arrival order and drains it with explicit epochs.
func driveWorkload(t *testing.T, workers int, setup func(t *testing.T, x *sql.Executor, db *core.DB), waves [][]string) traceRun {
	t.Helper()
	const epochSize = 4

	engTr := trace.New()
	eng := core.Config{Seed: 42, Tracer: engTr}
	var readTrs []*trace.Tracer
	if workers > 1 {
		for i := 0; i < workers; i++ {
			readTrs = append(readTrs, trace.New())
		}
		eng.ReadConcurrency = workers
		eng.ReadTracers = readTrs
	}
	srv, addr := startServer(t, server.Config{
		EpochSize: epochSize,
		Manual:    true,
		Workers:   workers,
		Engine:    eng,
		Tracer:    trace.New(), // enables ObservedStream recording
	})

	// Setup runs serially on the engine before any epoch, so it is
	// identical at every worker count.
	setup(t, sql.New(srv.DB()), srv.DB())

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	waitPending := func(n int) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); srv.Pending() < n; {
			if time.Now().After(deadline) {
				t.Fatalf("statement never queued: %d of %d pending", srv.Pending(), n)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	for _, wave := range waves {
		done := make(chan error, len(wave))
		// Queue one statement at a time: arrival order — and with it the
		// slot assignment and every mutation barrier position — is then
		// identical across runs, so concurrency is the only difference.
		for i, stmt := range wave {
			stmt := stmt
			go func() {
				_, err := c.Exec(stmt)
				done <- err
			}()
			waitPending(i + 1)
		}
		for e := 0; e < (len(wave)+epochSize-1)/epochSize; e++ {
			srv.RunEpoch()
		}
		for range wave {
			if err := <-done; err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
	}
	// One all-dummy epoch so the padding path is pinned too.
	srv.RunEpoch()

	stream := srv.ObservedStream()
	st := srv.Stats()
	tracers := append([]*trace.Tracer{engTr}, readTrs...)
	run := traceRun{
		stream:      stream,
		fingerprint: trace.EventMultisetFingerprint(tracers...),
		counts:      trace.NormalizedRegionCounts(tracers...),
		real:        st.Real,
		dummy:       st.Dummy,
	}
	srv.Close()
	return run
}

func sameStream(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTraceUnchangedAcrossWorkersFlat: same flat workload at Workers=1
// and Workers=4 — identical epoch slot stream and identical engine
// untrusted-access multiset fingerprint.
func TestTraceUnchangedAcrossWorkersFlat(t *testing.T) {
	setup := func(t *testing.T, x *sql.Executor, db *core.DB) {
		t.Helper()
		if _, err := x.Execute("CREATE TABLE ft (k INTEGER, v VARCHAR(16)) CAPACITY = 256"); err != nil {
			t.Fatal(err)
		}
		rows := make([]table.Row, 96)
		for i := range rows {
			rows[i] = table.Row{table.Int(int64(i)), table.Str(fmt.Sprintf("v%d", i))}
		}
		if err := db.BulkLoad("ft", rows); err != nil {
			t.Fatal(err)
		}
	}
	var reads []string
	for i := 0; i < 12; i++ {
		reads = append(reads, fmt.Sprintf("SELECT COUNT(*) FROM ft WHERE k = %d", i))
	}
	waves := [][]string{
		reads, // one pure read wave: three epochs of concurrent read runs
		{
			// A mutation mid-wave: a barrier at a fixed slot. Reads queued
			// after it scan the grown table in both runs.
			"SELECT v FROM ft WHERE k = 3",
			"INSERT INTO ft VALUES (1000, 'grown')",
			"SELECT COUNT(*) FROM ft WHERE k = 1000",
			"SELECT COUNT(*) FROM ft WHERE k = 4",
			"SELECT COUNT(*) FROM ft WHERE k = 5",
		},
	}

	serial := driveWorkload(t, 1, setup, waves)
	concurrent := driveWorkload(t, 4, setup, waves)

	if !sameStream(serial.stream, concurrent.stream) {
		t.Errorf("epoch slot stream changed: workers=1 %v, workers=4 %v", serial.stream, concurrent.stream)
	}
	if serial.real != concurrent.real || serial.dummy != concurrent.dummy {
		t.Errorf("real/dummy counts changed: workers=1 %d/%d, workers=4 %d/%d",
			serial.real, serial.dummy, concurrent.real, concurrent.dummy)
	}
	if serial.fingerprint != concurrent.fingerprint {
		t.Errorf("engine untrusted-access fingerprint changed:\n workers=1 %x\n workers=4 %x\n counts: %v vs %v",
			serial.fingerprint, concurrent.fingerprint, serial.counts, concurrent.counts)
	}
}

// TestTraceUnchangedAcrossWorkersIndexed: the ORAM-backed variant. The
// leaf sequence of concurrent index reads is interleaving-dependent by
// design (that randomness is the obliviousness), so the invariant here
// is the one the leakage model states: the per-structure access counts
// are fixed by the statements alone, identical at Workers=1 and
// Workers=4, along with the epoch slot stream.
func TestTraceUnchangedAcrossWorkersIndexed(t *testing.T) {
	setup := func(t *testing.T, x *sql.Executor, db *core.DB) {
		t.Helper()
		if _, err := x.Execute("CREATE TABLE pt (k INTEGER, v VARCHAR(16)) USING INDEX(k) CAPACITY = 64"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			if _, err := x.Execute(fmt.Sprintf("INSERT INTO pt VALUES (%d, 'p%d')", i, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wave1 []string
	for i := 0; i < 8; i++ {
		wave1 = append(wave1, fmt.Sprintf("SELECT v FROM pt WHERE k = %d", i))
	}
	waves := [][]string{
		wave1,
		{
			"SELECT v FROM pt WHERE k = 9",
			"INSERT INTO pt VALUES (100, 'late')",
			"SELECT v FROM pt WHERE k = 100",
			"SELECT v FROM pt WHERE k = 10",
		},
	}

	serial := driveWorkload(t, 1, setup, waves)
	concurrent := driveWorkload(t, 4, setup, waves)

	if !sameStream(serial.stream, concurrent.stream) {
		t.Errorf("epoch slot stream changed: workers=1 %v, workers=4 %v", serial.stream, concurrent.stream)
	}
	if serial.real != concurrent.real || serial.dummy != concurrent.dummy {
		t.Errorf("real/dummy counts changed: workers=1 %d/%d, workers=4 %d/%d",
			serial.real, serial.dummy, concurrent.real, concurrent.dummy)
	}
	if len(serial.counts) != len(concurrent.counts) {
		t.Fatalf("structure sets differ: workers=1 %v, workers=4 %v", serial.counts, concurrent.counts)
	}
	for region, n := range serial.counts {
		if got := concurrent.counts[region]; got != n {
			t.Errorf("access count for %s changed: workers=1 %d, workers=4 %d", region, n, got)
		}
	}
}
