// Package server turns the ObliDB engine into a network service whose
// observable request stream leaks nothing about client behavior.
//
// The engine alone hides *what* a query touches; an adversarial host
// still learns *when* and *how often* clients query by watching the
// enclave work. Following Obladi (Crooks et al., OSDI 2018), this
// server executes statements only inside fixed-size epochs on a fixed
// cadence: every EpochInterval it takes up to EpochSize queued
// statements and runs exactly EpochSize statements against the engine,
// padding any empty slots with a dummy statement. Idle or saturated,
// bursty or steady, the host observes the same thing — one batch of
// EpochSize query executions per epoch — so arrival times, arrival
// counts, and burstiness are all hidden. What remains visible is the
// epoch cadence and size (public configuration) and, per slot, the
// engine's own leakage (table sizes and plan choice, §2.3 of the
// paper); run the engine in padding mode to flatten the latter.
//
// All engine access funnels through the epoch scheduler. By default it
// executes an epoch's slots serially on one goroutine; with
// Config.Workers > 1 the slots are dispatched to a worker pool, and the
// engine's own locking plus its intra-query partition parallelism
// (core.Config.Parallelism) turn the extra cores into throughput. See
// the concurrency note on core.DB.
package server

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"oblidb/internal/core"
	"oblidb/internal/oberr"
	"oblidb/internal/sql"
	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
	"oblidb/internal/wire"
)

// Config configures a server.
type Config struct {
	// Engine configures the underlying database.
	Engine core.Config
	// EpochSize is the number of statement slots per epoch (default 8).
	EpochSize int
	// EpochInterval is the fixed cadence between epochs (default 5ms).
	EpochInterval time.Duration
	// Workers is the number of statement slots of one epoch executed
	// concurrently (default 1: slots run serially in arrival order).
	// With Workers > 1, maximal runs of consecutive read slots (SELECTs
	// and padding dummies) are dispatched to a goroutine pool and
	// execute truly in parallel on the engine's read-slot contexts
	// (core.Config.ReadConcurrency, defaulted to Workers); mutation
	// slots and transaction commits are barriers, executing serially in
	// arrival order between runs. Statements within one read run may
	// complete in any order — the protocol already answers by request
	// id, not arrival order — so clients that need ordering await each
	// result. The observable stream is unchanged: exactly EpochSize slot
	// executions per epoch, with slot events recorded before any slot
	// runs.
	Workers int
	// ContentionProfiling enables the runtime's mutex and block
	// profiles (runtime.SetMutexProfileFraction, SetBlockProfileRate)
	// so /debug/pprof/mutex and /debug/pprof/block on the debug
	// endpoint show where the engine waits. Off by default: the
	// profiles cost a few percent on contended paths.
	ContentionProfiling bool
	// Manual disables the internal scheduler goroutine: epochs then run
	// only when RunEpoch is called, which tests use to drive the epoch
	// stream deterministically.
	Manual bool
	// MaxPending bounds the statement queue (default 4096). A full
	// queue blocks the session that is reading, back-pressuring that
	// client's connection.
	MaxPending int
	// AdmissionTimeout bounds how long a session blocks on a full queue
	// before the statement is rejected with a typed, retriable overload
	// error instead (default 1s). Bounded admission turns a saturated
	// server into explicit backpressure the client can retry against,
	// rather than an unbounded stall.
	AdmissionTimeout time.Duration
	// WriteDeadline, when positive, is applied to every response frame
	// write. A client that stops draining its socket past the deadline
	// is evicted (connection closed, counted in
	// oblidb_sessions_evicted_total) instead of pinning the writer
	// goroutine's buffer forever. Zero disables the deadline; the
	// outBuffer slow-consumer drop still protects the epoch scheduler.
	WriteDeadline time.Duration
	// DummySQL overrides the padding statement. The default is an
	// aggregate over a one-row table the server creates at startup.
	DummySQL string
	// Tracer, if non-nil, records one event per executed statement slot
	// so tests can assert the observable stream is client-independent.
	Tracer *trace.Tracer
	// Logger, if non-nil, receives structured serving diagnostics:
	// connection lifecycle, epoch summaries (at Debug level), and the
	// slow-statement log. Log lines carry statement *shapes* — the
	// literal-free rendering of sql.Shape — never statement literals or
	// argument values. Nil discards everything.
	Logger *slog.Logger
	// SlowStatementEpochs is the latency threshold, in whole epochs
	// waited between submission and execution, at or above which a
	// statement counts as slow and is logged by shape (default 8).
	SlowStatementEpochs int
	// WAL, if non-nil, is the durable journal: the server first recovers
	// the engine from it (replaying every committed batch), then attaches
	// it so all further mutations — including transaction commits — are
	// journaled. The journal changes nothing observable: commits ride the
	// same padded epoch slots, and the log file's growth is a function of
	// public mutation counts.
	WAL *wal.Log
}

// padTable is the server-owned table the default dummy statement reads.
const padTable = "oblidb_pad"

// Server is a concurrent oblivious query server.
type Server struct {
	cfg   Config
	db    *core.DB
	exec  *sql.Executor
	dummy *sql.Prepared
	jobs  chan *job
	quit  chan struct{}
	done  chan struct{}
	m     *serverMetrics
	log   *slog.Logger

	slotRegion trace.Region

	mu       sync.Mutex
	lis      net.Listener
	debugLis net.Listener
	sessions map[*session]struct{}
	sessWG   sync.WaitGroup // running session goroutines; Close waits it out
	closed   bool
	start    time.Time
	// epochs holds the observable per-epoch slot counts for trace
	// assertions. It is recorded only when a Tracer is configured: a
	// production server at a 5ms cadence would otherwise grow it
	// forever.
	epochs []int

	epochMu sync.Mutex // serializes runEpoch across scheduler/RunEpoch/Close
}

var errClosed = fmt.Errorf("server: already closed")

// errShutdown is the typed rejection for statements arriving while the
// server drains. CodeShutdown is retriable: the statement never reached
// an epoch slot, so a client may safely retry it elsewhere (or later).
var errShutdown = oberr.New(oberr.CodeShutdown, "server: shutting down")

// job is one client statement waiting for an epoch slot, with the
// arguments bound to its placeholders (nil for unparameterized
// statements). prep carries the parse, arity, and — after its first
// execution — the compiled physical plan, so epoch slots replay plans
// instead of re-planning.
type job struct {
	sess *session
	id   uint32
	prep *sql.Prepared
	args []table.Value
	// commit marks a transaction's COMMIT: txItems holds the writes the
	// session buffered since BEGIN, applied atomically by the engine in
	// this one slot. A commit occupies a slot exactly like any other
	// statement — transactions add nothing to the observable stream.
	commit  bool
	txItems []sql.TxItem
	// submitEpoch is the epoch count at submission; the difference to
	// the executing epoch is the statement's latency in whole epochs —
	// the only latency resolution the server ever publishes.
	submitEpoch uint64
}

// New opens an engine and starts the epoch scheduler. The server is
// live immediately — epochs tick (all-dummy when idle) even before
// Serve is called — and must be stopped with Close.
func New(cfg Config) (*Server, error) {
	if cfg.EpochSize <= 0 {
		cfg.EpochSize = 8
	}
	if cfg.EpochInterval <= 0 {
		cfg.EpochInterval = 5 * time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.AdmissionTimeout <= 0 {
		cfg.AdmissionTimeout = time.Second
	}
	if cfg.SlowStatementEpochs <= 0 {
		cfg.SlowStatementEpochs = 8
	}
	if cfg.Workers > 1 && cfg.Engine.ReadConcurrency == 0 {
		// Concurrent slots need concurrent read contexts, or the pool
		// would serialize on the engine's exclusive lock.
		cfg.Engine.ReadConcurrency = cfg.Workers
	}
	if cfg.ContentionProfiling {
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(int(time.Microsecond))
	}
	db, err := core.Open(cfg.Engine)
	if err != nil {
		return nil, err
	}
	if cfg.WAL != nil {
		// Crash recovery before anything touches the engine: replay the
		// journal's committed batches (uncommitted tails were already
		// discarded when the log was opened), then attach it so every
		// further mutation is journaled.
		if err := db.Recover(cfg.WAL); err != nil {
			return nil, fmt.Errorf("server: wal recovery: %w", err)
		}
		if err := db.AttachWAL(cfg.WAL); err != nil {
			return nil, fmt.Errorf("server: wal attach: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		db:       db,
		exec:     sql.New(db),
		jobs:     make(chan *job, cfg.MaxPending),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		sessions: make(map[*session]struct{}),
		start:    time.Now(),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.m = newServerMetrics(s)
	if cfg.Tracer != nil {
		s.slotRegion = cfg.Tracer.Region("server.epochs")
	}
	dummySQL := cfg.DummySQL
	if dummySQL == "" {
		// Recovery may have rebuilt the pad table from the journal; only
		// a fresh database creates it.
		if _, err := db.Table(padTable); err != nil {
			for _, stmt := range []string{
				"CREATE TABLE " + padTable + " (k INTEGER)",
				"INSERT INTO " + padTable + " VALUES (0)",
			} {
				if _, err := s.exec.Execute(stmt); err != nil {
					return nil, fmt.Errorf("server: creating pad table: %w", err)
				}
			}
		}
		dummySQL = "SELECT COUNT(*) FROM " + padTable
	}
	if s.dummy, err = s.exec.Prepare(dummySQL); err != nil {
		return nil, fmt.Errorf("server: dummy statement: %w", err)
	}
	if n := s.dummy.NumParams(); n != 0 {
		return nil, fmt.Errorf("server: dummy statement has %d placeholder(s); it must be self-contained", n)
	}
	go s.schedule()
	s.log.Info("server started",
		"epoch_size", cfg.EpochSize, "epoch_interval", cfg.EpochInterval,
		"workers", cfg.Workers, "manual", cfg.Manual)
	return s, nil
}

// DB exposes the underlying engine, for tests that compare served
// results against direct execution.
func (s *Server) DB() *core.DB { return s.db }

// schedule is the single executor goroutine: it alone touches the
// engine, once per EpochInterval, draining the queue in fixed-size,
// dummy-padded batches.
func (s *Server) schedule() {
	defer close(s.done)
	if s.cfg.Manual {
		<-s.quit
		return
	}
	tick := time.NewTicker(s.cfg.EpochInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			// Graceful shutdown: keep running epochs on the same cadence
			// — still padded, still paced, so the stream stays uniform
			// to the end and the drain's length does not leak the
			// backlog's timing — until no statement is left waiting.
			for len(s.jobs) > 0 {
				<-tick.C
				s.RunEpoch()
			}
			return
		case <-tick.C:
			s.RunEpoch()
		}
	}
}

// RunEpoch executes exactly one epoch: up to EpochSize queued
// statements, then dummy statements for every remaining slot. The
// scheduler calls it on its cadence; tests call it directly (in Manual
// mode) to drive a deterministic epoch stream.
func (s *Server) RunEpoch() {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	epochStart := time.Now()
	size := s.cfg.EpochSize
	batch := make([]*job, 0, size)
collect:
	for len(batch) < size {
		select {
		case j := <-s.jobs:
			batch = append(batch, j)
		default:
			break collect
		}
	}
	// The observable stream — one slot event per epoch slot — is
	// recorded up front, so it is identical whether the slots then run
	// serially or across the worker pool.
	for slot := 0; slot < size; slot++ {
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Record(s.slotRegion, trace.Write, slot)
		}
	}
	workers := s.cfg.Workers
	if workers > size {
		workers = size
	}
	if workers <= 1 {
		for slot := 0; slot < size; slot++ {
			s.executeSlot(slot, batch)
		}
	} else {
		// Maximal runs of consecutive read slots fan out across the
		// worker pool; each mutation slot (or tx commit) is a barrier
		// executed alone, so writes apply in arrival order and every
		// read observes a quiescent engine state. The slot events above
		// were already recorded, so this scheduling is invisible.
		for slot := 0; slot < size; {
			if !readSlot(slot, batch) {
				s.executeSlot(slot, batch)
				slot++
				continue
			}
			end := slot + 1
			for end < size && readSlot(end, batch) {
				end++
			}
			s.runReadRun(slot, end, batch, workers)
			slot = end
		}
	}
	if s.cfg.Tracer != nil {
		s.mu.Lock()
		s.epochs = append(s.epochs, size)
		s.mu.Unlock()
	}
	s.m.occupancy.Observe(float64(len(batch)))
	s.m.realTotal.Add(uint64(len(batch)))
	s.m.dummyTotal.Add(uint64(size - len(batch)))
	// Epoch duration is published only at epoch-interval resolution:
	// the histogram observes whole intervals elapsed, so its buckets
	// are a function of the epoch schedule, not of micro-timing.
	s.m.epochDuration.Observe(float64(time.Since(epochStart) / s.cfg.EpochInterval))
	// Incremented last, under epochMu: a statement submitted during
	// epoch N observes submitEpoch ≥ N, never a half-counted epoch.
	s.m.epochsTotal.Inc()
	s.log.Debug("epoch complete",
		"epoch", s.m.epochsTotal.Value(), "real", len(batch), "dummies", size-len(batch))
}

// readSlot classifies one epoch slot: padding dummies and SELECTs are
// reads (they take the engine's shared lock); everything else — DML,
// DDL, commits, EXPLAIN — mutates or must serialize, and runs alone.
// The classification uses only the statement kind, which the slot's
// execution reveals anyway (plan choice is conceded leakage, §2.3).
func readSlot(slot int, batch []*job) bool {
	if slot >= len(batch) {
		return true // dummy: a self-contained SELECT
	}
	j := batch[slot]
	return !j.commit && j.prep.Kind() == "select"
}

// runReadRun executes slots [start, end) — all reads — across up to
// workers goroutines.
func (s *Server) runReadRun(start, end int, batch []*job, workers int) {
	if n := end - start; workers > n {
		workers = n
	}
	if workers <= 1 {
		for slot := start; slot < end; slot++ {
			s.executeSlot(slot, batch)
		}
		return
	}
	slots := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for slot := range slots {
				s.executeSlot(slot, batch)
			}
		}()
	}
	for slot := start; slot < end; slot++ {
		slots <- slot
	}
	close(slots)
	wg.Wait()
}

// executeSlot runs one epoch slot: a queued statement (answered to its
// session) or the padding dummy.
func (s *Server) executeSlot(slot int, batch []*job) {
	if slot < len(batch) {
		j := batch[slot]
		var (
			res  *core.Result
			err  error
			kind string
		)
		if j.commit {
			res, err = s.exec.ExecTx(j.txItems)
			kind = "commit"
			if err != nil {
				s.m.txAborted.Inc()
			} else {
				s.m.txCommitted.Inc()
			}
		} else {
			res, err = j.prep.Exec(j.args)
			kind = j.prep.Kind()
		}
		j.sess.reply(j.id, res, err)
		s.m.statements.WithCounter(kind).Inc()
		// Latency in whole epochs waited: epochs completed since the
		// statement was submitted. Epoch-schedule-derived, no wall clock.
		waited := s.m.epochsTotal.Value() - j.submitEpoch
		s.m.latency.WithHistogram(kind).Observe(float64(waited))
		if waited >= uint64(s.cfg.SlowStatementEpochs) {
			s.m.slowTotal.Inc()
			// The shape is literal-free (sql.Shape): argument values and
			// statement literals never reach a log line. A commit logs its
			// keyword plus the (public) buffered-statement count.
			shape := "COMMIT"
			if !j.commit {
				shape = j.prep.Shape()
			}
			s.log.Warn("slow statement",
				"shape", shape, "kind", kind, "epochs_waited", waited)
		}
		return
	}
	if _, err := s.dummy.Exec(nil); err != nil {
		s.log.Error("dummy statement failed", "err", err)
	}
}

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until the server is closed. It owns
// the listener and closes it on shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.sessions[sess] = struct{}{}
		s.sessWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.sessWG.Done()
			sess.serve()
		}()
	}
}

// Addr returns the listening address, for servers started on ":0".
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// dropSession forgets a finished session.
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// submit queues one statement for the next epoch with a free slot. It
// blocks for back-pressure while the queue is full, but only up to
// AdmissionTimeout: past that the statement is rejected with a typed,
// retriable overload error — bounded admission instead of an unbounded
// stall. It fails with a typed shutdown error once the server drains.
func (s *Server) submit(j *job) error {
	j.submitEpoch = s.m.epochsTotal.Value()
	select {
	case <-s.quit:
		return errShutdown
	case s.jobs <- j:
		return nil
	default:
	}
	timer := time.NewTimer(s.cfg.AdmissionTimeout)
	defer timer.Stop()
	select {
	case <-s.quit:
		return errShutdown
	case s.jobs <- j:
		return nil
	case <-timer.C:
		s.m.admissionRejected.Inc()
		return oberr.New(oberr.CodeOverload,
			"server: admission queue full (%d pending), retry later", len(s.jobs))
	}
}

// Close shuts the server down gracefully: stop accepting, let the
// scheduler flush every queued statement through final (still padded)
// epochs, fail anything that slipped in after, and close all sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	debugLis := s.debugLis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	if debugLis != nil {
		debugLis.Close()
	}
	s.log.Info("server stopping")
	close(s.quit)
	if s.cfg.Manual {
		// Manual mode: flush on the caller's goroutine.
		for len(s.jobs) > 0 {
			s.RunEpoch()
		}
	}
	<-s.done
	// Statements enqueued after the final drain get an error rather
	// than silence.
	for {
		select {
		case j := <-s.jobs:
			j.sess.reply(j.id, nil, errShutdown)
		default:
			s.mu.Lock()
			sessions := make([]*session, 0, len(s.sessions))
			for sess := range s.sessions {
				sessions = append(sessions, sess)
			}
			s.mu.Unlock()
			// The writers own the hang-up: each flushes its queued
			// replies to the socket before closing, so nothing the
			// final epochs answered is lost to a close/flush race. A
			// client that stopped reading is force-closed after the
			// flush deadline rather than wedging shutdown.
			for _, sess := range sessions {
				sess.beginShutdown()
			}
			for _, sess := range sessions {
				select {
				case <-sess.writerDone:
				case <-time.After(closeFlushDeadline + time.Second):
					sess.close()
					<-sess.writerDone
				}
				// The writer has flushed; now hang up so the reader
				// (blocked in ReadFrame) unwinds too.
				sess.close()
			}
			// Wait for every session goroutine to finish unwinding, so
			// callers observe a quiescent server: no late log lines, no
			// stray goroutines after Close returns.
			s.sessWG.Wait()
			return nil
		}
	}
}

// Pending reports how many statements are queued for future epochs.
func (s *Server) Pending() int { return len(s.jobs) }

// Stats reports the server's public counters, including the SQL layer's
// plan-cache counters, the engine's per-algorithm pick tallies (plan
// choices are already-conceded leakage, §2.3), and — as the v3
// MetricsJSON extension — the full metric-registry snapshot.
func (s *Server) Stats() wire.Stats {
	cache := s.exec.CacheStats()
	picks := enginePicks(s.db.PlanStats())
	metricsJSON := s.metricsJSON()
	ws := s.db.WALStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.Stats{
		Epochs:       s.m.epochsTotal.Value(),
		EpochSize:    uint32(s.cfg.EpochSize),
		Real:         s.m.realTotal.Value(),
		Dummy:        s.m.dummyTotal.Value(),
		Sessions:     uint32(len(s.sessions)),
		UptimeMillis: uint64(time.Since(s.start) / time.Millisecond),

		PlanEntries:      uint32(cache.Entries),
		PlanHits:         cache.Hits,
		PlanMisses:       cache.Misses,
		PlanCompiles:     cache.Compiles,
		PlanCompileSkips: cache.CompileSkips,
		Picks:            picks,

		MetricsJSON: metricsJSON,

		TxBegun:        s.m.txBegun.Value(),
		TxCommitted:    s.m.txCommitted.Value(),
		TxRolledBack:   s.m.txRolledBack.Value(),
		TxAborted:      s.m.txAborted.Value(),
		WalEntries:     ws.Entries,
		WalCommits:     ws.Commits,
		WalCheckpoints: ws.Checkpoints,
		WalBytes:       uint64(ws.SizeBytes),
	}
}

// enginePicks flattens the engine's pick counters into sorted wire
// pairs ("select.Hash", "join.Opaque", "sort", "limit").
func enginePicks(p core.PickStats) []wire.AlgPick {
	var out []wire.AlgPick
	for name, n := range p.Select {
		out = append(out, wire.AlgPick{Name: "select." + name, Count: n})
	}
	for name, n := range p.Join {
		out = append(out, wire.AlgPick{Name: "join." + name, Count: n})
	}
	if p.Sorts > 0 {
		out = append(out, wire.AlgPick{Name: "sort", Count: p.Sorts})
	}
	if p.Limits > 0 {
		out = append(out, wire.AlgPick{Name: "limit", Count: p.Limits})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ObservedStream returns the per-epoch slot counts — the entirety of
// what the untrusted host can tally about request arrivals. Every entry
// equals EpochSize by construction; tests assert two servers with
// different client behavior produce equal streams. The stream is only
// recorded when Config.Tracer is set.
func (s *Server) ObservedStream() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.epochs))
	copy(out, s.epochs)
	return out
}
